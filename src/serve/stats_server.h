#ifndef CEM_SERVE_STATS_SERVER_H_
#define CEM_SERVE_STATS_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>

#include "util/status.h"

namespace cem::serve {

/// Pull-based sources of the endpoints that read live serving state (the
/// registry endpoints need none). Every callable must be thread-safe —
/// the accept thread invokes them concurrently with the serving pipeline.
/// Unset members fall back to static defaults (healthy, empty slow log).
struct StatsSources {
  /// Runs before every metrics snapshot (both renderings) — the hook the
  /// service uses to republish its rolling-window gauges so a scrape sees
  /// current 1s/10s/60s values, not the last quiescent publication.
  std::function<void()> refresh;
  /// Body of /slowlog.json (a JSON array; SlowQueryLog::ToJson).
  std::function<std::string()> slowlog_json;
  /// /healthz verdict; false renders 503 (the ingest-stall watchdog).
  std::function<bool()> healthy;
};

/// The live stats endpoint: a minimal blocking HTTP listener — one
/// listening socket on 127.0.0.1, one accept thread, connections served
/// one at a time, HTTP/1.0 close-per-response, zero dependencies. This is
/// an operational introspection port (curl, a Prometheus scraper, a
/// readiness probe), deliberately not a web server: no keep-alive, no
/// TLS, no request bodies, loopback only.
///
/// Endpoints:
///   /metrics       Prometheus text exposition (obs/expo.h) of the global
///                  registry — counters, gauges, latency summaries.
///   /metrics.json  The same MetricsSnapshot as flat JSON — byte-equal to
///                  what `dedup_tool --metrics-json` writes at the same
///                  instant (one snapshot feeds both renderings).
///   /slowlog.json  The slow-query log, worst first (obs/query_trace.h).
///   /healthz       200 "ok" / 503 "stalled" per StatsSources::healthy.
class StatsServer {
 public:
  /// One rendered response (Handle() is the socket-free routing surface
  /// the unit tests drive directly).
  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };

  /// Binds 127.0.0.1:`port` (0 = ephemeral; see port() for the actual
  /// one) and starts the accept thread. Internal error when the socket
  /// cannot be created or bound.
  static Result<std::unique_ptr<StatsServer>> Start(uint16_t port,
                                                    StatsSources sources = {});

  /// Shuts the listener down and joins the accept thread.
  ~StatsServer();

  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  /// The bound port (the ephemeral assignment when Start got port 0).
  uint16_t port() const { return port_; }

  /// Routes one request path to its rendered response (404 for unknown
  /// paths). Thread-safe; the accept loop calls this per connection.
  Response Handle(std::string_view path) const;

 private:
  StatsServer(int listen_fd, uint16_t port, StatsSources sources);

  void AcceptLoop();
  /// Reads the request line, routes it, writes the response.
  void ServeConnection(int fd) const;

  const int listen_fd_;
  const uint16_t port_;
  const StatsSources sources_;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace cem::serve

#endif  // CEM_SERVE_STATS_SERVER_H_
