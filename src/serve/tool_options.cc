#include "serve/tool_options.h"

#include <cstdio>
#include <cstdlib>

#include "core/cover_builder.h"
#include "eval/experiment.h"

namespace cem::serve {
namespace {

/// Shortest round-trippable rendering of a double flag value.
std::string FormatDouble(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

void AppendFlag(std::vector<std::string>& args, const char* flag,
                const std::string& value) {
  args.emplace_back(flag);
  args.push_back(value);
}

}  // namespace

DedupToolOptions DefaultDedupToolOptions() {
  DedupToolOptions options;
  options.pipeline.blocking =
      core::BlockingStrategyName(eval::BenchBlocking());
  const char* env = std::getenv("CEM_SNAPSHOT_DIR");
  options.persist.snapshot_dir = env == nullptr ? "" : env;
  return options;
}

void RegisterDedupToolFlags(FlagSet& flags, DedupToolOptions* options) {
  flags.String("--input", &options->corpus.input,
               "TSV corpus path (empty: use --generate)");
  flags.String("--generate", &options->corpus.generate,
               "generated workload: hepth|dblp");
  flags.Double("--scale", &options->corpus.scale,
               "generated workload scale factor");
  flags.String("--output", &options->output,
               "matched-pairs TSV output path");
  flags.String("--matcher", &options->pipeline.matcher, "mln|rules");
  flags.String("--scheme", &options->pipeline.scheme, "nomp|smp|mmp");
  flags.String("--blocking", &options->pipeline.blocking, "canopy|lsh");
  flags.Uint32("--machines", &options->pipeline.machines,
               "simulated grid machines");
  flags.Uint32("--threads", &options->pipeline.threads,
               "worker threads (0: process default)");
  flags.Bool("--stream", &options->stream.stream,
             "streaming ingest replay instead of the batch pipeline");
  flags.Uint32("--stream-chunk", &options->stream.chunk,
               "references per AddBatch chunk (0: one at a time)",
               &options->stream.chunk_set);
  flags.Uint64("--arrival-seed", &options->stream.arrival_seed,
               "seed of the random arrival order",
               &options->stream.arrival_seed_set);
  flags.String("--snapshot-dir", &options->persist.snapshot_dir,
               "durable state directory (empty: no persistence)");
  flags.SizeT("--snapshot-every", &options->persist.snapshot_every,
              "auto-snapshot interval in inserts (0: WAL only)");
  flags.Bool("--recover", &options->persist.recover,
             "resume from --snapshot-dir state");
  flags.Bool("--fsync", &options->persist.fsync,
             "fsync WAL appends and snapshot files");
  flags.Bool("--serve", &options->serve.serve,
             "serve point queries concurrently with streamed ingest");
  flags.String("--query-file", &options->serve.query_file,
               "query reference ids, one per line (empty: sample corpus)");
  flags.Uint32("--qps", &options->serve.qps,
               "target query rate (0: unthrottled)");
  flags.String("--metrics-json", &options->obs.metrics_json,
               "write the metrics registry as flat JSON here at exit");
  flags.String("--trace-json", &options->obs.trace_json,
               "enable tracing; write a Chrome trace_event array here");
  flags.Uint32("--stats-port", &options->obs.stats_port,
               "serve live stats on 127.0.0.1:<port> (0: ephemeral)",
               &options->obs.stats_port_set);
  flags.String("--stats-ready-file", &options->obs.stats_ready_file,
               "write the bound stats port here once listening");
  flags.String("--slow-query-log", &options->obs.slow_query_log,
               "write the serve slow-query log as JSON here at exit");
  flags.Double("--slow-query-us", &options->obs.slow_query_us,
               "slow-query threshold in microseconds");
  flags.Uint64("--stall-deadline-ms", &options->obs.stall_deadline_ms,
               "ingest-stall watchdog deadline in milliseconds");
}

std::vector<std::string> DedupToolOptions::ToArgs() const {
  const DedupToolOptions defaults = DefaultDedupToolOptions();
  std::vector<std::string> args;
  if (corpus.input != defaults.corpus.input) {
    AppendFlag(args, "--input", corpus.input);
  }
  if (corpus.generate != defaults.corpus.generate) {
    AppendFlag(args, "--generate", corpus.generate);
  }
  if (corpus.scale != defaults.corpus.scale) {
    AppendFlag(args, "--scale", FormatDouble(corpus.scale));
  }
  if (output != defaults.output) AppendFlag(args, "--output", output);
  if (pipeline.matcher != defaults.pipeline.matcher) {
    AppendFlag(args, "--matcher", pipeline.matcher);
  }
  if (pipeline.scheme != defaults.pipeline.scheme) {
    AppendFlag(args, "--scheme", pipeline.scheme);
  }
  if (pipeline.blocking != defaults.pipeline.blocking) {
    AppendFlag(args, "--blocking", pipeline.blocking);
  }
  if (pipeline.machines != defaults.pipeline.machines) {
    AppendFlag(args, "--machines", std::to_string(pipeline.machines));
  }
  if (pipeline.threads != defaults.pipeline.threads) {
    AppendFlag(args, "--threads", std::to_string(pipeline.threads));
  }
  if (stream.stream) args.emplace_back("--stream");
  // The *_set-tracked flags re-emit whenever explicitly set, even at the
  // default value: "explicitly 64" and "defaulted 64" behave differently
  // on --recover reconciliation, so the round trip must preserve it.
  if (stream.chunk_set) {
    AppendFlag(args, "--stream-chunk", std::to_string(stream.chunk));
  }
  if (stream.arrival_seed_set) {
    AppendFlag(args, "--arrival-seed", std::to_string(stream.arrival_seed));
  }
  if (persist.snapshot_dir != defaults.persist.snapshot_dir) {
    AppendFlag(args, "--snapshot-dir", persist.snapshot_dir);
  }
  if (persist.snapshot_every != defaults.persist.snapshot_every) {
    AppendFlag(args, "--snapshot-every",
               std::to_string(persist.snapshot_every));
  }
  if (persist.recover) args.emplace_back("--recover");
  if (persist.fsync) args.emplace_back("--fsync");
  if (serve.serve) args.emplace_back("--serve");
  if (serve.query_file != defaults.serve.query_file) {
    AppendFlag(args, "--query-file", serve.query_file);
  }
  if (serve.qps != defaults.serve.qps) {
    AppendFlag(args, "--qps", std::to_string(serve.qps));
  }
  if (obs.metrics_json != defaults.obs.metrics_json) {
    AppendFlag(args, "--metrics-json", obs.metrics_json);
  }
  if (obs.trace_json != defaults.obs.trace_json) {
    AppendFlag(args, "--trace-json", obs.trace_json);
  }
  if (obs.stats_port_set) {
    AppendFlag(args, "--stats-port", std::to_string(obs.stats_port));
  }
  if (obs.stats_ready_file != defaults.obs.stats_ready_file) {
    AppendFlag(args, "--stats-ready-file", obs.stats_ready_file);
  }
  if (obs.slow_query_log != defaults.obs.slow_query_log) {
    AppendFlag(args, "--slow-query-log", obs.slow_query_log);
  }
  if (obs.slow_query_us != defaults.obs.slow_query_us) {
    AppendFlag(args, "--slow-query-us", FormatDouble(obs.slow_query_us));
  }
  if (obs.stall_deadline_ms != defaults.obs.stall_deadline_ms) {
    AppendFlag(args, "--stall-deadline-ms",
               std::to_string(obs.stall_deadline_ms));
  }
  return args;
}

Result<DedupToolOptions> ParseDedupToolArgs(
    const std::vector<std::string>& args) {
  DedupToolOptions options = DefaultDedupToolOptions();
  FlagSet flags;
  RegisterDedupToolFlags(flags, &options);
  CEM_RETURN_IF_ERROR(flags.Parse(args));
  return options;
}

std::string DedupToolUsage() {
  DedupToolOptions options = DefaultDedupToolOptions();
  FlagSet flags;
  RegisterDedupToolFlags(flags, &options);
  return flags.Usage();
}

}  // namespace cem::serve
