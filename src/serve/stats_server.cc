#include "serve/stats_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "obs/expo.h"
#include "obs/metrics.h"

namespace cem::serve {
namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Internal Server Error";
  }
}

/// Blocking full write (the response is small; EINTR retried).
void WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // Peer gone; nothing useful to do on a stats socket.
    }
    off += static_cast<size_t>(n);
  }
}

}  // namespace

Result<std::unique_ptr<StatsServer>> StatsServer::Start(uint16_t port,
                                                        StatsSources sources) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return InternalError(std::string("stats socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return InternalError("stats bind 127.0.0.1:" + std::to_string(port) +
                         ": " + err);
  }
  if (::listen(fd, 16) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return InternalError("stats listen: " + err);
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return InternalError("stats getsockname: " + err);
  }
  return std::unique_ptr<StatsServer>(
      new StatsServer(fd, ntohs(addr.sin_port), std::move(sources)));
}

StatsServer::StatsServer(int listen_fd, uint16_t port, StatsSources sources)
    : listen_fd_(listen_fd), port_(port), sources_(std::move(sources)) {
  thread_ = std::thread([this] { AcceptLoop(); });
}

StatsServer::~StatsServer() {
  stopping_.store(true, std::memory_order_release);
  // Shutting the listening socket down makes the blocked accept() return
  // immediately (EINVAL on Linux) — the portable no-self-pipe wakeup.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
}

StatsServer::Response StatsServer::Handle(std::string_view path) const {
  Response response;
  if (path == "/metrics" || path == "/metrics.json") {
    if (sources_.refresh) sources_.refresh();
    const obs::MetricsSnapshot snapshot =
        obs::MetricsRegistry::Global().Snapshot();
    if (path == "/metrics") {
      response.content_type = "text/plain; version=0.0.4; charset=utf-8";
      response.body = obs::RenderMetricsPrometheus(snapshot);
    } else {
      response.content_type = "application/json";
      response.body = snapshot.ToJson();
    }
    return response;
  }
  if (path == "/slowlog.json") {
    response.content_type = "application/json";
    response.body =
        sources_.slowlog_json ? sources_.slowlog_json() : std::string("[]\n");
    return response;
  }
  if (path == "/healthz") {
    const bool healthy = !sources_.healthy || sources_.healthy();
    response.status = healthy ? 200 : 503;
    response.body = healthy ? "ok\n" : "stalled\n";
    return response;
  }
  response.status = 404;
  response.body = "not found\n";
  return response;
}

void StatsServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // shutdown() at destruction (or a dead listener): leave the loop.
      break;
    }
    // A stuck client must not wedge the single accept thread forever.
    timeval timeout{};
    timeout.tv_sec = 2;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    ServeConnection(fd);
    ::close(fd);
  }
}

void StatsServer::ServeConnection(int fd) const {
  // Only the request line matters: "GET <path> HTTP/1.x". Read until its
  // newline (headers may trail in the buffer; they are ignored).
  char buf[2048];
  size_t have = 0;
  while (have < sizeof(buf) - 1) {
    const ssize_t n = ::recv(fd, buf + have, sizeof(buf) - 1 - have, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (have == 0) return;  // Nothing readable; drop the connection.
      break;
    }
    have += static_cast<size_t>(n);
    if (std::memchr(buf, '\n', have) != nullptr) break;
  }
  buf[have] = '\0';
  std::string_view request(buf, have);
  request = request.substr(0, request.find_first_of("\r\n"));

  Response response;
  if (request.substr(0, 4) != "GET ") {
    response.status = 405;
    response.body = "only GET\n";
  } else {
    std::string_view path = request.substr(4);
    path = path.substr(0, path.find(' '));
    // Query strings are accepted and ignored (scrapers add cache busters).
    path = path.substr(0, path.find('?'));
    response = Handle(path);
  }

  char header[256];
  std::snprintf(header, sizeof(header),
                "HTTP/1.0 %d %s\r\n"
                "Content-Type: %s\r\n"
                "Content-Length: %zu\r\n"
                "Connection: close\r\n\r\n",
                response.status, StatusText(response.status),
                response.content_type.c_str(), response.body.size());
  WriteAll(fd, std::string(header) + response.body);
}

}  // namespace cem::serve
