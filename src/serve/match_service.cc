#include "serve/match_service.h"

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <utility>

#include "blocking/minhash.h"
#include "core/match_set.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace cem::serve {
namespace {

/// Validates that `ref` names an author reference of `dataset`.
Status ValidateRef(const data::Dataset& dataset, data::EntityId ref) {
  if (ref >= dataset.num_entities()) {
    return InvalidArgumentError("reference id out of range");
  }
  if (dataset.entity(ref).type != data::EntityType::kAuthorRef) {
    return InvalidArgumentError("only author references are queryable");
  }
  return OkStatus();
}

}  // namespace

MatchService::MatchService(stream::StreamingMatcher& matcher,
                           const ServeOptions& options)
    : matcher_(matcher),
      options_(options),
      slow_log_(options.slow_query_log_size, options.slow_query_us) {
  epoch_.store(matcher.num_live(), std::memory_order_release);
}

Status MatchService::Ingest(data::EntityId ref) {
  return IngestBatch({ref});
}

Status MatchService::IngestBatch(const std::vector<data::EntityId>& refs) {
  static obs::Counter& chunks =
      obs::MetricsRegistry::Global().counter("serve_ingest_chunks");
  static obs::Gauge& epoch_gauge =
      obs::MetricsRegistry::Global().gauge("serve_epoch");
  // Announce the pending exclusive acquisition so new readers stand
  // aside; without this, glibc's reader-preferenced rwlock lets a steady
  // lookup stream starve ingest indefinitely.
  ingest_waiting_.fetch_add(1, std::memory_order_release);
  std::unique_lock lock(mu_);
  ingest_waiting_.fetch_sub(1, std::memory_order_release);
  // Validation happens under the lock: "already live" is only meaningful
  // against the state this very section will extend.
  std::unordered_set<data::EntityId> in_batch;
  for (data::EntityId ref : refs) {
    CEM_RETURN_IF_ERROR(ValidateRef(matcher_.dataset(), ref));
    if (matcher_.is_live(ref)) {
      return FailedPreconditionError("reference is already live");
    }
    if (!in_batch.insert(ref).second) {
      return InvalidArgumentError("duplicate reference in ingest batch");
    }
  }
  matcher_.AddBatch(refs);
  // Publish: everything AddBatch built is complete and quiescent; readers
  // acquiring the shared lock from here on answer at the new epoch.
  epoch_.store(matcher_.num_live(), std::memory_order_release);
  chunks.Add(1);
  epoch_gauge.Set(static_cast<double>(matcher_.num_live()));
  return OkStatus();
}

Result<QueryResult> MatchService::Lookup(const Query& query) const {
  static obs::Counter& queries =
      obs::MetricsRegistry::Global().counter("serve_queries");
  static obs::Histogram& latency =
      obs::MetricsRegistry::Global().histogram("serve_query_us");
  obs::QueryTrace trace;
  trace.query_id = obs::NextQueryId();
  trace.ref = query.ref;
  trace.start_ns = obs::TraceNowNs();
  if (Status status = ValidateRef(matcher_.dataset(), query.ref);
      !status.ok()) {
    static obs::Counter& errors =
        obs::MetricsRegistry::Global().counter("serve_query_errors");
    trace.error = true;
    trace.total_us =
        static_cast<double>(obs::TraceNowNs() - trace.start_ns) / 1e3;
    errors.Add(1);
    // Rejected lookups feed the window as errors (the live error rate),
    // but never the latency histogram or the slow-query log — those
    // describe served answers.
    window_.Record(trace.total_us, /*error=*/true);
    return status;
  }
  // Ingest priority: let a pending exclusive section acquire first (the
  // blocked time still counts toward this lookup's latency).
  while (ingest_waiting_.load(std::memory_order_acquire) > 0) {
    std::this_thread::yield();
  }
  std::shared_lock lock(mu_);
  // The epoch contract: a reader holding the shared lock sees a quiescent
  // matcher — every mutation (and its drain) completed before the epoch
  // was published and the exclusive lock released.
  CEM_DCHECK(matcher_.quiescent());
  QueryResult result = LookupLocked(query, &trace);
  lock.unlock();
  trace.total_us =
      static_cast<double>(obs::TraceNowNs() - trace.start_ns) / 1e3;
  result.latency_us = static_cast<uint64_t>(trace.total_us);
  latency.Record(trace.total_us);
  queries.Add(1);
  window_.Record(trace.total_us, /*error=*/false);
  slow_log_.Offer(trace);
  result.trace = trace;
  return result;
}

void MatchService::PublishWindowGauges() const {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  char name[64];
  for (const uint64_t window_s : {1ull, 10ull, 60ull}) {
    const obs::WindowStats stats = window_.Over(window_s);
    const std::pair<const char*, double> values[] = {
        {"qps", stats.qps},       {"error_rate", stats.error_rate},
        {"p50_us", stats.p50},    {"p95_us", stats.p95},
        {"p99_us", stats.p99}};
    for (const auto& [suffix, value] : values) {
      std::snprintf(name, sizeof(name), "serve_window%llus_%s",
                    static_cast<unsigned long long>(window_s), suffix);
      registry.gauge(name).Set(value);
    }
  }
  registry.gauge("serve_slow_queries")
      .Set(static_cast<double>(slow_log_.slow_count()));
}

QueryResult MatchService::LookupLocked(const Query& query,
                                       obs::QueryTrace* trace) const {
  static obs::Counter& scanned =
      obs::MetricsRegistry::Global().counter("serve_candidates_scanned");
  static obs::Counter& rescores =
      obs::MetricsRegistry::Global().counter("serve_matcher_rescores");
  const data::Dataset& dataset = matcher_.dataset();
  const stream::IncrementalCover& icover = matcher_.incremental_cover();
  const core::MatchSet& matches = matcher_.matches();

  QueryResult result;
  result.ref = query.ref;
  result.epoch = matcher_.num_live();
  const uint32_t self_slot = icover.SlotOf(query.ref);
  result.live = self_slot != stream::IncrementalCover::kNoSeed;
  // Stage stamps are cumulative offsets from the query's start, read in
  // stage order from one steady clock — monotone by construction.
  const auto stage_us = [trace] {
    return static_cast<double>(obs::TraceNowNs() - trace->start_ns) / 1e3;
  };
  trace->epoch = result.epoch;
  trace->live = result.live;

  // The query's MinHash signature: the stored one for live references
  // (bit-identical to recomputation, and cheaper), computed fresh for
  // cold ones — the only per-query hashing work.
  const std::vector<uint64_t>& signature =
      result.live ? icover.signatures()[self_slot]
                  : icover.ComputeSignature(query.ref);
  trace->signature_us = stage_us();

  // LSH probe: slots sharing at least one band bucket, self filtered.
  const std::vector<uint32_t> slots =
      icover.lsh_index().CandidatesOfSignature(signature);
  result.candidates.reserve(slots.size());
  for (uint32_t slot : slots) {
    if (slot == self_slot) continue;
    CandidateScore c;
    c.ref = icover.slots()[slot];
    c.jaccard = blocking::MinHasher::EstimateJaccard(
        signature, icover.signatures()[slot]);
    result.candidates.push_back(c);
  }
  scanned.Add(result.candidates.size());
  trace->shards_probed = icover.lsh_index().num_shards();
  trace->candidates_probed = result.candidates.size();
  trace->probe_us = stage_us();

  // Ranked answer: best similarity first, ids break ties — deterministic
  // for any arrival order of the candidates themselves.
  std::sort(result.candidates.begin(), result.candidates.end(),
            [](const CandidateScore& a, const CandidateScore& b) {
              if (a.jaccard != b.jaccard) return a.jaccard > b.jaccard;
              return a.ref < b.ref;
            });
  const size_t cap =
      query.max_candidates > 0 ? query.max_candidates : options_.max_candidates;
  if (cap > 0 && result.candidates.size() > cap) {
    result.candidates.resize(cap);
  }
  trace->candidates_returned = result.candidates.size();
  trace->rank_us = stage_us();

  if (result.live) {
    // Live query: the published fixpoint already holds its matches.
    for (CandidateScore& c : result.candidates) {
      c.matched = matches.Contains(data::EntityPair(query.ref, c.ref));
    }
    result.cluster = core::ClusterOf(dataset, matches, query.ref);
  } else if (options_.score_cold_queries && !result.candidates.empty()) {
    // Cold query: one conditioned matcher call over the query plus its
    // candidates' full neighborhoods — the same relational context an
    // ingest of this reference would evaluate with, minus the mutation.
    std::vector<data::EntityId> entities = {query.ref};
    for (const CandidateScore& c : result.candidates) {
      for (uint32_t n : icover.HomesOf(c.ref)) {
        const std::vector<data::EntityId>& members =
            icover.cover().neighborhood(n).entities;
        entities.insert(entities.end(), members.begin(), members.end());
      }
    }
    std::sort(entities.begin(), entities.end());
    entities.erase(std::unique(entities.begin(), entities.end()),
                   entities.end());
    const core::MatchSet local =
        matcher_.core_matcher().Match(entities, matches);
    rescores.Add(1);
    for (CandidateScore& c : result.candidates) {
      c.matched = local.Contains(data::EntityPair(query.ref, c.ref));
    }
    // The cold reference joins the cluster of its best matched candidate
    // (the candidates are already ranked, so the first matched one wins).
    for (const CandidateScore& c : result.candidates) {
      if (!c.matched) continue;
      result.cluster = core::ClusterOf(dataset, matches, c.ref);
      result.cluster.insert(
          std::lower_bound(result.cluster.begin(), result.cluster.end(),
                           query.ref),
          query.ref);
      break;
    }
  }
  if (result.cluster.empty()) result.cluster = {query.ref};
  trace->cluster_size = result.cluster.size();
  trace->cover_us = stage_us();

  for (const CandidateScore& c : result.candidates) {
    if (c.matched) result.confidence = std::max(result.confidence, c.jaccard);
  }
  return result;
}

}  // namespace cem::serve
