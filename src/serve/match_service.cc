#include "serve/match_service.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <utility>

#include "blocking/minhash.h"
#include "core/match_set.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace cem::serve {
namespace {

/// Validates that `ref` names an author reference of `dataset`.
Status ValidateRef(const data::Dataset& dataset, data::EntityId ref) {
  if (ref >= dataset.num_entities()) {
    return InvalidArgumentError("reference id out of range");
  }
  if (dataset.entity(ref).type != data::EntityType::kAuthorRef) {
    return InvalidArgumentError("only author references are queryable");
  }
  return OkStatus();
}

}  // namespace

MatchService::MatchService(stream::StreamingMatcher& matcher,
                           const ServeOptions& options)
    : matcher_(matcher), options_(options) {
  epoch_.store(matcher.num_live(), std::memory_order_release);
}

Status MatchService::Ingest(data::EntityId ref) {
  return IngestBatch({ref});
}

Status MatchService::IngestBatch(const std::vector<data::EntityId>& refs) {
  static obs::Counter& chunks =
      obs::MetricsRegistry::Global().counter("serve_ingest_chunks");
  static obs::Gauge& epoch_gauge =
      obs::MetricsRegistry::Global().gauge("serve_epoch");
  // Announce the pending exclusive acquisition so new readers stand
  // aside; without this, glibc's reader-preferenced rwlock lets a steady
  // lookup stream starve ingest indefinitely.
  ingest_waiting_.fetch_add(1, std::memory_order_release);
  std::unique_lock lock(mu_);
  ingest_waiting_.fetch_sub(1, std::memory_order_release);
  // Validation happens under the lock: "already live" is only meaningful
  // against the state this very section will extend.
  std::unordered_set<data::EntityId> in_batch;
  for (data::EntityId ref : refs) {
    CEM_RETURN_IF_ERROR(ValidateRef(matcher_.dataset(), ref));
    if (matcher_.is_live(ref)) {
      return FailedPreconditionError("reference is already live");
    }
    if (!in_batch.insert(ref).second) {
      return InvalidArgumentError("duplicate reference in ingest batch");
    }
  }
  matcher_.AddBatch(refs);
  // Publish: everything AddBatch built is complete and quiescent; readers
  // acquiring the shared lock from here on answer at the new epoch.
  epoch_.store(matcher_.num_live(), std::memory_order_release);
  chunks.Add(1);
  epoch_gauge.Set(static_cast<double>(matcher_.num_live()));
  return OkStatus();
}

Result<QueryResult> MatchService::Lookup(const Query& query) const {
  static obs::Counter& queries =
      obs::MetricsRegistry::Global().counter("serve_queries");
  static obs::Histogram& latency =
      obs::MetricsRegistry::Global().histogram("serve_query_us");
  CEM_RETURN_IF_ERROR(ValidateRef(matcher_.dataset(), query.ref));
  obs::ScopedLatencyUs timer(latency);
  const auto start = std::chrono::steady_clock::now();
  // Ingest priority: let a pending exclusive section acquire first (the
  // blocked time still counts toward this lookup's latency).
  while (ingest_waiting_.load(std::memory_order_acquire) > 0) {
    std::this_thread::yield();
  }
  std::shared_lock lock(mu_);
  // The epoch contract: a reader holding the shared lock sees a quiescent
  // matcher — every mutation (and its drain) completed before the epoch
  // was published and the exclusive lock released.
  CEM_DCHECK(matcher_.quiescent());
  QueryResult result = LookupLocked(query);
  lock.unlock();
  result.latency_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  queries.Add(1);
  return result;
}

QueryResult MatchService::LookupLocked(const Query& query) const {
  static obs::Counter& scanned =
      obs::MetricsRegistry::Global().counter("serve_candidates_scanned");
  static obs::Counter& rescores =
      obs::MetricsRegistry::Global().counter("serve_matcher_rescores");
  const data::Dataset& dataset = matcher_.dataset();
  const stream::IncrementalCover& icover = matcher_.incremental_cover();
  const core::MatchSet& matches = matcher_.matches();

  QueryResult result;
  result.ref = query.ref;
  result.epoch = matcher_.num_live();
  const uint32_t self_slot = icover.SlotOf(query.ref);
  result.live = self_slot != stream::IncrementalCover::kNoSeed;

  // The query's MinHash signature: the stored one for live references
  // (bit-identical to recomputation, and cheaper), computed fresh for
  // cold ones — the only per-query hashing work.
  const std::vector<uint64_t>& signature =
      result.live ? icover.signatures()[self_slot]
                  : icover.ComputeSignature(query.ref);

  // LSH probe: slots sharing at least one band bucket, self filtered.
  const std::vector<uint32_t> slots =
      icover.lsh_index().CandidatesOfSignature(signature);
  result.candidates.reserve(slots.size());
  for (uint32_t slot : slots) {
    if (slot == self_slot) continue;
    CandidateScore c;
    c.ref = icover.slots()[slot];
    c.jaccard = blocking::MinHasher::EstimateJaccard(
        signature, icover.signatures()[slot]);
    result.candidates.push_back(c);
  }
  scanned.Add(result.candidates.size());

  // Ranked answer: best similarity first, ids break ties — deterministic
  // for any arrival order of the candidates themselves.
  std::sort(result.candidates.begin(), result.candidates.end(),
            [](const CandidateScore& a, const CandidateScore& b) {
              if (a.jaccard != b.jaccard) return a.jaccard > b.jaccard;
              return a.ref < b.ref;
            });
  const size_t cap =
      query.max_candidates > 0 ? query.max_candidates : options_.max_candidates;
  if (cap > 0 && result.candidates.size() > cap) {
    result.candidates.resize(cap);
  }

  if (result.live) {
    // Live query: the published fixpoint already holds its matches.
    for (CandidateScore& c : result.candidates) {
      c.matched = matches.Contains(data::EntityPair(query.ref, c.ref));
    }
    result.cluster = core::ClusterOf(dataset, matches, query.ref);
  } else if (options_.score_cold_queries && !result.candidates.empty()) {
    // Cold query: one conditioned matcher call over the query plus its
    // candidates' full neighborhoods — the same relational context an
    // ingest of this reference would evaluate with, minus the mutation.
    std::vector<data::EntityId> entities = {query.ref};
    for (const CandidateScore& c : result.candidates) {
      for (uint32_t n : icover.HomesOf(c.ref)) {
        const std::vector<data::EntityId>& members =
            icover.cover().neighborhood(n).entities;
        entities.insert(entities.end(), members.begin(), members.end());
      }
    }
    std::sort(entities.begin(), entities.end());
    entities.erase(std::unique(entities.begin(), entities.end()),
                   entities.end());
    const core::MatchSet local =
        matcher_.core_matcher().Match(entities, matches);
    rescores.Add(1);
    for (CandidateScore& c : result.candidates) {
      c.matched = local.Contains(data::EntityPair(query.ref, c.ref));
    }
    // The cold reference joins the cluster of its best matched candidate
    // (the candidates are already ranked, so the first matched one wins).
    for (const CandidateScore& c : result.candidates) {
      if (!c.matched) continue;
      result.cluster = core::ClusterOf(dataset, matches, c.ref);
      result.cluster.insert(
          std::lower_bound(result.cluster.begin(), result.cluster.end(),
                           query.ref),
          query.ref);
      break;
    }
  }
  if (result.cluster.empty()) result.cluster = {query.ref};

  for (const CandidateScore& c : result.candidates) {
    if (c.matched) result.confidence = std::max(result.confidence, c.jaccard);
  }
  return result;
}

}  // namespace cem::serve
