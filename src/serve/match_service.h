#ifndef CEM_SERVE_MATCH_SERVICE_H_
#define CEM_SERVE_MATCH_SERVICE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <shared_mutex>
#include <vector>

#include "data/entity.h"
#include "obs/query_trace.h"
#include "obs/window.h"
#include "stream/streaming_matcher.h"
#include "util/status.h"

namespace cem::serve {

/// A point query against the live match state: "who does this author
/// reference match, right now?". The reference must exist in the dataset
/// (the corpus is the universe of queryable records); it does NOT have to
/// be live — querying a not-yet-ingested reference is the "new record
/// preview" path, answered by re-scoring it against the published state
/// without mutating anything.
struct Query {
  data::EntityId ref = 0;
  /// Per-query cap on returned candidates (0 = ServeOptions::max_candidates).
  size_t max_candidates = 0;
};

/// One scored candidate of a query.
struct CandidateScore {
  /// The candidate reference (live at the answering epoch).
  data::EntityId ref = 0;
  /// MinHash-estimated Jaccard similarity of the blocking-token sets —
  /// the same estimate the cover builder thresholds on, so scores are
  /// comparable to the loose/tight knobs.
  double jaccard = 0.0;
  /// True if the published match state (or, for a cold query, the one-shot
  /// re-score) declares {query, candidate} a match.
  bool matched = false;

  friend bool operator==(const CandidateScore&,
                         const CandidateScore&) = default;
};

/// The answer to one Query. Everything except `latency_us` is a
/// deterministic function of (dataset, options, arrival prefix, query) —
/// bit-identical across thread and shard counts, which is what lets the
/// serving tests pin results against a batch rebuild.
struct QueryResult {
  /// Echo of the queried reference.
  data::EntityId ref = 0;
  /// The published epoch this answer is consistent with: the number of
  /// live references visible to the query. Monotone; a reader observing
  /// epoch E sees exactly the converged state after the E-th insert.
  uint64_t epoch = 0;
  /// True if the queried reference itself was live at `epoch`.
  bool live = false;
  /// LSH candidates, scored; sorted by descending jaccard, ties by
  /// ascending id; capped at max_candidates.
  std::vector<CandidateScore> candidates;
  /// The query's cluster: the connected component of the match graph the
  /// reference belongs to (sorted, the reference included). A cold query
  /// joins the cluster of its best matched candidate; an unmatched query's
  /// cluster is just itself.
  std::vector<data::EntityId> cluster;
  /// Confidence of the match decision: the highest jaccard among matched
  /// candidates (0 when the query matched nothing).
  double confidence = 0.0;
  /// Service-side wall time of this lookup, microseconds. Informational —
  /// nondeterministic like `trace`.
  uint64_t latency_us = 0;
  /// Request-level trace context: query id, per-stage micro-timings and
  /// candidate/shard counts (obs/query_trace.h). Informational — ids and
  /// timings differ run to run; everything above stays deterministic.
  obs::QueryTrace trace;
};

/// Options of a MatchService.
struct ServeOptions {
  /// Default cap on candidates per answer (Query::max_candidates overrides).
  size_t max_candidates = 64;
  /// Re-score cold (not-yet-live) query references with the wrapped
  /// matcher: one Match() call over the query plus its candidates'
  /// neighborhoods. Off = cold queries return jaccard scores only
  /// (matched stays false).
  bool score_cold_queries = true;
  /// Lookups at or over this many microseconds land their trace in the
  /// slow-query log.
  double slow_query_us = 1000.0;
  /// Worst-N capacity of the slow-query log.
  size_t slow_query_log_size = 32;
};

/// The serving layer: wraps a live stream::StreamingMatcher and answers
/// point queries concurrently with ingest.
///
/// Concurrency model — read-mostly epochs over a shared/exclusive lock:
/// ingest (Ingest/IngestBatch) takes the lock exclusively, streams the
/// references, drains to convergence, and *publishes* the new epoch (the
/// live-reference count) before releasing; queries take the lock shared
/// and read the published state. Readers therefore never observe a
/// half-patched cover or a mid-drain match set — every answer is
/// consistent with exactly one quiescent prefix of the arrival order, and
/// any number of queries run in parallel with each other (the underlying
/// probe/score/cluster path is purely const). Writers never starve
/// readers for long: one ingest chunk is one critical section, and the
/// amortized per-insert work is small (the PR 5 claim). Nor do readers
/// starve writers: glibc's shared_mutex prefers readers, so a steady
/// stream of lookups could otherwise bar ingest indefinitely — an
/// ingest-waiting gate makes new readers stand aside until a pending
/// exclusive acquisition goes through (ingest priority, bounded by one
/// in-flight lookup's critical section).
///
/// Error handling: Status/Result<T> returns, never exceptions and never
/// CHECK-aborts on bad input — the public-surface convention (README
/// "Error handling").
class MatchService {
 public:
  /// `matcher` must outlive the service. The service takes over mutation:
  /// while a MatchService wraps a matcher, ALL ingest must go through
  /// Ingest/IngestBatch (calling matcher.Add() directly would bypass the
  /// lock and the epoch publication).
  explicit MatchService(stream::StreamingMatcher& matcher,
                        const ServeOptions& options = {});

  MatchService(const MatchService&) = delete;
  MatchService& operator=(const MatchService&) = delete;

  /// Ingests one reference (exclusive; drains to convergence, publishes
  /// the next epoch). InvalidArgument if `ref` is out of range or not an
  /// author reference; FailedPrecondition if it is already live.
  Status Ingest(data::EntityId ref);

  /// Ingests a chunk under one exclusive section — one drain, one epoch
  /// publication, same final state as per-element Ingest. Rejects the
  /// whole batch (no partial ingest) on any invalid or duplicate
  /// reference.
  Status IngestBatch(const std::vector<data::EntityId>& refs);

  /// Answers a point query against the published epoch (shared; runs
  /// concurrently with other Lookups, blocks only while an ingest chunk
  /// holds the lock). InvalidArgument if the reference is out of range or
  /// not an author reference.
  Result<QueryResult> Lookup(const Query& query) const;

  /// The last published epoch (= live references visible to queries).
  /// Lock-free; monotone. A Lookup's answer always carries the epoch it
  /// actually read, which is >= any value observed here beforehand.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  const ServeOptions& options() const { return options_; }

  /// The wrapped matcher. Const access only — and only safe to *read*
  /// between ingest calls on the caller's own thread (tests, tooling);
  /// concurrent readers must go through Lookup().
  const stream::StreamingMatcher& streaming_matcher() const {
    return matcher_;
  }

  // --- request-level observability ------------------------------------------

  /// Rolling 1s/10s/60s latency/QPS/error-rate window every Lookup feeds
  /// (validation failures included, as errors). Thread-safe reads.
  const obs::RollingWindow& rolling_window() const { return window_; }

  /// The worst-N slow-query traces over options().slow_query_us.
  const obs::SlowQueryLog& slow_query_log() const { return slow_log_; }

  /// Publishes the rolling-window stats as registry gauges
  /// (`serve_window<W>s_{qps,error_rate,p50_us,p95_us,p99_us}` for W in
  /// 1/10/60) plus `serve_slow_queries` — the refresh hook a stats scrape
  /// runs so /metrics carries current window values. Thread-safe.
  void PublishWindowGauges() const;

 private:
  /// Lookup body; runs with the shared lock held. Fills `trace`'s stage
  /// offsets and counts as it goes.
  QueryResult LookupLocked(const Query& query, obs::QueryTrace* trace) const;

  stream::StreamingMatcher& matcher_;
  ServeOptions options_;
  /// Shared/exclusive lock over the matcher's entire mutable state.
  mutable std::shared_mutex mu_;
  /// Number of ingest sections waiting for (not yet holding) `mu_`.
  /// Lookup() spins politely while this is non-zero, giving ingest
  /// acquisition priority over glibc's reader-preferenced rwlock.
  mutable std::atomic<uint32_t> ingest_waiting_{0};
  /// Published epoch: matcher_.num_live() as of the last completed ingest
  /// section (release-stored under the exclusive lock).
  std::atomic<uint64_t> epoch_{0};
  /// Request-level observability (mutable: Lookup is const; both are
  /// internally synchronized).
  mutable obs::RollingWindow window_;
  mutable obs::SlowQueryLog slow_log_;
};

}  // namespace cem::serve

#endif  // CEM_SERVE_MATCH_SERVICE_H_
