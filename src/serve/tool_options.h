#ifndef CEM_SERVE_TOOL_OPTIONS_H_
#define CEM_SERVE_TOOL_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/flags.h"
#include "util/status.h"

namespace cem::serve {

// The consolidated option surface of examples/dedup_tool.cpp — every flag
// the tool accepts, grouped by the subsystem it configures and parsed in
// exactly one place (ParseDedupToolArgs). The structs default to the same
// values the loose flags used to, including the environment-derived ones
// (CEM_BLOCKING, CEM_SNAPSHOT_DIR), and ToArgs() round-trips: for any
// options value o, parsing o.ToArgs() reproduces o exactly (pinned by
// tests/flags_test.cc).

/// Where the corpus comes from: a TSV file, or a generated workload.
struct CorpusOptions {
  /// TSV corpus path (see data/tsv_io.h); empty = generate instead.
  std::string input;
  /// Generated workload family: "hepth" or "dblp".
  std::string generate = "dblp";
  /// Generated workload scale factor.
  double scale = 0.5;

  friend bool operator==(const CorpusOptions&, const CorpusOptions&) = default;
};

/// The batch pipeline: matcher, message-passing scheme, blocking, grid.
struct PipelineOptions {
  /// "mln" or "rules".
  std::string matcher = "mln";
  /// "nomp", "smp" or "mmp".
  std::string scheme = "mmp";
  /// "canopy" or "lsh"; defaults from CEM_BLOCKING like the benches.
  std::string blocking;
  /// Simulated grid machines (1 = in-process).
  uint32_t machines = 1;
  /// Worker threads (0 = process default: CEM_THREADS or hardware).
  uint32_t threads = 0;

  friend bool operator==(const PipelineOptions&,
                         const PipelineOptions&) = default;
};

/// Streaming-ingest replay.
struct StreamToolOptions {
  /// Replay through stream::StreamingMatcher instead of the batch run.
  bool stream = false;
  /// References per AddBatch chunk (0 = one at a time).
  uint32_t chunk = 64;
  bool chunk_set = false;  ///< Explicit flag vs default (recovery checks).
  /// Seed of the random arrival order.
  uint64_t arrival_seed = 1;
  bool arrival_seed_set = false;  ///< Explicit flag vs default.

  friend bool operator==(const StreamToolOptions&,
                         const StreamToolOptions&) = default;
};

/// Durable streaming state (persist/).
struct PersistToolOptions {
  /// State directory (empty = no persistence); defaults from
  /// CEM_SNAPSHOT_DIR so deployments can set it globally.
  std::string snapshot_dir;
  /// Auto-snapshot interval in inserts (0 = WAL only).
  size_t snapshot_every = 4096;
  /// Resume from snapshot_dir state instead of starting fresh.
  bool recover = false;
  /// fsync WAL appends and snapshot files (survive power loss).
  bool fsync = false;

  friend bool operator==(const PersistToolOptions&,
                         const PersistToolOptions&) = default;
};

/// The serving layer (serve::MatchService driven concurrently with
/// streamed ingest).
struct ServeToolOptions {
  /// Stand up a MatchService over the streamed state and issue point
  /// queries from a reader thread while ingest proceeds. Implies --stream.
  bool serve = false;
  /// File of query reference ids, one per line (empty = query a
  /// deterministic sample of the corpus references).
  std::string query_file;
  /// Target query rate, queries/second (0 = unthrottled).
  uint32_t qps = 0;

  friend bool operator==(const ServeToolOptions&,
                         const ServeToolOptions&) = default;
};

/// Observability exports and the live stats endpoint.
struct ObsToolOptions {
  /// Write the metrics registry as flat JSON here at exit (empty = off).
  std::string metrics_json;
  /// Enable tracing; write a Chrome trace_event array here (empty = off).
  std::string trace_json;
  /// Serve /metrics, /metrics.json, /slowlog.json and /healthz on
  /// 127.0.0.1:<port> while the tool runs (0 = ephemeral port).
  uint32_t stats_port = 0;
  bool stats_port_set = false;  ///< --stats-port given (0 means ephemeral).
  /// Write the bound stats port (one decimal line) here once listening —
  /// how a script scraping an ephemeral port learns it. Also a scrape
  /// handshake: at exit the tool keeps the endpoint alive (up to 60s)
  /// until this file is deleted, so the script can read final-state
  /// metrics without racing the process shutdown.
  std::string stats_ready_file;
  /// Write the slow-query log as a JSON array here after --serve (empty =
  /// off).
  std::string slow_query_log;
  /// Slow-query threshold for the serve log, microseconds.
  double slow_query_us = 1000.0;
  /// Ingest-stall watchdog deadline, milliseconds (--serve only).
  uint64_t stall_deadline_ms = 2000;

  friend bool operator==(const ObsToolOptions&, const ObsToolOptions&) = default;
};

/// Everything dedup_tool accepts, in one value.
struct DedupToolOptions {
  CorpusOptions corpus;
  PipelineOptions pipeline;
  StreamToolOptions stream;
  PersistToolOptions persist;
  ServeToolOptions serve;
  ObsToolOptions obs;
  /// Matched-pairs TSV output path (empty = don't write).
  std::string output;

  /// The flag list reproducing this value: parsing ToArgs() yields an
  /// equal options value. Fields at their defaults are omitted (except
  /// the *_set-tracked ones, emitted whenever explicitly set).
  std::vector<std::string> ToArgs() const;

  friend bool operator==(const DedupToolOptions&,
                         const DedupToolOptions&) = default;
};

/// Constructs the defaults, environment lookups included.
DedupToolOptions DefaultDedupToolOptions();

/// Binds every dedup_tool flag onto `options` (which must outlive the
/// FlagSet). Exposed separately so tests can probe individual bindings.
void RegisterDedupToolFlags(FlagSet& flags, DedupToolOptions* options);

/// The one parsing entry point: args are argv[1..]. InvalidArgument on
/// unknown flags, missing values or unparseable numbers.
Result<DedupToolOptions> ParseDedupToolArgs(
    const std::vector<std::string>& args);

/// Usage text (flag per line, with help).
std::string DedupToolUsage();

}  // namespace cem::serve

#endif  // CEM_SERVE_TOOL_OPTIONS_H_
