#include "core/match_set.h"

#include <algorithm>
#include <unordered_map>

#include "util/union_find.h"

namespace cem::core {

MatchSet::MatchSet(const std::vector<data::EntityPair>& pairs) {
  for (const data::EntityPair& p : pairs) Insert(p);
}

bool MatchSet::Insert(data::EntityPair pair) {
  return keys_.insert(data::PairKey(pair)).second;
}

size_t MatchSet::InsertAll(const MatchSet& other) {
  size_t added = 0;
  for (uint64_t key : other.keys_) added += keys_.insert(key).second ? 1 : 0;
  return added;
}

bool MatchSet::Erase(data::EntityPair pair) {
  return keys_.erase(data::PairKey(pair)) > 0;
}

size_t MatchSet::IntersectionSize(const MatchSet& other) const {
  const MatchSet& small = size() <= other.size() ? *this : other;
  const MatchSet& large = size() <= other.size() ? other : *this;
  size_t count = 0;
  for (uint64_t key : small.keys_) count += large.keys_.count(key);
  return count;
}

bool MatchSet::IsSubsetOf(const MatchSet& other) const {
  if (size() > other.size()) return false;
  for (uint64_t key : keys_) {
    if (!other.keys_.count(key)) return false;
  }
  return true;
}

std::vector<data::EntityPair> MatchSet::Difference(
    const MatchSet& other) const {
  std::vector<data::EntityPair> out;
  for (uint64_t key : keys_) {
    if (!other.keys_.count(key)) out.push_back(data::PairFromKey(key));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<data::EntityPair> MatchSet::SortedPairs() const {
  std::vector<data::EntityPair> out;
  out.reserve(keys_.size());
  for (uint64_t key : keys_) out.push_back(data::PairFromKey(key));
  std::sort(out.begin(), out.end());
  return out;
}

MatchSet TransitiveClosure(const MatchSet& matches) {
  // Compact the mentioned entities, union them, emit all within-component
  // pairs.
  std::unordered_map<data::EntityId, uint32_t> dense;
  std::vector<data::EntityId> ids;
  auto intern = [&](data::EntityId e) {
    auto [it, inserted] = dense.emplace(e, static_cast<uint32_t>(ids.size()));
    if (inserted) ids.push_back(e);
    return it->second;
  };
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (uint64_t key : matches.keys()) {
    const data::EntityPair p = data::PairFromKey(key);
    edges.emplace_back(intern(p.a), intern(p.b));
  }
  UnionFind uf(ids.size());
  for (const auto& [u, v] : edges) uf.Union(u, v);
  std::vector<std::vector<uint32_t>> groups = uf.Groups();
  MatchSet out;
  for (const auto& group : groups) {
    for (size_t i = 0; i < group.size(); ++i) {
      for (size_t j = i + 1; j < group.size(); ++j) {
        out.Insert(data::EntityPair(ids[group[i]], ids[group[j]]));
      }
    }
  }
  return out;
}

std::vector<data::EntityId> ClusterOf(const data::Dataset& dataset,
                                      const MatchSet& matches,
                                      data::EntityId ref) {
  std::vector<data::EntityId> cluster = {ref};
  std::unordered_set<data::EntityId> seen = {ref};
  // BFS over matched candidate pairs. Every match the pipeline produces is
  // a candidate pair (the MLN only grounds candidates), so the dataset's
  // pair adjacency is a complete edge list for the match graph.
  for (size_t head = 0; head < cluster.size(); ++head) {
    const data::EntityId e = cluster[head];
    for (data::PairId pid : dataset.PairsOfEntity(e)) {
      const data::EntityPair p = dataset.candidate_pair(pid).pair;
      if (!matches.Contains(p)) continue;
      const data::EntityId other = p.a == e ? p.b : p.a;
      if (seen.insert(other).second) cluster.push_back(other);
    }
  }
  std::sort(cluster.begin(), cluster.end());
  return cluster;
}

}  // namespace cem::core
