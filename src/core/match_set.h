#ifndef CEM_CORE_MATCH_SET_H_
#define CEM_CORE_MATCH_SET_H_

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "data/dataset.h"
#include "data/entity.h"

namespace cem::core {

/// A set of entity pairs declared (or assumed) to be matches — the currency
/// of the whole framework: matcher outputs, evidence sets V+ / V−, and
/// messages are all MatchSets.
class MatchSet {
 public:
  MatchSet() = default;

  /// Builds a set from a list of pairs.
  explicit MatchSet(const std::vector<data::EntityPair>& pairs);

  /// Inserts `pair`; returns true if it was new.
  bool Insert(data::EntityPair pair);

  /// Inserts every pair of `other`; returns the number of new pairs.
  size_t InsertAll(const MatchSet& other);

  /// Removes `pair`; returns true if it was present.
  bool Erase(data::EntityPair pair);

  bool Contains(data::EntityPair pair) const {
    return keys_.count(data::PairKey(pair)) > 0;
  }

  size_t size() const { return keys_.size(); }
  bool empty() const { return keys_.empty(); }
  void clear() { keys_.clear(); }

  /// Number of pairs present in both sets.
  size_t IntersectionSize(const MatchSet& other) const;

  /// True if every pair of this set is in `other`.
  bool IsSubsetOf(const MatchSet& other) const;

  /// Pairs in this set that are missing from `other`.
  std::vector<data::EntityPair> Difference(const MatchSet& other) const;

  /// All pairs, sorted (deterministic iteration for tests and output).
  std::vector<data::EntityPair> SortedPairs() const;

  /// Unsorted raw iteration.
  const std::unordered_set<uint64_t>& keys() const { return keys_; }

  friend bool operator==(const MatchSet& a, const MatchSet& b) {
    return a.keys_ == b.keys_;
  }

 private:
  std::unordered_set<uint64_t> keys_;
};

/// Transitive closure of `matches` over the entities they mention: pairs
/// within each connected component. Appendix A: the transitive closure of a
/// monotone matcher is monotone, so this is a valid post-pass.
MatchSet TransitiveClosure(const MatchSet& matches);

/// The cluster of `ref` under `matches`: every entity reachable from `ref`
/// through matched candidate pairs (BFS over the dataset's candidate-pair
/// adjacency restricted to `matches`), sorted, `ref` included. Equals the
/// connected component TransitiveClosure(matches) would place `ref` in,
/// computed in O(cluster size × pairs per entity) instead of
/// O(|matches|) — the point-query read path of the serving layer. Purely
/// const: safe to call concurrently with other reads, never with
/// MatchSet::Insert.
std::vector<data::EntityId> ClusterOf(const data::Dataset& dataset,
                                      const MatchSet& matches,
                                      data::EntityId ref);

}  // namespace cem::core

#endif  // CEM_CORE_MATCH_SET_H_
