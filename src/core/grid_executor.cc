#include "core/grid_executor.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "core/maximal_message.h"
#include "core/neighbor_index.h"
#include "util/execution_context.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace cem::core {
namespace {

constexpr double kScoreEps = 1e-9;

/// Output of one map task (one neighborhood run).
struct MapOutput {
  MatchSet matches;
  std::vector<MaximalMessage> messages;  // MMP only.
  double seconds = 0.0;
};

/// Makespan of assigning `task_seconds` randomly to `machines` machines.
double SimulatedMakespan(const std::vector<double>& task_seconds,
                         uint32_t machines, Rng& rng) {
  std::vector<double> load(std::max<uint32_t>(machines, 1), 0.0);
  for (double t : task_seconds) {
    load[rng.NextBounded(load.size())] += t;
  }
  return *std::max_element(load.begin(), load.end());
}

}  // namespace

const char* MpSchemeName(MpScheme scheme) {
  switch (scheme) {
    case MpScheme::kNoMp:
      return "NO-MP";
    case MpScheme::kSmp:
      return "SMP";
    case MpScheme::kMmp:
      return "MMP";
  }
  return "?";
}

GridResult RunGrid(const Matcher& matcher, const Cover& cover,
                   const GridOptions& options) {
  const auto* probabilistic =
      dynamic_cast<const ProbabilisticMatcher*>(&matcher);
  if (options.scheme == MpScheme::kMmp) {
    CEM_CHECK(probabilistic != nullptr)
        << "MMP requires a Type-II (probabilistic) matcher";
  }

  Timer wall;
  GridResult result;
  Rng rng(options.seed);
  NeighborIndex index(cover);
  // 0 workers = the caller's context pool (one pool for the whole pipeline
  // instead of one per RunGrid call); an explicit count gets a dedicated
  // pool.
  std::unique_ptr<ThreadPool> own_pool;
  if (options.num_worker_threads > 0) {
    own_pool = std::make_unique<ThreadPool>(options.num_worker_threads);
  }
  ThreadPool& pool = own_pool != nullptr ? *own_pool
                     : options.context != nullptr
                         ? options.context->pool()
                         : ExecutionContext::Default().pool();
  const size_t max_rounds =
      options.max_rounds > 0 ? options.max_rounds : cover.size() + 8;

  // Initial active set: every neighborhood.
  std::vector<uint32_t> active(cover.size());
  for (uint32_t i = 0; i < cover.size(); ++i) active[i] = i;

  MatchSet matched;            // M+, updated only in reduce steps.
  MaximalMessageSet messages;  // T (MMP only).

  while (!active.empty() && result.rounds < max_rounds) {
    ++result.rounds;

    // ---- Map: run every active neighborhood against the round-start
    // snapshot, in parallel.
    std::vector<MapOutput> outputs(active.size());
    ParallelFor(pool, active.size(), [&](size_t i) {
      Timer task_timer;
      const std::vector<data::EntityId>& entities =
          cover.neighborhood(active[i]).entities;
      outputs[i].matches = matcher.Match(entities, matched);
      if (options.scheme == MpScheme::kMmp) {
        outputs[i].messages =
            ComputeMaximal(matcher, entities, matched, outputs[i].matches);
      }
      outputs[i].seconds = task_timer.ElapsedSeconds();
    });
    result.neighborhood_evaluations += active.size();

    // ---- Simulated grid time for this round.
    std::vector<double> task_seconds(outputs.size());
    for (size_t i = 0; i < outputs.size(); ++i) {
      task_seconds[i] = outputs[i].seconds;
    }
    result.simulated_seconds +=
        SimulatedMakespan(task_seconds, options.num_machines, rng) +
        options.per_round_overhead_seconds;

    if (options.scheme == MpScheme::kNoMp) {
      // NO-MP: one round, plain union, no re-activation.
      for (const MapOutput& out : outputs) matched.InsertAll(out.matches);
      break;
    }

    // ---- Reduce: merge evidence, promote messages, compute next round.
    std::vector<data::EntityPair> new_matches;
    for (const MapOutput& out : outputs) {
      for (const data::EntityPair& p : out.matches.Difference(matched)) {
        new_matches.push_back(p);
      }
      matched.InsertAll(out.matches);
    }
    if (options.scheme == MpScheme::kMmp) {
      for (const MapOutput& out : outputs) {
        for (const MaximalMessage& m : out.messages) messages.Insert(m);
      }
      bool promoted = true;
      while (promoted) {
        promoted = false;
        for (uint32_t id : messages.FindIntersecting(matched)) {
          for (const data::EntityPair& p : messages.Message(id)) {
            if (matched.Insert(p)) new_matches.push_back(p);
          }
          messages.RemoveMessage(id);
          promoted = true;
        }
        for (uint32_t id : messages.LiveIds()) {
          const double delta =
              probabilistic->ScoreDelta(matched, messages.Message(id));
          if (delta >= -kScoreEps) {
            for (const data::EntityPair& p : messages.Message(id)) {
              if (matched.Insert(p)) new_matches.push_back(p);
            }
            messages.RemoveMessage(id);
            promoted = true;
          }
        }
      }
    }

    active = index.AffectedBy(new_matches);
  }

  result.matches = std::move(matched);
  result.wall_seconds = wall.ElapsedSeconds();
  return result;
}

}  // namespace cem::core
