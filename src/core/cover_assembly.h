#ifndef CEM_CORE_COVER_ASSEMBLY_H_
#define CEM_CORE_COVER_ASSEMBLY_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/cover.h"
#include "data/entity.h"
#include "util/execution_context.h"

namespace cem::core {

/// One scored candidate of a canopy-style assembly pass: a document id and
/// its cheap-similarity score (exact token overlap for canopies, estimated
/// Jaccard for LSH).
struct AssemblyCandidate {
  uint32_t doc_id;
  double score;
};

/// Produces the candidates of one document that pass the builder's loose
/// threshold, sorted by doc id. `num_scored` receives the number of
/// documents the scan scored/bucketed (the blocking work done, before the
/// loose filter). Must be thread-safe and deterministic per document — it
/// is called concurrently against read-only index structures.
using AssemblyCandidateFn = std::function<std::vector<AssemblyCandidate>(
    uint32_t doc, size_t* num_scored)>;

/// The canopy seed-selection loop shared by every cover builder [McCallum
/// et al., KDD 2000]: visit the documents 0..refs.size()-1 in a seeded
/// random order; each not-yet-seeded-out document becomes a neighborhood
/// containing its loose-passing candidates, and candidates at or above
/// `tight` leave the seed pool. Document i contributes neighborhood
/// members as refs[i].
///
/// Parallel *and* bit-identical to the serial loop for any thread count:
/// the expensive candidate scans run speculatively in fixed-size batches on
/// `ctx`'s pool, while seed selection itself replays serially over the
/// precomputed scan results. A document seeded out by an earlier member of
/// its own batch wastes its speculative scan (bounded by the batch size)
/// but never changes the output; the batch size is a constant so the
/// reported work counter is thread-count-independent too.
///
/// `pairs_considered`, when non-null, receives the total candidate scan
/// work (sum of `num_scored` over every scanned document, wasted
/// speculative scans included).
Cover AssembleCanopies(const std::vector<data::EntityId>& refs, uint64_t seed,
                       double tight, const AssemblyCandidateFn& candidate_fn,
                       const ExecutionContext& ctx,
                       size_t* pairs_considered = nullptr);

}  // namespace cem::core

#endif  // CEM_CORE_COVER_ASSEMBLY_H_
