#include "core/canopy.h"

#include <vector>

#include "blocking/blocking_tokens.h"
#include "core/cover_assembly.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "text/token_index.h"
#include "util/logging.h"

namespace cem::core {

Cover BuildCanopyCover(const data::Dataset& dataset,
                       const CanopyOptions& options) {
  CEM_CHECK(options.tight >= options.loose)
      << "tight threshold must be at least the loose threshold";
  const std::vector<data::EntityId>& refs = dataset.author_refs();
  const ExecutionContext& ctx =
      options.context != nullptr ? *options.context
                                 : ExecutionContext::Default();

  // Sharded cheap-distance index over author refs (dense doc ids =
  // position): tokens are emitted straight into a flat arena corpus
  // (hashed once at emit time), then the postings build runs on ctx with
  // each worker owning whole token shards.
  text::TokenCorpus corpus;
  {
    CEM_TRACE("blocking/tokenize");
    corpus = text::TokenCorpus::Build(
        refs.size(),
        [&](size_t i, text::TokenCorpus::DocBuilder& builder) {
          blocking::AppendAuthorBlockingTokens(dataset.entity(refs[i]),
                                               builder);
        },
        ctx);
  }
  text::TokenIndex index(ctx.num_token_shards());
  {
    CEM_TRACE("blocking/token_index_build");
    index.AddDocuments(std::move(corpus), ctx);
  }
  static obs::Counter& postings_counter =
      obs::MetricsRegistry::Global().counter("blocking_token_postings");
  postings_counter.Add(index.num_postings());

  // Canopies: random seed order; loose joins, tight removes from seed pool.
  // The postings scans run in parallel batches; the seed loop replays
  // serially, so the cover matches the single-threaded algorithm exactly.
  const auto candidate_fn = [&](uint32_t doc, size_t* num_scored) {
    std::vector<AssemblyCandidate> out;
    for (const auto& neighbor :
         index.Candidates(doc, options.loose, num_scored)) {
      out.push_back({neighbor.doc_id, neighbor.score});
    }
    return out;
  };
  size_t pairs_scored = 0;
  Cover cover;
  {
    CEM_TRACE("blocking/assemble_canopies");
    cover = AssembleCanopies(refs, options.seed.value_or(ctx.seed()),
                             options.tight, candidate_fn, ctx, &pairs_scored);
  }
  if (options.stats != nullptr) options.stats->pairs_considered = pairs_scored;
  static obs::Counter& pairs_counter = obs::MetricsRegistry::Global().counter(
      "blocking_canopy_pairs_considered");
  static obs::Counter& covers_counter =
      obs::MetricsRegistry::Global().counter("blocking_covers_built");
  pairs_counter.Add(pairs_scored);
  covers_counter.Add(1);

  // Patch: make the cover total over Similar — every candidate pair inside
  // some neighborhood.
  if (options.ensure_pair_coverage) PatchPairCoverage(dataset, cover, ctx);

  // Boundary expansion: make the cover total w.r.t. Coauthor.
  if (options.expand_boundary) ExpandCoauthorBoundary(dataset, cover, ctx);

  return cover;
}

}  // namespace cem::core
