#include "core/canopy.h"

#include <algorithm>
#include <cctype>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "text/token_index.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"

namespace cem::core {
namespace {

/// Blocking tokens for one author reference — must stay in sync with
/// Dataset::BuildCandidatePairs so canopies subsume candidate pairs.
std::vector<std::string> BlockingTokens(const data::Entity& e) {
  std::string name = ToLower(e.last_name);
  std::vector<std::string> grams = CharNgrams(name, 3);
  if (!e.first_name.empty()) {
    grams.push_back(
        std::string(1, static_cast<char>(
                           std::tolower(static_cast<unsigned char>(
                               e.first_name[0])))) +
        "|" + name.substr(0, std::min<size_t>(2, name.size())));
  }
  return grams;
}

}  // namespace

Cover BuildCanopyCover(const data::Dataset& dataset,
                       const CanopyOptions& options) {
  CEM_CHECK(options.tight >= options.loose)
      << "tight threshold must be at least the loose threshold";
  const std::vector<data::EntityId>& refs = dataset.author_refs();

  // Cheap-distance index over author refs (dense doc ids = position).
  text::TokenIndex index;
  for (size_t i = 0; i < refs.size(); ++i) {
    index.AddDocument(static_cast<uint32_t>(i),
                      BlockingTokens(dataset.entity(refs[i])));
  }

  // Canopies: random seed order; loose joins, tight removes from seed pool.
  Rng rng(options.seed);
  std::vector<uint32_t> seed_order(refs.size());
  for (uint32_t i = 0; i < refs.size(); ++i) seed_order[i] = i;
  rng.Shuffle(seed_order);

  std::vector<bool> seeded_out(refs.size(), false);
  Cover cover;
  for (uint32_t seed : seed_order) {
    if (seeded_out[seed]) continue;
    seeded_out[seed] = true;
    std::vector<data::EntityId> members{refs[seed]};
    for (const auto& neighbor : index.Candidates(seed, options.loose)) {
      members.push_back(refs[neighbor.doc_id]);
      if (neighbor.score >= options.tight) seeded_out[neighbor.doc_id] = true;
    }
    cover.Add(std::move(members));
  }

  // Patch: make the cover total over Similar — every candidate pair inside
  // some neighborhood. Index which neighborhoods contain each entity.
  if (options.ensure_pair_coverage) {
    std::unordered_map<data::EntityId, std::vector<size_t>> homes;
    for (size_t i = 0; i < cover.size(); ++i) {
      for (data::EntityId e : cover.neighborhood(i).entities) {
        homes[e].push_back(i);
      }
    }
    for (const data::CandidatePair& cp : dataset.candidate_pairs()) {
      const auto& homes_a = homes[cp.pair.a];
      const auto& homes_b = homes[cp.pair.b];
      bool together = false;
      for (size_t ha : homes_a) {
        if (std::find(homes_b.begin(), homes_b.end(), ha) != homes_b.end()) {
          together = true;
          break;
        }
      }
      if (!together) {
        CEM_CHECK(!homes_a.empty()) << "cover must contain every ref";
        cover.AddEntityTo(homes_a.front(), cp.pair.b);
        homes[cp.pair.b].push_back(homes_a.front());
      }
    }
  }

  // Boundary expansion (Section 4): add each member's coauthors, making the
  // cover total w.r.t. Coauthor. This is what brings dissimilar entities —
  // and in general entities of other types — into a neighborhood.
  if (options.expand_boundary) {
    for (size_t i = 0; i < cover.size(); ++i) {
      std::unordered_set<data::EntityId> boundary;
      for (data::EntityId e : cover.neighborhood(i).entities) {
        for (data::EntityId c : dataset.Coauthors(e)) boundary.insert(c);
      }
      for (data::EntityId c : boundary) cover.AddEntityTo(i, c);
    }
  }

  return cover;
}

}  // namespace cem::core
