#include "core/canopy.h"

#include <vector>

#include "blocking/blocking_tokens.h"
#include "text/token_index.h"
#include "util/logging.h"
#include "util/random.h"

namespace cem::core {

Cover BuildCanopyCover(const data::Dataset& dataset,
                       const CanopyOptions& options) {
  CEM_CHECK(options.tight >= options.loose)
      << "tight threshold must be at least the loose threshold";
  const std::vector<data::EntityId>& refs = dataset.author_refs();

  // Cheap-distance index over author refs (dense doc ids = position).
  text::TokenIndex index;
  for (size_t i = 0; i < refs.size(); ++i) {
    index.AddDocument(static_cast<uint32_t>(i),
                      blocking::AuthorBlockingTokens(dataset.entity(refs[i])));
  }

  // Canopies: random seed order; loose joins, tight removes from seed pool.
  Rng rng(options.seed);
  std::vector<uint32_t> seed_order(refs.size());
  for (uint32_t i = 0; i < refs.size(); ++i) seed_order[i] = i;
  rng.Shuffle(seed_order);

  std::vector<bool> seeded_out(refs.size(), false);
  Cover cover;
  size_t pairs_scored = 0;
  for (uint32_t seed : seed_order) {
    if (seeded_out[seed]) continue;
    seeded_out[seed] = true;
    std::vector<data::EntityId> members{refs[seed]};
    size_t scored = 0;
    for (const auto& neighbor :
         index.Candidates(seed, options.loose, &scored)) {
      members.push_back(refs[neighbor.doc_id]);
      if (neighbor.score >= options.tight) seeded_out[neighbor.doc_id] = true;
    }
    pairs_scored += scored;
    cover.Add(std::move(members));
  }
  if (options.stats != nullptr) options.stats->pairs_considered = pairs_scored;

  // Patch: make the cover total over Similar — every candidate pair inside
  // some neighborhood.
  if (options.ensure_pair_coverage) PatchPairCoverage(dataset, cover);

  // Boundary expansion: make the cover total w.r.t. Coauthor.
  if (options.expand_boundary) ExpandCoauthorBoundary(dataset, cover);

  return cover;
}

}  // namespace cem::core
