#ifndef CEM_CORE_COVER_BUILDER_H_
#define CEM_CORE_COVER_BUILDER_H_

#include <optional>
#include <string>
#include <string_view>

#include "core/canopy.h"
#include "core/cover.h"
#include "data/dataset.h"

namespace cem::core {

/// Which blocking subsystem forms the neighborhoods. The framework is
/// agnostic (Section 4 only requires a total cover); both strategies run
/// the same totality patches, so every message-passing scheme is sound and
/// consistent under either.
enum class BlockingStrategy {
  /// Token-overlap canopies [McCallum et al., KDD 2000]: full postings-list
  /// scans, exact overlap scores. The accuracy reference.
  kCanopy = 0,
  /// MinHash signatures + banded LSH buckets: sub-quadratic candidate
  /// generation with tunable recall. The scale play.
  kLsh = 1,
};

const char* BlockingStrategyName(BlockingStrategy strategy);

/// Parses "canopy" / "lsh" (case-insensitive); nullopt on anything else.
std::optional<BlockingStrategy> ParseBlockingStrategy(std::string_view name);

/// Strategy interface over cover construction: every blocking subsystem
/// (canopy, LSH, future ones) builds a Definition-7 total cover from a
/// finalized dataset behind this interface, so the eval harness, grid
/// executor drivers and benches are strategy-agnostic.
class CoverBuilder {
 public:
  virtual ~CoverBuilder() = default;

  /// Builds a cover of `dataset`'s author references, running the parallel
  /// phases (signatures, index insertion, candidate scans, boundary
  /// expansion) on `ctx`. Must be total w.r.t. Similar and Coauthor unless
  /// the concrete options disable the patches (ablations only), and
  /// bit-identical for any thread/shard count. `stats`, when non-null,
  /// receives candidate-generation work counters.
  virtual Cover Build(const data::Dataset& dataset,
                      const ExecutionContext& ctx,
                      BlockingStats* stats = nullptr) const = 0;

  /// Convenience: builds on the process-default context.
  Cover Build(const data::Dataset& dataset,
              BlockingStats* stats = nullptr) const;

  /// Human-readable strategy name for logs/tables.
  virtual std::string name() const = 0;
};

/// The canopy strategy behind the CoverBuilder interface.
class CanopyCoverBuilder : public CoverBuilder {
 public:
  explicit CanopyCoverBuilder(CanopyOptions options = {})
      : options_(options) {}

  using CoverBuilder::Build;
  Cover Build(const data::Dataset& dataset, const ExecutionContext& ctx,
              BlockingStats* stats = nullptr) const override;
  std::string name() const override { return "canopy"; }

 private:
  CanopyOptions options_;
};

}  // namespace cem::core

#endif  // CEM_CORE_COVER_BUILDER_H_
