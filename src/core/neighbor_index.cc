#include "core/neighbor_index.h"

#include <algorithm>

namespace cem::core {

const std::vector<uint32_t> NeighborIndex::kEmpty;

NeighborIndex::NeighborIndex(const Cover& cover) {
  for (uint32_t i = 0; i < cover.size(); ++i) {
    for (data::EntityId e : cover.neighborhood(i).entities) {
      if (e >= by_entity_.size()) by_entity_.resize(e + 1);
      by_entity_[e].push_back(i);
    }
  }
  // Insertion order is already ascending in i; nothing to sort.
}

const std::vector<uint32_t>& NeighborIndex::NeighborhoodsOf(
    data::EntityId e) const {
  if (e >= by_entity_.size()) return kEmpty;
  return by_entity_[e];
}

std::vector<uint32_t> NeighborIndex::AffectedBy(
    const std::vector<data::EntityPair>& pairs) const {
  std::vector<uint32_t> out;
  for (const data::EntityPair& p : pairs) {
    const std::vector<uint32_t>& in_a = NeighborhoodsOf(p.a);
    const std::vector<uint32_t>& in_b = NeighborhoodsOf(p.b);
    std::set_intersection(in_a.begin(), in_a.end(), in_b.begin(), in_b.end(),
                          std::back_inserter(out));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace cem::core
