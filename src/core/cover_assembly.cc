#include "core/cover_assembly.h"

#include <utility>

#include "util/logging.h"
#include "util/random.h"

namespace cem::core {
namespace {

/// Documents speculatively scanned per round. Constant (not derived from
/// the thread count) so the scanned set — and the work counters — are
/// identical for any ExecutionContext; large enough to keep 8+ workers
/// busy on scans that take microseconds each.
constexpr size_t kScanBatch = 256;

}  // namespace

Cover AssembleCanopies(const std::vector<data::EntityId>& refs, uint64_t seed,
                       double tight, const AssemblyCandidateFn& candidate_fn,
                       const ExecutionContext& ctx, size_t* pairs_considered) {
  const size_t num_docs = refs.size();
  Rng rng(seed);
  std::vector<uint32_t> seed_order(num_docs);
  for (uint32_t i = 0; i < num_docs; ++i) seed_order[i] = i;
  rng.Shuffle(seed_order);

  std::vector<bool> seeded_out(num_docs, false);
  Cover cover;
  size_t considered = 0;

  std::vector<uint32_t> batch;
  std::vector<std::vector<AssemblyCandidate>> scans;
  std::vector<size_t> scored;
  size_t cursor = 0;
  while (cursor < num_docs) {
    // Collect the next batch of still-live seeds. Members seeded out by an
    // earlier member of the *same* batch are scanned speculatively — the
    // scan is wasted, the output unchanged.
    batch.clear();
    while (cursor < num_docs && batch.size() < kScanBatch) {
      const uint32_t doc = seed_order[cursor++];
      if (!seeded_out[doc]) batch.push_back(doc);
    }

    // Parallel phase: candidate scans against read-only index state.
    scans.assign(batch.size(), {});
    scored.assign(batch.size(), 0);
    ParallelFor(ctx.pool(), batch.size(), [&](size_t i) {
      scans[i] = candidate_fn(batch[i], &scored[i]);
    });

    // Serial phase: replay the canopy loop over the precomputed scans —
    // exactly the order the single-threaded algorithm would take.
    for (size_t i = 0; i < batch.size(); ++i) {
      considered += scored[i];
      const uint32_t doc = batch[i];
      if (seeded_out[doc]) continue;
      seeded_out[doc] = true;
      std::vector<data::EntityId> members{refs[doc]};
      members.reserve(scans[i].size() + 1);
      for (const AssemblyCandidate& candidate : scans[i]) {
        members.push_back(refs[candidate.doc_id]);
        if (candidate.score >= tight) seeded_out[candidate.doc_id] = true;
      }
      cover.Add(std::move(members));
    }
  }

  if (pairs_considered != nullptr) *pairs_considered = considered;
  return cover;
}

}  // namespace cem::core
