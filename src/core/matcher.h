#ifndef CEM_CORE_MATCHER_H_
#define CEM_CORE_MATCHER_H_

#include <vector>

#include "core/match_set.h"
#include "data/dataset.h"
#include "data/entity.h"

namespace cem::core {

/// The paper's Type-I black-box abstraction (Definition 1): an entity
/// matcher is a function
///   E : E x 2^(E x E) x 2^(E x E) -> 2^(E x E)
/// taking a set of entities plus positive/negative evidence sets and
/// returning a set of matches.
///
/// Implementations are constructed over a Dataset (the attributes and
/// relations implicit in the paper's E) and run on arbitrary subsets of its
/// entities; relations are used *induced*, i.e. a run on neighborhood C
/// only sees tuples entirely inside C (this is R(C) from Section 4, and is
/// why total covers matter).
///
/// The framework's guarantees (Theorems 1, 2, 4) hold for matchers that are
/// *well-behaved* (Definition 4): idempotent (Definition 2) and monotone
/// (Definition 3). Both shipped matchers (mln::MlnMatcher,
/// rules::RulesMatcher) are well-behaved; property tests verify this
/// empirically and non-well-behaved matchers still run, just without the
/// soundness guarantee.
class Matcher {
 public:
  virtual ~Matcher() = default;

  /// E(C, V+, V-). `entities` lists the neighborhood's members (order
  /// irrelevant, duplicates ignored). Evidence outside C x C is ignored.
  /// The output contains every positive-evidence pair inside C x C (this
  /// makes idempotence natural) plus the newly inferred matches.
  virtual MatchSet Match(const std::vector<data::EntityId>& entities,
                         const MatchSet& positive,
                         const MatchSet& negative) const = 0;

  /// Convenience: E(C, V+) with empty negative evidence.
  MatchSet Match(const std::vector<data::EntityId>& entities,
                 const MatchSet& positive) const {
    return Match(entities, positive, MatchSet());
  }

  /// Convenience: E(C) with no evidence at all.
  MatchSet Match(const std::vector<data::EntityId>& entities) const {
    return Match(entities, MatchSet(), MatchSet());
  }

  /// A *conditioned re-run* on a neighborhood the matcher has just
  /// evaluated: same entities, slightly extended evidence. COMPUTEMAXIMAL
  /// (Algorithm 2) issues one such call per hypothesis pair. Solvers that
  /// keep per-neighborhood state (e.g. dynamic graph cuts, warm-started
  /// samplers) can make these marginal re-solves far cheaper than a fresh
  /// run; the default simply forwards to Match(). The benchmark cost model
  /// charges conditioned runs a small fraction of a fresh run for the same
  /// reason.
  virtual MatchSet MatchConditioned(const std::vector<data::EntityId>& entities,
                                    const MatchSet& positive,
                                    const MatchSet& negative) const {
    return Match(entities, positive, negative);
  }

  /// The dataset this matcher was constructed over.
  virtual const data::Dataset& dataset() const = 0;

  /// Pruning hint for COMPUTEMAXIMAL (Algorithm 2): candidate pairs inside
  /// `entities` that could belong to a non-singleton maximal message, i.e.
  /// whose hypothetical match could entail — or be entailed by — another
  /// unresolved pair. The default returns every unresolved in-neighborhood
  /// candidate pair (always correct); matchers with known correlation
  /// structure override it to skip pairs that provably yield singleton
  /// messages (the MLN matcher returns only pairs with an induced link to
  /// another unresolved pair).
  virtual std::vector<data::EntityPair> EntangledPairs(
      const std::vector<data::EntityId>& entities, const MatchSet& evidence,
      const MatchSet& base) const;

  /// Runs on the entire dataset (the "FULL" / holistic run of the paper's
  /// experiments). Feasible for RULES; exponential-feel for MLN on large
  /// data — exactly the scalability gap the framework closes.
  MatchSet MatchAll() const;
};

/// The paper's Type-II abstraction (Definition 5): a probabilistic matcher
/// defines a distribution P_E over match sets; its Match() output is the
/// largest most-likely set, conditioned on the evidence. Only Type-II
/// matchers support MMP (Algorithm 3, step 7 needs P_E comparisons).
class ProbabilisticMatcher : public Matcher {
 public:
  /// Unnormalised log P_E(S) over the *full* dataset. Cheap to evaluate for
  /// a specific S (sum of satisfied grounding weights) even though argmax
  /// over S is expensive — the asymmetry Section 5.2 relies on.
  virtual double Score(const MatchSet& matches) const = 0;

  /// Score(current ∪ additions) − Score(current), computed incrementally by
  /// touching only groundings incident to `additions`. Equivalent to the
  /// MMP step-7 test  P_E(M+ ∪ M) >= P_E(M+)  ⇔  ScoreDelta >= 0.
  virtual double ScoreDelta(
      const MatchSet& current,
      const std::vector<data::EntityPair>& additions) const = 0;
};

}  // namespace cem::core

#endif  // CEM_CORE_MATCHER_H_
