#include "core/maximal_message.h"

#include <algorithm>
#include <unordered_set>

#include "graph/connected_components.h"
#include "util/logging.h"

namespace cem::core {

std::vector<MaximalMessage> ComputeMaximal(
    const Matcher& matcher, const std::vector<data::EntityId>& entities,
    const MatchSet& evidence, const MatchSet& base) {
  // Unresolved candidate pairs of C that can possibly entangle with
  // another (the matcher's pruning hook; the default returns all
  // unresolved in-neighborhood candidate pairs).
  const std::vector<data::EntityPair> hypotheses =
      matcher.EntangledPairs(entities, evidence, base);

  // One clamped run per hypothesis: what else does assuming p entail?
  std::vector<MatchSet> entailed(hypotheses.size());
  for (size_t i = 0; i < hypotheses.size(); ++i) {
    MatchSet with_p = evidence;
    with_p.Insert(hypotheses[i]);
    entailed[i] = matcher.MatchConditioned(entities, with_p, MatchSet());
  }

  // Mutual-entailment graph; components are the messages.
  std::unordered_map<uint64_t, uint32_t> position;
  for (uint32_t i = 0; i < hypotheses.size(); ++i) {
    position.emplace(data::PairKey(hypotheses[i]), i);
  }
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (uint32_t i = 0; i < hypotheses.size(); ++i) {
    for (uint64_t key : entailed[i].keys()) {
      auto it = position.find(key);
      if (it == position.end() || it->second <= i) continue;
      const uint32_t j = it->second;
      if (entailed[j].Contains(hypotheses[i])) edges.emplace_back(i, j);
    }
  }
  std::vector<MaximalMessage> out;
  for (const auto& component : graph::ConnectedComponents(
           static_cast<uint32_t>(hypotheses.size()), edges)) {
    if (component.size() < 2) continue;  // Singletons carry no information.
    MaximalMessage message;
    message.reserve(component.size());
    for (uint32_t idx : component) message.push_back(hypotheses[idx]);
    out.push_back(std::move(message));
  }
  return out;
}

uint32_t MaximalMessageSet::Insert(const MaximalMessage& message) {
  // Collect live messages overlapping the new one.
  std::vector<uint32_t> overlapping;
  for (const data::EntityPair& p : message) {
    auto it = owner_.find(data::PairKey(p));
    if (it != owner_.end() && live_[it->second]) {
      overlapping.push_back(it->second);
    }
  }
  std::sort(overlapping.begin(), overlapping.end());
  overlapping.erase(std::unique(overlapping.begin(), overlapping.end()),
                    overlapping.end());

  // Union of the new message and everything it touches.
  std::unordered_set<uint64_t> merged_keys;
  MaximalMessage merged;
  auto absorb = [&](const MaximalMessage& m) {
    for (const data::EntityPair& p : m) {
      if (merged_keys.insert(data::PairKey(p)).second) merged.push_back(p);
    }
  };
  absorb(message);
  for (uint32_t id : overlapping) {
    absorb(messages_[id]);
    live_[id] = false;
    --num_live_;
  }
  std::sort(merged.begin(), merged.end());

  const uint32_t id = static_cast<uint32_t>(messages_.size());
  for (const data::EntityPair& p : merged) owner_[data::PairKey(p)] = id;
  messages_.push_back(std::move(merged));
  live_.push_back(true);
  ++num_live_;
  return id;
}

void MaximalMessageSet::RemoveMessage(uint32_t id) {
  CEM_CHECK(id < live_.size() && live_[id]);
  live_[id] = false;
  --num_live_;
  for (const data::EntityPair& p : messages_[id]) {
    auto it = owner_.find(data::PairKey(p));
    if (it != owner_.end() && it->second == id) owner_.erase(it);
  }
}

std::vector<uint32_t> MaximalMessageSet::FindIntersecting(
    const MatchSet& matches) const {
  std::vector<uint32_t> out;
  for (uint64_t key : matches.keys()) {
    auto it = owner_.find(key);
    if (it != owner_.end() && live_[it->second]) out.push_back(it->second);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<uint32_t> MaximalMessageSet::LiveIds() const {
  std::vector<uint32_t> out;
  for (uint32_t id = 0; id < live_.size(); ++id) {
    if (live_[id]) out.push_back(id);
  }
  return out;
}

const MaximalMessage& MaximalMessageSet::Message(uint32_t id) const {
  CEM_CHECK(id < messages_.size());
  return messages_[id];
}

}  // namespace cem::core
