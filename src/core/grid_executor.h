#ifndef CEM_CORE_GRID_EXECUTOR_H_
#define CEM_CORE_GRID_EXECUTOR_H_

#include <cstddef>
#include <cstdint>

#include "core/cover.h"
#include "core/match_set.h"
#include "core/matcher.h"

namespace cem::core {

/// Message-passing scheme run by the grid executor.
enum class MpScheme { kNoMp = 0, kSmp = 1, kMmp = 2 };

const char* MpSchemeName(MpScheme scheme);

/// Options of the round-based parallel executor (Section 6.3). The paper
/// runs the framework on a Hadoop grid: each round is one Map (run EM on
/// every active neighborhood, in parallel, against the round-start evidence
/// snapshot) plus one Reduce (merge the new evidence and compute the next
/// round's active set).
///
/// We reproduce this with an in-process thread pool and a *makespan model*:
/// neighborhoods are randomly assigned to `num_machines` simulated machines
/// (random assignment introduces the statistical skew the paper blames for
/// sub-linear speedup), and the simulated round time is the maximum
/// per-machine sum of task times plus a per-round scheduling overhead (the
/// paper's other cause of imperfect speedup). Real wall time is also
/// reported.
struct GridOptions {
  MpScheme scheme = MpScheme::kSmp;
  /// Simulated machine count (the paper compares 1 vs 30).
  uint32_t num_machines = 1;
  /// Simulated per-round Map/Reduce setup cost, in seconds.
  double per_round_overhead_seconds = 0.0;
  /// Seed for the random neighborhood -> machine assignment.
  uint64_t seed = 123;
  /// Real worker threads executing the tasks. 0 = run on `context`'s pool
  /// (or the process-wide shared pool when that is null too, sized by
  /// CEM_THREADS); otherwise a dedicated pool of this size is spun up for
  /// the run.
  uint32_t num_worker_threads = 0;
  /// Execution context whose pool runs the map tasks when
  /// num_worker_threads is 0 — lets drivers reuse the one pool that
  /// already ran the blocking front-end. Null = ExecutionContext::Default().
  const ExecutionContext* context = nullptr;
  /// Safety cap on rounds (0 = number of neighborhoods + 8).
  size_t max_rounds = 0;
};

/// Result of a grid run.
struct GridResult {
  MatchSet matches;
  size_t rounds = 0;
  size_t neighborhood_evaluations = 0;
  /// Real wall-clock seconds (depends on the host's cores).
  double wall_seconds = 0.0;
  /// Simulated grid seconds under the makespan model (host-independent);
  /// this is the Table 1 number.
  double simulated_seconds = 0.0;
};

/// Runs `scheme` on `cover` round-parallel. For kMmp the matcher must be a
/// ProbabilisticMatcher. By the schemes' consistency property the final
/// match set equals the sequential drivers' output.
GridResult RunGrid(const Matcher& matcher, const Cover& cover,
                   const GridOptions& options);

}  // namespace cem::core

#endif  // CEM_CORE_GRID_EXECUTOR_H_
