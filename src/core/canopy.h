#ifndef CEM_CORE_CANOPY_H_
#define CEM_CORE_CANOPY_H_

#include <cstdint>
#include <optional>

#include "core/cover.h"
#include "data/dataset.h"

namespace cem::core {

/// Options of the cover-construction pipeline (Section 4): Canopies over
/// the Similar relation [McCallum et al. 13], patched to be total over
/// Similar, then boundary-expanded to be total over Coauthor.
struct CanopyOptions {
  /// Loose threshold: cheap-similarity score at which an entity joins a
  /// canopy. Smaller -> bigger canopies.
  double loose = 0.45;
  /// Tight threshold (>= loose): score at which an entity is removed from
  /// the seed pool. Larger -> more (overlapping) canopies.
  double tight = 0.75;
  /// Expand each neighborhood with the coauthors of its members, making the
  /// cover total w.r.t. Coauthor (Definition 7). The ablation bench turns
  /// this off to show the recall cost of a non-total cover.
  bool expand_boundary = true;
  /// Guarantee every candidate pair is inside some neighborhood (total
  /// w.r.t. Similar), patching any pair the canopy pass split.
  bool ensure_pair_coverage = true;
  /// Seed for the canopy seed-selection order; unset = the execution
  /// context's seed (ExecutionContext::kDefaultSeed by default, so
  /// defaults are stable across contexts).
  std::optional<uint64_t> seed;
  /// Optional out-param: filled with candidate-generation work counters.
  BlockingStats* stats = nullptr;
  /// Execution context of the parallel phases (postings scans, boundary
  /// expansion); null = ExecutionContext::Default(). The cover is
  /// bit-identical for any thread count.
  const ExecutionContext* context = nullptr;
};

/// Builds a cover of the dataset's author references with the Canopies
/// algorithm + totality patches. The cheap distance is trigram-token
/// overlap on last names (the same blocking index the candidate-pair pass
/// uses), so candidate pairs and canopies agree.
Cover BuildCanopyCover(const data::Dataset& dataset,
                       const CanopyOptions& options = {});

}  // namespace cem::core

#endif  // CEM_CORE_CANOPY_H_
