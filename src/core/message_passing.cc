#include "core/message_passing.h"

#include <deque>
#include <unordered_set>

#include "core/maximal_message.h"
#include "core/neighbor_index.h"
#include "util/logging.h"
#include "util/timer.h"

namespace cem::core {
namespace {

// Tolerance of the MMP step-7 test  P_E(M+ ∪ M) >= P_E(M+): tiny negative
// score deltas caused by floating-point noise still count as non-decreasing.
constexpr double kScoreEps = 1e-9;

/// FIFO active set with set semantics (a neighborhood queued twice runs
/// once): Algorithm 1/3's A.
class ActiveSet {
 public:
  explicit ActiveSet(size_t n) : queued_(n, false) {}

  void Push(uint32_t id) {
    if (!queued_[id]) {
      queued_[id] = true;
      queue_.push_back(id);
    }
  }

  bool empty() const { return queue_.empty(); }

  uint32_t Pop() {
    const uint32_t id = queue_.front();
    queue_.pop_front();
    queued_[id] = false;
    return id;
  }

 private:
  std::deque<uint32_t> queue_;
  std::vector<bool> queued_;
};

size_t DefaultEvaluationCap(const Cover& cover, size_t configured) {
  if (configured > 0) return configured;
  const size_t k = cover.MaxNeighborhoodSize();
  // Theoretical bound n * k^2 (Theorem 3), floored generously.
  return cover.size() * std::max<size_t>(k * k, 16) + 64;
}

void SeedActiveSet(ActiveSet& active, const Cover& cover,
                   const MpOptions& options) {
  for (uint32_t id : options.initial_order) {
    if (id < cover.size()) active.Push(id);
  }
  for (uint32_t id = 0; id < cover.size(); ++id) active.Push(id);
}

MpResult RunMmpImpl(const ProbabilisticMatcher& matcher, const Cover& cover,
                    const MpOptions& options, bool merge_messages) {
  Timer timer;
  MpResult result;
  NeighborIndex index(cover);
  ActiveSet active(cover.size());
  SeedActiveSet(active, cover, options);
  const size_t cap = DefaultEvaluationCap(cover, options.max_evaluations);

  MatchSet& matched = result.matches;  // M+
  MaximalMessageSet messages;          // T

  while (!active.empty()) {
    if (result.neighborhood_evaluations >= cap) {
      CEM_LOG(Warning) << "MMP evaluation cap reached (" << cap
                       << "); matcher may not be well-behaved";
      break;
    }
    const uint32_t c = active.Pop();
    ++result.neighborhood_evaluations;
    const std::vector<data::EntityId>& entities =
        cover.neighborhood(c).entities;

    // Step 5: direct matches and maximal messages of this neighborhood.
    const MatchSet mc = matcher.Match(entities, matched);
    size_t maximal_runs = 0;
    const std::vector<MaximalMessage> tc =
        ComputeMaximal(matcher, entities, matched, mc);
    // ComputeMaximal issues one clamped run per hypothesis plus the base
    // run already counted via mc; approximate its call count by messages'
    // total support (exact count tracked by matcher-side counters).
    maximal_runs += 1;
    result.matcher_calls += 1 + maximal_runs;
    result.messages_created += tc.size();

    // Step 6: M+ ∪= MC ; T = (T ∪ TC)*.
    std::vector<data::EntityPair> new_matches = mc.Difference(matched);
    matched.InsertAll(mc);
    if (merge_messages) {
      for (const MaximalMessage& m : tc) messages.Insert(m);
    } else {
      for (const MaximalMessage& m : tc) {
        // Ablation: no merge — insert each message as its own island by
        // testing it immediately and dropping it afterwards.
        const double delta = matcher.ScoreDelta(matched, m);
        if (delta >= -kScoreEps) {
          for (const data::EntityPair& p : m) {
            if (matched.Insert(p)) new_matches.push_back(p);
          }
          ++result.messages_promoted;
        }
      }
    }

    // Step 7: promote sound messages until fixpoint. Two triggers:
    //  (a) a message intersecting M+ is entirely sound (Definition 8 +
    //      soundness of M+);
    //  (b) the probabilistic test P_E(M+ ∪ M) >= P_E(M+).
    if (merge_messages) {
      bool promoted = true;
      while (promoted) {
        promoted = false;
        for (uint32_t id : messages.FindIntersecting(matched)) {
          for (const data::EntityPair& p : messages.Message(id)) {
            if (matched.Insert(p)) new_matches.push_back(p);
          }
          messages.RemoveMessage(id);
          ++result.messages_promoted;
          promoted = true;
        }
        for (uint32_t id : messages.LiveIds()) {
          const MaximalMessage& m = messages.Message(id);
          const double delta = matcher.ScoreDelta(matched, m);
          if (delta >= -kScoreEps) {
            for (const data::EntityPair& p : m) {
              if (matched.Insert(p)) new_matches.push_back(p);
            }
            messages.RemoveMessage(id);
            ++result.messages_promoted;
            promoted = true;
          }
        }
      }
    }

    // Step 8: re-activate the neighborhoods affected by anything new.
    // The just-run neighborhood is skipped: by idempotence it cannot add
    // anything to its own output.
    for (uint32_t affected : index.AffectedBy(new_matches)) {
      if (affected != c) active.Push(affected);
    }
  }

  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace

MpResult RunNoMp(const Matcher& matcher, const Cover& cover) {
  Timer timer;
  MpResult result;
  for (const Neighborhood& n : cover.neighborhoods()) {
    result.matches.InsertAll(matcher.Match(n.entities));
    ++result.neighborhood_evaluations;
    ++result.matcher_calls;
  }
  result.seconds = timer.ElapsedSeconds();
  return result;
}

MpResult RunSmp(const Matcher& matcher, const Cover& cover,
                const MpOptions& options) {
  Timer timer;
  MpResult result;
  NeighborIndex index(cover);
  ActiveSet active(cover.size());
  SeedActiveSet(active, cover, options);
  const size_t cap = DefaultEvaluationCap(cover, options.max_evaluations);

  MatchSet& matched = result.matches;  // M+
  while (!active.empty()) {
    if (result.neighborhood_evaluations >= cap) {
      CEM_LOG(Warning) << "SMP evaluation cap reached (" << cap
                       << "); matcher may not be well-behaved";
      break;
    }
    const uint32_t c = active.Pop();
    ++result.neighborhood_evaluations;
    ++result.matcher_calls;
    const MatchSet mc = matcher.Match(cover.neighborhood(c).entities, matched);
    const std::vector<data::EntityPair> new_matches = mc.Difference(matched);
    if (new_matches.empty()) continue;
    matched.InsertAll(mc);
    for (uint32_t affected : index.AffectedBy(new_matches)) {
      if (affected != c) active.Push(affected);
    }
  }
  result.seconds = timer.ElapsedSeconds();
  return result;
}

MpResult RunMmp(const ProbabilisticMatcher& matcher, const Cover& cover,
                const MpOptions& options) {
  return RunMmpImpl(matcher, cover, options, /*merge_messages=*/true);
}

MpResult RunMmpWithoutMerge(const ProbabilisticMatcher& matcher,
                            const Cover& cover, const MpOptions& options) {
  return RunMmpImpl(matcher, cover, options, /*merge_messages=*/false);
}

}  // namespace cem::core
