#ifndef CEM_CORE_NEIGHBOR_INDEX_H_
#define CEM_CORE_NEIGHBOR_INDEX_H_

#include <cstdint>
#include <vector>

#include "core/cover.h"
#include "core/match_set.h"
#include "data/entity.h"

namespace cem::core {

/// Index from entities to the neighborhoods containing them — the
/// Neighbor(·) function of Algorithms 1 and 3: given newly found matches,
/// which neighborhoods are affected and must be re-activated?
///
/// A neighborhood is affected by a match (u, v) iff it contains *both*
/// endpoints: evidence is conditioned on C x C, so a pair with an endpoint
/// outside C cannot change C's inference.
class NeighborIndex {
 public:
  explicit NeighborIndex(const Cover& cover);

  /// Neighborhood ids containing entity `e` (sorted).
  const std::vector<uint32_t>& NeighborhoodsOf(data::EntityId e) const;

  /// Neighborhood ids affected by any of `pairs` (sorted, unique).
  std::vector<uint32_t> AffectedBy(
      const std::vector<data::EntityPair>& pairs) const;

 private:
  std::vector<std::vector<uint32_t>> by_entity_;
  static const std::vector<uint32_t> kEmpty;
};

}  // namespace cem::core

#endif  // CEM_CORE_NEIGHBOR_INDEX_H_
