#include "core/cover.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace cem::core {
namespace {

void Normalize(std::vector<data::EntityId>& entities) {
  std::sort(entities.begin(), entities.end());
  entities.erase(std::unique(entities.begin(), entities.end()),
                 entities.end());
}

bool ContainsSorted(const std::vector<data::EntityId>& sorted,
                    data::EntityId e) {
  return std::binary_search(sorted.begin(), sorted.end(), e);
}

}  // namespace

Cover::Cover(std::vector<Neighborhood> neighborhoods)
    : neighborhoods_(std::move(neighborhoods)) {
  for (Neighborhood& n : neighborhoods_) Normalize(n.entities);
}

size_t Cover::Add(std::vector<data::EntityId> entities) {
  Normalize(entities);
  neighborhoods_.push_back(Neighborhood{std::move(entities)});
  return neighborhoods_.size() - 1;
}

void Cover::AddEntityTo(size_t i, data::EntityId entity) {
  CEM_CHECK(i < neighborhoods_.size());
  std::vector<data::EntityId>& v = neighborhoods_[i].entities;
  auto it = std::lower_bound(v.begin(), v.end(), entity);
  if (it == v.end() || *it != entity) v.insert(it, entity);
}

size_t Cover::MaxNeighborhoodSize() const {
  size_t max_size = 0;
  for (const Neighborhood& n : neighborhoods_) {
    max_size = std::max(max_size, n.entities.size());
  }
  return max_size;
}

double Cover::MeanNeighborhoodSize() const {
  if (neighborhoods_.empty()) return 0.0;
  size_t total = 0;
  for (const Neighborhood& n : neighborhoods_) total += n.entities.size();
  return static_cast<double>(total) / neighborhoods_.size();
}

size_t Cover::TotalContainedPairs(const data::Dataset& dataset) const {
  size_t total = 0;
  for (const Neighborhood& n : neighborhoods_) {
    for (data::EntityId e : n.entities) {
      for (data::PairId id : dataset.PairsOfEntity(e)) {
        const data::EntityPair p = dataset.candidate_pair(id).pair;
        if (p.a == e && ContainsSorted(n.entities, p.b)) ++total;
      }
    }
  }
  return total;
}

bool Cover::CoversAllAuthorRefs(const data::Dataset& dataset) const {
  std::unordered_set<data::EntityId> covered;
  for (const Neighborhood& n : neighborhoods_) {
    covered.insert(n.entities.begin(), n.entities.end());
  }
  for (data::EntityId ref : dataset.author_refs()) {
    if (!covered.count(ref)) return false;
  }
  return true;
}

bool Cover::IsTotalForCoauthor(const data::Dataset& dataset) const {
  // Every Coauthor tuple (u, v) must lie inside some neighborhood.
  for (data::EntityId u : dataset.author_refs()) {
    for (data::EntityId v : dataset.Coauthors(u)) {
      if (v < u) continue;  // Each symmetric tuple once.
      bool found = false;
      for (const Neighborhood& n : neighborhoods_) {
        if (ContainsSorted(n.entities, u) && ContainsSorted(n.entities, v)) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
  }
  return true;
}

double Cover::CandidatePairCoverage(const data::Dataset& dataset) const {
  if (dataset.num_candidate_pairs() == 0) return 1.0;
  std::unordered_set<uint64_t> covered;
  for (const Neighborhood& n : neighborhoods_) {
    for (data::EntityId e : n.entities) {
      for (data::PairId id : dataset.PairsOfEntity(e)) {
        const data::EntityPair p = dataset.candidate_pair(id).pair;
        if (p.a == e && ContainsSorted(n.entities, p.b)) {
          covered.insert(data::PairKey(p));
        }
      }
    }
  }
  return static_cast<double>(covered.size()) /
         static_cast<double>(dataset.num_candidate_pairs());
}

const std::vector<uint32_t> CoverMembership::kEmptyHomes;

CoverMembership::CoverMembership(const Cover& cover) {
  for (size_t i = 0; i < cover.size(); ++i) {
    for (data::EntityId e : cover.neighborhood(i).entities) {
      Add(e, static_cast<uint32_t>(i));
    }
  }
}

bool CoverMembership::Together(data::EntityId a, data::EntityId b) const {
  const auto it_a = entries_.find(a);
  const auto it_b = entries_.find(b);
  if (it_a == entries_.end() || it_b == entries_.end()) return false;
  const std::vector<uint32_t>& ha = it_a->second.homes;
  const std::vector<uint32_t>& hb = it_b->second.homes;
  // Linear merge over two sorted lists (the historical representation
  // scanned hb once per element of ha).
  size_t i = 0;
  size_t j = 0;
  while (i < ha.size() && j < hb.size()) {
    if (ha[i] == hb[j]) return true;
    if (ha[i] < hb[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

uint32_t CoverMembership::FirstHome(data::EntityId e) const {
  const auto it = entries_.find(e);
  CEM_CHECK(it != entries_.end()) << "FirstHome of an uncovered entity";
  return it->second.first_home;
}

const std::vector<uint32_t>& CoverMembership::HomesOf(data::EntityId e) const {
  const auto it = entries_.find(e);
  return it == entries_.end() ? kEmptyHomes : it->second.homes;
}

bool CoverMembership::Add(data::EntityId e, uint32_t n) {
  auto [it, inserted] = entries_.try_emplace(e);
  Entry& entry = it->second;
  if (inserted) entry.first_home = n;
  const auto pos =
      std::lower_bound(entry.homes.begin(), entry.homes.end(), n);
  if (pos != entry.homes.end() && *pos == n) return false;
  entry.homes.insert(pos, n);
  return true;
}

std::vector<MembershipEntry> CoverMembership::SortedEntries() const {
  std::vector<MembershipEntry> out;
  out.reserve(entries_.size());
  for (const auto& [entity, entry] : entries_) {
    out.push_back({entity, entry.first_home, entry.homes});
  }
  std::sort(out.begin(), out.end(),
            [](const MembershipEntry& a, const MembershipEntry& b) {
              return a.entity < b.entity;
            });
  return out;
}

CoverMembership CoverMembership::FromEntries(
    std::vector<MembershipEntry> entries) {
  CoverMembership membership;
  membership.entries_.reserve(entries.size());
  for (MembershipEntry& e : entries) {
    CEM_CHECK(std::is_sorted(e.homes.begin(), e.homes.end()) &&
              std::adjacent_find(e.homes.begin(), e.homes.end()) ==
                  e.homes.end())
        << "membership homes must be sorted and unique";
    CEM_CHECK(std::binary_search(e.homes.begin(), e.homes.end(),
                                 e.first_home))
        << "first_home must be one of the homes";
    auto [it, inserted] = membership.entries_.try_emplace(e.entity);
    CEM_CHECK(inserted) << "duplicate membership entry for entity "
                        << e.entity;
    it->second.first_home = e.first_home;
    it->second.homes = std::move(e.homes);
  }
  return membership;
}

namespace {

/// Candidate pairs speculatively checked per round. Constant (not derived
/// from the thread count) so the recheck pattern — and the PatchStats
/// counters — are identical for any ExecutionContext.
constexpr size_t kPatchBatch = 4096;
/// Pairs per parallel task inside a batch: one split check is far cheaper
/// than a task dispatch, so workers pull chunks, not single pairs.
constexpr size_t kPatchChunk = 64;

}  // namespace

void PatchPairCoverage(const data::Dataset& dataset, Cover& cover,
                       const ExecutionContext& ctx, PatchStats* stats) {
  CEM_TRACE("core/patch_pair_coverage");
  CoverMembership homes(cover);
  const auto together = [&homes](data::EntityId a, data::EntityId b) {
    return homes.Together(a, b);
  };

  const std::vector<data::CandidatePair>& pairs = dataset.candidate_pairs();
  const size_t num_pairs = pairs.size();
  size_t patched = 0;
  size_t rechecked = 0;
  std::vector<uint8_t> split(std::min(kPatchBatch, num_pairs), 0);
  for (size_t start = 0; start < num_pairs; start += kPatchBatch) {
    const size_t len = std::min(kPatchBatch, num_pairs - start);
    // Parallel phase: split detection against the map as of the previous
    // batch's replay — strictly read-only (find, never operator[]).
    const size_t num_chunks = (len + kPatchChunk - 1) / kPatchChunk;
    ParallelFor(ctx.pool(), num_chunks, [&](size_t c) {
      const size_t chunk_end = std::min(len, (c + 1) * kPatchChunk);
      for (size_t i = c * kPatchChunk; i < chunk_end; ++i) {
        const data::EntityPair& p = pairs[start + i].pair;
        split[i] = together(p.a, p.b) ? 0 : 1;
      }
    });
    // Serial phase: replay the repairs in pair order. Membership only
    // grows (and repairs target FirstHome(p.a), which later additions
    // never change), so this is exactly the serial algorithm's outcome
    // for every pair.
    bool dirty = false;
    for (size_t i = 0; i < len; ++i) {
      if (!split[i]) continue;
      const data::EntityPair& p = pairs[start + i].pair;
      if (dirty) {
        ++rechecked;
        if (together(p.a, p.b)) continue;
      }
      CEM_CHECK(homes.Contains(p.a)) << "cover must contain every ref";
      const uint32_t home = homes.FirstHome(p.a);
      cover.AddEntityTo(home, p.b);
      homes.Add(p.b, home);
      ++patched;
      dirty = true;
    }
  }
  if (stats != nullptr) {
    stats->pairs_patched = patched;
    stats->pairs_rechecked = rechecked;
  }
  // Registry counters bump once per pass, at the serial tail, with the
  // already-deterministic totals — never inside the speculative batches —
  // so the exported counter_* values hold the thread/shard-invariance
  // contract (pinned by the obs determinism suite).
  static obs::Counter& patched_counter =
      obs::MetricsRegistry::Global().counter("core_pairs_patched");
  static obs::Counter& rechecked_counter =
      obs::MetricsRegistry::Global().counter("core_pairs_rechecked");
  patched_counter.Add(patched);
  rechecked_counter.Add(rechecked);
}

void ExpandCoauthorBoundary(const data::Dataset& dataset, Cover& cover,
                            const ExecutionContext& ctx) {
  CEM_TRACE("core/expand_coauthor_boundary");
  // Each iteration mutates only neighborhood i (AddEntityTo never resizes
  // the neighborhood vector itself), so neighborhoods expand in parallel
  // without synchronisation; AddEntityTo keeps members sorted/unique, so
  // the unordered boundary iteration order does not affect the result.
  ParallelFor(ctx.pool(), cover.size(), [&](size_t i) {
    std::unordered_set<data::EntityId> boundary;
    for (data::EntityId e : cover.neighborhood(i).entities) {
      for (data::EntityId c : dataset.Coauthors(e)) boundary.insert(c);
    }
    for (data::EntityId c : boundary) cover.AddEntityTo(i, c);
  });
}

std::string Cover::Summary(const data::Dataset& dataset) const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%zu neighborhoods, max size %zu, mean size %.1f, "
                "%zu contained pairs, pair coverage %.3f",
                size(), MaxNeighborhoodSize(), MeanNeighborhoodSize(),
                TotalContainedPairs(dataset),
                CandidatePairCoverage(dataset));
  return buf;
}

}  // namespace cem::core
