#ifndef CEM_CORE_MESSAGE_PASSING_H_
#define CEM_CORE_MESSAGE_PASSING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/cover.h"
#include "core/match_set.h"
#include "core/matcher.h"

namespace cem::core {

/// Options shared by the sequential message-passing drivers.
struct MpOptions {
  /// Processing order of the initial active set (the schemes are provably
  /// order-invariant for well-behaved matchers — Theorem 2(3)/4 — and tests
  /// exercise that by permuting this). Ids outside [0, cover size) are
  /// ignored; an empty vector means 0..n-1.
  std::vector<uint32_t> initial_order;

  /// Hard safety cap on neighborhood evaluations (0 = the theoretical
  /// bound n * k^2; convergence is guaranteed for well-behaved matchers,
  /// the cap only guards buggy/non-monotone custom matchers).
  size_t max_evaluations = 0;
};

/// Result of a message-passing run.
struct MpResult {
  MatchSet matches;
  /// Neighborhood evaluations (pops of the active set).
  size_t neighborhood_evaluations = 0;
  /// Total black-box matcher invocations, including the clamped runs
  /// COMPUTEMAXIMAL issues (MMP only adds those).
  size_t matcher_calls = 0;
  /// MMP: maximal messages computed / promoted into sound matches.
  size_t messages_created = 0;
  size_t messages_promoted = 0;
  /// Wall-clock seconds of the run.
  double seconds = 0.0;
};

/// NO-MP baseline: runs the matcher once per neighborhood with no evidence
/// and unions the results (blocking-style execution, Figure 3's "NO-MP").
MpResult RunNoMp(const Matcher& matcher, const Cover& cover);

/// SMP — Simple Message Passing (Algorithm 1). Sound, consistent and
/// convergent for well-behaved Type-I matchers (Theorem 2); linear in the
/// number of neighborhoods for bounded neighborhood size (Theorem 3).
MpResult RunSmp(const Matcher& matcher, const Cover& cover,
                const MpOptions& options = {});

/// MMP — Maximal Message Passing (Algorithm 3), for Type-II probabilistic
/// matchers. Additionally exchanges maximal messages (Definition 8),
/// merging overlaps ((T ∪ TC)*, Proposition 3) and promoting a message M to
/// sound matches when P_E(M+ ∪ M) >= P_E(M+) (step 7). Sound, consistent,
/// convergent for supermodular matchers (Theorem 4); complexity
/// O(k^4 f(k) n) (Theorem 5).
MpResult RunMmp(const ProbabilisticMatcher& matcher, const Cover& cover,
                const MpOptions& options = {});

/// Ablation: MMP with message *merging* disabled — each maximal message is
/// only ever tested in isolation, so inference chains spanning
/// neighborhoods (the paper's {(a1,a2),(b2,b3),(c2,c3)} example) are never
/// completed. Used by bench/ablation_mmp_merge.
MpResult RunMmpWithoutMerge(const ProbabilisticMatcher& matcher,
                            const Cover& cover, const MpOptions& options = {});

}  // namespace cem::core

#endif  // CEM_CORE_MESSAGE_PASSING_H_
