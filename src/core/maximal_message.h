#ifndef CEM_CORE_MAXIMAL_MESSAGE_H_
#define CEM_CORE_MAXIMAL_MESSAGE_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/match_set.h"
#include "core/matcher.h"
#include "data/entity.h"

namespace cem::core {

/// A maximal message (Definition 8): a set of correlated pairs such that
/// either all of them are in E(E) or none are — a "partial inference
/// waiting to be completed".
using MaximalMessage = std::vector<data::EntityPair>;

/// COMPUTEMAXIMAL (Algorithm 2). For each unresolved candidate pair p in
/// neighborhood C, runs E(C, M+ ∪ {p}) and connects p—p' on mutual
/// entailment; connected components are the maximal messages (Lemma 1).
/// Pairs already matched (in `base`, the matcher's output on (C, M+)) are
/// excluded — they are facts, not hypotheses; singleton components are
/// dropped as information-free.
std::vector<MaximalMessage> ComputeMaximal(
    const Matcher& matcher, const std::vector<data::EntityId>& entities,
    const MatchSet& evidence, const MatchSet& base);

/// The set T of Algorithm 3: disjoint maximal messages under the merge
/// rule (T ∪ TC)* — overlapping messages are replaced by their union
/// (valid by Proposition 3(ii)).
class MaximalMessageSet {
 public:
  MaximalMessageSet() = default;

  /// Inserts a message, merging it with every existing message it
  /// overlaps. Returns the id of the resulting (merged) message.
  uint32_t Insert(const MaximalMessage& message);

  /// Removes all pairs of `matched` from every message: once a pair is
  /// known true, every message containing it is entirely true (Definition
  /// 8), so callers should first Extract such messages via
  /// FindIntersecting. This method is for discarding them afterwards.
  void RemoveMessage(uint32_t id);

  /// Ids of live messages intersecting `matches`.
  std::vector<uint32_t> FindIntersecting(const MatchSet& matches) const;

  /// All live message ids.
  std::vector<uint32_t> LiveIds() const;

  /// Pairs of message `id`.
  const MaximalMessage& Message(uint32_t id) const;

  size_t num_live() const { return num_live_; }

 private:
  std::vector<MaximalMessage> messages_;    // Indexed by id; may be dead.
  std::vector<bool> live_;
  std::unordered_map<uint64_t, uint32_t> owner_;  // pair key -> live id.
  size_t num_live_ = 0;
};

}  // namespace cem::core

#endif  // CEM_CORE_MAXIMAL_MESSAGE_H_
