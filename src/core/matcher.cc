#include "core/matcher.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

namespace cem::core {

MatchSet Matcher::MatchAll() const {
  std::vector<data::EntityId> all(dataset().num_entities());
  std::iota(all.begin(), all.end(), 0);
  return Match(all);
}

std::vector<data::EntityPair> Matcher::EntangledPairs(
    const std::vector<data::EntityId>& entities, const MatchSet& evidence,
    const MatchSet& base) const {
  const data::Dataset& d = dataset();
  const std::unordered_set<data::EntityId> members(entities.begin(),
                                                   entities.end());
  std::vector<data::EntityPair> out;
  std::unordered_set<uint64_t> seen;
  for (data::EntityId e : entities) {
    for (data::PairId id : d.PairsOfEntity(e)) {
      const data::EntityPair p = d.candidate_pair(id).pair;
      if (p.a != e || !members.count(p.b)) continue;
      if (base.Contains(p) || evidence.Contains(p)) continue;
      if (seen.insert(data::PairKey(p)).second) out.push_back(p);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace cem::core
