#include "core/cover_builder.h"

#include "util/string_util.h"

namespace cem::core {

const char* BlockingStrategyName(BlockingStrategy strategy) {
  switch (strategy) {
    case BlockingStrategy::kCanopy:
      return "canopy";
    case BlockingStrategy::kLsh:
      return "lsh";
  }
  return "unknown";
}

std::optional<BlockingStrategy> ParseBlockingStrategy(std::string_view name) {
  const std::string lower = ToLower(name);
  if (lower == "canopy") return BlockingStrategy::kCanopy;
  if (lower == "lsh") return BlockingStrategy::kLsh;
  return std::nullopt;
}

Cover CoverBuilder::Build(const data::Dataset& dataset,
                          BlockingStats* stats) const {
  return Build(dataset, ExecutionContext::Default(), stats);
}

Cover CanopyCoverBuilder::Build(const data::Dataset& dataset,
                                const ExecutionContext& ctx,
                                BlockingStats* stats) const {
  CanopyOptions options = options_;
  options.stats = stats;
  options.context = &ctx;
  return BuildCanopyCover(dataset, options);
}

}  // namespace cem::core
