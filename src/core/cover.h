#ifndef CEM_CORE_COVER_H_
#define CEM_CORE_COVER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/dataset.h"
#include "data/entity.h"
#include "util/execution_context.h"

namespace cem::core {

/// A neighborhood: a small subset of the entities (Section 4). Kept sorted
/// and duplicate-free.
struct Neighborhood {
  std::vector<data::EntityId> entities;
};

/// Instrumentation of a cover-construction pass, for the blocking ablation:
/// how much work the candidate-generation stage did.
struct BlockingStats {
  /// Number of (doc, doc) pairs the blocking pass scored or bucketed
  /// together — the dominant cost of candidate generation.
  size_t pairs_considered = 0;
};

/// A cover: a set of (potentially overlapping) neighborhoods whose union is
/// the set of entities under consideration (here: the author references —
/// papers participate through relations only).
class Cover {
 public:
  Cover() = default;
  explicit Cover(std::vector<Neighborhood> neighborhoods);

  size_t size() const { return neighborhoods_.size(); }
  bool empty() const { return neighborhoods_.empty(); }
  const Neighborhood& neighborhood(size_t i) const { return neighborhoods_[i]; }
  const std::vector<Neighborhood>& neighborhoods() const {
    return neighborhoods_;
  }

  /// Adds a neighborhood (sorted/deduplicated on insert); returns its index.
  size_t Add(std::vector<data::EntityId> entities);

  /// Adds `entity` to neighborhood `i` if not already present.
  void AddEntityTo(size_t i, data::EntityId entity);

  /// Largest neighborhood size (the paper's k).
  size_t MaxNeighborhoodSize() const;

  /// Mean neighborhood size.
  double MeanNeighborhoodSize() const;

  /// Total candidate pairs contained in some neighborhood, counted with
  /// multiplicity (the paper reports e.g. "13K neighborhoods containing a
  /// total of 1.3M entity pairs").
  size_t TotalContainedPairs(const data::Dataset& dataset) const;

  /// True if every author reference appears in some neighborhood.
  bool CoversAllAuthorRefs(const data::Dataset& dataset) const;

  /// True if this is a *total cover* w.r.t. Coauthor (Definition 7): every
  /// Coauthor tuple lies inside some neighborhood.
  bool IsTotalForCoauthor(const data::Dataset& dataset) const;

  /// Fraction of candidate pairs contained in at least one neighborhood
  /// (1.0 means total w.r.t. the Similar relation).
  double CandidatePairCoverage(const data::Dataset& dataset) const;

  /// One-line summary for logs and bench output.
  std::string Summary(const data::Dataset& dataset) const;

 private:
  std::vector<Neighborhood> neighborhoods_;
};

/// One entity's row of a CoverMembership, in serializable form: the
/// persistence layer saves and restores memberships through these (the
/// first-home repair target is real state — it is not derivable from the
/// sorted homes once later neighborhoods have grown around the entity).
struct MembershipEntry {
  data::EntityId entity = 0;
  uint32_t first_home = 0;
  std::vector<uint32_t> homes;  // Sorted, unique.

  friend bool operator==(const MembershipEntry&,
                         const MembershipEntry&) = default;
};

/// Entity -> neighborhood membership of a cover (the patch passes' `homes`
/// map), kept as sorted neighborhood-id vectors so the hot Together() probe
/// is a linear merge instead of a nested linear scan. Also remembers each
/// entity's *first* home — the repair target of PatchPairCoverage — which
/// under the historical representation was the front of an append-only
/// list, i.e. the lowest neighborhood index the entity was born with.
///
/// Shared by the batch patch pass and the streaming layer's incremental
/// cover maintenance: both mutate a Cover through AddEntityTo and mirror
/// the change here. Read methods are safe to call concurrently as long as
/// no Add() runs (the speculative patch scans rely on this).
class CoverMembership {
 public:
  /// Empty membership (streaming: the cover grows from nothing).
  CoverMembership() = default;

  /// Membership of an existing cover; neighborhoods are recorded in index
  /// order, so FirstHome is each entity's lowest containing neighborhood.
  explicit CoverMembership(const Cover& cover);

  /// True if `e` belongs to at least one neighborhood.
  bool Contains(data::EntityId e) const { return entries_.count(e) > 0; }

  /// True if some neighborhood contains both `a` and `b`.
  bool Together(data::EntityId a, data::EntityId b) const;

  /// The first neighborhood `e` was ever recorded in (the patch passes'
  /// repair target). `e` must be contained.
  uint32_t FirstHome(data::EntityId e) const;

  /// Sorted ids of the neighborhoods containing `e` (empty if none).
  const std::vector<uint32_t>& HomesOf(data::EntityId e) const;

  /// Records `e` in neighborhood `n`; returns true if the pair was new.
  bool Add(data::EntityId e, uint32_t n);

  /// Number of entities with at least one home.
  size_t num_entities() const { return entries_.size(); }

  /// Every entity's row, sorted by entity id — the serializable view of
  /// the whole membership (deterministic bytes for the snapshot format).
  std::vector<MembershipEntry> SortedEntries() const;

  /// Rebuilds a membership from SortedEntries() output. Entries must name
  /// each entity once with sorted unique homes containing first_home.
  static CoverMembership FromEntries(std::vector<MembershipEntry> entries);

 private:
  struct Entry {
    uint32_t first_home = 0;
    std::vector<uint32_t> homes;  // Sorted, unique.
  };
  std::unordered_map<data::EntityId, Entry> entries_;
  static const std::vector<uint32_t> kEmptyHomes;
};

// --- totality patches -------------------------------------------------------
// Shared by every cover builder (canopy, LSH, future strategies): a raw
// blocking pass rarely produces a cover satisfying Definition 7 on its own,
// so builders run these two patches as a post-pass.

/// Instrumentation of a PatchPairCoverage pass. Both counters are
/// deterministic for any thread count (the speculative batches are a fixed
/// size, so the same pairs are rechecked no matter how the scans were
/// scheduled).
struct PatchStats {
  /// Split pairs repaired into a neighborhood of their first endpoint.
  size_t pairs_patched = 0;
  /// Speculatively-split pairs re-verified serially because an earlier
  /// repair in the same batch had already mutated the cover.
  size_t pairs_rechecked = 0;
};

/// Makes `cover` total w.r.t. Similar: every candidate pair ends up inside
/// some neighborhood (any pair the blocking pass split is patched into a
/// neighborhood of its first endpoint). Every author ref must already be
/// covered.
///
/// Parallel *and* bit-identical to the serial pass for any thread count:
/// split-pair detection runs in fixed-size batches on `ctx`'s pool against
/// a read-only snapshot of the entity->neighborhood map, while the repairs
/// themselves replay serially in candidate-pair order. Neighborhood
/// membership only ever grows, so a speculative "together" verdict is
/// final; a speculative "split" verdict is re-verified serially when an
/// earlier repair in the same batch touched the map.
void PatchPairCoverage(
    const data::Dataset& dataset, Cover& cover,
    const ExecutionContext& ctx = ExecutionContext::Default(),
    PatchStats* stats = nullptr);

/// Boundary expansion (Section 4): adds each member's coauthors to its
/// neighborhoods, making `cover` total w.r.t. Coauthor (Definition 7). This
/// is what brings dissimilar entities — and in general entities of other
/// types — into a neighborhood. Neighborhoods are expanded in parallel on
/// `ctx` (each worker owns whole neighborhoods, so the result is identical
/// for any thread count).
void ExpandCoauthorBoundary(
    const data::Dataset& dataset, Cover& cover,
    const ExecutionContext& ctx = ExecutionContext::Default());

}  // namespace cem::core

#endif  // CEM_CORE_COVER_H_
