#include "mln/mln_matcher.h"

#include <algorithm>
#include <unordered_set>

#include "mln/map_inference.h"
#include "util/logging.h"

namespace cem::mln {

MlnMatcher::MlnMatcher(const data::Dataset& dataset, MlnWeights weights)
    : dataset_(&dataset),
      weights_(weights),
      graph_(PairGraph::Build(dataset)) {}

core::MatchSet MlnMatcher::Match(const std::vector<data::EntityId>& entities,
                                 const core::MatchSet& positive,
                                 const core::MatchSet& negative) const {
  std::unordered_set<data::EntityId> members(entities.begin(), entities.end());
  InferenceStats stats;
  core::MatchSet out = SolveNeighborhoodMap(*dataset_, graph_, weights_,
                                            members, positive, negative,
                                            &stats);
  num_runs_.fetch_add(1, std::memory_order_relaxed);
  total_free_vars_.fetch_add(stats.num_variables, std::memory_order_relaxed);
  return out;
}

std::vector<data::EntityPair> MlnMatcher::EntangledPairs(
    const std::vector<data::EntityId>& entities,
    const core::MatchSet& evidence, const core::MatchSet& base) const {
  const std::unordered_set<data::EntityId> members(entities.begin(),
                                                   entities.end());
  auto in_members = [&](data::EntityId e) { return members.count(e) > 0; };
  auto unresolved = [&](data::PairId id) {
    const data::EntityPair p = graph_.node(id).pair;
    return in_members(p.a) && in_members(p.b) && !base.Contains(p) &&
           !evidence.Contains(p);
  };

  std::vector<data::EntityPair> out;
  std::unordered_set<uint64_t> seen;
  for (data::EntityId e : entities) {
    for (data::PairId id : dataset_->PairsOfEntity(e)) {
      const data::EntityPair p = graph_.node(id).pair;
      if (p.a != e || !unresolved(id)) continue;
      for (data::PairId q : graph_.node(id).links) {
        if (unresolved(q)) {
          if (seen.insert(data::PairKey(p)).second) out.push_back(p);
          break;
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

double MlnMatcher::Score(const core::MatchSet& matches) const {
  double score = 0.0;
  // Unary groundings.
  for (uint64_t key : matches.keys()) {
    const data::EntityPair p = data::PairFromKey(key);
    const auto id = dataset_->FindCandidatePair(p.a, p.b);
    if (!id.has_value()) continue;  // Non-candidate pairs carry no grounding.
    score += graph_.GlobalTheta(*id, weights_);
    // Link groundings, counted once per unordered link.
    for (data::PairId q : graph_.node(*id).links) {
      if (q > *id && matches.Contains(graph_.node(q).pair)) {
        score += weights_.w_coauthor;
      }
    }
  }
  // Count also the (p > q) halves for pairs whose partner has smaller id
  // but is absent from the iteration above. The loop above visits every
  // matched pair, and for each counts links to matched pairs with larger
  // id — every unordered link with both ends matched is counted exactly
  // once. Nothing further needed.
  return score;
}

double MlnMatcher::ScoreDelta(
    const core::MatchSet& current,
    const std::vector<data::EntityPair>& additions) const {
  double delta = 0.0;
  core::MatchSet added;  // Additions processed so far (deduplicated).
  for (const data::EntityPair& p : additions) {
    if (current.Contains(p) || added.Contains(p)) continue;
    const auto id = dataset_->FindCandidatePair(p.a, p.b);
    if (id.has_value()) {
      delta += graph_.GlobalTheta(*id, weights_);
      for (data::PairId q : graph_.node(*id).links) {
        const data::EntityPair qp = graph_.node(q).pair;
        // A link fires once when its second endpoint arrives: count links
        // into the already-matched set (current plus earlier additions).
        if (current.Contains(qp) || added.Contains(qp)) {
          delta += weights_.w_coauthor;
        }
      }
    }
    added.Insert(p);
  }
  return delta;
}

void MlnMatcher::ResetCounters() const {
  num_runs_.store(0);
  total_free_vars_.store(0);
}

}  // namespace cem::mln
