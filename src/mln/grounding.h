#ifndef CEM_MLN_GROUNDING_H_
#define CEM_MLN_GROUNDING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "mln/mln_program.h"

namespace cem::mln {

/// The ground Markov network of the Appendix-B MLN over a Dataset's
/// candidate pairs, built once and shared by every neighborhood run.
///
/// Each candidate pair p carries:
///  * its similarity level (unary weight w_sim[level]);
///  * `shared_coauthors` — entities c with coauthor(e1,c) ∧ coauthor(e2,c);
///    each contributes a reflexive coauthor-rule grounding (+w_coauthor
///    when p is matched), provided c is inside the neighborhood;
///  * `links` — other candidate pairs q = (c1,c2) with coauthor(e1,c1) ∧
///    coauthor(e2,c2) (or crossed); the link contributes +w_coauthor when
///    both p and q are matched, provided q's endpoints are inside the
///    neighborhood.
///
/// A neighborhood run induces the sub-network by membership filtering
/// (Section 4's R(C) semantics): all four entities of a link, or the shared
/// coauthor, must lie inside C.
class PairGraph {
 public:
  struct Node {
    data::EntityPair pair;
    text::SimilarityLevel level = text::SimilarityLevel::kNone;
    /// Shared coauthors of the two references (sorted).
    std::vector<data::EntityId> shared_coauthors;
    /// Candidate pairs linked by the coauthor rule (sorted, no self, no
    /// duplicates).
    std::vector<data::PairId> links;
  };

  /// Builds the ground network for `dataset`'s candidate pairs. O(sum over
  /// pairs of coauthor-degree product) — near-linear for bounded degrees.
  static PairGraph Build(const data::Dataset& dataset);

  const Node& node(data::PairId id) const { return nodes_[id]; }
  size_t num_nodes() const { return nodes_.size(); }

  /// Global (whole-dataset) unary weight of pair `id`: similarity rule +
  /// one reflexive grounding per shared coauthor.
  double GlobalTheta(data::PairId id, const MlnWeights& weights) const;

  /// Total number of link groundings (each unordered link counted once).
  size_t num_links() const { return num_links_; }

 private:
  std::vector<Node> nodes_;
  size_t num_links_ = 0;
};

}  // namespace cem::mln

#endif  // CEM_MLN_GROUNDING_H_
