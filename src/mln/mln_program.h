#ifndef CEM_MLN_MLN_PROGRAM_H_
#define CEM_MLN_MLN_PROGRAM_H_

#include <string>

#include "text/similarity_level.h"

namespace cem::mln {

/// The Markov Logic Network of Appendix B, specialised to the entity
/// matching schema. The program has four first-order rules:
///
///   1..3:  similar(e1, e2, s)                             => equals(e1, e2)
///      4:  coauthor(e1, c1) ∧ coauthor(e2, c2)
///           ∧ equals(c1, c2)                              => equals(e1, e2)
///
/// plus the implicit reflexivity rule equals(e, e).
///
/// Grounding semantics (documented in DESIGN.md and validated against every
/// number in the paper's Section 2.1 worked example): the score of a match
/// set S is, up to an additive constant,
///
///   Score(S) =  Σ_p  w_sim[level(p)] · x_p
///            +  Σ_p  w_coauthor · shared_coauthors(p) · x_p     (reflexive)
///            +  Σ_{unordered links {p,q}}  w_coauthor · x_p · x_q
///
/// where a *link* {p, q} between candidate pairs p = (e1,e2), q = (c1,c2)
/// exists iff coauthor(e1,c1) ∧ coauthor(e2,c2) (possibly crossed). Every
/// rule has a single `equals` literal in its implicant, so by the paper's
/// Proposition 4 the induced matcher is monotone and supermodular — and the
/// MAP problem is an s-t min-cut (exact inference).
struct MlnWeights {
  /// w_sim[s] is the weight of the similarity rule at level s ∈ {1,2,3};
  /// index 0 is unused (level-0 pairs are non-candidates).
  double w_sim[4] = {0.0, -2.28, -3.84, 12.75};

  /// Weight of the coauthor rule.
  double w_coauthor = 2.46;

  /// The learned weights the paper reports (Appendix B): -2.28 / -3.84 /
  /// 12.75 for similarity levels 1..3 and 2.46 for the coauthor rule.
  static MlnWeights PaperLearned() { return MlnWeights(); }

  /// The pedagogical weights of Section 2.1: R1 = -5 (any similarity
  /// level), R2 = +8. Reproduces the Figure 1/2 walkthrough exactly.
  static MlnWeights Figure1Demo() {
    MlnWeights w;
    w.w_sim[1] = w.w_sim[2] = w.w_sim[3] = -5.0;
    w.w_coauthor = 8.0;
    return w;
  }

  double SimWeight(text::SimilarityLevel level) const {
    return w_sim[static_cast<int>(level)];
  }

  std::string ToString() const;
};

}  // namespace cem::mln

#endif  // CEM_MLN_MLN_PROGRAM_H_
