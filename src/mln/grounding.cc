#include "mln/grounding.h"

#include <algorithm>

#include "util/logging.h"

namespace cem::mln {

PairGraph PairGraph::Build(const data::Dataset& dataset) {
  PairGraph graph;
  graph.nodes_.resize(dataset.num_candidate_pairs());
  for (data::PairId id = 0; id < dataset.num_candidate_pairs(); ++id) {
    Node& node = graph.nodes_[id];
    const data::CandidatePair& cp = dataset.candidate_pair(id);
    node.pair = cp.pair;
    node.level = cp.level;

    const std::vector<data::EntityId>& co_a = dataset.Coauthors(cp.pair.a);
    const std::vector<data::EntityId>& co_b = dataset.Coauthors(cp.pair.b);

    // Reflexive groundings: shared coauthors (both lists are sorted).
    std::set_intersection(co_a.begin(), co_a.end(), co_b.begin(), co_b.end(),
                          std::back_inserter(node.shared_coauthors));

    // Link groundings: q = (c, d), c from e1's coauthors, d from e2's.
    for (data::EntityId c : co_a) {
      for (data::EntityId d : co_b) {
        if (c == d) continue;  // Reflexive case handled above.
        const auto q = dataset.FindCandidatePair(c, d);
        if (!q.has_value() || *q == id) continue;
        node.links.push_back(*q);
      }
    }
    std::sort(node.links.begin(), node.links.end());
    node.links.erase(std::unique(node.links.begin(), node.links.end()),
                     node.links.end());
  }
  // Count unordered links once; also sanity-check symmetry.
  size_t directed = 0;
  for (const Node& node : graph.nodes_) directed += node.links.size();
  CEM_CHECK(directed % 2 == 0) << "link relation must be symmetric";
  graph.num_links_ = directed / 2;
  return graph;
}

double PairGraph::GlobalTheta(data::PairId id,
                              const MlnWeights& weights) const {
  const Node& node = nodes_[id];
  return weights.SimWeight(node.level) +
         weights.w_coauthor * static_cast<double>(node.shared_coauthors.size());
}

}  // namespace cem::mln
