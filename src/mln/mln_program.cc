#include "mln/mln_program.h"

#include <cstdio>

namespace cem::mln {

std::string MlnWeights::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "MlnWeights{sim1=%.3f sim2=%.3f sim3=%.3f coauthor=%.3f}",
                w_sim[1], w_sim[2], w_sim[3], w_coauthor);
  return buf;
}

}  // namespace cem::mln
