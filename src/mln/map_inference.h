#ifndef CEM_MLN_MAP_INFERENCE_H_
#define CEM_MLN_MAP_INFERENCE_H_

#include <cstddef>
#include <unordered_set>
#include <vector>

#include "core/match_set.h"
#include "data/dataset.h"
#include "mln/grounding.h"
#include "mln/mln_program.h"

namespace cem::mln {

/// Statistics of one inference call (for the running-time analyses of
/// Figures 3(d)-(f): the paper's key observation is that message passing
/// shrinks the *active* size of neighborhoods).
struct InferenceStats {
  size_t num_variables = 0;   // Free (unclamped) match variables.
  size_t num_clamped = 0;     // Evidence-clamped variables.
  size_t num_edges = 0;       // Pairwise link terms among free variables.
};

/// Exact MAP over the sub-network induced by `members` (R(C) semantics),
/// conditioned on evidence: pairs of `positive` inside C x C are clamped to
/// match, pairs of `negative` to non-match. Returns the *largest*
/// most-likely match set (Section 3.2's tie-break), which includes the
/// clamped positive pairs.
///
/// Exactness: the energy is pairwise-submodular (all interaction weights
/// are attractive for w_coauthor >= 0), so the minimiser is an s-t min-cut;
/// the largest optimal assignment is the sink-unreachable side of the
/// residual graph.
core::MatchSet SolveNeighborhoodMap(
    const data::Dataset& dataset, const PairGraph& graph,
    const MlnWeights& weights,
    const std::unordered_set<data::EntityId>& members,
    const core::MatchSet& positive, const core::MatchSet& negative,
    InferenceStats* stats = nullptr);

/// Reference solver: enumerates all assignments of the free variables
/// (requires <= 25 of them) and returns the largest maximum-score set.
/// Used by tests to certify the graph-cut solver.
core::MatchSet BruteForceMap(
    const data::Dataset& dataset, const PairGraph& graph,
    const MlnWeights& weights,
    const std::unordered_set<data::EntityId>& members,
    const core::MatchSet& positive, const core::MatchSet& negative);

/// Score of an explicit assignment restricted to the induced sub-network:
/// sum of unary plus link groundings inside `members` satisfied by
/// `matches`. Shared by both solvers and by tests.
double InducedScore(const data::Dataset& dataset, const PairGraph& graph,
                    const MlnWeights& weights,
                    const std::unordered_set<data::EntityId>& members,
                    const core::MatchSet& matches);

}  // namespace cem::mln

#endif  // CEM_MLN_MAP_INFERENCE_H_
