#ifndef CEM_MLN_WEIGHT_LEARNER_H_
#define CEM_MLN_WEIGHT_LEARNER_H_

#include "data/dataset.h"
#include "mln/grounding.h"
#include "mln/mln_program.h"

namespace cem::mln {

/// Options for weight learning.
struct LearnOptions {
  /// Additive smoothing for match-rate estimates.
  double smoothing = 1.0;
  /// Floor/ceiling for learned log-odds weights.
  double max_abs_weight = 15.0;
};

/// Learns MLN rule weights from a labelled dataset (substitute for the
/// paper's Alchemy training run; see DESIGN.md §1).
///
/// Estimator: the similarity-rule weight at level s is the smoothed
/// log-odds of a candidate pair at that level being a true match; the
/// coauthor-rule weight is the average log-odds *lift* of having at least
/// one true-matching coauthor support (reflexive or link), controlling for
/// similarity level. A pseudo-likelihood-style estimator — simple, closed
/// form, and on the synthetic corpora it recovers the qualitative shape of
/// the paper's learned weights (negative for levels 1-2, strongly positive
/// for level 3, moderately positive for the coauthor rule).
MlnWeights LearnWeights(const data::Dataset& dataset,
                        const LearnOptions& options = {});

}  // namespace cem::mln

#endif  // CEM_MLN_WEIGHT_LEARNER_H_
