#include "mln/map_inference.h"

#include <algorithm>
#include <unordered_map>

#include "graph/max_flow.h"
#include "util/logging.h"

namespace cem::mln {
namespace {

/// Clamp states of a variable inside one inference call.
enum class Clamp : uint8_t { kFree, kOne, kZero };

/// The induced subproblem: variables (candidate pairs fully inside C),
/// their clamp states and induced unary weights, and the induced links.
struct Induced {
  std::vector<data::PairId> vars;                 // All in-C candidate pairs.
  std::unordered_map<data::PairId, int> index;    // PairId -> position.
  std::vector<Clamp> clamp;
  std::vector<double> theta;                      // Induced unary weight.
  // Links between in-C variables, each unordered link once (i < j by
  // position).
  std::vector<std::pair<int, int>> links;
};

bool InMembers(const std::unordered_set<data::EntityId>& members,
               data::EntityId e) {
  return members.count(e) > 0;
}

Induced BuildInduced(const data::Dataset& dataset, const PairGraph& graph,
                     const MlnWeights& weights,
                     const std::unordered_set<data::EntityId>& members,
                     const core::MatchSet& positive,
                     const core::MatchSet& negative) {
  Induced induced;
  // Collect candidate pairs fully inside C, each once.
  for (data::EntityId e : members) {
    for (data::PairId id : dataset.PairsOfEntity(e)) {
      const data::EntityPair p = graph.node(id).pair;
      // Each pair is seen from both endpoints; take it from the smaller.
      if (p.a != e) continue;
      if (!InMembers(members, p.b)) continue;
      induced.index.emplace(id, static_cast<int>(induced.vars.size()));
      induced.vars.push_back(id);
    }
  }
  const size_t n = induced.vars.size();
  induced.clamp.resize(n, Clamp::kFree);
  induced.theta.resize(n, 0.0);

  for (size_t i = 0; i < n; ++i) {
    const PairGraph::Node& node = graph.node(induced.vars[i]);
    if (negative.Contains(node.pair)) {
      induced.clamp[i] = Clamp::kZero;
    } else if (positive.Contains(node.pair)) {
      induced.clamp[i] = Clamp::kOne;
    }
    // Induced unary: similarity rule + reflexive groundings whose shared
    // coauthor lies inside C.
    double theta = weights.SimWeight(node.level);
    for (data::EntityId c : node.shared_coauthors) {
      if (InMembers(members, c)) theta += weights.w_coauthor;
    }
    induced.theta[i] = theta;
  }

  // Induced links. A link {p, q} is inside C iff q is an in-C variable
  // (p already is); record once per unordered link.
  for (size_t i = 0; i < n; ++i) {
    const PairGraph::Node& node = graph.node(induced.vars[i]);
    for (data::PairId q : node.links) {
      auto it = induced.index.find(q);
      if (it == induced.index.end()) continue;
      const int j = it->second;
      if (static_cast<int>(i) < j) induced.links.emplace_back(i, j);
    }
  }
  return induced;
}

}  // namespace

double InducedScore(const data::Dataset& dataset, const PairGraph& graph,
                    const MlnWeights& weights,
                    const std::unordered_set<data::EntityId>& members,
                    const core::MatchSet& matches) {
  const Induced induced = BuildInduced(dataset, graph, weights, members,
                                       /*positive=*/core::MatchSet(),
                                       /*negative=*/core::MatchSet());
  double score = 0.0;
  std::vector<bool> x(induced.vars.size(), false);
  for (size_t i = 0; i < induced.vars.size(); ++i) {
    x[i] = matches.Contains(graph.node(induced.vars[i]).pair);
    if (x[i]) score += induced.theta[i];
  }
  for (const auto& [i, j] : induced.links) {
    if (x[i] && x[j]) score += weights.w_coauthor;
  }
  return score;
}

core::MatchSet SolveNeighborhoodMap(
    const data::Dataset& dataset, const PairGraph& graph,
    const MlnWeights& weights,
    const std::unordered_set<data::EntityId>& members,
    const core::MatchSet& positive, const core::MatchSet& negative,
    InferenceStats* stats) {
  const Induced induced =
      BuildInduced(dataset, graph, weights, members, positive, negative);
  const size_t n = induced.vars.size();

  // Fold clamped variables into the free subproblem.
  std::vector<int> free_index(n, -1);
  int num_free = 0;
  for (size_t i = 0; i < n; ++i) {
    if (induced.clamp[i] == Clamp::kFree) free_index[i] = num_free++;
  }
  std::vector<double> theta(num_free);
  for (size_t i = 0; i < n; ++i) {
    if (free_index[i] >= 0) theta[free_index[i]] = induced.theta[i];
  }
  std::vector<std::pair<int, int>> free_links;
  for (const auto& [i, j] : induced.links) {
    const Clamp ci = induced.clamp[i];
    const Clamp cj = induced.clamp[j];
    if (ci == Clamp::kFree && cj == Clamp::kFree) {
      free_links.emplace_back(free_index[i], free_index[j]);
    } else if (ci == Clamp::kFree && cj == Clamp::kOne) {
      theta[free_index[i]] += weights.w_coauthor;
    } else if (cj == Clamp::kFree && ci == Clamp::kOne) {
      theta[free_index[j]] += weights.w_coauthor;
    }
    // Links to clamped-zero variables never fire.
  }

  if (stats != nullptr) {
    stats->num_variables = static_cast<size_t>(num_free);
    stats->num_clamped = n - static_cast<size_t>(num_free);
    stats->num_edges = free_links.size();
  }

  // Maximise sum(theta_i x_i) + sum(w x_i x_j)  ==  min-cut (see DESIGN.md).
  std::vector<bool> x(num_free, false);
  if (num_free > 0) {
    const double w = weights.w_coauthor;
    CEM_CHECK(w >= 0.0) << "attractive coauthor weight required for exact "
                           "graph-cut inference";
    std::vector<double> unary_cost(theta.begin(), theta.end());
    // c_i = -theta_i - (w/2) * degree_i ; pairwise w/2 both ways.
    std::vector<double> c(num_free);
    for (int i = 0; i < num_free; ++i) c[i] = -theta[i];
    for (const auto& [i, j] : free_links) {
      c[i] -= w / 2.0;
      c[j] -= w / 2.0;
    }
    graph::MaxFlow flow(num_free + 2);
    const int source = num_free;
    const int sink = num_free + 1;
    for (int i = 0; i < num_free; ++i) {
      if (c[i] > 0) {
        flow.AddEdge(i, sink, c[i]);
      } else if (c[i] < 0) {
        flow.AddEdge(source, i, -c[i]);
      }
    }
    for (const auto& [i, j] : free_links) {
      flow.AddEdge(i, j, w / 2.0, w / 2.0);
    }
    flow.Solve(source, sink);
    const std::vector<bool> on_source_side = flow.SinkUnreachableSet();
    for (int i = 0; i < num_free; ++i) x[i] = on_source_side[i];
    (void)unary_cost;
  }

  core::MatchSet out;
  for (size_t i = 0; i < n; ++i) {
    if (induced.clamp[i] == Clamp::kOne ||
        (free_index[i] >= 0 && x[free_index[i]])) {
      out.Insert(graph.node(induced.vars[i]).pair);
    }
  }
  return out;
}

core::MatchSet BruteForceMap(
    const data::Dataset& dataset, const PairGraph& graph,
    const MlnWeights& weights,
    const std::unordered_set<data::EntityId>& members,
    const core::MatchSet& positive, const core::MatchSet& negative) {
  const Induced induced =
      BuildInduced(dataset, graph, weights, members, positive, negative);
  const size_t n = induced.vars.size();

  std::vector<int> free_vars;
  for (size_t i = 0; i < n; ++i) {
    if (induced.clamp[i] == Clamp::kFree) free_vars.push_back(static_cast<int>(i));
  }
  CEM_CHECK(free_vars.size() <= 25) << "brute force limited to 25 variables";

  std::vector<bool> x(n, false);
  for (size_t i = 0; i < n; ++i) x[i] = induced.clamp[i] == Clamp::kOne;

  auto score_of = [&](const std::vector<bool>& assignment) {
    double score = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (assignment[i]) score += induced.theta[i];
    }
    for (const auto& [i, j] : induced.links) {
      if (assignment[i] && assignment[j]) score += weights.w_coauthor;
    }
    return score;
  };

  double best_score = -1e300;
  size_t best_size = 0;
  std::vector<bool> best = x;
  const uint64_t limit = 1ull << free_vars.size();
  for (uint64_t mask = 0; mask < limit; ++mask) {
    std::vector<bool> assignment = x;
    size_t size = 0;
    for (size_t k = 0; k < free_vars.size(); ++k) {
      assignment[free_vars[k]] = (mask >> k) & 1;
    }
    for (size_t i = 0; i < n; ++i) size += assignment[i] ? 1 : 0;
    const double score = score_of(assignment);
    // Largest most-likely set: better score wins; equal score prefers the
    // larger set (tolerance guards float ties).
    if (score > best_score + 1e-9 ||
        (score > best_score - 1e-9 && size > best_size)) {
      best_score = score;
      best_size = size;
      best = assignment;
    }
  }

  core::MatchSet out;
  for (size_t i = 0; i < n; ++i) {
    if (best[i]) out.Insert(graph.node(induced.vars[i]).pair);
  }
  (void)dataset;
  return out;
}

}  // namespace cem::mln
