#ifndef CEM_MLN_MLN_MATCHER_H_
#define CEM_MLN_MLN_MATCHER_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/matcher.h"
#include "mln/grounding.h"
#include "mln/mln_program.h"

namespace cem::mln {

/// The paper's MLN entity matcher (Singla & Domingos [18], Appendix B
/// rules) as a Type-II probabilistic black box.
///
/// * Match() is exact MAP inference over the sub-network induced by the
///   given entities, conditioned on the evidence sets, returning the
///   largest most-likely match set.
/// * Score()/ScoreDelta() evaluate the unnormalised log P_E of explicit
///   match sets over the full dataset — cheap, as Section 5.2 requires.
///
/// The matcher is well-behaved (idempotent + monotone) and supermodular,
/// by the paper's Proposition 4: every rule has a single equals literal in
/// its implicant. Property tests verify this empirically.
///
/// Thread safety: Match/Score/ScoreDelta are const and safe to call
/// concurrently (the GridExecutor does); the run counters are atomic.
class MlnMatcher : public core::ProbabilisticMatcher {
 public:
  /// Builds the ground network for `dataset`. The dataset must outlive the
  /// matcher, be Finalize()d and have candidate pairs built.
  explicit MlnMatcher(const data::Dataset& dataset,
                      MlnWeights weights = MlnWeights::PaperLearned());

  core::MatchSet Match(const std::vector<data::EntityId>& entities,
                       const core::MatchSet& positive,
                       const core::MatchSet& negative) const override;
  using core::Matcher::Match;

  /// Exact pruning for COMPUTEMAXIMAL: only pairs with at least one induced
  /// link to another unresolved in-neighborhood pair can appear in a
  /// non-singleton maximal message (interactions flow exclusively through
  /// links), so only those are returned.
  std::vector<data::EntityPair> EntangledPairs(
      const std::vector<data::EntityId>& entities,
      const core::MatchSet& evidence,
      const core::MatchSet& base) const override;

  const data::Dataset& dataset() const override { return *dataset_; }

  double Score(const core::MatchSet& matches) const override;
  double ScoreDelta(
      const core::MatchSet& current,
      const std::vector<data::EntityPair>& additions) const override;

  const PairGraph& pair_graph() const { return graph_; }
  const MlnWeights& weights() const { return weights_; }

  /// Cumulative observability counters (reset with ResetCounters).
  uint64_t num_runs() const { return num_runs_.load(); }
  uint64_t total_free_variables() const { return total_free_vars_.load(); }
  void ResetCounters() const;

 private:
  const data::Dataset* dataset_;
  MlnWeights weights_;
  PairGraph graph_;
  mutable std::atomic<uint64_t> num_runs_{0};
  mutable std::atomic<uint64_t> total_free_vars_{0};
};

}  // namespace cem::mln

#endif  // CEM_MLN_MLN_MATCHER_H_
