#include "mln/weight_learner.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace cem::mln {
namespace {

double ClampedLogOdds(double successes, double total, double smoothing,
                      double max_abs) {
  const double p = (successes + smoothing) / (total + 2.0 * smoothing);
  const double w = std::log(p / (1.0 - p));
  return std::clamp(w, -max_abs, max_abs);
}

}  // namespace

MlnWeights LearnWeights(const data::Dataset& dataset,
                        const LearnOptions& options) {
  const PairGraph graph = PairGraph::Build(dataset);

  // Per-level counts, split by whether the pair has true-match coauthor
  // support (a shared coauthor, or a linked pair that is a true match).
  double matches[4] = {0, 0, 0, 0};
  double totals[4] = {0, 0, 0, 0};
  double supported_matches[4] = {0, 0, 0, 0};
  double supported_totals[4] = {0, 0, 0, 0};
  double unsupported_matches[4] = {0, 0, 0, 0};
  double unsupported_totals[4] = {0, 0, 0, 0};

  for (data::PairId id = 0; id < graph.num_nodes(); ++id) {
    const PairGraph::Node& node = graph.node(id);
    const int level = static_cast<int>(node.level);
    const bool is_match = dataset.IsTrueMatch(node.pair);
    bool supported = !node.shared_coauthors.empty();
    if (!supported) {
      for (data::PairId q : node.links) {
        if (dataset.IsTrueMatch(graph.node(q).pair)) {
          supported = true;
          break;
        }
      }
    }
    totals[level] += 1;
    matches[level] += is_match ? 1 : 0;
    if (supported) {
      supported_totals[level] += 1;
      supported_matches[level] += is_match ? 1 : 0;
    } else {
      unsupported_totals[level] += 1;
      unsupported_matches[level] += is_match ? 1 : 0;
    }
  }

  MlnWeights weights;
  for (int level = 1; level <= 3; ++level) {
    weights.w_sim[level] =
        ClampedLogOdds(matches[level], totals[level], options.smoothing,
                       options.max_abs_weight);
  }

  // Coauthor weight: averaged log-odds lift across levels with data.
  double lift_sum = 0;
  double lift_count = 0;
  for (int level = 1; level <= 3; ++level) {
    if (supported_totals[level] < 1 || unsupported_totals[level] < 1) continue;
    const double with_support =
        ClampedLogOdds(supported_matches[level], supported_totals[level],
                       options.smoothing, options.max_abs_weight);
    const double without_support =
        ClampedLogOdds(unsupported_matches[level], unsupported_totals[level],
                       options.smoothing, options.max_abs_weight);
    lift_sum += with_support - without_support;
    lift_count += 1;
  }
  if (lift_count > 0) {
    // The coauthor rule must stay attractive for exact inference; an
    // (unexpected) negative lift is floored at a small positive weight.
    weights.w_coauthor = std::max(0.1, lift_sum / lift_count);
  }
  return weights;
}

}  // namespace cem::mln
