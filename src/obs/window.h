#ifndef CEM_OBS_WINDOW_H_
#define CEM_OBS_WINDOW_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace cem::obs {

/// Merged read of one trailing window of a RollingWindow.
struct WindowStats {
  /// Samples recorded inside the window.
  uint64_t count = 0;
  /// Of which flagged as errors.
  uint64_t errors = 0;
  /// The window length the read merged, seconds.
  uint64_t window_s = 0;
  /// count / window_s — the live rate.
  double qps = 0.0;
  /// errors / count (0 when the window is empty).
  double error_rate = 0.0;
  /// Bucket-resolution latency percentiles over the window, microseconds
  /// (same 1-2-5 ladder and interpolation as obs::Histogram, overflow
  /// clamped to the last finite bound).
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Live sliding-window aggregation: where a Histogram answers "p99 since
/// process start", a RollingWindow answers "p99 over the last 10
/// seconds". The structure is a lock-light ring of per-second sub-buckets
/// — Record() tags the current second's bucket and bumps relaxed atomics
/// (a mutex is taken only when a bucket is reused for a new second, once
/// per second per slot); Over() merges the buckets whose second falls
/// inside the trailing window. Totals are exact: a sample is counted in
/// exactly one sub-bucket, and sub-buckets survive untouched for
/// kCapacitySeconds before their slot is recycled, so any read whose
/// window fits the capacity sees every sample recorded in it.
///
/// The clock is injectable (RecordAt/OverAt take the epoch second) so
/// expiry and merging are deterministically testable; Record/Over use the
/// process steady clock.
class RollingWindow {
 public:
  /// Ring capacity in seconds. Reads clamp to kMaxWindowSeconds, leaving
  /// slack so a read at the edge of the window never races a recycle.
  static constexpr uint64_t kCapacitySeconds = 64;
  static constexpr uint64_t kMaxWindowSeconds = 60;

  RollingWindow();

  RollingWindow(const RollingWindow&) = delete;
  RollingWindow& operator=(const RollingWindow&) = delete;

  /// Records one sample into the current second's bucket. Thread-safe,
  /// contention-free against other recorders of the same second.
  void Record(double latency_us, bool error = false) {
    RecordAt(NowSeconds(), latency_us, error);
  }

  /// Merged stats over the trailing `window_s` seconds (clamped to
  /// [1, kMaxWindowSeconds]).
  WindowStats Over(uint64_t window_s) const {
    return OverAt(window_s, NowSeconds());
  }

  /// Record against an explicit epoch second (deterministic tests; the
  /// serving layer always uses Record). A sample older than the bucket
  /// its slot currently holds is dropped — it belongs to a second that
  /// already recycled out of the ring.
  void RecordAt(uint64_t now_s, double latency_us, bool error);

  /// Over against an explicit epoch second.
  WindowStats OverAt(uint64_t window_s, uint64_t now_s) const;

  /// Seconds since the process trace epoch (steady clock — shared with
  /// TraceNowNs so trace timestamps and window seconds line up).
  static uint64_t NowSeconds();

 private:
  struct alignas(64) Bucket {
    /// The epoch second this bucket currently holds; kIdle when never
    /// used. Written under `reset_mu`, read with acquire.
    std::atomic<uint64_t> second{kIdle};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> errors{0};
    std::atomic<double> latency_sum{0.0};
    /// bounds.size() + 1 latency buckets (last = overflow), like Histogram.
    std::unique_ptr<std::atomic<uint64_t>[]> latency;
    /// Serializes the once-per-second rollover of this slot.
    std::mutex reset_mu;
  };
  static constexpr uint64_t kIdle = ~0ull;

  /// Points the slot's bucket at `now_s` (zeroing it) if it still holds an
  /// older second; returns false when the sample is stale (the slot moved
  /// past `now_s`).
  bool Roll(Bucket& bucket, uint64_t now_s);

  std::vector<double> bounds_;
  std::array<Bucket, kCapacitySeconds> buckets_;
};

}  // namespace cem::obs

#endif  // CEM_OBS_WINDOW_H_
