#include "obs/expo.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <utility>

namespace cem::obs {
namespace {

bool InPrometheusCharset(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

/// One sample value: Prometheus floats are Go-parseable, so non-finite
/// values have literal spellings (unlike JSON, where the shared escaper's
/// number helper has to zero them out).
std::string Value(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void Family(std::string& out, const std::string& name, const char* help,
            const char* type) {
  out += "# HELP " + name + " " + help + "\n";
  out += "# TYPE " + name + " ";
  out += type;
  out += "\n";
}

}  // namespace

std::string PrometheusName(std::string_view name) {
  std::string out = "cem_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    out += InPrometheusCharset(c) ? c : '_';
  }
  return out;
}

std::string RenderMetricsPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  char buf[64];
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = PrometheusName(name) + "_total";
    Family(out, prom, "cem registry counter", "counter");
    std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", value);
    out += prom + buf;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PrometheusName(name);
    Family(out, prom, "cem registry gauge", "gauge");
    out += prom + " " + Value(value) + "\n";
  }
  for (const auto& [name, stats] : snapshot.histograms) {
    // Percentiles are precomputed bucket-resolution estimates, so the
    // family renders as a summary (fixed quantiles), not a histogram
    // (which would promise raw cumulative buckets).
    const std::string prom = PrometheusName(name);
    Family(out, prom, "cem registry latency summary (microseconds)",
           "summary");
    const std::pair<const char*, double> quantiles[] = {
        {"0.5", stats.p50}, {"0.95", stats.p95}, {"0.99", stats.p99}};
    for (const auto& [q, v] : quantiles) {
      out += prom + "{quantile=\"" + q + "\"} " + Value(v) + "\n";
    }
    out += prom + "_sum " + Value(stats.sum) + "\n";
    std::snprintf(buf, sizeof(buf), "_count %" PRIu64 "\n", stats.count);
    out += prom + buf;
  }
  return out;
}

Status WriteMetricsPrometheus(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return InternalError("cannot write metrics to " + path);
  out << RenderMetricsPrometheus(MetricsRegistry::Global().Snapshot());
  out.flush();
  if (!out) return InternalError("short write to " + path);
  return OkStatus();
}

}  // namespace cem::obs
