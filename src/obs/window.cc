#include "obs/window.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace cem::obs {
namespace {

/// The same linear interpolation Histogram::Percentile applies, over the
/// window's merged latency buckets: percentiles inside the overflow
/// bucket clamp to the last finite bound (never +inf/NaN).
double BucketPercentile(const std::vector<uint64_t>& buckets,
                        const std::vector<double>& bounds, uint64_t total,
                        double q) {
  if (total == 0) return 0.0;
  const double target = std::clamp(q, 0.0, 1.0) * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const uint64_t next = cumulative + buckets[i];
    if (static_cast<double>(next) >= target) {
      if (i == bounds.size()) return bounds.back();  // Overflow bucket.
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      const double upper = bounds[i];
      const double within = (target - static_cast<double>(cumulative)) /
                            static_cast<double>(buckets[i]);
      return lower + (upper - lower) * std::clamp(within, 0.0, 1.0);
    }
    cumulative = next;
  }
  return bounds.back();
}

}  // namespace

RollingWindow::RollingWindow()
    : bounds_(Histogram::DefaultLatencyBoundsUs()) {
  for (Bucket& bucket : buckets_) {
    bucket.latency =
        std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
    for (size_t i = 0; i <= bounds_.size(); ++i) bucket.latency[i] = 0;
  }
}

uint64_t RollingWindow::NowSeconds() { return TraceNowNs() / 1'000'000'000ull; }

bool RollingWindow::Roll(Bucket& bucket, uint64_t now_s) {
  std::lock_guard<std::mutex> lock(bucket.reset_mu);
  const uint64_t held = bucket.second.load(std::memory_order_relaxed);
  if (held == now_s) return true;  // Another recorder rolled it already.
  if (held != kIdle && held > now_s) {
    // The slot recycled past this sample's second (a recorder stalled for
    // a full ring revolution) — dropping it is the only correct move, it
    // belongs to a second no read can select anymore.
    return false;
  }
  bucket.count.store(0, std::memory_order_relaxed);
  bucket.errors.store(0, std::memory_order_relaxed);
  bucket.latency_sum.store(0.0, std::memory_order_relaxed);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    bucket.latency[i].store(0, std::memory_order_relaxed);
  }
  // Release-publish the new second: a reader that sees it also sees the
  // zeroed contents.
  bucket.second.store(now_s, std::memory_order_release);
  return true;
}

void RollingWindow::RecordAt(uint64_t now_s, double latency_us, bool error) {
  Bucket& bucket = buckets_[now_s % kCapacitySeconds];
  if (bucket.second.load(std::memory_order_acquire) != now_s &&
      !Roll(bucket, now_s)) {
    return;
  }
  const size_t slot =
      static_cast<size_t>(std::lower_bound(bounds_.begin(), bounds_.end(),
                                           latency_us) -
                          bounds_.begin());
  bucket.count.fetch_add(1, std::memory_order_relaxed);
  if (error) bucket.errors.fetch_add(1, std::memory_order_relaxed);
  bucket.latency_sum.fetch_add(latency_us, std::memory_order_relaxed);
  bucket.latency[slot].fetch_add(1, std::memory_order_relaxed);
}

WindowStats RollingWindow::OverAt(uint64_t window_s, uint64_t now_s) const {
  WindowStats stats;
  stats.window_s = std::clamp<uint64_t>(window_s, 1, kMaxWindowSeconds);
  std::vector<uint64_t> merged(bounds_.size() + 1, 0);
  for (const Bucket& bucket : buckets_) {
    const uint64_t second = bucket.second.load(std::memory_order_acquire);
    // The window is the trailing closed interval of seconds
    // (now_s - window_s, now_s].
    if (second == kIdle || second > now_s ||
        now_s - second >= stats.window_s) {
      continue;
    }
    stats.count += bucket.count.load(std::memory_order_relaxed);
    stats.errors += bucket.errors.load(std::memory_order_relaxed);
    for (size_t i = 0; i <= bounds_.size(); ++i) {
      merged[i] += bucket.latency[i].load(std::memory_order_relaxed);
    }
  }
  stats.qps = static_cast<double>(stats.count) /
              static_cast<double>(stats.window_s);
  stats.error_rate = stats.count == 0
                         ? 0.0
                         : static_cast<double>(stats.errors) /
                               static_cast<double>(stats.count);
  stats.p50 = BucketPercentile(merged, bounds_, stats.count, 0.50);
  stats.p95 = BucketPercentile(merged, bounds_, stats.count, 0.95);
  stats.p99 = BucketPercentile(merged, bounds_, stats.count, 0.99);
  return stats;
}

}  // namespace cem::obs
