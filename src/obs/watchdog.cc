#include "obs/watchdog.h"

#include <utility>

#include "obs/metrics.h"

namespace cem::obs {

IngestWatchdog::IngestWatchdog() : IngestWatchdog(Options()) {}

IngestWatchdog::IngestWatchdog(const Options& options) : options_(options) {}

IngestWatchdog::~IngestWatchdog() { Stop(); }

void IngestWatchdog::Start(Sample epoch, Sample queue_depth) {
  Stop();  // At most one monitor thread.
  epoch_fn_ = std::move(epoch);
  depth_fn_ = std::move(queue_depth);
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { Loop(); });
}

void IngestWatchdog::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

bool IngestWatchdog::Observe(uint64_t epoch, uint64_t queue_depth,
                             std::chrono::steady_clock::time_point now) {
  static Gauge& stalled_gauge =
      MetricsRegistry::Global().gauge("serve_ingest_stalled");
  static Counter& stall_counter =
      MetricsRegistry::Global().counter("serve_ingest_stall_events");
  const bool progressed =
      !have_baseline_ || epoch != last_epoch_ || queue_depth == 0;
  if (progressed) {
    // Epoch moved, the queue drained, or this is the first look — all
    // three reset the stall clock (an idle server is never stalled).
    have_baseline_ = true;
    last_epoch_ = epoch;
    last_progress_ = now;
    if (stalled_.exchange(false, std::memory_order_acq_rel)) {
      stalled_gauge.Set(0.0);
    }
    return false;
  }
  if (now - last_progress_ >= options_.deadline) {
    if (!stalled_.exchange(true, std::memory_order_acq_rel)) {
      stall_events_.fetch_add(1, std::memory_order_relaxed);
      stall_counter.Add(1);
      stalled_gauge.Set(1.0);
    }
    return true;
  }
  return stalled();
}

void IngestWatchdog::Loop() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  while (!stop_requested_) {
    // The providers are lock-free reads, so sampling under the stop lock
    // is contention-free except at the shutdown handshake itself.
    const uint64_t epoch = epoch_fn_();
    const uint64_t depth = depth_fn_();
    Observe(epoch, depth, std::chrono::steady_clock::now());
    stop_cv_.wait_for(lock, options_.poll, [this] { return stop_requested_; });
  }
}

}  // namespace cem::obs
