#include "obs/query_trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "obs/json.h"

namespace cem::obs {
namespace {

/// Heap order that puts the CHEAPEST retained trace at the front (a
/// "greater" comparator makes std::push_heap build a min-heap), so a new
/// slow query only has to beat the front to earn a slot.
bool MinHeapOrder(const QueryTrace& a, const QueryTrace& b) {
  return a.total_us > b.total_us;
}

void AppendField(std::string& out, const char* key, double value,
                 bool* first) {
  if (!*first) out += ", ";
  *first = false;
  out += "\"";
  out += key;  // Keys are literals; escaping kept for shared convention.
  out += "\": ";
  AppendJsonNumber(out, value, "%.3f");
}

void AppendField(std::string& out, const char* key, uint64_t value,
                 bool* first) {
  if (!*first) out += ", ";
  *first = false;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out += "\"";
  out += key;
  out += "\": ";
  out += buf;
}

void AppendField(std::string& out, const char* key, bool value, bool* first) {
  if (!*first) out += ", ";
  *first = false;
  out += "\"";
  out += key;
  out += "\": ";
  out += value ? "true" : "false";
}

}  // namespace

uint64_t NextQueryId() {
  static std::atomic<uint64_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) + 1;
}

void QueryTrace::AppendJson(std::string& out) const {
  out += "{";
  bool first = true;
  AppendField(out, "query_id", query_id, &first);
  AppendField(out, "ref", ref, &first);
  AppendField(out, "epoch", epoch, &first);
  AppendField(out, "live", live, &first);
  AppendField(out, "error", error, &first);
  AppendField(out, "start_us",
              static_cast<double>(start_ns) / 1e3, &first);
  AppendField(out, "signature_us", signature_us, &first);
  AppendField(out, "probe_us", probe_us, &first);
  AppendField(out, "rank_us", rank_us, &first);
  AppendField(out, "cover_us", cover_us, &first);
  AppendField(out, "total_us", total_us, &first);
  AppendField(out, "shards_probed", shards_probed, &first);
  AppendField(out, "candidates_probed", candidates_probed, &first);
  AppendField(out, "candidates_returned", candidates_returned, &first);
  AppendField(out, "cluster_size", cluster_size, &first);
  out += "}";
}

std::string QueryTrace::ToJson() const {
  std::string out;
  AppendJson(out);
  return out;
}

SlowQueryLog::SlowQueryLog(size_t capacity, double threshold_us)
    : capacity_(std::max<size_t>(capacity, 1)), threshold_us_(threshold_us) {}

void SlowQueryLog::Offer(const QueryTrace& trace) {
  if (trace.total_us < threshold_us_) return;
  slow_count_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.size() < capacity_) {
    entries_.push_back(trace);
    std::push_heap(entries_.begin(), entries_.end(), MinHeapOrder);
    return;
  }
  if (trace.total_us <= entries_.front().total_us) return;  // Not worse.
  std::pop_heap(entries_.begin(), entries_.end(), MinHeapOrder);
  entries_.back() = trace;
  std::push_heap(entries_.begin(), entries_.end(), MinHeapOrder);
}

std::vector<QueryTrace> SlowQueryLog::WorstFirst() const {
  std::vector<QueryTrace> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = entries_;
  }
  std::sort(out.begin(), out.end(), [](const QueryTrace& a,
                                       const QueryTrace& b) {
    if (a.total_us != b.total_us) return a.total_us > b.total_us;
    return a.query_id < b.query_id;
  });
  return out;
}

std::string SlowQueryLog::ToJson() const {
  const std::vector<QueryTrace> worst = WorstFirst();
  std::string out = "[";
  for (size_t i = 0; i < worst.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    worst[i].AppendJson(out);
  }
  out += "\n]\n";
  return out;
}

void SlowQueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  slow_count_.store(0, std::memory_order_relaxed);
}

}  // namespace cem::obs
