#ifndef CEM_OBS_EXPO_H_
#define CEM_OBS_EXPO_H_

#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "util/status.h"

namespace cem::obs {

// Prometheus text exposition (format 0.0.4) over the same MetricsSnapshot
// the JSON export reads — one snapshot, two renderings, so a scrape of
// /metrics and of /metrics.json always describe the same instant. See
// serve::StatsServer for the endpoint that serves this.

/// Maps a registry metric name onto the Prometheus name charset
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`: prefixes "cem_" (which also guarantees a
/// legal first character) and replaces every other out-of-charset byte
/// with '_'. Registry names are ASCII identifiers in practice, so this is
/// normally the identity plus the prefix.
std::string PrometheusName(std::string_view name);

/// Renders `snapshot` as Prometheus text exposition: counters as
/// `cem_<name>_total` counter families, gauges as `cem_<name>` gauges,
/// histograms as `cem_<name>` summaries (quantile-labeled p50/p95/p99
/// samples plus `_sum` and `_count`), each family with one HELP and one
/// TYPE line and one sample per line.
std::string RenderMetricsPrometheus(const MetricsSnapshot& snapshot);

/// Writes RenderMetricsPrometheus(Global().Snapshot()) to `path` — the
/// file-export sibling of WriteMetricsJson.
Status WriteMetricsPrometheus(const std::string& path);

}  // namespace cem::obs

#endif  // CEM_OBS_EXPO_H_
