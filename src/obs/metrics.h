#ifndef CEM_OBS_METRICS_H_
#define CEM_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace cem::obs {

/// Number of cache-line-padded write slots every metric spreads its updates
/// over. Threads hash onto slots by a process-unique sequential id, so the
/// instrumented hot paths (per-insert ingest, parallel blocking stages)
/// never contend on one cache line; reads merge the slots. A power of two.
inline constexpr uint32_t kMetricSlots = 16;

namespace internal_metrics {
/// Sequential id of the calling thread, assigned on first use; the slot
/// index is `ThreadSlot() & (kMetricSlots - 1)`.
uint32_t ThreadSlot();
}  // namespace internal_metrics

/// Monotonically increasing integer metric. Add() is wait-free (one relaxed
/// fetch_add on a thread-local slot); Value() merges the slots. Counter
/// totals are exact — sums of integers commute — so a counter incremented
/// only with deterministic amounts is bit-identical for any thread count,
/// which is what lets `counter_*` exports gate in CI.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    slots_[internal_metrics::ThreadSlot() & (kMetricSlots - 1)].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Slot& slot : slots_) {
      total += slot.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Zeroes every slot (test isolation; not linearizable vs concurrent
  /// Add() calls — callers quiesce writers first).
  void Reset() {
    for (Slot& slot : slots_) slot.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> value{0};
  };
  std::array<Slot, kMetricSlots> slots_;
};

/// Last-write-wins scalar (queue depths, live counts). A plain atomic: a
/// gauge records a level, not a rate, so there is nothing to shard.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Merged read of one histogram.
struct HistogramStats {
  uint64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Fixed-bucket histogram: bucket i counts values <= bounds[i] (the last
/// bucket is the overflow). Record() is wait-free on a thread-local slot of
/// per-bucket counters; percentile reads merge the slots and interpolate
/// linearly inside the selected bucket. Counts are exact; percentiles are
/// bucket-resolution estimates — good enough for the p50/p95/p99 latency
/// trajectory, never for gating.
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly ascending.
  explicit Histogram(std::vector<double> bounds);

  /// Default latency bucket bounds, in microseconds: a 1-2-5 ladder from
  /// 1us to 30s. Every duration histogram in the tree records microseconds.
  static std::vector<double> DefaultLatencyBoundsUs();

  void Record(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  uint64_t Count() const;
  /// Exact for integral-valued records (doubles add exactly below 2^53).
  double Sum() const;
  /// Estimated value at quantile `q` in [0, 1]; 0 when empty.
  double Percentile(double q) const;
  HistogramStats Stats() const;

  /// Zeroes every slot (test isolation; quiesce writers first).
  void Reset();

 private:
  struct alignas(64) Slot {
    /// bounds.size() + 1 buckets (the last is the overflow bucket).
    std::unique_ptr<std::atomic<uint64_t>[]> buckets;
    std::atomic<double> sum{0.0};
  };
  /// Merged per-bucket counts + total, shared by the percentile walks.
  void MergedBuckets(std::vector<uint64_t>* buckets, uint64_t* total,
                     double* sum) const;

  std::vector<double> bounds_;
  std::array<Slot, kMetricSlots> slots_;
};

/// Records the elapsed scope duration, in microseconds, into a histogram
/// on destruction — the lightweight sibling of obs::ScopedSpan for sites
/// (like the serve query path) that want a latency distribution without a
/// trace event per call.
class ScopedLatencyUs {
 public:
  explicit ScopedLatencyUs(Histogram& hist)
      : hist_(hist), start_(std::chrono::steady_clock::now()) {}
  ~ScopedLatencyUs() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    hist_.Record(
        std::chrono::duration<double, std::micro>(elapsed).count());
  }

  ScopedLatencyUs(const ScopedLatencyUs&) = delete;
  ScopedLatencyUs& operator=(const ScopedLatencyUs&) = delete;

 private:
  Histogram& hist_;
  std::chrono::steady_clock::time_point start_;
};

/// Point-in-time merged read of a whole registry, keyed by metric name.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramStats> histograms;

  /// One flat JSON object with prefixed keys — the operational export
  /// format (`dedup_tool --metrics-json`, bench reports): every counter as
  /// `"counter_<name>": <integer>`, every gauge as `"gauge_<name>"`, and
  /// every histogram flattened to `hist_<name>_count` / `_p50` / `_p95` /
  /// `_p99` (numeric). ci/check.sh schema-checks exactly this shape.
  std::string ToJson() const;
};

/// Process-wide named-metric registry. Lookup (`counter("x")`) takes a
/// mutex and should run once per instrumentation site (cache the returned
/// reference in a static local); the returned metric objects are the
/// contention-free hot path and stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  /// The process-wide registry every CEM_* instrumentation site uses.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates. Metric kinds share one namespace: registering the
  /// same name as two different kinds is a programming error (CHECK).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Default bounds: Histogram::DefaultLatencyBoundsUs().
  Histogram& histogram(std::string_view name);
  /// Custom bounds apply on first registration; later lookups of the same
  /// name return the existing histogram unchanged.
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric (names stay registered, pointers stay
  /// valid). Test isolation only; quiesce instrumented threads first.
  void ResetForTesting();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry& FindOrCreate(std::string_view name, Kind kind,
                      std::vector<double>* bounds);

  mutable std::mutex mu_;
  std::map<std::string, Entry, std::less<>> entries_;
};

/// Writes MetricsRegistry::Global().Snapshot().ToJson() to `path`.
Status WriteMetricsJson(const std::string& path);

}  // namespace cem::obs

#endif  // CEM_OBS_METRICS_H_
