#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <utility>

#include "obs/json.h"
#include "util/logging.h"

namespace cem::obs {

namespace internal_metrics {

uint32_t ThreadSlot() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace internal_metrics

// --- Histogram --------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  CEM_CHECK(!bounds_.empty()) << "histogram needs at least one bucket bound";
  CEM_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()) &&
            std::adjacent_find(bounds_.begin(), bounds_.end()) == bounds_.end())
      << "histogram bounds must be strictly ascending";
  for (Slot& slot : slots_) {
    slot.buckets =
        std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
    for (size_t i = 0; i <= bounds_.size(); ++i) slot.buckets[i] = 0;
  }
}

std::vector<double> Histogram::DefaultLatencyBoundsUs() {
  std::vector<double> bounds;
  for (double decade = 1.0; decade <= 1e6; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2.0);
    bounds.push_back(decade * 5.0);
  }
  bounds.push_back(1e7);  // 10s.
  bounds.push_back(3e7);  // 30s: anything slower is the overflow bucket.
  return bounds;
}

void Histogram::Record(double value) {
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  Slot& slot =
      slots_[internal_metrics::ThreadSlot() & (kMetricSlots - 1)];
  slot.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  slot.sum.fetch_add(value, std::memory_order_relaxed);
}

void Histogram::MergedBuckets(std::vector<uint64_t>* buckets, uint64_t* total,
                              double* sum) const {
  buckets->assign(bounds_.size() + 1, 0);
  *total = 0;
  *sum = 0.0;
  for (const Slot& slot : slots_) {
    for (size_t i = 0; i <= bounds_.size(); ++i) {
      const uint64_t n = slot.buckets[i].load(std::memory_order_relaxed);
      (*buckets)[i] += n;
      *total += n;
    }
    *sum += slot.sum.load(std::memory_order_relaxed);
  }
}

uint64_t Histogram::Count() const {
  std::vector<uint64_t> buckets;
  uint64_t total = 0;
  double sum = 0.0;
  MergedBuckets(&buckets, &total, &sum);
  return total;
}

double Histogram::Sum() const {
  std::vector<uint64_t> buckets;
  uint64_t total = 0;
  double sum = 0.0;
  MergedBuckets(&buckets, &total, &sum);
  return sum;
}

double Histogram::Percentile(double q) const {
  std::vector<uint64_t> buckets;
  uint64_t total = 0;
  double sum = 0.0;
  MergedBuckets(&buckets, &total, &sum);
  if (total == 0) return 0.0;
  const double target = std::clamp(q, 0.0, 1.0) * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const uint64_t next = cumulative + buckets[i];
    if (static_cast<double>(next) >= target) {
      if (i == bounds_.size()) return bounds_.back();  // Overflow bucket.
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const double upper = bounds_[i];
      const double within =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(buckets[i]);
      return lower + (upper - lower) * std::clamp(within, 0.0, 1.0);
    }
    cumulative = next;
  }
  return bounds_.back();
}

HistogramStats Histogram::Stats() const {
  std::vector<uint64_t> buckets;
  HistogramStats stats;
  MergedBuckets(&buckets, &stats.count, &stats.sum);
  if (stats.count == 0) return stats;
  // One merged read per percentile keeps this simple; snapshots race with
  // writers by design (monitoring reads are always approximate in time).
  stats.p50 = Percentile(0.50);
  stats.p95 = Percentile(0.95);
  stats.p99 = Percentile(0.99);
  return stats;
}

void Histogram::Reset() {
  for (Slot& slot : slots_) {
    for (size_t i = 0; i <= bounds_.size(); ++i) {
      slot.buckets[i].store(0, std::memory_order_relaxed);
    }
    slot.sum.store(0.0, std::memory_order_relaxed);
  }
}

// --- MetricsSnapshot --------------------------------------------------------

std::string MetricsSnapshot::ToJson() const {
  // Metric names go through the shared escaper (obs/json.h): a name
  // carrying a quote, backslash or control character must yield an
  // escaped key, not a truncated/unparseable document.
  std::string out = "{";
  bool first = true;
  const auto key = [&](const char* prefix, const std::string& name,
                       const char* suffix = "") {
    if (!first) out += ", ";
    first = false;
    out += '"';
    out += prefix;
    AppendJsonEscaped(out, name);
    out += suffix;
    out += "\": ";
  };
  char buf[64];
  for (const auto& [name, value] : counters) {
    key("counter_", name);
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    out += buf;
  }
  for (const auto& [name, value] : gauges) {
    key("gauge_", name);
    AppendJsonNumber(out, value, "%.6g");
  }
  for (const auto& [name, stats] : histograms) {
    key("hist_", name, "_count");
    std::snprintf(buf, sizeof(buf), "%" PRIu64, stats.count);
    out += buf;
    const std::pair<const char*, double> quantiles[] = {
        {"_sum", stats.sum}, {"_p50", stats.p50}, {"_p95", stats.p95},
        {"_p99", stats.p99}};
    for (const auto& [suffix, value] : quantiles) {
      key("hist_", name, suffix);
      AppendJsonNumber(out, value, "%.3f");
    }
  }
  out += "}\n";
  return out;
}

// --- MetricsRegistry --------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Entry& MetricsRegistry::FindOrCreate(
    std::string_view name, Kind kind, std::vector<double>* bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = kind;
    switch (kind) {
      case Kind::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        entry.histogram = std::make_unique<Histogram>(
            bounds != nullptr ? std::move(*bounds)
                              : Histogram::DefaultLatencyBoundsUs());
        break;
    }
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  }
  CEM_CHECK(it->second.kind == kind)
      << "metric '" << std::string(name)
      << "' already registered as a different kind";
  return it->second;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  return *FindOrCreate(name, Kind::kCounter, nullptr).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return *FindOrCreate(name, Kind::kGauge, nullptr).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  return *FindOrCreate(name, Kind::kHistogram, nullptr).histogram;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  return *FindOrCreate(name, Kind::kHistogram, &bounds).histogram;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        snapshot.counters[name] = entry.counter->Value();
        break;
      case Kind::kGauge:
        snapshot.gauges[name] = entry.gauge->Value();
        break;
      case Kind::kHistogram:
        snapshot.histograms[name] = entry.histogram->Stats();
        break;
    }
  }
  return snapshot;
}

void MetricsRegistry::ResetForTesting() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        entry.counter->Reset();
        break;
      case Kind::kGauge:
        entry.gauge->Set(0.0);
        break;
      case Kind::kHistogram:
        entry.histogram->Reset();
        break;
    }
  }
}

Status WriteMetricsJson(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return InternalError("cannot write metrics to " + path);
  out << MetricsRegistry::Global().Snapshot().ToJson();
  out.flush();
  if (!out) return InternalError("short write to " + path);
  return OkStatus();
}

}  // namespace cem::obs
