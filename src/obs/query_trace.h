#ifndef CEM_OBS_QUERY_TRACE_H_
#define CEM_OBS_QUERY_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace cem::obs {

/// Process-unique, monotonically increasing query id (first call = 1).
/// One relaxed fetch_add; ids are unique across threads by construction.
uint64_t NextQueryId();

/// Per-request trace context of one serve::MatchService::Lookup — the
/// request-level sibling of a TraceEvent. The lookup threads it through
/// its pipeline (signature → sharded LSH probe → candidate ranking →
/// cover read), stamping each stage boundary as a cumulative offset from
/// the query's start; offsets are read from one steady clock in stage
/// order, so they are monotone non-decreasing by construction:
///
///   signature_us <= probe_us <= rank_us <= cover_us <= total_us
///
/// The trace rides on the QueryResult (so callers can ask "why was MY
/// query slow?") and feeds the service's SlowQueryLog.
struct QueryTrace {
  /// NextQueryId() of this lookup.
  uint64_t query_id = 0;
  /// The queried reference and the epoch that answered it.
  uint64_t ref = 0;
  uint64_t epoch = 0;
  /// Whether the reference was live, and whether the lookup failed
  /// validation (an error trace carries total_us only).
  bool live = false;
  bool error = false;
  /// Query start, nanoseconds on the process trace epoch (TraceNowNs).
  uint64_t start_ns = 0;
  /// Cumulative stage-end offsets since start, microseconds.
  double signature_us = 0.0;  ///< MinHash signature obtained.
  double probe_us = 0.0;      ///< Sharded LSH probe done.
  double rank_us = 0.0;       ///< Candidates scored, ranked and capped.
  double cover_us = 0.0;      ///< Match flags + cluster read done.
  double total_us = 0.0;      ///< Lookup returned (= the latency sample).
  /// Stage work counts.
  uint64_t shards_probed = 0;        ///< LSH shards the probe consulted.
  uint64_t candidates_probed = 0;    ///< Raw LSH candidates (pre-cap).
  uint64_t candidates_returned = 0;  ///< After ranking and the cap.
  uint64_t cluster_size = 0;         ///< Members of the answered cluster.

  /// Appends this trace as one JSON object (numbers and booleans only —
  /// shares the obs/json.h conventions with the other exporters).
  void AppendJson(std::string& out) const;
  std::string ToJson() const;
};

/// Bounded in-memory log of the worst queries over a latency threshold —
/// the "which queries were slow and why" answer a running server gives
/// without logging every request. Offer() is cheap for the fast path
/// (one comparison; under-threshold traces never take the mutex) and
/// keeps the N worst over-threshold traces seen so far (a min-heap on
/// total_us, so the cheapest entry is evicted first). Thread-safe.
class SlowQueryLog {
 public:
  explicit SlowQueryLog(size_t capacity = 32, double threshold_us = 1000.0);

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  /// Considers one finished trace: counted and retained when
  /// trace.total_us >= threshold_us (and among the worst `capacity`).
  void Offer(const QueryTrace& trace);

  /// Retained traces, worst (highest total_us) first.
  std::vector<QueryTrace> WorstFirst() const;

  /// Queries ever offered at or over the threshold (retained or not).
  uint64_t slow_count() const {
    return slow_count_.load(std::memory_order_relaxed);
  }

  size_t capacity() const { return capacity_; }
  double threshold_us() const { return threshold_us_; }

  /// WorstFirst() as one JSON array (the /slowlog.json and
  /// `dedup_tool --slow-query-log` payload).
  std::string ToJson() const;

  /// Drops retained traces and zeroes the slow counter (test isolation).
  void Clear();

 private:
  const size_t capacity_;
  const double threshold_us_;
  std::atomic<uint64_t> slow_count_{0};
  mutable std::mutex mu_;
  /// Min-heap on total_us (entries_.front() = cheapest retained).
  std::vector<QueryTrace> entries_;
};

}  // namespace cem::obs

#endif  // CEM_OBS_QUERY_TRACE_H_
