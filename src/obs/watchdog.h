#ifndef CEM_OBS_WATCHDOG_H_
#define CEM_OBS_WATCHDOG_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

namespace cem::obs {

/// The ingest-liveness monitor of a serving deployment: ingest has
/// stalled when the published epoch stops advancing WHILE work is known
/// to be pending — epoch frozen with an empty queue is idle, not stalled.
/// A stall longer than `deadline` flips the stalled flag, bumps the
/// `serve_ingest_stall_events` counter and sets the
/// `serve_ingest_stalled` gauge to 1 (back to 0 on recovery);
/// serve::StatsServer surfaces the flag on /healthz.
///
/// Two modes share one decision procedure (Observe):
///  * Start() spawns a monitor thread polling the epoch / queue-depth
///    providers every `poll` (the production mode);
///  * calling Observe() directly with explicit observations and
///    timestamps drives the same logic deterministically (tests).
class IngestWatchdog {
 public:
  struct Options {
    /// How long the epoch may sit still against a non-empty queue.
    std::chrono::milliseconds deadline{2000};
    /// Monitor-thread sampling interval.
    std::chrono::milliseconds poll{50};
  };

  using Sample = std::function<uint64_t()>;

  /// Default options (the defaulted overload exists because a nested
  /// class's member initializers are unusable as a default argument
  /// inside the enclosing class).
  IngestWatchdog();
  explicit IngestWatchdog(const Options& options);
  ~IngestWatchdog();

  IngestWatchdog(const IngestWatchdog&) = delete;
  IngestWatchdog& operator=(const IngestWatchdog&) = delete;

  /// Spawns the monitor thread. `epoch` and `queue_depth` are called from
  /// that thread every poll interval; both must be safe to call
  /// concurrently with the system they observe (lock-free reads — e.g.
  /// StreamingMatcher::drains_completed() and pending_hint()).
  void Start(Sample epoch, Sample queue_depth);

  /// Joins the monitor thread (idempotent; the destructor calls it).
  void Stop();

  /// Feeds one observation at `now` into the stall decision; returns the
  /// resulting stalled state. The monitor thread is the only caller in
  /// production — tests call it directly with a fake clock.
  bool Observe(uint64_t epoch, uint64_t queue_depth,
               std::chrono::steady_clock::time_point now);

  bool stalled() const { return stalled_.load(std::memory_order_acquire); }

  /// Distinct stall episodes flagged so far.
  uint64_t stall_events() const {
    return stall_events_.load(std::memory_order_relaxed);
  }

  const Options& options() const { return options_; }

 private:
  void Loop();

  const Options options_;
  Sample epoch_fn_;
  Sample depth_fn_;
  std::atomic<bool> stalled_{false};
  std::atomic<uint64_t> stall_events_{0};

  // Observe() state — only the monitor thread (or the test driving
  // Observe directly) touches it.
  bool have_baseline_ = false;
  uint64_t last_epoch_ = 0;
  std::chrono::steady_clock::time_point last_progress_{};

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  std::thread thread_;
};

}  // namespace cem::obs

#endif  // CEM_OBS_WATCHDOG_H_
