#ifndef CEM_OBS_TRACE_H_
#define CEM_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"
#include "util/timer.h"

namespace cem::obs {

/// One completed span: times are nanoseconds on the process trace epoch
/// (steady clock, first use = 0). `name` must be a string literal — spans
/// record the pointer, never a copy.
struct TraceEvent {
  const char* name;
  uint64_t start_ns;
  uint64_t duration_ns;
  uint32_t tid;
};

/// Nanoseconds since the process trace epoch.
uint64_t TraceNowNs();

/// Process-wide scoped-span recorder. Off by default; recording starts when
/// the CEM_TRACE environment variable is set to anything but "" or "0", or
/// when a driver calls SetEnabled(true) (dedup_tool --trace-json does).
/// While disabled, a CEM_TRACE span costs one relaxed atomic load plus two
/// clock reads; while enabled, finished spans append to per-thread buffers
/// (one uncontended mutex each) and export as a Chrome trace_event JSON
/// array (chrome://tracing, Perfetto) for flame-chart inspection.
class TraceRecorder {
 public:
  static TraceRecorder& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// True when an environment value requests tracing ("" and "0" mean off).
  /// Split out for unit tests; Global() applies it to CEM_TRACE once.
  static bool ParseEnabledValue(const char* value);

  void Record(const TraceEvent& event);

  /// Completed spans so far: spans flushed from exited threads first,
  /// then the live threads' buffers in per-thread append order.
  std::vector<TraceEvent> Events() const;

  /// Writes every recorded span as a Chrome trace_event JSON array of
  /// complete ("ph": "X") events, timestamps in microseconds.
  Status WriteJson(const std::string& path) const;

  /// Drops recorded spans (buffers stay registered).
  void Clear();

 private:
  TraceRecorder() = default;

  struct ThreadLog {
    std::mutex mu;
    std::vector<TraceEvent> events;
  };
  ThreadLog& LocalLog();

  /// Thread-exit flush: moves the log's spans into `retired_` and drops
  /// the registration, so short-lived worker threads neither lose their
  /// spans nor leave a dead per-thread buffer behind in `logs_`.
  void RetireLog(const std::shared_ptr<ThreadLog>& log);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  // Guards logs_ and retired_.
  std::vector<std::shared_ptr<ThreadLog>> logs_;
  /// Spans flushed from threads that have exited.
  std::vector<TraceEvent> retired_;
};

/// RAII span: measures construction-to-destruction with a ScopedTimer and,
/// on exit, records a TraceEvent (when the recorder is enabled) and/or a
/// sample into `latency_us` (when given — microseconds, always on, feeding
/// the registry's `hist_*` percentiles even with tracing off).
class TraceSpan {
 public:
  /// `name` must be a string literal (or otherwise outlive the recorder).
  explicit TraceSpan(const char* name, Histogram* latency_us = nullptr)
      : name_(name),
        latency_us_(latency_us),
        traced_(TraceRecorder::Global().enabled()),
        start_ns_(TraceNowNs()) {}

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  static void Finish(void* self, double elapsed_ms);

  const char* name_;
  Histogram* latency_us_;
  bool traced_;
  uint64_t start_ns_;
  ScopedTimer timer_{&TraceSpan::Finish, this};
};

}  // namespace cem::obs

/// Scoped stage span: `CEM_TRACE("blocking/minhash");` traces the enclosing
/// scope under that name. CEM_TRACE_TIMED also feeds a registry histogram,
/// so the stage's latency distribution is exported even when tracing is off.
#define CEM_TRACE_CONCAT_INNER_(a, b) a##b
#define CEM_TRACE_CONCAT_(a, b) CEM_TRACE_CONCAT_INNER_(a, b)
#define CEM_TRACE(name) \
  ::cem::obs::TraceSpan CEM_TRACE_CONCAT_(cem_trace_span_, __COUNTER__)(name)
#define CEM_TRACE_TIMED(name, histogram_ptr)                               \
  ::cem::obs::TraceSpan CEM_TRACE_CONCAT_(cem_trace_span_, __COUNTER__)(   \
      name, histogram_ptr)

#endif  // CEM_OBS_TRACE_H_
