#ifndef CEM_OBS_JSON_H_
#define CEM_OBS_JSON_H_

#include <string>
#include <string_view>

namespace cem::obs {

// The one JSON string escaper every obs exporter shares (metrics
// snapshots, trace events, query traces). Exporters used to splice names
// raw into their output, which produced unparseable documents the moment
// a metric or span name carried a quote, backslash or control character.

/// Appends `s` to `out` with JSON string escaping applied: `"` and `\`
/// get a backslash, the two-character escapes (\n, \t, \r, \b, \f) are
/// used where they exist, and every other control character (< 0x20)
/// becomes a \u00XX sequence. No surrounding quotes are added.
void AppendJsonEscaped(std::string& out, std::string_view s);

/// AppendJsonEscaped into a fresh string.
std::string JsonEscaped(std::string_view s);

/// Appends a JSON-legal rendering of `value` under printf format `fmt`
/// (one double conversion): NaN/infinity render as 0 — JSON has no
/// non-finite literals, and a poisoned gauge must not take the whole
/// export document down with it.
void AppendJsonNumber(std::string& out, double value,
                      const char* fmt = "%.6g");

}  // namespace cem::obs

#endif  // CEM_OBS_JSON_H_
