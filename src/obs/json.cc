#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace cem::obs {

void AppendJsonEscaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string JsonEscaped(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  AppendJsonEscaped(out, s);
  return out;
}

void AppendJsonNumber(std::string& out, double value, const char* fmt) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, std::isfinite(value) ? value : 0.0);
  out += buf;
}

}  // namespace cem::obs
