#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

namespace cem::obs {
namespace {

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

uint32_t TraceThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

uint64_t TraceNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - TraceEpoch())
          .count());
}

bool TraceRecorder::ParseEnabledValue(const char* value) {
  return value != nullptr && value[0] != '\0' && std::strcmp(value, "0") != 0;
}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = [] {
    auto* r = new TraceRecorder();
    r->SetEnabled(ParseEnabledValue(std::getenv("CEM_TRACE")));
    return r;
  }();
  return *recorder;
}

TraceRecorder::ThreadLog& TraceRecorder::LocalLog() {
  thread_local std::shared_ptr<ThreadLog> log = [this] {
    auto created = std::make_shared<ThreadLog>();
    std::lock_guard<std::mutex> lock(mu_);
    logs_.push_back(created);
    return created;
  }();
  return *log;
}

void TraceRecorder::Record(const TraceEvent& event) {
  ThreadLog& log = LocalLog();
  std::lock_guard<std::mutex> lock(log.mu);
  log.events.push_back(event);
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& log : logs_) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    out.insert(out.end(), log->events.begin(), log->events.end());
  }
  return out;
}

Status TraceRecorder::WriteJson(const std::string& path) const {
  const std::vector<TraceEvent> events = Events();
  std::ofstream out(path, std::ios::trunc);
  if (!out) return InternalError("cannot write trace to " + path);
  // Chrome trace_event "JSON array format": a bare array of complete
  // events; ts/dur are microseconds (fractions allowed).
  out << "[";
  char buf[192];
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    std::snprintf(buf, sizeof(buf),
                  "%s\n{\"name\": \"%s\", \"cat\": \"cem\", \"ph\": \"X\", "
                  "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %u}",
                  i == 0 ? "" : ",", e.name,
                  static_cast<double>(e.start_ns) / 1e3,
                  static_cast<double>(e.duration_ns) / 1e3, e.tid);
    out << buf;
  }
  out << "\n]\n";
  out.flush();
  if (!out) return InternalError("short write to " + path);
  return OkStatus();
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& log : logs_) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    log->events.clear();
  }
}

void TraceSpan::Finish(void* self, double elapsed_ms) {
  auto* span = static_cast<TraceSpan*>(self);
  if (span->latency_us_ != nullptr) {
    span->latency_us_->Record(elapsed_ms * 1e3);
  }
  if (span->traced_) {
    TraceRecorder::Global().Record(
        {span->name_, span->start_ns_,
         static_cast<uint64_t>(elapsed_ms * 1e6), TraceThreadId()});
  }
}

}  // namespace cem::obs
