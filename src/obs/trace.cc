#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <utility>

#include "obs/json.h"

namespace cem::obs {
namespace {

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

uint32_t TraceThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

uint64_t TraceNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - TraceEpoch())
          .count());
}

bool TraceRecorder::ParseEnabledValue(const char* value) {
  return value != nullptr && value[0] != '\0' && std::strcmp(value, "0") != 0;
}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = [] {
    auto* r = new TraceRecorder();
    r->SetEnabled(ParseEnabledValue(std::getenv("CEM_TRACE")));
    return r;
  }();
  return *recorder;
}

TraceRecorder::ThreadLog& TraceRecorder::LocalLog() {
  // The owner's destructor runs at thread exit and flushes the buffer
  // into the recorder's retired list — a short-lived worker thread's
  // spans survive the thread, and logs_ does not grow by one dead entry
  // per thread the process ever spawned. (The recorder itself is the
  // leaked Global() singleton, so it outlives every thread.)
  struct Owner {
    TraceRecorder* recorder;
    std::shared_ptr<ThreadLog> log;
    ~Owner() { recorder->RetireLog(log); }
  };
  thread_local Owner owner = [this] {
    auto created = std::make_shared<ThreadLog>();
    std::lock_guard<std::mutex> lock(mu_);
    logs_.push_back(created);
    return Owner{this, std::move(created)};
  }();
  return *owner.log;
}

void TraceRecorder::RetireLog(const std::shared_ptr<ThreadLog>& log) {
  std::lock_guard<std::mutex> lock(mu_);
  {
    std::lock_guard<std::mutex> log_lock(log->mu);
    retired_.insert(retired_.end(), log->events.begin(), log->events.end());
    log->events.clear();
  }
  std::erase(logs_, log);
}

void TraceRecorder::Record(const TraceEvent& event) {
  ThreadLog& log = LocalLog();
  std::lock_guard<std::mutex> lock(log.mu);
  log.events.push_back(event);
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out = retired_;
  for (const auto& log : logs_) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    out.insert(out.end(), log->events.begin(), log->events.end());
  }
  return out;
}

Status TraceRecorder::WriteJson(const std::string& path) const {
  const std::vector<TraceEvent> events = Events();
  std::ofstream out(path, std::ios::trunc);
  if (!out) return InternalError("cannot write trace to " + path);
  // Chrome trace_event "JSON array format": a bare array of complete
  // events; ts/dur are microseconds (fractions allowed).
  out << "[";
  char buf[160];
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    // Span names ride through the shared escaper (obs/json.h), like
    // metric names in the JSON metrics export.
    out << (i == 0 ? "" : ",") << "\n{\"name\": \"" << JsonEscaped(e.name)
        << "\"";
    std::snprintf(buf, sizeof(buf),
                  ", \"cat\": \"cem\", \"ph\": \"X\", \"ts\": %.3f, "
                  "\"dur\": %.3f, \"pid\": 1, \"tid\": %u}",
                  static_cast<double>(e.start_ns) / 1e3,
                  static_cast<double>(e.duration_ns) / 1e3, e.tid);
    out << buf;
  }
  out << "\n]\n";
  out.flush();
  if (!out) return InternalError("short write to " + path);
  return OkStatus();
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  retired_.clear();
  for (const auto& log : logs_) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    log->events.clear();
  }
}

void TraceSpan::Finish(void* self, double elapsed_ms) {
  auto* span = static_cast<TraceSpan*>(self);
  if (span->latency_us_ != nullptr) {
    span->latency_us_->Record(elapsed_ms * 1e3);
  }
  if (span->traced_) {
    TraceRecorder::Global().Record(
        {span->name_, span->start_ns_,
         static_cast<uint64_t>(elapsed_ms * 1e6), TraceThreadId()});
  }
}

}  // namespace cem::obs
