#include "rules/rules_matcher.h"

#include <deque>
#include <unordered_set>

#include "util/logging.h"

namespace cem::rules {

RulesMatcher::RulesMatcher(const data::Dataset& dataset, RulesConfig config)
    : dataset_(&dataset),
      config_(config),
      graph_(mln::PairGraph::Build(dataset)) {}

core::MatchSet RulesMatcher::Match(const std::vector<data::EntityId>& entities,
                                   const core::MatchSet& positive,
                                   const core::MatchSet& negative) const {
  const std::unordered_set<data::EntityId> members(entities.begin(),
                                                   entities.end());
  auto in_members = [&](data::EntityId e) { return members.count(e) > 0; };

  // Collect in-neighborhood candidate pairs.
  std::vector<data::PairId> vars;
  std::unordered_set<uint64_t> var_keys;
  for (data::EntityId e : entities) {
    for (data::PairId id : dataset_->PairsOfEntity(e)) {
      const data::EntityPair p = graph_.node(id).pair;
      if (p.a != e || !in_members(p.b)) continue;
      if (var_keys.insert(data::PairKey(p)).second) vars.push_back(id);
    }
  }

  // Matched set starts from the in-C positive evidence. Note: evidence
  // pairs that are not candidate pairs still count for closure (they are in
  // the output) but provide no rule support (they are not linked).
  core::MatchSet matched;
  for (uint64_t key : positive.keys()) {
    const data::EntityPair p = data::PairFromKey(key);
    if (in_members(p.a) && in_members(p.b) && !negative.Contains(p)) {
      matched.Insert(p);
    }
  }

  // Monotone fixpoint: re-examine pairs until no rule fires. The deque
  // seeds with all unmatched variables; a firing re-activates the
  // link-partners of the newly matched pair.
  std::deque<data::PairId> active(vars.begin(), vars.end());
  std::unordered_set<data::PairId> queued(vars.begin(), vars.end());

  auto support_count = [&](const mln::PairGraph::Node& node) {
    int support = 0;
    for (data::EntityId c : node.shared_coauthors) {
      if (in_members(c)) ++support;
    }
    for (data::PairId q : node.links) {
      const data::EntityPair qp = graph_.node(q).pair;
      if (in_members(qp.a) && in_members(qp.b) && matched.Contains(qp)) {
        ++support;
      }
    }
    return support;
  };

  while (!active.empty()) {
    const data::PairId id = active.front();
    active.pop_front();
    queued.erase(id);
    const mln::PairGraph::Node& node = graph_.node(id);
    if (matched.Contains(node.pair) || negative.Contains(node.pair)) continue;
    const int required = config_.required_support[static_cast<int>(node.level)];
    if (required < 0) continue;
    if (required > 0 && support_count(node) < required) continue;
    matched.Insert(node.pair);
    // Wake the link partners (they may now have enough support).
    for (data::PairId q : node.links) {
      if (queued.insert(q).second) active.push_back(q);
    }
  }

  if (config_.transitive_closure) {
    core::MatchSet closed = core::TransitiveClosure(matched);
    // Negative evidence survives closure: monotonicity (iii) demands that
    // more negative evidence never yields more matches.
    for (uint64_t key : negative.keys()) {
      closed.Erase(data::PairFromKey(key));
    }
    return closed;
  }
  return matched;
}

}  // namespace cem::rules
