#ifndef CEM_RULES_RULES_MATCHER_H_
#define CEM_RULES_RULES_MATCHER_H_

#include <vector>

#include "core/matcher.h"
#include "mln/grounding.h"

namespace cem::rules {

/// Configuration of the RULES program (Appendix B). The default thresholds
/// encode the paper's three rules:
///   1. similar(e1,e2,3)                                  => equals(e1,e2)
///   2. similar(e1,e2,2) ∧ one matching coauthor pair     => equals(e1,e2)
///   3. similar(e1,e2,1) ∧ two distinct matching
///      coauthor pairs                                    => equals(e1,e2)
/// "Matching coauthor pair" counts both reflexive support (a shared
/// coauthor c, since equals(c,c) holds) and linked pairs already matched.
struct RulesConfig {
  /// required_support[s]: matching coauthor pairs needed at similarity
  /// level s (index 0 unused; a negative value disables matches at that
  /// level entirely).
  int required_support[4] = {0, 2, 1, 0};

  /// Apply transitive closure inside each run. Default OFF: closure breaks
  /// idempotence/monotonicity (Appendix A: transitivity is the problematic
  /// constraint), which costs SMP its soundness guarantee. The paper's
  /// prescription — closure "at the end of each iteration of message
  /// passing" — is realised by applying core::TransitiveClosure to the
  /// final match set as a framework post-pass, which is what the Figure 4
  /// benches do.
  bool transitive_closure = false;
};

/// The declarative (Dedupalog-style [2]) collective matcher — a Type-I
/// black box. Evaluation is a monotone fixpoint: rules fire on the current
/// match set until nothing changes, then (optionally) a transitive closure
/// is applied. This realises the positive, transitivity-free Dedupalog*
/// fragment, which the paper proves monotone (Proposition 5).
///
/// RULES has linear-ish complexity and, unlike MLN, can feasibly run on the
/// full dataset ("FULL" in Figure 4) — which is exactly why the paper uses
/// it to measure SMP's soundness/completeness exactly.
class RulesMatcher : public core::Matcher {
 public:
  /// The dataset must outlive the matcher and have candidate pairs built.
  explicit RulesMatcher(const data::Dataset& dataset, RulesConfig config = {});

  core::MatchSet Match(const std::vector<data::EntityId>& entities,
                       const core::MatchSet& positive,
                       const core::MatchSet& negative) const override;
  using core::Matcher::Match;

  const data::Dataset& dataset() const override { return *dataset_; }

  const RulesConfig& config() const { return config_; }

 private:
  const data::Dataset* dataset_;
  RulesConfig config_;
  mln::PairGraph graph_;  // Reused as the support-structure index.
};

}  // namespace cem::rules

#endif  // CEM_RULES_RULES_MATCHER_H_
