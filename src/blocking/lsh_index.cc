#include "blocking/lsh_index.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace cem::blocking {
namespace {

/// SplitMix64 finalizer (same mixer the MinHasher uses).
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

LshIndex::LshIndex(const LshParams& params, uint32_t num_hashes,
                   uint32_t num_shards)
    : params_(params),
      num_hashes_(num_hashes),
      shards_(std::max(num_shards, 1u)) {
  CEM_CHECK(params.bands > 0 && params.rows > 0);
  CEM_CHECK(params.bands * params.rows <= num_hashes)
      << "bands*rows must fit in the signature length";
}

std::vector<uint64_t> LshIndex::BandKeys(
    const std::vector<uint64_t>& signature) const {
  std::vector<uint64_t> keys;
  keys.reserve(params_.bands);
  for (uint32_t band = 0; band < params_.bands; ++band) {
    uint64_t key = Mix(band + 1);
    for (uint32_t row = 0; row < params_.rows; ++row) {
      key = Mix(key ^ signature[band * params_.rows + row]);
    }
    keys.push_back(key);
  }
  return keys;
}

void LshIndex::AddDocument(uint32_t doc_id,
                           const std::vector<uint64_t>& signature) {
  CEM_CHECK(signature.size() == num_hashes_)
      << "signature length mismatch with the index configuration";
  if (doc_id >= doc_band_keys_.size()) doc_band_keys_.resize(doc_id + 1);
  CEM_CHECK(doc_band_keys_[doc_id].empty()) << "document added twice";
  doc_band_keys_[doc_id] = BandKeys(signature);
  for (uint64_t key : doc_band_keys_[doc_id]) {
    shards_[ShardOf(key)].buckets[key].push_back(doc_id);
  }
}

void LshIndex::AddDocuments(
    const std::vector<std::vector<uint64_t>>& signatures,
    const ExecutionContext& ctx) {
  CEM_CHECK(doc_band_keys_.empty()) << "AddDocuments on a non-empty index";
  doc_band_keys_.resize(signatures.size());
  ParallelFor(ctx.pool(), signatures.size(), [&](size_t doc) {
    CEM_CHECK(signatures[doc].size() == num_hashes_)
        << "signature length mismatch with the index configuration";
    doc_band_keys_[doc] = BandKeys(signatures[doc]);
  });
  // Partition the (key, doc) stream by owning shard — one cheap linear
  // append pass, in doc order, so each shard's list replays serial
  // AddDocument order exactly.
  struct Entry {
    uint64_t key;
    uint32_t doc;
  };
  std::vector<std::vector<Entry>> per_shard(shards_.size());
  for (auto& list : per_shard) {
    list.reserve(doc_band_keys_.size() * params_.bands / shards_.size() + 1);
  }
  for (uint32_t doc = 0; doc < doc_band_keys_.size(); ++doc) {
    for (uint64_t key : doc_band_keys_[doc]) {
      per_shard[ShardOf(key)].push_back({key, doc});
    }
  }
  // Parallel insertion: each worker owns whole shards, so the (expensive)
  // hash-map building needs no synchronisation.
  ParallelFor(ctx.pool(), shards_.size(), [&](size_t s) {
    Shard& shard = shards_[s];
    for (const Entry& entry : per_shard[s]) {
      shard.buckets[entry.key].push_back(entry.doc);
    }
  });
}

void LshIndex::RestoreSnapshot(
    std::vector<BucketMap> buckets,
    const std::vector<std::vector<uint64_t>>& signatures,
    const ExecutionContext& ctx) {
  CEM_CHECK(doc_band_keys_.empty()) << "RestoreSnapshot on a non-empty index";
  CEM_CHECK(buckets.size() == shards_.size())
      << "restored bucket maps must match the shard count";
  doc_band_keys_.resize(signatures.size());
  ParallelFor(ctx.pool(), signatures.size(), [&](size_t doc) {
    CEM_CHECK(signatures[doc].size() == num_hashes_)
        << "signature length mismatch with the index configuration";
    doc_band_keys_[doc] = BandKeys(signatures[doc]);
  });
  for (size_t s = 0; s < shards_.size(); ++s) {
    shards_[s].buckets = std::move(buckets[s]);
  }
}

std::vector<uint32_t> LshIndex::Candidates(uint32_t doc_id) const {
  CEM_CHECK(doc_id < doc_band_keys_.size());
  std::vector<uint32_t> out;
  for (uint64_t key : doc_band_keys_[doc_id]) {
    const Shard& shard = shards_[ShardOf(key)];
    const auto it = shard.buckets.find(key);
    CEM_CHECK(it != shard.buckets.end());
    for (uint32_t other : it->second) {
      if (other != doc_id) out.push_back(other);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

size_t LshIndex::num_buckets() const {
  size_t total = 0;
  for (const Shard& shard : shards_) total += shard.buckets.size();
  return total;
}

size_t LshIndex::TotalBucketPairs() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    for (const auto& [key, members] : shard.buckets) {
      total += members.size() * (members.size() - 1) / 2;
    }
  }
  return total;
}

double LshIndex::CollisionProbability(double jaccard, uint32_t bands,
                                      uint32_t rows) {
  const double band_match = std::pow(jaccard, static_cast<double>(rows));
  return 1.0 - std::pow(1.0 - band_match, static_cast<double>(bands));
}

}  // namespace cem::blocking
