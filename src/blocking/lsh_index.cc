#include "blocking/lsh_index.h"

#include <algorithm>
#include <cmath>

#include "util/hash.h"
#include "util/logging.h"

namespace cem::blocking {

LshIndex::LshIndex(const LshParams& params, uint32_t num_hashes,
                   uint32_t num_shards)
    : params_(params),
      num_hashes_(num_hashes),
      shards_(std::max(num_shards, 1u)) {
  CEM_CHECK(params.bands > 0 && params.rows > 0);
  CEM_CHECK(params.bands * params.rows <= num_hashes)
      << "bands*rows must fit in the signature length";
  band_seeds_.reserve(params_.bands);
  for (uint32_t band = 0; band < params_.bands; ++band) {
    band_seeds_.push_back(Mix64(band + 1));
  }
}

void LshIndex::BandKeysInto(const uint64_t* signature, uint64_t* out) const {
  // Pointer walk over the band slices: the signature components of band b
  // are the `rows` entries after b*rows, consumed in order — no per-row
  // index arithmetic, and the per-band seed comes from the hoisted table.
  // The resulting key values are pinned by the snapshot format (saved
  // bucket maps key on them); see BandKeys() in the header.
  const uint64_t* component = signature;
  for (uint32_t band = 0; band < params_.bands; ++band) {
    uint64_t key = band_seeds_[band];
    for (uint32_t row = 0; row < params_.rows; ++row) {
      key = Mix64(key ^ *component++);
    }
    out[band] = key;
  }
}

std::vector<uint64_t> LshIndex::BandKeys(
    const std::vector<uint64_t>& signature) const {
  CEM_CHECK(signature.size() >= params_.bands * params_.rows);
  std::vector<uint64_t> keys(params_.bands);
  BandKeysInto(signature.data(), keys.data());
  return keys;
}

void LshIndex::ReserveDoc(uint32_t doc_id) {
  if (doc_id >= doc_added_.size()) {
    doc_added_.resize(doc_id + 1, 0);
    doc_band_keys_.resize(static_cast<size_t>(doc_id + 1) * params_.bands, 0);
  }
  CEM_CHECK(doc_added_[doc_id] == 0) << "document added twice";
  doc_added_[doc_id] = 1;
}

void LshIndex::AddDocument(uint32_t doc_id,
                           const std::vector<uint64_t>& signature) {
  CEM_CHECK(signature.size() == num_hashes_)
      << "signature length mismatch with the index configuration";
  ReserveDoc(doc_id);
  uint64_t* keys = doc_band_keys_.data() + doc_id * params_.bands;
  BandKeysInto(signature.data(), keys);
  for (uint32_t band = 0; band < params_.bands; ++band) {
    const uint64_t key = keys[band];
    shards_[ShardOf(key)].buckets[key].push_back(doc_id);
  }
}

namespace {

/// One (bucket key, doc) insertion, grouped per owning shard.
struct ShardEntry {
  uint64_t key;
  uint32_t doc;
};

}  // namespace

void LshIndex::AddDocuments(
    const std::vector<std::vector<uint64_t>>& signatures,
    const ExecutionContext& ctx) {
  CEM_CHECK(doc_added_.empty()) << "AddDocuments on a non-empty index";
  const size_t n = signatures.size();
  doc_added_.assign(n, 1);
  doc_band_keys_.resize(n * params_.bands);
  ParallelFor(ctx.pool(), n, [&](size_t doc) {
    CEM_CHECK(signatures[doc].size() == num_hashes_)
        << "signature length mismatch with the index configuration";
    BandKeysInto(signatures[doc].data(),
                 doc_band_keys_.data() + doc * params_.bands);
  });
  InsertBandKeys(ctx);
}

void LshIndex::AddDocuments(const SignatureMatrix& signatures,
                            const ExecutionContext& ctx) {
  CEM_CHECK(doc_added_.empty()) << "AddDocuments on a non-empty index";
  CEM_CHECK(signatures.num_hashes() == num_hashes_ ||
            signatures.num_docs() == 0)
      << "signature length mismatch with the index configuration";
  const size_t n = signatures.num_docs();
  doc_added_.assign(n, 1);
  doc_band_keys_.resize(n * params_.bands);
  ParallelFor(ctx.pool(), n, [&](size_t doc) {
    BandKeysInto(signatures.row(doc),
                 doc_band_keys_.data() + doc * params_.bands);
  });
  InsertBandKeys(ctx);
}

void LshIndex::InsertBandKeys(const ExecutionContext& ctx) {
  // Partition the (key, doc) stream by owning shard — one cheap linear
  // append pass, in doc order, so each shard's list replays serial
  // AddDocument order exactly.
  const size_t n = doc_added_.size();
  std::vector<std::vector<ShardEntry>> per_shard(shards_.size());
  for (auto& list : per_shard) {
    list.reserve(n * params_.bands / shards_.size() + 1);
  }
  for (uint32_t doc = 0; doc < n; ++doc) {
    for (uint64_t key : doc_keys(doc)) {
      per_shard[ShardOf(key)].push_back({key, doc});
    }
  }
  // Parallel insertion: each worker owns whole shards, so the (expensive)
  // hash-map building needs no synchronisation.
  ParallelFor(ctx.pool(), shards_.size(), [&](size_t s) {
    Shard& shard = shards_[s];
    for (const ShardEntry& entry : per_shard[s]) {
      shard.buckets[entry.key].push_back(entry.doc);
    }
  });
}

void LshIndex::RestoreSnapshot(
    std::vector<BucketMap> buckets,
    const std::vector<std::vector<uint64_t>>& signatures,
    const ExecutionContext& ctx) {
  CEM_CHECK(doc_added_.empty()) << "RestoreSnapshot on a non-empty index";
  CEM_CHECK(buckets.size() == shards_.size())
      << "restored bucket maps must match the shard count";
  const size_t n = signatures.size();
  doc_added_.assign(n, 1);
  doc_band_keys_.resize(n * params_.bands);
  ParallelFor(ctx.pool(), n, [&](size_t doc) {
    CEM_CHECK(signatures[doc].size() == num_hashes_)
        << "signature length mismatch with the index configuration";
    BandKeysInto(signatures[doc].data(),
                 doc_band_keys_.data() + doc * params_.bands);
  });
  for (size_t s = 0; s < shards_.size(); ++s) {
    shards_[s].buckets = std::move(buckets[s]);
  }
}

std::vector<uint32_t> LshIndex::Candidates(uint32_t doc_id) const {
  CEM_CHECK(doc_id < doc_added_.size());
  std::vector<uint32_t> out;
  if (doc_added_[doc_id] == 0) return out;  // Id gap: never added.
  for (uint64_t key : doc_keys(doc_id)) {
    const Shard& shard = shards_[ShardOf(key)];
    const auto it = shard.buckets.find(key);
    CEM_CHECK(it != shard.buckets.end());
    for (uint32_t other : it->second) {
      if (other != doc_id) out.push_back(other);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<uint32_t> LshIndex::CandidatesOfSignature(
    const std::vector<uint64_t>& signature) const {
  CEM_CHECK(signature.size() >= num_hashes_)
      << "signature too short for this index";
  std::vector<uint64_t> keys(params_.bands);
  BandKeysInto(signature.data(), keys.data());
  std::vector<uint32_t> out;
  for (uint64_t key : keys) {
    const Shard& shard = shards_[ShardOf(key)];
    const auto it = shard.buckets.find(key);
    if (it == shard.buckets.end()) continue;
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

size_t LshIndex::num_buckets() const {
  size_t total = 0;
  for (const Shard& shard : shards_) total += shard.buckets.size();
  return total;
}

size_t LshIndex::TotalBucketPairs() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    for (const auto& [key, members] : shard.buckets) {
      total += members.size() * (members.size() - 1) / 2;
    }
  }
  return total;
}

double LshIndex::CollisionProbability(double jaccard, uint32_t bands,
                                      uint32_t rows) {
  const double band_match = std::pow(jaccard, static_cast<double>(rows));
  return 1.0 - std::pow(1.0 - band_match, static_cast<double>(bands));
}

}  // namespace cem::blocking
