// The single translation unit compiled with -mavx2 (see CMakeLists.txt).
// Nothing here may be called unless SimdLevelSupported(kAvx2) — the
// dispatcher in minhash_simd.cc checks cpuid first, so plain AVX2
// intrinsics (no target attributes) are safe.
//
// Every kernel emulates the exact scalar 64-bit arithmetic — low-64
// multiply from 32-bit cross products, unsigned min via sign-flipped
// signed compare — so results are bit-identical to the scalar path; the
// equivalence suite (tests/simd_equivalence_test.cc) pins it.

#include "blocking/minhash_simd.h"

#include "util/hash.h"
#include "util/logging.h"

#if CEM_SIMD_HAS_AVX2_KERNELS

#include <immintrin.h>

namespace cem::blocking::simd {
namespace {

/// Low 64 bits of a*b per lane: a_lo*b_lo + ((a_lo*b_hi + a_hi*b_lo)<<32).
inline __m256i MulLo64(__m256i a, __m256i b) {
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(a, b_hi),
                                         _mm256_mul_epu32(a_hi, b));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

/// SplitMix64 finalizer on four lanes — bit-identical to cem::Mix64.
inline __m256i Mix4(__m256i x) {
  x = _mm256_add_epi64(
      x, _mm256_set1_epi64x(static_cast<long long>(0x9e3779b97f4a7c15ULL)));
  x = MulLo64(
      _mm256_xor_si256(x, _mm256_srli_epi64(x, 30)),
      _mm256_set1_epi64x(static_cast<long long>(0xbf58476d1ce4e5b9ULL)));
  x = MulLo64(
      _mm256_xor_si256(x, _mm256_srli_epi64(x, 27)),
      _mm256_set1_epi64x(static_cast<long long>(0x94d049bb133111ebULL)));
  return _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
}

/// Unsigned 64-bit min per lane (AVX2 has only the signed compare).
inline __m256i MinU64(__m256i a, __m256i b) {
  const __m256i sign =
      _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
  const __m256i a_gt_b = _mm256_cmpgt_epi64(_mm256_xor_si256(a, sign),
                                            _mm256_xor_si256(b, sign));
  return _mm256_blendv_epi8(a, b, a_gt_b);
}

/// Shared kernel body; `get_hash(t)` abstracts the token-hash source
/// (flat array or TokenRef slice).
template <typename GetHash>
void MinHashSignatureAvx2Impl(size_t num_tokens, const uint64_t* salts,
                              size_t num_salts, uint64_t* out,
                              const GetHash& get_hash) {
  size_t i = 0;
  // Sixteen permutations (four registers) per pass: each token hash is
  // broadcast once and feeds four independent Mix4 dependency chains, so
  // the long multiply latency of one chain hides behind the others.
  for (; i + 16 <= num_salts; i += 16) {
    __m256i best0 = _mm256_set1_epi64x(-1);
    __m256i best1 = _mm256_set1_epi64x(-1);
    __m256i best2 = _mm256_set1_epi64x(-1);
    __m256i best3 = _mm256_set1_epi64x(-1);
    const __m256i salt0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(salts + i));
    const __m256i salt1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(salts + i + 4));
    const __m256i salt2 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(salts + i + 8));
    const __m256i salt3 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(salts + i + 12));
    for (size_t t = 0; t < num_tokens; ++t) {
      const __m256i base =
          _mm256_set1_epi64x(static_cast<long long>(get_hash(t)));
      best0 = MinU64(best0, Mix4(_mm256_xor_si256(base, salt0)));
      best1 = MinU64(best1, Mix4(_mm256_xor_si256(base, salt1)));
      best2 = MinU64(best2, Mix4(_mm256_xor_si256(base, salt2)));
      best3 = MinU64(best3, Mix4(_mm256_xor_si256(base, salt3)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), best0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 4), best1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 8), best2);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 12), best3);
  }
  // Remaining group of four.
  for (; i + 4 <= num_salts; i += 4) {
    __m256i best = _mm256_set1_epi64x(-1);
    const __m256i salt4 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(salts + i));
    for (size_t t = 0; t < num_tokens; ++t) {
      const __m256i base =
          _mm256_set1_epi64x(static_cast<long long>(get_hash(t)));
      best = MinU64(best, Mix4(_mm256_xor_si256(base, salt4)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), best);
  }
  // Salt-count tail (num_hashes not divisible by 4): scalar arithmetic,
  // identical formula.
  for (; i < num_salts; ++i) {
    uint64_t best = ~0ULL;
    for (size_t t = 0; t < num_tokens; ++t) {
      const uint64_t h = Mix64(get_hash(t) ^ salts[i]);
      if (h < best) best = h;
    }
    out[i] = best;
  }
}

}  // namespace

void MinHashSignatureAvx2(const uint64_t* token_hashes, size_t num_tokens,
                          const uint64_t* salts, size_t num_salts,
                          uint64_t* out) {
  MinHashSignatureAvx2Impl(num_tokens, salts, num_salts, out,
                           [&](size_t t) { return token_hashes[t]; });
}

void MinHashSignatureRefsAvx2(const text::TokenRef* tokens, size_t num_tokens,
                              const uint64_t* salts, size_t num_salts,
                              uint64_t* out) {
  MinHashSignatureAvx2Impl(num_tokens, salts, num_salts, out,
                           [&](size_t t) { return tokens[t].hash; });
}

size_t CountEqualAvx2(const uint64_t* a, const uint64_t* b, size_t n) {
  size_t agree = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i eq = _mm256_cmpeq_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    agree += static_cast<size_t>(__builtin_popcount(
        static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(eq)))));
  }
  for (; i < n; ++i) agree += a[i] == b[i];
  return agree;
}

}  // namespace cem::blocking::simd

#else  // !CEM_SIMD_HAS_AVX2_KERNELS

namespace cem::blocking::simd {

// Non-x86 builds: SimdLevelSupported(kAvx2) is false, so these stubs are
// unreachable; they exist to keep the link closed.
void MinHashSignatureAvx2(const uint64_t*, size_t, const uint64_t*, size_t,
                          uint64_t*) {
  CEM_CHECK(false) << "AVX2 kernels are not built on this architecture";
}

void MinHashSignatureRefsAvx2(const text::TokenRef*, size_t, const uint64_t*,
                              size_t, uint64_t*) {
  CEM_CHECK(false) << "AVX2 kernels are not built on this architecture";
}

size_t CountEqualAvx2(const uint64_t*, const uint64_t*, size_t) {
  CEM_CHECK(false) << "AVX2 kernels are not built on this architecture";
  return 0;
}

}  // namespace cem::blocking::simd

#endif  // CEM_SIMD_HAS_AVX2_KERNELS
