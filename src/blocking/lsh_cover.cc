#include "blocking/lsh_cover.h"

#include <vector>

#include "blocking/blocking_tokens.h"
#include "blocking/minhash_simd.h"
#include "core/cover_assembly.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "text/token_arena.h"
#include "util/logging.h"

namespace cem::blocking {

core::Cover BuildLshCover(const data::Dataset& dataset,
                          const LshCoverOptions& options) {
  CEM_CHECK(options.tight >= options.loose)
      << "tight threshold must be at least the loose threshold";
  const std::vector<data::EntityId>& refs = dataset.author_refs();
  const ExecutionContext& ctx =
      options.context != nullptr ? *options.context
                                 : ExecutionContext::Default();

  // Signatures + sharded banded index over author refs (dense doc ids =
  // position), all phases parallel on ctx. Each stage runs under a trace
  // span so `dedup_tool --trace-json` shows the build as a flame chart.
  // Tokens go straight into a flat arena corpus (hashed once at emit) and
  // signatures into one row-major matrix — the batched SIMD hot path.
  text::TokenCorpus corpus;
  {
    CEM_TRACE("blocking/tokenize");
    corpus = text::TokenCorpus::Build(
        refs.size(),
        [&](size_t i, text::TokenCorpus::DocBuilder& builder) {
          AppendAuthorBlockingTokens(dataset.entity(refs[i]), builder);
        },
        ctx);
  }
  const MinHasher hasher(options.minhash);
  SignatureMatrix signatures;
  {
    CEM_TRACE("blocking/minhash");
    signatures = ComputeSignatures(hasher, corpus, ctx);
  }
  LshIndex index(options.lsh, hasher.num_hashes(), ctx.num_shards());
  {
    CEM_TRACE("blocking/lsh_build");
    index.AddDocuments(signatures, ctx);
  }
  static obs::Counter& signatures_counter =
      obs::MetricsRegistry::Global().counter("blocking_minhash_signatures");
  signatures_counter.Add(refs.size());

  // Canopy-style assembly over LSH candidates: random seed order; banding
  // plays the loose filter, estimated Jaccard plays the tight rule. The
  // candidate expansions run in parallel batches; the seed loop replays
  // serially, so the cover matches the single-threaded algorithm exactly.
  const auto candidate_fn = [&](uint32_t doc, size_t* num_scored) {
    const std::vector<uint32_t> candidates = index.Candidates(doc);
    *num_scored = candidates.size();
    std::vector<core::AssemblyCandidate> out;
    for (uint32_t other : candidates) {
      const double estimate = MinHasher::EstimateJaccard(
          signatures.row(doc), signatures.row(other), hasher.num_hashes());
      if (estimate >= options.loose) out.push_back({other, estimate});
    }
    return out;
  };
  size_t pairs_considered = 0;
  core::Cover cover;
  {
    CEM_TRACE("blocking/assemble_canopies");
    cover = core::AssembleCanopies(refs, options.seed.value_or(ctx.seed()),
                                   options.tight, candidate_fn, ctx,
                                   &pairs_considered);
  }
  if (options.stats != nullptr) {
    options.stats->pairs_considered = pairs_considered;
  }
  // Serial point, deterministic totals: safe to export as gated counter_*.
  static obs::Counter& pairs_counter =
      obs::MetricsRegistry::Global().counter("blocking_lsh_pairs_considered");
  static obs::Counter& covers_counter =
      obs::MetricsRegistry::Global().counter("blocking_covers_built");
  pairs_counter.Add(pairs_considered);
  covers_counter.Add(1);

  if (options.ensure_pair_coverage) {
    core::PatchPairCoverage(dataset, cover, ctx);
  }
  if (options.expand_boundary) {
    core::ExpandCoauthorBoundary(dataset, cover, ctx);
  }

  return cover;
}

core::Cover LshCoverBuilder::Build(const data::Dataset& dataset,
                                   const ExecutionContext& ctx,
                                   core::BlockingStats* stats) const {
  LshCoverOptions options = options_;
  options.stats = stats;
  options.context = &ctx;
  return BuildLshCover(dataset, options);
}

std::unique_ptr<core::CoverBuilder> MakeCoverBuilder(
    core::BlockingStrategy strategy) {
  switch (strategy) {
    case core::BlockingStrategy::kCanopy:
      return std::make_unique<core::CanopyCoverBuilder>();
    case core::BlockingStrategy::kLsh:
      return std::make_unique<LshCoverBuilder>();
  }
  CEM_CHECK(false) << "unknown blocking strategy";
  return nullptr;
}

}  // namespace cem::blocking
