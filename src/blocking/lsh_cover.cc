#include "blocking/lsh_cover.h"

#include <vector>

#include "blocking/blocking_tokens.h"
#include "util/logging.h"
#include "util/random.h"

namespace cem::blocking {

core::Cover BuildLshCover(const data::Dataset& dataset,
                          const LshCoverOptions& options) {
  CEM_CHECK(options.tight >= options.loose)
      << "tight threshold must be at least the loose threshold";
  const std::vector<data::EntityId>& refs = dataset.author_refs();

  // Signatures + banded index over author refs (dense doc ids = position).
  const MinHasher hasher(options.minhash);
  std::vector<std::vector<uint64_t>> signatures;
  signatures.reserve(refs.size());
  LshIndex index(options.lsh, hasher.num_hashes());
  for (size_t i = 0; i < refs.size(); ++i) {
    signatures.push_back(
        hasher.Signature(AuthorBlockingTokens(dataset.entity(refs[i]))));
    index.AddDocument(static_cast<uint32_t>(i), signatures.back());
  }

  // Canopy-style assembly over LSH candidates: random seed order; banding
  // plays the loose filter, estimated Jaccard plays the tight rule.
  Rng rng(options.seed);
  std::vector<uint32_t> seed_order(refs.size());
  for (uint32_t i = 0; i < refs.size(); ++i) seed_order[i] = i;
  rng.Shuffle(seed_order);

  std::vector<bool> seeded_out(refs.size(), false);
  core::Cover cover;
  size_t pairs_considered = 0;
  for (uint32_t seed : seed_order) {
    if (seeded_out[seed]) continue;
    seeded_out[seed] = true;
    std::vector<data::EntityId> members{refs[seed]};
    const std::vector<uint32_t> candidates = index.Candidates(seed);
    pairs_considered += candidates.size();
    for (uint32_t other : candidates) {
      const double estimate =
          MinHasher::EstimateJaccard(signatures[seed], signatures[other]);
      if (estimate < options.loose) continue;
      members.push_back(refs[other]);
      if (estimate >= options.tight) seeded_out[other] = true;
    }
    cover.Add(std::move(members));
  }
  if (options.stats != nullptr) {
    options.stats->pairs_considered = pairs_considered;
  }

  if (options.ensure_pair_coverage) core::PatchPairCoverage(dataset, cover);
  if (options.expand_boundary) core::ExpandCoauthorBoundary(dataset, cover);

  return cover;
}

core::Cover LshCoverBuilder::Build(const data::Dataset& dataset,
                                   core::BlockingStats* stats) const {
  LshCoverOptions options = options_;
  options.stats = stats;
  return BuildLshCover(dataset, options);
}

std::unique_ptr<core::CoverBuilder> MakeCoverBuilder(
    core::BlockingStrategy strategy) {
  switch (strategy) {
    case core::BlockingStrategy::kCanopy:
      return std::make_unique<core::CanopyCoverBuilder>();
    case core::BlockingStrategy::kLsh:
      return std::make_unique<LshCoverBuilder>();
  }
  CEM_CHECK(false) << "unknown blocking strategy";
  return nullptr;
}

}  // namespace cem::blocking
