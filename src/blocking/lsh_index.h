#ifndef CEM_BLOCKING_LSH_INDEX_H_
#define CEM_BLOCKING_LSH_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "blocking/minhash_simd.h"
#include "util/execution_context.h"

namespace cem::blocking {

/// Banding parameters: a signature of >= bands*rows components is split
/// into `bands` bands of `rows` components each; two documents become
/// candidates iff they agree on every component of at least one band.
/// P(candidate | Jaccard s) = 1 - (1 - s^rows)^bands — the S-curve whose
/// knee the caller places at the similarity worth keeping.
struct LshParams {
  uint32_t bands = 32;
  uint32_t rows = 2;
};

/// Banded LSH buckets over MinHash signatures: sub-quadratic candidate
/// generation. Documents are hashed into one bucket per band; candidate
/// pairs are pairs sharing a bucket. Deterministic: bucket keys depend only
/// on the signature components and the band index.
///
/// Buckets are partitioned into `num_shards` shards by bucket key, so bulk
/// insertion (AddDocuments) parallelises with each shard owned by exactly
/// one worker — no locks — and concurrent read-only candidate lookups are
/// always safe. The shard count never changes what the index contains:
/// bucket membership, Candidates() and the work counters are bit-identical
/// for any shard count.
class LshIndex {
 public:
  /// `num_hashes` is the signature length documents will be added with;
  /// bands*rows must fit inside it (excess components are ignored).
  /// `num_shards` partitions the bucket space (clamped to at least 1).
  LshIndex(const LshParams& params, uint32_t num_hashes,
           uint32_t num_shards = 1);

  /// Adds a document; `doc_id` values should be dense (0..n-1) and each id
  /// added once. The signature must have `num_hashes` components.
  void AddDocument(uint32_t doc_id, const std::vector<uint64_t>& signature);

  /// Bulk-adds documents 0..signatures.size()-1 in parallel on `ctx`:
  /// band keys are computed per document, then each shard inserts the keys
  /// it owns in document order. The index must be empty. Equivalent to
  /// calling AddDocument for each document in increasing id order.
  void AddDocuments(const std::vector<std::vector<uint64_t>>& signatures,
                    const ExecutionContext& ctx);

  /// Flat-layout overload over a batched SignatureMatrix — the hot path
  /// the cover builders use. Identical results to the vector form.
  void AddDocuments(const SignatureMatrix& signatures,
                    const ExecutionContext& ctx);

  size_t num_documents() const { return doc_added_.size(); }
  /// Alias of num_documents(): the corpus size as this index sees it, O(1).
  /// stream::IncrementalCover assigns arrival slots from this — callers
  /// should never have to infer the live count from bucket contents.
  size_t size() const { return num_documents(); }
  bool empty() const { return doc_added_.empty(); }
  size_t num_shards() const { return shards_.size(); }

  /// Number of distinct non-empty buckets across all bands.
  size_t num_buckets() const;

  /// Documents sharing at least one band bucket with `doc_id`, sorted by
  /// doc id, deduplicated, excluding `doc_id` itself. Thread-safe against
  /// concurrent Candidates() calls (read-only).
  std::vector<uint32_t> Candidates(uint32_t doc_id) const;

  /// Documents sharing at least one band bucket with `signature` (which
  /// need not belong to any indexed document), sorted by doc id,
  /// deduplicated. The point-query probe of the serving layer: purely
  /// read-only, so any number of concurrent probes is safe as long as no
  /// AddDocument runs. If the signature's document IS indexed, its own id
  /// appears in the result — callers filter. Deterministic for any shard
  /// count, like Candidates().
  std::vector<uint32_t> CandidatesOfSignature(
      const std::vector<uint64_t>& signature) const;

  /// Sum over buckets of C(size, 2): the candidate pairs the banding pass
  /// generates, counted with multiplicity — the blocking-work metric the
  /// ablation compares against full postings scans.
  size_t TotalBucketPairs() const;

  const LshParams& params() const { return params_; }
  uint32_t num_hashes() const { return num_hashes_; }

  /// The banding S-curve: probability a pair at Jaccard `jaccard` becomes a
  /// candidate under (bands, rows). Monotonically increasing in `jaccard`.
  static double CollisionProbability(double jaccard, uint32_t bands,
                                     uint32_t rows);

  /// The `bands` bucket keys of one signature. Pure; public so the
  /// snapshot loader re-derives per-document keys from the persisted
  /// signatures instead of storing them twice. The key VALUES are part of
  /// the on-disk snapshot format (saved bucket maps are keyed by them), so
  /// this chain must never change — only get faster.
  std::vector<uint64_t> BandKeys(const std::vector<uint64_t>& signature) const;

  /// Bucket key -> member doc ids, in insertion (= doc id) order.
  using BucketMap = std::unordered_map<uint64_t, std::vector<uint32_t>>;

  /// Read-only view of one shard's buckets — what the snapshot saver
  /// serialises (sorted by key at write time; map order is incidental).
  const BucketMap& shard_buckets(size_t shard) const {
    return shards_[shard].buckets;
  }

  /// Restores a saved index wholesale: installs per-shard bucket maps
  /// captured from an index with the same shard count, and re-derives each
  /// document's band keys from `signatures` in parallel on `ctx`. The
  /// index must be empty and `buckets.size()` must equal num_shards();
  /// callers holding a different shard count rebuild via AddDocuments
  /// instead (identical queries either way — the shard-count contract).
  void RestoreSnapshot(std::vector<BucketMap> buckets,
                       const std::vector<std::vector<uint64_t>>& signatures,
                       const ExecutionContext& ctx);

 private:
  /// Shard owning bucket `key`; keys are already avalanche-mixed, so the
  /// low bits partition uniformly.
  size_t ShardOf(uint64_t key) const { return key % shards_.size(); }

  /// Writes the `bands` bucket keys of `signature` (>= num_hashes_
  /// components) into `out`: per band, a Mix64 chain over the band's rows,
  /// seeded from the hoisted band_seeds_ table. Bit-identical to the
  /// historical per-band `Mix(band+1)` re-derivation.
  void BandKeysInto(const uint64_t* signature, uint64_t* out) const;

  /// The flat band-key row of one document (bands entries).
  std::span<const uint64_t> doc_keys(size_t doc) const {
    return {doc_band_keys_.data() + doc * params_.bands, params_.bands};
  }

  /// Grows the per-document tables to hold `doc_id` and marks it added
  /// (CHECK-fails on a duplicate add).
  void ReserveDoc(uint32_t doc_id);

  /// Bulk-insert backend shared by both AddDocuments overloads: partitions
  /// the already-computed doc_band_keys_ stream by owning shard (in doc
  /// order), then each worker builds the buckets of the shards it owns.
  void InsertBandKeys(const ExecutionContext& ctx);

  struct Shard {
    BucketMap buckets;
  };

  LshParams params_;
  uint32_t num_hashes_;
  /// Mix64(band+1) per band, hoisted out of the per-document key chain.
  std::vector<uint64_t> band_seeds_;
  std::vector<Shard> shards_;
  /// Flat row-major per-document band keys: doc * bands + band. Docs never
  /// added (id gaps) hold zeros and are flagged off in doc_added_.
  std::vector<uint64_t> doc_band_keys_;
  std::vector<uint8_t> doc_added_;
};

}  // namespace cem::blocking

#endif  // CEM_BLOCKING_LSH_INDEX_H_
