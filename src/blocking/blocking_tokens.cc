#include "blocking/blocking_tokens.h"

#include <algorithm>
#include <cctype>
#include <string_view>

#include "util/hash.h"
#include "util/string_util.h"

namespace cem::blocking {

namespace {

char AsciiLower(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

/// Builds the fused first-initial|last-name-head token ("j|do" for
/// "J. Doe") into `buf` (at least 4 bytes); returns its length, or 0 when
/// the reference has no first name. `name` must already be lower-cased.
size_t FusedInitialToken(const data::Entity& entity, std::string_view name,
                         char* buf) {
  if (entity.first_name.empty()) return 0;
  size_t len = 0;
  buf[len++] = AsciiLower(entity.first_name[0]);
  buf[len++] = '|';
  const size_t head = std::min<size_t>(2, name.size());
  for (size_t i = 0; i < head; ++i) buf[len++] = name[i];
  return len;
}

}  // namespace

std::vector<std::string> AuthorBlockingTokens(const data::Entity& entity) {
  std::string name = ToLower(entity.last_name);
  std::vector<std::string> grams = CharNgrams(name, 3);
  char fused[4];
  const size_t fused_len = FusedInitialToken(entity, name, fused);
  if (fused_len > 0) grams.emplace_back(fused, fused_len);
  return grams;
}

void AppendAuthorBlockingTokens(const data::Entity& entity,
                                text::TokenCorpus::DocBuilder& builder) {
  // Intern the lower-cased last name once; every trigram (CharNgrams
  // semantics: none when empty, the whole string when <= 3 chars) aliases
  // a slice of that single copy.
  const std::string_view name = builder.InternLower(entity.last_name);
  if (!name.empty()) {
    if (name.size() <= 3) {
      builder.EmitAlias(name.data(), name.size());
    } else {
      for (size_t i = 0; i + 3 <= name.size(); ++i) {
        builder.EmitAlias(name.data() + i, 3);
      }
    }
  }
  char fused[4];
  const size_t fused_len = FusedInitialToken(entity, name, fused);
  if (fused_len > 0) builder.Emit({fused, fused_len});
}

void AppendAuthorBlockingTokenHashes(const data::Entity& entity,
                                     std::vector<uint64_t>* out) {
  // Incremental FNV over lower-cased bytes — no token strings, no arena.
  const std::string_view last = entity.last_name;
  if (!last.empty()) {
    if (last.size() <= 3) {
      uint64_t h = kFnv1a64Seed;
      for (char c : last) h = Fnv1a64Byte(h, AsciiLower(c));
      out->push_back(h);
    } else {
      for (size_t i = 0; i + 3 <= last.size(); ++i) {
        uint64_t h = kFnv1a64Seed;
        h = Fnv1a64Byte(h, AsciiLower(last[i]));
        h = Fnv1a64Byte(h, AsciiLower(last[i + 1]));
        h = Fnv1a64Byte(h, AsciiLower(last[i + 2]));
        out->push_back(h);
      }
    }
  }
  if (!entity.first_name.empty()) {
    uint64_t h = kFnv1a64Seed;
    h = Fnv1a64Byte(h, AsciiLower(entity.first_name[0]));
    h = Fnv1a64Byte(h, '|');
    const size_t head = std::min<size_t>(2, last.size());
    for (size_t i = 0; i < head; ++i) h = Fnv1a64Byte(h, AsciiLower(last[i]));
    out->push_back(h);
  }
}

}  // namespace cem::blocking
