#include "blocking/blocking_tokens.h"

#include <algorithm>
#include <cctype>

#include "util/string_util.h"

namespace cem::blocking {

std::vector<std::string> AuthorBlockingTokens(const data::Entity& entity) {
  std::string name = ToLower(entity.last_name);
  std::vector<std::string> grams = CharNgrams(name, 3);
  if (!entity.first_name.empty()) {
    const char initial = static_cast<char>(
        std::tolower(static_cast<unsigned char>(entity.first_name[0])));
    grams.push_back(std::string(1, initial) + "|" +
                    name.substr(0, std::min<size_t>(2, name.size())));
  }
  return grams;
}

}  // namespace cem::blocking
