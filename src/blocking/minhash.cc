#include "blocking/minhash.h"

#include "util/logging.h"
#include "util/random.h"

namespace cem::blocking {
namespace {

/// FNV-1a over the token bytes: the base hash each permutation salts.
uint64_t Fnv1a64(const std::string& token) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : token) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// SplitMix64 finalizer: full-avalanche mix of the salted base hash.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

MinHasher::MinHasher(const MinHashOptions& options) {
  CEM_CHECK(options.num_hashes > 0);
  Rng rng(options.seed);
  salts_.reserve(options.num_hashes);
  for (uint32_t i = 0; i < options.num_hashes; ++i) {
    salts_.push_back(rng.Next());
  }
}

std::vector<uint64_t> MinHasher::Signature(
    const std::vector<std::string>& tokens) const {
  std::vector<uint64_t> signature(salts_.size(), kEmptySlot);
  for (const std::string& token : tokens) {
    const uint64_t base = Fnv1a64(token);
    for (size_t i = 0; i < salts_.size(); ++i) {
      const uint64_t h = Mix(base ^ salts_[i]);
      if (h < signature[i]) signature[i] = h;
    }
  }
  return signature;
}

std::vector<std::vector<uint64_t>> MinHasher::SignatureBatch(
    const std::vector<std::vector<std::string>>& token_sets,
    const ExecutionContext& ctx) const {
  std::vector<std::vector<uint64_t>> signatures(token_sets.size());
  ParallelFor(ctx.pool(), token_sets.size(),
              [&](size_t i) { signatures[i] = Signature(token_sets[i]); });
  return signatures;
}

double MinHasher::EstimateJaccard(const std::vector<uint64_t>& a,
                                  const std::vector<uint64_t>& b) {
  CEM_CHECK(a.size() == b.size() && !a.empty())
      << "signatures must share one MinHasher configuration";
  size_t agree = 0;
  for (size_t i = 0; i < a.size(); ++i) agree += a[i] == b[i];
  return static_cast<double>(agree) / static_cast<double>(a.size());
}

}  // namespace cem::blocking
