#include "blocking/minhash.h"

#include "blocking/minhash_simd.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/random.h"

namespace cem::blocking {

MinHasher::MinHasher(const MinHashOptions& options) {
  CEM_CHECK(options.num_hashes > 0);
  Rng rng(options.seed);
  salts_.reserve(options.num_hashes);
  for (uint32_t i = 0; i < options.num_hashes; ++i) {
    salts_.push_back(rng.Next());
  }
}

std::vector<uint64_t> MinHasher::Signature(
    const std::vector<std::string>& tokens) const {
  // Hash each token once, then run the salted min-reductions on the
  // dispatched kernel — the same work the historical per-token loop did,
  // minus the k-fold re-hash of every token's bytes.
  thread_local std::vector<uint64_t> hashes;
  hashes.clear();
  hashes.reserve(tokens.size());
  for (const std::string& token : tokens) hashes.push_back(Fnv1a64(token));
  std::vector<uint64_t> signature(salts_.size());
  SignatureFromHashes(hashes.data(), hashes.size(), signature.data());
  return signature;
}

void MinHasher::SignatureFromHashes(const uint64_t* token_hashes,
                                    size_t num_tokens, uint64_t* out) const {
  simd::MinHashSignature(token_hashes, num_tokens, salts_.data(),
                         salts_.size(), out, ActiveSimdLevel());
}

std::vector<std::vector<uint64_t>> MinHasher::SignatureBatch(
    const std::vector<std::vector<std::string>>& token_sets,
    const ExecutionContext& ctx) const {
  std::vector<std::vector<uint64_t>> signatures(token_sets.size());
  ParallelFor(ctx.pool(), token_sets.size(),
              [&](size_t i) { signatures[i] = Signature(token_sets[i]); });
  return signatures;
}

double MinHasher::EstimateJaccard(const std::vector<uint64_t>& a,
                                  const std::vector<uint64_t>& b) {
  CEM_CHECK(a.size() == b.size() && !a.empty())
      << "signatures must share one MinHasher configuration";
  return EstimateJaccard(a.data(), b.data(), a.size());
}

double MinHasher::EstimateJaccard(const uint64_t* a, const uint64_t* b,
                                  size_t num_hashes) {
  CEM_CHECK(num_hashes > 0)
      << "signatures must share one MinHasher configuration";
  const size_t agree = simd::CountEqual(a, b, num_hashes, ActiveSimdLevel());
  return static_cast<double>(agree) / static_cast<double>(num_hashes);
}

}  // namespace cem::blocking
