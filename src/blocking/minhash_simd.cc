#include "blocking/minhash_simd.h"

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <string>

#include "blocking/minhash.h"
#include "obs/metrics.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace cem::blocking {
namespace {

/// Documents per ComputeSignatures batch. Fixed so the batch counter is a
/// pure function of the corpus size (the CI counter gate requires it).
constexpr size_t kSignatureBatchDocs = 512;

std::optional<SimdLevel>& ActiveLevelOverride() {
  static std::optional<SimdLevel> override;
  return override;
}

SimdLevel ResolveActiveSimdLevel() {
  const char* raw = std::getenv("CEM_SIMD");
  const std::string value = ToLower(raw == nullptr ? "auto" : raw);
  if (value == "scalar") return SimdLevel::kScalar;
  if (value == "avx2") {
    if (SimdLevelSupported(SimdLevel::kAvx2)) return SimdLevel::kAvx2;
    CEM_LOG(Warning) << "CEM_SIMD=avx2 requested but AVX2 is unavailable on "
                        "this build/CPU; falling back to scalar";
    return SimdLevel::kScalar;
  }
  if (value != "auto" && !value.empty()) {
    CEM_LOG(Warning) << "unknown CEM_SIMD value '" << value
                     << "' (expected auto|avx2|scalar); using auto";
  }
  return SimdLevelSupported(SimdLevel::kAvx2) ? SimdLevel::kAvx2
                                              : SimdLevel::kScalar;
}

}  // namespace

namespace simd {

namespace {

/// Salt-major with a register accumulator and branchless min: the
/// historical token-major loop re-read and re-wrote out[i] through memory
/// on every (token, salt) step and its `if (h < out[i])` branch was
/// near-random, which is what made it slow. Min is order-independent, so
/// this computes bit-identical signatures. Two salts per pass gives the
/// out-of-order core two independent Mix64 dependency chains.
/// `get_hash(t)` abstracts the token-hash source (flat array or TokenRef
/// slice) so both entry points share one loop.
template <typename GetHash>
void MinHashSignatureScalarImpl(size_t num_tokens, const uint64_t* salts,
                                size_t num_salts, uint64_t* out,
                                const GetHash& get_hash) {
  size_t i = 0;
  for (; i + 2 <= num_salts; i += 2) {
    const uint64_t salt0 = salts[i];
    const uint64_t salt1 = salts[i + 1];
    uint64_t best0 = ~0ULL;
    uint64_t best1 = ~0ULL;
    for (size_t t = 0; t < num_tokens; ++t) {
      const uint64_t base = get_hash(t);
      const uint64_t h0 = Mix64(base ^ salt0);
      const uint64_t h1 = Mix64(base ^ salt1);
      best0 = h0 < best0 ? h0 : best0;
      best1 = h1 < best1 ? h1 : best1;
    }
    out[i] = best0;
    out[i + 1] = best1;
  }
  for (; i < num_salts; ++i) {
    const uint64_t salt = salts[i];
    uint64_t best = ~0ULL;
    for (size_t t = 0; t < num_tokens; ++t) {
      const uint64_t h = Mix64(get_hash(t) ^ salt);
      best = h < best ? h : best;
    }
    out[i] = best;
  }
}

size_t CountEqualScalar(const uint64_t* a, const uint64_t* b, size_t n) {
  size_t agree = 0;
  for (size_t i = 0; i < n; ++i) agree += a[i] == b[i];
  return agree;
}

}  // namespace

// Defined in minhash_simd_avx2.cc (the only -mavx2 translation unit).
void MinHashSignatureAvx2(const uint64_t* token_hashes, size_t num_tokens,
                          const uint64_t* salts, size_t num_salts,
                          uint64_t* out);
void MinHashSignatureRefsAvx2(const text::TokenRef* tokens, size_t num_tokens,
                              const uint64_t* salts, size_t num_salts,
                              uint64_t* out);
size_t CountEqualAvx2(const uint64_t* a, const uint64_t* b, size_t n);

void MinHashSignature(const uint64_t* token_hashes, size_t num_tokens,
                      const uint64_t* salts, size_t num_salts, uint64_t* out,
                      SimdLevel level) {
  if (level == SimdLevel::kAvx2) {
    MinHashSignatureAvx2(token_hashes, num_tokens, salts, num_salts, out);
    return;
  }
  MinHashSignatureScalarImpl(num_tokens, salts, num_salts, out,
                             [&](size_t t) { return token_hashes[t]; });
}

void MinHashSignatureRefs(const text::TokenRef* tokens, size_t num_tokens,
                          const uint64_t* salts, size_t num_salts,
                          uint64_t* out, SimdLevel level) {
  if (level == SimdLevel::kAvx2) {
    MinHashSignatureRefsAvx2(tokens, num_tokens, salts, num_salts, out);
    return;
  }
  MinHashSignatureScalarImpl(num_tokens, salts, num_salts, out,
                             [&](size_t t) { return tokens[t].hash; });
}

size_t CountEqual(const uint64_t* a, const uint64_t* b, size_t n,
                  SimdLevel level) {
  if (level == SimdLevel::kAvx2) return CountEqualAvx2(a, b, n);
  return CountEqualScalar(a, b, n);
}

}  // namespace simd

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool SimdLevelSupported(SimdLevel level) {
  if (level == SimdLevel::kScalar) return true;
#if CEM_SIMD_HAS_AVX2_KERNELS && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

SimdLevel ActiveSimdLevel() {
  if (ActiveLevelOverride().has_value()) return *ActiveLevelOverride();
  static const SimdLevel level = ResolveActiveSimdLevel();
  return level;
}

namespace internal_simd {

void SetActiveSimdLevelForTesting(SimdLevel level) {
  CEM_CHECK(SimdLevelSupported(level))
      << "cannot force unsupported SIMD level " << SimdLevelName(level);
  ActiveLevelOverride() = level;
}

void ResetActiveSimdLevelForTesting() { ActiveLevelOverride().reset(); }

}  // namespace internal_simd

SignatureMatrix ComputeSignatures(const MinHasher& hasher,
                                  const text::TokenCorpus& corpus,
                                  const ExecutionContext& ctx) {
  return ComputeSignatures(hasher, corpus, ctx, ActiveSimdLevel());
}

SignatureMatrix ComputeSignatures(const MinHasher& hasher,
                                  const text::TokenCorpus& corpus,
                                  const ExecutionContext& ctx,
                                  SimdLevel level) {
  const size_t n = corpus.num_docs();
  SignatureMatrix matrix(n, hasher.num_hashes());
  const size_t num_batches =
      (n + kSignatureBatchDocs - 1) / kSignatureBatchDocs;
  static obs::Counter& batches_counter =
      obs::MetricsRegistry::Global().counter("blocking_simd_batches");
  static obs::Histogram& batch_hist =
      obs::MetricsRegistry::Global().histogram("minhash_batch_us");
  const std::vector<uint64_t>& salts = hasher.salts();
  ParallelFor(ctx.pool(), num_batches, [&](size_t batch) {
    Timer timer;
    const size_t begin = batch * kSignatureBatchDocs;
    const size_t end = std::min(n, begin + kSignatureBatchDocs);
    for (size_t doc = begin; doc < end; ++doc) {
      const std::span<const text::TokenRef> tokens = corpus.doc(doc);
      simd::MinHashSignatureRefs(tokens.data(), tokens.size(), salts.data(),
                                 salts.size(), matrix.row(doc), level);
    }
    batches_counter.Add(1);
    batch_hist.Record(timer.ElapsedMillis() * 1e3);
  });
  return matrix;
}

}  // namespace cem::blocking
