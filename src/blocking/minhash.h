#ifndef CEM_BLOCKING_MINHASH_H_
#define CEM_BLOCKING_MINHASH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/execution_context.h"

namespace cem::blocking {

/// Options of the MinHash signature scheme.
struct MinHashOptions {
  /// Signature length k: number of hash permutations. More hashes tighten
  /// the Jaccard estimate (stddev ~= sqrt(s(1-s)/k)) at linear cost.
  uint32_t num_hashes = 64;
  /// Seed deriving the per-permutation salts; equal seeds give equal
  /// signatures for equal token sets, across processes and runs.
  uint64_t seed = 0x1234abcd9e3779b9ULL;
};

/// k-permutation MinHash over string token sets [Broder 1997]: component i
/// of a signature is the minimum of a salted 64-bit hash over the tokens.
/// Two sets agree on component i with probability equal to their Jaccard
/// similarity, which is what banded LSH exploits. Deterministic: signatures
/// depend only on (tokens, options), never on global state.
///
/// The inner loop runs on the dispatched hot-path kernels (see
/// minhash_simd.h): tokens are FNV-hashed once, then the k salted
/// min-reductions execute at ActiveSimdLevel(). Every level is
/// bit-identical to the historical scalar definition, so signatures (and
/// the persisted LSH band keys derived from them) never depend on the
/// CPU or the CEM_SIMD knob.
class MinHasher {
 public:
  explicit MinHasher(const MinHashOptions& options = {});

  uint32_t num_hashes() const {
    return static_cast<uint32_t>(salts_.size());
  }

  /// The per-permutation salts (length num_hashes) — input to the batched
  /// kernels in minhash_simd.h.
  const std::vector<uint64_t>& salts() const { return salts_; }

  /// Signature component used for the empty token set (no token can beat
  /// it, so empty sets collide only with empty sets).
  static constexpr uint64_t kEmptySlot = ~0ULL;

  /// Returns the k-component signature of `tokens` (duplicates are harmless
  /// — MinHash has set semantics). Callers pass the shared lower-cased
  /// blocking tokens so signatures agree with the token-overlap index.
  std::vector<uint64_t> Signature(const std::vector<std::string>& tokens) const;

  /// Signature of a pre-hashed token set (each element a Fnv1a64 token
  /// hash — e.g. text::TokenRef::hash or AppendAuthorBlockingTokenHashes
  /// output). `out` must hold num_hashes() components. Equals
  /// Signature(tokens) whenever `token_hashes` holds the tokens' hashes.
  void SignatureFromHashes(const uint64_t* token_hashes, size_t num_tokens,
                           uint64_t* out) const;

  /// Signatures of all token sets, computed in parallel on `ctx`; element i
  /// equals Signature(token_sets[i]) (documents are independent, so the
  /// result does not depend on the thread count).
  std::vector<std::vector<uint64_t>> SignatureBatch(
      const std::vector<std::vector<std::string>>& token_sets,
      const ExecutionContext& ctx) const;

  /// Unbiased Jaccard estimate: the fraction of agreeing components.
  /// Signatures must come from the same MinHasher configuration.
  static double EstimateJaccard(const std::vector<uint64_t>& a,
                                const std::vector<uint64_t>& b);

  /// Flat-array overload for matrix rows (see SignatureMatrix).
  static double EstimateJaccard(const uint64_t* a, const uint64_t* b,
                                size_t num_hashes);

 private:
  std::vector<uint64_t> salts_;
};

}  // namespace cem::blocking

#endif  // CEM_BLOCKING_MINHASH_H_
