#ifndef CEM_BLOCKING_LSH_COVER_H_
#define CEM_BLOCKING_LSH_COVER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "blocking/lsh_index.h"
#include "blocking/minhash.h"
#include "core/cover.h"
#include "core/cover_builder.h"
#include "data/dataset.h"

namespace cem::blocking {

/// Options of the LSH-driven cover construction: banded-LSH candidate
/// generation replaces the canopy pass's full postings-list scans, then the
/// same totality patches (pair coverage, Coauthor boundary expansion) make
/// the result a Definition-7 total cover.
struct LshCoverOptions {
  /// MinHash signature scheme. num_hashes must hold lsh.bands * lsh.rows.
  MinHashOptions minhash;
  /// Banding parameters. The defaults (32 bands x 2 rows) put the S-curve
  /// knee near Jaccard 0.2 — below the trigram similarity of any pair worth
  /// a matching decision, so recall loss stays in the noise.
  LshParams lsh;
  /// A colliding document joins a neighborhood only if its estimated
  /// Jaccard is at least `loose`: prunes accidental bucket collisions.
  double loose = 0.20;
  /// Estimated Jaccard at which a joined document leaves the seed pool
  /// (the canopy "tight" rule — larger -> more, overlapping neighborhoods).
  double tight = 0.55;
  /// Expand each neighborhood with its members' coauthors (total w.r.t.
  /// Coauthor, Definition 7).
  bool expand_boundary = true;
  /// Patch any candidate pair the banding split into a shared neighborhood
  /// (total w.r.t. Similar).
  bool ensure_pair_coverage = true;
  /// Seed for the neighborhood seed-selection order; unset = the execution
  /// context's seed (ExecutionContext::kDefaultSeed by default, so
  /// defaults are stable across contexts).
  std::optional<uint64_t> seed;
  /// Optional out-param: filled with candidate-generation work counters.
  core::BlockingStats* stats = nullptr;
  /// Execution context of the parallel phases (MinHash signatures, sharded
  /// index insertion, candidate expansion, boundary expansion) and source
  /// of the bucket shard count; null = ExecutionContext::Default(). The
  /// cover is bit-identical for any thread and shard count.
  const ExecutionContext* context = nullptr;
};

/// Builds a cover of the dataset's author references from MinHash + banded
/// LSH candidate generation, patched total like the canopy cover. Same
/// blocking tokens as the canopy/candidate-pair passes, so the strategies
/// agree on what "nearby" means and differ only in how they search it.
core::Cover BuildLshCover(const data::Dataset& dataset,
                          const LshCoverOptions& options = {});

/// The LSH strategy behind the CoverBuilder interface.
class LshCoverBuilder : public core::CoverBuilder {
 public:
  explicit LshCoverBuilder(LshCoverOptions options = {})
      : options_(options) {}

  using core::CoverBuilder::Build;
  core::Cover Build(const data::Dataset& dataset, const ExecutionContext& ctx,
                    core::BlockingStats* stats = nullptr) const override;
  std::string name() const override { return "lsh"; }

 private:
  LshCoverOptions options_;
};

/// Factory over the registered strategies, default options each.
std::unique_ptr<core::CoverBuilder> MakeCoverBuilder(
    core::BlockingStrategy strategy);

}  // namespace cem::blocking

#endif  // CEM_BLOCKING_LSH_COVER_H_
