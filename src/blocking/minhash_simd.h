#ifndef CEM_BLOCKING_MINHASH_SIMD_H_
#define CEM_BLOCKING_MINHASH_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "text/token_arena.h"
#include "util/execution_context.h"

namespace cem::blocking {

class MinHasher;

/// Whether this build carries the AVX2 kernel translation unit
/// (minhash_simd_avx2.cc, compiled with -mavx2 on x86-64). On other
/// architectures the scalar kernels are the only implementation.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define CEM_SIMD_HAS_AVX2_KERNELS 1
#else
#define CEM_SIMD_HAS_AVX2_KERNELS 0
#endif

/// Instruction-set level of the batched hot-path kernels. Every level
/// computes bit-identical results — SIMD is an execution strategy here,
/// never a semantic: the AVX2 paths emulate the exact 64-bit scalar
/// arithmetic (low-64 multiply, unsigned min), so the determinism and
/// equivalence suites pin one answer for all levels.
enum class SimdLevel {
  kScalar,
  kAvx2,
};

const char* SimdLevelName(SimdLevel level);

/// True when `level`'s kernels can run on this build + CPU.
bool SimdLevelSupported(SimdLevel level);

/// The process-wide dispatch decision, resolved once: CEM_SIMD=scalar or
/// CEM_SIMD=avx2 forces a level (an unsupported force warns and falls back
/// to scalar); unset or CEM_SIMD=auto picks the best supported level via
/// cpuid.
SimdLevel ActiveSimdLevel();

namespace internal_simd {
/// Test-only override of ActiveSimdLevel() — lets one process compare
/// end-to-end pipeline runs across levels. Pass kScalar/kAvx2 to force,
/// or call Reset to return to the CEM_SIMD/cpuid decision.
void SetActiveSimdLevelForTesting(SimdLevel level);
void ResetActiveSimdLevelForTesting();
}  // namespace internal_simd

namespace simd {

/// The MinHash inner kernel: out[i] = min over tokens of
/// Mix64(token_hashes[t] ^ salts[i]), or ~0ULL (MinHasher::kEmptySlot)
/// when there are no tokens. Bit-identical across levels and to the
/// historical per-token scalar loop (min is order-independent).
void MinHashSignature(const uint64_t* token_hashes, size_t num_tokens,
                      const uint64_t* salts, size_t num_salts, uint64_t* out,
                      SimdLevel level);

/// Same kernel reading the precomputed hashes straight out of a document's
/// TokenRef slice (stride sizeof(TokenRef)) — the batch path calls this so
/// no per-document hash copy is needed.
void MinHashSignatureRefs(const text::TokenRef* tokens, size_t num_tokens,
                          const uint64_t* salts, size_t num_salts,
                          uint64_t* out, SimdLevel level);

/// Number of equal components between two length-`n` signatures — the
/// EstimateJaccard inner loop.
size_t CountEqual(const uint64_t* a, const uint64_t* b, size_t n,
                  SimdLevel level);

}  // namespace simd

/// Flat row-major signature storage: `num_docs` rows of `num_hashes`
/// contiguous components — the SoA batch layout (one allocation for the
/// whole corpus instead of one heap vector per signature). Storage is
/// deliberately left uninitialised (make_unique_for_overwrite): every row
/// is fully written by the kernel, and zero-filling megabytes first shows
/// up in the batch wall time. Move-only.
class SignatureMatrix {
 public:
  SignatureMatrix() = default;
  SignatureMatrix(size_t num_docs, uint32_t num_hashes)
      : num_docs_(num_docs),
        num_hashes_(num_hashes),
        data_(std::make_unique_for_overwrite<uint64_t[]>(num_docs *
                                                         num_hashes)) {}

  size_t num_docs() const { return num_docs_; }
  uint32_t num_hashes() const { return num_hashes_; }

  uint64_t* row(size_t doc) { return data_.get() + doc * num_hashes_; }
  const uint64_t* row(size_t doc) const {
    return data_.get() + doc * num_hashes_;
  }
  std::span<const uint64_t> row_span(size_t doc) const {
    return {row(doc), num_hashes_};
  }
  /// Copies row `doc` into an owning vector (the persist/streaming format).
  std::vector<uint64_t> row_vector(size_t doc) const {
    return {row(doc), row(doc) + num_hashes_};
  }

 private:
  size_t num_docs_ = 0;
  uint32_t num_hashes_ = 0;
  std::unique_ptr<uint64_t[]> data_;
};

/// Batched signature computation over a flat token corpus: tokens are
/// hashed once (at corpus build), then each document runs the k salted
/// min-reductions at `level`. Parallel over fixed-size document batches on
/// `ctx`; bumps the `blocking_simd_batches` counter (deterministic: a
/// function of the document count alone) and records per-batch wall time
/// in `hist_minhash_batch_us`. Row i equals
/// `hasher.Signature(tokens of document i)` bit-for-bit.
SignatureMatrix ComputeSignatures(const MinHasher& hasher,
                                  const text::TokenCorpus& corpus,
                                  const ExecutionContext& ctx);
SignatureMatrix ComputeSignatures(const MinHasher& hasher,
                                  const text::TokenCorpus& corpus,
                                  const ExecutionContext& ctx,
                                  SimdLevel level);

}  // namespace cem::blocking

#endif  // CEM_BLOCKING_MINHASH_SIMD_H_
