#ifndef CEM_BLOCKING_BLOCKING_TOKENS_H_
#define CEM_BLOCKING_BLOCKING_TOKENS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/entity.h"
#include "text/token_arena.h"

namespace cem::blocking {

/// Blocking tokens of one author reference: lower-cased last-name character
/// trigrams plus a fused first-initial|last-name-head token so abbreviated
/// references ("J. Doe") block together with full ones. This is the single
/// token definition every blocking structure shares — the candidate-pair
/// prefilter (Dataset::BuildCandidatePairs), the canopy cheap distance and
/// the MinHash signatures — so their notions of "nearby" agree.
std::vector<std::string> AuthorBlockingTokens(const data::Entity& entity);

/// Arena hot path: emits exactly the AuthorBlockingTokens token set into
/// `builder`. The lower-cased last name is interned once and the trigrams
/// alias slices of it, so a k-character name costs k arena bytes instead
/// of 3(k-2) heap-string bytes plus allocator overhead.
void AppendAuthorBlockingTokens(const data::Entity& entity,
                                text::TokenCorpus::DocBuilder& builder);

/// Hash-only hot path: appends Fnv1a64(token) for each AuthorBlockingTokens
/// token to `out` without materialising any token bytes — the streaming
/// signature path feeds these straight into
/// MinHasher::SignatureFromHashes. Same multiset of hashes as hashing the
/// AuthorBlockingTokens strings (duplicates are harmless to MinHash).
void AppendAuthorBlockingTokenHashes(const data::Entity& entity,
                                     std::vector<uint64_t>* out);

}  // namespace cem::blocking

#endif  // CEM_BLOCKING_BLOCKING_TOKENS_H_
