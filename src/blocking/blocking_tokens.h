#ifndef CEM_BLOCKING_BLOCKING_TOKENS_H_
#define CEM_BLOCKING_BLOCKING_TOKENS_H_

#include <string>
#include <vector>

#include "data/entity.h"

namespace cem::blocking {

/// Blocking tokens of one author reference: lower-cased last-name character
/// trigrams plus a fused first-initial|last-name-head token so abbreviated
/// references ("J. Doe") block together with full ones. This is the single
/// token definition every blocking structure shares — the candidate-pair
/// prefilter (Dataset::BuildCandidatePairs), the canopy cheap distance and
/// the MinHash signatures — so their notions of "nearby" agree.
std::vector<std::string> AuthorBlockingTokens(const data::Entity& entity);

}  // namespace cem::blocking

#endif  // CEM_BLOCKING_BLOCKING_TOKENS_H_
