#ifndef CEM_GRAPH_MAX_FLOW_H_
#define CEM_GRAPH_MAX_FLOW_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cem::graph {

/// Dinic max-flow over a directed graph with double capacities.
///
/// This is the exact-MAP substrate for the MLN matcher: the Appendix-B MLN
/// grounds to a pairwise-submodular binary energy, whose minimiser is an
/// s-t min-cut (Kolmogorov & Zabih [11] in the paper's references).
///
/// Because the optimal assignments of a submodular energy form a lattice,
/// there is a unique minimal and a unique maximal optimal assignment;
/// `SourceSideMinCut` / `SinkUnreachableSet` expose both so callers can
/// implement the Type-II tie-break "prefer the largest most-likely set"
/// (Section 3.2 of the paper).
class MaxFlow {
 public:
  /// Creates a flow network with `num_nodes` nodes and no edges.
  explicit MaxFlow(int num_nodes);

  /// Adds a directed edge u->v with capacity `cap` (and a residual reverse
  /// edge of capacity `rev_cap`, default 0). Returns the edge index.
  int AddEdge(int u, int v, double cap, double rev_cap = 0.0);

  /// Computes the max flow from `source` to `sink`. May be called once.
  double Solve(int source, int sink);

  /// After Solve: nodes reachable from the source in the residual graph.
  /// This is the source side of the *minimal* min-cut.
  std::vector<bool> SourceSideMinCut() const;

  /// After Solve: nodes that cannot reach the sink in the residual graph.
  /// This is the source side of the *maximal* min-cut (superset of the
  /// minimal one). Contains the source, never the sink.
  std::vector<bool> SinkUnreachableSet() const;

  int num_nodes() const { return static_cast<int>(adjacency_.size()); }

 private:
  struct Edge {
    int to;
    double cap;   // Remaining capacity.
    int reverse;  // Index of the reverse edge in adjacency_[to].
  };

  bool Bfs(int source, int sink);
  double Dfs(int node, int sink, double pushed);

  std::vector<std::vector<Edge>> adjacency_;
  std::vector<int> level_;
  std::vector<size_t> iter_;
  int source_ = -1;
  int sink_ = -1;
  bool solved_ = false;
};

}  // namespace cem::graph

#endif  // CEM_GRAPH_MAX_FLOW_H_
