#include "graph/max_flow.h"

#include <algorithm>
#include <deque>
#include <limits>

#include "util/logging.h"

namespace cem::graph {
namespace {
// Capacities below this are treated as exhausted to keep floating point
// residuals from creating phantom augmenting paths.
constexpr double kEps = 1e-12;
}  // namespace

MaxFlow::MaxFlow(int num_nodes) : adjacency_(num_nodes) {
  CEM_CHECK(num_nodes >= 2);
}

int MaxFlow::AddEdge(int u, int v, double cap, double rev_cap) {
  CEM_CHECK(!solved_) << "AddEdge after Solve";
  CEM_CHECK(u >= 0 && u < num_nodes() && v >= 0 && v < num_nodes());
  CEM_CHECK(cap >= 0.0 && rev_cap >= 0.0);
  adjacency_[u].push_back(
      {v, cap, static_cast<int>(adjacency_[v].size())});
  adjacency_[v].push_back(
      {u, rev_cap, static_cast<int>(adjacency_[u].size()) - 1});
  return static_cast<int>(adjacency_[u].size()) - 1;
}

bool MaxFlow::Bfs(int source, int sink) {
  level_.assign(num_nodes(), -1);
  std::deque<int> queue{source};
  level_[source] = 0;
  while (!queue.empty()) {
    int u = queue.front();
    queue.pop_front();
    for (const Edge& e : adjacency_[u]) {
      if (e.cap > kEps && level_[e.to] < 0) {
        level_[e.to] = level_[u] + 1;
        queue.push_back(e.to);
      }
    }
  }
  return level_[sink] >= 0;
}

double MaxFlow::Dfs(int node, int sink, double pushed) {
  if (node == sink) return pushed;
  for (size_t& i = iter_[node]; i < adjacency_[node].size(); ++i) {
    Edge& e = adjacency_[node][i];
    if (e.cap <= kEps || level_[e.to] != level_[node] + 1) continue;
    double got = Dfs(e.to, sink, std::min(pushed, e.cap));
    if (got > kEps) {
      e.cap -= got;
      adjacency_[e.to][e.reverse].cap += got;
      return got;
    }
  }
  return 0.0;
}

double MaxFlow::Solve(int source, int sink) {
  CEM_CHECK(!solved_) << "Solve called twice";
  CEM_CHECK(source != sink);
  source_ = source;
  sink_ = sink;
  double flow = 0.0;
  while (Bfs(source, sink)) {
    iter_.assign(num_nodes(), 0);
    while (true) {
      double pushed =
          Dfs(source, sink, std::numeric_limits<double>::infinity());
      if (pushed <= kEps) break;
      flow += pushed;
    }
  }
  solved_ = true;
  return flow;
}

std::vector<bool> MaxFlow::SourceSideMinCut() const {
  CEM_CHECK(solved_) << "SourceSideMinCut before Solve";
  std::vector<bool> reachable(num_nodes(), false);
  std::deque<int> queue{source_};
  reachable[source_] = true;
  while (!queue.empty()) {
    int u = queue.front();
    queue.pop_front();
    for (const Edge& e : adjacency_[u]) {
      if (e.cap > kEps && !reachable[e.to]) {
        reachable[e.to] = true;
        queue.push_back(e.to);
      }
    }
  }
  return reachable;
}

std::vector<bool> MaxFlow::SinkUnreachableSet() const {
  CEM_CHECK(solved_) << "SinkUnreachableSet before Solve";
  // Reverse reachability: v can reach sink iff some residual edge v->u
  // exists with u able to reach the sink. A residual edge v->u with
  // positive capacity appears in adjacency_[v]; we need the reverse
  // traversal, so we scan incoming residual edges via the paired entries.
  std::vector<bool> reaches_sink(num_nodes(), false);
  std::deque<int> queue{sink_};
  reaches_sink[sink_] = true;
  while (!queue.empty()) {
    int u = queue.front();
    queue.pop_front();
    // Every edge stored at u has a paired reverse edge at e.to; the
    // capacity of the edge (e.to -> u) is adjacency_[e.to][e.reverse].cap.
    for (const Edge& e : adjacency_[u]) {
      const Edge& incoming = adjacency_[e.to][e.reverse];
      if (incoming.cap > kEps && !reaches_sink[e.to]) {
        reaches_sink[e.to] = true;
        queue.push_back(e.to);
      }
    }
  }
  std::vector<bool> unreachable(num_nodes());
  for (int v = 0; v < num_nodes(); ++v) unreachable[v] = !reaches_sink[v];
  return unreachable;
}

}  // namespace cem::graph
