#ifndef CEM_GRAPH_CONNECTED_COMPONENTS_H_
#define CEM_GRAPH_CONNECTED_COMPONENTS_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace cem::graph {

/// Connected components of an undirected graph on nodes 0..num_nodes-1 given
/// as an edge list. Returns one sorted vector of node ids per component,
/// components ordered by smallest member. Used by COMPUTEMAXIMAL
/// (Algorithm 2) to turn the mutual-entailment graph into maximal messages.
std::vector<std::vector<uint32_t>> ConnectedComponents(
    uint32_t num_nodes,
    const std::vector<std::pair<uint32_t, uint32_t>>& edges);

}  // namespace cem::graph

#endif  // CEM_GRAPH_CONNECTED_COMPONENTS_H_
