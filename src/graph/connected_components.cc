#include "graph/connected_components.h"

#include "util/union_find.h"

namespace cem::graph {

std::vector<std::vector<uint32_t>> ConnectedComponents(
    uint32_t num_nodes,
    const std::vector<std::pair<uint32_t, uint32_t>>& edges) {
  UnionFind uf(num_nodes);
  for (const auto& [u, v] : edges) uf.Union(u, v);
  return uf.Groups();
}

}  // namespace cem::graph
