#include "data/figure1.h"

#include <utility>

#include "text/similarity_level.h"

namespace cem::data {

Figure1 MakeFigure1() {
  Figure1 fig;
  fig.dataset = std::make_unique<Dataset>();
  Dataset& d = *fig.dataset;

  // Ground-truth authors: 0=A, 1=B, 2=C, 3=D.
  // First names carry the paper's node labels so example output reads like
  // the figure; Similar is registered explicitly below, so the labels do
  // not influence matching.
  fig.a1 = d.AddAuthorRef("a1", "alpha", 0);
  fig.a2 = d.AddAuthorRef("a2", "alpha", 0);
  fig.b1 = d.AddAuthorRef("b1", "beta", 1);
  fig.b2 = d.AddAuthorRef("b2", "beta", 1);
  fig.b3 = d.AddAuthorRef("b3", "beta", 1);
  fig.c1 = d.AddAuthorRef("c1", "gamma", 2);
  fig.c2 = d.AddAuthorRef("c2", "gamma", 2);
  fig.c3 = d.AddAuthorRef("c3", "gamma", 2);
  fig.d1 = d.AddAuthorRef("d1", "delta", 3);

  // One paper per Coauthor edge of Figure 1.
  const std::pair<EntityId, EntityId> edges[] = {
      {fig.a1, fig.b2}, {fig.a2, fig.b3}, {fig.b1, fig.c1},
      {fig.b2, fig.c2}, {fig.b3, fig.c3}, {fig.c1, fig.d1},
      {fig.c2, fig.d1},
  };
  int paper_no = 0;
  for (const auto& [x, y] : edges) {
    EntityId paper = d.AddPaper("p" + std::to_string(paper_no++));
    d.AddAuthored(x, paper);
    d.AddAuthored(y, paper);
  }
  d.Finalize();

  // Similar holds within each letter group (levels are uniform; the demo
  // weights give every level the same R1 weight).
  const EntityId groups[][3] = {{fig.a1, fig.a2, fig.a2},
                                {fig.b1, fig.b2, fig.b3},
                                {fig.c1, fig.c2, fig.c3}};
  for (const auto& g : groups) {
    d.AddCandidatePair(g[0], g[1], text::SimilarityLevel::kMedium);
    if (g[1] != g[2]) {
      d.AddCandidatePair(g[0], g[2], text::SimilarityLevel::kMedium);
      d.AddCandidatePair(g[1], g[2], text::SimilarityLevel::kMedium);
    }
  }
  d.FinalizeCandidatePairs();

  fig.neighborhoods = {
      {fig.a1, fig.a2, fig.b2, fig.b3},                        // C1
      {fig.b1, fig.b2, fig.b3, fig.c1, fig.c2, fig.c3},        // C2
      {fig.c1, fig.c2, fig.d1},                                // C3
  };
  return fig;
}

}  // namespace cem::data
