#include "data/relation.h"

#include <algorithm>

#include "util/logging.h"

namespace cem::data {

const std::vector<EntityId> Relation::kEmpty;

Relation::Relation(std::string name, bool symmetric)
    : name_(std::move(name)), symmetric_(symmetric) {}

void Relation::Add(EntityId u, EntityId v) {
  CEM_CHECK(!finalized_) << "Add after Finalize on relation " << name_;
  if (u == v) return;
  const EntityId hi = std::max(u, v);
  if (hi >= adjacency_.size()) adjacency_.resize(hi + 1);
  adjacency_[u].push_back(v);
  if (symmetric_) adjacency_[v].push_back(u);
}

void Relation::Finalize() {
  num_tuples_ = 0;
  for (auto& neighbors : adjacency_) {
    std::sort(neighbors.begin(), neighbors.end());
    neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                    neighbors.end());
    num_tuples_ += neighbors.size();
  }
  finalized_ = true;
}

const std::vector<EntityId>& Relation::Neighbors(EntityId u) const {
  CEM_CHECK(finalized_) << "query before Finalize on relation " << name_;
  if (u >= adjacency_.size()) return kEmpty;
  return adjacency_[u];
}

bool Relation::Contains(EntityId u, EntityId v) const {
  const std::vector<EntityId>& neighbors = Neighbors(u);
  return std::binary_search(neighbors.begin(), neighbors.end(), v);
}

}  // namespace cem::data
