#include "data/entity.h"

namespace cem::data {

std::string Entity::DisplayName() const {
  if (type == EntityType::kPaper) return title;
  if (first_name.empty()) return last_name;
  return first_name + " " + last_name;
}

}  // namespace cem::data
