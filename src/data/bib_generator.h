#ifndef CEM_DATA_BIB_GENERATOR_H_
#define CEM_DATA_BIB_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <string>

#include "data/dataset.h"
#include "util/random.h"

namespace cem::data {

/// Configuration of the synthetic bibliography generator.
///
/// The paper's corpora are not redistributable, so we synthesise corpora
/// that reproduce their relevant *structure* (see DESIGN.md §1):
///  * HEPTH-like — first names abbreviated to initials with high
///    probability, producing many name clashes → fewer, larger canopies;
///  * DBLP-like — full names with small random character mutations (the
///    paper itself injected this noise into DBLP) → many small canopies.
struct BibConfig {
  /// Number of distinct real-world authors.
  uint32_t num_authors = 500;
  /// Number of papers; each paper yields one author reference per author.
  uint32_t num_papers = 800;
  /// Mean number of authors per paper (geometric-ish, >= 1).
  double mean_authors_per_paper = 2.5;
  /// Number of communities; papers draw authors mostly from one community,
  /// giving the coauthor graph its cluster structure.
  uint32_t num_communities = 25;
  /// Probability an author slot is filled from outside the community.
  double cross_community_prob = 0.05;
  /// Zipf exponent for author productivity (0 = uniform).
  double productivity_skew = 0.8;

  /// Probability a reference abbreviates the first name to an initial
  /// ("John" -> "J."). HEPTH-like corpora set this high.
  double abbreviate_prob = 0.0;
  /// Probability a rendered name receives one random character mutation
  /// (substitution/insertion/deletion). DBLP-like corpora set this high.
  double mutate_prob = 0.0;
  /// Probability that a mutated name receives a second edit. Two edits
  /// push a variant from "near-identical" (level 3, matchable by the
  /// similarity rule alone) down to "ambiguous" (level 1-2, needing
  /// collective coauthor evidence) — the regime the paper's message
  /// passing exists for.
  double second_mutation_prob = 0.0;
  /// Probability an author's rendering *drifts* over time: the author uses
  /// one rendering in an early era and different ones later (name changes,
  /// venue conventions). Drift makes coauthor support form chain-like
  /// structures across era boundaries instead of dense parallel cliques —
  /// the cross-neighborhood inference chains of Section 2. Applied twice
  /// (an author can have up to three eras).
  double variant_drift = 0.0;
  /// Probability a single occurrence gets a one-off extra typo on top of
  /// its era rendering.
  double slot_typo_prob = 0.05;
  /// Mean citations per paper (to earlier papers).
  double mean_cites_per_paper = 2.0;
  /// Size of the last-name pool; smaller pools create more name collisions
  /// between *distinct* authors (the disambiguation challenge).
  uint32_t last_name_pool = 120;
  /// RNG seed; equal configs + seeds produce identical datasets.
  uint64_t seed = 42;

  /// Paper-faithful presets, sized by `scale` (1.0 = laptop-friendly
  /// defaults; larger values approach the paper's corpus sizes).
  static BibConfig HepthLike(double scale = 1.0);
  static BibConfig DblpLike(double scale = 1.0);
};

/// A rendered (possibly noisy) author name.
struct RenderedName {
  std::string first;
  std::string last;
};

/// Applies the config's noise model (abbreviation, character mutation) to a
/// clean name. Exposed for tests of the noise model.
RenderedName RenderNoisyName(const BibConfig& config, const std::string& first,
                             const std::string& last, Rng& rng);

/// Generates a labelled synthetic bibliography dataset: papers, author
/// references (noisy names, ground truth = generating author id),
/// Authored/Cites tuples and the derived Coauthor relation. The result is
/// Finalize()d and candidate pairs are built with `candidate_options` on
/// `ctx` (generation itself is serial — it is one seeded random stream —
/// but candidate scoring parallelises).
std::unique_ptr<Dataset> GenerateBibDataset(
    const BibConfig& config, const CandidateOptions& candidate_options = {},
    const ExecutionContext& ctx = ExecutionContext::Default());

}  // namespace cem::data

#endif  // CEM_DATA_BIB_GENERATOR_H_
