#ifndef CEM_DATA_ENTITY_H_
#define CEM_DATA_ENTITY_H_

#include <cstdint>
#include <string>

namespace cem::data {

/// Dense entity identifier; ids are assigned 0..n-1 by the Dataset.
using EntityId = uint32_t;

/// Sentinel for "no ground-truth label available".
inline constexpr uint32_t kNoTruth = 0xffffffffu;

/// Entity kinds of the running example (Example 1 of the paper). A
/// neighborhood may mix types — e.g. an author reference and a paper —
/// which is exactly what distinguishes covers from classical blocking.
enum class EntityType : uint8_t {
  kAuthorRef = 0,
  kPaper = 1,
};

/// A single entity: an author reference (attributes fname/lname) or a paper
/// (attributes title/year), following Example 1.
struct Entity {
  EntityId id = 0;
  EntityType type = EntityType::kAuthorRef;

  // Author-reference attributes.
  std::string first_name;
  std::string last_name;

  // Paper attributes.
  std::string title;
  int year = 0;

  /// Ground-truth cluster label (true author id for references, canonical
  /// paper id for papers); kNoTruth when unlabelled.
  uint32_t truth = kNoTruth;

  /// Display string, e.g. "J. Doe" or the paper title.
  std::string DisplayName() const;
};

/// An unordered pair of entities, stored normalised (a < b). The unit of a
/// matching decision.
struct EntityPair {
  EntityId a = 0;
  EntityId b = 0;

  EntityPair() = default;
  EntityPair(EntityId x, EntityId y) : a(x < y ? x : y), b(x < y ? y : x) {}

  friend bool operator==(const EntityPair&, const EntityPair&) = default;
  friend auto operator<=>(const EntityPair&, const EntityPair&) = default;
};

/// 64-bit key for hashing an EntityPair.
inline uint64_t PairKey(EntityPair p) {
  return (static_cast<uint64_t>(p.a) << 32) | p.b;
}

/// Inverse of PairKey.
inline EntityPair PairFromKey(uint64_t key) {
  EntityPair p;
  p.a = static_cast<EntityId>(key >> 32);
  p.b = static_cast<EntityId>(key & 0xffffffffu);
  return p;
}

}  // namespace cem::data

#endif  // CEM_DATA_ENTITY_H_
