#include "data/dataset.h"

#include <algorithm>

#include "blocking/blocking_tokens.h"
#include "blocking/lsh_index.h"
#include "blocking/minhash.h"
#include "text/similarity_level.h"
#include "text/token_index.h"
#include "util/logging.h"

namespace cem::data {

const std::vector<PairId> Dataset::kNoPairs;

Dataset::Dataset()
    : authored_("Authored", /*symmetric=*/false),
      cites_("Cites", /*symmetric=*/false),
      coauthor_("Coauthor", /*symmetric=*/true) {}

EntityId Dataset::AddEntity(Entity entity) {
  CEM_CHECK(!finalized_) << "AddEntity after Finalize";
  entity.id = static_cast<EntityId>(entities_.size());
  entities_.push_back(std::move(entity));
  return entities_.back().id;
}

EntityId Dataset::AddAuthorRef(std::string first_name, std::string last_name,
                               uint32_t truth) {
  Entity e;
  e.type = EntityType::kAuthorRef;
  e.first_name = std::move(first_name);
  e.last_name = std::move(last_name);
  e.truth = truth;
  EntityId id = AddEntity(std::move(e));
  author_refs_.push_back(id);
  return id;
}

EntityId Dataset::AddPaper(std::string title, int year, uint32_t truth) {
  Entity e;
  e.type = EntityType::kPaper;
  e.title = std::move(title);
  e.year = year;
  e.truth = truth;
  return AddEntity(std::move(e));
}

void Dataset::AddAuthored(EntityId ref, EntityId paper) {
  CEM_CHECK(entity(ref).type == EntityType::kAuthorRef);
  CEM_CHECK(entity(paper).type == EntityType::kPaper);
  authored_.Add(ref, paper);
}

void Dataset::AddCites(EntityId from, EntityId to) {
  CEM_CHECK(entity(from).type == EntityType::kPaper);
  CEM_CHECK(entity(to).type == EntityType::kPaper);
  cites_.Add(from, to);
}

void Dataset::Finalize() {
  CEM_CHECK(!finalized_);
  authored_.Finalize();
  // Coauthor = self-join of Authored on the paper attribute.
  std::vector<std::vector<EntityId>> refs_of_paper(entities_.size());
  for (EntityId ref : author_refs_) {
    for (EntityId paper : authored_.Neighbors(ref)) {
      refs_of_paper[paper].push_back(ref);
    }
  }
  for (const auto& refs : refs_of_paper) {
    for (size_t i = 0; i < refs.size(); ++i) {
      for (size_t j = i + 1; j < refs.size(); ++j) {
        coauthor_.Add(refs[i], refs[j]);
      }
    }
  }
  coauthor_.Finalize();
  cites_.Finalize();
  finalized_ = true;
}

void Dataset::BuildCandidatePairs(const CandidateOptions& options,
                                  const ExecutionContext& ctx) {
  CEM_CHECK(finalized_) << "BuildCandidatePairs before Finalize";
  CEM_CHECK(candidate_pairs_.empty()) << "candidate pairs already built";
  const size_t n = author_refs_.size();

  // Blocking tokens per reference — the shared definition every blocking
  // structure uses (see blocking/blocking_tokens.h), so candidate pairs,
  // canopies and LSH signatures agree on what "nearby" means. Tokens are
  // emitted straight into a flat arena corpus, hashed once at emit time.
  text::TokenCorpus corpus = text::TokenCorpus::Build(
      n,
      [&](size_t i, text::TokenCorpus::DocBuilder& builder) {
        blocking::AppendAuthorBlockingTokens(entities_[author_refs_[i]],
                                             builder);
      },
      ctx);

  // Blocking prefilter: per reference i, the doc ids > i worth scoring.
  // The LSH structures are only constructed (and their knobs validated) on
  // the use_lsh path.
  std::function<std::vector<uint32_t>(uint32_t)> block_fn;
  std::optional<text::TokenIndex> index;
  std::optional<blocking::LshIndex> lsh;
  if (options.use_lsh) {
    // Sub-quadratic path: batched signatures over the corpus, sharded
    // banded index, parallel insert.
    const blocking::MinHasher hasher({options.lsh_num_hashes});
    lsh.emplace(blocking::LshParams{options.lsh_bands, options.lsh_rows},
                hasher.num_hashes(), ctx.num_shards());
    lsh->AddDocuments(blocking::ComputeSignatures(hasher, corpus, ctx), ctx);
    block_fn = [&lsh](uint32_t i) {
      std::vector<uint32_t> out;
      for (uint32_t other : lsh->Candidates(i)) {
        if (other > i) out.push_back(other);
      }
      return out;
    };
  } else {
    // Exact path: sharded trigram inverted index (parallel build), full
    // postings scans.
    index.emplace(ctx.num_token_shards());
    index->AddDocuments(std::move(corpus), ctx);
    block_fn = [&](uint32_t i) {
      std::vector<uint32_t> out;
      for (const auto& cand :
           index->Candidates(i, options.min_ngram_overlap)) {
        if (cand.doc_id > i) out.push_back(cand.doc_id);
      }
      return out;
    };
  }

  // Score each reference's candidate block in parallel; per-reference
  // result slots keep the merge order-independent, and the sort in
  // FinalizeCandidatePairs makes the final index identical for any thread
  // count either way.
  std::vector<std::vector<CandidatePair>> found(n);
  ParallelFor(ctx.pool(), n, [&](size_t i) {
    const Entity& a = entities_[author_refs_[i]];
    for (uint32_t other : block_fn(static_cast<uint32_t>(i))) {
      const Entity& b = entities_[author_refs_[other]];
      const text::SimilarityLevel level = text::NameSimilarityLevel(
          a.first_name, a.last_name, b.first_name, b.last_name,
          options.thresholds);
      if (level == text::SimilarityLevel::kNone) continue;
      found[i].push_back({EntityPair(a.id, b.id), level});
    }
  });
  for (const std::vector<CandidatePair>& pairs : found) {
    candidate_pairs_.insert(candidate_pairs_.end(), pairs.begin(),
                            pairs.end());
  }
  FinalizeCandidatePairs();
}

void Dataset::AddCandidatePair(EntityId a, EntityId b,
                               text::SimilarityLevel level) {
  CEM_CHECK(level != text::SimilarityLevel::kNone);
  CEM_CHECK(a != b);
  candidate_pairs_.push_back({EntityPair(a, b), level});
}

void Dataset::FinalizeCandidatePairs() {
  std::sort(candidate_pairs_.begin(), candidate_pairs_.end(),
            [](const CandidatePair& x, const CandidatePair& y) {
              return x.pair < y.pair;
            });
  candidate_pairs_.erase(
      std::unique(candidate_pairs_.begin(), candidate_pairs_.end(),
                  [](const CandidatePair& x, const CandidatePair& y) {
                    return x.pair == y.pair;
                  }),
      candidate_pairs_.end());
  pair_index_.clear();
  pair_index_.reserve(candidate_pairs_.size() * 2);
  pairs_of_entity_.assign(entities_.size(), {});
  for (PairId id = 0; id < candidate_pairs_.size(); ++id) {
    const EntityPair p = candidate_pairs_[id].pair;
    pair_index_.emplace(PairKey(p), id);
    pairs_of_entity_[p.a].push_back(id);
    pairs_of_entity_[p.b].push_back(id);
  }
}

std::optional<PairId> Dataset::FindCandidatePair(EntityId a,
                                                 EntityId b) const {
  auto it = pair_index_.find(PairKey(EntityPair(a, b)));
  if (it == pair_index_.end()) return std::nullopt;
  return it->second;
}

const std::vector<PairId>& Dataset::PairsOfEntity(EntityId e) const {
  if (e >= pairs_of_entity_.size()) return kNoPairs;
  return pairs_of_entity_[e];
}

bool Dataset::IsTrueMatch(EntityPair p) const {
  const Entity& a = entities_[p.a];
  const Entity& b = entities_[p.b];
  return a.truth != kNoTruth && b.truth != kNoTruth && a.truth == b.truth &&
         a.type == b.type;
}

size_t Dataset::CountTrueMatches() const {
  // True matches among labelled author refs: sum over clusters of C(n,2).
  std::unordered_map<uint32_t, size_t> cluster_sizes;
  for (EntityId ref : author_refs_) {
    uint32_t t = entities_[ref].truth;
    if (t != kNoTruth) ++cluster_sizes[t];
  }
  size_t total = 0;
  for (const auto& [label, n] : cluster_sizes) total += n * (n - 1) / 2;
  return total;
}

}  // namespace cem::data
