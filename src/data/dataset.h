#ifndef CEM_DATA_DATASET_H_
#define CEM_DATA_DATASET_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/entity.h"
#include "data/relation.h"
#include "text/similarity_level.h"
#include "util/execution_context.h"

namespace cem::data {

/// Identifier of a candidate pair within a Dataset (dense 0..m-1).
using PairId = uint32_t;

/// A candidate matching decision: a same-type entity pair whose similarity
/// level is >= 1 (the paper's `similar(e1, e2, score)` predicate with the
/// discretised score). Pairs below level 1 carry no match variable —
/// standard blocking, and what makes the paper's "1.3M matching decisions"
/// a finite set.
struct CandidatePair {
  EntityPair pair;
  text::SimilarityLevel level = text::SimilarityLevel::kNone;
};

/// Options controlling candidate-pair generation.
struct CandidateOptions {
  /// Thresholds bucketing continuous name similarity into levels 1..3.
  text::LevelThresholds thresholds;
  /// Minimum character-trigram overlap for the blocking prefilter; pairs
  /// below it are never even scored. Keep below the level-1 threshold's
  /// effective trigram overlap so blocking does not lose candidates.
  double min_ngram_overlap = 0.25;
  /// Generate candidates from the sharded MinHash/LSH index instead of the
  /// full trigram postings scans: the same sub-quadratic win the LSH cover
  /// builder gets, over the same shared blocking tokens. Banding is
  /// probabilistic — pairs whose token Jaccard sits far below the S-curve
  /// knee can be missed — so this is opt-in for scale runs.
  bool use_lsh = false;
  /// Banding knobs of the use_lsh path (mirror blocking::LshCoverOptions
  /// defaults; kept as plain integers so data/ needs no blocking/ types in
  /// this header). lsh_bands * lsh_rows must fit in lsh_num_hashes.
  uint32_t lsh_bands = 32;
  uint32_t lsh_rows = 2;
  uint32_t lsh_num_hashes = 64;
};

/// An entity-matching problem instance: entities E, relations R, ground
/// truth, and the derived candidate-pair index that every matcher and the
/// covering algorithm share.
///
/// Construction protocol: add entities and relation tuples, then call
/// Finalize(), then BuildCandidatePairs().
class Dataset {
 public:
  Dataset();

  // --- construction -------------------------------------------------------

  /// Adds an author reference; returns its id.
  EntityId AddAuthorRef(std::string first_name, std::string last_name,
                        uint32_t truth = kNoTruth);

  /// Adds a paper; returns its id.
  EntityId AddPaper(std::string title, int year = 0,
                    uint32_t truth = kNoTruth);

  /// Records that reference `ref` authored paper `paper`.
  void AddAuthored(EntityId ref, EntityId paper);

  /// Records that `from` cites `to` (papers).
  void AddCites(EntityId from, EntityId to);

  /// Derives the symmetric Coauthor relation from Authored (self-join, as in
  /// Example 1), sorts all adjacency lists. Must be called once after all
  /// entities/tuples are added.
  void Finalize();

  /// Computes the candidate-pair index over author references: a blocking
  /// prefilter (trigram postings scans, or the sharded LSH index when
  /// `options.use_lsh` is set) followed by exact name similarity. Scoring
  /// runs in parallel on `ctx`; the result is sorted and deduplicated, so
  /// it is identical for any thread/shard count. Requires Finalize().
  void BuildCandidatePairs(
      const CandidateOptions& options = {},
      const ExecutionContext& ctx = ExecutionContext::Default());

  /// Registers a candidate pair with an explicit level, bypassing name
  /// similarity. Used by hand-built instances (Figure 1) and tests.
  /// Call instead of BuildCandidatePairs(), then FinalizeCandidatePairs().
  void AddCandidatePair(EntityId a, EntityId b, text::SimilarityLevel level);

  /// Builds the pair lookup structures for hand-registered pairs.
  void FinalizeCandidatePairs();

  // --- entity access -------------------------------------------------------

  size_t num_entities() const { return entities_.size(); }
  const Entity& entity(EntityId id) const { return entities_[id]; }
  const std::vector<Entity>& entities() const { return entities_; }

  /// Ids of all author references.
  const std::vector<EntityId>& author_refs() const { return author_refs_; }

  // --- relations -----------------------------------------------------------

  const Relation& authored() const { return authored_; }
  const Relation& cites() const { return cites_; }
  const Relation& coauthor() const { return coauthor_; }

  /// Coauthors of reference `ref` (other references on the same papers).
  const std::vector<EntityId>& Coauthors(EntityId ref) const {
    return coauthor_.Neighbors(ref);
  }

  // --- candidate pairs ------------------------------------------------------

  size_t num_candidate_pairs() const { return candidate_pairs_.size(); }
  const CandidatePair& candidate_pair(PairId id) const {
    return candidate_pairs_[id];
  }
  const std::vector<CandidatePair>& candidate_pairs() const {
    return candidate_pairs_;
  }

  /// PairId of the candidate pair (a, b), if it is a candidate.
  std::optional<PairId> FindCandidatePair(EntityId a, EntityId b) const;

  /// Candidate pairs incident to entity `e`.
  const std::vector<PairId>& PairsOfEntity(EntityId e) const;

  // --- ground truth ----------------------------------------------------------

  /// True if the ground truth labels both entities as the same real-world
  /// entity (both must be labelled).
  bool IsTrueMatch(EntityPair p) const;

  /// Total number of true-match candidate pairs (the recall denominator
  /// restricted to candidates) plus, via `include_blocked`, true matches
  /// outside the candidate set.
  size_t CountTrueMatches() const;

 private:
  EntityId AddEntity(Entity entity);

  std::vector<Entity> entities_;
  std::vector<EntityId> author_refs_;
  Relation authored_;
  Relation cites_;
  Relation coauthor_;
  bool finalized_ = false;

  std::vector<CandidatePair> candidate_pairs_;
  std::unordered_map<uint64_t, PairId> pair_index_;
  std::vector<std::vector<PairId>> pairs_of_entity_;
  static const std::vector<PairId> kNoPairs;
};

}  // namespace cem::data

#endif  // CEM_DATA_DATASET_H_
