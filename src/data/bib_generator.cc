#include "data/bib_generator.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "util/logging.h"

namespace cem::data {
namespace {

// Syllable pools for pronounceable synthetic names.
constexpr const char* kOnsets[] = {"b",  "ch", "d",  "f",  "g",  "h",  "j",
                                   "k",  "l",  "m",  "n",  "p",  "r",  "s",
                                   "sh", "t",  "v",  "w",  "y",  "z",  "br",
                                   "st", "kr", "tr", "gl"};
constexpr const char* kVowels[] = {"a", "e", "i", "o", "u", "ai", "ou", "ee"};
constexpr const char* kCodas[] = {"",  "n", "m", "r", "l", "s",
                                  "t", "k", "ng", "rd", "ck"};

std::string MakeSyllable(Rng& rng) {
  std::string s = kOnsets[rng.NextBounded(std::size(kOnsets))];
  s += kVowels[rng.NextBounded(std::size(kVowels))];
  s += kCodas[rng.NextBounded(std::size(kCodas))];
  return s;
}

std::string MakeName(Rng& rng, int min_syllables, int max_syllables) {
  std::string name;
  const int syllables =
      static_cast<int>(rng.NextInt(min_syllables, max_syllables));
  for (int i = 0; i < syllables; ++i) name += MakeSyllable(rng);
  name[0] = static_cast<char>(std::toupper(name[0]));
  return name;
}

/// One random character edit: substitute, insert, or delete.
std::string MutateOnce(const std::string& text, Rng& rng) {
  if (text.empty()) return text;
  std::string out = text;
  const uint64_t kind = rng.NextBounded(3);
  const size_t pos = rng.NextBounded(out.size());
  const char letter = static_cast<char>('a' + rng.NextBounded(26));
  switch (kind) {
    case 0:  // substitution
      out[pos] = letter;
      break;
    case 1:  // insertion
      out.insert(out.begin() + pos, letter);
      break;
    default:  // deletion (keep at least 2 chars so names stay non-trivial)
      if (out.size() > 2) out.erase(out.begin() + pos);
      break;
  }
  return out;
}

}  // namespace

BibConfig BibConfig::HepthLike(double scale) {
  BibConfig c;
  c.num_authors = static_cast<uint32_t>(400 * scale);
  c.num_papers = static_cast<uint32_t>(1050 * scale);
  c.mean_authors_per_paper = 3.0;
  c.num_communities = std::max<uint32_t>(4, static_cast<uint32_t>(20 * scale));
  // HEPTH: abbreviated first names plus occasional typos -> heavy name
  // ambiguity; matching hinges on coauthor evidence chains.
  c.abbreviate_prob = 0.5;
  c.mutate_prob = 0.4;
  c.second_mutation_prob = 0.4;
  c.last_name_pool =
      std::max<uint32_t>(150, static_cast<uint32_t>(350 * scale));
  c.seed = 20030101;  // KDD Cup 2003 homage.
  return c;
}

BibConfig BibConfig::DblpLike(double scale) {
  BibConfig c;
  c.num_authors = static_cast<uint32_t>(450 * scale);
  c.num_papers = static_cast<uint32_t>(1000 * scale);
  c.mean_authors_per_paper = 2.6;
  c.num_communities = std::max<uint32_t>(4, static_cast<uint32_t>(30 * scale));
  // DBLP: full names, synthetic character noise (as in the paper's own
  // data preparation). Full names keep canopies small.
  c.abbreviate_prob = 0.0;
  c.mutate_prob = 0.5;
  c.second_mutation_prob = 0.45;
  c.last_name_pool =
      std::max<uint32_t>(250, static_cast<uint32_t>(600 * scale));
  c.seed = 19408;  // Paper's DBLP paper count homage.
  return c;
}

RenderedName RenderNoisyName(const BibConfig& config, const std::string& first,
                             const std::string& last, Rng& rng) {
  RenderedName out{first, last};
  if (!first.empty() && rng.NextBernoulli(config.abbreviate_prob)) {
    out.first = std::string(1, first[0]) + ".";
  }
  if (rng.NextBernoulli(config.mutate_prob)) {
    // Mutate one of the two fields; last name twice as likely (longer).
    if (rng.NextBounded(3) == 0 && out.first.size() > 1 &&
        out.first.back() != '.') {
      out.first = MutateOnce(out.first, rng);
    } else {
      out.last = MutateOnce(out.last, rng);
    }
    if (rng.NextBernoulli(config.second_mutation_prob)) {
      out.last = MutateOnce(out.last, rng);
    }
  }
  return out;
}

std::unique_ptr<Dataset> GenerateBibDataset(
    const BibConfig& config, const CandidateOptions& candidate_options,
    const ExecutionContext& ctx) {
  CEM_CHECK(config.num_authors > 0);
  CEM_CHECK(config.num_papers > 0);
  Rng rng(config.seed);
  auto dataset = std::make_unique<Dataset>();

  // 1. Clean author identities. Last names drawn from a limited pool so
  //    distinct authors collide; first names unique-ish per author.
  std::vector<std::string> last_pool;
  last_pool.reserve(config.last_name_pool);
  for (uint32_t i = 0; i < config.last_name_pool; ++i) {
    last_pool.push_back(MakeName(rng, 2, 3));
  }
  struct AuthorIdentity {
    std::string first;
    std::string last;
    uint32_t community;
  };
  std::vector<AuthorIdentity> authors;
  authors.reserve(config.num_authors);
  const uint32_t communities = std::max<uint32_t>(1, config.num_communities);
  for (uint32_t a = 0; a < config.num_authors; ++a) {
    authors.push_back({MakeName(rng, 2, 3),
                       last_pool[rng.NextBounded(last_pool.size())],
                       static_cast<uint32_t>(rng.NextBounded(communities))});
  }

  // Author productivity ranking (Zipf): productive authors appear on more
  // papers, giving the coauthor graph realistic hubs.
  std::vector<std::vector<uint32_t>> community_members(communities);
  for (uint32_t a = 0; a < config.num_authors; ++a) {
    community_members[authors[a].community].push_back(a);
  }
  // Every community needs at least one member; reassign from the largest
  // if some are empty (tiny configs).
  for (uint32_t c = 0; c < communities; ++c) {
    if (community_members[c].empty()) {
      community_members[c].push_back(rng.NextBounded(config.num_authors));
    }
  }

  auto pick_author = [&](uint32_t community) -> uint32_t {
    const std::vector<uint32_t>* pool = &community_members[community];
    if (rng.NextBernoulli(config.cross_community_prob)) {
      pool = &community_members[rng.NextBounded(communities)];
    }
    if (config.productivity_skew > 0) {
      return (*pool)[rng.NextZipf(pool->size(), config.productivity_skew)];
    }
    return (*pool)[rng.NextBounded(pool->size())];
  };

  // 2. Papers and author references.
  //
  // Reference model: a reference entity is one (author, rendered-name
  // variant) — occurrences of the exact same string are collapsed, the
  // standard exact-string dedup every bibliographic pipeline applies
  // before EM (and the model behind the paper's Figure 1, where a single
  // reference node d1 coauthors with refs on several papers). A reference
  // therefore spans all the papers its variant appears on, which is what
  // makes the reflexive coauthor grounding (shared coauthor d1) and the
  // cross-neighborhood inference chains of Section 2 possible.
  std::vector<EntityId> paper_ids;
  paper_ids.reserve(config.num_papers);
  std::map<std::pair<uint32_t, std::string>, EntityId> variant_refs;
  auto ref_of_variant = [&](uint32_t author, const RenderedName& name) {
    const auto key = std::make_pair(author, name.first + "\t" + name.last);
    auto it = variant_refs.find(key);
    if (it != variant_refs.end()) return it->second;
    const EntityId ref =
        dataset->AddAuthorRef(name.first, name.last, /*truth=*/author);
    variant_refs.emplace(key, ref);
    return ref;
  };

  // Era renderings (variant drift): an author renders consistently within
  // an era and switches rendering at era boundaries.
  struct Era {
    double until;  // Fraction of the timeline this era covers.
    RenderedName name;
  };
  std::vector<std::vector<Era>> eras(config.num_authors);
  auto era_name = [&](uint32_t author, double when) -> RenderedName {
    std::vector<Era>& timeline = eras[author];
    if (timeline.empty()) {
      int count = 1;
      if (rng.NextBernoulli(config.variant_drift)) ++count;
      if (count == 2 && rng.NextBernoulli(config.variant_drift)) ++count;
      for (int i = 0; i < count; ++i) {
        timeline.push_back(
            {static_cast<double>(i + 1) / count,
             RenderNoisyName(config, authors[author].first,
                             authors[author].last, rng)});
      }
    }
    for (const Era& era : timeline) {
      if (when <= era.until) return era.name;
    }
    return timeline.back().name;
  };

  for (uint32_t p = 0; p < config.num_papers; ++p) {
    const uint32_t community = static_cast<uint32_t>(
        rng.NextBounded(communities));
    const EntityId paper = dataset->AddPaper(
        "paper-" + std::to_string(p), 1990 + static_cast<int>(p % 25),
        /*truth=*/p);
    paper_ids.push_back(paper);

    // Geometric-ish author count with the configured mean.
    int num_slots = 1;
    const double p_more = 1.0 - 1.0 / std::max(1.0, config.mean_authors_per_paper);
    while (num_slots < 12 && rng.NextBernoulli(p_more)) ++num_slots;

    std::set<uint32_t> used;
    for (int s = 0; s < num_slots; ++s) {
      uint32_t author = pick_author(community);
      for (int tries = 0; tries < 8 && used.count(author); ++tries) {
        author = pick_author(community);
      }
      if (used.count(author)) continue;
      used.insert(author);
      // With drift enabled, the rendering is the author's era rendering;
      // otherwise every occurrence renders independently (per-slot noise).
      RenderedName name =
          config.variant_drift > 0.0
              ? era_name(author, static_cast<double>(p) / config.num_papers)
              : RenderNoisyName(config, authors[author].first,
                                authors[author].last, rng);
      if (rng.NextBernoulli(config.slot_typo_prob)) {
        name.last = MutateOnce(name.last, rng);
      }
      dataset->AddAuthored(ref_of_variant(author, name), paper);
    }
  }

  // 3. Citations to earlier papers.
  for (uint32_t p = 1; p < config.num_papers; ++p) {
    int cites = 0;
    const double p_more =
        1.0 - 1.0 / std::max(1.0, config.mean_cites_per_paper + 1.0);
    while (cites < 8 && rng.NextBernoulli(p_more)) ++cites;
    for (int c = 0; c < cites; ++c) {
      dataset->AddCites(paper_ids[p], paper_ids[rng.NextBounded(p)]);
    }
  }

  dataset->Finalize();
  dataset->BuildCandidatePairs(candidate_options, ctx);
  return dataset;
}

}  // namespace cem::data
