#ifndef CEM_DATA_FIGURE1_H_
#define CEM_DATA_FIGURE1_H_

#include <memory>
#include <vector>

#include "data/dataset.h"

namespace cem::data {

/// The paper's running example (Figures 1 and 2): author references
/// a1,a2, b1,b2,b3, c1,c2,c3 and d1 with Coauthor edges
///   a1–b2, a2–b3, b1–c1, b2–c2, b3–c3, c1–d1, c2–d1
/// and Similar holding within each letter group. Ground truth: each letter
/// group is one real author.
///
/// With the §2.1 demo weights (R1 = -5, R2 = +8; see
/// mln::MlnWeights::Figure1Demo()) this instance reproduces every deduction
/// in the paper's overview:
///  * (c1,c2) matches in isolation (shared coauthor d1);
///  * (b1,b2) matches only given Match(c1,c2) as evidence — SMP recovers it;
///  * the chain {(a1,a2),(b2,b3),(c2,c3)} is profitable only as a whole —
///    only MMP recovers it (via maximal messages from C1 and C2).
struct Figure1 {
  std::unique_ptr<Dataset> dataset;

  // Named entity ids for tests and examples.
  EntityId a1, a2, b1, b2, b3, c1, c2, c3, d1;

  /// The three neighborhoods of Figure 2:
  ///   C1 = {a1,a2,b2,b3}, C2 = {b1,b2,b3,c1,c2,c3}, C3 = {c1,c2,d1}.
  /// Together they form a total cover w.r.t. the induced Coauthor tuples
  /// used by the example.
  std::vector<std::vector<EntityId>> neighborhoods;
};

/// Builds the Figure 1 instance.
Figure1 MakeFigure1();

}  // namespace cem::data

#endif  // CEM_DATA_FIGURE1_H_
