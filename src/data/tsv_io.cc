#include "data/tsv_io.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "util/string_util.h"

namespace cem::data {
namespace {

// Record kinds in the TSV stream.
constexpr char kAuthorTag[] = "A";
constexpr char kPaperTag[] = "P";
constexpr char kAuthoredTag[] = "W";  // "wrote"
constexpr char kCitesTag[] = "C";

}  // namespace

Status SaveDatasetTsv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return InvalidArgumentError("cannot open for writing: " + path);
  for (const Entity& e : dataset.entities()) {
    if (e.type == EntityType::kAuthorRef) {
      out << kAuthorTag << '\t' << e.id << '\t' << e.first_name << '\t'
          << e.last_name << '\t' << static_cast<int64_t>(e.truth) << '\n';
    } else {
      out << kPaperTag << '\t' << e.id << '\t' << e.title << '\t' << e.year
          << '\t' << static_cast<int64_t>(e.truth) << '\n';
    }
  }
  for (const Entity& e : dataset.entities()) {
    if (e.type != EntityType::kAuthorRef) continue;
    for (EntityId paper : dataset.authored().Neighbors(e.id)) {
      out << kAuthoredTag << '\t' << e.id << '\t' << paper << '\n';
    }
  }
  for (const Entity& e : dataset.entities()) {
    if (e.type != EntityType::kPaper) continue;
    for (EntityId to : dataset.cites().Neighbors(e.id)) {
      out << kCitesTag << '\t' << e.id << '\t' << to << '\n';
    }
  }
  if (!out.good()) return InternalError("write failed: " + path);
  return OkStatus();
}

Result<std::unique_ptr<Dataset>> LoadDatasetTsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return InvalidArgumentError("cannot open for reading: " + path);
  auto dataset = std::make_unique<Dataset>();
  // Entity ids in the file must be dense and in insertion order; we verify.
  std::string line;
  size_t line_no = 0;
  // Relation tuples are buffered until all entities exist.
  std::vector<std::pair<EntityId, EntityId>> authored_tuples;
  std::vector<std::pair<EntityId, EntityId>> cites_tuples;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::vector<std::string> fields = Split(line, '\t');
    auto bad = [&](const std::string& why) {
      return InvalidArgumentError(path + ":" + std::to_string(line_no) +
                                  ": " + why);
    };
    if (fields[0] == kAuthorTag) {
      if (fields.size() != 5) return bad("author record needs 5 fields");
      const EntityId id = dataset->AddAuthorRef(
          fields[2], fields[3],
          static_cast<uint32_t>(std::stoll(fields[4])));
      if (id != static_cast<EntityId>(std::stoul(fields[1]))) {
        return bad("non-dense entity id");
      }
    } else if (fields[0] == kPaperTag) {
      if (fields.size() != 5) return bad("paper record needs 5 fields");
      const EntityId id = dataset->AddPaper(
          fields[2], std::stoi(fields[3]),
          static_cast<uint32_t>(std::stoll(fields[4])));
      if (id != static_cast<EntityId>(std::stoul(fields[1]))) {
        return bad("non-dense entity id");
      }
    } else if (fields[0] == kAuthoredTag) {
      if (fields.size() != 3) return bad("authored record needs 3 fields");
      authored_tuples.emplace_back(std::stoul(fields[1]),
                                   std::stoul(fields[2]));
    } else if (fields[0] == kCitesTag) {
      if (fields.size() != 3) return bad("cites record needs 3 fields");
      cites_tuples.emplace_back(std::stoul(fields[1]), std::stoul(fields[2]));
    } else {
      return bad("unknown record tag '" + fields[0] + "'");
    }
  }
  for (const auto& [ref, paper] : authored_tuples) {
    if (ref >= dataset->num_entities() || paper >= dataset->num_entities()) {
      return InvalidArgumentError(path + ": authored tuple out of range");
    }
    dataset->AddAuthored(ref, paper);
  }
  for (const auto& [from, to] : cites_tuples) {
    if (from >= dataset->num_entities() || to >= dataset->num_entities()) {
      return InvalidArgumentError(path + ": cites tuple out of range");
    }
    dataset->AddCites(from, to);
  }
  dataset->Finalize();
  return dataset;
}

}  // namespace cem::data
