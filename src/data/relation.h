#ifndef CEM_DATA_RELATION_H_
#define CEM_DATA_RELATION_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "data/entity.h"

namespace cem::data {

/// A binary relation over entities (e.g. Authored, Cites, Coauthor),
/// stored as adjacency lists for O(1) neighbour enumeration. Symmetric
/// relations (Coauthor) store both directions.
class Relation {
 public:
  /// Creates an empty relation. `symmetric` relations store tuples in both
  /// directions; asymmetric ones (Authored, Cites) only as given.
  explicit Relation(std::string name, bool symmetric);

  const std::string& name() const { return name_; }
  bool symmetric() const { return symmetric_; }

  /// Adds the tuple (u, v); for symmetric relations also (v, u).
  /// Self-tuples (u == u) are ignored. Duplicate tuples are collapsed on
  /// Finalize().
  void Add(EntityId u, EntityId v);

  /// Sorts and deduplicates adjacency lists. Must be called before queries.
  void Finalize();

  /// Neighbours of `u` (sorted, unique after Finalize()).
  const std::vector<EntityId>& Neighbors(EntityId u) const;

  /// True if the tuple (u, v) is present (after Finalize()).
  bool Contains(EntityId u, EntityId v) const;

  /// Number of stored directed tuples (after Finalize()).
  size_t num_tuples() const { return num_tuples_; }

 private:
  std::string name_;
  bool symmetric_;
  bool finalized_ = false;
  size_t num_tuples_ = 0;
  std::vector<std::vector<EntityId>> adjacency_;
  static const std::vector<EntityId> kEmpty;
};

}  // namespace cem::data

#endif  // CEM_DATA_RELATION_H_
