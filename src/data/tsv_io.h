#ifndef CEM_DATA_TSV_IO_H_
#define CEM_DATA_TSV_IO_H_

#include <memory>
#include <string>

#include "data/dataset.h"
#include "util/status.h"

namespace cem::data {

/// Saves `dataset` (entities, Authored, Cites, ground truth) to a TSV file.
/// Candidate pairs are not saved; rebuild them after loading.
Status SaveDatasetTsv(const Dataset& dataset, const std::string& path);

/// Loads a dataset saved by SaveDatasetTsv. The result is Finalize()d but
/// candidate pairs are NOT built; call BuildCandidatePairs() as needed.
Result<std::unique_ptr<Dataset>> LoadDatasetTsv(const std::string& path);

}  // namespace cem::data

#endif  // CEM_DATA_TSV_IO_H_
