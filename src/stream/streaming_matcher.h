#ifndef CEM_STREAM_STREAMING_MATCHER_H_
#define CEM_STREAM_STREAMING_MATCHER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "core/cover.h"
#include "core/match_set.h"
#include "core/matcher.h"
#include "data/dataset.h"
#include "stream/incremental_cover.h"
#include "util/execution_context.h"

namespace cem::stream {

class StreamingMatcher;

/// Options of the streaming front door.
struct StreamingOptions {
  /// Cover-maintenance knobs (MinHash/banding, loose/tight thresholds).
  IncrementalCoverOptions cover;
  /// Execution context: LSH shard count, and the pool batch ingest uses to
  /// compute signatures in parallel. Null = ExecutionContext::Default().
  /// Matches, cover and counters are bit-identical for any thread and
  /// shard count (for a fixed arrival order).
  const ExecutionContext* context = nullptr;
  /// Safety cap on neighborhood evaluations per convergence drain
  /// (0 = the theoretical n * k^2 bound, like core::MpOptions).
  size_t max_evaluations = 0;
  /// Periodic metrics snapshot: every this many inserts (0 = off) the
  /// matcher refreshes the process metrics registry's stream gauges
  /// (live refs, neighborhoods, matches, max neighborhood size) and
  /// invokes `metrics_hook`, if set — the operational surface a serving
  /// layer or `dedup_tool --metrics-json` watches mid-ingest.
  ///
  /// Threading contract (enforced by a CEM_DCHECK in the publisher): the
  /// hook runs ON THE INGEST THREAD, and ONLY at quiescent points — after
  /// the convergence drain, never mid-patch — so it may read matches(),
  /// cover() and stats() without synchronisation. It must NOT be used to
  /// hand the matcher to other threads: concurrent readers go through
  /// serve::MatchService, which only reads against published epochs (state
  /// a quiescent ingest made visible under its exclusive lock).
  size_t metrics_every_inserts = 0;
  std::function<void(const StreamingMatcher&)> metrics_hook;
};

/// Counters of the matching side of the stream (the ingest side lives in
/// IngestStats). Deterministic for a fixed arrival order.
struct MatchingStats {
  /// Dirty-neighborhood evaluations (pops of the persistent active set).
  size_t neighborhood_evaluations = 0;
  /// Black-box matcher invocations.
  size_t matcher_calls = 0;
  /// Candidate pairs presented to the matcher across re-evaluations (pairs
  /// with both endpoints inside an evaluated neighborhood, counted per
  /// evaluation) — the re-scoring work incremental matching amortizes.
  size_t pairs_rescored = 0;

  friend bool operator==(const MatchingStats&,
                         const MatchingStats&) = default;
};

/// Combined work counters of a StreamingMatcher.
struct StreamingStats {
  IngestStats ingest;
  MatchingStats matching;

  friend bool operator==(const StreamingStats&,
                         const StreamingStats&) = default;
};

/// Serializable image of a StreamingMatcher at a quiescent point (active
/// set drained — the only points the persistence layer snapshots at, so
/// the active set itself is never part of the format).
struct StreamingMatcherState {
  IncrementalCoverState cover;
  /// Sorted data::PairKey values of the converged match set.
  std::vector<uint64_t> match_keys;
  MatchingStats matching;
};

/// Incremental entity matching — the streaming front door of the paper's
/// cover-then-match architecture. Where the batch pipeline freezes the
/// corpus, builds one cover and runs message passing once, a
/// StreamingMatcher ingests references as they arrive: Add()/AddBatch()
/// update MinHash signatures and the sharded LSH index in place, patch the
/// affected neighborhoods of an incrementally maintained total cover
/// (IncrementalCover), enqueue only the dirty neighborhoods, and propagate
/// new matches through the message-passing activation discipline (the
/// Neighbor(.) rule of Algorithm 1) until convergence.
///
/// Convergence guarantee: for a well-behaved matcher (idempotent +
/// monotone, Definition 4), after every reference has been streamed — in
/// ANY arrival order, on any thread/shard count — matches() equals the
/// batch pipeline's RunSmp() fixpoint over a freshly built total cover.
/// Two properties carry the argument: (1) the maintained cover is total
/// w.r.t. Similar and boundary-expanded w.r.t. Coauthor at every point, so
/// every candidate pair is eventually evaluated with its full one-hop
/// relational context, which is all the shipped matchers' groundings see
/// (the same reason canopy- and LSH-built covers yield identical match
/// sets); (2) matches only ever grow, evaluations re-run whenever a
/// neighborhood's membership or in-neighborhood evidence changes, and the
/// active set drains to a fixpoint — the Simple Message Passing loop
/// warm-started from sound evidence, which reaches the same fixpoint it
/// would reach from scratch (Theorem 2). The streaming equivalence suite
/// pins this end to end.
///
/// MMP-style maximal-message exchange is not streamed yet: the drain runs
/// SMP semantics, so the batch reference point is RunSmp, not RunMmp.
class StreamingMatcher {
 public:
  /// `matcher` decides matches and supplies the dataset; it must outlive
  /// this object. The dataset must be finalized with candidate pairs
  /// built (references "arrive" in the sense of becoming visible to
  /// matching — attributes and relations are the dataset's).
  explicit StreamingMatcher(const core::Matcher& matcher,
                            const StreamingOptions& options = {});

  /// Ingests one reference and re-matches to convergence.
  void Add(data::EntityId ref);

  /// Ingests a chunk: signatures are computed in parallel on the execution
  /// context's pool, the index/cover updates apply serially in `refs`
  /// order, and one convergence drain runs at the end — same final state
  /// as Add() per element (order-invariance of the fixpoint), much less
  /// re-matching.
  void AddBatch(const std::vector<data::EntityId>& refs);

  /// The matches over the live references, converged as of the last Add.
  const core::MatchSet& matches() const { return matches_; }

  /// The maintained cover (diagnostics; totality is a maintained
  /// invariant, pinned by the streaming tests).
  const core::Cover& cover() const { return icover_.cover(); }

  size_t num_live() const { return icover_.num_live(); }
  bool is_live(data::EntityId ref) const { return icover_.is_live(ref); }

  /// The matcher's dataset (the corpus references stream out of).
  const data::Dataset& dataset() const { return matcher_.dataset(); }

  /// The wrapped black-box matcher. Const Match() calls are thread-safe
  /// (the grid executor already scores concurrently), which is what lets
  /// serve::MatchService re-score cold query records on reader threads.
  const core::Matcher& core_matcher() const { return matcher_; }

  const StreamingOptions& options() const { return options_; }

  StreamingStats stats() const {
    return {icover_.stats(), matching_stats_};
  }

  // --- ingest-progress observability ---------------------------------------

  /// Convergence drains completed so far. Lock-free reads from any thread;
  /// the counter bumps at the END of each drain, so together with a
  /// non-zero pending_hint() a frozen value means ingest has stopped
  /// making progress — the signal obs::IngestWatchdog watches.
  uint64_t drains_completed() const {
    return drains_completed_.load(std::memory_order_acquire);
  }

  /// Advisory queue depth: how many references the driver still intends
  /// to ingest. The driver sets it around its ingest loop (the matcher
  /// never changes it); setting it also publishes the
  /// `stream_ingest_queue_depth` gauge. Lock-free reads from any thread.
  void set_pending_hint(size_t pending);
  size_t pending_hint() const {
    return pending_hint_.load(std::memory_order_acquire);
  }

  // --- serialization support (persist/) ------------------------------------

  /// The maintained incremental cover, full-state accessors included.
  const IncrementalCover& incremental_cover() const { return icover_; }

  /// True when the active set is drained — every Add()/AddBatch() returns
  /// quiescent, so this only reads false mid-call. Snapshots require it.
  bool quiescent() const { return active_.empty(); }

  /// Restores a snapshot into a freshly constructed matcher (nothing
  /// streamed yet) over the same dataset and options. After a successful
  /// restore, streaming the remaining references produces bit-identical
  /// matches, cover and work counters to the uninterrupted run that the
  /// state was captured from. Returns InvalidArgument on a structurally
  /// inconsistent image.
  Status RestoreState(StreamingMatcherState state);

 private:
  /// Marks a neighborhood active (set semantics, like Algorithm 1's A).
  void Activate(uint32_t n);

  /// Runs the SMP loop until the active set drains.
  void Drain();

  /// Per-insert observability: canopies-touched histogram + insert counter.
  void RecordInsert(size_t canopies_touched);

  /// Publishes registry gauges + fires the metrics hook when the insert
  /// count crossed the next metrics_every_inserts boundary.
  void MaybePublishMetrics();

  /// Candidate pairs fully inside neighborhood `n` (re-scoring work).
  size_t PairsInside(uint32_t n) const;

  const core::Matcher& matcher_;
  StreamingOptions options_;
  IncrementalCover icover_;
  core::MatchSet matches_;
  MatchingStats matching_stats_;
  /// Persistent FIFO active set across Add() calls.
  std::deque<uint32_t> active_;
  std::vector<uint8_t> queued_;  // Grows with the cover.
  /// num_live() at the last metrics publication (metrics_every_inserts).
  size_t metrics_published_at_ = 0;
  /// See drains_completed() / pending_hint().
  std::atomic<uint64_t> drains_completed_{0};
  std::atomic<size_t> pending_hint_{0};
};

}  // namespace cem::stream

#endif  // CEM_STREAM_STREAMING_MATCHER_H_
