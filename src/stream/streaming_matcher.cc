#include "stream/streaming_matcher.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace cem::stream {
namespace {

const ExecutionContext& Resolve(const StreamingOptions& options) {
  return options.context != nullptr ? *options.context
                                    : ExecutionContext::Default();
}

}  // namespace

StreamingMatcher::StreamingMatcher(const core::Matcher& matcher,
                                   const StreamingOptions& options)
    : matcher_(matcher),
      options_(options),
      icover_(matcher.dataset(), options.cover, Resolve(options)) {}

void StreamingMatcher::Activate(uint32_t n) {
  if (n >= queued_.size()) queued_.resize(n + 1, 0);
  if (queued_[n]) return;
  queued_[n] = 1;
  active_.push_back(n);
}

void StreamingMatcher::Add(data::EntityId ref) {
  for (uint32_t n : icover_.Insert(ref)) Activate(n);
  Drain();
}

void StreamingMatcher::AddBatch(const std::vector<data::EntityId>& refs) {
  // Parallel phase: signatures of the whole chunk (references are
  // independent, so the result does not depend on the thread count).
  const ExecutionContext& ctx = Resolve(options_);
  std::vector<std::vector<uint64_t>> signatures(refs.size());
  ParallelFor(ctx.pool(), refs.size(), [&](size_t i) {
    signatures[i] = icover_.ComputeSignature(refs[i]);
  });
  // Serial phase: index/cover updates replay in `refs` order, so the
  // result is bit-identical to one-at-a-time ingest of the same order.
  for (size_t i = 0; i < refs.size(); ++i) {
    for (uint32_t n : icover_.Insert(refs[i], std::move(signatures[i]))) {
      Activate(n);
    }
  }
  Drain();
}

Status StreamingMatcher::RestoreState(StreamingMatcherState state) {
  if (num_live() != 0 || !matches_.empty() || !active_.empty() ||
      matching_stats_.matcher_calls != 0) {
    return FailedPreconditionError(
        "RestoreState needs a freshly constructed StreamingMatcher");
  }
  CEM_RETURN_IF_ERROR(
      icover_.RestoreState(std::move(state.cover), Resolve(options_)));
  for (uint64_t key : state.match_keys) {
    const data::EntityPair pair = data::PairFromKey(key);
    if (pair.a >= pair.b || !matches_.Insert(pair)) {
      return InvalidArgumentError("match keys must be normalised and unique");
    }
  }
  matching_stats_ = state.matching;
  queued_.assign(icover_.cover().size(), 0);
  return OkStatus();
}

size_t StreamingMatcher::PairsInside(uint32_t n) const {
  const data::Dataset& dataset = matcher_.dataset();
  const std::vector<data::EntityId>& entities =
      icover_.cover().neighborhood(n).entities;
  size_t inside = 0;
  for (data::EntityId e : entities) {
    for (data::PairId id : dataset.PairsOfEntity(e)) {
      const data::EntityPair& p = dataset.candidate_pair(id).pair;
      if (p.a == e &&
          std::binary_search(entities.begin(), entities.end(), p.b)) {
        ++inside;
      }
    }
  }
  return inside;
}

void StreamingMatcher::Drain() {
  const core::Cover& cover = icover_.cover();
  // Safety cap, mirroring core::RunSmp: convergence is guaranteed for
  // well-behaved matchers; the cap only guards buggy custom matchers.
  // The incrementally maintained k keeps this O(1) per drain.
  size_t cap = options_.max_evaluations;
  if (cap == 0) {
    const size_t k = icover_.max_neighborhood_size();
    cap = cover.size() * std::max<size_t>(k * k, 16) + 64;
  }
  size_t evaluations = 0;
  while (!active_.empty()) {
    if (evaluations >= cap) {
      CEM_LOG(Warning) << "streaming drain cap reached (" << cap
                       << "); matcher may not be well-behaved";
      break;
    }
    const uint32_t c = active_.front();
    active_.pop_front();
    queued_[c] = 0;
    ++evaluations;
    ++matching_stats_.neighborhood_evaluations;
    ++matching_stats_.matcher_calls;
    matching_stats_.pairs_rescored += PairsInside(c);
    const core::MatchSet mc =
        matcher_.Match(cover.neighborhood(c).entities, matches_);
    const std::vector<data::EntityPair> new_matches =
        mc.Difference(matches_);
    if (new_matches.empty()) continue;
    matches_.InsertAll(mc);
    // Algorithm 1's Neighbor(.) rule: a new match (u, v) re-activates the
    // neighborhoods containing both endpoints (evidence is conditioned on
    // C x C). The just-run neighborhood is skipped: idempotence says it
    // cannot add anything to its own output.
    for (const data::EntityPair& p : new_matches) {
      const std::vector<uint32_t>& ha = icover_.HomesOf(p.a);
      const std::vector<uint32_t>& hb = icover_.HomesOf(p.b);
      size_t i = 0;
      size_t j = 0;
      while (i < ha.size() && j < hb.size()) {
        if (ha[i] == hb[j]) {
          if (ha[i] != c) Activate(ha[i]);
          ++i;
          ++j;
        } else if (ha[i] < hb[j]) {
          ++i;
        } else {
          ++j;
        }
      }
    }
  }
}

}  // namespace cem::stream
