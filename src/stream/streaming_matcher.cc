#include "stream/streaming_matcher.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace cem::stream {
namespace {

const ExecutionContext& Resolve(const StreamingOptions& options) {
  return options.context != nullptr ? *options.context
                                    : ExecutionContext::Default();
}

/// Bucket bounds of the per-insert canopies-touched histogram: counts, not
/// durations — the amortized-work claim says these stay single-digit while
/// the cover grows, so the interesting resolution is at the low end.
std::vector<double> CanopiesTouchedBounds() {
  return {0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128};
}

}  // namespace

StreamingMatcher::StreamingMatcher(const core::Matcher& matcher,
                                   const StreamingOptions& options)
    : matcher_(matcher),
      options_(options),
      icover_(matcher.dataset(), options.cover, Resolve(options)) {}

void StreamingMatcher::Activate(uint32_t n) {
  if (n >= queued_.size()) queued_.resize(n + 1, 0);
  if (queued_[n]) return;
  queued_[n] = 1;
  active_.push_back(n);
}

void StreamingMatcher::Add(data::EntityId ref) {
  const std::vector<uint32_t> dirty = icover_.Insert(ref);
  for (uint32_t n : dirty) Activate(n);
  RecordInsert(dirty.size());
  Drain();
  MaybePublishMetrics();
}

void StreamingMatcher::AddBatch(const std::vector<data::EntityId>& refs) {
  // Parallel phase: signatures of the whole chunk (references are
  // independent, so the result does not depend on the thread count).
  const ExecutionContext& ctx = Resolve(options_);
  std::vector<std::vector<uint64_t>> signatures(refs.size());
  ParallelFor(ctx.pool(), refs.size(), [&](size_t i) {
    signatures[i] = icover_.ComputeSignature(refs[i]);
  });
  // Serial phase: index/cover updates replay in `refs` order, so the
  // result is bit-identical to one-at-a-time ingest of the same order.
  for (size_t i = 0; i < refs.size(); ++i) {
    const std::vector<uint32_t> dirty =
        icover_.Insert(refs[i], std::move(signatures[i]));
    for (uint32_t n : dirty) Activate(n);
    RecordInsert(dirty.size());
  }
  Drain();
  MaybePublishMetrics();
}

void StreamingMatcher::RecordInsert(size_t canopies_touched) {
  static obs::Counter& inserts =
      obs::MetricsRegistry::Global().counter("stream_inserts");
  static obs::Histogram& touched = obs::MetricsRegistry::Global().histogram(
      "stream_canopies_touched_per_insert", CanopiesTouchedBounds());
  inserts.Add(1);
  touched.Record(static_cast<double>(canopies_touched));
}

void StreamingMatcher::MaybePublishMetrics() {
  // The StreamingOptions::metrics_hook contract: publication (and the
  // hook) only ever run at a quiescent point — the drain has finished, so
  // the hook may read matches()/cover()/stats() unsynchronised.
  CEM_DCHECK(quiescent());
  const size_t every = options_.metrics_every_inserts;
  if (every == 0 || num_live() < metrics_published_at_ + every) return;
  metrics_published_at_ = num_live();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.gauge("stream_live_refs").Set(static_cast<double>(num_live()));
  registry.gauge("stream_neighborhoods")
      .Set(static_cast<double>(icover_.cover().size()));
  registry.gauge("stream_matches").Set(static_cast<double>(matches_.size()));
  registry.gauge("stream_max_neighborhood")
      .Set(static_cast<double>(icover_.max_neighborhood_size()));
  if (options_.metrics_hook) options_.metrics_hook(*this);
}

Status StreamingMatcher::RestoreState(StreamingMatcherState state) {
  if (num_live() != 0 || !matches_.empty() || !active_.empty() ||
      matching_stats_.matcher_calls != 0) {
    return FailedPreconditionError(
        "RestoreState needs a freshly constructed StreamingMatcher");
  }
  CEM_RETURN_IF_ERROR(
      icover_.RestoreState(std::move(state.cover), Resolve(options_)));
  for (uint64_t key : state.match_keys) {
    const data::EntityPair pair = data::PairFromKey(key);
    if (pair.a >= pair.b || !matches_.Insert(pair)) {
      return InvalidArgumentError("match keys must be normalised and unique");
    }
  }
  matching_stats_ = state.matching;
  queued_.assign(icover_.cover().size(), 0);
  return OkStatus();
}

size_t StreamingMatcher::PairsInside(uint32_t n) const {
  const data::Dataset& dataset = matcher_.dataset();
  const std::vector<data::EntityId>& entities =
      icover_.cover().neighborhood(n).entities;
  size_t inside = 0;
  for (data::EntityId e : entities) {
    for (data::PairId id : dataset.PairsOfEntity(e)) {
      const data::EntityPair& p = dataset.candidate_pair(id).pair;
      if (p.a == e &&
          std::binary_search(entities.begin(), entities.end(), p.b)) {
        ++inside;
      }
    }
  }
  return inside;
}

void StreamingMatcher::Drain() {
  // Always-on drain-latency histogram (the pre-serve p50/p99 story) plus a
  // flame-chart span when tracing is enabled.
  static obs::Histogram& drain_hist =
      obs::MetricsRegistry::Global().histogram("stream_drain_us");
  CEM_TRACE_TIMED("stream/drain", &drain_hist);
  const size_t evaluations_before = matching_stats_.neighborhood_evaluations;
  const size_t rescored_before = matching_stats_.pairs_rescored;
  const core::Cover& cover = icover_.cover();
  // Safety cap, mirroring core::RunSmp: convergence is guaranteed for
  // well-behaved matchers; the cap only guards buggy custom matchers.
  // The incrementally maintained k keeps this O(1) per drain.
  size_t cap = options_.max_evaluations;
  if (cap == 0) {
    const size_t k = icover_.max_neighborhood_size();
    cap = cover.size() * std::max<size_t>(k * k, 16) + 64;
  }
  size_t evaluations = 0;
  while (!active_.empty()) {
    if (evaluations >= cap) {
      CEM_LOG(Warning) << "streaming drain cap reached (" << cap
                       << "); matcher may not be well-behaved";
      break;
    }
    const uint32_t c = active_.front();
    active_.pop_front();
    queued_[c] = 0;
    ++evaluations;
    ++matching_stats_.neighborhood_evaluations;
    ++matching_stats_.matcher_calls;
    matching_stats_.pairs_rescored += PairsInside(c);
    const core::MatchSet mc =
        matcher_.Match(cover.neighborhood(c).entities, matches_);
    const std::vector<data::EntityPair> new_matches =
        mc.Difference(matches_);
    if (new_matches.empty()) continue;
    matches_.InsertAll(mc);
    // Algorithm 1's Neighbor(.) rule: a new match (u, v) re-activates the
    // neighborhoods containing both endpoints (evidence is conditioned on
    // C x C). The just-run neighborhood is skipped: idempotence says it
    // cannot add anything to its own output.
    for (const data::EntityPair& p : new_matches) {
      const std::vector<uint32_t>& ha = icover_.HomesOf(p.a);
      const std::vector<uint32_t>& hb = icover_.HomesOf(p.b);
      size_t i = 0;
      size_t j = 0;
      while (i < ha.size() && j < hb.size()) {
        if (ha[i] == hb[j]) {
          if (ha[i] != c) Activate(ha[i]);
          ++i;
          ++j;
        } else if (ha[i] < hb[j]) {
          ++i;
        } else {
          ++j;
        }
      }
    }
  }
  // One registry bump per drain with the serial deltas — deterministic for
  // a fixed arrival order, like the MatchingStats they mirror.
  static obs::Counter& evals_counter =
      obs::MetricsRegistry::Global().counter("stream_drain_evaluations");
  static obs::Counter& rescored_counter =
      obs::MetricsRegistry::Global().counter("stream_drain_pairs_rescored");
  evals_counter.Add(matching_stats_.neighborhood_evaluations -
                    evaluations_before);
  rescored_counter.Add(matching_stats_.pairs_rescored - rescored_before);
  // Release-published last: a watchdog observing the new value knows this
  // drain's state updates happened before it.
  drains_completed_.fetch_add(1, std::memory_order_release);
}

void StreamingMatcher::set_pending_hint(size_t pending) {
  pending_hint_.store(pending, std::memory_order_release);
  obs::MetricsRegistry::Global()
      .gauge("stream_ingest_queue_depth")
      .Set(static_cast<double>(pending));
}

}  // namespace cem::stream
