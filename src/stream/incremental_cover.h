#ifndef CEM_STREAM_INCREMENTAL_COVER_H_
#define CEM_STREAM_INCREMENTAL_COVER_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "blocking/lsh_index.h"
#include "blocking/minhash.h"
#include "core/cover.h"
#include "data/dataset.h"
#include "util/execution_context.h"
#include "util/status.h"

namespace cem::stream {

/// Options of the incremental cover maintenance: the same MinHash/banding
/// knobs as the batch LSH cover builder (blocking::LshCoverOptions), so the
/// streamed cover searches the same "nearby" space the batch pipeline does.
struct IncrementalCoverOptions {
  /// MinHash signature scheme. num_hashes must hold lsh.bands * lsh.rows.
  blocking::MinHashOptions minhash;
  /// Banding parameters of the candidate lookup.
  blocking::LshParams lsh;
  /// A colliding reference joins a seed's neighborhood at estimated
  /// Jaccard >= loose.
  double loose = 0.20;
  /// A reference covered by a seed at estimated Jaccard >= tight does not
  /// become a seed itself.
  double tight = 0.55;
};

/// Work counters of the ingest path. All counters are deterministic for a
/// fixed arrival order — independent of thread and shard count — so the
/// bench-regression gate can track them.
struct IngestStats {
  /// References inserted.
  size_t inserts = 0;
  /// Neighborhoods created (the live seed count).
  size_t seeds_created = 0;
  /// Neighborhoods whose membership an insert changed (the "dirty" set
  /// handed to re-matching), summed over inserts — the headline amortized
  /// work measure: mean touched per insert must stay far below the total
  /// neighborhood count.
  size_t canopies_touched = 0;
  /// LSH bucket collisions scanned (candidate generation work).
  size_t lsh_candidates_scanned = 0;
  /// Split candidate pairs repaired into a shared neighborhood (the
  /// streaming counterpart of PatchStats::pairs_patched).
  size_t pairs_patched = 0;
  /// Members added by Coauthor boundary maintenance.
  size_t boundary_additions = 0;
  /// Total (entity, neighborhood) memberships added.
  size_t memberships_added = 0;

  friend bool operator==(const IngestStats&, const IngestStats&) = default;
};

/// Flat, serializable image of an IncrementalCover — what persist/ writes
/// into a snapshot and feeds back through RestoreState(). Everything here
/// is genuine state: none of it is derivable from the dataset alone (the
/// arrival order alone determines it, but replaying the arrival order is
/// exactly the cost a snapshot exists to avoid). The LSH index is the one
/// exception: its buckets are a pure function of the signatures in slot
/// order, so `lsh_buckets` is an optional fast path (loaded per-shard
/// files) and an empty vector means "rebuild from the signatures".
struct IncrementalCoverState {
  /// slot -> reference id, in arrival order.
  std::vector<data::EntityId> slots;
  /// slot -> MinHash signature.
  std::vector<std::vector<uint64_t>> signatures;
  /// slot -> seeded neighborhood id, or IncrementalCover::kNoSeed.
  std::vector<uint32_t> seed_neighborhoods;
  /// Neighborhood id -> sorted member entities.
  std::vector<std::vector<data::EntityId>> neighborhoods;
  /// Core membership rows (canopy/pair-repair members), sorted by entity.
  std::vector<core::MembershipEntry> core_entries;
  /// Full membership rows (core + boundary), sorted by entity.
  std::vector<core::MembershipEntry> full_entries;
  /// Ingest work counters as of the snapshot.
  IngestStats stats;
  /// Per-shard LSH buckets (fast path; see above). Either empty or exactly
  /// one map per shard of the restoring index.
  std::vector<blocking::LshIndex::BucketMap> lsh_buckets;
};

/// Incrementally maintained total cover over the *live* subset of a
/// dataset's author references — the cover half of the streaming ingest
/// subsystem. References arrive one at a time through Insert(); signatures
/// and the sharded banded LSH index grow in place, and only the affected
/// neighborhoods are patched, never rebuilt.
///
/// The maintained cover satisfies, at every point, the two totality
/// properties the batch builders establish with their post-passes
/// (Definition 7):
///  * total w.r.t. Similar — every candidate pair between live references
///    shares a neighborhood in which both endpoints are *core* members
///    (canopy membership or pair repair, mirroring core::PatchPairCoverage);
///  * boundary-expanded w.r.t. Coauthor — every live coauthor of a core
///    member belongs to that member's neighborhoods (mirroring
///    core::ExpandCoauthorBoundary, one round: boundary members do not
///    recurse).
/// Those two properties are what make the message-passing fixpoint agree
/// with a batch rebuild (see streaming_matcher.h); the streamed cover is
/// NOT bit-identical to the batch cover — it does not have to be.
///
/// Not thread-safe: Insert() calls must be serialised by the caller (the
/// StreamingMatcher ingests serially; batch ingest parallelises signature
/// computation, not the index/cover mutation).
class IncrementalCover {
 public:
  /// Sentinel of the seed-neighborhood map: this slot seeds no
  /// neighborhood. Part of the snapshot format (persist/).
  static constexpr uint32_t kNoSeed = 0xffffffffu;

  /// `dataset` must be finalized with candidate pairs built and must
  /// outlive this object. The LSH shard count comes from `ctx`.
  IncrementalCover(const data::Dataset& dataset,
                   const IncrementalCoverOptions& options,
                   const ExecutionContext& ctx);

  /// True if `ref` has been inserted.
  bool is_live(data::EntityId ref) const { return slot_of_.count(ref) > 0; }

  /// Number of live references (== the LSH index's document count).
  size_t num_live() const { return index_.size(); }

  /// Arrival slot of a live reference, or IncrementalCover::kNoSeed if
  /// `ref` has not been inserted. The serving layer maps LSH candidate
  /// slots back to entity ids with slots(); this is the inverse direction
  /// (live query ref -> its own slot, so its self-collision can be
  /// filtered from the probe result).
  uint32_t SlotOf(data::EntityId ref) const {
    const auto it = slot_of_.find(ref);
    return it == slot_of_.end() ? kNoSeed : it->second;
  }

  /// The maintained cover. Neighborhood ids are stable: neighborhoods only
  /// ever grow, none is ever removed.
  const core::Cover& cover() const { return cover_; }

  /// Largest neighborhood size (the paper's k), maintained O(1) so the
  /// per-insert drain never rescans the whole cover for its safety cap.
  size_t max_neighborhood_size() const { return max_neighborhood_size_; }

  /// Sorted ids of the neighborhoods containing `e` (boundary members
  /// included) — the streaming counterpart of core::NeighborIndex, used by
  /// the matcher to re-activate neighborhoods affected by a new match.
  const std::vector<uint32_t>& HomesOf(data::EntityId e) const {
    return full_.HomesOf(e);
  }

  const IngestStats& stats() const { return stats_; }
  const IncrementalCoverOptions& options() const { return options_; }

  /// MinHash signature of `ref`'s blocking tokens. Pure (no state change):
  /// batch ingest computes signatures for a whole chunk in parallel before
  /// the serial inserts.
  std::vector<uint64_t> ComputeSignature(data::EntityId ref) const;

  /// Inserts a live reference with a precomputed signature and patches the
  /// affected neighborhoods. `ref` must be an author reference of the
  /// dataset, not yet live. Returns the ids of the neighborhoods whose
  /// membership changed (sorted, unique; includes a newly created
  /// neighborhood, if any) — the dirty set re-matching must re-enqueue.
  std::vector<uint32_t> Insert(data::EntityId ref,
                               std::vector<uint64_t> signature);

  /// Convenience: computes the signature inline.
  std::vector<uint32_t> Insert(data::EntityId ref) {
    return Insert(ref, ComputeSignature(ref));
  }

  // --- serialization support (persist/) ------------------------------------
  // Const views of the complete mutable state, in declaration order of the
  // members they expose; together with options() and stats() they let a
  // snapshot writer enumerate everything RestoreState() needs. Pinned
  // against observable behavior by the persist tests.

  /// Arrival order: slot -> reference id. slots()[i] was the (i+1)-th live
  /// reference.
  const std::vector<data::EntityId>& slots() const { return slots_; }

  /// slot -> MinHash signature (what ComputeSignature returned at insert).
  const std::vector<std::vector<uint64_t>>& signatures() const {
    return signatures_;
  }

  /// slot -> id of the neighborhood it seeds, or kNoSeed.
  const std::vector<uint32_t>& seed_neighborhoods() const {
    return seed_neighborhood_;
  }

  /// The sharded banded LSH index over the live signatures.
  const blocking::LshIndex& lsh_index() const { return index_; }

  /// Core membership (canopy members and pair repairs) — the pair-patch
  /// bookkeeping: pair-coverage decisions test this, never boundary
  /// membership.
  const core::CoverMembership& core_membership() const { return core_; }

  /// Full membership (core + boundary): mirrors cover() exactly.
  const core::CoverMembership& full_membership() const { return full_; }

  /// Restores a snapshot into a freshly constructed cover (num_live() must
  /// be 0) built over the same dataset and options. The LSH index is
  /// installed from state.lsh_buckets when they match this cover's shard
  /// count, else rebuilt from the signatures in parallel on `ctx` — either
  /// way every subsequent Insert() behaves bit-identically to the original
  /// uninterrupted run. Returns InvalidArgument (state untouched aside
  /// from moves) when the image is structurally inconsistent.
  Status RestoreState(IncrementalCoverState state,
                      const ExecutionContext& ctx);

 private:
  /// Adds `e` to neighborhood `n`. Core members (canopy/pair-repair) pull
  /// their live coauthors in as boundary members — the incremental
  /// ExpandCoauthorBoundary. Records changed neighborhoods in `dirty`.
  void AddMember(uint32_t n, data::EntityId e, bool core,
                 std::vector<uint32_t>& dirty);

  const data::Dataset& dataset_;
  IncrementalCoverOptions options_;
  blocking::MinHasher hasher_;
  blocking::LshIndex index_;
  core::Cover cover_;
  /// Core membership: canopy members and pair repairs — what the batch
  /// patch pass sees. Pair-coverage decisions test this, never boundary
  /// membership, mirroring the batch order (patch, then expand).
  core::CoverMembership core_;
  /// Full membership (core + boundary): what the cover actually contains.
  core::CoverMembership full_;
  /// slot -> reference id, in arrival order.
  std::vector<data::EntityId> slots_;
  std::unordered_map<data::EntityId, uint32_t> slot_of_;
  /// slot -> MinHash signature.
  std::vector<std::vector<uint64_t>> signatures_;
  /// slot -> id of the neighborhood it seeds, or kNoSeed.
  std::vector<uint32_t> seed_neighborhood_;
  size_t max_neighborhood_size_ = 0;
  IngestStats stats_;
};

}  // namespace cem::stream

#endif  // CEM_STREAM_INCREMENTAL_COVER_H_
