#include "stream/incremental_cover.h"

#include <algorithm>
#include <utility>

#include "blocking/blocking_tokens.h"
#include "util/logging.h"

namespace cem::stream {

IncrementalCover::IncrementalCover(const data::Dataset& dataset,
                                   const IncrementalCoverOptions& options,
                                   const ExecutionContext& ctx)
    : dataset_(dataset),
      options_(options),
      hasher_(options.minhash),
      index_(options.lsh, hasher_.num_hashes(), ctx.num_shards()) {
  CEM_CHECK(options.tight >= options.loose)
      << "tight threshold must be at least the loose threshold";
}

std::vector<uint64_t> IncrementalCover::ComputeSignature(
    data::EntityId ref) const {
  // Hash-only hot path: token hashes stream into a reused scratch buffer
  // (no token strings are materialised), then the salted min-reductions
  // run on the dispatched kernel. Bit-identical to hashing the
  // AuthorBlockingTokens strings.
  thread_local std::vector<uint64_t> hashes;
  hashes.clear();
  blocking::AppendAuthorBlockingTokenHashes(dataset_.entity(ref), &hashes);
  std::vector<uint64_t> signature(hasher_.num_hashes());
  hasher_.SignatureFromHashes(hashes.data(), hashes.size(), signature.data());
  return signature;
}

void IncrementalCover::AddMember(uint32_t n, data::EntityId e, bool core,
                                 std::vector<uint32_t>& dirty) {
  // Core status upgrades are tracked even when the entity is already a
  // (boundary) member: pair-coverage decisions must see it, and its live
  // coauthors must be pulled in — but the cover itself does not change, so
  // the neighborhood is not dirtied by the upgrade alone.
  const bool newly_core = core && core_.Add(e, n);
  if (full_.Add(e, n)) {
    cover_.AddEntityTo(n, e);
    max_neighborhood_size_ = std::max(max_neighborhood_size_,
                                      cover_.neighborhood(n).entities.size());
    dirty.push_back(n);
    ++stats_.memberships_added;
    if (!core) ++stats_.boundary_additions;
  }
  if (newly_core) {
    // Incremental ExpandCoauthorBoundary, one round: coauthors join as
    // boundary members and do not recurse — mirroring the batch pass,
    // which expands the patched membership snapshot exactly once.
    for (data::EntityId c : dataset_.Coauthors(e)) {
      if (is_live(c)) AddMember(n, c, /*core=*/false, dirty);
    }
  }
}

Status IncrementalCover::RestoreState(IncrementalCoverState state,
                                      const ExecutionContext& ctx) {
  if (num_live() != 0 || !cover_.empty()) {
    return FailedPreconditionError(
        "RestoreState needs a freshly constructed IncrementalCover");
  }
  // Structural validation up front: a snapshot passes file checksums before
  // it gets here, so failures mean a format/logic bug (or hand-built
  // state), and the error must surface as a skippable status — recovery
  // falls back to an older snapshot — never a crash.
  const size_t n = state.slots.size();
  if (state.signatures.size() != n || state.seed_neighborhoods.size() != n ||
      state.stats.inserts != n) {
    return InvalidArgumentError("inconsistent slot-indexed state sizes");
  }
  for (size_t slot = 0; slot < n; ++slot) {
    const data::EntityId ref = state.slots[slot];
    if (ref >= dataset_.num_entities() ||
        dataset_.entity(ref).type != data::EntityType::kAuthorRef) {
      return InvalidArgumentError("slot holds a non-author-ref entity");
    }
    if (state.signatures[slot].size() != hasher_.num_hashes()) {
      return InvalidArgumentError("signature length mismatch");
    }
    const uint32_t seed = state.seed_neighborhoods[slot];
    if (seed != kNoSeed && seed >= state.neighborhoods.size()) {
      return InvalidArgumentError("seed neighborhood out of range");
    }
  }
  size_t cover_memberships = 0;
  for (const std::vector<data::EntityId>& members : state.neighborhoods) {
    cover_memberships += members.size();
  }
  size_t full_memberships = 0;
  for (const core::MembershipEntry& e : state.full_entries) {
    full_memberships += e.homes.size();
  }
  if (full_memberships != cover_memberships) {
    return InvalidArgumentError("full membership disagrees with the cover");
  }
  if (!state.lsh_buckets.empty() &&
      state.lsh_buckets.size() != index_.num_shards()) {
    return InvalidArgumentError("LSH bucket shard-count mismatch");
  }

  slots_ = std::move(state.slots);
  signatures_ = std::move(state.signatures);
  seed_neighborhood_ = std::move(state.seed_neighborhoods);
  slot_of_.reserve(n);
  for (uint32_t slot = 0; slot < n; ++slot) {
    if (!slot_of_.emplace(slots_[slot], slot).second) {
      return InvalidArgumentError("reference appears in two slots");
    }
  }
  if (state.lsh_buckets.empty()) {
    index_.AddDocuments(signatures_, ctx);
  } else {
    index_.RestoreSnapshot(std::move(state.lsh_buckets), signatures_, ctx);
  }
  for (std::vector<data::EntityId>& members : state.neighborhoods) {
    cover_.Add(std::move(members));
  }
  core_ = core::CoverMembership::FromEntries(std::move(state.core_entries));
  full_ = core::CoverMembership::FromEntries(std::move(state.full_entries));
  max_neighborhood_size_ = cover_.MaxNeighborhoodSize();
  stats_ = state.stats;
  return OkStatus();
}

std::vector<uint32_t> IncrementalCover::Insert(
    data::EntityId ref, std::vector<uint64_t> signature) {
  CEM_CHECK(dataset_.entity(ref).type == data::EntityType::kAuthorRef)
      << "streaming ingest takes author references";
  CEM_CHECK(!is_live(ref)) << "reference " << ref << " inserted twice";

  std::vector<uint32_t> dirty;
  const uint32_t slot = static_cast<uint32_t>(index_.size());
  slots_.push_back(ref);
  slot_of_.emplace(ref, slot);
  seed_neighborhood_.push_back(kNoSeed);
  index_.AddDocument(slot, signature);
  signatures_.push_back(std::move(signature));

  // Candidate generation: live references sharing a band bucket, scored by
  // estimated Jaccard (sorted by slot — deterministic for any shard count).
  const std::vector<uint32_t> collisions = index_.Candidates(slot);
  stats_.lsh_candidates_scanned += collisions.size();
  struct LooseCandidate {
    uint32_t slot;
    double estimate;
  };
  std::vector<LooseCandidate> loose;
  for (uint32_t other : collisions) {
    const double estimate = blocking::MinHasher::EstimateJaccard(
        signatures_[slot], signatures_[other]);
    if (estimate >= options_.loose) loose.push_back({other, estimate});
  }

  // Canopy step: join the canopy of every seed within `loose`; a seed
  // within `tight` also absorbs the newcomer (it never becomes a seed).
  bool seeded_out = false;
  for (const LooseCandidate& cand : loose) {
    const uint32_t n = seed_neighborhood_[cand.slot];
    if (n == kNoSeed) continue;
    AddMember(n, ref, /*core=*/true, dirty);
    if (cand.estimate >= options_.tight) seeded_out = true;
  }
  if (!seeded_out) {
    // The newcomer seeds a neighborhood holding everything loose-near it.
    // Unlike the batch greedy pass, existing seeds are never demoted —
    // the streamed cover may hold more (overlapping) neighborhoods than a
    // batch build, which affects work, never totality.
    const uint32_t n = static_cast<uint32_t>(cover_.Add({}));
    seed_neighborhood_[slot] = n;
    ++stats_.seeds_created;
    AddMember(n, ref, /*core=*/true, dirty);
    for (const LooseCandidate& cand : loose) {
      AddMember(n, slots_[cand.slot], /*core=*/true, dirty);
    }
  }

  // Pair-coverage step: repair the newly-live candidate pairs the canopy
  // step split, in canonical pair order — the incremental
  // core::PatchPairCoverage, sharing its membership machinery and repair
  // rule (add p.b to the first core home of p.a).
  for (data::PairId id : dataset_.PairsOfEntity(ref)) {
    const data::EntityPair& p = dataset_.candidate_pair(id).pair;
    const data::EntityId other = p.a == ref ? p.b : p.a;
    if (!is_live(other)) continue;
    if (core_.Together(p.a, p.b)) continue;
    CEM_CHECK(core_.Contains(p.a)) << "live refs must be core-covered";
    AddMember(core_.FirstHome(p.a), p.b, /*core=*/true, dirty);
    ++stats_.pairs_patched;
  }

  // Boundary step, mirror direction: the newcomer is a coauthor of
  // already-live core members, so it joins their neighborhoods.
  for (data::EntityId c : dataset_.Coauthors(ref)) {
    if (!is_live(c)) continue;
    // AddMember only ever adds `ref` as a boundary member here, which
    // cannot grow c's *core* homes mid-loop, so the reference is stable.
    const std::vector<uint32_t>& homes = core_.HomesOf(c);
    for (uint32_t n : homes) {
      AddMember(n, ref, /*core=*/false, dirty);
    }
  }

  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  ++stats_.inserts;
  stats_.canopies_touched += dirty.size();
  return dirty;
}

}  // namespace cem::stream
