#ifndef CEM_TEXT_LEVENSHTEIN_H_
#define CEM_TEXT_LEVENSHTEIN_H_

#include <cstddef>
#include <string_view>

namespace cem::text {

/// Edit distance (insert/delete/substitute, unit costs).
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// Normalised edit similarity: 1 - distance / max(|a|, |b|); 1.0 for two
/// empty strings.
double LevenshteinSimilarity(std::string_view a, std::string_view b);

}  // namespace cem::text

#endif  // CEM_TEXT_LEVENSHTEIN_H_
