#ifndef CEM_TEXT_SIMILARITY_LEVEL_H_
#define CEM_TEXT_SIMILARITY_LEVEL_H_

#include <string_view>

namespace cem::text {

/// Discretised similarity level of the paper's `similar(e1, e2, score)`
/// predicate (Appendix B): scores are discretised to {1, 2, 3}, 3 being the
/// highest similarity. We add level 0 for "not similar at all" — such pairs
/// are non-candidates and carry no match variable.
enum class SimilarityLevel : int {
  kNone = 0,
  kLow = 1,
  kMedium = 2,
  kHigh = 3,
};

/// Thresholds that bucket a continuous similarity score into levels.
/// score >= high  -> kHigh; >= medium -> kMedium; >= low -> kLow; else kNone.
///
/// The defaults put near-exact names at level 3 (matchable on similarity
/// alone, weight +12.75), confident-but-ambiguous names at level 2
/// (needing two coauthor groundings at the Appendix-B weights) and a wide
/// "weakly similar" band at level 1 (needing one grounding — the level
/// whose inference chains the message-passing schemes exist to complete).
struct LevelThresholds {
  double low = 0.74;
  double medium = 0.93;
  double high = 0.97;
};

/// Buckets `score` (expected in [0,1]) into a SimilarityLevel.
SimilarityLevel Discretize(double score, const LevelThresholds& thresholds);

/// Continuous similarity between two person names, abbreviation-aware:
/// * last names are compared with Jaro-Winkler;
/// * a first name that is a single initial (possibly dotted, e.g. "J.")
///   matching the other first name's leading letter compares as 0.85 —
///   similar, but not as strong as a full-string match (this is exactly the
///   HEPTH ambiguity the paper describes);
/// * otherwise first names use Jaro-Winkler.
/// The result is a weighted combination (last name dominates).
double NameSimilarity(std::string_view first_a, std::string_view last_a,
                      std::string_view first_b, std::string_view last_b);

/// NameSimilarity + Discretize with the given thresholds.
SimilarityLevel NameSimilarityLevel(std::string_view first_a,
                                    std::string_view last_a,
                                    std::string_view first_b,
                                    std::string_view last_b,
                                    const LevelThresholds& thresholds);

}  // namespace cem::text

#endif  // CEM_TEXT_SIMILARITY_LEVEL_H_
