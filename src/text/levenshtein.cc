#include "text/levenshtein.h"

#include <algorithm>
#include <vector>

namespace cem::text {

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  // Two-row dynamic program over the shorter string.
  std::vector<size_t> prev(a.size() + 1);
  std::vector<size_t> cur(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) prev[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    cur[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      const size_t sub_cost = a[i - 1] == b[j - 1] ? 0 : 1;
      cur[i] = std::min({prev[i] + 1, cur[i - 1] + 1, prev[i - 1] + sub_cost});
    }
    std::swap(prev, cur);
  }
  return prev[a.size()];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  const size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) / longest;
}

}  // namespace cem::text
