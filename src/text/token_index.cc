#include "text/token_index.h"

#include <algorithm>

#include "util/logging.h"

namespace cem::text {

TokenIndex::TokenIndex(uint32_t num_shards)
    : shards_(std::max(num_shards, 1u)) {}

void TokenIndex::AddDocument(uint32_t doc_id,
                             const std::vector<std::string>& tokens) {
  CEM_CHECK(doc_id == corpus_.num_docs())
      << "documents must be appended densely in increasing id order";
  corpus_.AppendDoc([&](TokenCorpus::DocBuilder& builder) {
    for (const std::string& t : tokens) builder.EmitLower(t);
  });
  for (const TokenRef& ref : corpus_.doc(doc_id)) {
    shards_[ShardOf(ref)].postings[KeyOf(ref)].push_back(doc_id);
  }
}

void TokenIndex::AddDocuments(
    const std::vector<std::vector<std::string>>& token_sets,
    const ExecutionContext& ctx) {
  CEM_CHECK(empty()) << "AddDocuments on a non-empty index";
  corpus_ = TokenCorpus::Build(
      token_sets.size(),
      [&](size_t doc, TokenCorpus::DocBuilder& builder) {
        for (const std::string& t : token_sets[doc]) builder.EmitLower(t);
      },
      ctx);
  InsertPostings(0, ctx);
}

void TokenIndex::AddDocuments(TokenCorpus corpus, const ExecutionContext& ctx) {
  CEM_CHECK(empty()) << "AddDocuments on a non-empty index";
  corpus_ = std::move(corpus);
  InsertPostings(0, ctx);
}

void TokenIndex::InsertPostings(size_t first_doc, const ExecutionContext& ctx) {
  // Partition the (token, doc) stream by owning shard — one cheap linear
  // append pass, in doc order, so each shard's list replays serial
  // AddDocument order exactly.
  struct Entry {
    const TokenRef* token;
    uint32_t doc;
  };
  const size_t num_docs = corpus_.num_docs();
  std::vector<std::vector<Entry>> per_shard(shards_.size());
  for (auto& list : per_shard) {
    list.reserve(corpus_.num_tokens() / shards_.size() + 1);
  }
  for (size_t doc = first_doc; doc < num_docs; ++doc) {
    for (const TokenRef& ref : corpus_.doc(doc)) {
      per_shard[ShardOf(ref)].push_back({&ref, static_cast<uint32_t>(doc)});
    }
  }
  // Parallel insertion: each worker owns whole shards, so the (expensive)
  // postings-map building needs no synchronisation.
  ParallelFor(ctx.pool(), shards_.size(), [&](size_t s) {
    Shard& shard = shards_[s];
    for (const Entry& entry : per_shard[s]) {
      shard.postings[KeyOf(*entry.token)].push_back(entry.doc);
    }
  });
}

std::vector<TokenIndex::Neighbor> TokenIndex::Candidates(
    uint32_t doc_id, double min_score, size_t* num_scored) const {
  CEM_CHECK(doc_id < corpus_.num_docs());
  // One lookup per token: collect the postings lists, then reserve the
  // overlap map from their summed sizes (bounds the number of distinct
  // overlapping documents) so it never rehashes mid-scan.
  const std::span<const TokenRef> my_tokens = corpus_.doc(doc_id);
  size_t postings_total = 0;
  std::vector<const std::vector<uint32_t>*> lists;
  lists.reserve(my_tokens.size());
  for (const TokenRef& ref : my_tokens) {
    const Shard& shard = shards_[ShardOf(ref)];
    auto it = shard.postings.find(KeyOf(ref));
    if (it == shard.postings.end()) continue;
    lists.push_back(&it->second);
    postings_total += it->second.size();
  }
  std::unordered_map<uint32_t, uint32_t> overlap;
  overlap.reserve(std::min(postings_total, corpus_.num_docs()));
  for (const std::vector<uint32_t>* list : lists) {
    for (uint32_t other : *list) {
      if (other != doc_id) ++overlap[other];
    }
  }
  if (num_scored != nullptr) *num_scored = overlap.size();
  std::vector<Neighbor> out;
  out.reserve(overlap.size());
  const double my_count = static_cast<double>(my_tokens.size());
  for (const auto& [other, shared] : overlap) {
    const double denom =
        std::max<double>(my_count, corpus_.doc(other).size());
    const double score = denom == 0 ? 0.0 : shared / denom;
    if (score >= min_score) out.push_back({other, score});
  }
  std::sort(out.begin(), out.end(),
            [](const Neighbor& a, const Neighbor& b) {
              return a.doc_id < b.doc_id;
            });
  return out;
}

size_t TokenIndex::num_tokens() const {
  size_t total = 0;
  for (const Shard& shard : shards_) total += shard.postings.size();
  return total;
}

size_t TokenIndex::num_postings() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    for (const auto& [token, docs] : shard.postings) total += docs.size();
  }
  return total;
}

}  // namespace cem::text
