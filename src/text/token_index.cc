#include "text/token_index.h"

#include <algorithm>
#include <set>

#include "util/logging.h"
#include "util/string_util.h"

namespace cem::text {

void TokenIndex::AddDocument(uint32_t doc_id,
                             const std::vector<std::string>& tokens) {
  if (doc_id >= doc_token_counts_.size()) {
    doc_token_counts_.resize(doc_id + 1, 0);
    doc_tokens_.resize(doc_id + 1);
  }
  CEM_CHECK(doc_token_counts_[doc_id] == 0) << "document added twice";
  std::set<std::string> unique;
  for (const std::string& t : tokens) unique.insert(ToLower(t));
  for (const std::string& t : unique) {
    postings_[t].push_back(doc_id);
    doc_tokens_[doc_id].push_back(t);
  }
  doc_token_counts_[doc_id] = static_cast<uint32_t>(unique.size());
}

std::vector<TokenIndex::Neighbor> TokenIndex::Candidates(
    uint32_t doc_id, double min_score, size_t* num_scored) const {
  CEM_CHECK(doc_id < doc_token_counts_.size());
  // One lookup per token: collect the postings lists, then reserve the
  // overlap map from their summed sizes (bounds the number of distinct
  // overlapping documents) so it never rehashes mid-scan.
  size_t postings_total = 0;
  std::vector<const std::vector<uint32_t>*> lists;
  lists.reserve(doc_tokens_[doc_id].size());
  for (const std::string& t : doc_tokens_[doc_id]) {
    auto it = postings_.find(t);
    if (it == postings_.end()) continue;
    lists.push_back(&it->second);
    postings_total += it->second.size();
  }
  std::unordered_map<uint32_t, uint32_t> overlap;
  overlap.reserve(std::min(postings_total, doc_token_counts_.size()));
  for (const std::vector<uint32_t>* list : lists) {
    for (uint32_t other : *list) {
      if (other != doc_id) ++overlap[other];
    }
  }
  if (num_scored != nullptr) *num_scored = overlap.size();
  std::vector<Neighbor> out;
  out.reserve(overlap.size());
  const double my_count = doc_token_counts_[doc_id];
  for (const auto& [other, shared] : overlap) {
    const double denom = std::max<double>(my_count, doc_token_counts_[other]);
    const double score = denom == 0 ? 0.0 : shared / denom;
    if (score >= min_score) out.push_back({other, score});
  }
  std::sort(out.begin(), out.end(),
            [](const Neighbor& a, const Neighbor& b) {
              return a.doc_id < b.doc_id;
            });
  return out;
}

}  // namespace cem::text
