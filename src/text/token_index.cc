#include "text/token_index.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace cem::text {
namespace {

/// Lower-cases, sorts and deduplicates one document's token set — the
/// canonical per-document form both insertion paths produce.
std::vector<std::string> NormalizeTokens(
    const std::vector<std::string>& tokens) {
  std::vector<std::string> unique;
  unique.reserve(tokens.size());
  for (const std::string& t : tokens) unique.push_back(ToLower(t));
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
  return unique;
}

}  // namespace

TokenIndex::TokenIndex(uint32_t num_shards)
    : shards_(std::max(num_shards, 1u)) {}

void TokenIndex::AddDocument(uint32_t doc_id,
                             const std::vector<std::string>& tokens) {
  if (doc_id >= doc_token_counts_.size()) {
    doc_token_counts_.resize(doc_id + 1, 0);
    doc_tokens_.resize(doc_id + 1);
  }
  CEM_CHECK(doc_token_counts_[doc_id] == 0) << "document added twice";
  std::vector<std::string> unique = NormalizeTokens(tokens);
  for (const std::string& t : unique) {
    shards_[ShardOf(t)].postings[t].push_back(doc_id);
  }
  doc_token_counts_[doc_id] = static_cast<uint32_t>(unique.size());
  doc_tokens_[doc_id] = std::move(unique);
}

void TokenIndex::AddDocuments(
    const std::vector<std::vector<std::string>>& token_sets,
    const ExecutionContext& ctx) {
  CEM_CHECK(doc_token_counts_.empty()) << "AddDocuments on a non-empty index";
  const size_t num_docs = token_sets.size();
  doc_tokens_.resize(num_docs);
  doc_token_counts_.resize(num_docs, 0);
  // Parallel phase: normalise every document's token set.
  ParallelFor(ctx.pool(), num_docs, [&](size_t doc) {
    doc_tokens_[doc] = NormalizeTokens(token_sets[doc]);
    doc_token_counts_[doc] = static_cast<uint32_t>(doc_tokens_[doc].size());
  });
  // Partition the (token, doc) stream by owning shard — one cheap linear
  // append pass, in doc order, so each shard's list replays serial
  // AddDocument order exactly.
  struct Entry {
    const std::string* token;
    uint32_t doc;
  };
  std::vector<std::vector<Entry>> per_shard(shards_.size());
  size_t total_postings = 0;
  for (size_t doc = 0; doc < num_docs; ++doc) {
    total_postings += doc_tokens_[doc].size();
  }
  for (auto& list : per_shard) {
    list.reserve(total_postings / shards_.size() + 1);
  }
  for (size_t doc = 0; doc < num_docs; ++doc) {
    for (const std::string& t : doc_tokens_[doc]) {
      per_shard[ShardOf(t)].push_back({&t, static_cast<uint32_t>(doc)});
    }
  }
  // Parallel insertion: each worker owns whole shards, so the (expensive)
  // postings-map building needs no synchronisation.
  ParallelFor(ctx.pool(), shards_.size(), [&](size_t s) {
    Shard& shard = shards_[s];
    for (const Entry& entry : per_shard[s]) {
      shard.postings[*entry.token].push_back(entry.doc);
    }
  });
}

std::vector<TokenIndex::Neighbor> TokenIndex::Candidates(
    uint32_t doc_id, double min_score, size_t* num_scored) const {
  CEM_CHECK(doc_id < doc_token_counts_.size());
  // One lookup per token: collect the postings lists, then reserve the
  // overlap map from their summed sizes (bounds the number of distinct
  // overlapping documents) so it never rehashes mid-scan.
  size_t postings_total = 0;
  std::vector<const std::vector<uint32_t>*> lists;
  lists.reserve(doc_tokens_[doc_id].size());
  for (const std::string& t : doc_tokens_[doc_id]) {
    const Shard& shard = shards_[ShardOf(t)];
    auto it = shard.postings.find(t);
    if (it == shard.postings.end()) continue;
    lists.push_back(&it->second);
    postings_total += it->second.size();
  }
  std::unordered_map<uint32_t, uint32_t> overlap;
  overlap.reserve(std::min(postings_total, doc_token_counts_.size()));
  for (const std::vector<uint32_t>* list : lists) {
    for (uint32_t other : *list) {
      if (other != doc_id) ++overlap[other];
    }
  }
  if (num_scored != nullptr) *num_scored = overlap.size();
  std::vector<Neighbor> out;
  out.reserve(overlap.size());
  const double my_count = doc_token_counts_[doc_id];
  for (const auto& [other, shared] : overlap) {
    const double denom = std::max<double>(my_count, doc_token_counts_[other]);
    const double score = denom == 0 ? 0.0 : shared / denom;
    if (score >= min_score) out.push_back({other, score});
  }
  std::sort(out.begin(), out.end(),
            [](const Neighbor& a, const Neighbor& b) {
              return a.doc_id < b.doc_id;
            });
  return out;
}

size_t TokenIndex::num_tokens() const {
  size_t total = 0;
  for (const Shard& shard : shards_) total += shard.postings.size();
  return total;
}

size_t TokenIndex::num_postings() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    for (const auto& [token, docs] : shard.postings) total += docs.size();
  }
  return total;
}

}  // namespace cem::text
