#include "text/jaro_winkler.h"

#include <algorithm>
#include <vector>

#include "util/logging.h"

namespace cem::text {

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a == b) return 1.0;

  const size_t len_a = a.size();
  const size_t len_b = b.size();
  // Match window: characters count as matching if within this distance.
  const size_t window =
      std::max(len_a, len_b) / 2 == 0 ? 0 : std::max(len_a, len_b) / 2 - 1;

  // Reused per-thread scratch: this runs once per scored candidate pair,
  // and two heap allocations per call dominated the profile. Plain char
  // flags beat vector<bool>'s bit addressing in the inner window scan.
  thread_local std::vector<char> matched_a_buf;
  thread_local std::vector<char> matched_b_buf;
  matched_a_buf.assign(len_a, 0);
  matched_b_buf.assign(len_b, 0);
  char* const matched_a = matched_a_buf.data();
  char* const matched_b = matched_b_buf.data();

  size_t matches = 0;
  for (size_t i = 0; i < len_a; ++i) {
    const size_t lo = i > window ? i - window : 0;
    const size_t hi = std::min(len_b, i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (matched_b[j] || a[i] != b[j]) continue;
      matched_a[i] = true;
      matched_b[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;

  // Count transpositions among matched characters.
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < len_a; ++i) {
    if (!matched_a[i]) continue;
    while (!matched_b[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }

  const double m = static_cast<double>(matches);
  return (m / len_a + m / len_b + (m - transpositions / 2.0) / m) / 3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale) {
  CEM_CHECK(prefix_scale >= 0.0 && prefix_scale <= 0.25);
  const double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  const size_t max_prefix = std::min<size_t>(4, std::min(a.size(), b.size()));
  while (prefix < max_prefix && a[prefix] == b[prefix]) ++prefix;
  return jaro + prefix * prefix_scale * (1.0 - jaro);
}

}  // namespace cem::text
