#include "text/jaccard.h"

#include <algorithm>

#include "util/string_util.h"

namespace cem::text {
namespace {

/// |A ∩ B| of two sorted, deduplicated ranges by linear merge.
template <typename It>
size_t SortedIntersectionSize(It a, It a_end, It b, It b_end) {
  size_t intersection = 0;
  while (a != a_end && b != b_end) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      ++intersection;
      ++a;
      ++b;
    }
  }
  return intersection;
}

}  // namespace

double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b) {
  // Sort-merge instead of tree sets: same set semantics (duplicates
  // collapse), one allocation per side, linear intersection scan.
  std::vector<std::string> sa = a;
  std::vector<std::string> sb = b;
  std::sort(sa.begin(), sa.end());
  sa.erase(std::unique(sa.begin(), sa.end()), sa.end());
  std::sort(sb.begin(), sb.end());
  sb.erase(std::unique(sb.begin(), sb.end()), sb.end());
  if (sa.empty() && sb.empty()) return 1.0;
  const size_t intersection =
      SortedIntersectionSize(sa.begin(), sa.end(), sb.begin(), sb.end());
  const size_t uni = sa.size() + sb.size() - intersection;
  return static_cast<double>(intersection) / static_cast<double>(uni);
}

double HashedJaccard(std::span<const TokenRef> a, std::span<const TokenRef> b) {
  if (a.empty() && b.empty()) return 1.0;
  // Corpus documents are already sorted + deduplicated by token view (see
  // TokenCorpus); merge on the views directly — no copies, no hashing.
  auto ai = a.begin(), bi = b.begin();
  size_t intersection = 0;
  while (ai != a.end() && bi != b.end()) {
    const std::string_view va = ai->view(), vb = bi->view();
    if (va < vb) {
      ++ai;
    } else if (vb < va) {
      ++bi;
    } else {
      ++intersection;
      ++ai;
      ++bi;
    }
  }
  const size_t uni = a.size() + b.size() - intersection;
  return static_cast<double>(intersection) / static_cast<double>(uni);
}

double TokenJaccard(std::string_view a, std::string_view b) {
  return JaccardSimilarity(SplitWhitespace(a), SplitWhitespace(b));
}

double NgramJaccard(std::string_view a, std::string_view b, size_t n) {
  return JaccardSimilarity(CharNgrams(a, n), CharNgrams(b, n));
}

}  // namespace cem::text
