#include "text/jaccard.h"

#include <algorithm>
#include <set>

#include "util/string_util.h"

namespace cem::text {

double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b) {
  std::set<std::string> sa(a.begin(), a.end());
  std::set<std::string> sb(b.begin(), b.end());
  if (sa.empty() && sb.empty()) return 1.0;
  size_t intersection = 0;
  for (const std::string& t : sa) intersection += sb.count(t);
  const size_t uni = sa.size() + sb.size() - intersection;
  return static_cast<double>(intersection) / static_cast<double>(uni);
}

double TokenJaccard(std::string_view a, std::string_view b) {
  return JaccardSimilarity(SplitWhitespace(a), SplitWhitespace(b));
}

double NgramJaccard(std::string_view a, std::string_view b, size_t n) {
  return JaccardSimilarity(CharNgrams(a, n), CharNgrams(b, n));
}

}  // namespace cem::text
