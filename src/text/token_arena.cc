#include "text/token_arena.h"

#include <algorithm>
#include <cctype>

#include "obs/metrics.h"
#include "util/logging.h"

namespace cem::text {

/// One chunk: the token-byte arena plus the SoA token table of up to
/// kChunkDocs documents. Exactly one Build() worker fills a chunk, so no
/// member needs synchronisation.
struct TokenChunk {
  Arena arena;
  std::vector<TokenRef> tokens;
  /// doc_begin[i] is the first token of local document i; one extra entry
  /// closes the last document.
  std::vector<uint32_t> doc_begin{0};
};

namespace {

/// Sorts the open document's tokens lexicographically and drops duplicate
/// strings — the canonical per-document form (matches the historical
/// TokenIndex normalisation, so overlap counts stay bit-identical).
void FinishDoc(TokenChunk& chunk) {
  const auto begin = chunk.tokens.begin() + chunk.doc_begin.back();
  const auto end = chunk.tokens.end();
  std::sort(begin, end, [](const TokenRef& a, const TokenRef& b) {
    return a.view() < b.view();
  });
  const auto last = std::unique(
      begin, end,
      [](const TokenRef& a, const TokenRef& b) { return a.view() == b.view(); });
  chunk.tokens.erase(last, chunk.tokens.end());
  chunk.doc_begin.push_back(static_cast<uint32_t>(chunk.tokens.size()));
}

char AsciiLower(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

}  // namespace

std::string_view TokenCorpus::DocBuilder::InternLower(std::string_view text) {
  char* dst = chunk_->arena.AllocateBytes(text.size());
  for (size_t i = 0; i < text.size(); ++i) dst[i] = AsciiLower(text[i]);
  return {dst, text.size()};
}

void TokenCorpus::DocBuilder::EmitAlias(const char* data, size_t size) {
  chunk_->tokens.push_back({data, static_cast<uint32_t>(size),
                            Fnv1a64({data, size})});
}

void TokenCorpus::DocBuilder::Emit(std::string_view token) {
  const std::string_view stored = chunk_->arena.CopyString(token);
  chunk_->tokens.push_back({stored.data(), static_cast<uint32_t>(stored.size()),
                            Fnv1a64(stored)});
}

void TokenCorpus::DocBuilder::EmitLower(std::string_view token) {
  const std::string_view stored = InternLower(token);
  chunk_->tokens.push_back({stored.data(), static_cast<uint32_t>(stored.size()),
                            Fnv1a64(stored)});
}

TokenCorpus::TokenCorpus() = default;
TokenCorpus::~TokenCorpus() = default;
TokenCorpus::TokenCorpus(TokenCorpus&&) noexcept = default;
TokenCorpus& TokenCorpus::operator=(TokenCorpus&&) noexcept = default;

TokenCorpus TokenCorpus::Build(size_t num_docs, const TokenizeFn& tokenize,
                               const ExecutionContext& ctx) {
  TokenCorpus corpus;
  corpus.num_docs_ = num_docs;
  const size_t num_chunks = (num_docs + kChunkDocs - 1) / kChunkDocs;
  corpus.chunks_.reserve(num_chunks);
  for (size_t c = 0; c < num_chunks; ++c) {
    corpus.chunks_.push_back(std::make_unique<TokenChunk>());
  }
  // One worker per chunk: chunk contents depend only on (doc range,
  // tokenize), never on scheduling, so the layout is thread-count-proof.
  ParallelFor(ctx.pool(), num_chunks, [&](size_t c) {
    TokenChunk& chunk = *corpus.chunks_[c];
    const size_t begin = c * kChunkDocs;
    const size_t end = std::min(num_docs, begin + kChunkDocs);
    chunk.doc_begin.reserve(end - begin + 1);
    DocBuilder builder(&chunk);
    for (size_t doc = begin; doc < end; ++doc) {
      tokenize(doc, builder);
      FinishDoc(chunk);
    }
  });
  static obs::Gauge& arena_gauge =
      obs::MetricsRegistry::Global().gauge("blocking_token_arena_bytes");
  arena_gauge.Set(static_cast<double>(corpus.arena_bytes()));
  return corpus;
}

void TokenCorpus::AppendDoc(const std::function<void(DocBuilder&)>& tokenize) {
  if (num_docs_ % kChunkDocs == 0) {
    chunks_.push_back(std::make_unique<TokenChunk>());
  }
  TokenChunk& chunk = *chunks_.back();
  DocBuilder builder(&chunk);
  tokenize(builder);
  FinishDoc(chunk);
  ++num_docs_;
}

size_t TokenCorpus::num_tokens() const {
  size_t total = 0;
  for (const auto& chunk : chunks_) total += chunk->tokens.size();
  return total;
}

size_t TokenCorpus::arena_bytes() const {
  size_t total = 0;
  for (const auto& chunk : chunks_) total += chunk->arena.bytes_allocated();
  return total;
}

std::span<const TokenRef> TokenCorpus::doc(size_t doc) const {
  CEM_CHECK(doc < num_docs_) << "document id out of range";
  const TokenChunk& chunk = *chunks_[doc / kChunkDocs];
  const size_t local = doc % kChunkDocs;
  const uint32_t begin = chunk.doc_begin[local];
  const uint32_t end = chunk.doc_begin[local + 1];
  return {chunk.tokens.data() + begin, end - begin};
}

}  // namespace cem::text
