#ifndef CEM_TEXT_JACCARD_H_
#define CEM_TEXT_JACCARD_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace cem::text {

/// Jaccard similarity |A ∩ B| / |A ∪ B| over two token multisets (treated as
/// sets). Returns 1.0 when both are empty.
double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b);

/// Jaccard over whitespace tokens of the two strings.
double TokenJaccard(std::string_view a, std::string_view b);

/// Jaccard over character n-grams (default trigrams) — the cheap distance
/// used by the canopy pass.
double NgramJaccard(std::string_view a, std::string_view b, size_t n = 3);

}  // namespace cem::text

#endif  // CEM_TEXT_JACCARD_H_
