#ifndef CEM_TEXT_JACCARD_H_
#define CEM_TEXT_JACCARD_H_

#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "text/token_arena.h"

namespace cem::text {

/// Jaccard similarity |A ∩ B| / |A ∪ B| over two token multisets (treated as
/// sets). Returns 1.0 when both are empty.
double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b);

/// Jaccard over two corpus documents (already sorted + deduplicated — see
/// TokenCorpus): a linear merge over the arena slices, no allocation.
/// Equals JaccardSimilarity over the same token sets.
double HashedJaccard(std::span<const TokenRef> a, std::span<const TokenRef> b);

/// Jaccard over whitespace tokens of the two strings.
double TokenJaccard(std::string_view a, std::string_view b);

/// Jaccard over character n-grams (default trigrams) — the cheap distance
/// used by the canopy pass.
double NgramJaccard(std::string_view a, std::string_view b, size_t n = 3);

}  // namespace cem::text

#endif  // CEM_TEXT_JACCARD_H_
