#ifndef CEM_TEXT_TOKEN_ARENA_H_
#define CEM_TEXT_TOKEN_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "util/arena.h"
#include "util/execution_context.h"
#include "util/hash.h"

namespace cem::text {

/// One token of one document: a slice of the corpus arena plus the
/// precomputed FNV-1a base hash every downstream consumer (MinHash
/// salting, postings sharding, hashed Jaccard) reuses instead of
/// re-walking the bytes.
struct TokenRef {
  const char* data = nullptr;
  uint32_t size = 0;
  /// Fnv1a64(view()), computed once at tokenisation time.
  uint64_t hash = 0;

  std::string_view view() const { return {data, size}; }
};

/// Internal per-chunk storage of TokenCorpus (defined in token_arena.cc).
struct TokenChunk;

/// Flat, arena-backed token storage for a document corpus — the hot-path
/// replacement for `std::vector<std::vector<std::string>>` token sets.
/// Token bytes live contiguously in per-chunk arenas; each document is a
/// span of TokenRef slices, normalised (lower-cased at emit time, sorted,
/// deduplicated) exactly like text::TokenIndex's historical per-document
/// form, so postings overlap counts and MinHash signatures are
/// bit-identical to the string-vector layout they replace.
///
/// Documents are grouped into fixed-size chunks (kChunkDocs). The chunk
/// boundaries depend only on the document count, so the parallel Build()
/// produces byte-identical storage for any thread count — each chunk is
/// filled by exactly one worker.
class TokenCorpus {
 public:
  /// Documents per chunk. Fixed (never derived from the thread count):
  /// chunking is part of the deterministic layout, not a scheduling knob.
  static constexpr size_t kChunkDocs = 512;

  // Special members live in the .cc: TokenChunk is incomplete here.
  TokenCorpus();
  ~TokenCorpus();
  TokenCorpus(const TokenCorpus&) = delete;
  TokenCorpus& operator=(const TokenCorpus&) = delete;
  TokenCorpus(TokenCorpus&&) noexcept;
  TokenCorpus& operator=(TokenCorpus&&) noexcept;

  /// Emission interface handed to tokenisers for one document. Tokens may
  /// alias bytes previously interned into the same document's chunk (the
  /// trigram pattern: intern the lower-cased name once, emit n-gram
  /// slices of it), so a k-character name costs k bytes, not 3(k-2).
  class DocBuilder {
   public:
    /// Copies `text` lower-cased into the arena and returns the stable
    /// storage view for later aliasing. Does not emit a token.
    std::string_view InternLower(std::string_view text);

    /// Emits a token aliasing `size` bytes at `data` — which must point
    /// into storage stable for the corpus lifetime (normally a previous
    /// InternLower result).
    void EmitAlias(const char* data, size_t size);

    /// Copies `token` (already canonical bytes) into the arena and emits.
    void Emit(std::string_view token);

    /// Lower-cases `token` into the arena and emits — the generic path
    /// for caller-supplied token sets of unknown case.
    void EmitLower(std::string_view token);

   private:
    friend class TokenCorpus;
    explicit DocBuilder(TokenChunk* chunk) : chunk_(chunk) {}
    TokenChunk* chunk_;
  };

  using TokenizeFn = std::function<void(size_t doc, DocBuilder& builder)>;

  /// Builds the corpus of `num_docs` documents by invoking `tokenize` for
  /// each, chunks in parallel on `ctx`. The result is bit-identical for
  /// any thread count. Also publishes the arena footprint to the
  /// `blocking_token_arena_bytes` gauge.
  static TokenCorpus Build(size_t num_docs, const TokenizeFn& tokenize,
                           const ExecutionContext& ctx);

  /// Appends one document serially (the streaming / incremental-index
  /// path); equivalent to a Build() that tokenised it last.
  void AppendDoc(const std::function<void(DocBuilder&)>& tokenize);

  size_t num_docs() const { return num_docs_; }
  /// Total tokens across documents, after per-document deduplication.
  size_t num_tokens() const;
  /// Bytes handed out by the token-byte arenas (the gauge's value).
  size_t arena_bytes() const;

  /// The normalised (lower-cased, sorted, unique) tokens of document `doc`.
  std::span<const TokenRef> doc(size_t doc) const;

 private:
  std::vector<std::unique_ptr<TokenChunk>> chunks_;
  size_t num_docs_ = 0;
};

}  // namespace cem::text

#endif  // CEM_TEXT_TOKEN_ARENA_H_
