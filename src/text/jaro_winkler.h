#ifndef CEM_TEXT_JARO_WINKLER_H_
#define CEM_TEXT_JARO_WINKLER_H_

#include <string_view>

namespace cem::text {

/// Jaro similarity in [0, 1]; 1 means identical, 0 means no common
/// characters. Symmetric.
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler similarity in [0, 1] — the string measure the paper uses for
/// the `similar` predicate (Appendix B). Boosts Jaro by a prefix bonus of up
/// to 4 shared leading characters.
///
/// `prefix_scale` is the standard Winkler scaling factor (default 0.1; must
/// be <= 0.25 for the result to stay within [0, 1]).
double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale = 0.1);

}  // namespace cem::text

#endif  // CEM_TEXT_JARO_WINKLER_H_
