#include "text/similarity_level.h"

#include <algorithm>
#include <cctype>
#include <string>

#include "text/jaro_winkler.h"
#include "util/string_util.h"

namespace cem::text {
namespace {

/// Returns the name with a trailing '.' removed and lower-cased.
std::string Canonical(std::string_view name) {
  std::string out = ToLower(StripWhitespace(name));
  if (!out.empty() && out.back() == '.') out.pop_back();
  return out;
}

bool IsInitial(const std::string& canonical_name) {
  return canonical_name.size() == 1 &&
         std::isalpha(static_cast<unsigned char>(canonical_name[0]));
}

/// First-name similarity with abbreviation handling.
double FirstNameSimilarity(std::string_view a, std::string_view b) {
  const std::string ca = Canonical(a);
  const std::string cb = Canonical(b);
  if (ca.empty() || cb.empty()) return 0.7;  // Missing data: weak evidence.
  if (ca == cb) return 1.0;
  const bool a_initial = IsInitial(ca);
  const bool b_initial = IsInitial(cb);
  if (a_initial || b_initial) {
    // "J." vs "John": consistent initial is similar but ambiguous.
    return ca[0] == cb[0] ? 0.85 : 0.0;
  }
  return JaroWinklerSimilarity(ca, cb);
}

}  // namespace

SimilarityLevel Discretize(double score, const LevelThresholds& thresholds) {
  if (score >= thresholds.high) return SimilarityLevel::kHigh;
  if (score >= thresholds.medium) return SimilarityLevel::kMedium;
  if (score >= thresholds.low) return SimilarityLevel::kLow;
  return SimilarityLevel::kNone;
}

double NameSimilarity(std::string_view first_a, std::string_view last_a,
                      std::string_view first_b, std::string_view last_b) {
  const double last = JaroWinklerSimilarity(Canonical(last_a),
                                            Canonical(last_b));
  // A weak last-name match cannot be rescued by the first name.
  if (last < 0.75) return last * 0.6;
  const double first = FirstNameSimilarity(first_a, first_b);
  return 0.6 * last + 0.4 * first;
}

SimilarityLevel NameSimilarityLevel(std::string_view first_a,
                                    std::string_view last_a,
                                    std::string_view first_b,
                                    std::string_view last_b,
                                    const LevelThresholds& thresholds) {
  return Discretize(NameSimilarity(first_a, last_a, first_b, last_b),
                    thresholds);
}

}  // namespace cem::text
