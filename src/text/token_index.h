#ifndef CEM_TEXT_TOKEN_INDEX_H_
#define CEM_TEXT_TOKEN_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "text/token_arena.h"
#include "util/execution_context.h"

namespace cem::text {

/// Inverted index from token -> document ids, used as the "cheap distance"
/// of the Canopies algorithm [McCallum et al., KDD 2000]: candidate
/// neighbours of a document are the documents sharing at least one token,
/// scored by overlap.
///
/// Documents live in a flat arena-backed TokenCorpus (see token_arena.h):
/// postings keys are (view, hash) slices into the corpus storage, so the
/// index holds no per-token heap strings and lookups reuse each token's
/// precomputed FNV hash instead of re-hashing bytes.
///
/// Postings are partitioned into `num_shards` shards by token hash, so bulk
/// insertion (AddDocuments) parallelises with each shard owned by exactly
/// one worker — no locks — and concurrent read-only Candidates() calls are
/// always safe. The shard count never changes what the index contains:
/// postings membership, Candidates() and the `num_scored` counters are
/// bit-identical for any shard count.
class TokenIndex {
 public:
  /// `num_shards` partitions the token space (clamped to at least 1).
  explicit TokenIndex(uint32_t num_shards = 1);

  /// Adds a document; `doc_id` must equal num_documents() — documents are
  /// appended densely in increasing id order. Tokens are lower-cased;
  /// duplicate tokens within a document are collapsed.
  void AddDocument(uint32_t doc_id, const std::vector<std::string>& tokens);

  /// Bulk-adds documents 0..token_sets.size()-1 in parallel on `ctx`:
  /// token sets are normalised per document, then each shard inserts the
  /// postings it owns in document order. The index must be empty.
  /// Equivalent to calling AddDocument for each document in increasing id
  /// order.
  void AddDocuments(const std::vector<std::vector<std::string>>& token_sets,
                    const ExecutionContext& ctx);

  /// Takes ownership of a pre-built corpus (the arena hot path — callers
  /// tokenise straight into a TokenCorpus, no string vectors) and builds
  /// postings over it in parallel on `ctx`. The index must be empty.
  void AddDocuments(TokenCorpus corpus, const ExecutionContext& ctx);

  /// Number of documents added.
  size_t num_documents() const { return corpus_.num_docs(); }
  /// Alias of num_documents(): the corpus size as this index sees it, O(1),
  /// mirroring blocking::LshIndex — callers should never have to infer it
  /// from postings contents.
  size_t size() const { return num_documents(); }
  bool empty() const { return corpus_.num_docs() == 0; }

  struct Neighbor {
    uint32_t doc_id;
    /// Token-overlap score: |tokens(a) ∩ tokens(b)| / max(|a|,|b|).
    double score;
  };

  /// Returns documents sharing >= 1 token with `doc_id` whose overlap score
  /// is at least `min_score`, excluding `doc_id` itself. Order is by doc id.
  /// When `num_scored` is non-null it receives the number of distinct
  /// documents scored (the blocking work done, before the min_score filter).
  std::vector<Neighbor> Candidates(uint32_t doc_id, double min_score,
                                   size_t* num_scored = nullptr) const;

  /// Tokens shared between index entry construction calls are interned; this
  /// returns the number of distinct tokens seen.
  size_t num_tokens() const;

  /// Total postings entries (sum of postings-list lengths): the work the
  /// index build does, independent of thread and shard count.
  size_t num_postings() const;

  size_t num_shards() const { return shards_.size(); }

  /// The normalised (lower-cased, sorted, unique) tokens of document `doc`
  /// — the authoritative state the snapshot format persists (one string
  /// per TokenRef, byte-identical to the historical string-vector form).
  /// Postings are a pure function of these: the loader rebuilds them with
  /// AddDocuments, which also re-derives the shard partition instead of
  /// trusting a saved hash assignment.
  std::span<const TokenRef> doc_tokens(size_t doc) const {
    return corpus_.doc(doc);
  }

  /// The backing corpus (for footprint reporting).
  const TokenCorpus& corpus() const { return corpus_; }

 private:
  /// Postings key: a token's corpus slice plus its precomputed hash, so
  /// map operations never re-walk token bytes to hash them.
  struct HashedToken {
    std::string_view view;
    uint64_t hash;
    bool operator==(const HashedToken& other) const {
      return view == other.view;
    }
  };
  struct HashedTokenHash {
    size_t operator()(const HashedToken& t) const { return t.hash; }
  };
  using PostingsMap =
      std::unordered_map<HashedToken, std::vector<uint32_t>, HashedTokenHash>;

  static HashedToken KeyOf(const TokenRef& ref) {
    return {ref.view(), ref.hash};
  }

  /// Shard owning a token (by its precomputed FNV hash; the shard
  /// assignment never leaks into any query result).
  size_t ShardOf(const TokenRef& ref) const {
    return ref.hash % shards_.size();
  }

  /// Inserts postings for documents [first_doc, num_docs) of corpus_ —
  /// the bulk path partitions the (token, doc) stream by owning shard and
  /// builds shards in parallel on `ctx`.
  void InsertPostings(size_t first_doc, const ExecutionContext& ctx);

  struct Shard {
    /// Token -> member doc ids, in insertion (= doc id) order.
    PostingsMap postings;
  };

  std::vector<Shard> shards_;
  TokenCorpus corpus_;
};

}  // namespace cem::text

#endif  // CEM_TEXT_TOKEN_INDEX_H_
