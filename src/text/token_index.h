#ifndef CEM_TEXT_TOKEN_INDEX_H_
#define CEM_TEXT_TOKEN_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cem::text {

/// Inverted index from token -> document ids, used as the "cheap distance"
/// of the Canopies algorithm [McCallum et al., KDD 2000]: candidate
/// neighbours of a document are the documents sharing at least one token,
/// scored by overlap.
class TokenIndex {
 public:
  TokenIndex() = default;

  /// Adds a document; `doc_id` values should be dense (0..n-1). Tokens are
  /// lower-cased; duplicate tokens within a document are collapsed.
  void AddDocument(uint32_t doc_id, const std::vector<std::string>& tokens);

  /// Number of documents added.
  size_t num_documents() const { return doc_token_counts_.size(); }

  struct Neighbor {
    uint32_t doc_id;
    /// Token-overlap score: |tokens(a) ∩ tokens(b)| / max(|a|,|b|).
    double score;
  };

  /// Returns documents sharing >= 1 token with `doc_id` whose overlap score
  /// is at least `min_score`, excluding `doc_id` itself. Order is by doc id.
  /// When `num_scored` is non-null it receives the number of distinct
  /// documents scored (the blocking work done, before the min_score filter).
  std::vector<Neighbor> Candidates(uint32_t doc_id, double min_score,
                                   size_t* num_scored = nullptr) const;

  /// Tokens shared between index entry construction calls are interned; this
  /// returns the number of distinct tokens seen.
  size_t num_tokens() const { return postings_.size(); }

 private:
  std::unordered_map<std::string, std::vector<uint32_t>> postings_;
  std::vector<std::vector<std::string>> doc_tokens_;
  std::vector<uint32_t> doc_token_counts_;
};

}  // namespace cem::text

#endif  // CEM_TEXT_TOKEN_INDEX_H_
