#ifndef CEM_TEXT_TOKEN_INDEX_H_
#define CEM_TEXT_TOKEN_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/execution_context.h"

namespace cem::text {

/// Inverted index from token -> document ids, used as the "cheap distance"
/// of the Canopies algorithm [McCallum et al., KDD 2000]: candidate
/// neighbours of a document are the documents sharing at least one token,
/// scored by overlap.
///
/// Postings are partitioned into `num_shards` shards by token hash, so bulk
/// insertion (AddDocuments) parallelises with each shard owned by exactly
/// one worker — no locks — and concurrent read-only Candidates() calls are
/// always safe. The shard count never changes what the index contains:
/// postings membership, Candidates() and the `num_scored` counters are
/// bit-identical for any shard count.
class TokenIndex {
 public:
  /// `num_shards` partitions the token space (clamped to at least 1).
  explicit TokenIndex(uint32_t num_shards = 1);

  /// Adds a document; `doc_id` values should be dense (0..n-1). Tokens are
  /// lower-cased; duplicate tokens within a document are collapsed.
  void AddDocument(uint32_t doc_id, const std::vector<std::string>& tokens);

  /// Bulk-adds documents 0..token_sets.size()-1 in parallel on `ctx`:
  /// token sets are normalised per document, then each shard inserts the
  /// postings it owns in document order. The index must be empty.
  /// Equivalent to calling AddDocument for each document in increasing id
  /// order.
  void AddDocuments(const std::vector<std::vector<std::string>>& token_sets,
                    const ExecutionContext& ctx);

  /// Number of documents added.
  size_t num_documents() const { return doc_token_counts_.size(); }
  /// Alias of num_documents(): the corpus size as this index sees it, O(1),
  /// mirroring blocking::LshIndex — callers should never have to infer it
  /// from postings contents.
  size_t size() const { return num_documents(); }
  bool empty() const { return doc_token_counts_.empty(); }

  struct Neighbor {
    uint32_t doc_id;
    /// Token-overlap score: |tokens(a) ∩ tokens(b)| / max(|a|,|b|).
    double score;
  };

  /// Returns documents sharing >= 1 token with `doc_id` whose overlap score
  /// is at least `min_score`, excluding `doc_id` itself. Order is by doc id.
  /// When `num_scored` is non-null it receives the number of distinct
  /// documents scored (the blocking work done, before the min_score filter).
  std::vector<Neighbor> Candidates(uint32_t doc_id, double min_score,
                                   size_t* num_scored = nullptr) const;

  /// Tokens shared between index entry construction calls are interned; this
  /// returns the number of distinct tokens seen.
  size_t num_tokens() const;

  /// Total postings entries (sum of postings-list lengths): the work the
  /// index build does, independent of thread and shard count.
  size_t num_postings() const;

  size_t num_shards() const { return shards_.size(); }

  /// Per-document normalised (lower-cased, sorted, unique) token sets — the
  /// authoritative state the snapshot format persists. Postings are a pure
  /// function of these: the loader rebuilds them with AddDocuments (token
  /// normalisation is idempotent), which also re-derives the shard
  /// partition instead of trusting a saved std::hash assignment.
  const std::vector<std::vector<std::string>>& doc_tokens() const {
    return doc_tokens_;
  }

 private:
  /// Shard owning `token` (std::hash is stable within a process; the shard
  /// assignment never leaks into any query result).
  size_t ShardOf(const std::string& token) const {
    return std::hash<std::string>{}(token) % shards_.size();
  }

  struct Shard {
    /// Token -> member doc ids, in insertion (= doc id) order.
    std::unordered_map<std::string, std::vector<uint32_t>> postings;
  };

  std::vector<Shard> shards_;
  std::vector<std::vector<std::string>> doc_tokens_;
  std::vector<uint32_t> doc_token_counts_;
};

}  // namespace cem::text

#endif  // CEM_TEXT_TOKEN_INDEX_H_
