#include "eval/metrics.h"

#include <cstdio>

namespace cem::eval {

std::string PrMetrics::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "P=%.3f R=%.3f F1=%.3f (tp=%zu fp=%zu)",
                precision, recall, f1, true_positives, false_positives);
  return buf;
}

PrMetrics ComputePr(const data::Dataset& dataset,
                    const core::MatchSet& matches) {
  PrMetrics m;
  size_t labelled = 0;
  for (uint64_t key : matches.keys()) {
    const data::EntityPair p = data::PairFromKey(key);
    const data::Entity& a = dataset.entity(p.a);
    const data::Entity& b = dataset.entity(p.b);
    if (a.truth == data::kNoTruth || b.truth == data::kNoTruth) continue;
    ++labelled;
    if (dataset.IsTrueMatch(p)) {
      ++m.true_positives;
    } else {
      ++m.false_positives;
    }
  }
  m.total_true = dataset.CountTrueMatches();
  m.precision = labelled == 0
                    ? 1.0
                    : static_cast<double>(m.true_positives) / labelled;
  m.recall = m.total_true == 0
                 ? 1.0
                 : static_cast<double>(m.true_positives) / m.total_true;
  m.f1 = (m.precision + m.recall) == 0
             ? 0.0
             : 2.0 * m.precision * m.recall / (m.precision + m.recall);
  return m;
}

double Soundness(const core::MatchSet& produced,
                 const core::MatchSet& reference) {
  if (produced.empty()) return 1.0;
  return static_cast<double>(produced.IntersectionSize(reference)) /
         static_cast<double>(produced.size());
}

double Completeness(const core::MatchSet& produced,
                    const core::MatchSet& reference) {
  if (reference.empty()) return 1.0;
  return static_cast<double>(produced.IntersectionSize(reference)) /
         static_cast<double>(reference.size());
}

}  // namespace cem::eval
