#include "eval/upper_bound.h"

#include "mln/grounding.h"

namespace cem::eval {

core::MatchSet UpperBoundMatches(const mln::MlnMatcher& matcher,
                                 const core::MatchSet* reference) {
  const data::Dataset& dataset = matcher.dataset();
  const mln::PairGraph& graph = matcher.pair_graph();
  const mln::MlnWeights& weights = matcher.weights();

  auto is_positive = [&](data::EntityPair p) {
    return reference != nullptr ? reference->Contains(p)
                                : dataset.IsTrueMatch(p);
  };

  core::MatchSet out;
  for (data::PairId id = 0; id < graph.num_nodes(); ++id) {
    const mln::PairGraph::Node& node = graph.node(id);
    double score = graph.GlobalTheta(id, weights);
    for (data::PairId q : graph.node(id).links) {
      if (is_positive(graph.node(q).pair)) score += weights.w_coauthor;
    }
    // Maximal-set tie-break: matched at score exactly zero.
    if (score >= 0.0) out.Insert(node.pair);
  }
  return out;
}

}  // namespace cem::eval
