#ifndef CEM_EVAL_UPPER_BOUND_H_
#define CEM_EVAL_UPPER_BOUND_H_

#include "core/match_set.h"
#include "mln/mln_matcher.h"

namespace cem::eval {

/// The paper's UB scheme (Section 6.1): for each entity pair, give the MLN
/// the ground truth about *all other* pairs as evidence and decide that one
/// pair. By supermodularity this over-approximates the recall of the
/// (infeasible) full MLN run, so it serves as the upper-bound series of
/// Figures 3(a)-(c). Not an algorithm — it reads the ground truth.
///
/// With every other variable clamped, MAP inference closes over a single
/// free variable, so the decision is exact and cheap: pair p is matched iff
///   w_sim[level(p)] + w_co * (shared coauthors) +
///   w_co * (link partners whose ground truth is "match") >= 0,
/// with the Type-II tie-break matching at equality.
///
/// If `reference` is non-null it replaces the ground truth as the clamping
/// assignment. Supermodularity then gives the *provable* containment
///   UpperBoundMatches(m, &S) ⊇ S  whenever S = m.MatchAll()
/// (each matched pair stays matched when everything else it relies on is
/// clamped the same way) — the formal property behind the paper's "UB
/// recall bounds full-run recall" argument, which the property tests check.
core::MatchSet UpperBoundMatches(const mln::MlnMatcher& matcher,
                                 const core::MatchSet* reference = nullptr);

}  // namespace cem::eval

#endif  // CEM_EVAL_UPPER_BOUND_H_
