#include "eval/experiment.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <unordered_set>
#include <utility>

#include "blocking/lsh_cover.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

namespace cem::eval {

double BenchScale() {
  const char* raw = std::getenv("CEM_BENCH_SCALE");
  if (raw == nullptr) return 1.0;
  const double parsed = std::atof(raw);
  if (parsed <= 0.0) return 1.0;
  return std::clamp(parsed, 0.05, 100.0);
}

core::BlockingStrategy BenchBlocking() {
  const char* raw = std::getenv("CEM_BLOCKING");
  if (raw == nullptr) return core::BlockingStrategy::kCanopy;
  const auto parsed = core::ParseBlockingStrategy(raw);
  if (!parsed.has_value()) {
    CEM_LOG(Warning) << "unknown CEM_BLOCKING value '" << raw
                     << "', using canopy";
    return core::BlockingStrategy::kCanopy;
  }
  return *parsed;
}

namespace {

Workload MakeBibWorkload(std::string name, const data::BibConfig& config,
                         core::BlockingStrategy blocking,
                         const ExecutionContext& ctx) {
  Workload w;
  w.name = std::move(name);
  w.blocking = blocking;
  w.dataset = data::GenerateBibDataset(config, {}, ctx);
  w.cover = blocking::MakeCoverBuilder(blocking)->Build(*w.dataset, ctx);
  return w;
}

}  // namespace

Workload MakeHepthWorkload(double scale) {
  return MakeHepthWorkload(scale, BenchBlocking());
}

Workload MakeHepthWorkload(double scale, core::BlockingStrategy blocking,
                           const ExecutionContext& ctx) {
  return MakeBibWorkload("HEPTH-like", data::BibConfig::HepthLike(scale),
                         blocking, ctx);
}

Workload MakeDblpWorkload(double scale) {
  return MakeDblpWorkload(scale, BenchBlocking());
}

Workload MakeDblpWorkload(double scale, core::BlockingStrategy blocking,
                          const ExecutionContext& ctx) {
  return MakeBibWorkload("DBLP-like", data::BibConfig::DblpLike(scale),
                         blocking, ctx);
}

CostModelMatcher::CostModelMatcher(const core::Matcher& inner,
                                   double cost_scale_us, double exponent)
    : inner_(&inner),
      inner_probabilistic_(
          dynamic_cast<const core::ProbabilisticMatcher*>(&inner)),
      cost_scale_us_(cost_scale_us),
      exponent_(exponent) {}

size_t CostModelMatcher::CountFreeVariables(
    const std::vector<data::EntityId>& entities,
    const core::MatchSet& positive, const core::MatchSet& negative) const {
  const data::Dataset& dataset = inner_->dataset();
  const std::unordered_set<data::EntityId> members(entities.begin(),
                                                   entities.end());
  size_t free_vars = 0;
  for (data::EntityId e : entities) {
    for (data::PairId id : dataset.PairsOfEntity(e)) {
      const data::EntityPair p = dataset.candidate_pair(id).pair;
      if (p.a != e || !members.count(p.b)) continue;
      if (positive.Contains(p) || negative.Contains(p)) continue;
      ++free_vars;
    }
  }
  return free_vars;
}

void CostModelMatcher::Burn(size_t free_vars, double discount) const {
  const double cost_us = discount * cost_scale_us_ *
                         std::pow(static_cast<double>(free_vars), exponent_);
  // Burn CPU for cost_us microseconds (busy loop: we model compute, not
  // I/O wait, so the simulated grid's makespan accounting stays honest).
  Timer burn;
  volatile double sink = 0.0;
  while (burn.ElapsedSeconds() * 1e6 < cost_us) {
    for (int i = 0; i < 64; ++i) sink = sink + std::sqrt(i + 1.0);
  }
  charged_nanos_.fetch_add(static_cast<uint64_t>(cost_us * 1e3),
                           std::memory_order_relaxed);
}

core::MatchSet CostModelMatcher::Match(
    const std::vector<data::EntityId>& entities,
    const core::MatchSet& positive, const core::MatchSet& negative) const {
  Burn(CountFreeVariables(entities, positive, negative), 1.0);
  return inner_->Match(entities, positive, negative);
}

core::MatchSet CostModelMatcher::MatchConditioned(
    const std::vector<data::EntityId>& entities,
    const core::MatchSet& positive, const core::MatchSet& negative) const {
  // Conditioned re-solves are charged on the neighborhood size proxy (the
  // exact free-variable count would cost more to compute than the
  // discounted charge it produces).
  Burn(entities.size(), kConditionedDiscount);
  return inner_->MatchConditioned(entities, positive, negative);
}

double CostModelMatcher::Score(const core::MatchSet& matches) const {
  CEM_CHECK(inner_probabilistic_ != nullptr)
      << "Score requires a probabilistic inner matcher";
  return inner_probabilistic_->Score(matches);
}

double CostModelMatcher::ScoreDelta(
    const core::MatchSet& current,
    const std::vector<data::EntityPair>& additions) const {
  CEM_CHECK(inner_probabilistic_ != nullptr)
      << "ScoreDelta requires a probabilistic inner matcher";
  return inner_probabilistic_->ScoreDelta(current, additions);
}

double CostModelMatcher::charged_seconds() const {
  return static_cast<double>(charged_nanos_.load()) * 1e-9;
}

StreamingReplayResult ReplayStreaming(const core::Matcher& matcher,
                                      uint64_t arrival_seed,
                                      size_t chunk_size,
                                      const stream::StreamingOptions& options) {
  StreamingReplayResult result;
  std::vector<data::EntityId> refs = matcher.dataset().author_refs();
  Rng rng(arrival_seed);
  rng.Shuffle(refs);
  stream::StreamingMatcher streaming(matcher, options);
  if (chunk_size == 0) {
    for (data::EntityId ref : refs) {
      streaming.Add(ref);
      ++result.num_chunks;
    }
  } else {
    for (size_t start = 0; start < refs.size(); start += chunk_size) {
      const size_t end = std::min(refs.size(), start + chunk_size);
      streaming.AddBatch({refs.begin() + start, refs.begin() + end});
      ++result.num_chunks;
    }
  }
  result.matches = streaming.matches();
  result.stats = streaming.stats();
  result.num_refs = refs.size();
  return result;
}

SchemeResults RunAllSchemes(const core::Matcher& matcher,
                            const core::Cover& cover) {
  SchemeResults results;
  results.no_mp = core::RunNoMp(matcher, cover);
  results.smp = core::RunSmp(matcher, cover);
  const auto* probabilistic =
      dynamic_cast<const core::ProbabilisticMatcher*>(&matcher);
  if (probabilistic != nullptr) {
    results.mmp = core::RunMmp(*probabilistic, cover);
    results.has_mmp = true;
  }
  return results;
}

}  // namespace cem::eval
