#ifndef CEM_EVAL_METRICS_H_
#define CEM_EVAL_METRICS_H_

#include <cstddef>
#include <string>

#include "core/match_set.h"
#include "data/dataset.h"

namespace cem::eval {

/// Pairwise precision/recall/F1 of a match set against the dataset's ground
/// truth. Recall's denominator is the number of true-match pairs among
/// labelled author references (all of them, not only candidate pairs, so
/// blocking losses count against recall as they would in the paper).
struct PrMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t total_true = 0;

  std::string ToString() const;
};

/// Computes pairwise metrics. Matches between unlabelled entities are
/// ignored; apply core::TransitiveClosure first to score cluster-level
/// output (the benches do).
PrMetrics ComputePr(const data::Dataset& dataset,
                    const core::MatchSet& matches);

/// Soundness of `produced` w.r.t. a reference run (Section 2.2.1):
/// |produced ∩ reference| / |produced|; 1.0 for empty `produced`.
double Soundness(const core::MatchSet& produced,
                 const core::MatchSet& reference);

/// Completeness of `produced` w.r.t. a reference run (Section 2.2.1):
/// |produced ∩ reference| / |reference|; 1.0 for empty `reference`.
double Completeness(const core::MatchSet& produced,
                    const core::MatchSet& reference);

}  // namespace cem::eval

#endif  // CEM_EVAL_METRICS_H_
