#ifndef CEM_EVAL_EXPERIMENT_H_
#define CEM_EVAL_EXPERIMENT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/cover_builder.h"
#include "core/matcher.h"
#include "core/message_passing.h"
#include "data/bib_generator.h"
#include "data/dataset.h"
#include "stream/streaming_matcher.h"

namespace cem::eval {

/// Reads the CEM_BENCH_SCALE environment variable (default 1.0, clamped to
/// [0.05, 100]) — one knob scaling every benchmark workload.
double BenchScale();

/// Reads the CEM_BLOCKING environment variable ("canopy" or "lsh", default
/// canopy) — one knob switching every benchmark workload's cover builder,
/// so each figure/bench runs under either blocking strategy unchanged.
core::BlockingStrategy BenchBlocking();

/// A prepared experiment workload: corpus + cover, shared by the benches.
struct Workload {
  std::string name;  // "HEPTH-like" / "DBLP-like" / ...
  /// The strategy that built `cover`.
  core::BlockingStrategy blocking = core::BlockingStrategy::kCanopy;
  std::unique_ptr<data::Dataset> dataset;
  core::Cover cover;
};

/// Builds the HEPTH-like workload at `scale` (see data::BibConfig) with the
/// given blocking strategy; the single-argument form uses BenchBlocking().
/// Candidate generation and cover construction run on `ctx` (default: the
/// process-wide context, workers from CEM_THREADS).
Workload MakeHepthWorkload(double scale);
Workload MakeHepthWorkload(
    double scale, core::BlockingStrategy blocking,
    const ExecutionContext& ctx = ExecutionContext::Default());

/// Builds the DBLP-like workload at `scale`.
Workload MakeDblpWorkload(double scale);
Workload MakeDblpWorkload(
    double scale, core::BlockingStrategy blocking,
    const ExecutionContext& ctx = ExecutionContext::Default());

/// Decorator that makes any matcher cost what the paper's matcher costs.
///
/// Our exact graph-cut MAP solver runs in microseconds, which is faithful
/// to the *outputs* of the Alchemy-based MLN matcher but not to its *cost
/// profile*: the paper's running-time results (Figures 3(d)-(f), Table 1)
/// live in a regime where probabilistic inference is expensive and
/// super-linear in the active neighborhood size. This wrapper burns CPU
/// proportional to cost_scale * (free variables)^exponent per Match() call
/// (free variables = candidate pairs inside the entity set not already
/// decided by evidence — the paper's "active size"), restoring that regime
/// so the time benches reproduce the paper's shape on any host. Outputs are
/// delegated unchanged, so accuracy results are unaffected.
class CostModelMatcher : public core::ProbabilisticMatcher {
 public:
  /// Wraps `inner` (not owned; must outlive this). `cost_scale_us` is the
  /// per-call budget multiplier in microseconds.
  CostModelMatcher(const core::Matcher& inner, double cost_scale_us = 2.0,
                   double exponent = 1.6);

  core::MatchSet Match(const std::vector<data::EntityId>& entities,
                       const core::MatchSet& positive,
                       const core::MatchSet& negative) const override;
  using core::Matcher::Match;

  /// Conditioned re-runs (COMPUTEMAXIMAL's per-hypothesis calls) are
  /// charged `conditioned_discount` of a fresh run, modelling a solver
  /// that re-solves incrementally from retained per-neighborhood state
  /// (dynamic graph cuts).
  core::MatchSet MatchConditioned(const std::vector<data::EntityId>& entities,
                                  const core::MatchSet& positive,
                                  const core::MatchSet& negative)
      const override;

  const data::Dataset& dataset() const override { return inner_->dataset(); }

  /// Delegates to the inner matcher, which must be probabilistic.
  double Score(const core::MatchSet& matches) const override;
  double ScoreDelta(
      const core::MatchSet& current,
      const std::vector<data::EntityPair>& additions) const override;

  /// Total simulated cost charged so far, in seconds.
  double charged_seconds() const;

 private:
  size_t CountFreeVariables(const std::vector<data::EntityId>& entities,
                            const core::MatchSet& positive,
                            const core::MatchSet& negative) const;
  void Burn(size_t free_vars, double discount) const;

  // A conditioned re-solve adds one clamp to an already-solved
  // neighborhood; with retained solver state (dynamic graph cuts) that is
  // roughly one augmentation pass, i.e. a fraction of a per-mille to a few
  // per-mille of a fresh solve.
  static constexpr double kConditionedDiscount = 0.002;
  const core::Matcher* inner_;
  const core::ProbabilisticMatcher* inner_probabilistic_;  // May be null.
  double cost_scale_us_;
  double exponent_;
  mutable std::atomic<uint64_t> charged_nanos_{0};
};

/// Result of replaying a corpus through the streaming ingest subsystem.
struct StreamingReplayResult {
  /// The streamed fixpoint after the last chunk converged.
  core::MatchSet matches;
  /// Ingest + re-matching work counters (deterministic per arrival seed).
  stream::StreamingStats stats;
  size_t num_refs = 0;
  size_t num_chunks = 0;
};

/// The streaming workload: replays the matcher's full corpus through a
/// stream::StreamingMatcher in a seeded random arrival order, ingesting
/// chunks of `chunk_size` references (0 = one at a time) and converging
/// after each chunk. For a well-behaved matcher the returned matches equal
/// a batch rebuild's RunSmp fixpoint for ANY arrival seed, chunk size,
/// thread count and shard count — the streaming equivalence suite and
/// bench_streaming pin exactly this against a batch build.
StreamingReplayResult ReplayStreaming(
    const core::Matcher& matcher, uint64_t arrival_seed, size_t chunk_size = 0,
    const stream::StreamingOptions& options = {});

/// Convenience: runs all three schemes plus (optionally) the FULL holistic
/// run on a workload and returns per-scheme results, for the accuracy
/// benches.
struct SchemeResults {
  core::MpResult no_mp;
  core::MpResult smp;
  core::MpResult mmp;     // Only if the matcher is probabilistic.
  bool has_mmp = false;
};
SchemeResults RunAllSchemes(const core::Matcher& matcher,
                            const core::Cover& cover);

}  // namespace cem::eval

#endif  // CEM_EVAL_EXPERIMENT_H_
