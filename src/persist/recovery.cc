#include "persist/recovery.h"

#include <filesystem>
#include <fstream>
#include <utility>

#include "util/logging.h"

namespace cem::persist {
namespace {

namespace fs = std::filesystem;

std::string WalPath(const std::string& dir) {
  return (fs::path(dir) / "wal.log").string();
}

std::string ArrivalMetaPath(const std::string& dir) {
  return (fs::path(dir) / "arrival.meta").string();
}

}  // namespace

Status WriteArrivalMeta(const std::string& dir, const ArrivalMeta& meta) {
  std::ofstream out(ArrivalMetaPath(dir), std::ios::trunc);
  out << "arrival_seed\t" << meta.arrival_seed << "\nstream_chunk\t"
      << meta.stream_chunk << "\n";
  if (!out) {
    return InternalError("cannot write " + ArrivalMetaPath(dir));
  }
  return OkStatus();
}

Result<ArrivalMeta> ReadArrivalMeta(const std::string& dir) {
  const std::string path = ArrivalMetaPath(dir);
  std::ifstream in(path);
  if (!in) return NotFoundError(path + " does not exist");
  ArrivalMeta meta;
  std::string key;
  unsigned long long value = 0;
  if (!(in >> key >> value) || key != "arrival_seed") {
    return InvalidArgumentError(path + " is malformed (arrival_seed)");
  }
  meta.arrival_seed = value;
  if (!(in >> key >> value) || key != "stream_chunk") {
    return InvalidArgumentError(path + " is malformed (stream_chunk)");
  }
  meta.stream_chunk = static_cast<uint32_t>(value);
  return meta;
}

PersistentStreamingMatcher::PersistentStreamingMatcher(
    const core::Matcher& matcher, const stream::StreamingOptions& stream_options,
    const PersistOptions& persist_options)
    : core_matcher_(matcher),
      stream_options_(stream_options),
      options_(persist_options),
      fingerprint_(
          StateFingerprint::Of(matcher.dataset(), stream_options.cover)),
      wal_(WalPath(persist_options.dir), persist_options.faults,
           persist_options.fsync) {}

Status PersistentStreamingMatcher::Start() {
  if (started_) return FailedPreconditionError("already started");
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec) {
    return InternalError("cannot create " + options_.dir + ": " + ec.message());
  }
  if (fs::exists(wal_.path()) || !ListSnapshots(options_.dir).empty()) {
    return FailedPreconditionError(
        options_.dir + " already holds streaming state; Recover() it or "
                       "wipe it explicitly");
  }
  inner_ = std::make_unique<stream::StreamingMatcher>(core_matcher_,
                                                      stream_options_);
  CEM_RETURN_IF_ERROR(wal_.Create(fingerprint_));
  started_ = true;
  return OkStatus();
}

Status PersistentStreamingMatcher::Recover(RecoveryInfo* info) {
  if (started_) return FailedPreconditionError("already started");
  RecoveryInfo local;
  RecoveryInfo& out = info != nullptr ? *info : local;
  out = RecoveryInfo{};

  const std::string wal_path = WalPath(options_.dir);
  const bool wal_exists = fs::exists(wal_path);
  const std::vector<SnapshotRef> snapshots = ListSnapshots(options_.dir);
  if (!wal_exists && snapshots.empty()) {
    return NotFoundError("nothing to recover in " + options_.dir);
  }

  Result<WalContents> wal_result = ReadWal(wal_path, fingerprint_);
  if (!wal_result.ok()) return wal_result.status();
  WalContents wal = std::move(wal_result.value());

  // Newest complete snapshot wins; damaged candidates are skipped with a
  // warning. Each attempt gets a fresh matcher — a partial restore must
  // never leak into the next attempt or the final state.
  inner_.reset();
  for (const SnapshotRef& ref : snapshots) {
    auto attempt = std::make_unique<stream::StreamingMatcher>(core_matcher_,
                                                              stream_options_);
    const Status status = LoadSnapshot(ref.path, *attempt);
    if (status.ok()) {
      inner_ = std::move(attempt);
      out.used_snapshot = true;
      out.snapshot_inserts = ref.inserts;
      break;
    }
    ++out.snapshots_skipped;
    CEM_LOG(Warning) << "skipping snapshot " << ref.path << ": "
                     << status.ToString();
  }
  if (inner_ == nullptr) {
    inner_ = std::make_unique<stream::StreamingMatcher>(core_matcher_,
                                                        stream_options_);
  }
  const size_t snapshot_inserts = inner_->num_live();

  // Replay the WAL chunks past the snapshot point, counting from the
  // WAL's base (a WAL rebuilt by an earlier recovery starts at that
  // recovery's insert count, not 0). A base ahead of the best loadable
  // snapshot means the snapshot the base came from was since damaged —
  // the inserts in the gap were acknowledged but are on neither surviving
  // medium, which must surface as data loss, not as a silently older
  // state.
  if (wal.header_valid && wal.base_inserts > snapshot_inserts) {
    return InternalError(
        options_.dir + ": WAL continues from insert " +
        std::to_string(wal.base_inserts) + " but the best loadable state " +
        "holds " + std::to_string(snapshot_inserts) +
        " — acknowledged inserts were lost with a damaged snapshot");
  }
  // Snapshots are taken at chunk boundaries, so the skip either lands
  // exactly on the snapshot's insert count or runs out of surviving
  // chunks (a snapshot newer than the readable WAL prefix — e.g. a
  // mid-WAL flip — needs no replay).
  size_t skipped_inserts =
      wal.header_valid ? static_cast<size_t>(wal.base_inserts) : 0;
  size_t chunk = 0;
  while (chunk < wal.chunks.size() && skipped_inserts < snapshot_inserts) {
    if (skipped_inserts + wal.chunks[chunk].size() > snapshot_inserts) {
      return InternalError(options_.dir +
                           ": WAL chunks misaligned with the snapshot");
    }
    skipped_inserts += wal.chunks[chunk].size();
    ++chunk;
  }
  for (; chunk < wal.chunks.size(); ++chunk) {
    for (data::EntityId ref : wal.chunks[chunk]) {
      if (inner_->is_live(ref)) {
        return InternalError(options_.dir +
                             ": WAL replays an already-live reference");
      }
    }
    inner_->AddBatch(wal.chunks[chunk]);
    ++out.chunks_replayed;
  }

  // Repair the WAL for continued appends: recreate it when the header
  // never made it to disk — based at the recovered insert count, so the
  // next recovery knows its chunks continue from here — truncate away any
  // torn tail otherwise.
  if (!wal.header_valid) {
    CEM_RETURN_IF_ERROR(wal_.Create(fingerprint_, inner_->num_live()));
  } else {
    std::error_code ec;
    const uintmax_t size = fs::file_size(wal_path, ec);
    if (!ec && size > wal.valid_bytes) {
      fs::resize_file(wal_path, wal.valid_bytes, ec);
      if (ec) {
        return InternalError("cannot truncate " + wal_path + ": " +
                             ec.message());
      }
      out.wal_tail_truncated = true;
    }
    CEM_RETURN_IF_ERROR(wal_.OpenForAppend());
  }

  out.inserts_recovered = inner_->num_live();
  last_checkpoint_inserts_ = out.snapshot_inserts;
  started_ = true;
  return OkStatus();
}

Status PersistentStreamingMatcher::Add(data::EntityId ref) {
  if (!started_) return FailedPreconditionError("Start() or Recover() first");
  CEM_RETURN_IF_ERROR(wal_.AppendChunk({ref}));
  inner_->Add(ref);
  return MaybeAutoCheckpoint();
}

Status PersistentStreamingMatcher::AddBatch(
    const std::vector<data::EntityId>& refs) {
  if (!started_) return FailedPreconditionError("Start() or Recover() first");
  if (refs.empty()) return OkStatus();
  CEM_RETURN_IF_ERROR(wal_.AppendChunk(refs));
  inner_->AddBatch(refs);
  return MaybeAutoCheckpoint();
}

Status PersistentStreamingMatcher::Checkpoint() {
  if (!started_) return FailedPreconditionError("Start() or Recover() first");
  CEM_RETURN_IF_ERROR(
      SaveSnapshot(options_.dir, *inner_, options_.faults, options_.fsync));
  last_checkpoint_inserts_ = inner_->num_live();
  return OkStatus();
}

Status PersistentStreamingMatcher::MaybeAutoCheckpoint() {
  if (options_.snapshot_every_inserts == 0) return OkStatus();
  if (inner_->num_live() - last_checkpoint_inserts_ <
      options_.snapshot_every_inserts) {
    return OkStatus();
  }
  return Checkpoint();
}

}  // namespace cem::persist
