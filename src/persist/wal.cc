#include "persist/wal.h"

#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace cem::persist {
namespace {

// Record-type tags (first payload byte of every WAL record).
constexpr uint8_t kHeaderRecord = 1;
constexpr uint8_t kChunkRecord = 2;

}  // namespace

WalWriter::WalWriter(std::string path, io::FaultPlan* faults, bool sync)
    : path_(std::move(path)), faults_(faults), sync_(sync) {}

Status WalWriter::Create(const StateFingerprint& fingerprint,
                         uint64_t base_inserts) {
  file_ = std::make_unique<io::FileWriter>(path_, faults_);
  io::Buffer prefix;
  prefix.PutBytes(kWalMagic);
  prefix.PutU32(kWalVersion);
  CEM_RETURN_IF_ERROR(file_->Write(prefix.bytes()));
  io::Buffer header;
  header.PutU8(kHeaderRecord);
  fingerprint.AppendTo(header);
  header.PutU64(base_inserts);
  CEM_RETURN_IF_ERROR(io::WriteRecord(*file_, header.bytes()));
  return sync_ ? file_->Sync() : file_->Flush();
}

Status WalWriter::OpenForAppend() {
  file_ = std::make_unique<io::FileWriter>(path_, faults_,
                                           io::FileWriter::Mode::kAppend);
  if (!file_->ok()) {
    return InternalError("cannot reopen WAL " + path_ + " for append");
  }
  return OkStatus();
}

Status WalWriter::AppendChunk(const std::vector<data::EntityId>& refs) {
  if (file_ == nullptr) {
    return FailedPreconditionError("WAL not open (Create/OpenForAppend)");
  }
  if (refs.empty()) return InvalidArgumentError("empty WAL chunk");
  // The append histogram spans the whole durability point (encode + write
  // + flush/fsync); the fsync histogram isolates the disk-barrier part so
  // the PersistOptions::fsync tax is visible on its own.
  static obs::Histogram& append_hist =
      obs::MetricsRegistry::Global().histogram("persist_wal_append_us");
  static obs::Counter& appends_counter =
      obs::MetricsRegistry::Global().counter("persist_wal_appends");
  static obs::Counter& bytes_counter =
      obs::MetricsRegistry::Global().counter("persist_wal_append_bytes");
  CEM_TRACE_TIMED("persist/wal_append", &append_hist);
  io::Buffer payload;
  payload.PutU8(kChunkRecord);
  payload.PutU32(static_cast<uint32_t>(refs.size()));
  for (data::EntityId ref : refs) payload.PutU32(ref);
  CEM_RETURN_IF_ERROR(io::WriteRecord(*file_, payload.bytes()));
  appends_counter.Add(1);
  bytes_counter.Add(payload.bytes().size());
  if (!sync_) return file_->Flush();
  static obs::Histogram& fsync_hist =
      obs::MetricsRegistry::Global().histogram("persist_wal_fsync_us");
  CEM_TRACE_TIMED("persist/wal_fsync", &fsync_hist);
  return file_->Sync();
}

Result<WalContents> ReadWal(const std::string& path,
                            const StateFingerprint& fingerprint) {
  WalContents contents;
  std::string bytes;
  const Status read = io::ReadFile(path, &bytes);
  if (read.code() == StatusCode::kNotFound) return contents;  // Empty.
  CEM_RETURN_IF_ERROR(read);

  if (bytes.size() < 12) {
    // Crash while writing the prefix: nothing was ever applied.
    contents.torn_tail = !bytes.empty();
    return contents;
  }
  const std::string_view view(bytes);
  if (view.substr(0, 8) != kWalMagic) {
    return InvalidArgumentError(path + ": bad magic");
  }
  io::Cursor version_cursor(view.substr(8, 4));
  const uint32_t version = version_cursor.GetU32();
  if (version == 0 || version > kWalVersion) {
    return InvalidArgumentError(path + ": unsupported WAL version " +
                                std::to_string(version));
  }

  size_t pos = 12;
  std::string_view payload;
  // Header record first; torn here = crash during Create (recreate).
  switch (io::ReadRecord(view, &pos, &payload)) {
    case io::RecordVerdict::kRecord:
      break;
    case io::RecordVerdict::kEndOfStream:
    case io::RecordVerdict::kTorn:
      contents.torn_tail = pos < bytes.size() || bytes.size() > 12;
      return contents;
  }
  {
    io::Cursor header(payload);
    if (header.GetU8() != kHeaderRecord) {
      return InvalidArgumentError(path + ": first record is not a header");
    }
    const StateFingerprint stored = StateFingerprint::ReadFrom(header);
    contents.base_inserts = header.GetU64();
    if (!header.AtEnd()) {
      return InvalidArgumentError(path + ": malformed header record");
    }
    if (stored != fingerprint) {
      return InvalidArgumentError(
          path + ": fingerprint mismatch (WAL belongs to a different "
                 "dataset or option set)");
    }
  }
  contents.header_valid = true;
  contents.valid_bytes = pos;

  // Chunk records until a clean end or a torn tail. A checksum failure
  // anywhere drops that record and everything after it — frames cannot be
  // resynchronised past a damaged length field.
  for (;;) {
    const io::RecordVerdict verdict = io::ReadRecord(view, &pos, &payload);
    if (verdict == io::RecordVerdict::kEndOfStream) break;
    if (verdict == io::RecordVerdict::kTorn) {
      contents.torn_tail = true;
      break;
    }
    io::Cursor chunk(payload);
    if (chunk.GetU8() != kChunkRecord) {
      return InvalidArgumentError(path + ": unexpected record type");
    }
    const uint32_t count = chunk.GetU32();
    std::vector<data::EntityId> refs;
    refs.reserve(io::ClampCount(count, chunk.remaining(), 4));
    for (uint32_t i = 0; i < count && chunk.ok(); ++i) {
      refs.push_back(chunk.GetU32());
    }
    if (!chunk.AtEnd() || refs.empty()) {
      return InvalidArgumentError(path + ": malformed chunk record");
    }
    contents.num_inserts += refs.size();
    contents.chunks.push_back(std::move(refs));
    contents.valid_bytes = pos;
  }
  return contents;
}

}  // namespace cem::persist
