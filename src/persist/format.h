#ifndef CEM_PERSIST_FORMAT_H_
#define CEM_PERSIST_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "data/dataset.h"
#include "stream/incremental_cover.h"
#include "util/io.h"

namespace cem::persist {

// On-disk format constants shared by the WAL and snapshot layers. Version
// bumps are additive: a reader accepts versions up to its constant and
// rejects newer files with a clear "unsupported version" status (pinned by
// the golden-fixture tests).

/// Format version of snapshot section files. v1: the initial layout.
inline constexpr uint32_t kSnapshotVersion = 1;
/// Format version of the ingest WAL. v1: header record (fingerprint +
/// base insert count) + chunk records.
inline constexpr uint32_t kWalVersion = 1;

/// 8-byte file magics (io::WriteFramedFile prefixes).
inline constexpr std::string_view kSnapshotMagic = "CEMSNAP1";
inline constexpr std::string_view kWalMagic = "CEMWAL01";
inline constexpr std::string_view kTokenIndexMagic = "CEMTOKI1";

/// First payload byte of every snapshot section file: which section this
/// file claims to be, so a file renamed into the wrong slot is rejected
/// even though its magic and checksum are fine.
enum class Section : uint8_t {
  kManifest = 1,
  kStream = 2,
  kMatches = 3,
  kCover = 4,
  kSignatures = 5,
  kLshShard = 6,
  kTokenMeta = 7,
  kTokenShard = 8,
};

/// Identity of the run a WAL or snapshot belongs to: the dataset shape and
/// every option that changes streamed state. Written into the WAL header
/// and each snapshot MANIFEST; recovery refuses state whose fingerprint
/// disagrees with the live configuration — replaying a WAL against the
/// wrong corpus or thresholds would otherwise "succeed" with garbage.
struct StateFingerprint {
  uint64_t dataset_entities = 0;
  uint64_t dataset_pairs = 0;
  uint32_t num_hashes = 0;
  uint64_t minhash_seed = 0;
  uint32_t bands = 0;
  uint32_t rows = 0;
  double loose = 0.0;
  double tight = 0.0;

  static StateFingerprint Of(const data::Dataset& dataset,
                             const stream::IncrementalCoverOptions& options);

  void AppendTo(io::Buffer& buffer) const;
  /// Reads the fields in AppendTo order; on short input the cursor is
  /// poisoned (caller validates cursor.ok()).
  static StateFingerprint ReadFrom(io::Cursor& cursor);

  friend bool operator==(const StateFingerprint&,
                         const StateFingerprint&) = default;
};

/// The snapshot subdirectory name at `inserts` live references —
/// zero-padded so lexicographic order equals numeric order.
std::string SnapshotDirName(size_t inserts);

}  // namespace cem::persist

#endif  // CEM_PERSIST_FORMAT_H_
