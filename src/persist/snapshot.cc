#include "persist/snapshot.h"

#include <algorithm>
#include <filesystem>
#include <span>
#include <string_view>
#include <utility>

#include "data/entity.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace cem::persist {
namespace {

namespace fs = std::filesystem;

/// Upper bound on a shard count read from a file: per-shard bookkeeping
/// vectors are sized by it before any shard file is opened, so an absurd
/// value must be rejected, not allocated.
constexpr uint32_t kMaxShards = 1u << 16;

const ExecutionContext& Resolve(const stream::StreamingMatcher& matcher) {
  return matcher.options().context != nullptr ? *matcher.options().context
                                              : ExecutionContext::Default();
}

std::string ShardFileName(std::string_view stem, size_t shard) {
  return std::string(stem) + "_" + std::to_string(shard) + ".bin";
}

/// First non-OK status of a parallel fan-out (deterministic pick: lowest
/// shard index wins, independent of completion order).
Status FirstError(const std::vector<Status>& statuses) {
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return OkStatus();
}

// --- encode helpers ---------------------------------------------------------

void PutMembershipEntries(io::Buffer& out,
                          const std::vector<core::MembershipEntry>& entries) {
  out.PutU64(entries.size());
  for (const core::MembershipEntry& e : entries) {
    out.PutU32(e.entity);
    out.PutU32(e.first_home);
    out.PutU32(static_cast<uint32_t>(e.homes.size()));
    for (uint32_t h : e.homes) out.PutU32(h);
  }
}

Status GetMembershipEntries(io::Cursor& in, const std::string& what,
                            std::vector<core::MembershipEntry>* out) {
  const uint64_t count = in.GetU64();
  out->clear();
  // Counts come from the file; clamp every reserve to what the payload
  // could actually hold so a corrupt-yet-CRC-valid count is a parse
  // failure, not a bad_alloc (each entry is >= 12 encoded bytes, each
  // home 4).
  out->reserve(io::ClampCount(count, in.remaining(), 12));
  for (uint64_t i = 0; i < count && in.ok(); ++i) {
    core::MembershipEntry e;
    e.entity = in.GetU32();
    e.first_home = in.GetU32();
    const uint32_t homes = in.GetU32();
    e.homes.reserve(io::ClampCount(homes, in.remaining(), 4));
    for (uint32_t h = 0; h < homes && in.ok(); ++h) {
      e.homes.push_back(in.GetU32());
    }
    // Validate here, not in CoverMembership::FromEntries: its CEM_CHECKs
    // guard programmer errors and abort, while a decoder must turn any
    // structural damage into a skippable status.
    if (!in.ok()) break;
    if (e.homes.empty() ||
        !std::is_sorted(e.homes.begin(), e.homes.end()) ||
        std::adjacent_find(e.homes.begin(), e.homes.end()) != e.homes.end() ||
        !std::binary_search(e.homes.begin(), e.homes.end(), e.first_home)) {
      return InvalidArgumentError(what + ": malformed membership entry");
    }
    if (!out->empty() && out->back().entity >= e.entity) {
      return InvalidArgumentError(what + ": membership entries out of order");
    }
    out->push_back(std::move(e));
  }
  if (!in.ok()) return InvalidArgumentError(what + ": truncated memberships");
  return OkStatus();
}

void PutIngestStats(io::Buffer& out, const stream::IngestStats& s) {
  out.PutU64(s.inserts);
  out.PutU64(s.seeds_created);
  out.PutU64(s.canopies_touched);
  out.PutU64(s.lsh_candidates_scanned);
  out.PutU64(s.pairs_patched);
  out.PutU64(s.boundary_additions);
  out.PutU64(s.memberships_added);
}

stream::IngestStats GetIngestStats(io::Cursor& in) {
  stream::IngestStats s;
  s.inserts = in.GetU64();
  s.seeds_created = in.GetU64();
  s.canopies_touched = in.GetU64();
  s.lsh_candidates_scanned = in.GetU64();
  s.pairs_patched = in.GetU64();
  s.boundary_additions = in.GetU64();
  s.memberships_added = in.GetU64();
  return s;
}

/// Reads one snapshot section file and validates its section tag; returns
/// the payload bytes positioned after the tag via `cursor_out`.
Status ReadSection(const std::string& path, Section expected,
                   std::string* payload) {
  Result<std::string> bytes =
      io::ReadFramedFile(path, kSnapshotMagic, kSnapshotVersion);
  if (!bytes.ok()) return bytes.status();
  *payload = std::move(bytes.value());
  if (payload->empty() ||
      static_cast<uint8_t>((*payload)[0]) != static_cast<uint8_t>(expected)) {
    return InvalidArgumentError(path + ": wrong section tag");
  }
  return OkStatus();
}

struct Manifest {
  StateFingerprint fingerprint;
  uint64_t inserts = 0;
  uint32_t num_shards = 0;
  uint64_t num_neighborhoods = 0;
  uint64_t num_matches = 0;
  uint64_t num_core_entries = 0;
  uint64_t num_full_entries = 0;
};

}  // namespace

Status SaveSnapshot(const std::string& dir,
                    const stream::StreamingMatcher& matcher,
                    io::FaultPlan* faults, bool sync) {
  if (!matcher.quiescent()) {
    return FailedPreconditionError(
        "snapshots are only taken at quiescent points");
  }
  static obs::Histogram& save_hist =
      obs::MetricsRegistry::Global().histogram("persist_snapshot_save_us");
  static obs::Counter& saves_counter =
      obs::MetricsRegistry::Global().counter("persist_snapshots_saved");
  CEM_TRACE_TIMED("persist/snapshot_save", &save_hist);
  saves_counter.Add(1);
  const stream::IncrementalCover& cover = matcher.incremental_cover();
  const blocking::LshIndex& index = cover.lsh_index();
  const size_t n = cover.slots().size();
  const size_t num_shards = index.num_shards();
  const ExecutionContext& ctx = Resolve(matcher);
  const StateFingerprint fingerprint =
      StateFingerprint::Of(matcher.dataset(), cover.options());

  const fs::path snap_dir = fs::path(dir) / SnapshotDirName(n);
  std::error_code ec;
  fs::create_directories(snap_dir, ec);
  if (ec) {
    return InternalError("cannot create " + snap_dir.string() + ": " +
                         ec.message());
  }
  // Drop any stale completeness marker first: a crash while overwriting an
  // existing snapshot at the same insert count must leave it *incomplete*.
  fs::remove(snap_dir / "MANIFEST", ec);

  {
    io::Buffer out;
    out.PutU8(static_cast<uint8_t>(Section::kStream));
    out.PutU64(n);
    for (data::EntityId ref : cover.slots()) out.PutU32(ref);
    for (uint32_t seed : cover.seed_neighborhoods()) out.PutU32(seed);
    PutIngestStats(out, cover.stats());
    CEM_RETURN_IF_ERROR(io::WriteFramedFile((snap_dir / "stream.bin").string(),
                                            kSnapshotMagic, kSnapshotVersion,
                                            out.bytes(), faults, sync));
  }
  {
    std::vector<uint64_t> keys(matcher.matches().keys().begin(),
                               matcher.matches().keys().end());
    std::sort(keys.begin(), keys.end());
    io::Buffer out;
    out.PutU8(static_cast<uint8_t>(Section::kMatches));
    out.PutU64(keys.size());
    for (uint64_t key : keys) out.PutU64(key);
    const stream::MatchingStats& m = matcher.stats().matching;
    out.PutU64(m.neighborhood_evaluations);
    out.PutU64(m.matcher_calls);
    out.PutU64(m.pairs_rescored);
    CEM_RETURN_IF_ERROR(io::WriteFramedFile((snap_dir / "matches.bin").string(),
                                            kSnapshotMagic, kSnapshotVersion,
                                            out.bytes(), faults, sync));
  }
  {
    io::Buffer out;
    out.PutU8(static_cast<uint8_t>(Section::kCover));
    out.PutU64(cover.cover().size());
    for (size_t i = 0; i < cover.cover().size(); ++i) {
      const std::vector<data::EntityId>& members =
          cover.cover().neighborhood(i).entities;
      out.PutU32(static_cast<uint32_t>(members.size()));
      for (data::EntityId e : members) out.PutU32(e);
    }
    PutMembershipEntries(out, cover.core_membership().SortedEntries());
    PutMembershipEntries(out, cover.full_membership().SortedEntries());
    CEM_RETURN_IF_ERROR(io::WriteFramedFile((snap_dir / "cover.bin").string(),
                                            kSnapshotMagic, kSnapshotVersion,
                                            out.bytes(), faults, sync));
  }

  // Shard files: one parallel-for job per shard writes that shard's
  // signature slice and its LSH buckets.
  std::vector<Status> shard_status(num_shards);
  ParallelFor(ctx.pool(), num_shards, [&](size_t s) {
    io::Buffer sig;
    sig.PutU8(static_cast<uint8_t>(Section::kSignatures));
    sig.PutU32(static_cast<uint32_t>(s));
    sig.PutU32(static_cast<uint32_t>(num_shards));
    sig.PutU32(index.num_hashes());
    uint64_t count = 0;
    for (size_t slot = s; slot < n; slot += num_shards) ++count;
    sig.PutU64(count);
    for (size_t slot = s; slot < n; slot += num_shards) {
      sig.PutU32(static_cast<uint32_t>(slot));
      for (uint64_t component : cover.signatures()[slot]) {
        sig.PutU64(component);
      }
    }
    Status status = io::WriteFramedFile(
        (snap_dir / ShardFileName("sig", s)).string(), kSnapshotMagic,
        kSnapshotVersion, sig.bytes(), faults, sync);
    if (status.ok()) {
      const blocking::LshIndex::BucketMap& buckets = index.shard_buckets(s);
      std::vector<uint64_t> bucket_keys;
      bucket_keys.reserve(buckets.size());
      for (const auto& [key, docs] : buckets) bucket_keys.push_back(key);
      std::sort(bucket_keys.begin(), bucket_keys.end());
      io::Buffer lsh;
      lsh.PutU8(static_cast<uint8_t>(Section::kLshShard));
      lsh.PutU32(static_cast<uint32_t>(s));
      lsh.PutU32(static_cast<uint32_t>(num_shards));
      lsh.PutU64(bucket_keys.size());
      for (uint64_t key : bucket_keys) {
        const std::vector<uint32_t>& docs = buckets.at(key);
        lsh.PutU64(key);
        lsh.PutU32(static_cast<uint32_t>(docs.size()));
        for (uint32_t doc : docs) lsh.PutU32(doc);
      }
      status = io::WriteFramedFile((snap_dir / ShardFileName("lsh", s)).string(),
                                   kSnapshotMagic, kSnapshotVersion,
                                   lsh.bytes(), faults, sync);
    }
    shard_status[s] = status;
  });
  CEM_RETURN_IF_ERROR(FirstError(shard_status));

  // MANIFEST last: its presence marks the snapshot complete.
  io::Buffer out;
  out.PutU8(static_cast<uint8_t>(Section::kManifest));
  fingerprint.AppendTo(out);
  out.PutU64(n);
  out.PutU32(static_cast<uint32_t>(num_shards));
  out.PutU64(cover.cover().size());
  out.PutU64(matcher.matches().size());
  out.PutU64(cover.core_membership().num_entities());
  out.PutU64(cover.full_membership().num_entities());
  CEM_RETURN_IF_ERROR(io::WriteFramedFile((snap_dir / "MANIFEST").string(),
                                          kSnapshotMagic, kSnapshotVersion,
                                          out.bytes(), faults, sync));
  if (sync) {
    // The files are durable; now make their directory entries durable too
    // (the snapshot's own entries, then the snap_ entry in the parent).
    CEM_RETURN_IF_ERROR(io::SyncDir(snap_dir.string()));
    CEM_RETURN_IF_ERROR(io::SyncDir(dir));
  }
  return OkStatus();
}

std::vector<SnapshotRef> ListSnapshots(const std::string& dir) {
  std::vector<SnapshotRef> refs;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("snap_", 0) != 0 || name.size() <= 5) continue;
    size_t inserts = 0;
    bool numeric = true;
    for (size_t i = 5; i < name.size(); ++i) {
      if (name[i] < '0' || name[i] > '9') {
        numeric = false;
        break;
      }
      inserts = inserts * 10 + static_cast<size_t>(name[i] - '0');
    }
    if (!numeric) continue;
    refs.push_back({inserts, entry.path().string()});
  }
  std::sort(refs.begin(), refs.end(),
            [](const SnapshotRef& a, const SnapshotRef& b) {
              return a.inserts > b.inserts;
            });
  return refs;
}

Status LoadSnapshot(const std::string& snap_dir,
                    stream::StreamingMatcher& matcher) {
  static obs::Histogram& load_hist =
      obs::MetricsRegistry::Global().histogram("persist_snapshot_load_us");
  static obs::Counter& loads_counter =
      obs::MetricsRegistry::Global().counter("persist_snapshots_loaded");
  CEM_TRACE_TIMED("persist/snapshot_load", &load_hist);
  loads_counter.Add(1);
  const stream::IncrementalCover& cover = matcher.incremental_cover();
  const ExecutionContext& ctx = Resolve(matcher);
  const fs::path base(snap_dir);

  Manifest manifest;
  {
    std::string payload;
    CEM_RETURN_IF_ERROR(
        ReadSection((base / "MANIFEST").string(), Section::kManifest,
                    &payload));
    io::Cursor in(std::string_view(payload).substr(1));
    manifest.fingerprint = StateFingerprint::ReadFrom(in);
    manifest.inserts = in.GetU64();
    manifest.num_shards = in.GetU32();
    manifest.num_neighborhoods = in.GetU64();
    manifest.num_matches = in.GetU64();
    manifest.num_core_entries = in.GetU64();
    manifest.num_full_entries = in.GetU64();
    if (!in.AtEnd()) {
      return InvalidArgumentError(snap_dir + ": malformed MANIFEST");
    }
    const StateFingerprint expected =
        StateFingerprint::Of(matcher.dataset(), cover.options());
    if (manifest.fingerprint != expected) {
      return InvalidArgumentError(
          snap_dir + ": fingerprint mismatch (snapshot belongs to a "
                     "different dataset or option set)");
    }
    if (manifest.num_shards == 0) {
      return InvalidArgumentError(snap_dir + ": zero shards in MANIFEST");
    }
    if (manifest.num_shards > kMaxShards) {
      return InvalidArgumentError(snap_dir +
                                  ": implausible shard count in MANIFEST");
    }
  }
  const size_t n = manifest.inserts;
  const size_t file_shards = manifest.num_shards;

  stream::StreamingMatcherState state;
  {
    std::string payload;
    CEM_RETURN_IF_ERROR(
        ReadSection((base / "stream.bin").string(), Section::kStream,
                    &payload));
    io::Cursor in(std::string_view(payload).substr(1));
    if (in.GetU64() != n) {
      return InvalidArgumentError(snap_dir +
                                  ": stream.bin disagrees with MANIFEST");
    }
    // n slots + n seeds at 4 bytes each must fit in the payload; checked
    // before the first n-sized allocation so a corrupt insert count can
    // never trigger bad_alloc here or in the signature table below.
    if (n > in.remaining() / 8) {
      return InvalidArgumentError(snap_dir +
                                  ": implausible insert count in stream.bin");
    }
    state.cover.slots.reserve(n);
    for (size_t i = 0; i < n; ++i) state.cover.slots.push_back(in.GetU32());
    state.cover.seed_neighborhoods.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      state.cover.seed_neighborhoods.push_back(in.GetU32());
    }
    state.cover.stats = GetIngestStats(in);
    if (!in.AtEnd()) {
      return InvalidArgumentError(snap_dir + ": malformed stream.bin");
    }
  }
  {
    std::string payload;
    CEM_RETURN_IF_ERROR(
        ReadSection((base / "matches.bin").string(), Section::kMatches,
                    &payload));
    io::Cursor in(std::string_view(payload).substr(1));
    const uint64_t count = in.GetU64();
    if (count != manifest.num_matches) {
      return InvalidArgumentError(snap_dir +
                                  ": matches.bin disagrees with MANIFEST");
    }
    state.match_keys.reserve(io::ClampCount(count, in.remaining(), 8));
    for (uint64_t i = 0; i < count && in.ok(); ++i) {
      const uint64_t key = in.GetU64();
      if (!state.match_keys.empty() && state.match_keys.back() >= key) {
        return InvalidArgumentError(snap_dir + ": match keys out of order");
      }
      state.match_keys.push_back(key);
    }
    state.matching.neighborhood_evaluations = in.GetU64();
    state.matching.matcher_calls = in.GetU64();
    state.matching.pairs_rescored = in.GetU64();
    if (!in.AtEnd()) {
      return InvalidArgumentError(snap_dir + ": malformed matches.bin");
    }
  }
  {
    std::string payload;
    CEM_RETURN_IF_ERROR(
        ReadSection((base / "cover.bin").string(), Section::kCover, &payload));
    io::Cursor in(std::string_view(payload).substr(1));
    const uint64_t neighborhoods = in.GetU64();
    if (neighborhoods != manifest.num_neighborhoods) {
      return InvalidArgumentError(snap_dir +
                                  ": cover.bin disagrees with MANIFEST");
    }
    state.cover.neighborhoods.reserve(
        io::ClampCount(neighborhoods, in.remaining(), 4));
    for (uint64_t i = 0; i < neighborhoods && in.ok(); ++i) {
      const uint32_t size = in.GetU32();
      std::vector<data::EntityId> members;
      members.reserve(io::ClampCount(size, in.remaining(), 4));
      for (uint32_t m = 0; m < size && in.ok(); ++m) {
        members.push_back(in.GetU32());
      }
      if (!std::is_sorted(members.begin(), members.end()) ||
          std::adjacent_find(members.begin(), members.end()) !=
              members.end()) {
        return InvalidArgumentError(snap_dir +
                                    ": neighborhood members not sorted");
      }
      state.cover.neighborhoods.push_back(std::move(members));
    }
    CEM_RETURN_IF_ERROR(GetMembershipEntries(in, snap_dir + "/cover.bin",
                                             &state.cover.core_entries));
    CEM_RETURN_IF_ERROR(GetMembershipEntries(in, snap_dir + "/cover.bin",
                                             &state.cover.full_entries));
    if (state.cover.core_entries.size() != manifest.num_core_entries ||
        state.cover.full_entries.size() != manifest.num_full_entries) {
      return InvalidArgumentError(snap_dir +
                                  ": membership counts disagree with MANIFEST");
    }
    if (!in.AtEnd()) {
      return InvalidArgumentError(snap_dir + ": malformed cover.bin");
    }
  }

  // Signature shard files, read and decoded in parallel. Slot residues make
  // the per-shard writes into `signatures` disjoint, and each file must
  // cover its residue class in strictly ascending slot order, so a total
  // count of n proves every slot was filled exactly once.
  state.cover.signatures.assign(n, {});
  std::vector<Status> shard_status(file_shards);
  std::vector<uint64_t> shard_counts(file_shards, 0);
  ParallelFor(ctx.pool(), file_shards, [&](size_t s) {
    std::string payload;
    Status status = ReadSection((base / ShardFileName("sig", s)).string(),
                                Section::kSignatures, &payload);
    if (!status.ok()) {
      shard_status[s] = status;
      return;
    }
    io::Cursor in(std::string_view(payload).substr(1));
    const uint32_t shard = in.GetU32();
    const uint32_t total = in.GetU32();
    const uint32_t num_hashes = in.GetU32();
    const uint64_t count = in.GetU64();
    if (shard != s || total != file_shards) {
      shard_status[s] = InvalidArgumentError(
          snap_dir + ": signature shard header mismatch");
      return;
    }
    uint64_t previous_slot = 0;
    bool first = true;
    for (uint64_t i = 0; i < count && in.ok(); ++i) {
      const uint32_t slot = in.GetU32();
      if (slot >= n || slot % file_shards != s ||
          (!first && slot <= previous_slot)) {
        shard_status[s] =
            InvalidArgumentError(snap_dir + ": bad signature slot");
        return;
      }
      first = false;
      previous_slot = slot;
      std::vector<uint64_t>& sig = state.cover.signatures[slot];
      sig.reserve(io::ClampCount(num_hashes, in.remaining(), 8));
      for (uint32_t h = 0; h < num_hashes && in.ok(); ++h) {
        sig.push_back(in.GetU64());
      }
    }
    if (!in.AtEnd()) {
      shard_status[s] =
          InvalidArgumentError(snap_dir + ": malformed signature shard");
      return;
    }
    shard_counts[s] = count;
  });
  CEM_RETURN_IF_ERROR(FirstError(shard_status));
  uint64_t total_slots = 0;
  for (uint64_t c : shard_counts) total_slots += c;
  if (total_slots != n) {
    return InvalidArgumentError(snap_dir + ": signature shards miss slots");
  }

  // LSH shard files: the fast path only applies when the live index has
  // the snapshot's shard count; otherwise the restore rebuilds the buckets
  // from the signatures (identical queries — the shard-count contract).
  if (cover.lsh_index().num_shards() == file_shards) {
    state.cover.lsh_buckets.resize(file_shards);
    std::vector<Status> lsh_status(file_shards);
    ParallelFor(ctx.pool(), file_shards, [&](size_t s) {
      std::string payload;
      Status status = ReadSection((base / ShardFileName("lsh", s)).string(),
                                  Section::kLshShard, &payload);
      if (!status.ok()) {
        lsh_status[s] = status;
        return;
      }
      io::Cursor in(std::string_view(payload).substr(1));
      const uint32_t shard = in.GetU32();
      const uint32_t total = in.GetU32();
      const uint64_t buckets = in.GetU64();
      if (shard != s || total != file_shards) {
        lsh_status[s] =
            InvalidArgumentError(snap_dir + ": LSH shard header mismatch");
        return;
      }
      blocking::LshIndex::BucketMap map;
      map.reserve(io::ClampCount(buckets, in.remaining(), 12));
      uint64_t previous_key = 0;
      bool first = true;
      for (uint64_t b = 0; b < buckets && in.ok(); ++b) {
        const uint64_t key = in.GetU64();
        const uint32_t size = in.GetU32();
        if ((!first && key <= previous_key) || size == 0) {
          lsh_status[s] =
              InvalidArgumentError(snap_dir + ": malformed LSH bucket");
          return;
        }
        first = false;
        previous_key = key;
        std::vector<uint32_t> docs;
        docs.reserve(io::ClampCount(size, in.remaining(), 4));
        for (uint32_t d = 0; d < size && in.ok(); ++d) {
          const uint32_t doc = in.GetU32();
          if (doc >= n || (!docs.empty() && docs.back() >= doc)) {
            lsh_status[s] =
                InvalidArgumentError(snap_dir + ": malformed LSH bucket");
            return;
          }
          docs.push_back(doc);
        }
        map.emplace(key, std::move(docs));
      }
      if (!in.AtEnd()) {
        lsh_status[s] =
            InvalidArgumentError(snap_dir + ": malformed LSH shard");
        return;
      }
      state.cover.lsh_buckets[s] = std::move(map);
    });
    CEM_RETURN_IF_ERROR(FirstError(lsh_status));
  }

  return matcher.RestoreState(std::move(state));
}

// --- token index ------------------------------------------------------------

Status SaveTokenIndex(const std::string& dir, const text::TokenIndex& index,
                      const ExecutionContext& ctx, io::FaultPlan* faults,
                      bool sync) {
  const size_t num_shards = index.num_shards();
  const size_t n = index.num_documents();
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return InternalError("cannot create " + dir + ": " + ec.message());
  }
  std::vector<Status> shard_status(num_shards);
  ParallelFor(ctx.pool(), num_shards, [&](size_t s) {
    io::Buffer out;
    out.PutU8(static_cast<uint8_t>(Section::kTokenShard));
    out.PutU32(static_cast<uint32_t>(s));
    out.PutU32(static_cast<uint32_t>(num_shards));
    uint64_t count = 0;
    for (size_t doc = s; doc < n; doc += num_shards) ++count;
    out.PutU64(count);
    for (size_t doc = s; doc < n; doc += num_shards) {
      const std::span<const text::TokenRef> tokens = index.doc_tokens(doc);
      out.PutU32(static_cast<uint32_t>(doc));
      out.PutU32(static_cast<uint32_t>(tokens.size()));
      for (const text::TokenRef& token : tokens) out.PutString(token.view());
    }
    shard_status[s] = io::WriteFramedFile(
        (fs::path(dir) / ShardFileName("toki", s)).string(), kTokenIndexMagic,
        kSnapshotVersion, out.bytes(), faults, sync);
  });
  CEM_RETURN_IF_ERROR(FirstError(shard_status));

  io::Buffer out;
  out.PutU8(static_cast<uint8_t>(Section::kTokenMeta));
  out.PutU32(static_cast<uint32_t>(num_shards));
  out.PutU64(n);
  CEM_RETURN_IF_ERROR(
      io::WriteFramedFile((fs::path(dir) / "toki_meta.bin").string(),
                          kTokenIndexMagic, kSnapshotVersion, out.bytes(),
                          faults, sync));
  return sync ? io::SyncDir(dir) : OkStatus();
}

Status LoadTokenIndex(const std::string& dir, text::TokenIndex& index,
                      const ExecutionContext& ctx) {
  if (!index.empty()) {
    return FailedPreconditionError("LoadTokenIndex needs an empty index");
  }
  uint32_t file_shards = 0;
  uint64_t n = 0;
  {
    Result<std::string> bytes =
        io::ReadFramedFile((fs::path(dir) / "toki_meta.bin").string(),
                           kTokenIndexMagic, kSnapshotVersion);
    if (!bytes.ok()) return bytes.status();
    io::Cursor in(*bytes);
    if (in.GetU8() != static_cast<uint8_t>(Section::kTokenMeta)) {
      return InvalidArgumentError(dir + ": wrong section tag");
    }
    file_shards = in.GetU32();
    n = in.GetU64();
    if (!in.AtEnd() || file_shards == 0) {
      return InvalidArgumentError(dir + ": malformed toki_meta.bin");
    }
    if (file_shards > kMaxShards) {
      return InvalidArgumentError(dir + ": implausible token shard count");
    }
  }
  // Every document costs >= 8 bytes in its shard file; bounding n by the
  // on-disk total keeps a corrupt count from allocating n empty vectors.
  uintmax_t shard_bytes = 0;
  for (uint32_t s = 0; s < file_shards; ++s) {
    std::error_code ec;
    const uintmax_t size =
        fs::file_size(fs::path(dir) / ShardFileName("toki", s), ec);
    if (!ec) shard_bytes += size;
  }
  if (n > shard_bytes / 8) {
    return InvalidArgumentError(dir + ": implausible document count");
  }
  std::vector<std::vector<std::string>> doc_tokens(n);
  std::vector<Status> shard_status(file_shards);
  std::vector<uint64_t> shard_counts(file_shards, 0);
  ParallelFor(ctx.pool(), file_shards, [&](size_t s) {
    Result<std::string> bytes =
        io::ReadFramedFile((fs::path(dir) / ShardFileName("toki", s)).string(),
                           kTokenIndexMagic, kSnapshotVersion);
    if (!bytes.ok()) {
      shard_status[s] = bytes.status();
      return;
    }
    io::Cursor in(*bytes);
    if (in.GetU8() != static_cast<uint8_t>(Section::kTokenShard) ||
        in.GetU32() != s || in.GetU32() != file_shards) {
      shard_status[s] =
          InvalidArgumentError(dir + ": token shard header mismatch");
      return;
    }
    const uint64_t count = in.GetU64();
    uint64_t previous_doc = 0;
    bool first = true;
    for (uint64_t i = 0; i < count && in.ok(); ++i) {
      const uint32_t doc = in.GetU32();
      if (doc >= n || doc % file_shards != s ||
          (!first && doc <= previous_doc)) {
        shard_status[s] = InvalidArgumentError(dir + ": bad token doc id");
        return;
      }
      first = false;
      previous_doc = doc;
      const uint32_t num_tokens = in.GetU32();
      std::vector<std::string>& tokens = doc_tokens[doc];
      tokens.reserve(io::ClampCount(num_tokens, in.remaining(), 4));
      for (uint32_t t = 0; t < num_tokens && in.ok(); ++t) {
        tokens.push_back(in.GetString());
      }
    }
    if (!in.AtEnd()) {
      shard_status[s] = InvalidArgumentError(dir + ": malformed token shard");
      return;
    }
    shard_counts[s] = count;
  });
  CEM_RETURN_IF_ERROR(FirstError(shard_status));
  uint64_t total = 0;
  for (uint64_t c : shard_counts) total += c;
  if (total != n) {
    return InvalidArgumentError(dir + ": token shards miss documents");
  }
  index.AddDocuments(doc_tokens, ctx);
  return OkStatus();
}

}  // namespace cem::persist
