#ifndef CEM_PERSIST_RECOVERY_H_
#define CEM_PERSIST_RECOVERY_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/matcher.h"
#include "data/entity.h"
#include "persist/format.h"
#include "persist/snapshot.h"
#include "persist/wal.h"
#include "stream/streaming_matcher.h"
#include "util/io.h"
#include "util/status.h"

namespace cem::persist {

/// Durability knobs of a persisted streaming run.
struct PersistOptions {
  /// State directory: holds wal.log and snap_<inserts>/ subdirectories.
  std::string dir;
  /// Auto-checkpoint after at least this many inserts since the last
  /// snapshot (taken at the enclosing Add/AddBatch boundary — the matcher
  /// is quiescent there). 0 disables auto-checkpointing; explicit
  /// Checkpoint() calls still work.
  size_t snapshot_every_inserts = 4096;
  /// Optional write-path fault injection, shared by the WAL and every
  /// snapshot file (crash-recovery tests). Must outlive the matcher.
  io::FaultPlan* faults = nullptr;
  /// fsync every WAL append and snapshot file (plus the snapshot
  /// directory entries). Off, acknowledged chunks survive a process
  /// crash but an OS crash or power loss can lose bytes still in the
  /// page cache; on, the durability point extends to power loss at a
  /// large per-append cost.
  bool fsync = false;
};

/// The arrival sidecar (arrival.meta): the replay parameters of the tool
/// that fed a persisted stream. The StateFingerprint binds a state
/// directory to the dataset and cover options but not to the feeder's
/// arrival shuffle — recovering with a different seed would pass the
/// fingerprint check and then silently feed references from a different
/// permutation. The seed (and the chunk size, which fixes the replayed
/// drain boundaries) therefore persist next to the WAL and are reconciled
/// on recovery.
struct ArrivalMeta {
  /// Seed of the seeded random arrival order.
  uint64_t arrival_seed = 0;
  /// References per AddBatch chunk.
  uint32_t stream_chunk = 0;

  friend bool operator==(const ArrivalMeta&, const ArrivalMeta&) = default;
};

/// Writes `meta` as `dir`/arrival.meta (overwriting).
Status WriteArrivalMeta(const std::string& dir, const ArrivalMeta& meta);

/// Reads `dir`/arrival.meta. NotFound when the sidecar does not exist;
/// InvalidArgument when it exists but does not parse.
Result<ArrivalMeta> ReadArrivalMeta(const std::string& dir);

/// What Recover() found and did.
struct RecoveryInfo {
  /// Live references after recovery (snapshot + replayed WAL tail).
  size_t inserts_recovered = 0;
  /// Insert count of the snapshot used (0 with used_snapshot false when
  /// recovery rebuilt purely from the WAL).
  size_t snapshot_inserts = 0;
  bool used_snapshot = false;
  /// Snapshot candidates skipped as incomplete or corrupt (missing shard
  /// file, bad checksum, torn MANIFEST...); recovery falls back newest to
  /// oldest, then to a pure WAL replay.
  size_t snapshots_skipped = 0;
  /// WAL chunks re-ingested past the snapshot point.
  size_t chunks_replayed = 0;
  /// True when a torn or corrupt WAL tail was dropped (and the file
  /// truncated back to its valid prefix).
  bool wal_tail_truncated = false;
};

/// A StreamingMatcher wrapped in snapshot + WAL durability. Usage:
///
///   PersistentStreamingMatcher psm(matcher, stream_options, {dir});
///   CEM_RETURN_IF_ERROR(psm.Start());      // fresh run, or
///   CEM_RETURN_IF_ERROR(psm.Recover(&i));  // resume after a crash
///   psm.AddBatch(chunk);                    // WAL append, then apply
///
/// Every ingest call appends its chunk to the WAL and flushes BEFORE
/// applying it, so the recoverable insert count is always a chunk
/// boundary; Recover() loads the newest complete snapshot (skipping
/// damaged ones), replays the WAL chunks past it through AddBatch, and
/// truncates any torn tail. The WAL header records the insert count its
/// chunks continue from (0 for a fresh run; the recovered state's count
/// when Recover() rebuilds a missing WAL next to a surviving snapshot),
/// so replay accounting stays correct across repeated crash/recover
/// cycles. Because replay repeats the original chunk boundaries, the
/// recovered matches, cover AND work counters are bit-identical to the
/// uninterrupted run at the same point — the caller only re-feeds
/// references from num_live() onward (anything the WAL lost in the torn
/// tail was, by the write-ahead discipline, never acknowledged as
/// applied). Acknowledged means durable against process crashes; set
/// PersistOptions::fsync to extend that to OS crashes and power loss.
class PersistentStreamingMatcher {
 public:
  /// `matcher` must outlive this object; `stream_options.context`, when
  /// set, likewise. The state directory is bound to the fingerprint of
  /// (dataset shape, cover options): Recover() refuses state written
  /// under any other configuration.
  PersistentStreamingMatcher(const core::Matcher& matcher,
                             const stream::StreamingOptions& stream_options,
                             const PersistOptions& persist_options);

  /// Begins a fresh persisted run: creates the directory and an empty
  /// WAL. Fails with FailedPrecondition if the directory already holds
  /// streaming state (recover or wipe it explicitly instead).
  Status Start();

  /// Resumes from the directory's state as described above. Fails with
  /// NotFound when the directory holds no state at all, and with
  /// InvalidArgument on a fingerprint mismatch.
  Status Recover(RecoveryInfo* info = nullptr);

  /// Ingest one reference / one chunk: WAL append + flush, apply,
  /// auto-checkpoint. A non-OK status (real IO failure or simulated
  /// crash) means the chunk may not have been applied; the matcher must
  /// be abandoned and recovered.
  Status Add(data::EntityId ref);
  Status AddBatch(const std::vector<data::EntityId>& refs);

  /// Writes a snapshot of the current (quiescent) state now.
  Status Checkpoint();

  /// The wrapped matcher. Valid after a successful Start()/Recover().
  const stream::StreamingMatcher& matcher() const { return *inner_; }
  size_t num_live() const { return inner_->num_live(); }
  bool started() const { return started_; }

  const StateFingerprint& fingerprint() const { return fingerprint_; }

 private:
  Status MaybeAutoCheckpoint();

  const core::Matcher& core_matcher_;
  stream::StreamingOptions stream_options_;
  PersistOptions options_;
  StateFingerprint fingerprint_;
  std::unique_ptr<stream::StreamingMatcher> inner_;
  WalWriter wal_;
  size_t last_checkpoint_inserts_ = 0;
  bool started_ = false;
};

}  // namespace cem::persist

#endif  // CEM_PERSIST_RECOVERY_H_
