#include "persist/format.h"

#include <cstdio>

namespace cem::persist {

StateFingerprint StateFingerprint::Of(
    const data::Dataset& dataset,
    const stream::IncrementalCoverOptions& options) {
  StateFingerprint fp;
  fp.dataset_entities = dataset.num_entities();
  fp.dataset_pairs = dataset.num_candidate_pairs();
  fp.num_hashes = options.minhash.num_hashes;
  fp.minhash_seed = options.minhash.seed;
  fp.bands = options.lsh.bands;
  fp.rows = options.lsh.rows;
  fp.loose = options.loose;
  fp.tight = options.tight;
  return fp;
}

void StateFingerprint::AppendTo(io::Buffer& buffer) const {
  buffer.PutU64(dataset_entities);
  buffer.PutU64(dataset_pairs);
  buffer.PutU32(num_hashes);
  buffer.PutU64(minhash_seed);
  buffer.PutU32(bands);
  buffer.PutU32(rows);
  buffer.PutDouble(loose);
  buffer.PutDouble(tight);
}

StateFingerprint StateFingerprint::ReadFrom(io::Cursor& cursor) {
  StateFingerprint fp;
  fp.dataset_entities = cursor.GetU64();
  fp.dataset_pairs = cursor.GetU64();
  fp.num_hashes = cursor.GetU32();
  fp.minhash_seed = cursor.GetU64();
  fp.bands = cursor.GetU32();
  fp.rows = cursor.GetU32();
  fp.loose = cursor.GetDouble();
  fp.tight = cursor.GetDouble();
  return fp;
}

std::string SnapshotDirName(size_t inserts) {
  char name[32];
  std::snprintf(name, sizeof(name), "snap_%012zu", inserts);
  return name;
}

}  // namespace cem::persist
