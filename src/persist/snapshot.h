#ifndef CEM_PERSIST_SNAPSHOT_H_
#define CEM_PERSIST_SNAPSHOT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "persist/format.h"
#include "stream/streaming_matcher.h"
#include "text/token_index.h"
#include "util/execution_context.h"
#include "util/io.h"
#include "util/status.h"

namespace cem::persist {

/// One snapshot = the subdirectory `<dir>/snap_<inserts>/` holding
///   stream.bin    arrival order, seed map, ingest counters
///   matches.bin   converged match keys + matching counters
///   cover.bin     neighborhoods + core/full membership
///   sig_<s>.bin   MinHash signatures of slots == s (mod num_shards)
///   lsh_<s>.bin   LSH buckets of shard s (fast path; optional on load)
///   MANIFEST      fingerprint + cross-checked counts — written LAST, so
///                 its presence and checksum mark the snapshot complete.
/// Every file is an io::WriteFramedFile (magic + version + one checksummed
/// record); all containers are sorted at write time and every integer is
/// explicit little-endian, so the bytes are a pure function of the state —
/// save -> load -> save reproduces identical files (pinned by tests, and
/// what makes the committed golden fixture stable across hosts).
///
/// Shard files are written and read as ExecutionContext parallel-for jobs;
/// the shard count is recorded in the MANIFEST. Loading into a matcher
/// with a different LSH shard count skips the lsh_<s> files and rebuilds
/// the index from the signatures (identical queries either way).

/// Saves one complete snapshot of `matcher` (which must be quiescent —
/// every Add/AddBatch returns quiescent) under `dir`, creating
/// `dir/snap_<inserts>/`. Re-saving at the same insert count overwrites in
/// place, removing the MANIFEST first so a crash mid-overwrite can never
/// leave a stale completeness marker on half-written files. A simulated
/// crash from `faults` propagates as the Internal "simulated crash" status.
/// With `sync` every file is fsynced and the directory entries are synced
/// after the MANIFEST lands, making the snapshot durable against OS
/// crashes and power loss, not just process kills.
Status SaveSnapshot(const std::string& dir,
                    const stream::StreamingMatcher& matcher,
                    io::FaultPlan* faults = nullptr, bool sync = false);

/// A snapshot candidate under a state directory.
struct SnapshotRef {
  size_t inserts = 0;
  std::string path;  // The snap_<inserts> subdirectory.
};

/// Snapshot subdirectories under `dir`, newest (most inserts) first.
/// Includes incomplete/corrupt candidates — LoadSnapshot decides.
std::vector<SnapshotRef> ListSnapshots(const std::string& dir);

/// Loads the snapshot at `snap_dir` into `matcher`, which must be freshly
/// constructed over the same dataset and options (fingerprint-checked
/// against the MANIFEST). Any missing file, checksum failure, version
/// mismatch or structural inconsistency returns a non-OK status naming the
/// problem; recovery treats that as "skip this snapshot", never a crash.
Status LoadSnapshot(const std::string& snap_dir,
                    stream::StreamingMatcher& matcher);

// --- token index ------------------------------------------------------------
// The canopy-blocking TokenIndex persists standalone (it belongs to the
// batch front-end, not the streaming matcher): toki_meta.bin plus
// toki_<s>.bin files with documents partitioned by doc_id (mod shards).
// Postings are rebuilt from the saved token sets on load — normalisation
// is idempotent and the shard partition re-derives locally instead of
// trusting a saved std::hash assignment across processes.

/// Saves `index` into `dir` (created if needed), sharded by its own
/// num_shards(); shard files write in parallel on `ctx`. `sync` as in
/// SaveSnapshot.
Status SaveTokenIndex(const std::string& dir, const text::TokenIndex& index,
                      const ExecutionContext& ctx = ExecutionContext::Default(),
                      io::FaultPlan* faults = nullptr, bool sync = false);

/// Loads a saved token index into empty `index` (any shard count); shard
/// files read in parallel on `ctx`.
Status LoadTokenIndex(const std::string& dir, text::TokenIndex& index,
                      const ExecutionContext& ctx = ExecutionContext::Default());

}  // namespace cem::persist

#endif  // CEM_PERSIST_SNAPSHOT_H_
