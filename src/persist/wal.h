#ifndef CEM_PERSIST_WAL_H_
#define CEM_PERSIST_WAL_H_

#include <memory>
#include <string>
#include <vector>

#include "data/entity.h"
#include "persist/format.h"
#include "util/io.h"
#include "util/status.h"

namespace cem::persist {

/// Append-only ingest write-ahead log. File layout: the 8-byte kWalMagic +
/// u32 version prefix, then framed checksummed records (util/io.h) — record
/// 0 is a header carrying the StateFingerprint and the base insert count
/// (how many inserts were already durable elsewhere when this file was
/// created: 0 for a fresh run, the recovered snapshot's count when
/// recovery rebuilds a missing WAL), every further record is one ingested
/// chunk (the refs of one Add/AddBatch call, in order). Replay accounting
/// starts at the base, so chunk 0 of a rebuilt WAL is insert `base`, not
/// insert 0.
///
/// Chunk records are written and flushed BEFORE the chunk is applied to the
/// in-memory state (true write-ahead). That makes every recoverable insert
/// count a chunk boundary, so replaying the surviving chunks through
/// AddBatch reproduces the exact convergence-drain boundaries of the
/// original run — which is what makes the recovered *work counters*, not
/// just the matches, bit-identical (the crash-recovery tests pin this).
///
/// The 12-byte magic/version prefix is deliberately not fault-tolerant: a
/// file of >= 12 bytes whose prefix does not parse is indistinguishable
/// from a wrong file and surfaces as an error, never as a silent empty
/// recovery. A file shorter than the prefix is a crash during creation
/// (nothing was ever applied) and reads as empty with header_valid false.
class WalWriter {
 public:
  /// `faults` may be null and must outlive the writer. With `sync` true
  /// every append also fsyncs, extending the durability point from
  /// process crashes to OS crashes/power loss (at a large per-append
  /// cost).
  explicit WalWriter(std::string path, io::FaultPlan* faults = nullptr,
                     bool sync = false);

  /// Creates/truncates the file and writes the prefix + header record.
  /// `base_inserts` is the live insert count the WAL starts appending
  /// from — 0 for a fresh run, the recovered state's count when recovery
  /// rebuilds a WAL next to a surviving snapshot.
  Status Create(const StateFingerprint& fingerprint,
                uint64_t base_inserts = 0);

  /// Continues an existing WAL whose bytes end at a record boundary
  /// (recovery truncates any torn tail before calling this).
  Status OpenForAppend();

  /// Appends one chunk record and flushes it — the durability point: once
  /// this returns OK the chunk survives any later process crash (and, with
  /// `sync`, any OS crash). Call before applying the chunk (write-ahead).
  /// `refs` may not be empty.
  Status AppendChunk(const std::vector<data::EntityId>& refs);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  io::FaultPlan* faults_;
  bool sync_;
  std::unique_ptr<io::FileWriter> file_;
};

/// What a WAL scan recovered.
struct WalContents {
  /// The surviving whole chunks, in append order.
  std::vector<std::vector<data::EntityId>> chunks;
  /// Sum of chunk sizes.
  size_t num_inserts = 0;
  /// Insert count the first chunk record continues from (the header's
  /// base field). Only meaningful when header_valid.
  uint64_t base_inserts = 0;
  /// Byte length of the valid prefix (prefix + header + whole records);
  /// recovery truncates the file to this before reopening for append.
  uint64_t valid_bytes = 0;
  /// True when bytes past valid_bytes failed to parse (torn final record
  /// from a crash, or a flipped byte caught by a record checksum). Not an
  /// error: the valid prefix is what recovery replays.
  bool torn_tail = false;
  /// False when the file is missing or ends inside the prefix/header —
  /// a crash during creation. Recovery recreates the WAL from scratch.
  bool header_valid = false;
};

/// Scans the WAL at `path`. A missing file, or one torn before the header
/// record completed, reads as empty with header_valid false. A parseable
/// file whose fingerprint disagrees with `fingerprint`, whose magic is
/// wrong, or whose version is newer than this reader returns an error —
/// those mean "wrong state directory", not "crashed mid-write".
Result<WalContents> ReadWal(const std::string& path,
                            const StateFingerprint& fingerprint);

}  // namespace cem::persist

#endif  // CEM_PERSIST_WAL_H_
