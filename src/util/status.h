#ifndef CEM_UTIL_STATUS_H_
#define CEM_UTIL_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace cem {

/// Error categories used across the library. Follows the familiar
/// absl::StatusCode vocabulary, restricted to the codes we actually raise.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
};

/// Returns a human-readable name for `code` (e.g. "INVALID_ARGUMENT").
std::string_view StatusCodeToString(StatusCode code);

/// Lightweight status object for fallible operations. The library does not
/// use exceptions (see DESIGN.md); functions that can fail return `Status`
/// or `Result<T>`.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with `code` and diagnostic `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "CODE: message".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status InternalError(std::string message);
Status UnimplementedError(std::string message);

/// Holds either a value of type `T` or an error `Status`. Accessing the
/// value of an errored result aborts the process (checked via CEM_CHECK
/// semantics), mirroring absl::StatusOr.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value, for natural `return value;` use.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }

  const Status& status() const {
    static const Status kOk;
    return value_.has_value() ? kOk : status_;
  }

  const T& value() const& {
    AbortIfError();
    return *value_;
  }
  T& value() & {
    AbortIfError();
    return *value_;
  }
  T&& value() && {
    AbortIfError();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const;

  std::optional<T> value_;
  Status status_;
};

namespace internal_status {
[[noreturn]] void DieBadResultAccess(const Status& status);
}  // namespace internal_status

template <typename T>
void Result<T>::AbortIfError() const {
  if (!value_.has_value()) internal_status::DieBadResultAccess(status_);
}

}  // namespace cem

/// Propagates a non-OK status from an expression that yields `cem::Status`.
#define CEM_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::cem::Status cem_status_macro_tmp__ = (expr);  \
    if (!cem_status_macro_tmp__.ok()) {             \
      return cem_status_macro_tmp__;                \
    }                                               \
  } while (false)

#define CEM_STATUS_MACROS_CONCAT_INNER_(x, y) x##y
#define CEM_STATUS_MACROS_CONCAT_(x, y) \
  CEM_STATUS_MACROS_CONCAT_INNER_(x, y)

/// Unwraps a `cem::Result<T>` expression into `lhs` (a declaration or an
/// existing variable), propagating the error status on failure:
///
///   CEM_ASSIGN_OR_RETURN(const ArrivalMeta meta, ReadArrivalMeta(dir));
#define CEM_ASSIGN_OR_RETURN(lhs, expr)                              \
  CEM_ASSIGN_OR_RETURN_IMPL_(                                        \
      CEM_STATUS_MACROS_CONCAT_(cem_result_macro_tmp__, __LINE__), lhs, expr)

#define CEM_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) {                                 \
    return tmp.status();                           \
  }                                                \
  lhs = std::move(tmp).value()

#endif  // CEM_UTIL_STATUS_H_
