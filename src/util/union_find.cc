#include "util/union_find.h"

#include <algorithm>
#include <map>

#include "util/logging.h"

namespace cem {

UnionFind::UnionFind(size_t n) { Resize(n); }

void UnionFind::Resize(size_t n) {
  size_t old = parent_.size();
  if (n <= old) return;
  parent_.resize(n);
  size_.resize(n, 1);
  for (size_t i = old; i < n; ++i) parent_[i] = static_cast<uint32_t>(i);
  num_sets_ += n - old;
}

uint32_t UnionFind::Find(uint32_t x) {
  CEM_CHECK(x < parent_.size());
  uint32_t root = x;
  while (parent_[root] != root) root = parent_[root];
  // Path compression.
  while (parent_[x] != root) {
    uint32_t next = parent_[x];
    parent_[x] = root;
    x = next;
  }
  return root;
}

uint32_t UnionFind::Union(uint32_t a, uint32_t b) {
  uint32_t ra = Find(a);
  uint32_t rb = Find(b);
  if (ra == rb) return ra;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --num_sets_;
  return ra;
}

bool UnionFind::Connected(uint32_t a, uint32_t b) { return Find(a) == Find(b); }

std::vector<std::vector<uint32_t>> UnionFind::Groups() {
  std::map<uint32_t, std::vector<uint32_t>> by_root;
  for (uint32_t i = 0; i < parent_.size(); ++i) {
    by_root[Find(i)].push_back(i);
  }
  std::vector<std::vector<uint32_t>> out;
  out.reserve(by_root.size());
  for (auto& [root, members] : by_root) {
    std::sort(members.begin(), members.end());
    out.push_back(std::move(members));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
  return out;
}

}  // namespace cem
