#ifndef CEM_UTIL_THREAD_POOL_H_
#define CEM_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cem {

/// Fixed-size worker pool. Used by the GridExecutor to model grid machines
/// (one worker thread per simulated machine) and, via ExecutionContext, by
/// every parallel pipeline stage.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding work and joins the workers. An exception captured
  /// after the last Wait() is dropped.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker.
  void Schedule(std::function<void()> task);

  /// Blocks until every scheduled task has finished. If any task threw, the
  /// first captured exception is rethrown here (and cleared, so the pool
  /// stays usable); later tasks still ran to completion.
  void Wait();

  /// Pops one queued task (if any) and runs it on the calling thread,
  /// with the same accounting/exception capture as a worker. Lets blocked
  /// threads help drain the pool instead of deadlocking a saturated one —
  /// ParallelFor's wait loop uses this. Returns false if the queue was
  /// empty.
  bool TryRunOneTask();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  /// Runs one dequeued task with exception capture + in-flight accounting.
  void RunTask(std::function<void()> task);

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::exception_ptr first_error_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> threads_;
};

/// Process-wide pool shared by ExecutionContext::Default(): created on
/// first use with CEM_THREADS workers (unset/0 = hardware concurrency) and
/// joined at process exit. Prefer reaching it through an ExecutionContext.
ThreadPool& SharedThreadPool();

/// Runs `fn(i)` for i in [0, n) across `pool`, blocking until all complete.
/// Indices are pulled from a shared counter (dynamic load balancing) and
/// the calling thread participates as one of the pool-size workers (so a
/// 1-thread pool runs serially on the caller, and calling ParallelFor from
/// inside a pool task cannot deadlock on a saturated pool). If some
/// `fn(i)` throws, unstarted iterations are abandoned and the first
/// captured exception is rethrown on the calling thread.
void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace cem

#endif  // CEM_UTIL_THREAD_POOL_H_
