#ifndef CEM_UTIL_THREAD_POOL_H_
#define CEM_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cem {

/// Fixed-size worker pool. Used by the GridExecutor to model grid machines:
/// one worker thread per simulated machine.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding work and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker.
  void Schedule(std::function<void()> task);

  /// Blocks until every scheduled task has finished.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> threads_;
};

/// Runs `fn(i)` for i in [0, n) across `pool`, blocking until all complete.
void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace cem

#endif  // CEM_UTIL_THREAD_POOL_H_
