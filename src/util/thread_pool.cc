#include "util/thread_pool.h"

#include <utility>

#include "util/logging.h"

namespace cem {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    CEM_CHECK(!shutting_down_) << "Schedule after shutdown";
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  for (size_t i = 0; i < n; ++i) {
    pool.Schedule([&fn, i] { fn(i); });
  }
  pool.Wait();
}

}  // namespace cem
