#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <utility>

#include "util/logging.h"

namespace cem {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    CEM_CHECK(!shutting_down_) << "Schedule after shutdown";
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_ != nullptr) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::RunTask(std::function<void()> task) {
  std::exception_ptr error;
  try {
    task();
  } catch (...) {
    error = std::current_exception();
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (error != nullptr && first_error_ == nullptr) first_error_ = error;
    --in_flight_;
    if (in_flight_ == 0) all_done_.notify_all();
  }
}

bool ThreadPool::TryRunOneTask() {
  std::function<void()> task;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  RunTask(std::move(task));
  return true;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    RunTask(std::move(task));
  }
}

ThreadPool& SharedThreadPool() {
  static ThreadPool pool([] {
    const char* raw = std::getenv("CEM_THREADS");
    const int parsed = raw == nullptr ? 0 : std::atoi(raw);
    return parsed > 0 ? static_cast<size_t>(parsed)
                      : std::max<size_t>(1, std::thread::hardware_concurrency());
  }());
  return pool;
}

void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;

  // Per-call state: the pool's Wait() cannot be used here because it waits
  // on *all* in-flight tasks — a nested ParallelFor issued from inside a
  // pool task would then deadlock on its own enclosing task.
  struct State {
    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex mu;
    std::condition_variable helpers_done;
    size_t live_helpers = 0;
    std::exception_ptr first_error;
  } state;

  const auto run = [&state, &fn, n] {
    while (!state.failed.load(std::memory_order_relaxed)) {
      const size_t i = state.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state.mu);
        if (state.first_error == nullptr) {
          state.first_error = std::current_exception();
        }
        state.failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  // The caller counts as one worker: num_threads()-1 helpers keep total
  // concurrency at exactly the pool's size (a 1-thread pool runs the loop
  // serially on the caller).
  const size_t helpers = std::min(n - 1, pool.num_threads() - 1);
  state.live_helpers = helpers;
  for (size_t t = 0; t < helpers; ++t) {
    pool.Schedule([&state, run] {
      run();
      std::lock_guard<std::mutex> lock(state.mu);
      if (--state.live_helpers == 0) state.helpers_done.notify_all();
    });
  }
  run();  // The caller works too; helpers that never got a slot exit fast.
  // Wait for the helpers — draining other queued pool tasks meanwhile.
  // Helping is what makes nesting safe: on a saturated pool a queued inner
  // helper can otherwise wait forever for the very worker that is blocked
  // here. Invariant: a thread only reaches the condition-variable wait with
  // an empty queue, i.e. with its own helpers running or finished, so the
  // wait always terminates.
  while (true) {
    {
      std::unique_lock<std::mutex> lock(state.mu);
      if (state.live_helpers == 0) break;
    }
    if (pool.TryRunOneTask()) continue;
    std::unique_lock<std::mutex> lock(state.mu);
    if (state.live_helpers == 0) break;
    state.helpers_done.wait(lock);
  }
  if (state.first_error != nullptr) std::rethrow_exception(state.first_error);
}

}  // namespace cem
