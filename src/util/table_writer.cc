#include "util/table_writer.h"

#include <algorithm>
#include <cstdio>

#include "util/logging.h"

namespace cem {

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TableWriter::AddRow(std::vector<std::string> cells) {
  CEM_CHECK(cells.size() == headers_.size())
      << "row has " << cells.size() << " cells, expected " << headers_.size();
  rows_.push_back(std::move(cells));
}

std::string TableWriter::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

void TableWriter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  print_row(headers_);
  os << '|';
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TableWriter::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace cem
