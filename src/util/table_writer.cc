#include "util/table_writer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/logging.h"

namespace cem {

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TableWriter::AddRow(std::vector<std::string> cells) {
  CEM_CHECK(cells.size() == headers_.size())
      << "row has " << cells.size() << " cells, expected " << headers_.size();
  rows_.push_back(std::move(cells));
}

std::string TableWriter::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

void TableWriter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  print_row(headers_);
  os << '|';
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

namespace {

/// Emits `cell` as a bare JSON number when it parses fully as a finite one
/// (JSON has no NaN/Inf literals), else as an escaped JSON string.
void PrintJsonCell(std::ostream& os, const std::string& cell) {
  if (!cell.empty()) {
    char* end = nullptr;
    const double value = std::strtod(cell.c_str(), &end);
    if (end == cell.c_str() + cell.size() && std::isfinite(value)) {
      os << cell;
      return;
    }
  }
  os << '"';
  for (char c : cell) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        os << c;
    }
  }
  os << '"';
}

}  // namespace

void TableWriter::PrintJson(std::ostream& os) const {
  os << "{\"headers\": [";
  for (size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) os << ", ";
    PrintJsonCell(os, headers_[c]);
  }
  os << "], \"rows\": [";
  for (size_t r = 0; r < rows_.size(); ++r) {
    if (r > 0) os << ", ";
    os << '[';
    for (size_t c = 0; c < rows_[r].size(); ++c) {
      if (c > 0) os << ", ";
      PrintJsonCell(os, rows_[r][c]);
    }
    os << ']';
  }
  os << "]}";
}

void TableWriter::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace cem
