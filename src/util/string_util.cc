#include "util/string_util.h"

#include <cctype>

namespace cem {

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::vector<std::string> CharNgrams(std::string_view text, size_t n) {
  std::vector<std::string> out;
  if (text.empty() || n == 0) return out;
  if (text.size() <= n) {
    out.emplace_back(text);
    return out;
  }
  out.reserve(text.size() - n + 1);
  for (size_t i = 0; i + n <= text.size(); ++i) {
    out.emplace_back(text.substr(i, n));
  }
  return out;
}

}  // namespace cem
