#ifndef CEM_UTIL_HASH_H_
#define CEM_UTIL_HASH_H_

#include <cstdint>
#include <string_view>

namespace cem {

/// The canonical 64-bit hashes of the per-record hot path. Every structure
/// that hashes token bytes (MinHash salting, LSH band keys, token-index
/// sharding) uses exactly these two functions, so a token hashed once —
/// e.g. at tokenisation time into a text::TokenCorpus — can be reused by
/// all of them without re-walking the bytes.

/// FNV-1a offset basis: the running-hash seed for incremental hashing
/// (Fnv1a64Byte), equal to Fnv1a64("").
inline constexpr uint64_t kFnv1a64Seed = 0xcbf29ce484222325ULL;

/// One FNV-1a step: folds byte `c` into running hash `h`.
inline constexpr uint64_t Fnv1a64Byte(uint64_t h, unsigned char c) {
  return (h ^ c) * 0x100000001b3ULL;
}

/// Extends running hash `h` over `bytes`; Fnv1a64Append(kFnv1a64Seed, s)
/// equals Fnv1a64(s).
inline constexpr uint64_t Fnv1a64Append(uint64_t h, std::string_view bytes) {
  for (char c : bytes) h = Fnv1a64Byte(h, static_cast<unsigned char>(c));
  return h;
}

/// FNV-1a over the token bytes: the base hash each MinHash permutation
/// salts, and the shard/bucket router for token-keyed structures.
inline constexpr uint64_t Fnv1a64(std::string_view bytes) {
  return Fnv1a64Append(kFnv1a64Seed, bytes);
}

/// SplitMix64 finalizer: full-avalanche mix of a salted base hash. Shared
/// by the MinHash kernel and the LSH band-key chain; its exact constants
/// are pinned by the persisted snapshot format (band keys are stored on
/// disk) and the blessed signature fixtures — never change them.
inline constexpr uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace cem

#endif  // CEM_UTIL_HASH_H_
