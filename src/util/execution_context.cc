#include "util/execution_context.h"

#include <algorithm>
#include <cstdlib>
#include <thread>

namespace cem {
namespace {

uint32_t EnvCount(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return 0;
  const int parsed = std::atoi(raw);
  return parsed > 0 ? static_cast<uint32_t>(parsed) : 0;
}

uint32_t ResolveThreads(uint32_t num_threads) {
  if (num_threads > 0) return num_threads;
  return std::max(1u, std::thread::hardware_concurrency());
}

/// More shards than workers so skewed shards (hot buckets cluster by key)
/// still balance; capped so tiny indexes do not pay per-shard overhead.
uint32_t ResolveShards(uint32_t num_shards, uint32_t num_threads) {
  if (num_shards > 0) return std::min(num_shards, 256u);
  return std::clamp(4 * num_threads, 1u, 256u);
}

/// Token-index shards: CEM_TOKEN_SHARDS when set, else the same resolution
/// as the LSH bucket shards (one knob tunes both by default).
uint32_t ResolveTokenShards(uint32_t num_shards, uint32_t num_threads) {
  const uint32_t env = EnvCount("CEM_TOKEN_SHARDS");
  if (num_shards == 0 && env > 0) return ResolveShards(env, num_threads);
  return ResolveShards(num_shards > 0 ? num_shards
                                      : EnvCount("CEM_LSH_SHARDS"),
                       num_threads);
}

}  // namespace

ExecutionContext::ExecutionContext()
    : pool_(&SharedThreadPool()),
      num_shards_(ResolveShards(EnvCount("CEM_LSH_SHARDS"),
                                static_cast<uint32_t>(pool_->num_threads()))),
      num_token_shards_(ResolveTokenShards(
          0, static_cast<uint32_t>(pool_->num_threads()))),
      seed_(kDefaultSeed) {}

ExecutionContext::ExecutionContext(uint32_t num_threads, uint32_t num_shards,
                                   uint64_t seed)
    : owned_pool_(std::make_unique<ThreadPool>(ResolveThreads(num_threads))),
      pool_(owned_pool_.get()),
      num_shards_(ResolveShards(
          num_shards > 0 ? num_shards : EnvCount("CEM_LSH_SHARDS"),
          static_cast<uint32_t>(pool_->num_threads()))),
      num_token_shards_(ResolveTokenShards(
          num_shards, static_cast<uint32_t>(pool_->num_threads()))),
      seed_(seed) {}

const ExecutionContext& ExecutionContext::Default() {
  static const ExecutionContext context;
  return context;
}

}  // namespace cem
