#ifndef CEM_UTIL_FLAGS_H_
#define CEM_UTIL_FLAGS_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace cem {

/// Declarative command-line flag registry: each binding ties one
/// `--flag` to a caller-owned target, and one Parse() pass walks the
/// argument list. Both `--flag value` and `--flag=value` forms are
/// accepted for value flags; boolean flags are presence-only. Unknown
/// flags, missing values and unparseable numbers come back as
/// InvalidArgument (with the offending token in the message) instead of
/// half-applied state — the tools turn that into usage + exit 2.
///
/// The optional `set_marker` of a binding records whether the flag
/// appeared explicitly, for flags whose default is "inherit from
/// persisted state" rather than a literal (e.g. --arrival-seed on
/// --recover).
class FlagSet {
 public:
  void Bool(std::string name, bool* target, std::string help);
  void String(std::string name, std::string* target, std::string help);
  void Double(std::string name, double* target, std::string help);
  void Uint32(std::string name, uint32_t* target, std::string help,
              bool* set_marker = nullptr);
  void Uint64(std::string name, uint64_t* target, std::string help,
              bool* set_marker = nullptr);
  void SizeT(std::string name, size_t* target, std::string help);

  /// Parses `args` (argv[1..] — no program name) onto the bound targets.
  /// On error some targets may already hold parsed values; callers treat
  /// any non-OK status as "print usage and exit".
  Status Parse(const std::vector<std::string>& args) const;

  /// One line per flag: name, value kind, help text.
  std::string Usage() const;

 private:
  struct Flag {
    std::string name;  ///< Including the leading "--".
    bool takes_value;
    /// Assigns a raw value string; false = unparseable. Bool flags ignore
    /// the argument.
    std::function<bool(const std::string&)> assign;
    bool* set_marker;
    std::string help;
  };

  void Add(Flag flag);
  const Flag* Find(std::string_view name) const;

  std::vector<Flag> flags_;
};

}  // namespace cem

#endif  // CEM_UTIL_FLAGS_H_
