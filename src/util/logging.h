#ifndef CEM_UTIL_LOGGING_H_
#define CEM_UTIL_LOGGING_H_

#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace cem {

enum class LogSeverity { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

/// Minimum severity that is actually emitted. The startup default comes
/// from the CEM_LOG_LEVEL environment variable (info|warning|error|fatal,
/// case-insensitive, or the numeric 0-3; unset/empty means Info, anything
/// else falls back to Info with a warning). An explicit call overrides the
/// environment — benchmarks raise this to keep their table output clean.
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

/// Parses a severity name ("info", "Warning", "ERROR", "fatal", "0".."3").
/// nullopt on anything else; never warns (the env resolution does).
std::optional<LogSeverity> ParseLogSeverity(std::string_view value);

/// Resolves a CEM_LOG_LEVEL value to the startup severity: null/empty maps
/// to Info silently; an unparseable value maps to Info and sets
/// `*fell_back` (the startup path also prints a one-line warning). Split
/// out so the env parsing is unit-testable without mutating the process
/// environment.
LogSeverity ResolveLogSeverityEnvValue(const char* value,
                                       bool* fell_back = nullptr);

/// Small sequential id of the calling thread, assigned on first log line —
/// what the `t<N>` field of every emitted line shows.
uint32_t LogThreadId();

namespace internal_logging {

/// Stream-style log sink; emits on destruction. A kFatal message aborts.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the message is below the emission
/// threshold; keeps the macro expression well-formed.
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging
}  // namespace cem

#define CEM_LOG(severity)                                          \
  ::cem::internal_logging::LogMessage(::cem::LogSeverity::k##severity, \
                                      __FILE__, __LINE__)               \
      .stream()

/// Aborts with a message when `condition` is false. Used for programming
/// errors (invariant violations), not for data-dependent failures.
#define CEM_CHECK(condition)                                      \
  (condition) ? (void)0                                           \
              : ::cem::internal_logging::LogMessageVoidify() &    \
                    CEM_LOG(Fatal) << "Check failed: " #condition << " "

#define CEM_CHECK_OK(expr)                                            \
  do {                                                                \
    const ::cem::Status cem_check_ok_tmp__ = (expr);                  \
    CEM_CHECK(cem_check_ok_tmp__.ok()) << cem_check_ok_tmp__.ToString(); \
  } while (false)

/// Debug-only CHECK: active in debug builds and whenever
/// CEM_ENABLE_DCHECKS is defined (the sanitizer CI builds define it, so
/// ASAN/TSAN runs enforce these even at -O2). Release builds compile the
/// condition out entirely — use it for asserts too hot or too concurrent
/// for the release path, like the quiescent-point contracts of the
/// streaming/serving layers.
#if !defined(NDEBUG) || defined(CEM_ENABLE_DCHECKS)
#define CEM_DCHECK(condition) CEM_CHECK(condition)
#else
// `true || (condition)` short-circuits (never evaluated at runtime) but
// still compiles the condition, so release builds get no unused-variable
// warnings for values only a DCHECK reads.
#define CEM_DCHECK(condition)                                     \
  (true || (condition))                                           \
      ? (void)0                                                   \
      : ::cem::internal_logging::LogMessageVoidify() &            \
            CEM_LOG(Fatal) << "Check failed: " #condition << " "
#endif

#endif  // CEM_UTIL_LOGGING_H_
