#ifndef CEM_UTIL_IO_H_
#define CEM_UTIL_IO_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace cem::io {

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `size` bytes. Every framed
/// record the persistence layer writes carries one, so torn or bit-flipped
/// state is detected on read instead of silently replayed.
uint32_t Crc32(const void* data, size_t size);
inline uint32_t Crc32(std::string_view bytes) {
  return Crc32(bytes.data(), bytes.size());
}

/// Little-endian append-only byte buffer: the encode half of the snapshot
/// and WAL record formats. All multi-byte values are written little-endian
/// explicitly, so the produced bytes are identical on every host (the
/// golden-fixture test depends on this).
class Buffer {
 public:
  void PutU8(uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  /// IEEE-754 bit pattern, so doubles round-trip exactly.
  void PutDouble(double v);
  void PutBytes(std::string_view bytes) {
    bytes_.append(bytes.data(), bytes.size());
  }
  /// Length-prefixed string (u32 length + raw bytes).
  void PutString(std::string_view s);

  const std::string& bytes() const { return bytes_; }
  std::string TakeBytes() { return std::move(bytes_); }

 private:
  std::string bytes_;
};

/// The decode half: a checked cursor over a byte payload. Every read
/// validates remaining length; once a read fails the cursor is poisoned
/// (`ok()` false, further reads return zero values), so decoders can
/// validate once at the end instead of after every field.
class Cursor {
 public:
  explicit Cursor(std::string_view bytes) : bytes_(bytes) {}

  uint8_t GetU8();
  uint32_t GetU32();
  uint64_t GetU64();
  double GetDouble();
  std::string GetString();

  bool ok() const { return ok_; }
  /// True when the whole payload was consumed and nothing failed.
  bool AtEnd() const { return ok_ && pos_ == bytes_.size(); }
  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  bool Take(size_t n, const char** out);

  std::string_view bytes_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// Decode-safe reserve hint: `count` clamped so the implied allocation
/// cannot exceed what the payload could actually encode (`count` elements
/// of at least `min_encoded_bytes` each within `remaining` bytes). A
/// hostile or corrupt-yet-CRC-valid count then costs a failed parse —
/// the cursor poisons when the bytes run out — instead of a
/// std::length_error/bad_alloc crash inside reserve().
inline size_t ClampCount(uint64_t count, size_t remaining,
                         size_t min_encoded_bytes) {
  const uint64_t cap = remaining / min_encoded_bytes;
  return static_cast<size_t>(count < cap ? count : cap);
}

/// Write-path fault injection: shared by every file a persisted run
/// writes, so a crash-recovery test can kill ingest at an arbitrary byte
/// offset of the durable stream (torn final WAL record, half-written
/// snapshot shard) or corrupt one byte in flight (checksum coverage).
/// `bytes_written` is atomic because snapshot shards save in parallel.
struct FaultPlan {
  static constexpr uint64_t kNone = ~0ULL;
  /// Total byte budget across all writes through this plan; the write that
  /// would cross it is cut short and reported as a simulated crash.
  uint64_t fail_after_bytes = kNone;
  /// XOR 0x01 into the byte at this cumulative write offset.
  uint64_t flip_byte_at = kNone;
  /// Cumulative bytes written through this plan.
  std::atomic<uint64_t> bytes_written{0};
};

/// A write handle over one file, routing every byte through an optional
/// FaultPlan. Not buffered beyond the underlying stdio buffer; Close()
/// flushes and reports errors. A simulated crash (fault budget exhausted)
/// surfaces as kAborted-like kInternal status with "simulated crash" in the
/// message, and the writer refuses further writes — mirroring a killed
/// process whose file ends mid-record.
class FileWriter {
 public:
  enum class Mode { kTruncate, kAppend };

  /// Creates/truncates `path` (kTruncate) or continues an existing file
  /// (kAppend — the WAL reopened after recovery). `faults` may be null (no
  /// injection) and must outlive the writer.
  explicit FileWriter(const std::string& path, FaultPlan* faults = nullptr,
                      Mode mode = Mode::kTruncate);
  ~FileWriter();

  FileWriter(const FileWriter&) = delete;
  FileWriter& operator=(const FileWriter&) = delete;

  /// True if the file opened; when false every write fails.
  bool ok() const { return file_ != nullptr; }

  Status Write(std::string_view bytes);

  /// Flushes buffered bytes to the OS page cache — the WAL's default
  /// per-append durability point (a record is recoverable after a
  /// process crash once its append returned OK; an OS crash or power
  /// loss may still lose it — use Sync() for that).
  Status Flush();

  /// Flush() plus fsync: the bytes survive an OS crash or power loss,
  /// not just a process kill. No-op on platforms without fsync.
  Status Sync();

  /// Flushes and closes. Idempotent; the destructor calls it, but callers
  /// that care about the verdict should call it explicitly.
  Status Close();

 private:
  std::string path_;
  void* file_;  // FILE*, kept out of the header.
  FaultPlan* faults_;
  bool crashed_ = false;
};

// --- framed records ---------------------------------------------------------
// One record = u32 payload length, u32 CRC-32 of the payload, payload
// bytes. A reader can always tell a cleanly-ended stream from a torn one:
// anything short of a full frame, or a CRC mismatch, is a torn tail.

/// Appends one framed record to `writer`.
Status WriteRecord(FileWriter& writer, std::string_view payload);

/// Frame scan results: a record, a clean end, or a torn/corrupt tail.
enum class RecordVerdict { kRecord, kEndOfStream, kTorn };

/// Reads the next framed record out of `bytes` starting at `*pos`,
/// advancing `*pos` past it. On kRecord, `payload` points into `bytes`.
RecordVerdict ReadRecord(std::string_view bytes, size_t* pos,
                         std::string_view* payload);

/// Reads a whole file into `out` (binary). kNotFound when absent.
Status ReadFile(const std::string& path, std::string* out);

/// fsyncs the directory entry list at `path`, making recently created or
/// renamed files inside it durable against OS crashes (a file fsync alone
/// does not persist its directory entry). No-op on platforms without
/// directory fsync.
Status SyncDir(const std::string& path);

/// Writes `payload` as one framed record prefixed by `magic` (exactly 8
/// bytes) and a u32 format version — the single-record file layout every
/// snapshot section uses. Routed through `faults` when non-null. With
/// `sync` the file is fsynced before close.
Status WriteFramedFile(const std::string& path, std::string_view magic,
                       uint32_t version, std::string_view payload,
                       FaultPlan* faults = nullptr, bool sync = false);

/// Reads a file written by WriteFramedFile, validating magic, version and
/// checksum. Error messages name the failure ("bad magic", "unsupported
/// version", "torn or corrupt") so recovery can report why a snapshot was
/// skipped. `max_version` is the newest format this reader understands.
Result<std::string> ReadFramedFile(const std::string& path,
                                   std::string_view magic,
                                   uint32_t max_version,
                                   uint32_t* version_out = nullptr);

}  // namespace cem::io

#endif  // CEM_UTIL_IO_H_
