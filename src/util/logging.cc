#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace cem {
namespace {

std::atomic<LogSeverity> g_min_severity{LogSeverity::kInfo};

char SeverityLetter(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return 'I';
    case LogSeverity::kWarning:
      return 'W';
    case LogSeverity::kError:
      return 'E';
    case LogSeverity::kFatal:
      return 'F';
  }
  return '?';
}

}  // namespace

void SetMinLogSeverity(LogSeverity severity) { g_min_severity = severity; }
LogSeverity MinLogSeverity() { return g_min_severity; }

namespace internal_logging {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (severity_ >= MinLogSeverity() || severity_ == LogSeverity::kFatal) {
    std::fprintf(stderr, "[%c %s:%d] %s\n", SeverityLetter(severity_), file_,
                 line_, stream_.str().c_str());
  }
  if (severity_ == LogSeverity::kFatal) std::abort();
}

}  // namespace internal_logging
}  // namespace cem
