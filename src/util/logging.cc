#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>

namespace cem {
namespace {

char SeverityLetter(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return 'I';
    case LogSeverity::kWarning:
      return 'W';
    case LogSeverity::kError:
      return 'E';
    case LogSeverity::kFatal:
      return 'F';
  }
  return '?';
}

/// Startup severity: CEM_LOG_LEVEL, resolved once before the first
/// emission; SetMinLogSeverity overrides it for the rest of the process.
std::atomic<LogSeverity>& MinSeverityFlag() {
  static std::atomic<LogSeverity> flag{[] {
    bool fell_back = false;
    const LogSeverity severity =
        ResolveLogSeverityEnvValue(std::getenv("CEM_LOG_LEVEL"), &fell_back);
    if (fell_back) {
      std::fprintf(stderr,
                   "[W] CEM_LOG_LEVEL=\"%s\" is not a severity "
                   "(info|warning|error|fatal); logging at info\n",
                   std::getenv("CEM_LOG_LEVEL"));
    }
    return severity;
  }()};
  return flag;
}

/// "YYYY-MM-DD HH:MM:SS.mmm" wall-clock stamp of `now` into `buf`.
void FormatWallClock(char* buf, size_t len) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const int millis = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000);
  std::tm tm_buf{};
#if defined(_WIN32)
  localtime_s(&tm_buf, &seconds);
#else
  localtime_r(&seconds, &tm_buf);
#endif
  const size_t date_len = std::strftime(buf, len, "%Y-%m-%d %H:%M:%S", &tm_buf);
  std::snprintf(buf + date_len, len - date_len, ".%03d", millis);
}

/// Touching the flag here resolves CEM_LOG_LEVEL (and prints the
/// bad-value warning) at process startup, not at the first emission —
/// a process that never logs still reports a misspelled level.
[[maybe_unused]] const LogSeverity kSeverityResolvedAtStartup =
    MinSeverityFlag().load();

}  // namespace

void SetMinLogSeverity(LogSeverity severity) { MinSeverityFlag() = severity; }
LogSeverity MinLogSeverity() { return MinSeverityFlag(); }

std::optional<LogSeverity> ParseLogSeverity(std::string_view value) {
  std::string lower;
  lower.reserve(value.size());
  for (char c : value) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "info" || lower == "0") return LogSeverity::kInfo;
  if (lower == "warning" || lower == "warn" || lower == "1") {
    return LogSeverity::kWarning;
  }
  if (lower == "error" || lower == "2") return LogSeverity::kError;
  if (lower == "fatal" || lower == "3") return LogSeverity::kFatal;
  return std::nullopt;
}

LogSeverity ResolveLogSeverityEnvValue(const char* value, bool* fell_back) {
  if (fell_back != nullptr) *fell_back = false;
  if (value == nullptr || value[0] == '\0') return LogSeverity::kInfo;
  const std::optional<LogSeverity> parsed = ParseLogSeverity(value);
  if (parsed.has_value()) return *parsed;
  if (fell_back != nullptr) *fell_back = true;
  return LogSeverity::kInfo;
}

uint32_t LogThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

namespace internal_logging {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (severity_ >= MinLogSeverity() || severity_ == LogSeverity::kFatal) {
    char stamp[40];
    FormatWallClock(stamp, sizeof(stamp));
    std::fprintf(stderr, "[%c %s t%02u %s:%d] %s\n",
                 SeverityLetter(severity_), stamp, LogThreadId(), file_,
                 line_, stream_.str().c_str());
  }
  if (severity_ == LogSeverity::kFatal) std::abort();
}

}  // namespace internal_logging
}  // namespace cem
