#include "util/arena.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <utility>

#include "util/logging.h"

namespace cem {

Arena::Arena(size_t block_bytes)
    : block_bytes_(std::max<size_t>(block_bytes, 64)) {}

Arena::Arena(Arena&& other) noexcept
    : block_bytes_(other.block_bytes_),
      blocks_(std::move(other.blocks_)),
      ptr_(std::exchange(other.ptr_, nullptr)),
      end_(std::exchange(other.end_, nullptr)),
      bytes_allocated_(std::exchange(other.bytes_allocated_, 0)),
      bytes_reserved_(std::exchange(other.bytes_reserved_, 0)) {
  other.blocks_.clear();
}

Arena& Arena::operator=(Arena&& other) noexcept {
  if (this != &other) {
    block_bytes_ = other.block_bytes_;
    blocks_ = std::move(other.blocks_);
    other.blocks_.clear();
    ptr_ = std::exchange(other.ptr_, nullptr);
    end_ = std::exchange(other.end_, nullptr);
    bytes_allocated_ = std::exchange(other.bytes_allocated_, 0);
    bytes_reserved_ = std::exchange(other.bytes_reserved_, 0);
  }
  return *this;
}

void* Arena::Allocate(size_t bytes, size_t align) {
  CEM_CHECK(align != 0 && (align & (align - 1)) == 0)
      << "alignment must be a power of two";
  const uintptr_t raw = reinterpret_cast<uintptr_t>(ptr_);
  const size_t padding = (align - (raw & (align - 1))) & (align - 1);
  if (static_cast<size_t>(end_ - ptr_) >= padding + bytes) {
    char* out = ptr_ + padding;
    ptr_ = out + bytes;
    bytes_allocated_ += bytes;
    return out;
  }
  // Fresh blocks come from operator new[], which is aligned for every
  // fundamental type; over-reserve so the aligned cut always fits.
  AddBlock(bytes + align);
  const uintptr_t base = reinterpret_cast<uintptr_t>(ptr_);
  char* out = ptr_ + ((align - (base & (align - 1))) & (align - 1));
  ptr_ = out + bytes;
  bytes_allocated_ += bytes;
  return out;
}

char* Arena::AllocateBytesSlow(size_t bytes) {
  AddBlock(bytes);
  char* out = ptr_;
  ptr_ += bytes;
  bytes_allocated_ += bytes;
  return out;
}

std::string_view Arena::CopyString(std::string_view bytes) {
  if (bytes.empty()) return {};
  char* dst = AllocateBytes(bytes.size());
  std::memcpy(dst, bytes.data(), bytes.size());
  return {dst, bytes.size()};
}

void Arena::Reset() {
  blocks_.clear();
  ptr_ = end_ = nullptr;
  bytes_allocated_ = 0;
  bytes_reserved_ = 0;
}

void Arena::AddBlock(size_t min_bytes) {
  const size_t capacity = std::max(block_bytes_, min_bytes);
  Block block;
  block.data = std::make_unique<char[]>(capacity);
  block.capacity = capacity;
  ptr_ = block.data.get();
  end_ = ptr_ + capacity;
  bytes_reserved_ += capacity;
  blocks_.push_back(std::move(block));
}

}  // namespace cem
