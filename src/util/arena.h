#ifndef CEM_UTIL_ARENA_H_
#define CEM_UTIL_ARENA_H_

#include <cstddef>
#include <memory>
#include <string_view>
#include <vector>

namespace cem {

/// Bump-pointer arena: many small allocations, one lifetime. Allocation is
/// a pointer increment inside the current block; exhausted blocks stay
/// alive (pointers handed out are stable for the arena's lifetime) and a
/// new block is chained on. There is no per-allocation free — everything
/// is released when the arena is destroyed or Reset().
///
/// This is the backing store of the flat token layout (text::TokenCorpus):
/// token bytes for a whole chunk of documents live contiguously instead of
/// one heap node per std::string, which is what makes the tokenise/hash
/// hot path cache- and allocator-friendly.
class Arena {
 public:
  static constexpr size_t kDefaultBlockBytes = size_t{1} << 16;

  explicit Arena(size_t block_bytes = kDefaultBlockBytes);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  // Moves transfer the blocks and leave the source empty (not dangling
  // into the destination's storage).
  Arena(Arena&& other) noexcept;
  Arena& operator=(Arena&& other) noexcept;

  /// Returns `bytes` of storage aligned to `align` (a power of two).
  /// Requests larger than the block size get a dedicated block.
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t));

  /// Unaligned char storage — the token-byte fast path.
  char* AllocateBytes(size_t bytes) {
    if (static_cast<size_t>(end_ - ptr_) >= bytes) {
      char* out = ptr_;
      ptr_ += bytes;
      bytes_allocated_ += bytes;
      return out;
    }
    return AllocateBytesSlow(bytes);
  }

  /// Copies `bytes` into the arena; the returned view is stable for the
  /// arena's lifetime. Not NUL-terminated.
  std::string_view CopyString(std::string_view bytes);

  /// Drops every block and allocation count; previously returned pointers
  /// become invalid.
  void Reset();

  /// Total bytes handed out (excluding alignment padding).
  size_t bytes_allocated() const { return bytes_allocated_; }
  /// Total block capacity reserved from the heap.
  size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t capacity = 0;
  };

  char* AllocateBytesSlow(size_t bytes);
  /// Makes a fresh block of at least `min_bytes` the current one.
  void AddBlock(size_t min_bytes);

  size_t block_bytes_;
  std::vector<Block> blocks_;
  /// Bump window inside the current (last) block.
  char* ptr_ = nullptr;
  char* end_ = nullptr;
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
};

}  // namespace cem

#endif  // CEM_UTIL_ARENA_H_
