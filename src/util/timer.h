#ifndef CEM_UTIL_TIMER_H_
#define CEM_UTIL_TIMER_H_

#include <chrono>

namespace cem {

/// Wall-clock stopwatch used by the benchmark harness.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// RAII companion to Timer: invokes `callback(ctx, elapsed_ms)` when it
/// leaves scope. The callback is a plain function pointer + context (no
/// std::function allocation), so a scoped measurement costs two clock reads
/// and an indirect call — cheap enough for the obs::TraceSpan stage spans
/// and the per-section bench timers built on top of it.
class ScopedTimer {
 public:
  using Callback = void (*)(void* ctx, double elapsed_ms);

  ScopedTimer(Callback callback, void* ctx)
      : callback_(callback), ctx_(ctx) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (callback_ != nullptr) callback_(ctx_, timer_.ElapsedMillis());
  }

  /// Drops the callback: nothing fires at scope exit.
  void Cancel() { callback_ = nullptr; }

  double ElapsedMillis() const { return timer_.ElapsedMillis(); }

 private:
  Timer timer_;
  Callback callback_;
  void* ctx_;
};

}  // namespace cem

#endif  // CEM_UTIL_TIMER_H_
