#ifndef CEM_UTIL_UNION_FIND_H_
#define CEM_UTIL_UNION_FIND_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cem {

/// Disjoint-set forest with path compression and union by size. Used for
/// transitive closure of match sets and for merging overlapping maximal
/// messages ((T ∪ TC)* in Algorithm 3).
class UnionFind {
 public:
  /// Creates `n` singleton sets labelled 0..n-1.
  explicit UnionFind(size_t n = 0);

  /// Grows the structure to at least `n` elements (new elements are
  /// singletons).
  void Resize(size_t n);

  /// Returns the representative of `x`'s set.
  uint32_t Find(uint32_t x);

  /// Merges the sets containing `a` and `b`; returns the new representative.
  uint32_t Union(uint32_t a, uint32_t b);

  /// True if `a` and `b` are currently in the same set.
  bool Connected(uint32_t a, uint32_t b);

  /// Number of elements.
  size_t size() const { return parent_.size(); }

  /// Number of distinct sets.
  size_t num_sets() const { return num_sets_; }

  /// Groups elements by representative; each group is sorted ascending and
  /// the groups are ordered by their smallest element.
  std::vector<std::vector<uint32_t>> Groups();

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
  size_t num_sets_ = 0;
};

}  // namespace cem

#endif  // CEM_UTIL_UNION_FIND_H_
