#ifndef CEM_UTIL_TABLE_WRITER_H_
#define CEM_UTIL_TABLE_WRITER_H_

#include <ostream>
#include <string>
#include <vector>

namespace cem {

/// Renders aligned plain-text tables for the benchmark harness, so each
/// bench binary prints the same rows/series the paper's figure or table
/// reports.
class TableWriter {
 public:
  /// Creates a table with the given column headers.
  explicit TableWriter(std::vector<std::string> headers);

  /// Appends a row; the row must have as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` decimal places.
  static std::string Num(double value, int precision = 3);

  /// Writes the rendered table to `os`.
  void Print(std::ostream& os) const;

  /// Writes the table as comma-separated values (machine readable).
  void PrintCsv(std::ostream& os) const;

  /// Writes the table as a JSON object {"headers": [...], "rows": [[...]]}.
  /// Cells that parse fully as numbers are emitted as numbers, the rest as
  /// strings — so downstream tooling gets typed per-metric values.
  void PrintJson(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cem

#endif  // CEM_UTIL_TABLE_WRITER_H_
