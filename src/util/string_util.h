#ifndef CEM_UTIL_STRING_UTIL_H_
#define CEM_UTIL_STRING_UTIL_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace cem {

/// Splits `text` on `delimiter`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char delimiter);

/// Splits `text` on runs of whitespace, dropping empty tokens.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// ASCII lower-cases `text`.
std::string ToLower(std::string_view text);

/// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// Returns true if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Returns character n-grams of length `n`; if the string is shorter than
/// `n` the whole string is the single gram.
std::vector<std::string> CharNgrams(std::string_view text, size_t n);

}  // namespace cem

#endif  // CEM_UTIL_STRING_UTIL_H_
