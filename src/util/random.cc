#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace cem {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  CEM_CHECK(bound > 0) << "NextBounded requires a positive bound";
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  CEM_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  // Box-Muller; draws u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - NextDouble();
  double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

uint64_t Rng::NextZipf(uint64_t n, double s) {
  CEM_CHECK(n > 0);
  // Inverse-CDF over the truncated harmonic weights via binary search on a
  // smooth approximation; exact enough for workload skew purposes.
  // For small n we do it exactly.
  if (n <= 4096) {
    double total = 0;
    for (uint64_t i = 0; i < n; ++i) total += std::pow(i + 1.0, -s);
    double u = NextDouble() * total;
    double acc = 0;
    for (uint64_t i = 0; i < n; ++i) {
      acc += std::pow(i + 1.0, -s);
      if (u <= acc) return i;
    }
    return n - 1;
  }
  // Approximation: integral of x^-s from 1 to n+1.
  double u = NextDouble();
  if (s == 1.0) {
    double ln = std::log(static_cast<double>(n) + 1.0);
    return static_cast<uint64_t>(std::exp(u * ln)) - 1;
  }
  double oneminus = 1.0 - s;
  double hi = std::pow(static_cast<double>(n) + 1.0, oneminus);
  double x = std::pow(u * (hi - 1.0) + 1.0, 1.0 / oneminus);
  uint64_t idx = static_cast<uint64_t>(x) - 1;
  return idx < n ? idx : n - 1;
}

}  // namespace cem
