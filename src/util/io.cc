#include "util/io.h"

#include <cstdio>
#include <cstring>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

namespace cem::io {
namespace {

/// CRC-32 lookup table (reflected 0xEDB88320), built once.
const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  const uint32_t* table = Crc32Table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void Buffer::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    bytes_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void Buffer::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    bytes_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void Buffer::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void Buffer::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  PutBytes(s);
}

bool Cursor::Take(size_t n, const char** out) {
  if (!ok_ || bytes_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  *out = bytes_.data() + pos_;
  pos_ += n;
  return true;
}

uint8_t Cursor::GetU8() {
  const char* p;
  if (!Take(1, &p)) return 0;
  return static_cast<uint8_t>(*p);
}

uint32_t Cursor::GetU32() {
  const char* p;
  if (!Take(4, &p)) return 0;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t Cursor::GetU64() {
  const char* p;
  if (!Take(8, &p)) return 0;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

double Cursor::GetDouble() {
  const uint64_t bits = GetU64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string Cursor::GetString() {
  const uint32_t size = GetU32();
  const char* p;
  if (!Take(size, &p)) return {};
  return std::string(p, size);
}

FileWriter::FileWriter(const std::string& path, FaultPlan* faults, Mode mode)
    : path_(path),
      file_(std::fopen(path.c_str(), mode == Mode::kAppend ? "ab" : "wb")),
      faults_(faults) {}

FileWriter::~FileWriter() { Close(); }

Status FileWriter::Write(std::string_view bytes) {
  if (crashed_) return InternalError("write after simulated crash");
  if (file_ == nullptr) {
    return InternalError("cannot open " + path_ + " for writing");
  }
  std::string flipped;  // Backing store when a byte must be corrupted.
  size_t allowed = bytes.size();
  if (faults_ != nullptr) {
    // Reserve the range [start, start+n) of the cumulative write stream.
    const uint64_t start =
        faults_->bytes_written.fetch_add(bytes.size(),
                                         std::memory_order_relaxed);
    if (start >= faults_->fail_after_bytes) {
      allowed = 0;
    } else if (start + bytes.size() > faults_->fail_after_bytes) {
      allowed = static_cast<size_t>(faults_->fail_after_bytes - start);
    }
    if (faults_->flip_byte_at != FaultPlan::kNone &&
        faults_->flip_byte_at >= start &&
        faults_->flip_byte_at < start + allowed) {
      flipped.assign(bytes.data(), bytes.size());
      flipped[static_cast<size_t>(faults_->flip_byte_at - start)] ^= 0x01;
      bytes = flipped;
    }
  }
  FILE* f = static_cast<FILE*>(file_);
  if (allowed > 0 && std::fwrite(bytes.data(), 1, allowed, f) != allowed) {
    return InternalError("short write to " + path_);
  }
  if (allowed < bytes.size()) {
    // The budget ran out mid-write: flush what made it to model a process
    // killed with a torn final record on disk, then refuse further writes.
    std::fflush(f);
    crashed_ = true;
    return InternalError("simulated crash writing " + path_);
  }
  return OkStatus();
}

Status FileWriter::Flush() {
  if (crashed_) return InternalError("flush after simulated crash");
  if (file_ == nullptr) {
    return InternalError("cannot open " + path_ + " for writing");
  }
  if (std::fflush(static_cast<FILE*>(file_)) != 0) {
    return InternalError("error flushing " + path_);
  }
  return OkStatus();
}

Status FileWriter::Sync() {
  CEM_RETURN_IF_ERROR(Flush());
#ifndef _WIN32
  if (fsync(fileno(static_cast<FILE*>(file_))) != 0) {
    return InternalError("error syncing " + path_);
  }
#endif
  return OkStatus();
}

Status FileWriter::Close() {
  if (file_ == nullptr) return OkStatus();
  FILE* f = static_cast<FILE*>(file_);
  file_ = nullptr;
  const bool flushed = std::fflush(f) == 0;
  const bool closed = std::fclose(f) == 0;
  if (!flushed || !closed) {
    return InternalError("error closing " + path_);
  }
  return OkStatus();
}

Status WriteRecord(FileWriter& writer, std::string_view payload) {
  Buffer frame;
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  frame.PutU32(Crc32(payload));
  frame.PutBytes(payload);
  return writer.Write(frame.bytes());
}

RecordVerdict ReadRecord(std::string_view bytes, size_t* pos,
                         std::string_view* payload) {
  if (*pos == bytes.size()) return RecordVerdict::kEndOfStream;
  Cursor header(bytes.substr(*pos));
  const uint32_t size = header.GetU32();
  const uint32_t crc = header.GetU32();
  if (!header.ok() || header.remaining() < size) {
    return RecordVerdict::kTorn;
  }
  const std::string_view body = bytes.substr(*pos + 8, size);
  if (Crc32(body) != crc) return RecordVerdict::kTorn;
  *payload = body;
  *pos += 8 + size;
  return RecordVerdict::kRecord;
}

Status ReadFile(const std::string& path, std::string* out) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return NotFoundError("cannot open " + path);
  out->clear();
  char chunk[1 << 16];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    out->append(chunk, n);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return InternalError("error reading " + path);
  return OkStatus();
}

Status SyncDir(const std::string& path) {
#ifndef _WIN32
  const int fd = open(path.c_str(), O_RDONLY);
  if (fd < 0) return InternalError("cannot open directory " + path);
  const bool synced = fsync(fd) == 0;
  close(fd);
  if (!synced) return InternalError("error syncing directory " + path);
#endif
  return OkStatus();
}

Status WriteFramedFile(const std::string& path, std::string_view magic,
                       uint32_t version, std::string_view payload,
                       FaultPlan* faults, bool sync) {
  if (magic.size() != 8) {
    return InvalidArgumentError("file magic must be 8 bytes");
  }
  FileWriter writer(path, faults);
  Buffer header;
  header.PutBytes(magic);
  header.PutU32(version);
  CEM_RETURN_IF_ERROR(writer.Write(header.bytes()));
  CEM_RETURN_IF_ERROR(WriteRecord(writer, payload));
  if (sync) CEM_RETURN_IF_ERROR(writer.Sync());
  return writer.Close();
}

Result<std::string> ReadFramedFile(const std::string& path,
                                   std::string_view magic,
                                   uint32_t max_version,
                                   uint32_t* version_out) {
  std::string bytes;
  CEM_RETURN_IF_ERROR(ReadFile(path, &bytes));
  if (bytes.size() < 12 || std::string_view(bytes).substr(0, 8) != magic) {
    return InvalidArgumentError(path + ": bad magic");
  }
  Cursor header(std::string_view(bytes).substr(8, 4));
  const uint32_t version = header.GetU32();
  if (version == 0 || version > max_version) {
    return InvalidArgumentError(path + ": unsupported version " +
                                std::to_string(version) +
                                " (reader supports up to " +
                                std::to_string(max_version) + ")");
  }
  if (version_out != nullptr) *version_out = version;
  size_t pos = 12;
  std::string_view payload;
  const RecordVerdict verdict = ReadRecord(bytes, &pos, &payload);
  if (verdict != RecordVerdict::kRecord || pos != bytes.size()) {
    return InvalidArgumentError(path + ": torn or corrupt");
  }
  return std::string(payload);
}

}  // namespace cem::io
