#ifndef CEM_UTIL_RANDOM_H_
#define CEM_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace cem {

/// Deterministic, seedable PRNG (xoshiro256** seeded via SplitMix64).
/// Every stochastic component in the library (data generators, canopy seed
/// order, grid shuffling) draws from an explicitly-passed Rng so experiments
/// are reproducible bit-for-bit from a seed.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Returns the next raw 64-bit draw.
  uint64_t Next();

  /// Returns a uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Returns a uniform double in [0, 1).
  double NextDouble();

  /// Returns true with probability `p` (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Returns a draw from Normal(0, 1) (Box-Muller).
  double NextGaussian();

  /// Returns a Zipf-like draw in [0, n): item i has weight 1/(i+1)^s.
  /// Used for skewed popularity (author productivity, name frequency).
  uint64_t NextZipf(uint64_t n, double s);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = NextBounded(i);
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  uint64_t state_[4];
};

}  // namespace cem

#endif  // CEM_UTIL_RANDOM_H_
