#ifndef CEM_UTIL_EXECUTION_CONTEXT_H_
#define CEM_UTIL_EXECUTION_CONTEXT_H_

#include <cstdint>
#include <memory>

#include "util/thread_pool.h"

namespace cem {

/// Execution parameters of the parallel pipeline stages (MinHash signature
/// computation, sharded LSH insertion, cover assembly, candidate-pair
/// generation, grid rounds): a thread-pool handle, a shard count for
/// bucket-partitioned structures, and a seed — the default for the cover
/// builders' seed-selection order when their options leave it unset. One
/// context flows from the drivers (eval harness, examples, benches) down
/// into data/, blocking/ and core/, so every stage agrees on the same
/// worker budget.
///
/// Determinism contract: every algorithm taking an ExecutionContext must
/// produce bit-identical results for any thread count and any shard count —
/// parallelism may only change *when* work happens, never *what* is
/// computed. The cover-determinism tests enforce this.
class ExecutionContext {
 public:
  /// Default seed of context-scoped randomized choices (equals the cover
  /// builders' historical default, so covers are stable across contexts).
  static constexpr uint64_t kDefaultSeed = 7;

  /// Shared-pool context: runs on SharedThreadPool() (worker count from
  /// CEM_THREADS, see thread_pool.h) with the LSH shard count from
  /// CEM_LSH_SHARDS (unset/0 = 4x the worker count, clamped to [1, 256])
  /// and the token-index shard count from CEM_TOKEN_SHARDS (unset/0 =
  /// the CEM_LSH_SHARDS resolution).
  ExecutionContext();

  /// Dedicated-pool context with `num_threads` workers (0 = hardware
  /// concurrency) and `num_shards` shards (0 = 4x the worker count).
  /// An explicit `num_shards` applies to both the LSH buckets and the
  /// token index, so tests sweep one knob.
  explicit ExecutionContext(uint32_t num_threads, uint32_t num_shards = 0,
                            uint64_t seed = kDefaultSeed);

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;
  ExecutionContext(ExecutionContext&&) = default;
  ExecutionContext& operator=(ExecutionContext&&) = default;

  /// Process-wide default context (shared pool, env-derived knobs), used by
  /// every API whose caller does not pass an explicit context.
  static const ExecutionContext& Default();

  ThreadPool& pool() const { return *pool_; }
  uint32_t num_threads() const {
    return static_cast<uint32_t>(pool_->num_threads());
  }
  uint32_t num_shards() const { return num_shards_; }
  /// Shard count of token-partitioned structures (text::TokenIndex).
  uint32_t num_token_shards() const { return num_token_shards_; }
  uint64_t seed() const { return seed_; }

 private:
  std::unique_ptr<ThreadPool> owned_pool_;  // Null for shared-pool contexts.
  ThreadPool* pool_;
  uint32_t num_shards_;
  uint32_t num_token_shards_;
  uint64_t seed_;
};

}  // namespace cem

#endif  // CEM_UTIL_EXECUTION_CONTEXT_H_
