#include "util/flags.h"

#include <cerrno>
#include <cstdlib>
#include <utility>

#include "util/logging.h"

namespace cem {
namespace {

/// Strict full-token unsigned parse (no sign, no trailing junk).
bool ParseUnsigned(const std::string& value, uint64_t* out) {
  if (value.empty() || value[0] == '-' || value[0] == '+') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (errno != 0 || end != value.c_str() + value.size()) return false;
  *out = parsed;
  return true;
}

bool ParseDouble(const std::string& value, double* out) {
  if (value.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (errno != 0 || end != value.c_str() + value.size()) return false;
  *out = parsed;
  return true;
}

}  // namespace

void FlagSet::Add(Flag flag) {
  CEM_CHECK(flag.name.rfind("--", 0) == 0) << "flag names start with --";
  CEM_CHECK(Find(flag.name) == nullptr) << "duplicate flag " << flag.name;
  flags_.push_back(std::move(flag));
}

void FlagSet::Bool(std::string name, bool* target, std::string help) {
  Add({std::move(name), /*takes_value=*/false,
       [target](const std::string&) {
         *target = true;
         return true;
       },
       nullptr, std::move(help)});
}

void FlagSet::String(std::string name, std::string* target, std::string help) {
  Add({std::move(name), /*takes_value=*/true,
       [target](const std::string& value) {
         *target = value;
         return true;
       },
       nullptr, std::move(help)});
}

void FlagSet::Double(std::string name, double* target, std::string help) {
  Add({std::move(name), /*takes_value=*/true,
       [target](const std::string& value) {
         return ParseDouble(value, target);
       },
       nullptr, std::move(help)});
}

void FlagSet::Uint32(std::string name, uint32_t* target, std::string help,
                     bool* set_marker) {
  Add({std::move(name), /*takes_value=*/true,
       [target](const std::string& value) {
         uint64_t parsed = 0;
         if (!ParseUnsigned(value, &parsed) || parsed > 0xffffffffull) {
           return false;
         }
         *target = static_cast<uint32_t>(parsed);
         return true;
       },
       set_marker, std::move(help)});
}

void FlagSet::Uint64(std::string name, uint64_t* target, std::string help,
                     bool* set_marker) {
  Add({std::move(name), /*takes_value=*/true,
       [target](const std::string& value) {
         return ParseUnsigned(value, target);
       },
       set_marker, std::move(help)});
}

void FlagSet::SizeT(std::string name, size_t* target, std::string help) {
  Add({std::move(name), /*takes_value=*/true,
       [target](const std::string& value) {
         uint64_t parsed = 0;
         if (!ParseUnsigned(value, &parsed)) return false;
         *target = static_cast<size_t>(parsed);
         return true;
       },
       nullptr, std::move(help)});
}

const FlagSet::Flag* FlagSet::Find(std::string_view name) const {
  for (const Flag& flag : flags_) {
    if (flag.name == name) return &flag;
  }
  return nullptr;
}

Status FlagSet::Parse(const std::vector<std::string>& args) const {
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    std::string name = arg;
    std::string value;
    bool has_inline_value = false;
    const size_t eq = arg.find('=');
    if (arg.rfind("--", 0) == 0 && eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_inline_value = true;
    }
    const Flag* flag = Find(name);
    if (flag == nullptr) {
      return InvalidArgumentError("unknown flag " + arg);
    }
    if (!flag->takes_value) {
      if (has_inline_value) {
        return InvalidArgumentError(flag->name + " takes no value");
      }
    } else if (!has_inline_value) {
      if (i + 1 >= args.size()) {
        return InvalidArgumentError("missing value for " + flag->name);
      }
      value = args[++i];
    }
    if (!flag->assign(value)) {
      return InvalidArgumentError("bad value '" + value + "' for " +
                                  flag->name);
    }
    if (flag->set_marker != nullptr) *flag->set_marker = true;
  }
  return OkStatus();
}

std::string FlagSet::Usage() const {
  std::string out;
  for (const Flag& flag : flags_) {
    out += "  " + flag.name;
    if (flag.takes_value) out += " <value>";
    out += "\n      " + flag.help + "\n";
  }
  return out;
}

}  // namespace cem
