// Persistence cost: snapshot save/load throughput and WAL replay rate vs
// live streamed ingest.
//
// The persist subsystem (persist::PersistentStreamingMatcher) makes the
// streaming front door durable: every ingest chunk is appended to a
// checksummed WAL before it is applied, and quiescent snapshots bound the
// replay work after a crash. Durability is only viable if its overheads
// stay small next to the matching work itself, so this bench measures the
// three costs a production deployment pays:
//  * WAL overhead — full streamed replay with the WAL on vs off; the
//    append+flush tax on every chunk.
//  * snapshot save/load — MB/s over the versioned binary format, with the
//    per-shard files written and read as parallel jobs.
//  * recovery — WAL-replay rate (refs/s) vs live ingest: replay skips the
//    durability tax, so a crash recovers faster than the run that fed it.
//
// The "counter_persist_*" metrics gate the on-disk footprint in CI: the
// format is byte-stable for a fixed corpus, arrival order and shard count
// (the bench pins all three), so any change to the encoded sizes is a
// deliberate format change, which must re-bless these baselines.

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "mln/mln_matcher.h"
#include "obs/metrics.h"
#include "persist/recovery.h"
#include "persist/snapshot.h"
#include "stream/streaming_matcher.h"
#include "util/execution_context.h"
#include "util/random.h"
#include "util/timer.h"

namespace {

using namespace cem;
namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("cem_bench_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

uint64_t TreeBytes(const std::string& dir) {
  uint64_t total = 0;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file()) total += entry.file_size();
  }
  return total;
}

double Mbps(uint64_t bytes, double seconds) {
  return static_cast<double>(bytes) / 1e6 / std::max(seconds, 1e-9);
}

}  // namespace

int main() {
  const double scale = bench::Begin(
      "bench_persist — snapshot + WAL durability overheads",
      "incremental maintenance extends to durable state: a checksummed "
      "write-ahead log plus quiescent snapshots recover a crashed stream "
      "bit-identically, at a small constant tax on live ingest");
  bench::JsonReport report("bench_persist");

  // Fixed shard count: the snapshot writes one signature + one LSH file
  // per shard, so the gated byte counters must not follow the host's core
  // count. Thread count stays hardware-sized (0) — results are
  // thread-invariant by the streaming determinism contract.
  ExecutionContext ctx(/*num_threads=*/0, /*num_shards=*/16);
  eval::Workload w =
      eval::MakeDblpWorkload(scale, core::BlockingStrategy::kLsh, ctx);
  mln::MlnMatcher matcher(*w.dataset);
  stream::StreamingOptions options;
  options.context = &ctx;

  std::vector<data::EntityId> refs = w.dataset->author_refs();
  Rng(2026).Shuffle(refs);
  const size_t kChunk = 64;
  const auto feed = [&](auto& target) {
    for (size_t start = 0; start < refs.size(); start += kChunk) {
      const size_t end = std::min(refs.size(), start + kChunk);
      target.AddBatch({refs.begin() + start, refs.begin() + end});
    }
  };

  // --- live ingest, WAL off (the bare streaming cost).
  Timer bare_timer;
  stream::StreamingMatcher bare(matcher, options);
  feed(bare);
  const double bare_seconds = bare_timer.ElapsedSeconds();

  // --- live ingest, WAL on (append + flush ahead of every chunk).
  const std::string dir = FreshDir("persist");
  persist::PersistentStreamingMatcher live(matcher, options,
                                           {dir, /*snapshot_every=*/0});
  CEM_CHECK(live.Start().ok());
  Timer live_timer;
  feed(live);
  const double live_seconds = live_timer.ElapsedSeconds();
  CEM_CHECK(live.matcher().matches() == bare.matches());
  const uint64_t wal_bytes =
      fs::file_size(fs::path(dir) / "wal.log");

  // --- snapshot save + load.
  Timer save_timer;
  CEM_CHECK(live.Checkpoint().ok());
  const double save_seconds = save_timer.ElapsedSeconds();
  const std::vector<persist::SnapshotRef> snaps = persist::ListSnapshots(dir);
  CEM_CHECK(snaps.size() == 1);
  const uint64_t snap_bytes = TreeBytes(snaps[0].path);
  size_t snap_files = 0;
  for (const auto& entry : fs::directory_iterator(snaps[0].path)) {
    (void)entry;
    ++snap_files;
  }

  stream::StreamingMatcher loaded(matcher, options);
  Timer load_timer;
  CEM_CHECK(persist::LoadSnapshot(snaps[0].path, loaded).ok());
  const double load_seconds = load_timer.ElapsedSeconds();
  CEM_CHECK(loaded.matches() == bare.matches());

  // --- live ingest, WAL on with fsync (power-loss durability): every
  // chunk pays a disk barrier, populating the fsync-latency histogram.
  const std::string fsync_dir = FreshDir("persist_fsync");
  persist::PersistentStreamingMatcher durable(
      matcher, options,
      {fsync_dir, /*snapshot_every=*/0, /*faults=*/nullptr, /*fsync=*/true});
  CEM_CHECK(durable.Start().ok());
  Timer fsync_timer;
  feed(durable);
  const double fsync_seconds = fsync_timer.ElapsedSeconds();
  CEM_CHECK(durable.matcher().matches() == bare.matches());

  // --- crash recovery: rebuild the whole run from the WAL alone.
  const std::string wal_only = FreshDir("persist_walonly");
  fs::copy(fs::path(dir) / "wal.log", fs::path(wal_only) / "wal.log");
  persist::PersistentStreamingMatcher recovered(matcher, options,
                                                {wal_only, 0});
  persist::RecoveryInfo info;
  Timer replay_timer;
  CEM_CHECK(recovered.Recover(&info).ok());
  const double replay_seconds = replay_timer.ElapsedSeconds();
  CEM_CHECK(recovered.matcher().matches() == bare.matches());

  const double n = static_cast<double>(refs.size());
  TableWriter ingest({"path", "refs", "wall (s)", "refs/s", "vs bare"});
  ingest.AddRow({"bare streaming", std::to_string(refs.size()),
                 bench::Secs(bare_seconds),
                 TableWriter::Num(n / std::max(bare_seconds, 1e-9), 0), "1.0"});
  ingest.AddRow({"WAL-ahead ingest", std::to_string(refs.size()),
                 bench::Secs(live_seconds),
                 TableWriter::Num(n / std::max(live_seconds, 1e-9), 0),
                 TableWriter::Num(live_seconds / std::max(bare_seconds, 1e-9),
                                  2)});
  ingest.AddRow({"WAL + fsync ingest", std::to_string(refs.size()),
                 bench::Secs(fsync_seconds),
                 TableWriter::Num(n / std::max(fsync_seconds, 1e-9), 0),
                 TableWriter::Num(fsync_seconds /
                                      std::max(bare_seconds, 1e-9),
                                  2)});
  ingest.AddRow({"WAL replay (recovery)", std::to_string(info.chunks_replayed),
                 bench::Secs(replay_seconds),
                 TableWriter::Num(n / std::max(replay_seconds, 1e-9), 0),
                 TableWriter::Num(replay_seconds /
                                      std::max(bare_seconds, 1e-9),
                                  2)});
  report.Table("ingest", ingest);
  std::printf(
      "The WAL tax is the append+flush ahead of every chunk; recovery "
      "replays the same chunks without it, so a crashed run comes back at "
      "least as fast as it streamed.\n\n");

  TableWriter snapshot({"op", "bytes", "files", "wall (s)", "MB/s"});
  snapshot.AddRow({"save", std::to_string(snap_bytes),
                   std::to_string(snap_files), bench::Secs(save_seconds),
                   TableWriter::Num(Mbps(snap_bytes, save_seconds), 1)});
  snapshot.AddRow({"load", std::to_string(snap_bytes),
                   std::to_string(snap_files), bench::Secs(load_seconds),
                   TableWriter::Num(Mbps(snap_bytes, load_seconds), 1)});
  report.Table("snapshot", snapshot);
  std::printf(
      "Snapshot shards save and load as parallel jobs; the footprint "
      "counters below pin the on-disk format size in CI.\n\n");

  // --- durability latency percentiles, from the instrumented persist
  // layer (obs registry): what each WAL append costs, the isolated fsync
  // barrier, and the snapshot round trips. Host-dependent, never gated.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  TableWriter latency({"histogram", "count", "p50 (us)", "p95 (us)",
                       "p99 (us)"});
  const auto hist_row = [&](const char* label, const char* name) {
    const obs::HistogramStats stats = registry.histogram(name).Stats();
    latency.AddRow({label, std::to_string(stats.count),
                    TableWriter::Num(stats.p50, 1),
                    TableWriter::Num(stats.p95, 1),
                    TableWriter::Num(stats.p99, 1)});
  };
  hist_row("WAL append (flush)", "persist_wal_append_us");
  hist_row("WAL fsync barrier", "persist_wal_fsync_us");
  hist_row("snapshot save", "persist_snapshot_save_us");
  hist_row("snapshot load", "persist_snapshot_load_us");
  report.Table("durability_latency", latency);
  std::printf(
      "The fsync barrier dominates the durable-ingest tax; WAL appends "
      "without it are buffered flushes.\n");

  report.Metric("counter_persist_wal_bytes", static_cast<double>(wal_bytes));
  report.Metric("counter_persist_snapshot_bytes",
                static_cast<double>(snap_bytes));
  report.Metric("counter_persist_snapshot_files",
                static_cast<double>(snap_files));
  report.Metric("counter_persist_chunks_replayed",
                static_cast<double>(info.chunks_replayed));
  report.Metric("counter_persist_recovered_inserts",
                static_cast<double>(info.inserts_recovered));
  report.Write();

  fs::remove_all(dir);
  fs::remove_all(fsync_dir);
  fs::remove_all(wal_only);
  return 0;
}
