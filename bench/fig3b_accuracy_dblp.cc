// Figure 3(b): precision / recall / F1 of NO-MP, SMP, MMP and UB with the
// MLN matcher on the DBLP-like corpus.

#include "bench_util.h"
#include "core/message_passing.h"
#include "eval/upper_bound.h"
#include "mln/mln_matcher.h"

int main() {
  using namespace cem;
  const double scale = bench::Begin(
      "Figure 3(b) — MLN accuracy on DBLP",
      "same ordering as Figure 3(a); DBLP yields roughly twice the "
      "neighborhoods of HEPTH at much smaller average size (full names "
      "collide less than abbreviated ones)");

  eval::Workload dblp = eval::MakeDblpWorkload(scale);
  eval::Workload hepth = eval::MakeHepthWorkload(scale);
  std::printf("%s: %zu refs, %zu candidate pairs, cover: %s\n",
              dblp.name.c_str(), dblp.dataset->author_refs().size(),
              dblp.dataset->num_candidate_pairs(),
              dblp.cover.Summary(*dblp.dataset).c_str());
  std::printf(
      "(HEPTH cover for contrast: %zu neighborhoods, mean size %.1f vs "
      "DBLP mean %.1f)\n\n",
      hepth.cover.size(), hepth.cover.MeanNeighborhoodSize(),
      dblp.cover.MeanNeighborhoodSize());

  mln::MlnMatcher matcher(*dblp.dataset);
  const core::MpResult no_mp = core::RunNoMp(matcher, dblp.cover);
  const core::MpResult smp = core::RunSmp(matcher, dblp.cover);
  const core::MpResult mmp = core::RunMmp(matcher, dblp.cover);
  const core::MatchSet ub = eval::UpperBoundMatches(matcher);

  TableWriter table({"scheme", "P", "R", "F1", "P(tc)", "R(tc)", "F1(tc)"});
  table.AddRow(bench::PrRowBoth("NO-MP", *dblp.dataset, no_mp.matches));
  table.AddRow(bench::PrRowBoth("SMP", *dblp.dataset, smp.matches));
  table.AddRow(bench::PrRowBoth("MMP", *dblp.dataset, mmp.matches));
  table.AddRow(bench::PrRowBoth("UB", *dblp.dataset, ub));
  bench::JsonReport report("fig3b_accuracy_dblp");
  report.Table("accuracy", table);
  report.Write();
  return 0;
}
