// Figure 3(d): running-time comparison of NO-MP / SMP / MMP on HEPTH.
//
// The paper's counter-intuitive result: SMP is FASTER than NO-MP although
// it passes messages and revisits neighborhoods, because evidence shrinks
// the active size of each neighborhood and the matcher's inference cost is
// super-linear in active size. Our exact graph-cut solver is so fast that
// this regime disappears at raw wall-clock, so the bench reports both the
// raw times and the times under eval::CostModelMatcher, which restores the
// paper's expensive-inference cost profile (see DESIGN.md §1). MMP pays
// for COMPUTEMAXIMAL's clamped per-hypothesis runs — an overhead our
// implementation makes explicit (EXPERIMENTS.md discusses the deviation).

#include "bench_util.h"
#include "core/message_passing.h"
#include "mln/mln_matcher.h"

int main() {
  using namespace cem;
  const double scale = bench::Begin(
      "Figure 3(d) — MLN running times on HEPTH",
      "SMP runs faster than NO-MP (messages shrink active neighborhood "
      "sizes); total time is dominated by inference");

  eval::Workload w = eval::MakeHepthWorkload(scale);
  mln::MlnMatcher inner(*w.dataset);

  TableWriter table({"scheme", "raw sec", "cost-model sec", "evaluations",
                     "free vars touched"});
  auto run = [&](const char* name, auto&& runner) {
    // Raw timing.
    inner.ResetCounters();
    const core::MpResult raw = runner(inner);
    const uint64_t free_vars = inner.total_free_variables();
    const size_t evals = raw.neighborhood_evaluations;
    // Cost-model timing (burns free_vars^1.6 microseconds per call).
    eval::CostModelMatcher modeled(inner);
    const core::MpResult with_model = runner(modeled);
    table.AddRow({name, bench::Secs(raw.seconds),
                  bench::Secs(with_model.seconds), std::to_string(evals),
                  std::to_string(free_vars)});
  };

  run("NO-MP", [&](const core::ProbabilisticMatcher& m) {
    return core::RunNoMp(m, w.cover);
  });
  run("SMP", [&](const core::ProbabilisticMatcher& m) {
    return core::RunSmp(m, w.cover);
  });
  run("MMP", [&](const core::ProbabilisticMatcher& m) {
    return core::RunMmp(m, w.cover);
  });
  bench::JsonReport report("fig3d_time_hepth");
  report.Table("timing", table);

  std::printf(
      "\n'free vars touched' is the total active size the matcher saw — "
      "the paper's mechanism: message passing lowers it.\n");
  report.Write();
  return 0;
}
