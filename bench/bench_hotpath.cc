// Hot-path microbench: the per-record tokenise -> MinHash -> score chain,
// legacy layout vs the arena/SIMD overhaul.
//
// Three tables, one per pipeline stage, each comparing the historical
// implementation (heap token strings, per-call scalar loops — replicated
// inline below so the baseline survives the refactor it measures) against
// the flat TokenCorpus + dispatched-kernel hot path:
//  * tokenize — AuthorBlockingTokens string vectors vs arena emission
//    (tokens/s);
//  * minhash  — legacy per-token scalar loop vs the batched kernel at
//    kScalar and (when the CPU has it) kAvx2 (signatures/s, speedup);
//  * scores   — set-based vs merge-based Jaccard, per-call-allocating vs
//    scratch-reusing Jaro-Winkler, scalar vs SIMD EstimateJaccard
//    (scores/s).
//
// Every comparison CEM_CHECKs bit-identical results before it reports a
// speedup — the overhaul's contract is "same answer, faster". All stages
// run single-threaded (ExecutionContext(1, 1)): the speedups reported here
// are per-core layout/ISA wins, not parallelism.
//
// Counter determinism: the workload size is a pure function of
// CEM_BENCH_SCALE, every kernel level is requested explicitly (never via
// CEM_SIMD), and a host without AVX2 replays the AVX2 slot at kScalar for
// counter parity — so the folded-in counter_* values are a pure function
// of the scale and gate via bench_diff on any host.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <iterator>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "blocking/blocking_tokens.h"
#include "blocking/minhash.h"
#include "blocking/minhash_simd.h"
#include "data/entity.h"
#include "text/jaccard.h"
#include "text/jaro_winkler.h"
#include "text/token_arena.h"
#include "util/hash.h"
#include "util/random.h"
#include "util/timer.h"

namespace {

using namespace cem;

// --- inline replicas of the pre-overhaul implementations -------------------

/// The historical MinHasher::Signature inner loop (heap strings, per-token
/// re-walk, scalar min), verbatim from the pre-refactor minhash.cc.
std::vector<uint64_t> LegacySignature(const std::vector<std::string>& tokens,
                                      const std::vector<uint64_t>& salts) {
  std::vector<uint64_t> signature(salts.size(),
                                  blocking::MinHasher::kEmptySlot);
  for (const std::string& token : tokens) {
    uint64_t base = 0xcbf29ce484222325ULL;
    for (unsigned char c : token) {
      base ^= c;
      base *= 0x100000001b3ULL;
    }
    for (size_t i = 0; i < salts.size(); ++i) {
      const uint64_t h = Mix64(base ^ salts[i]);
      if (h < signature[i]) signature[i] = h;
    }
  }
  return signature;
}

/// The historical std::set-based JaccardSimilarity.
double LegacyJaccard(const std::vector<std::string>& a,
                     const std::vector<std::string>& b) {
  std::set<std::string> sa(a.begin(), a.end());
  std::set<std::string> sb(b.begin(), b.end());
  if (sa.empty() && sb.empty()) return 1.0;
  size_t intersection = 0;
  for (const std::string& t : sa) intersection += sb.count(t);
  const size_t uni = sa.size() + sb.size() - intersection;
  return static_cast<double>(intersection) / static_cast<double>(uni);
}

/// The historical JaroSimilarity with its two per-call vector<bool> heap
/// allocations.
double LegacyJaro(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a == b) return 1.0;
  const size_t len_a = a.size();
  const size_t len_b = b.size();
  const size_t window =
      std::max(len_a, len_b) / 2 == 0 ? 0 : std::max(len_a, len_b) / 2 - 1;
  std::vector<bool> matched_a(len_a, false);
  std::vector<bool> matched_b(len_b, false);
  size_t matches = 0;
  for (size_t i = 0; i < len_a; ++i) {
    const size_t lo = i > window ? i - window : 0;
    const size_t hi = std::min(len_b, i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (matched_b[j] || a[i] != b[j]) continue;
      matched_a[i] = true;
      matched_b[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < len_a; ++i) {
    if (!matched_a[i]) continue;
    while (!matched_b[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  const double m = static_cast<double>(matches);
  return (m / len_a + m / len_b + (m - transpositions / 2.0) / m) / 3.0;
}

// --- synthetic workload -----------------------------------------------------

/// Author-reference-shaped entities with Zipf name popularity, so token
/// sets collide the way real references do.
std::vector<data::Entity> MakeEntities(size_t n, Rng& rng) {
  static const char* const kLast[] = {
      "smith", "johnson", "rastogi", "dalvi", "garofalakis", "chen",
      "gupta", "nakamura", "ivanov", "okafor", "muller", "kowalski"};
  static const char* const kFirst[] = {"alice", "bob", "carol", "dmitri",
                                       "eve",   "fumi", "grace", "hugo"};
  std::vector<data::Entity> entities(n);
  for (size_t i = 0; i < n; ++i) {
    data::Entity& e = entities[i];
    e.type = data::EntityType::kAuthorRef;
    e.last_name = kLast[rng.NextZipf(std::size(kLast), 1.1)];
    // Suffix some names so the token space is larger than the base list.
    if (rng.NextBernoulli(0.4)) {
      e.last_name += static_cast<char>('a' + rng.NextBounded(26));
      e.last_name += static_cast<char>('a' + rng.NextBounded(26));
    }
    e.first_name = kFirst[rng.NextBounded(std::size(kFirst))];
    if (rng.NextBernoulli(0.3)) e.first_name = e.first_name.substr(0, 1);
  }
  return entities;
}

double PerSecond(double count, double seconds) {
  return count / std::max(seconds, 1e-9);
}

/// Runs `fn` once untimed (warm-up: heap growth, first-touch page faults),
/// then `reps` timed passes, and returns the BEST single-pass time. On a
/// shared/noisy host the minimum is the standard robust estimator of the
/// true cost — scheduler preemption only ever adds time, so the fastest
/// observed pass is the closest to undisturbed execution for both the
/// legacy and the batched side.
template <typename Fn>
double TimeBest(int reps, const Fn& fn) {
  fn();
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    Timer timer;
    fn();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

}  // namespace

int main() {
  const double scale = bench::Begin(
      "bench_hotpath — arena layout + SIMD kernels vs legacy scalar",
      "the per-record hot path (tokenise, MinHash, score) is memory-layout "
      "and ISA bound, not algorithm bound: a flat arena corpus with batched "
      "bit-identical SIMD kernels gives integer-factor per-core speedups "
      "with zero change in output");
  bench::JsonReport report("bench_hotpath");

  // Single-threaded on purpose: per-core wins only (see header comment).
  ExecutionContext ctx(/*num_threads=*/1, /*num_shards=*/1);
  const size_t num_docs =
      std::max<size_t>(512, static_cast<size_t>(30000 * scale));
  Rng rng(0x5eedc0ffee123ULL);
  const std::vector<data::Entity> entities = MakeEntities(num_docs, rng);
  std::printf("Hot-path corpus: %zu synthetic author refs\n", num_docs);
  std::printf("SIMD: active=%s, avx2 kernels %s\n\n",
              blocking::SimdLevelName(blocking::ActiveSimdLevel()),
              blocking::SimdLevelSupported(blocking::SimdLevel::kAvx2)
                  ? "supported"
                  : "unsupported");

  // --- tokenize -------------------------------------------------------------
  // The legacy side is the full historical tokenise path: AuthorBlockingTokens
  // heap vectors plus the per-document sort+unique normalisation that
  // TokenIndex::AddDocument applied to every token set. The arena corpus
  // does the same normalisation (and additionally FNV-hashes every token
  // once) at build time.
  constexpr int kTokenizeReps = 5;
  std::vector<std::vector<std::string>> legacy_tokens;
  const double legacy_tokenize_s = TimeBest(kTokenizeReps, [&] {
    legacy_tokens.assign(num_docs, {});
    for (size_t i = 0; i < num_docs; ++i) {
      legacy_tokens[i] = blocking::AuthorBlockingTokens(entities[i]);
      std::vector<std::string>& tokens = legacy_tokens[i];
      std::sort(tokens.begin(), tokens.end());
      tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
    }
  });

  text::TokenCorpus corpus;
  const double arena_tokenize_s = TimeBest(kTokenizeReps, [&] {
    corpus = text::TokenCorpus::Build(
        num_docs,
        [&](size_t i, text::TokenCorpus::DocBuilder& builder) {
          blocking::AppendAuthorBlockingTokens(entities[i], builder);
        },
        ctx);
  });

  size_t legacy_token_count = 0;
  for (const auto& tokens : legacy_tokens) legacy_token_count += tokens.size();
  TableWriter tokenize({"layout", "tokens", "tokens/s", "speedup"});
  tokenize.AddRow({"legacy string vectors",
                   std::to_string(legacy_token_count),
                   TableWriter::Num(
                       PerSecond(legacy_token_count, legacy_tokenize_s), 0),
                   "1.00"});
  tokenize.AddRow({"arena corpus", std::to_string(corpus.num_tokens()),
                   TableWriter::Num(
                       PerSecond(legacy_token_count, arena_tokenize_s), 0),
                   TableWriter::Num(legacy_tokenize_s / arena_tokenize_s, 2)});
  report.Table("tokenize", tokenize);
  report.Metric("tokens_emitted", static_cast<double>(corpus.num_tokens()));

  // --- minhash --------------------------------------------------------------
  const blocking::MinHasher hasher;
  constexpr int kMinHashReps = 5;

  std::vector<std::vector<uint64_t>> legacy_sigs(num_docs);
  const double legacy_minhash_s = TimeBest(kMinHashReps, [&] {
    for (size_t i = 0; i < num_docs; ++i) {
      legacy_sigs[i] = LegacySignature(legacy_tokens[i], hasher.salts());
    }
  });

  blocking::SignatureMatrix scalar_sigs;
  const double scalar_minhash_s = TimeBest(kMinHashReps, [&] {
    scalar_sigs = blocking::ComputeSignatures(hasher, corpus, ctx,
                                              blocking::SimdLevel::kScalar);
  });

  const bool has_avx2 =
      blocking::SimdLevelSupported(blocking::SimdLevel::kAvx2);
  double avx2_minhash_s = 0;
  blocking::SignatureMatrix avx2_sigs;
  if (has_avx2) {
    avx2_minhash_s = TimeBest(kMinHashReps, [&] {
      avx2_sigs = blocking::ComputeSignatures(hasher, corpus, ctx,
                                              blocking::SimdLevel::kAvx2);
    });
  } else {
    // Counter parity: the blessed counter baseline expects both kernel
    // variants to have run. Replaying the AVX2 slot at kScalar (same call
    // count as TimeBest: one warm-up plus kMinHashReps) keeps
    // blocking_simd_batches a pure function of the workload, so one
    // committed baseline gates every host.
    for (int rep = 0; rep < kMinHashReps + 1; ++rep) {
      blocking::ComputeSignatures(hasher, corpus, ctx,
                                  blocking::SimdLevel::kScalar);
    }
  }

  // Bit-identity gate: every layout/ISA variant must produce the legacy
  // signature exactly (token dedup in the corpus is invisible to MinHash).
  for (size_t i = 0; i < num_docs; ++i) {
    CEM_CHECK(std::memcmp(legacy_sigs[i].data(), scalar_sigs.row(i),
                          hasher.num_hashes() * sizeof(uint64_t)) == 0)
        << "scalar kernel diverged from the legacy signature at doc " << i;
    if (has_avx2) {
      CEM_CHECK(std::memcmp(legacy_sigs[i].data(), avx2_sigs.row(i),
                            hasher.num_hashes() * sizeof(uint64_t)) == 0)
          << "AVX2 kernel diverged from the legacy signature at doc " << i;
    }
  }

  TableWriter minhash({"kernel", "signatures/s", "speedup vs legacy"});
  minhash.AddRow({"legacy per-token scalar",
                  TableWriter::Num(PerSecond(num_docs, legacy_minhash_s), 0),
                  "1.00"});
  minhash.AddRow({"batched scalar",
                  TableWriter::Num(PerSecond(num_docs, scalar_minhash_s), 0),
                  TableWriter::Num(legacy_minhash_s / scalar_minhash_s, 2)});
  if (has_avx2) {
    minhash.AddRow({"batched avx2",
                    TableWriter::Num(PerSecond(num_docs, avx2_minhash_s), 0),
                    TableWriter::Num(legacy_minhash_s / avx2_minhash_s, 2)});
  }
  report.Table("minhash", minhash);
  report.Metric("speedup_minhash_scalar",
                legacy_minhash_s / scalar_minhash_s);
  if (has_avx2) {
    report.Metric("speedup_minhash_avx2", legacy_minhash_s / avx2_minhash_s);
  }

  // --- scores ---------------------------------------------------------------
  // Deterministic candidate-ish pairs: stride pairs keep some overlap.
  const size_t num_pairs = std::min<size_t>(num_docs, 20000);
  const auto pair_of = [&](size_t p) {
    return std::pair<size_t, size_t>{p % num_docs, (p * 7 + 1) % num_docs};
  };

  constexpr int kScoreReps = 5;
  double legacy_jaccard_sum = 0;
  const double legacy_jaccard_s = TimeBest(kScoreReps, [&] {
    legacy_jaccard_sum = 0;
    for (size_t p = 0; p < num_pairs; ++p) {
      const auto [a, b] = pair_of(p);
      legacy_jaccard_sum += LegacyJaccard(legacy_tokens[a], legacy_tokens[b]);
    }
  });

  double merge_jaccard_sum = 0;
  const double merge_jaccard_s = TimeBest(kScoreReps, [&] {
    merge_jaccard_sum = 0;
    for (size_t p = 0; p < num_pairs; ++p) {
      const auto [a, b] = pair_of(p);
      merge_jaccard_sum += text::HashedJaccard(corpus.doc(a), corpus.doc(b));
    }
  });
  CEM_CHECK(legacy_jaccard_sum == merge_jaccard_sum)
      << "merge Jaccard diverged from the set-based result";

  size_t estimate_agree = 0;
  const double estimate_scalar_s = TimeBest(kScoreReps, [&] {
    estimate_agree = 0;
    for (size_t p = 0; p < num_pairs; ++p) {
      const auto [a, b] = pair_of(p);
      estimate_agree += blocking::simd::CountEqual(
          scalar_sigs.row(a), scalar_sigs.row(b), hasher.num_hashes(),
          blocking::SimdLevel::kScalar);
    }
  });

  double estimate_avx2_s = 0;
  if (has_avx2) {
    size_t avx2_agree = 0;
    estimate_avx2_s = TimeBest(kScoreReps, [&] {
      avx2_agree = 0;
      for (size_t p = 0; p < num_pairs; ++p) {
        const auto [a, b] = pair_of(p);
        avx2_agree += blocking::simd::CountEqual(
            scalar_sigs.row(a), scalar_sigs.row(b), hasher.num_hashes(),
            blocking::SimdLevel::kAvx2);
      }
    });
    CEM_CHECK(avx2_agree == estimate_agree)
        << "AVX2 CountEqual diverged from scalar";
  }

  double legacy_jw_sum = 0;
  const double legacy_jw_s = TimeBest(kScoreReps, [&] {
    legacy_jw_sum = 0;
    for (size_t p = 0; p < num_pairs; ++p) {
      const auto [a, b] = pair_of(p);
      legacy_jw_sum += LegacyJaro(entities[a].last_name,
                                  entities[b].last_name);
    }
  });

  double scratch_jw_sum = 0;
  const double scratch_jw_s = TimeBest(kScoreReps, [&] {
    scratch_jw_sum = 0;
    for (size_t p = 0; p < num_pairs; ++p) {
      const auto [a, b] = pair_of(p);
      scratch_jw_sum += text::JaroSimilarity(entities[a].last_name,
                                             entities[b].last_name);
    }
  });
  CEM_CHECK(legacy_jw_sum == scratch_jw_sum)
      << "scratch-reusing Jaro diverged from the allocating version";

  TableWriter scores({"scorer", "scores/s", "speedup"});
  scores.AddRow({"jaccard: std::set",
                 TableWriter::Num(PerSecond(num_pairs, legacy_jaccard_s), 0),
                 "1.00"});
  scores.AddRow({"jaccard: arena merge",
                 TableWriter::Num(PerSecond(num_pairs, merge_jaccard_s), 0),
                 TableWriter::Num(legacy_jaccard_s / merge_jaccard_s, 2)});
  scores.AddRow({"estimate: scalar",
                 TableWriter::Num(PerSecond(num_pairs, estimate_scalar_s), 0),
                 "1.00"});
  if (has_avx2) {
    scores.AddRow({"estimate: avx2",
                   TableWriter::Num(PerSecond(num_pairs, estimate_avx2_s), 0),
                   TableWriter::Num(estimate_scalar_s / estimate_avx2_s, 2)});
  }
  scores.AddRow({"jaro: per-call alloc",
                 TableWriter::Num(PerSecond(num_pairs, legacy_jw_s), 0),
                 "1.00"});
  scores.AddRow({"jaro: scratch reuse",
                 TableWriter::Num(PerSecond(num_pairs, scratch_jw_s), 0),
                 TableWriter::Num(legacy_jw_s / scratch_jw_s, 2)});
  report.Table("scores", scores);
  report.Metric("speedup_jaccard_merge", legacy_jaccard_s / merge_jaccard_s);

  std::printf(
      "\nNote: every row above was checked bit-identical to the legacy\n"
      "implementation before timing was reported; the speedups are pure\n"
      "layout + ISA wins with zero output change.\n");
  report.Write();
  return 0;
}
