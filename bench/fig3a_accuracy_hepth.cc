// Figure 3(a): precision / recall / F1 of NO-MP, SMP, MMP and the UB scheme
// with the MLN matcher on the HEPTH-like corpus.

#include "bench_util.h"
#include "core/message_passing.h"
#include "eval/upper_bound.h"
#include "mln/mln_matcher.h"

int main() {
  using namespace cem;
  const double scale = bench::Begin(
      "Figure 3(a) — MLN accuracy on HEPTH",
      "all schemes have precision close to 1 (soundness); recall orders "
      "NO-MP <= SMP <= MMP, with MMP's F1 approaching the UB series");

  eval::Workload w = eval::MakeHepthWorkload(scale);
  std::printf("%s: %zu refs, %zu candidate pairs, cover: %s\n\n",
              w.name.c_str(), w.dataset->author_refs().size(),
              w.dataset->num_candidate_pairs(),
              w.cover.Summary(*w.dataset).c_str());

  mln::MlnMatcher matcher(*w.dataset);
  const core::MpResult no_mp = core::RunNoMp(matcher, w.cover);
  const core::MpResult smp = core::RunSmp(matcher, w.cover);
  const core::MpResult mmp = core::RunMmp(matcher, w.cover);
  const core::MatchSet ub = eval::UpperBoundMatches(matcher);

  TableWriter table({"scheme", "P", "R", "F1", "P(tc)", "R(tc)", "F1(tc)"});
  table.AddRow(bench::PrRowBoth("NO-MP", *w.dataset, no_mp.matches));
  table.AddRow(bench::PrRowBoth("SMP", *w.dataset, smp.matches));
  table.AddRow(bench::PrRowBoth("MMP", *w.dataset, mmp.matches));
  table.AddRow(bench::PrRowBoth("UB", *w.dataset, ub));
  bench::JsonReport report("fig3a_accuracy_hepth");
  report.Table("accuracy", table);

  std::printf(
      "\nnew matches vs NO-MP: SMP +%zu, MMP +%zu; MMP promoted %zu "
      "maximal messages\n",
      smp.matches.Difference(no_mp.matches).size(),
      mmp.matches.Difference(no_mp.matches).size(), mmp.messages_promoted);
  report.Write();
  return 0;
}
