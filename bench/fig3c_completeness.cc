// Figure 3(c): completeness of NO-MP / SMP / MMP measured against the UB
// scheme, on both corpora.

#include "bench_util.h"
#include "core/message_passing.h"
#include "eval/upper_bound.h"
#include "mln/mln_matcher.h"

int main() {
  using namespace cem;
  const double scale = bench::Begin(
      "Figure 3(c) — completeness of the message-passing schemes",
      "MMP has completeness ~1 on HEPTH and nearly 1 on DBLP — its output "
      "essentially equals running the matcher on the whole dataset");

  TableWriter table({"dataset", "NO-MP", "SMP", "MMP", "MMP vs full run"});
  for (int which = 0; which < 2; ++which) {
    eval::Workload w = which == 0 ? eval::MakeHepthWorkload(scale)
                                  : eval::MakeDblpWorkload(scale);
    mln::MlnMatcher matcher(*w.dataset);
    const core::MatchSet no_mp = core::RunNoMp(matcher, w.cover).matches;
    const core::MatchSet smp = core::RunSmp(matcher, w.cover).matches;
    const core::MatchSet mmp = core::RunMmp(matcher, w.cover).matches;
    const core::MatchSet ub = eval::UpperBoundMatches(matcher);
    // Our exact MAP engine also makes the true full run feasible, so we
    // report completeness against it as well (the paper could not).
    const core::MatchSet full = matcher.MatchAll();
    table.AddRow({w.name, TableWriter::Num(eval::Completeness(no_mp, ub)),
                  TableWriter::Num(eval::Completeness(smp, ub)),
                  TableWriter::Num(eval::Completeness(mmp, ub)),
                  TableWriter::Num(eval::Completeness(mmp, full))});
  }
  bench::JsonReport report("fig3c_completeness");
  report.Table("completeness", table);
  report.Write();
  return 0;
}
