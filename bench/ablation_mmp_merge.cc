// Ablation: MMP with maximal-message merging ((T ∪ TC)*, Proposition 3)
// disabled. Without merging, messages from different neighborhoods can
// never combine, so inference chains spanning neighborhoods — the paper's
// {(a1,a2),(b2,b3),(c2,c3)} example — are not completed.

#include "bench_util.h"
#include "core/message_passing.h"
#include "data/figure1.h"
#include "mln/mln_matcher.h"

int main() {
  using namespace cem;
  const double scale = bench::Begin(
      "Ablation — MMP without message merging",
      "merging overlapping maximal messages is what completes chains; "
      "without it MMP degenerates towards SMP");
  bench::JsonReport report("ablation_mmp_merge");

  // Part 1: the paper's own Figure 1/2 instance, where the effect is exact.
  {
    data::Figure1 fig = data::MakeFigure1();
    mln::MlnMatcher matcher(*fig.dataset, mln::MlnWeights::Figure1Demo());
    core::Cover cover;
    for (const auto& n : fig.neighborhoods) cover.Add(n);
    TableWriter table({"variant", "matches found", "chain recovered"});
    const core::MpResult with = core::RunMmp(matcher, cover);
    const core::MpResult without = core::RunMmpWithoutMerge(matcher, cover);
    const data::EntityPair chain_pair(fig.a1, fig.a2);
    table.AddRow({"MMP (full)", std::to_string(with.matches.size()),
                  with.matches.Contains(chain_pair) ? "yes" : "no"});
    table.AddRow({"MMP, no merge", std::to_string(without.matches.size()),
                  without.matches.Contains(chain_pair) ? "yes" : "no"});
    std::printf("Figure 1 instance (5 matches in the holistic optimum):\n");
    report.Table("figure1", table);
  }

  // Part 2: the HEPTH-like corpus.
  {
    eval::Workload w = eval::MakeHepthWorkload(scale);
    mln::MlnMatcher matcher(*w.dataset);
    const core::MpResult with = core::RunMmp(matcher, w.cover);
    const core::MpResult without = core::RunMmpWithoutMerge(matcher, w.cover);
    TableWriter table({"variant", "P", "R", "F1"});
    table.AddRow(bench::PrRow("MMP (full)", *w.dataset, with.matches));
    table.AddRow(bench::PrRow("MMP, no merge", *w.dataset, without.matches));
    std::printf("\nHEPTH-like corpus:\n");
    report.Table("hepth", table);
    std::printf("\nmatches only found with merging: %zu\n",
                with.matches.Difference(without.matches).size());
  }
  report.Write();
  return 0;
}
