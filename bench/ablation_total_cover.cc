// Ablation: covering without boundary expansion. The resulting cover is
// NOT total w.r.t. Coauthor (Definition 7): coauthor tuples crossing
// neighborhoods are lost and never participate in matching, costing
// recall. This is the paper's §4 motivation for total covers.

#include "bench_util.h"
#include "core/canopy.h"
#include "core/message_passing.h"
#include "mln/mln_matcher.h"

int main() {
  using namespace cem;
  const double scale = bench::Begin(
      "Ablation — total cover vs plain blocking cover",
      "dropping boundary expansion loses Coauthor tuples (non-total "
      "cover), which costs recall across every scheme");

  eval::Workload w = eval::MakeHepthWorkload(scale);
  mln::MlnMatcher matcher(*w.dataset);

  core::CanopyOptions no_boundary;
  no_boundary.expand_boundary = false;
  const core::Cover blocked = core::BuildCanopyCover(*w.dataset, no_boundary);

  TableWriter table({"cover", "total (Coauthor)", "scheme", "P", "R", "F1"});
  for (int which = 0; which < 2; ++which) {
    const core::Cover& cover = which == 0 ? w.cover : blocked;
    const std::string cover_name =
        which == 0 ? "boundary-expanded" : "canopy-only";
    const std::string total =
        cover.IsTotalForCoauthor(*w.dataset) ? "yes" : "no";
    const core::MatchSet no_mp = core::RunNoMp(matcher, cover).matches;
    const core::MatchSet mmp = core::RunMmp(matcher, cover).matches;
    auto row = [&](const char* scheme, const core::MatchSet& m) {
      std::vector<std::string> cells = {cover_name, total};
      for (auto& c : bench::PrRow(scheme, *w.dataset, m)) {
        cells.push_back(std::move(c));
      }
      table.AddRow(std::move(cells));
    };
    row("NO-MP", no_mp);
    row("MMP", mmp);
  }
  bench::JsonReport report("ablation_total_cover");
  report.Table("results", table);
  report.Write();
  return 0;
}
