// Ablation: canopy threshold sweep — the neighborhood-size vs cost
// trade-off behind the paper's HEPTH/DBLP contrast. Tighter loose
// thresholds give more, smaller neighborhoods (cheaper inference, more
// message passing); looser thresholds approach one giant neighborhood
// (holistic run).

#include "bench_util.h"
#include "core/canopy.h"
#include "core/message_passing.h"
#include "mln/mln_matcher.h"

int main() {
  using namespace cem;
  const double scale = bench::Begin(
      "Ablation — canopy threshold sweep",
      "neighborhood granularity trades inference cost against how much "
      "work message passing must do; accuracy stays stable (soundness)");

  eval::Workload w = eval::MakeHepthWorkload(scale);
  mln::MlnMatcher matcher(*w.dataset);

  TableWriter table({"loose", "tight", "#nbhd", "mean size", "max size",
                     "SMP evals", "SMP sec", "P", "R"});
  const double settings[][2] = {
      {0.30, 0.60}, {0.45, 0.75}, {0.60, 0.85}, {0.75, 0.95}};
  for (const auto& [loose, tight] : settings) {
    core::CanopyOptions options;
    options.loose = loose;
    options.tight = tight;
    const core::Cover cover = core::BuildCanopyCover(*w.dataset, options);
    const core::MpResult smp = core::RunSmp(matcher, cover);
    const eval::PrMetrics m = eval::ComputePr(*w.dataset, smp.matches);
    table.AddRow({TableWriter::Num(loose, 2), TableWriter::Num(tight, 2),
                  std::to_string(cover.size()),
                  TableWriter::Num(cover.MeanNeighborhoodSize(), 1),
                  std::to_string(cover.MaxNeighborhoodSize()),
                  std::to_string(smp.neighborhood_evaluations),
                  bench::Secs(smp.seconds), TableWriter::Num(m.precision),
                  TableWriter::Num(m.recall)});
  }
  bench::JsonReport report("ablation_canopy");
  report.Table("threshold_sweep", table);
  report.Write();
  return 0;
}
