// CI bench-regression gate: compares the tracked counters of two
// BENCH_<name>.json reports (see bench::JsonReport) and fails when the
// current run regressed past the allowed slowdown.
//
//   bench_diff <baseline.json> <current.json> [--max-slowdown 0.15]
//
// Tracked counters are the top-level scalar metrics whose key starts with
// "counter_" — the convention benches use (via JsonReport::Metric) for
// deterministic, lower-is-better work measures (pairs considered, bucket
// pairs, ...). Counters are preferred over wall times because they are
// noise-free across CI hosts; a counter that grew >15% means the algorithm
// genuinely does more work, not that the machine was busy.
//
// Exit codes: 0 = within budget, 1 = regression, 2 = usage/io error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Counter {
  std::string key;
  double value;
};

/// Extracts `"counter_<...>": <number>` entries from our generated report
/// format (flat scan; table cells never hold counter_ keys).
std::vector<Counter> ParseCounters(const std::string& json) {
  std::vector<Counter> out;
  const std::string marker = "\"counter_";
  size_t pos = 0;
  while ((pos = json.find(marker, pos)) != std::string::npos) {
    const size_t key_start = pos + 1;  // Past the opening quote.
    const size_t key_end = json.find('"', key_start);
    if (key_end == std::string::npos) break;
    pos = key_end + 1;
    size_t cursor = pos;
    while (cursor < json.size() &&
           (json[cursor] == ':' || json[cursor] == ' ')) {
      ++cursor;
    }
    char* end = nullptr;
    const double value = std::strtod(json.c_str() + cursor, &end);
    if (end == json.c_str() + cursor) continue;  // Not a scalar; skip.
    out.push_back({json.substr(key_start, key_end - key_start), value});
  }
  return out;
}

bool ReadFile(const char* path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

const Counter* Find(const std::vector<Counter>& counters,
                    const std::string& key) {
  for (const Counter& c : counters) {
    if (c.key == key) return &c;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  double max_slowdown = 0.15;
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--max-slowdown") && i + 1 < argc) {
      max_slowdown = std::atof(argv[++i]);
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_diff <baseline.json> <current.json> "
                 "[--max-slowdown 0.15]\n");
    return 2;
  }

  std::string baseline_json, current_json;
  if (!ReadFile(files[0], &baseline_json)) {
    std::fprintf(stderr, "cannot read baseline %s\n", files[0]);
    return 2;
  }
  if (!ReadFile(files[1], &current_json)) {
    std::fprintf(stderr, "cannot read current %s\n", files[1]);
    return 2;
  }

  const std::vector<Counter> baseline = ParseCounters(baseline_json);
  const std::vector<Counter> current = ParseCounters(current_json);
  if (baseline.empty()) {
    std::printf("bench_diff: no tracked counters in %s; nothing to gate\n",
                files[0]);
    return 0;
  }

  int regressions = 0;
  for (const Counter& base : baseline) {
    const Counter* now = Find(current, base.key);
    if (now == nullptr) {
      // A disappeared counter silently disables its gate forever (the
      // baseline is refreshed after this run) — treat it as a failure so
      // renames must update the baseline deliberately.
      std::fprintf(stderr, "FAIL %s: missing from current report\n",
                   base.key.c_str());
      ++regressions;
      continue;
    }
    const double budget = base.value * (1.0 + max_slowdown) + 1e-9;
    const bool failed = now->value > budget;
    char delta[32];
    if (base.value == 0.0) {
      std::snprintf(delta, sizeof(delta), "was 0");
    } else {
      std::snprintf(delta, sizeof(delta), "%+.1f%%",
                    (now->value - base.value) / base.value * 100.0);
    }
    std::printf("%s %s: %.6g -> %.6g (%s)\n", failed ? "FAIL" : "ok  ",
                base.key.c_str(), base.value, now->value, delta);
    if (failed) ++regressions;
  }
  if (regressions > 0) {
    std::fprintf(stderr,
                 "bench_diff: %d counter(s) regressed more than %.0f%%\n",
                 regressions, max_slowdown * 100.0);
    return 1;
  }
  return 0;
}
