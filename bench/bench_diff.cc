// CI bench-regression gate: compares the tracked counters of two
// BENCH_<name>.json reports (see bench::JsonReport) and fails when the
// current run regressed past the allowed slowdown.
//
//   bench_diff <baseline.json> <current.json> [--max-slowdown 0.15]
//
// Tracked counters are the top-level scalar metrics whose key starts with
// "counter_" — the convention benches use (via JsonReport::Metric) for
// deterministic, lower-is-better work measures (pairs considered, bucket
// pairs, ...). Counters are preferred over wall times because they are
// noise-free across CI hosts; a counter that grew >15% means the algorithm
// genuinely does more work, not that the machine was busy.
//
// Wall times ("wall_ms_<table>" keys, recorded by bench::JsonReport) are
// additionally diffed when both reports carry them, but by default strictly
// informationally: they never affect the exit code, so the gate stays
// host-insensitive. Passing `--gate-wall <fraction>` turns them into gated
// metrics with their own budget (a baseline wall key missing from the
// current report fails, exactly like a counter) — the mode a dedicated,
// quiet runner opts into via CEM_CI_GATE_WALL=1 in ci/check.sh.
//
// Histogram exports ("hist_<name>_{count,sum,p50,p95,p99}", from the
// metrics registry) and gauges ("gauge_<name>") are likewise diffed
// informationally: latency percentiles are host-dependent by construction,
// so an unknown or shifted hist_/gauge_ key never affects the exit code.
//
// A counter missing from the current report fails the gate (renames must
// update the baseline deliberately); a counter present only in the current
// report is printed as informational so new counters get blessed into the
// baseline instead of silently riding ungated; a malformed (truncated,
// conflicted, non-JSON) report file is a hard error.
//
// Schema-check modes (the CI observability stage):
//
//   bench_diff --check-metrics <metrics.json>
//     Valid when the file is one well-formed JSON object whose counter_*
//     values are integer literals and whose wall_ms_*/gauge_*/hist_*
//     values are numeric scalars, with at least one counter present.
//
//   bench_diff --check-trace <trace.json>
//     Valid when the file is one well-formed JSON array (the Chrome
//     trace_event format `dedup_tool --trace-json` emits).
//
//   bench_diff --check-prometheus <metrics.txt>
//     Valid when the file is Prometheus text exposition (what the stats
//     endpoint's /metrics serves): every line blank, a well-formed
//     `# HELP`/`# TYPE` comment, or one `name[{labels}] value` sample with
//     a legal metric name and a parseable value; at least one TYPE line
//     and one sample present.
//
// Exit codes: 0 = within budget/valid, 1 = regression,
// 2 = usage/io/format/schema error.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Counter {
  std::string key;
  double value;
  /// The raw numeric token, for textual schema checks (integer literal?).
  std::string raw;
};

/// Extracts `"<prefix><...>": <number>` entries from our generated report
/// format (flat scan; table cells never hold counter_/wall_ms_ keys).
/// Returns false (naming the key in `bad_key`) when a tracked key's value
/// is not a scalar — a tracked metric that cannot be read is a malformed
/// report, not a metric to skip: silently dropping it would disable its
/// gate with exit code 0.
bool ParseMetrics(const std::string& json, const std::string& prefix,
                  std::vector<Counter>* out, std::string* bad_key) {
  const std::string marker = "\"" + prefix;
  size_t pos = 0;
  while ((pos = json.find(marker, pos)) != std::string::npos) {
    const size_t key_start = pos + 1;  // Past the opening quote.
    const size_t key_end = json.find('"', key_start);
    if (key_end == std::string::npos) break;
    pos = key_end + 1;
    size_t cursor = pos;
    while (cursor < json.size() &&
           (json[cursor] == ':' || json[cursor] == ' ')) {
      ++cursor;
    }
    char* end = nullptr;
    const double value = std::strtod(json.c_str() + cursor, &end);
    if (end == json.c_str() + cursor) {
      *bad_key = json.substr(key_start, key_end - key_start);
      return false;
    }
    out->push_back({json.substr(key_start, key_end - key_start), value,
                    json.substr(cursor, end - (json.c_str() + cursor))});
  }
  return true;
}

/// True when `raw` is a JSON integer literal (what counter_* must be).
bool IsIntegerLiteral(const std::string& raw) {
  size_t i = (!raw.empty() && raw[0] == '-') ? 1 : 0;
  if (i == raw.size()) return false;
  for (; i < raw.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(raw[i]))) return false;
  }
  return true;
}

bool ReadFile(const char* path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

/// Structural JSON check: the document must be one balanced value opening
/// with `open` ('{' for reports, '[' for trace arrays), braces and brackets
/// matched outside strings, nothing but whitespace after it. Not a full
/// parser — it catches the real failure modes of a generated file:
/// truncation, merge conflicts, an empty or non-JSON file.
bool IsWellFormedJson(const std::string& json, char open = '{') {
  size_t pos = 0;
  while (pos < json.size() && std::isspace(static_cast<unsigned char>(
                                  json[pos]))) {
    ++pos;
  }
  if (pos == json.size() || json[pos] != open) return false;
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (; pos < json.size(); ++pos) {
    const char c = json[pos];
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      stack.push_back(c);
    } else if (c == '}' || c == ']') {
      if (stack.empty() || (c == '}') != (stack.back() == '{')) return false;
      stack.pop_back();
      if (stack.empty()) break;  // Object closed; only whitespace may follow.
    }
  }
  if (!stack.empty() || in_string) return false;
  for (++pos; pos < json.size(); ++pos) {
    if (!std::isspace(static_cast<unsigned char>(json[pos]))) return false;
  }
  return true;
}

const Counter* Find(const std::vector<Counter>& counters,
                    const std::string& key) {
  for (const Counter& c : counters) {
    if (c.key == key) return &c;
  }
  return nullptr;
}

}  // namespace

/// --check-metrics: schema-validate one metrics/report JSON object.
int CheckMetrics(const char* path) {
  std::string json;
  if (!ReadFile(path, &json)) {
    std::fprintf(stderr, "cannot read %s\n", path);
    return 2;
  }
  if (!IsWellFormedJson(json)) {
    std::fprintf(stderr, "check-metrics: %s is not a well-formed JSON object\n",
                 path);
    return 2;
  }
  const char* numeric_prefixes[] = {"wall_ms_", "gauge_", "hist_"};
  size_t num_numeric = 0;
  std::vector<Counter> metrics;
  std::string bad_key;
  for (const char* prefix : numeric_prefixes) {
    metrics.clear();
    if (!ParseMetrics(json, prefix, &metrics, &bad_key)) {
      std::fprintf(stderr,
                   "check-metrics: %s: \"%s\" has a non-numeric value\n", path,
                   bad_key.c_str());
      return 2;
    }
    num_numeric += metrics.size();
  }
  metrics.clear();
  if (!ParseMetrics(json, "counter_", &metrics, &bad_key)) {
    std::fprintf(stderr, "check-metrics: %s: \"%s\" has a non-numeric value\n",
                 path, bad_key.c_str());
    return 2;
  }
  for (const Counter& c : metrics) {
    if (!IsIntegerLiteral(c.raw)) {
      std::fprintf(stderr,
                   "check-metrics: %s: \"%s\" must be an integer literal, "
                   "got %s\n",
                   path, c.key.c_str(), c.raw.c_str());
      return 2;
    }
  }
  if (metrics.empty()) {
    std::fprintf(stderr, "check-metrics: %s has no counter_* metrics\n", path);
    return 2;
  }
  std::printf(
      "check-metrics: %s ok (%zu integral counters, %zu numeric "
      "wall/gauge/hist keys)\n",
      path, metrics.size(), num_numeric);
  return 0;
}

/// --check-trace: structural validation of a Chrome trace_event array.
int CheckTrace(const char* path) {
  std::string json;
  if (!ReadFile(path, &json)) {
    std::fprintf(stderr, "cannot read %s\n", path);
    return 2;
  }
  if (!IsWellFormedJson(json, '[')) {
    std::fprintf(stderr, "check-trace: %s is not a well-formed JSON array\n",
                 path);
    return 2;
  }
  // Every event the recorder emits is a complete-duration ("ph": "X")
  // record; count them for the summary line.
  size_t events = 0;
  for (size_t pos = 0; (pos = json.find("\"ph\"", pos)) != std::string::npos;
       ++pos) {
    ++events;
  }
  std::printf("check-trace: %s ok (%zu events)\n", path, events);
  return 0;
}

namespace {

/// Prometheus metric-name charset: [a-zA-Z_:][a-zA-Z0-9_:]*.
bool IsPrometheusName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':';
    if (!(alpha || (i > 0 && c >= '0' && c <= '9'))) return false;
  }
  return true;
}

/// Sample values may be decimals or the spec's non-finite spellings.
bool IsPrometheusValue(const std::string& raw) {
  if (raw == "NaN" || raw == "+Inf" || raw == "-Inf") return true;
  char* end = nullptr;
  std::strtod(raw.c_str(), &end);
  return end != raw.c_str() && *end == '\0';
}

}  // namespace

/// --check-prometheus: line-level validation of text exposition 0.0.4.
int CheckPrometheus(const char* path) {
  std::string text;
  if (!ReadFile(path, &text)) {
    std::fprintf(stderr, "cannot read %s\n", path);
    return 2;
  }
  size_t samples = 0;
  size_t types = 0;
  size_t line_no = 0;
  std::istringstream in(text);
  std::string line;
  const auto fail = [&](const char* what) {
    std::fprintf(stderr, "check-prometheus: %s:%zu: %s: %s\n", path, line_no,
                 what, line.c_str());
    return 2;
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Only `# HELP <name> ...` and `# TYPE <name> <type>` are structured;
      // any other comment passes unexamined (the spec allows them).
      std::istringstream fields(line);
      std::string hash, keyword, name, type;
      fields >> hash >> keyword >> name;
      if (keyword == "HELP") {
        if (!IsPrometheusName(name)) return fail("bad HELP metric name");
      } else if (keyword == "TYPE") {
        fields >> type;
        if (!IsPrometheusName(name)) return fail("bad TYPE metric name");
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          return fail("unknown metric type");
        }
        ++types;
      }
      continue;
    }
    // A sample: `name value` or `name{labels} value`. Labels are skipped
    // structurally (balanced braces would need a parser; the name and the
    // value are what generated exporters get wrong).
    const size_t brace = line.find('{');
    const size_t space = line.find(' ');
    const size_t name_end = std::min(brace, space);
    if (name_end == std::string::npos) return fail("sample has no value");
    if (!IsPrometheusName(line.substr(0, name_end))) {
      return fail("bad sample metric name");
    }
    size_t value_start = space;
    if (brace != std::string::npos && brace < space) {
      const size_t close = line.find('}', brace);
      if (close == std::string::npos) return fail("unterminated label set");
      value_start = line.find(' ', close);
    }
    if (value_start == std::string::npos) return fail("sample has no value");
    const size_t value_pos = line.find_first_not_of(' ', value_start);
    if (value_pos == std::string::npos) return fail("sample has no value");
    // The value is one token; an optional timestamp may trail it.
    const std::string value =
        line.substr(value_pos, line.find(' ', value_pos) - value_pos);
    if (!IsPrometheusValue(value)) return fail("unparseable sample value");
    ++samples;
  }
  if (types == 0 || samples == 0) {
    std::fprintf(stderr,
                 "check-prometheus: %s has %zu TYPE lines and %zu samples "
                 "(need at least one of each)\n",
                 path, types, samples);
    return 2;
  }
  std::printf("check-prometheus: %s ok (%zu samples, %zu TYPE lines)\n", path,
              samples, types);
  return 0;
}

int main(int argc, char** argv) {
  double max_slowdown = 0.15;
  double gate_wall = -1.0;  // Negative: wall times stay informational.
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--max-slowdown") && i + 1 < argc) {
      max_slowdown = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--gate-wall") && i + 1 < argc) {
      gate_wall = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--check-metrics") && i + 1 < argc) {
      return CheckMetrics(argv[++i]);
    } else if (!std::strcmp(argv[i], "--check-trace") && i + 1 < argc) {
      return CheckTrace(argv[++i]);
    } else if (!std::strcmp(argv[i], "--check-prometheus") && i + 1 < argc) {
      return CheckPrometheus(argv[++i]);
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_diff <baseline.json> <current.json> "
                 "[--max-slowdown 0.15] [--gate-wall <fraction>]\n"
                 "       bench_diff --check-metrics <metrics.json>\n"
                 "       bench_diff --check-trace <trace.json>\n"
                 "       bench_diff --check-prometheus <metrics.txt>\n");
    return 2;
  }

  std::string baseline_json, current_json;
  if (!ReadFile(files[0], &baseline_json)) {
    std::fprintf(stderr, "cannot read baseline %s\n", files[0]);
    return 2;
  }
  if (!ReadFile(files[1], &current_json)) {
    std::fprintf(stderr, "cannot read current %s\n", files[1]);
    return 2;
  }
  if (!IsWellFormedJson(baseline_json)) {
    std::fprintf(stderr,
                 "bench_diff: baseline %s is malformed JSON (truncated or "
                 "corrupted?); regenerate it with ci/update_baselines.sh\n",
                 files[0]);
    return 2;
  }
  if (!IsWellFormedJson(current_json)) {
    std::fprintf(stderr, "bench_diff: current report %s is malformed JSON\n",
                 files[1]);
    return 2;
  }

  // Both prefixes go through the same format gate: a baseline whose
  // wall_ms_ value fails to parse is exactly as malformed as one whose
  // counter_ value does, and must exit 2 either way.
  const auto parse = [](const std::string& json, const char* path,
                        const std::string& prefix) {
    std::vector<Counter> out;
    std::string bad_key;
    if (!ParseMetrics(json, prefix, &out, &bad_key)) {
      std::fprintf(stderr,
                   "bench_diff: %s: metric \"%s\" has a non-scalar value "
                   "(malformed report; regenerate it)\n",
                   path, bad_key.c_str());
      std::exit(2);
    }
    return out;
  };
  const std::vector<Counter> baseline =
      parse(baseline_json, files[0], "counter_");
  const std::vector<Counter> current =
      parse(current_json, files[1], "counter_");

  // Wall-time, histogram and gauge deltas: informational only (host noise
  // must never gate). An unknown hist_/gauge_ key in either report is
  // printed, never failed on.
  const auto diff_informational = [&](const char* tag,
                                      const std::string& prefix,
                                      const char* unit) {
    const std::vector<Counter> base_metrics =
        parse(baseline_json, files[0], prefix);
    const std::vector<Counter> now_metrics =
        parse(current_json, files[1], prefix);
    for (const Counter& now : now_metrics) {
      const Counter* base = Find(base_metrics, now.key);
      if (base == nullptr) {
        std::printf("%s %s: %.6g%s (no baseline; informational)\n", tag,
                    now.key.c_str(), now.value, unit);
      } else if (base->value == 0.0) {
        std::printf("%s %s: 0 -> %.6g%s (informational)\n", tag,
                    now.key.c_str(), now.value, unit);
      } else {
        std::printf("%s %s: %.6g -> %.6g%s (%+.1f%%, informational)\n", tag,
                    now.key.c_str(), base->value, now.value, unit,
                    (now.value - base->value) / base->value * 100.0);
      }
    }
  };
  if (gate_wall < 0.0) diff_informational("wall", "wall_ms_", " ms");
  diff_informational("hist", "hist_", "");
  diff_informational("gauge", "gauge_", "");

  // Opt-in wall-time gate: baseline wall_ms_ keys become budgeted metrics
  // (missing-from-current fails, like a counter rename). Only a quiet,
  // dedicated runner should pass --gate-wall — see the header comment.
  int wall_regressions = 0;
  if (gate_wall >= 0.0) {
    const std::vector<Counter> base_wall =
        parse(baseline_json, files[0], "wall_ms_");
    const std::vector<Counter> now_wall =
        parse(current_json, files[1], "wall_ms_");
    for (const Counter& base : base_wall) {
      const Counter* now = Find(now_wall, base.key);
      if (now == nullptr) {
        std::fprintf(stderr, "FAIL %s: missing from current report\n",
                     base.key.c_str());
        ++wall_regressions;
        continue;
      }
      const double budget = base.value * (1.0 + gate_wall) + 1e-9;
      const bool failed = now->value > budget;
      char delta[32];
      if (base.value == 0.0) {
        std::snprintf(delta, sizeof(delta), "was 0");
      } else {
        std::snprintf(delta, sizeof(delta), "%+.1f%%",
                      (now->value - base.value) / base.value * 100.0);
      }
      std::printf("%s %s: %.6g -> %.6g ms (%s, gated)\n",
                  failed ? "FAIL" : "ok  ", base.key.c_str(), base.value,
                  now->value, delta);
      if (failed) ++wall_regressions;
    }
    for (const Counter& now : now_wall) {
      if (Find(base_wall, now.key) == nullptr) {
        std::printf("new  %s: %.6g ms (no baseline; bless with "
                    "CEM_BLESS_WALL=1 ci/update_baselines.sh)\n",
                    now.key.c_str(), now.value);
      }
    }
  }
  if (baseline.empty()) {
    // Wall-only baselines (bench/baselines-wall) land here: no counters to
    // gate, but a wall regression found above must still fail the run.
    std::printf("bench_diff: no tracked counters in %s; nothing to gate\n",
                files[0]);
    if (wall_regressions > 0) {
      std::fprintf(stderr,
                   "bench_diff: %d wall time(s) regressed more than %.0f%%\n",
                   wall_regressions, gate_wall * 100.0);
    }
    return wall_regressions > 0 ? 1 : 0;
  }

  int regressions = 0;
  for (const Counter& base : baseline) {
    const Counter* now = Find(current, base.key);
    if (now == nullptr) {
      // A disappeared counter silently disables its gate forever — treat
      // it as a failure so renames must re-bless the committed baseline
      // (ci/update_baselines.sh) deliberately.
      std::fprintf(stderr, "FAIL %s: missing from current report\n",
                   base.key.c_str());
      ++regressions;
      continue;
    }
    const double budget = base.value * (1.0 + max_slowdown) + 1e-9;
    const bool failed = now->value > budget;
    char delta[32];
    if (base.value == 0.0) {
      std::snprintf(delta, sizeof(delta), "was 0");
    } else {
      std::snprintf(delta, sizeof(delta), "%+.1f%%",
                    (now->value - base.value) / base.value * 100.0);
    }
    std::printf("%s %s: %.6g -> %.6g (%s)\n", failed ? "FAIL" : "ok  ",
                base.key.c_str(), base.value, now->value, delta);
    if (failed) ++regressions;
  }
  // Counters that exist only in the current report are not gated yet;
  // report them so a new counter is blessed deliberately, not forgotten.
  for (const Counter& now : current) {
    if (Find(baseline, now.key) == nullptr) {
      std::printf(
          "new  %s: %.6g (no baseline; run ci/update_baselines.sh to "
          "start gating it)\n",
          now.key.c_str(), now.value);
    }
  }
  if (regressions > 0) {
    std::fprintf(stderr,
                 "bench_diff: %d counter(s) regressed more than %.0f%%\n",
                 regressions, max_slowdown * 100.0);
  }
  if (wall_regressions > 0) {
    std::fprintf(stderr,
                 "bench_diff: %d wall time(s) regressed more than %.0f%%\n",
                 wall_regressions, gate_wall * 100.0);
  }
  return regressions + wall_regressions > 0 ? 1 : 0;
}
