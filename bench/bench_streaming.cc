// Streaming ingest: incremental cover maintenance + dirty-neighborhood
// re-matching vs the batch cover-then-match pipeline.
//
// The production story behind the paper's architecture is append-heavy:
// references arrive one at a time, and rebuilding signatures, buckets,
// cover and matches per arrival is a full pipeline run each time. The
// stream subsystem (stream::StreamingMatcher) instead updates the MinHash/
// LSH state in place, patches only the affected neighborhoods, and
// re-matches only the dirty ones — converging, for any arrival order, to
// the same match set as a batch rebuild.
//
// Three studies:
//  * equivalence — replay each corpus in several random arrival orders and
//    chunk sizes; the streamed fixpoint must equal batch RunSmp exactly.
//  * amortized work — canopies touched and pairs re-scored per insert must
//    sit far below the total neighborhood/pair counts (the sublinearity
//    claim), and per-insert touch stays flat while the corpus grows.
//  * replay cost — wall time of a full streamed replay vs one batch build
//    (streaming pays a constant factor for per-arrival convergence; the
//    win is per-insert latency vs per-insert rebuild).
//
// Top-level "counter_*" metrics in the JSON report are the CI-tracked
// work counters (see bench/bench_diff.cc).

#include <algorithm>
#include <string>
#include <vector>

#include "bench_util.h"
#include "blocking/lsh_cover.h"
#include "core/message_passing.h"
#include "mln/mln_matcher.h"
#include "obs/metrics.h"
#include "util/execution_context.h"
#include "util/timer.h"

namespace {

using namespace cem;

}  // namespace

int main() {
  const double scale = bench::Begin(
      "bench_streaming — incremental ingest vs batch rebuild",
      "cover-then-match supports incremental maintenance: arriving "
      "references touch only their neighborhoods, and message passing "
      "re-converges to the batch fixpoint");
  bench::JsonReport report("bench_streaming");
  const ExecutionContext& ctx = ExecutionContext::Default();

  // --- equivalence: arrival orders x chunk sizes, streamed == batch.
  TableWriter equivalence(
      {"corpus", "refs", "arrival seed", "chunk", "streamed", "batch",
       "equal"});
  // --- amortized work per insert.
  TableWriter amortized({"corpus", "refs", "neighborhoods",
                         "canopies touched/insert", "evals/insert",
                         "pairs re-scored/insert", "patched pairs"});
  // --- replay cost vs one batch build.
  TableWriter cost(
      {"corpus", "stream replay (s)", "batch rebuild (s)", "ratio"});

  size_t counter_canopies_touched = 0;
  size_t counter_pairs_rescored = 0;
  size_t counter_evaluations = 0;
  size_t counter_pairs_patched = 0;
  size_t counter_lsh_candidates = 0;
  bool all_equal = true;

  struct Corpus {
    std::string name;
    double scale;
  };
  const std::vector<Corpus> corpora = {{"HEPTH-like", scale},
                                       {"DBLP-like", scale}};
  for (const Corpus& corpus : corpora) {
    eval::Workload w =
        corpus.name == "HEPTH-like"
            ? eval::MakeHepthWorkload(corpus.scale,
                                      core::BlockingStrategy::kLsh, ctx)
            : eval::MakeDblpWorkload(corpus.scale,
                                     core::BlockingStrategy::kLsh, ctx);
    mln::MlnMatcher matcher(*w.dataset);

    // The batch reference point, timed as a *rebuild*: cover construction
    // plus one full SMP run (what every arrival would cost without the
    // streaming layer).
    Timer batch_timer;
    const core::Cover rebuilt =
        blocking::MakeCoverBuilder(core::BlockingStrategy::kLsh)
            ->Build(*w.dataset, ctx);
    const core::MatchSet batch = core::RunSmp(matcher, rebuilt).matches;
    const double batch_seconds = batch_timer.ElapsedSeconds();

    stream::StreamingOptions options;
    options.context = &ctx;

    // Equivalence sweep: 3 arrival orders, alternating chunk sizes.
    const size_t chunks[] = {16, 48, 0};  // 0 = one Add() per reference.
    double replay_seconds = 0.0;
    for (uint64_t arrival = 0; arrival < 3; ++arrival) {
      Timer replay_timer;
      const eval::StreamingReplayResult replay = eval::ReplayStreaming(
          matcher, /*arrival_seed=*/1000 + arrival, chunks[arrival], options);
      replay_seconds = replay_timer.ElapsedSeconds();
      const bool equal = replay.matches == batch;
      all_equal = all_equal && equal;
      equivalence.AddRow({corpus.name, std::to_string(replay.num_refs),
                          std::to_string(1000 + arrival),
                          std::to_string(chunks[arrival]),
                          std::to_string(replay.matches.size()),
                          std::to_string(batch.size()),
                          equal ? "yes" : "NO"});
      if (arrival == 2) {
        // The one-at-a-time replay is the amortized-work measurement: every
        // insert converges before the next arrives.
        const stream::StreamingStats& s = replay.stats;
        const double inserts = static_cast<double>(s.ingest.inserts);
        amortized.AddRow(
            {corpus.name, std::to_string(s.ingest.inserts),
             std::to_string(s.ingest.seeds_created),
             TableWriter::Num(
                 static_cast<double>(s.ingest.canopies_touched) / inserts, 2),
             TableWriter::Num(
                 static_cast<double>(s.matching.neighborhood_evaluations) /
                     inserts,
                 2),
             TableWriter::Num(
                 static_cast<double>(s.matching.pairs_rescored) / inserts, 1),
             std::to_string(s.ingest.pairs_patched)});
        cost.AddRow({corpus.name, bench::Secs(replay_seconds),
                     bench::Secs(batch_seconds),
                     TableWriter::Num(replay_seconds /
                                          std::max(batch_seconds, 1e-9),
                                      1)});
        counter_canopies_touched += s.ingest.canopies_touched;
        counter_pairs_rescored += s.matching.pairs_rescored;
        counter_evaluations += s.matching.neighborhood_evaluations;
        counter_pairs_patched += s.ingest.pairs_patched;
        counter_lsh_candidates += s.ingest.lsh_candidates_scanned;
      }
    }
  }

  // One measurement loop feeds all three tables, so the run's wall time is
  // attributed to the first one ("wall_ms_equivalence"); the other two are
  // derived views and legitimately record ~0.
  report.Table("equivalence", equivalence);
  std::printf(
      "Streamed fixpoint %s the batch rebuild for every arrival order "
      "and chunk size.\n\n",
      all_equal ? "EQUALS" : "DIFFERS FROM (BUG!)");
  report.Table("amortized", amortized);
  std::printf(
      "Canopies touched per insert stays bounded while the neighborhood "
      "count grows with the corpus — amortized per-insert work is "
      "sublinear in corpus size.\n\n");
  report.Table("cost", cost);
  std::printf(
      "A full streamed replay costs a constant factor over one batch "
      "build; the win is per-insert latency versus a per-insert rebuild "
      "of the whole pipeline.\n\n");

  // --- drain latency: the per-arrival serving story. The streaming layer
  // records every convergence drain (and every insert's canopies-touched
  // count) in the process metrics registry; the percentiles here are what
  // an operator of an append-heavy deployment would alert on. Latency
  // percentiles are host-dependent: informational, never gated.
  const obs::HistogramStats drain =
      obs::MetricsRegistry::Global().histogram("stream_drain_us").Stats();
  const obs::HistogramStats touched =
      obs::MetricsRegistry::Global()
          .histogram("stream_canopies_touched_per_insert")
          .Stats();
  TableWriter latency({"histogram", "count", "p50", "p95", "p99"});
  latency.AddRow({"drain latency (us)", std::to_string(drain.count),
                  TableWriter::Num(drain.p50, 1),
                  TableWriter::Num(drain.p95, 1),
                  TableWriter::Num(drain.p99, 1)});
  latency.AddRow({"canopies touched/insert", std::to_string(touched.count),
                  TableWriter::Num(touched.p50, 2),
                  TableWriter::Num(touched.p95, 2),
                  TableWriter::Num(touched.p99, 2)});
  report.Table("drain_latency", latency);
  std::printf(
      "Drain latency is the per-arrival convergence cost an online "
      "deployment pays instead of a batch rebuild.\n");

  report.Metric("all_orders_equal_batch", all_equal ? 1.0 : 0.0);
  report.Metric("counter_stream_canopies_touched",
                static_cast<double>(counter_canopies_touched));
  report.Metric("counter_stream_pairs_rescored",
                static_cast<double>(counter_pairs_rescored));
  report.Metric("counter_stream_evaluations",
                static_cast<double>(counter_evaluations));
  report.Metric("counter_stream_pairs_patched",
                static_cast<double>(counter_pairs_patched));
  report.Metric("counter_stream_lsh_candidates",
                static_cast<double>(counter_lsh_candidates));
  report.Write();
  return all_equal ? 0 : 1;
}
