// Figure 4(c): RULES running times on both corpora — NO-MP vs SMP vs FULL.
//
// The paper: unlike MLN, RULES is linear, so SMP is NOT faster than NO-MP
// (revisits are not paid back by shrinking active sizes); the value of
// message passing for a fast matcher is parallelisation, not speed.

#include "bench_util.h"
#include "core/message_passing.h"
#include "rules/rules_matcher.h"
#include "util/timer.h"

int main() {
  using namespace cem;
  const double scale = bench::Begin(
      "Figure 4(c) — RULES running times",
      "RULES is fast and linear; SMP's revisits make it no faster than "
      "NO-MP (contrast with Figure 3(d))");

  TableWriter table({"dataset", "NO-MP sec", "SMP sec", "FULL sec"});
  for (int which = 0; which < 2; ++which) {
    eval::Workload w = which == 0 ? eval::MakeHepthWorkload(scale)
                                  : eval::MakeDblpWorkload(scale);
    rules::RulesMatcher matcher(*w.dataset);
    const core::MpResult no_mp = core::RunNoMp(matcher, w.cover);
    const core::MpResult smp = core::RunSmp(matcher, w.cover);
    Timer full_timer;
    matcher.MatchAll();
    table.AddRow({w.name, bench::Secs(no_mp.seconds), bench::Secs(smp.seconds),
                  bench::Secs(full_timer.ElapsedSeconds())});
  }
  bench::JsonReport report("fig4c_rules_time");
  report.Table("timing", table);
  report.Write();
  return 0;
}
