// Figure 3(e): running-time comparison on DBLP. Same protocol as Figure
// 3(d); the paper's observation is that DBLP runs an order of magnitude
// faster than HEPTH because its neighborhoods are much smaller.

#include "bench_util.h"
#include "core/message_passing.h"
#include "mln/mln_matcher.h"

int main() {
  using namespace cem;
  const double scale = bench::Begin(
      "Figure 3(e) — MLN running times on DBLP",
      "DBLP is roughly an order of magnitude cheaper than HEPTH at equal "
      "reference count because its neighborhoods are smaller");

  eval::Workload dblp = eval::MakeDblpWorkload(scale);
  eval::Workload hepth = eval::MakeHepthWorkload(scale);

  TableWriter table(
      {"dataset", "scheme", "raw sec", "cost-model sec", "free vars"});
  for (int which = 0; which < 2; ++which) {
    eval::Workload& w = which == 0 ? dblp : hepth;
    mln::MlnMatcher inner(*w.dataset);
    auto run = [&](const char* name, auto&& runner) {
      inner.ResetCounters();
      const core::MpResult raw = runner(inner);
      const uint64_t free_vars = inner.total_free_variables();
      eval::CostModelMatcher modeled(inner);
      const core::MpResult with_model = runner(modeled);
      table.AddRow({w.name, name, bench::Secs(raw.seconds),
                    bench::Secs(with_model.seconds),
                    std::to_string(free_vars)});
    };
    run("NO-MP", [&](const core::ProbabilisticMatcher& m) {
      return core::RunNoMp(m, w.cover);
    });
    run("SMP", [&](const core::ProbabilisticMatcher& m) {
      return core::RunSmp(m, w.cover);
    });
    run("MMP", [&](const core::ProbabilisticMatcher& m) {
      return core::RunMmp(m, w.cover);
    });
  }
  bench::JsonReport report("fig3e_time_dblp");
  report.Table("timing", table);
  report.Write();
  return 0;
}
