// Figure 4(a): RULES matcher accuracy on HEPTH — NO-MP vs SMP vs FULL
// (running the matcher on the entire dataset holistically). RULES is fast
// enough that FULL is feasible, so soundness/completeness are exact.
// Transitive closure is applied as the framework post-pass (Appendix B).

#include "bench_util.h"
#include "core/message_passing.h"
#include "eval/metrics.h"
#include "rules/rules_matcher.h"

int main() {
  using namespace cem;
  const double scale = bench::Begin(
      "Figure 4(a) — RULES accuracy on HEPTH",
      "SMP matches the FULL run exactly (soundness and completeness 1); "
      "overall accuracy slightly below MLN");

  eval::Workload w = eval::MakeHepthWorkload(scale);
  rules::RulesMatcher matcher(*w.dataset);

  const core::MatchSet no_mp =
      core::TransitiveClosure(core::RunNoMp(matcher, w.cover).matches);
  const core::MatchSet smp_raw = core::RunSmp(matcher, w.cover).matches;
  const core::MatchSet smp = core::TransitiveClosure(smp_raw);
  const core::MatchSet full_raw = matcher.MatchAll();
  const core::MatchSet full = core::TransitiveClosure(full_raw);

  TableWriter table({"scheme", "P", "R", "F1"});
  table.AddRow(bench::PrRow("NO-MP", *w.dataset, no_mp));
  table.AddRow(bench::PrRow("SMP", *w.dataset, smp));
  table.AddRow(bench::PrRow("FULL", *w.dataset, full));
  bench::JsonReport report("fig4a_rules_hepth");
  report.Table("accuracy", table);

  std::printf("\nSMP vs FULL (pre-closure): soundness %.3f completeness %.3f\n",
              eval::Soundness(smp_raw, full_raw),
              eval::Completeness(smp_raw, full_raw));
  report.Write();
  return 0;
}
