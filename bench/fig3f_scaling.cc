// Figure 3(f): running time as a function of input size — "Full EM" (the
// matcher run holistically on the whole input) versus MMP, as the corpus
// grows.
//
// The paper's point: Full EM grows super-linearly with the number of
// matching decisions and becomes prohibitive, while MMP stays linear in
// the number of neighborhoods (bounded neighborhood size). The matcher
// runs under the cost model (DESIGN.md §1) so the inference cost profile
// matches the paper's Alchemy-based matcher: cost ∝ (active size)^1.6 —
// for the holistic run the active size is the whole candidate-pair set,
// for MMP it is one neighborhood at a time.

#include "bench_util.h"
#include "core/canopy.h"
#include "core/message_passing.h"
#include "data/bib_generator.h"
#include "mln/mln_matcher.h"
#include "util/timer.h"

int main() {
  using namespace cem;
  const double scale = bench::Begin(
      "Figure 3(f) — running time vs input size",
      "Full EM grows super-linearly in the matching decisions and becomes "
      "prohibitive; MMP grows linearly in the number of neighborhoods");

  TableWriter table({"#neighborhoods", "#pairs", "Full-EM sec", "MMP sec",
                     "full/MMP"});
  for (double fraction : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    eval::Workload w = eval::MakeHepthWorkload(scale * fraction);
    mln::MlnMatcher inner(*w.dataset);
    // Quadratic cost in the active size — the Markov-network inference
    // regime whose blow-up Figure 3(f) demonstrates.
    eval::CostModelMatcher matcher(inner, /*cost_scale_us=*/0.5,
                                   /*exponent=*/2.0);

    Timer full_timer;
    matcher.MatchAll();
    const double full_seconds = full_timer.ElapsedSeconds();
    const core::MpResult mmp = core::RunMmp(matcher, w.cover);
    table.AddRow({std::to_string(w.cover.size()),
                  std::to_string(w.dataset->num_candidate_pairs()),
                  bench::Secs(full_seconds), bench::Secs(mmp.seconds),
                  TableWriter::Num(full_seconds / mmp.seconds, 1)});
  }
  bench::JsonReport report("fig3f_scaling");
  report.Table("scaling", table);
  report.Write();
  return 0;
}
