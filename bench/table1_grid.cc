// Table 1: grid running times (minutes in the paper) — NO-MP / SMP / MMP on
// a single machine versus a 30-machine grid, on the largest corpus
// (DBLP-BIG in the paper; a scaled-up DBLP-like corpus here).
//
// The executor reproduces the paper's round-based Map/Reduce scheme; the
// simulated makespan model charges each round the maximum per-machine load
// plus a scheduling overhead, with random neighborhood->machine assignment
// (the paper's two named causes of sub-linear speedup: setup overhead and
// statistical skew). The matcher runs under the cost model so task
// durations reflect the paper's expensive-inference regime.

#include "bench_util.h"
#include "core/grid_executor.h"
#include "mln/mln_matcher.h"

int main() {
  using namespace cem;
  const double scale = bench::Begin(
      "Table 1 — running times on the grid (DBLP-BIG-like)",
      "30 machines give a speedup of roughly 11 over one machine — good "
      "but sub-linear, due to per-round setup overhead and skew in the "
      "random neighborhood assignment");

  // DBLP-BIG: the paper's largest corpus. 1.5x the regular DBLP workload
  // (scale further with CEM_BENCH_SCALE).
  eval::Workload w = eval::MakeDblpWorkload(scale * 1.5);
  std::printf("%s(BIG): %zu refs, %zu candidate pairs, %zu neighborhoods\n\n",
              w.name.c_str(), w.dataset->author_refs().size(),
              w.dataset->num_candidate_pairs(), w.cover.size());

  mln::MlnMatcher inner(*w.dataset);
  eval::CostModelMatcher matcher(inner);

  TableWriter table({"scheme", "1 machine (sim sec)", "30 machines (sim sec)",
                     "speedup", "rounds"});
  for (core::MpScheme scheme : {core::MpScheme::kNoMp, core::MpScheme::kSmp,
                                core::MpScheme::kMmp}) {
    core::GridOptions single;
    single.scheme = scheme;
    single.num_machines = 1;
    single.per_round_overhead_seconds = 0.05;
    core::GridOptions grid = single;
    grid.num_machines = 30;
    const core::GridResult on_one = RunGrid(matcher, w.cover, single);
    const core::GridResult on_grid = RunGrid(matcher, w.cover, grid);
    CEM_CHECK(on_one.matches == on_grid.matches)
        << "grid and single-machine runs must agree (consistency)";
    table.AddRow({core::MpSchemeName(scheme),
                  bench::Secs(on_one.simulated_seconds),
                  bench::Secs(on_grid.simulated_seconds),
                  TableWriter::Num(on_one.simulated_seconds /
                                       on_grid.simulated_seconds,
                                   1),
                  std::to_string(on_grid.rounds)});
  }
  bench::JsonReport report("table1_grid");
  report.Table("grid", table);
  report.Write();
  return 0;
}
