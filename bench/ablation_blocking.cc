// Ablation: blocking strategies — token-overlap canopies vs MinHash/LSH.
// The framework only requires a *total* cover (Definition 7), so the cover
// builder is a pluggable strategy; this bench quantifies the trade the LSH
// subsystem makes: banded buckets consider far fewer pairs than full
// postings-list scans while keeping candidate-pair recall, and the
// downstream matching quality is unchanged because the totality patches
// make both covers total before inference runs.
//
// "raw recall" is the fraction of candidate pairs contained in a
// neighborhood *before* the totality patches — the honest recall of each
// candidate-generation pass. "pairs considered" is how many document pairs
// the pass scored or bucketed together — its dominant cost.
//
// Four extra studies ride on the same corpora:
//  * tuning  — (bands, rows) sweep per corpus *shape* (DBLP-like full
//    names vs HEPTH-like initials/collisions): where the S-curve knee
//    belongs for each, reported as the cheapest config that keeps recall.
//  * scaling — cover-build wall time across worker threads, with the
//    determinism guarantee checked (bit-identical covers at every thread
//    and shard count).
//  * candgen — Dataset::BuildCandidatePairs via full postings scans vs the
//    sharded LSH index (CandidateOptions::use_lsh).
//  * quality — end-to-end P/R/F1 per strategy (unchanged by any of this).
//
// Top-level "counter_*" metrics in the JSON report are the CI-tracked
// work counters (see bench/bench_diff.cc).

#include <algorithm>
#include <string>
#include <vector>

#include "bench_util.h"
#include "blocking/blocking_tokens.h"
#include "blocking/lsh_cover.h"
#include "core/canopy.h"
#include "core/message_passing.h"
#include "mln/mln_matcher.h"
#include "text/token_index.h"
#include "util/execution_context.h"
#include "util/timer.h"

namespace {

using namespace cem;

/// Raw candidate-generation pass (totality patches off) for one strategy.
core::Cover BuildRawCover(const data::Dataset& dataset,
                          core::BlockingStrategy strategy,
                          core::BlockingStats* stats) {
  if (strategy == core::BlockingStrategy::kCanopy) {
    core::CanopyOptions options;
    options.expand_boundary = false;
    options.ensure_pair_coverage = false;
    options.stats = stats;
    return core::BuildCanopyCover(dataset, options);
  }
  blocking::LshCoverOptions options;
  options.expand_boundary = false;
  options.ensure_pair_coverage = false;
  options.stats = stats;
  return blocking::BuildLshCover(dataset, options);
}

bool SameCover(const core::Cover& a, const core::Cover& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.neighborhood(i).entities != b.neighborhood(i).entities) return false;
  }
  return true;
}

}  // namespace

int main() {
  using namespace cem;
  const double scale = bench::Begin(
      "Ablation — blocking strategies (canopy vs MinHash/LSH)",
      "neighborhood formation is pluggable: banded LSH reaches canopy-level "
      "candidate-pair recall while considering far fewer pairs, the "
      "front-end parallelises with bit-identical covers, and the totality "
      "patches keep downstream accuracy identical");
  bench::JsonReport report("ablation_blocking");

  // ---- Strategy comparison across corpus sizes (DBLP-like). -------------
  TableWriter blocking_table({"dataset", "#refs", "#pairs", "strategy",
                              "pairs considered", "raw recall", "#nbhd",
                              "mean size", "max size", "build sec"});
  size_t canopy_pairs_considered = 0;
  size_t lsh_pairs_considered = 0;
  for (double fraction : {0.25, 0.5, 1.0}) {
    auto dataset =
        data::GenerateBibDataset(data::BibConfig::DblpLike(scale * fraction));
    const std::string label =
        "DBLP-like x" + TableWriter::Num(scale * fraction, 2);

    for (const core::BlockingStrategy strategy :
         {core::BlockingStrategy::kCanopy, core::BlockingStrategy::kLsh}) {
      core::BlockingStats stats;
      const core::Cover raw = BuildRawCover(*dataset, strategy, &stats);

      // Patched (production) pass, timed end to end.
      Timer build_timer;
      const core::Cover cover =
          blocking::MakeCoverBuilder(strategy)->Build(*dataset);
      const double build_seconds = build_timer.ElapsedSeconds();

      if (fraction == 1.0) {
        (strategy == core::BlockingStrategy::kCanopy
             ? canopy_pairs_considered
             : lsh_pairs_considered) = stats.pairs_considered;
      }
      blocking_table.AddRow(
          {label, std::to_string(dataset->author_refs().size()),
           std::to_string(dataset->num_candidate_pairs()),
           core::BlockingStrategyName(strategy),
           std::to_string(stats.pairs_considered),
           TableWriter::Num(raw.CandidatePairCoverage(*dataset)),
           std::to_string(cover.size()),
           TableWriter::Num(cover.MeanNeighborhoodSize(), 1),
           std::to_string(cover.MaxNeighborhoodSize()),
           bench::Secs(build_seconds)});
    }
  }
  report.Table("blocking", blocking_table);
  report.Metric("counter_canopy_pairs_considered",
                static_cast<double>(canopy_pairs_considered));
  report.Metric("counter_lsh_pairs_considered",
                static_cast<double>(lsh_pairs_considered));

  // ---- (bands, rows) knee per corpus shape. -----------------------------
  // HEPTH-like corpora (initials, heavy last-name collisions) have much
  // higher token-set overlap between *distinct* authors than DBLP-like
  // ones, so their S-curve knee wants more rows per band. The knee we
  // report is the cheapest (bands, rows) whose raw recall stays within 2%
  // of the best config for that corpus.
  std::printf("\n(bands, rows) sweep per corpus shape:\n");
  TableWriter tuning_table({"dataset", "bands x rows", "pairs considered",
                            "raw recall", "knee"});
  struct Shape {
    const char* name;
    data::BibConfig config;
  };
  const std::vector<Shape> shapes = {
      {"DBLP-like", data::BibConfig::DblpLike(scale)},
      {"HEPTH-like", data::BibConfig::HepthLike(scale)},
  };
  const std::vector<blocking::LshParams> grids = {
      {64, 1}, {32, 2}, {21, 3}, {16, 4}};
  for (const Shape& shape : shapes) {
    const auto dataset = data::GenerateBibDataset(shape.config);
    std::vector<double> recalls;
    std::vector<size_t> considered;
    for (const blocking::LshParams& params : grids) {
      blocking::LshCoverOptions options;
      options.lsh = params;
      options.expand_boundary = false;
      options.ensure_pair_coverage = false;
      core::BlockingStats stats;
      options.stats = &stats;
      const core::Cover raw = blocking::BuildLshCover(*dataset, options);
      recalls.push_back(raw.CandidatePairCoverage(*dataset));
      considered.push_back(stats.pairs_considered);
    }
    const double best_recall = *std::max_element(recalls.begin(),
                                                 recalls.end());
    // Knee = cheapest config whose recall stays within 2% of the best.
    size_t knee = 0;
    bool have_knee = false;
    for (size_t i = 0; i < grids.size(); ++i) {
      if (recalls[i] < best_recall - 0.02) continue;
      if (!have_knee || considered[i] < considered[knee]) {
        knee = i;
        have_knee = true;
      }
    }
    for (size_t i = 0; i < grids.size(); ++i) {
      tuning_table.AddRow({shape.name,
                           std::to_string(grids[i].bands) + " x " +
                               std::to_string(grids[i].rows),
                           std::to_string(considered[i]),
                           TableWriter::Num(recalls[i]),
                           i == knee ? "<== knee" : ""});
    }
  }
  report.Table("tuning", tuning_table);

  // ---- Parallel scaling of the cover build (the tentpole headline). -----
  // Same corpus, same strategy, 1..8 worker threads: wall time falls while
  // the cover stays bit-identical (the determinism contract). Shard counts
  // are swept at the largest thread count for the same guarantee.
  std::printf("\nParallel cover build (largest DBLP-like dataset):\n");
  const auto scaling_dataset =
      data::GenerateBibDataset(data::BibConfig::DblpLike(scale));
  TableWriter scaling_table(
      {"strategy", "threads", "shards", "build sec", "speedup", "identical"});
  double lsh_speedup_8t = 0.0;
  for (const core::BlockingStrategy strategy :
       {core::BlockingStrategy::kCanopy, core::BlockingStrategy::kLsh}) {
    const auto builder = blocking::MakeCoverBuilder(strategy);
    core::Cover reference;
    double base_seconds = 0.0;
    for (const uint32_t threads : {1u, 2u, 4u, 8u}) {
      ExecutionContext ctx(threads);
      Timer timer;
      const core::Cover cover = builder->Build(*scaling_dataset, ctx);
      const double seconds = timer.ElapsedSeconds();
      bool identical = true;
      if (threads == 1) {
        reference = cover;
        base_seconds = seconds;
      } else {
        identical = SameCover(reference, cover);
      }
      CEM_CHECK(identical) << "cover changed at " << threads << " threads";
      if (strategy == core::BlockingStrategy::kLsh && threads == 8) {
        lsh_speedup_8t = base_seconds / seconds;
      }
      scaling_table.AddRow({builder->name(), std::to_string(threads),
                            std::to_string(ctx.num_shards()),
                            bench::Secs(seconds),
                            TableWriter::Num(base_seconds / seconds, 2),
                            identical ? "yes" : "NO"});
    }
    if (strategy == core::BlockingStrategy::kLsh) {
      for (const uint32_t shards : {1u, 32u}) {
        ExecutionContext ctx(8, shards);
        Timer timer;
        const core::Cover cover = builder->Build(*scaling_dataset, ctx);
        const double seconds = timer.ElapsedSeconds();
        const bool identical = SameCover(reference, cover);
        CEM_CHECK(identical) << "cover changed at " << shards << " shards";
        scaling_table.AddRow({builder->name(), "8", std::to_string(shards),
                              bench::Secs(seconds),
                              TableWriter::Num(base_seconds / seconds, 2),
                              identical ? "yes" : "NO"});
      }
    }
  }
  report.Table("scaling", scaling_table);
  report.Metric("lsh_build_speedup_8t", lsh_speedup_8t);

  // ---- Stage scaling: the two formerly-serial stages. -------------------
  // Sharded TokenIndex construction and PatchPairCoverage were the last
  // serial choke points of cover construction; both now run on the context
  // pool with bit-identical output (and counters) for any thread count.
  std::printf("\nStage scaling (largest DBLP-like dataset):\n");
  TableWriter stage_table({"stage", "threads", "sec", "speedup", "identical"});
  size_t token_index_postings = 0;
  size_t patch_pairs_patched = 0;
  {
    const std::vector<data::EntityId>& refs = scaling_dataset->author_refs();
    std::vector<std::vector<std::string>> token_sets(refs.size());
    for (size_t i = 0; i < refs.size(); ++i) {
      token_sets[i] =
          blocking::AuthorBlockingTokens(scaling_dataset->entity(refs[i]));
    }
    text::TokenIndex reference_index(1);
    reference_index.AddDocuments(token_sets, ExecutionContext(1, 1));
    double index_base_seconds = 0.0;
    for (const uint32_t threads : {1u, 2u, 4u, 8u}) {
      ExecutionContext ctx(threads);
      Timer timer;
      text::TokenIndex index(ctx.num_token_shards());
      index.AddDocuments(token_sets, ctx);
      const double seconds = timer.ElapsedSeconds();
      if (threads == 1) index_base_seconds = seconds;
      const bool identical =
          index.num_tokens() == reference_index.num_tokens() &&
          index.num_postings() == reference_index.num_postings();
      CEM_CHECK(identical) << "token index changed at " << threads
                           << " threads";
      token_index_postings = index.num_postings();
      stage_table.AddRow({"token index build", std::to_string(threads),
                          bench::Secs(seconds),
                          TableWriter::Num(index_base_seconds / seconds, 2),
                          identical ? "yes" : "NO"});
    }

    // Patch the raw LSH cover (raw covers leave the most split pairs).
    blocking::LshCoverOptions raw_options;
    raw_options.expand_boundary = false;
    raw_options.ensure_pair_coverage = false;
    const core::Cover raw = blocking::BuildLshCover(*scaling_dataset,
                                                    raw_options);
    core::Cover patch_reference;
    double patch_base_seconds = 0.0;
    for (const uint32_t threads : {1u, 2u, 4u, 8u}) {
      ExecutionContext ctx(threads);
      core::Cover patched = raw;
      core::PatchStats stats;
      Timer timer;
      core::PatchPairCoverage(*scaling_dataset, patched, ctx, &stats);
      const double seconds = timer.ElapsedSeconds();
      bool identical = true;
      if (threads == 1) {
        patch_reference = patched;
        patch_base_seconds = seconds;
        patch_pairs_patched = stats.pairs_patched;
      } else {
        identical = SameCover(patch_reference, patched) &&
                    stats.pairs_patched == patch_pairs_patched;
      }
      CEM_CHECK(identical) << "patched cover changed at " << threads
                           << " threads";
      stage_table.AddRow({"patch pair coverage", std::to_string(threads),
                          bench::Secs(seconds),
                          TableWriter::Num(patch_base_seconds / seconds, 2),
                          identical ? "yes" : "NO"});
    }
  }
  report.Table("stage_scaling", stage_table);
  report.Metric("counter_token_index_postings",
                static_cast<double>(token_index_postings));
  report.Metric("counter_patch_pairs_patched",
                static_cast<double>(patch_pairs_patched));

  // ---- Candidate generation: postings scans vs the sharded LSH index. ---
  // Candidate build happens inside GenerateBibDataset, so twin corpora are
  // generated per path and the (identical) generation cost cancels in the
  // comparison; recall is measured against the exact path's pair set.
  std::printf("\nCandidate generation (largest DBLP-like dataset):\n");
  TableWriter candgen_table(
      {"generator", "#pairs", "recall vs exact", "gen+cand sec"});
  {
    const data::BibConfig config = data::BibConfig::DblpLike(scale);
    Timer exact_timer;
    const auto exact = data::GenerateBibDataset(config);
    const double exact_seconds = exact_timer.ElapsedSeconds();
    data::CandidateOptions lsh_options;
    lsh_options.use_lsh = true;
    Timer lsh_timer;
    const auto lsh_dataset = data::GenerateBibDataset(config, lsh_options);
    const double lsh_seconds = lsh_timer.ElapsedSeconds();
    size_t kept = 0;
    for (const data::CandidatePair& cp : exact->candidate_pairs()) {
      if (lsh_dataset->FindCandidatePair(cp.pair.a, cp.pair.b).has_value()) {
        ++kept;
      }
    }
    candgen_table.AddRow({"postings scan",
                          std::to_string(exact->num_candidate_pairs()),
                          TableWriter::Num(1.0), bench::Secs(exact_seconds)});
    candgen_table.AddRow(
        {"lsh index", std::to_string(lsh_dataset->num_candidate_pairs()),
         TableWriter::Num(static_cast<double>(kept) /
                          static_cast<double>(exact->num_candidate_pairs())),
         bench::Secs(lsh_seconds)});
  }
  report.Table("candgen", candgen_table);

  // ---- End-to-end quality on the largest dataset. -----------------------
  // The cover feeds the same SMP/MMP machinery under either strategy, and
  // because both covers are total the schemes' soundness carries over — F1
  // must agree to noise (and is thread-count-independent because the
  // covers are).
  std::printf("\nEnd-to-end (largest dataset, MLN matcher):\n");
  TableWriter quality_table({"strategy", "scheme", "P", "R", "F1"});
  for (const core::BlockingStrategy strategy :
       {core::BlockingStrategy::kCanopy, core::BlockingStrategy::kLsh}) {
    eval::Workload w = eval::MakeDblpWorkload(scale, strategy);
    mln::MlnMatcher matcher(*w.dataset);
    const core::MpResult smp = core::RunSmp(matcher, w.cover);
    const core::MpResult mmp = core::RunMmp(matcher, w.cover);
    auto add = [&](const char* scheme, const core::MatchSet& matches) {
      const eval::PrMetrics m = eval::ComputePr(*w.dataset, matches);
      quality_table.AddRow({core::BlockingStrategyName(strategy), scheme,
                            TableWriter::Num(m.precision),
                            TableWriter::Num(m.recall),
                            TableWriter::Num(m.f1)});
    };
    add("SMP", smp.matches);
    add("MMP", mmp.matches);
  }
  report.Table("quality", quality_table);
  report.Write();
  return 0;
}
