// Ablation: blocking strategies — token-overlap canopies vs MinHash/LSH.
// The framework only requires a *total* cover (Definition 7), so the cover
// builder is a pluggable strategy; this bench quantifies the trade the LSH
// subsystem makes: banded buckets consider far fewer pairs than full
// postings-list scans while keeping candidate-pair recall, and the
// downstream matching quality is unchanged because the totality patches
// make both covers total before inference runs.
//
// "raw recall" is the fraction of candidate pairs contained in a
// neighborhood *before* the totality patches — the honest recall of each
// candidate-generation pass. "pairs considered" is how many document pairs
// the pass scored or bucketed together — its dominant cost.

#include "bench_util.h"
#include "blocking/lsh_cover.h"
#include "core/canopy.h"
#include "core/message_passing.h"
#include "mln/mln_matcher.h"
#include "util/timer.h"

int main() {
  using namespace cem;
  const double scale = bench::Begin(
      "Ablation — blocking strategies (canopy vs MinHash/LSH)",
      "neighborhood formation is pluggable: banded LSH reaches canopy-level "
      "candidate-pair recall while considering far fewer pairs, and the "
      "totality patches keep downstream accuracy identical");
  bench::JsonReport report("ablation_blocking");

  TableWriter blocking_table({"dataset", "#refs", "#pairs", "strategy",
                              "pairs considered", "raw recall", "#nbhd",
                              "mean size", "max size", "build sec"});
  for (double fraction : {0.25, 0.5, 1.0}) {
    auto dataset =
        data::GenerateBibDataset(data::BibConfig::DblpLike(scale * fraction));
    const std::string label =
        "DBLP-like x" + TableWriter::Num(scale * fraction, 2);

    for (const core::BlockingStrategy strategy :
         {core::BlockingStrategy::kCanopy, core::BlockingStrategy::kLsh}) {
      // Raw pass (totality patches off): candidate generation only.
      core::BlockingStats stats;
      core::Cover raw;
      if (strategy == core::BlockingStrategy::kCanopy) {
        core::CanopyOptions options;
        options.expand_boundary = false;
        options.ensure_pair_coverage = false;
        options.stats = &stats;
        raw = core::BuildCanopyCover(*dataset, options);
      } else {
        blocking::LshCoverOptions options;
        options.expand_boundary = false;
        options.ensure_pair_coverage = false;
        options.stats = &stats;
        raw = blocking::BuildLshCover(*dataset, options);
      }

      // Patched (production) pass, timed end to end.
      Timer build_timer;
      const core::Cover cover =
          blocking::MakeCoverBuilder(strategy)->Build(*dataset);
      const double build_seconds = build_timer.ElapsedSeconds();

      blocking_table.AddRow(
          {label, std::to_string(dataset->author_refs().size()),
           std::to_string(dataset->num_candidate_pairs()),
           core::BlockingStrategyName(strategy),
           std::to_string(stats.pairs_considered),
           TableWriter::Num(raw.CandidatePairCoverage(*dataset)),
           std::to_string(cover.size()),
           TableWriter::Num(cover.MeanNeighborhoodSize(), 1),
           std::to_string(cover.MaxNeighborhoodSize()),
           bench::Secs(build_seconds)});
    }
  }
  report.Table("blocking", blocking_table);

  // End-to-end quality on the largest dataset: the cover feeds the same
  // SMP/MMP machinery under either strategy, and because both covers are
  // total the schemes' soundness carries over — F1 must agree to noise.
  std::printf("\nEnd-to-end (largest dataset, MLN matcher):\n");
  TableWriter quality_table({"strategy", "scheme", "P", "R", "F1"});
  for (const core::BlockingStrategy strategy :
       {core::BlockingStrategy::kCanopy, core::BlockingStrategy::kLsh}) {
    eval::Workload w = eval::MakeDblpWorkload(scale, strategy);
    mln::MlnMatcher matcher(*w.dataset);
    const core::MpResult smp = core::RunSmp(matcher, w.cover);
    const core::MpResult mmp = core::RunMmp(matcher, w.cover);
    auto add = [&](const char* scheme, const core::MatchSet& matches) {
      const eval::PrMetrics m = eval::ComputePr(*w.dataset, matches);
      quality_table.AddRow({core::BlockingStrategyName(strategy), scheme,
                            TableWriter::Num(m.precision),
                            TableWriter::Num(m.recall),
                            TableWriter::Num(m.f1)});
    };
    add("SMP", smp.matches);
    add("MMP", mmp.matches);
  }
  report.Table("quality", quality_table);
  report.Write();
  return 0;
}
