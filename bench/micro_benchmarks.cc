// Google-benchmark micro-benchmarks for the performance-critical
// substrates: string similarity, max-flow MAP inference, grounding,
// canopy construction and MatchSet operations.

#include <benchmark/benchmark.h>

#include "blocking/blocking_tokens.h"
#include "blocking/lsh_cover.h"
#include "blocking/minhash.h"
#include "core/canopy.h"
#include "core/match_set.h"
#include "data/bib_generator.h"
#include "graph/max_flow.h"
#include "mln/grounding.h"
#include "mln/mln_matcher.h"
#include "text/jaro_winkler.h"
#include "text/levenshtein.h"
#include "text/token_index.h"
#include "util/logging.h"
#include "util/random.h"

namespace {

using namespace cem;

void BM_JaroWinkler(benchmark::State& state) {
  const std::string a = "garofalakis", b = "garofalakos";
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::JaroWinklerSimilarity(a, b));
  }
}
BENCHMARK(BM_JaroWinkler);

void BM_Levenshtein(benchmark::State& state) {
  const std::string a = "garofalakis", b = "garofalakos";
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::LevenshteinDistance(a, b));
  }
}
BENCHMARK(BM_Levenshtein);

void BM_MaxFlowChain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    graph::MaxFlow flow(n + 2);
    Rng rng(7);
    for (int i = 0; i < n; ++i) {
      flow.AddEdge(n, i, 1.0 + rng.NextDouble());      // source -> i
      flow.AddEdge(i, n + 1, 1.0 + rng.NextDouble());  // i -> sink
      if (i > 0) flow.AddEdge(i - 1, i, rng.NextDouble(), rng.NextDouble());
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(flow.Solve(n, n + 1));
  }
}
BENCHMARK(BM_MaxFlowChain)->Arg(64)->Arg(512);

void BM_PairGraphBuild(benchmark::State& state) {
  SetMinLogSeverity(LogSeverity::kWarning);
  auto dataset = data::GenerateBibDataset(data::BibConfig::DblpLike(0.3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mln::PairGraph::Build(*dataset));
  }
}
BENCHMARK(BM_PairGraphBuild);

void BM_CanopyCover(benchmark::State& state) {
  auto dataset = data::GenerateBibDataset(data::BibConfig::DblpLike(0.3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::BuildCanopyCover(*dataset));
  }
}
BENCHMARK(BM_CanopyCover);

void BM_TokenIndexCandidates(benchmark::State& state) {
  SetMinLogSeverity(LogSeverity::kWarning);
  auto dataset = data::GenerateBibDataset(data::BibConfig::DblpLike(0.3));
  const auto& refs = dataset->author_refs();
  text::TokenIndex index;
  for (size_t i = 0; i < refs.size(); ++i) {
    index.AddDocument(static_cast<uint32_t>(i),
                      blocking::AuthorBlockingTokens(dataset->entity(refs[i])));
  }
  uint32_t doc = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Candidates(doc, 0.45));
    doc = (doc + 1) % static_cast<uint32_t>(index.num_documents());
  }
}
BENCHMARK(BM_TokenIndexCandidates);

void BM_MinHashSignature(benchmark::State& state) {
  const blocking::MinHasher hasher;
  const std::vector<std::string> tokens = {"gar", "aro", "rof", "ofa",
                                           "fal", "ala", "lak", "aki",
                                           "kis", "m|ga"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(hasher.Signature(tokens));
  }
}
BENCHMARK(BM_MinHashSignature);

void BM_LshCover(benchmark::State& state) {
  SetMinLogSeverity(LogSeverity::kWarning);
  auto dataset = data::GenerateBibDataset(data::BibConfig::DblpLike(0.3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(blocking::BuildLshCover(*dataset));
  }
}
BENCHMARK(BM_LshCover);

void BM_NeighborhoodInference(benchmark::State& state) {
  auto dataset = data::GenerateBibDataset(data::BibConfig::HepthLike(0.3));
  const core::Cover cover = core::BuildCanopyCover(*dataset);
  mln::MlnMatcher matcher(*dataset);
  // Pick the largest neighborhood (the paper's k).
  size_t biggest = 0;
  for (size_t i = 0; i < cover.size(); ++i) {
    if (cover.neighborhood(i).entities.size() >
        cover.neighborhood(biggest).entities.size()) {
      biggest = i;
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        matcher.Match(cover.neighborhood(biggest).entities));
  }
}
BENCHMARK(BM_NeighborhoodInference);

void BM_MatchSetInsertContains(benchmark::State& state) {
  Rng rng(3);
  std::vector<data::EntityPair> pairs;
  for (int i = 0; i < 4096; ++i) {
    pairs.emplace_back(static_cast<data::EntityId>(rng.NextBounded(10000)),
                       static_cast<data::EntityId>(rng.NextBounded(10000)));
  }
  for (auto _ : state) {
    core::MatchSet set;
    for (const auto& p : pairs) set.Insert(p);
    size_t hits = 0;
    for (const auto& p : pairs) hits += set.Contains(p);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_MatchSetInsertContains);

void BM_TransitiveClosure(benchmark::State& state) {
  Rng rng(5);
  core::MatchSet set;
  for (int i = 0; i < 2000; ++i) {
    set.Insert(data::EntityPair(
        static_cast<data::EntityId>(rng.NextBounded(3000)),
        static_cast<data::EntityId>(rng.NextBounded(3000))));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::TransitiveClosure(set));
  }
}
BENCHMARK(BM_TransitiveClosure);

}  // namespace

BENCHMARK_MAIN();
