#ifndef CEM_BENCH_BENCH_UTIL_H_
#define CEM_BENCH_BENCH_UTIL_H_

// Shared plumbing for the per-figure bench binaries. Each binary prints the
// rows/series of one paper figure or table (see DESIGN.md §4) and a short
// note tying the measured shape back to the paper's claim.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/match_set.h"
#include "core/message_passing.h"
#include "data/dataset.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "util/logging.h"
#include "util/table_writer.h"

namespace cem::bench {

/// Prints the standard bench banner and returns the workload scale.
inline double Begin(const std::string& experiment_id,
                    const std::string& paper_claim) {
  SetMinLogSeverity(LogSeverity::kWarning);
  const double scale = eval::BenchScale();
  std::printf("=== %s ===\n", experiment_id.c_str());
  std::printf("Paper claim: %s\n", paper_claim.c_str());
  std::printf("Workload scale: %.2f (set CEM_BENCH_SCALE to change)\n\n",
              scale);
  return scale;
}

/// Raw pairwise P/R/F1 row for a match set (the MLN matcher applies no
/// closure, so raw decisions are the comparable quantity).
inline std::vector<std::string> PrRow(const std::string& name,
                                      const data::Dataset& dataset,
                                      const core::MatchSet& matches) {
  const eval::PrMetrics m = eval::ComputePr(dataset, matches);
  return {name, TableWriter::Num(m.precision), TableWriter::Num(m.recall),
          TableWriter::Num(m.f1)};
}

/// Row with both raw pairwise metrics and metrics after transitive closure
/// (closure is how downstream consumers read out clusters).
inline std::vector<std::string> PrRowBoth(const std::string& name,
                                          const data::Dataset& dataset,
                                          const core::MatchSet& matches) {
  const eval::PrMetrics raw = eval::ComputePr(dataset, matches);
  const eval::PrMetrics closed =
      eval::ComputePr(dataset, core::TransitiveClosure(matches));
  return {name,
          TableWriter::Num(raw.precision),
          TableWriter::Num(raw.recall),
          TableWriter::Num(raw.f1),
          TableWriter::Num(closed.precision),
          TableWriter::Num(closed.recall),
          TableWriter::Num(closed.f1)};
}

/// Formats seconds with adaptive precision.
inline std::string Secs(double seconds) {
  return TableWriter::Num(seconds, seconds < 0.1 ? 4 : 2);
}

}  // namespace cem::bench

#endif  // CEM_BENCH_BENCH_UTIL_H_
