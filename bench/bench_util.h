#ifndef CEM_BENCH_BENCH_UTIL_H_
#define CEM_BENCH_BENCH_UTIL_H_

// Shared plumbing for the per-figure bench binaries. Each binary prints the
// rows/series of one paper figure or table (see DESIGN.md §4) and a short
// note tying the measured shape back to the paper's claim.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/match_set.h"
#include "core/message_passing.h"
#include "data/dataset.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/table_writer.h"
#include "util/timer.h"

namespace cem::bench {

/// Prints the standard bench banner and returns the workload scale.
inline double Begin(const std::string& experiment_id,
                    const std::string& paper_claim) {
  SetMinLogSeverity(LogSeverity::kWarning);
  const double scale = eval::BenchScale();
  std::printf("=== %s ===\n", experiment_id.c_str());
  std::printf("Paper claim: %s\n", paper_claim.c_str());
  std::printf("Workload scale: %.2f (set CEM_BENCH_SCALE to change)\n",
              scale);
  std::printf("Blocking strategy: %s (set CEM_BLOCKING to change)\n\n",
              core::BlockingStrategyName(eval::BenchBlocking()));
  return scale;
}

/// Machine-readable mirror of a bench's output: collects the tables (and
/// scalar metrics) the bench prints and writes them as BENCH_<slug>.json,
/// so the perf trajectory is diffable across PRs. Target directory comes
/// from CEM_BENCH_JSON_DIR (default: current directory); set it to "off"
/// to suppress the file.
///
/// Each table also records the wall time spent producing it (elapsed since
/// the previous Table() call, or construction) as "wall_ms_<key>", with
/// fixed millisecond precision (%.3f) so reports never degrade to
/// scientific notation or platform-dependent digit counts.
///
/// Write() additionally folds in the process metrics registry: every
/// registry counter the bench's run bumped exports as "counter_<name>",
/// gauges as "gauge_<name>", and histograms flattened to "hist_<name>_*"
/// (count/sum/p50/p95/p99). Gating split: "counter_*" values are
/// deterministic and gate via bench_diff; "wall_ms_*", "gauge_*" and
/// "hist_*" are host-dependent and therefore informational only —
/// bench_diff prints their deltas but never fails on them, and
/// ci/update_baselines.sh strips them from the committed baselines.
class JsonReport {
 public:
  /// `slug` should match the bench binary name, e.g. "fig3f_scaling".
  explicit JsonReport(std::string slug) : slug_(std::move(slug)) {}

  /// Prints `table` to stdout and records it under `key` in the report,
  /// together with the wall time this table's section took.
  void Table(const std::string& key, const TableWriter& table) {
    const double wall_ms = section_timer_.ElapsedMillis();
    section_timer_.Reset();
    table.Print(std::cout);
    std::ostringstream json;
    table.PrintJson(json);
    entries_.emplace_back(key, json.str());
    entries_.emplace_back("wall_ms_" + key, FormatDouble(wall_ms));
  }

  /// Records a scalar metric. Integral values (the counter_* family) are
  /// written as JSON integers — the CI schema check requires it, and the
  /// blessed baselines stay byte-comparable.
  void Metric(const std::string& key, double value) {
    if (value == static_cast<double>(static_cast<int64_t>(value))) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%" PRId64,
                    static_cast<int64_t>(value));
      entries_.emplace_back(key, buf);
    } else {
      entries_.emplace_back(key, FormatDouble(value));
    }
  }

  /// Writes BENCH_<slug>.json and prints its path; call once, last.
  void Write() const {
    const char* dir = std::getenv("CEM_BENCH_JSON_DIR");
    if (dir != nullptr && std::string(dir) == "off") return;
    const std::string path = std::string(dir == nullptr ? "." : dir) +
                             "/BENCH_" + slug_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "could not write %s\n", path.c_str());
      return;
    }
    out << "{\"bench\": \"" << slug_ << "\", \"scale\": "
        << eval::BenchScale() << ", \"blocking\": \""
        << core::BlockingStrategyName(eval::BenchBlocking()) << "\"";
    std::set<std::string> seen;
    for (const auto& [key, json] : entries_) {
      out << ", \"" << key << "\": " << json;
      seen.insert(key);
    }
    // Registry export. Explicit Metric()/Table() entries win on a key
    // clash — a duplicate JSON key would make the report ill-formed.
    const obs::MetricsSnapshot snapshot =
        obs::MetricsRegistry::Global().Snapshot();
    const auto emit = [&](const std::string& key, const std::string& value) {
      if (!seen.insert(key).second) return;
      out << ", \"" << key << "\": " << value;
    };
    char buf[32];
    for (const auto& [name, value] : snapshot.counters) {
      std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
      emit("counter_" + name, buf);
    }
    for (const auto& [name, value] : snapshot.gauges) {
      emit("gauge_" + name, FormatDouble(value));
    }
    for (const auto& [name, stats] : snapshot.histograms) {
      std::snprintf(buf, sizeof(buf), "%" PRIu64, stats.count);
      emit("hist_" + name + "_count", buf);
      emit("hist_" + name + "_sum", FormatDouble(stats.sum));
      emit("hist_" + name + "_p50", FormatDouble(stats.p50));
      emit("hist_" + name + "_p95", FormatDouble(stats.p95));
      emit("hist_" + name + "_p99", FormatDouble(stats.p99));
    }
    out << "}\n";
    std::printf("\nJSON report: %s\n", path.c_str());
  }

 private:
  /// Fixed %.3f formatting: enough for milli/microsecond metrics, and
  /// never scientific notation (which some JSON consumers reject).
  static std::string FormatDouble(double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", value);
    return buf;
  }

  std::string slug_;
  std::vector<std::pair<std::string, std::string>> entries_;
  /// Wall clock of the current table section (reset by each Table()).
  Timer section_timer_;
};

/// Raw pairwise P/R/F1 row for a match set (the MLN matcher applies no
/// closure, so raw decisions are the comparable quantity).
inline std::vector<std::string> PrRow(const std::string& name,
                                      const data::Dataset& dataset,
                                      const core::MatchSet& matches) {
  const eval::PrMetrics m = eval::ComputePr(dataset, matches);
  return {name, TableWriter::Num(m.precision), TableWriter::Num(m.recall),
          TableWriter::Num(m.f1)};
}

/// Row with both raw pairwise metrics and metrics after transitive closure
/// (closure is how downstream consumers read out clusters).
inline std::vector<std::string> PrRowBoth(const std::string& name,
                                          const data::Dataset& dataset,
                                          const core::MatchSet& matches) {
  const eval::PrMetrics raw = eval::ComputePr(dataset, matches);
  const eval::PrMetrics closed =
      eval::ComputePr(dataset, core::TransitiveClosure(matches));
  return {name,
          TableWriter::Num(raw.precision),
          TableWriter::Num(raw.recall),
          TableWriter::Num(raw.f1),
          TableWriter::Num(closed.precision),
          TableWriter::Num(closed.recall),
          TableWriter::Num(closed.f1)};
}

/// Formats seconds with adaptive precision.
inline std::string Secs(double seconds) {
  return TableWriter::Num(seconds, seconds < 0.1 ? 4 : 2);
}

}  // namespace cem::bench

#endif  // CEM_BENCH_BENCH_UTIL_H_
