// Online match serving: serve::MatchService point queries concurrent with
// streamed ingest.
//
// The serving story on top of the paper's architecture: once the cover and
// match set are maintained incrementally (bench_streaming), a point query
// — "who does this reference match, right now?" — is a MinHash signature,
// a sharded LSH probe and a read of the live fixpoint: microseconds, not a
// pipeline run. MatchService answers these concurrently with ingest via
// read-mostly epochs (shared lock for queries, exclusive per ingest
// chunk), so readers never observe a half-patched cover.
//
// Two studies:
//  * pinning (deterministic, serial) — answer a fixed query set at every
//    quiescent prefix of a fixed arrival order; the per-query work
//    counters are bit-identical across hosts and gate via bench_diff, and
//    the streamed fixpoint equals a batch RunSmp over the same prefix.
//  * concurrent serving (informational) — reader threads hammer Lookup()
//    unthrottled while the ingest thread streams the corpus; reports
//    sustained QPS and query latency percentiles (host-dependent, never
//    gated). The acceptance shape: >=10k QPS with sub-millisecond p50
//    while ingest proceeds.
//
// The gated "counter_serve_*" metrics are emitted explicitly as the
// serial phase's deltas (explicit entries win the JSON dedup), because
// the concurrent phase bumps the same process-wide counters a
// host-dependent number of times.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/message_passing.h"
#include "mln/mln_matcher.h"
#include "obs/metrics.h"
#include "serve/match_service.h"
#include "stream/streaming_matcher.h"
#include "util/execution_context.h"
#include "util/random.h"
#include "util/timer.h"

namespace {

using namespace cem;
using serve::MatchService;
using serve::QueryResult;

/// Every k-th author reference, k sized for about `target` queries.
std::vector<data::EntityId> SampleQueries(
    const std::vector<data::EntityId>& refs, size_t target) {
  const size_t step = std::max<size_t>(1, refs.size() / target);
  std::vector<data::EntityId> queries;
  for (size_t i = 0; i < refs.size(); i += step) queries.push_back(refs[i]);
  return queries;
}

uint64_t Percentile(const std::vector<uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t i = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[i];
}

}  // namespace

int main() {
  const double scale = bench::Begin(
      "bench_serve — point queries concurrent with streamed ingest",
      "a maintained cover + fixpoint turns entity matching into a "
      "sub-millisecond point lookup: signature, LSH probe, read the live "
      "match state — served concurrently with ingest via epoch reads");
  bench::JsonReport report("bench_serve");
  const ExecutionContext& ctx = ExecutionContext::Default();

  eval::Workload w =
      eval::MakeDblpWorkload(scale, core::BlockingStrategy::kLsh, ctx);
  mln::MlnMatcher matcher(*w.dataset);
  std::vector<data::EntityId> refs = w.dataset->author_refs();
  Rng rng(2024);
  rng.Shuffle(refs);
  const std::vector<data::EntityId> queries = SampleQueries(refs, 64);

  // --- pinning: serial queries at every quiescent prefix (gated).
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  const uint64_t queries_before = registry.counter("serve_queries").Value();
  const uint64_t scanned_before =
      registry.counter("serve_candidates_scanned").Value();
  const uint64_t rescores_before =
      registry.counter("serve_matcher_rescores").Value();
  const uint64_t chunks_before =
      registry.counter("serve_ingest_chunks").Value();

  TableWriter pinning(
      {"prefix", "queries", "matched", "cold", "streamed == batch"});
  bool all_equal = true;
  {
    stream::StreamingOptions options;
    options.context = &ctx;
    stream::StreamingMatcher streaming(matcher, options);
    MatchService service(streaming);
    const size_t chunk = std::max<size_t>(1, refs.size() / 8);
    for (size_t start = 0; start < refs.size(); start += chunk) {
      const size_t end = std::min(refs.size(), start + chunk);
      CEM_CHECK_OK(service.IngestBatch(
          {refs.begin() + start, refs.begin() + end}));
      size_t matched = 0;
      size_t cold = 0;
      for (data::EntityId q : queries) {
        const Result<QueryResult> answer = service.Lookup({q});
        CEM_CHECK_OK(answer.status());
        if (answer->cluster.size() > 1) ++matched;
        if (!answer->live) ++cold;
      }
      // The serving claim at this prefix: the published fixpoint every
      // query just read equals a batch RunSmp over the streamed cover.
      const bool equal =
          streaming.matches() == core::RunSmp(matcher, streaming.cover()).matches;
      all_equal = all_equal && equal;
      pinning.AddRow({std::to_string(end), std::to_string(queries.size()),
                      std::to_string(matched), std::to_string(cold),
                      equal ? "yes" : "NO"});
    }
  }
  const uint64_t counter_queries =
      registry.counter("serve_queries").Value() - queries_before;
  const uint64_t counter_scanned =
      registry.counter("serve_candidates_scanned").Value() - scanned_before;
  const uint64_t counter_rescores =
      registry.counter("serve_matcher_rescores").Value() - rescores_before;
  const uint64_t counter_chunks =
      registry.counter("serve_ingest_chunks").Value() - chunks_before;
  report.Table("pinning", pinning);
  std::printf(
      "Every answer read a published epoch whose match state %s a batch "
      "RunSmp over the same prefix.\n\n",
      all_equal ? "EQUALS" : "DIFFERS FROM (BUG!)");

  // --- concurrent serving: readers vs the ingest thread (informational).
  const uint32_t num_readers = 4;
  std::vector<std::vector<uint64_t>> latencies(num_readers);
  std::atomic<bool> done{false};
  std::atomic<uint64_t> lookup_errors{0};
  stream::StreamingOptions options;
  options.context = &ctx;
  stream::StreamingMatcher streaming(matcher, options);
  MatchService service(streaming);
  std::vector<std::thread> readers;
  for (uint32_t r = 0; r < num_readers; ++r) {
    readers.emplace_back([&, r] {
      std::vector<uint64_t>& mine = latencies[r];
      size_t i = r * 31;
      while (!done.load(std::memory_order_acquire)) {
        // Readers run unthrottled: MatchService's ingest-priority gate
        // keeps the writer live even under a saturating lookup spin.
        const Result<QueryResult> answer =
            service.Lookup({queries[i++ % queries.size()]});
        if (answer.ok()) {
          mine.push_back(answer->latency_us);
        } else {
          lookup_errors.fetch_add(1);
        }
      }
    });
  }
  // Ingest paced at a ~50% duty cycle: each chunk's drain holds the lock
  // exclusively, then the stream idles for as long as the drain took
  // (capped) before the next chunk — a saturating bulk load would hold
  // the lock near-continuously, which is a backfill scenario, not the
  // append-heavy serving mix this study measures.
  Timer ingest_timer;
  const size_t chunk = 64;
  for (size_t start = 0; start < refs.size(); start += chunk) {
    const size_t end = std::min(refs.size(), start + chunk);
    Timer chunk_timer;
    CEM_CHECK_OK(
        service.IngestBatch({refs.begin() + start, refs.begin() + end}));
    const double gap = std::min(chunk_timer.ElapsedSeconds(), 0.1);
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<int64_t>(gap * 1e6)));
  }
  const double ingest_seconds = ingest_timer.ElapsedSeconds();
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  std::vector<uint64_t> merged;
  for (const std::vector<uint64_t>& v : latencies) {
    merged.insert(merged.end(), v.begin(), v.end());
  }
  std::sort(merged.begin(), merged.end());
  const double qps =
      static_cast<double>(merged.size()) / std::max(ingest_seconds, 1e-9);
  const uint64_t p50 = Percentile(merged, 0.50);
  const uint64_t p95 = Percentile(merged, 0.95);
  const uint64_t p99 = Percentile(merged, 0.99);
  TableWriter concurrent({"readers", "ingested refs", "ingest wall (s)",
                          "lookups", "qps", "p50 (us)", "p95 (us)",
                          "p99 (us)"});
  concurrent.AddRow({std::to_string(num_readers), std::to_string(refs.size()),
                     bench::Secs(ingest_seconds),
                     std::to_string(merged.size()),
                     TableWriter::Num(qps, 0), std::to_string(p50),
                     std::to_string(p95), std::to_string(p99)});
  report.Table("concurrent", concurrent);

  // Request-level observability view of the same run (informational, like
  // everything concurrent): the service's own rolling window and slow-query
  // log, as a live scrape of /metrics would see them.
  service.PublishWindowGauges();
  TableWriter window_table({"window (s)", "lookups", "qps", "error rate",
                            "p50 (us)", "p99 (us)"});
  for (const uint64_t window_s : {10ull, 60ull}) {
    const obs::WindowStats ws = service.rolling_window().Over(window_s);
    window_table.AddRow(
        {std::to_string(window_s), std::to_string(ws.count),
         TableWriter::Num(ws.qps, 0), TableWriter::Num(ws.error_rate, 3),
         TableWriter::Num(ws.p50, 1), TableWriter::Num(ws.p99, 1)});
  }
  report.Table("rolling window", window_table);
  const uint64_t slow_count = service.slow_query_log().slow_count();
  std::printf(
      "rolling-window view: %" PRIu64 " queries over %.0fus landed in the "
      "slow-query log (threshold-crossing traces retained worst-first).\n",
      slow_count, service.slow_query_log().threshold_us());

  const bool meets_target = qps >= 10000.0 && p50 < 1000;
  std::printf(
      "%zu lookups answered while the whole corpus streamed in (%" PRIu64
      " errors): %.0f queries/s, p50 %" PRIu64 "us — %s the >=10k QPS / "
      "sub-ms p50 serving target.\n",
      merged.size(), lookup_errors.load(), qps, p50,
      meets_target ? "MEETS" : "misses");

  // Gated counters: the serial phase's deltas only (see header comment).
  report.Metric("counter_serve_queries", static_cast<double>(counter_queries));
  report.Metric("counter_serve_candidates_scanned",
                static_cast<double>(counter_scanned));
  report.Metric("counter_serve_matcher_rescores",
                static_cast<double>(counter_rescores));
  report.Metric("counter_serve_ingest_chunks",
                static_cast<double>(counter_chunks));
  report.Metric("all_prefixes_equal_batch", all_equal ? 1.0 : 0.0);
  report.Metric("serve_concurrent_qps", qps);
  report.Metric("serve_concurrent_p50_us", static_cast<double>(p50));
  report.Metric("serve_window10s_p99_us",
                service.rolling_window().Over(10).p99);
  report.Metric("serve_slow_query_count", static_cast<double>(slow_count));
  report.Write();
  return all_equal && lookup_errors.load() == 0 ? 0 : 1;
}
