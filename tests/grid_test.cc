#include <gtest/gtest.h>

#include "core/grid_executor.h"
#include "core/message_passing.h"
#include "data/bib_generator.h"
#include "data/figure1.h"
#include "eval/experiment.h"
#include "mln/mln_matcher.h"
#include "rules/rules_matcher.h"

namespace cem::core {
namespace {

class GridFigure1 : public ::testing::Test {
 protected:
  GridFigure1()
      : fig_(data::MakeFigure1()),
        matcher_(*fig_.dataset, mln::MlnWeights::Figure1Demo()) {
    for (const auto& n : fig_.neighborhoods) cover_.Add(n);
  }

  data::Figure1 fig_;
  mln::MlnMatcher matcher_;
  Cover cover_;
};

TEST_F(GridFigure1, GridSmpEqualsSequentialSmp) {
  GridOptions options;
  options.scheme = MpScheme::kSmp;
  options.num_machines = 3;
  const GridResult grid = RunGrid(matcher_, cover_, options);
  EXPECT_EQ(grid.matches, RunSmp(matcher_, cover_).matches);
  EXPECT_GE(grid.rounds, 2u);  // Evidence from C3 forces a second round.
}

TEST_F(GridFigure1, GridMmpEqualsSequentialMmp) {
  GridOptions options;
  options.scheme = MpScheme::kMmp;
  options.num_machines = 2;
  const GridResult grid = RunGrid(matcher_, cover_, options);
  EXPECT_EQ(grid.matches, RunMmp(matcher_, cover_).matches);
  EXPECT_EQ(grid.matches.size(), 5u);
}

TEST_F(GridFigure1, GridNoMpSingleRound) {
  GridOptions options;
  options.scheme = MpScheme::kNoMp;
  const GridResult grid = RunGrid(matcher_, cover_, options);
  EXPECT_EQ(grid.rounds, 1u);
  EXPECT_EQ(grid.matches, RunNoMp(matcher_, cover_).matches);
}

TEST_F(GridFigure1, MachineCountDoesNotChangeResult) {
  for (uint32_t machines : {1u, 2u, 7u, 30u}) {
    GridOptions options;
    options.scheme = MpScheme::kMmp;
    options.num_machines = machines;
    EXPECT_EQ(RunGrid(matcher_, cover_, options).matches,
              RunMmp(matcher_, cover_).matches)
        << machines << " machines";
  }
}

TEST_F(GridFigure1, OverheadAccountedPerRound) {
  GridOptions base;
  base.scheme = MpScheme::kSmp;
  GridOptions with_overhead = base;
  with_overhead.per_round_overhead_seconds = 0.5;
  const GridResult cheap = RunGrid(matcher_, cover_, base);
  const GridResult costly = RunGrid(matcher_, cover_, with_overhead);
  EXPECT_NEAR(costly.simulated_seconds - cheap.simulated_seconds,
              0.5 * costly.rounds, 0.3);
}

TEST(GridTest, ParallelSpeedupOnRealCorpus) {
  // The Table 1 shape: more simulated machines -> lower simulated makespan
  // (sub-linear because of skew and per-round overhead).
  auto dataset = data::GenerateBibDataset(data::BibConfig::HepthLike(0.25));
  const Cover cover = BuildCanopyCover(*dataset);
  mln::MlnMatcher inner(*dataset);
  // The cost model restores the expensive-inference regime so per-task
  // durations dominate the makespan.
  eval::CostModelMatcher matcher(inner, /*cost_scale_us=*/1.0,
                                 /*exponent=*/1.3);

  GridOptions one;
  one.scheme = MpScheme::kSmp;
  one.num_machines = 1;
  GridOptions thirty = one;
  thirty.num_machines = 30;
  const GridResult single = RunGrid(matcher, cover, one);
  const GridResult grid = RunGrid(matcher, cover, thirty);
  EXPECT_EQ(single.matches, grid.matches);
  const double speedup = single.simulated_seconds / grid.simulated_seconds;
  EXPECT_GT(speedup, 2.0);
  EXPECT_LT(speedup, 30.0);  // Never perfect (skew + overhead).
}

TEST(GridTest, RulesMatcherOnGrid) {
  auto dataset = data::GenerateBibDataset(data::BibConfig::DblpLike(0.25));
  const Cover cover = BuildCanopyCover(*dataset);
  rules::RulesMatcher matcher(*dataset);
  GridOptions options;
  options.scheme = MpScheme::kSmp;
  options.num_machines = 4;
  const GridResult grid = RunGrid(matcher, cover, options);
  EXPECT_EQ(grid.matches, RunSmp(matcher, cover).matches);
}

TEST(GridTest, SchemeNames) {
  EXPECT_STREQ(MpSchemeName(MpScheme::kNoMp), "NO-MP");
  EXPECT_STREQ(MpSchemeName(MpScheme::kSmp), "SMP");
  EXPECT_STREQ(MpSchemeName(MpScheme::kMmp), "MMP");
}

}  // namespace
}  // namespace cem::core
