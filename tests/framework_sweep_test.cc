// Parameterized end-to-end sweeps: the framework's invariants must hold for
// every combination of corpus family, matcher and execution scheme — this
// is the "does it hold everywhere" net over the per-module tests.

#include <memory>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "core/canopy.h"
#include "core/grid_executor.h"
#include "core/message_passing.h"
#include "data/bib_generator.h"
#include "data/tsv_io.h"
#include "eval/metrics.h"
#include "mln/mln_matcher.h"
#include "rules/rules_matcher.h"

namespace cem {
namespace {

using core::MatchSet;

enum class Corpus { kHepth, kDblp };
enum class Which { kMln, kRules };

std::string CorpusName(Corpus c) {
  return c == Corpus::kHepth ? "hepth" : "dblp";
}
std::string MatcherName(Which m) { return m == Which::kMln ? "mln" : "rules"; }

/// Cache of generated corpora so the sweep stays fast.
struct Instance {
  std::unique_ptr<data::Dataset> dataset;
  core::Cover cover;
  std::unique_ptr<mln::MlnMatcher> mln;
  std::unique_ptr<rules::RulesMatcher> rules;
};

Instance& GetInstance(Corpus corpus) {
  static Instance hepth, dblp;
  Instance& inst = corpus == Corpus::kHepth ? hepth : dblp;
  if (inst.dataset == nullptr) {
    inst.dataset = data::GenerateBibDataset(
        corpus == Corpus::kHepth ? data::BibConfig::HepthLike(0.2)
                                 : data::BibConfig::DblpLike(0.2));
    inst.cover = core::BuildCanopyCover(*inst.dataset);
    inst.mln = std::make_unique<mln::MlnMatcher>(*inst.dataset);
    inst.rules = std::make_unique<rules::RulesMatcher>(*inst.dataset);
  }
  return inst;
}

const core::Matcher& GetMatcher(Instance& inst, Which which) {
  if (which == Which::kMln) return *inst.mln;
  return *inst.rules;
}

class FrameworkSweep
    : public ::testing::TestWithParam<std::tuple<Corpus, Which>> {};

TEST_P(FrameworkSweep, CoverIsWellFormed) {
  Instance& inst = GetInstance(std::get<0>(GetParam()));
  EXPECT_TRUE(inst.cover.CoversAllAuthorRefs(*inst.dataset));
  EXPECT_TRUE(inst.cover.IsTotalForCoauthor(*inst.dataset));
  EXPECT_DOUBLE_EQ(inst.cover.CandidatePairCoverage(*inst.dataset), 1.0);
}

TEST_P(FrameworkSweep, SmpSoundAgainstFullRun) {
  auto [corpus, which] = GetParam();
  Instance& inst = GetInstance(corpus);
  const core::Matcher& matcher = GetMatcher(inst, which);
  const MatchSet full = matcher.MatchAll();
  EXPECT_TRUE(core::RunSmp(matcher, inst.cover).matches.IsSubsetOf(full))
      << CorpusName(corpus) << "/" << MatcherName(which);
}

TEST_P(FrameworkSweep, SchemeHierarchyHolds) {
  auto [corpus, which] = GetParam();
  Instance& inst = GetInstance(corpus);
  const core::Matcher& matcher = GetMatcher(inst, which);
  const MatchSet no_mp = core::RunNoMp(matcher, inst.cover).matches;
  const MatchSet smp = core::RunSmp(matcher, inst.cover).matches;
  EXPECT_TRUE(no_mp.IsSubsetOf(smp));
  if (which == Which::kMln) {
    const MatchSet mmp = core::RunMmp(*inst.mln, inst.cover).matches;
    EXPECT_TRUE(smp.IsSubsetOf(mmp));
  }
}

TEST_P(FrameworkSweep, GridEqualsSequentialAcrossMachineCounts) {
  auto [corpus, which] = GetParam();
  Instance& inst = GetInstance(corpus);
  const core::Matcher& matcher = GetMatcher(inst, which);
  const MatchSet sequential = core::RunSmp(matcher, inst.cover).matches;
  for (uint32_t machines : {2u, 5u}) {
    core::GridOptions options;
    options.scheme = core::MpScheme::kSmp;
    options.num_machines = machines;
    options.seed = 77 + machines;
    EXPECT_EQ(core::RunGrid(matcher, inst.cover, options).matches, sequential)
        << machines << " machines";
  }
}

TEST_P(FrameworkSweep, PrecisionUsefulOnAllCombinations) {
  auto [corpus, which] = GetParam();
  Instance& inst = GetInstance(corpus);
  const core::Matcher& matcher = GetMatcher(inst, which);
  const MatchSet smp = core::RunSmp(matcher, inst.cover).matches;
  const eval::PrMetrics m = eval::ComputePr(*inst.dataset, smp);
  EXPECT_GT(m.precision, 0.8) << CorpusName(corpus) << "/"
                              << MatcherName(which);
}

TEST_P(FrameworkSweep, TsvRoundTripPreservesPipelineOutput) {
  auto [corpus, which] = GetParam();
  Instance& inst = GetInstance(corpus);
  const std::string path = ::testing::TempDir() + "/sweep_" +
                           CorpusName(corpus) + ".tsv";
  ASSERT_TRUE(data::SaveDatasetTsv(*inst.dataset, path).ok());
  auto loaded = data::LoadDatasetTsv(path);
  ASSERT_TRUE(loaded.ok());
  (*loaded)->BuildCandidatePairs();
  ASSERT_EQ((*loaded)->num_candidate_pairs(),
            inst.dataset->num_candidate_pairs());
  // The reloaded corpus must produce the identical match set.
  const core::Cover cover = core::BuildCanopyCover(**loaded);
  if (which == Which::kMln) {
    mln::MlnMatcher reloaded_matcher(**loaded);
    EXPECT_EQ(core::RunSmp(reloaded_matcher, cover).matches,
              core::RunSmp(*inst.mln, inst.cover).matches);
  } else {
    rules::RulesMatcher reloaded_matcher(**loaded);
    EXPECT_EQ(core::RunSmp(reloaded_matcher, cover).matches,
              core::RunSmp(*inst.rules, inst.cover).matches);
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, FrameworkSweep,
    ::testing::Combine(::testing::Values(Corpus::kHepth, Corpus::kDblp),
                       ::testing::Values(Which::kMln, Which::kRules)),
    [](const ::testing::TestParamInfo<FrameworkSweep::ParamType>& info) {
      return CorpusName(std::get<0>(info.param)) + "_" +
             MatcherName(std::get<1>(info.param));
    });

}  // namespace
}  // namespace cem
