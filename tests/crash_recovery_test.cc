// Crash-recovery property suite: kill a persisted streaming run at
// randomized points of its durable write stream (torn final WAL record,
// half-written snapshot shard), or damage its files at rest (missing
// shard, truncated MANIFEST, flipped checksum byte), then Recover() and
// replay the remaining stream — the final matches, cover AND work
// counters must be bit-identical to an uninterrupted run, across thread
// counts, shard counts and arrival seeds. The chunk-atomic write-ahead
// discipline is what carries the counter half: every recoverable insert
// count is a chunk boundary, so replay reproduces the exact convergence
// drains of the original run.

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/bib_generator.h"
#include "mln/mln_matcher.h"
#include "persist/recovery.h"
#include "persist/snapshot.h"
#include "stream/streaming_matcher.h"
#include "util/execution_context.h"
#include "util/io.h"
#include "util/random.h"

namespace cem {
namespace {

namespace fs = std::filesystem;

using persist::PersistentStreamingMatcher;
using persist::PersistOptions;
using persist::RecoveryInfo;
using stream::StreamingMatcher;
using stream::StreamingOptions;

std::string ScratchDir(const std::string& name) {
  // Suffixed with the pid: ctest -j runs each discovered case in its own
  // process, and concurrently-scheduled cases of one suite must not race
  // remove_all/create on a shared path.
  const fs::path dir =
      fs::path(::testing::TempDir()) /
      ("crash_" + name + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::unique_ptr<data::Dataset> MakeSmallBib(uint64_t seed) {
  data::BibConfig config = data::BibConfig::DblpLike(0.05);
  config.seed = seed;
  return data::GenerateBibDataset(config);
}

std::vector<data::EntityId> ShuffledRefs(const data::Dataset& dataset,
                                         uint64_t seed) {
  std::vector<data::EntityId> refs = dataset.author_refs();
  Rng rng(seed);
  rng.Shuffle(refs);
  return refs;
}

/// The captured end state of a run — everything "bit-identical" covers.
struct RunState {
  core::MatchSet matches;
  stream::StreamingStats stats;
  std::vector<data::EntityId> slots;
  std::vector<std::vector<data::EntityId>> neighborhoods;
};

RunState Capture(const StreamingMatcher& matcher) {
  RunState state;
  state.matches = matcher.matches();
  state.stats = matcher.stats();
  state.slots = matcher.incremental_cover().slots();
  state.neighborhoods.reserve(matcher.cover().size());
  for (size_t i = 0; i < matcher.cover().size(); ++i) {
    state.neighborhoods.push_back(matcher.cover().neighborhood(i).entities);
  }
  return state;
}

void ExpectSameState(const RunState& actual, const RunState& expected,
                     const std::string& label) {
  EXPECT_EQ(actual.matches, expected.matches) << label;
  EXPECT_EQ(actual.slots, expected.slots) << label;
  EXPECT_EQ(actual.neighborhoods, expected.neighborhoods) << label;
  EXPECT_TRUE(actual.stats.ingest == expected.stats.ingest) << label;
  EXPECT_TRUE(actual.stats.matching == expected.stats.matching) << label;
}

/// The uninterrupted reference: a plain StreamingMatcher fed the whole
/// arrival order in `chunk_size` chunks.
RunState ReferenceRun(const core::Matcher& matcher,
                      const std::vector<data::EntityId>& refs,
                      size_t chunk_size, const StreamingOptions& options) {
  StreamingMatcher streaming(matcher, options);
  for (size_t start = 0; start < refs.size(); start += chunk_size) {
    const size_t end = std::min(refs.size(), start + chunk_size);
    streaming.AddBatch({refs.begin() + start, refs.begin() + end});
  }
  return Capture(streaming);
}

/// Feeds `refs[from:]` into a recovered persisted matcher with the
/// original chunk boundaries (recovery always lands on one).
Status Resume(PersistentStreamingMatcher& psm,
              const std::vector<data::EntityId>& refs, size_t chunk_size) {
  size_t from = psm.num_live();
  EXPECT_TRUE(from == refs.size() || from % chunk_size == 0)
      << "recovered insert count " << from << " is not a chunk boundary";
  for (size_t start = from; start < refs.size(); start += chunk_size) {
    const size_t end = std::min(refs.size(), start + chunk_size);
    CEM_RETURN_IF_ERROR(psm.AddBatch({refs.begin() + start,
                                      refs.begin() + end}));
  }
  return OkStatus();
}

/// Runs persisted ingest with a write budget of `fail_after_bytes`; the
/// write that crosses it flushes a torn prefix and fails like a killed
/// process. Returns how many whole chunks were acknowledged.
size_t RunUntilCrash(const core::Matcher& matcher,
                     const StreamingOptions& stream_options,
                     const PersistOptions& persist_options,
                     const std::vector<data::EntityId>& refs,
                     size_t chunk_size) {
  PersistentStreamingMatcher psm(matcher, stream_options, persist_options);
  if (!psm.Start().ok()) return 0;
  size_t acknowledged = 0;
  for (size_t start = 0; start < refs.size(); start += chunk_size) {
    const size_t end = std::min(refs.size(), start + chunk_size);
    if (!psm.AddBatch({refs.begin() + start, refs.begin() + end}).ok()) {
      break;
    }
    ++acknowledged;
  }
  return acknowledged;
}

/// Total durable bytes of an uninterrupted persisted run — the budget
/// space the randomized crash points are drawn from.
uint64_t MeasureTotalBytes(const core::Matcher& matcher,
                           const StreamingOptions& stream_options,
                           PersistOptions persist_options,
                           const std::vector<data::EntityId>& refs,
                           size_t chunk_size) {
  io::FaultPlan counter;  // No budget: counts only.
  persist_options.faults = &counter;
  persist_options.dir = ScratchDir("probe");
  EXPECT_EQ(RunUntilCrash(matcher, stream_options, persist_options, refs,
                          chunk_size),
            (refs.size() + chunk_size - 1) / chunk_size);
  return counter.bytes_written.load();
}

void CrashRecoverAndCheck(const core::Matcher& matcher,
                          const StreamingOptions& stream_options,
                          const std::vector<data::EntityId>& refs,
                          size_t chunk_size, size_t snapshot_every,
                          uint64_t budget, const RunState& reference,
                          const std::string& label) {
  const std::string dir = ScratchDir(label);
  io::FaultPlan faults;
  faults.fail_after_bytes = budget;
  RunUntilCrash(matcher, stream_options, {dir, snapshot_every, &faults},
                refs, chunk_size);

  PersistentStreamingMatcher recovered(matcher, stream_options,
                                       {dir, snapshot_every, nullptr});
  RecoveryInfo info;
  ASSERT_TRUE(recovered.Recover(&info).ok()) << label;
  EXPECT_LE(info.inserts_recovered, refs.size()) << label;
  ASSERT_TRUE(Resume(recovered, refs, chunk_size).ok()) << label;
  ExpectSameState(Capture(recovered.matcher()), reference, label);
}

// --- randomized crash points ------------------------------------------------

TEST(CrashRecovery, RandomizedCrashPointsRecoverBitIdentically) {
  const auto dataset = MakeSmallBib(900);
  const mln::MlnMatcher matcher(*dataset);
  const StreamingOptions options;
  const size_t chunk_size = 8;
  const size_t snapshot_every = 32;

  for (const uint64_t arrival_seed : {uint64_t{41}, uint64_t{42}}) {
    const std::vector<data::EntityId> refs =
        ShuffledRefs(*dataset, arrival_seed);
    const RunState reference =
        ReferenceRun(matcher, refs, chunk_size, options);
    const uint64_t total = MeasureTotalBytes(matcher, options,
                                             {"", snapshot_every, nullptr},
                                             refs, chunk_size);
    ASSERT_GT(total, 100u);

    // Edge budgets: before the WAL prefix completes, inside the header,
    // just past the header, and one byte short of a clean finish — plus
    // deterministic Rng-drawn points over the whole stream.
    std::vector<uint64_t> budgets = {0, 7, 13, 80, total - 1};
    Rng rng(arrival_seed * 977);
    for (int i = 0; i < 6; ++i) budgets.push_back(rng.NextBounded(total));
    for (size_t i = 0; i < budgets.size(); ++i) {
      CrashRecoverAndCheck(matcher, options, refs, chunk_size, snapshot_every,
                           budgets[i], reference,
                           "seed" + std::to_string(arrival_seed) + "_budget" +
                               std::to_string(budgets[i]));
    }
  }
}

TEST(CrashRecovery, ThreadAndShardMatrixRecoversToTheSameState) {
  const auto dataset = MakeSmallBib(901);
  const mln::MlnMatcher matcher(*dataset);
  const size_t chunk_size = 16;
  const std::vector<data::EntityId> refs = ShuffledRefs(*dataset, 7);

  // Snapshots off: every durable byte is then WAL traffic, which depends
  // only on the arrival order — so the same crash budgets are comparable
  // across every execution context.
  ExecutionContext serial(1, /*num_shards=*/1);
  StreamingOptions serial_options;
  serial_options.context = &serial;
  const RunState reference =
      ReferenceRun(matcher, refs, chunk_size, serial_options);
  const uint64_t total = MeasureTotalBytes(matcher, serial_options,
                                           {"", 0, nullptr}, refs, chunk_size);

  const std::vector<uint32_t> threads = {
      1, 4, std::max(1u, std::thread::hardware_concurrency())};
  for (uint32_t num_threads : threads) {
    for (uint32_t num_shards : {1u, 4u, 32u}) {
      ExecutionContext ctx(num_threads, num_shards);
      StreamingOptions options;
      options.context = &ctx;
      for (const uint64_t budget : {total / 3, (2 * total) / 3}) {
        CrashRecoverAndCheck(matcher, options, refs, chunk_size,
                             /*snapshot_every=*/0, budget, reference,
                             std::to_string(num_threads) + "t_" +
                                 std::to_string(num_shards) + "s_" +
                                 std::to_string(budget));
      }
    }
  }
}

// --- at-rest corruption -----------------------------------------------------

class AtRestCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = MakeSmallBib(902);
    matcher_ = std::make_unique<mln::MlnMatcher>(*dataset_);
    refs_ = ShuffledRefs(*dataset_, 17);
    reference_ = ReferenceRun(*matcher_, refs_, kChunk, options_);
    // A clean persisted run with at least two complete snapshots.
    pristine_ = ScratchDir("pristine");
    PersistentStreamingMatcher psm(*matcher_, options_,
                                   {pristine_, kEvery, nullptr});
    ASSERT_TRUE(psm.Start().ok());
    ASSERT_TRUE(Resume(psm, refs_, kChunk).ok());
    ASSERT_GE(persist::ListSnapshots(pristine_).size(), 2u);
  }

  /// Copies the pristine state dir, applies `damage`, recovers, resumes,
  /// and checks bit-identity with the uninterrupted reference.
  void CheckRecoveryAfter(const std::string& name,
                          const std::function<void(const fs::path&)>& damage,
                          size_t min_snapshots_skipped) {
    const std::string dir = ScratchDir(name);
    fs::remove_all(dir);
    fs::copy(pristine_, dir, fs::copy_options::recursive);
    damage(dir);
    PersistentStreamingMatcher recovered(*matcher_, options_,
                                         {dir, kEvery, nullptr});
    RecoveryInfo info;
    ASSERT_TRUE(recovered.Recover(&info).ok()) << name;
    EXPECT_GE(info.snapshots_skipped, min_snapshots_skipped) << name;
    ASSERT_TRUE(Resume(recovered, refs_, kChunk).ok()) << name;
    ExpectSameState(Capture(recovered.matcher()), reference_, name);
  }

  static fs::path NewestSnapshot(const fs::path& dir) {
    return persist::ListSnapshots(dir.string())[0].path;
  }

  static void FlipByte(const fs::path& path, size_t offset) {
    std::string bytes;
    ASSERT_TRUE(io::ReadFile(path.string(), &bytes).ok());
    ASSERT_LT(offset, bytes.size());
    bytes[offset] ^= 0x01;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  static constexpr size_t kChunk = 8;
  static constexpr size_t kEvery = 24;
  std::unique_ptr<data::Dataset> dataset_;
  std::unique_ptr<mln::MlnMatcher> matcher_;
  StreamingOptions options_;
  std::vector<data::EntityId> refs_;
  RunState reference_;
  std::string pristine_;
};

TEST_F(AtRestCorruption, MissingShardFileSkipsTheSnapshot) {
  CheckRecoveryAfter(
      "missing_shard",
      [](const fs::path& dir) {
        fs::remove(NewestSnapshot(dir) / "sig_0.bin");
      },
      /*min_snapshots_skipped=*/1);
}

TEST_F(AtRestCorruption, TruncatedManifestSkipsTheSnapshot) {
  CheckRecoveryAfter(
      "truncated_manifest",
      [](const fs::path& dir) {
        fs::resize_file(NewestSnapshot(dir) / "MANIFEST", 10);
      },
      /*min_snapshots_skipped=*/1);
}

TEST_F(AtRestCorruption, MissingManifestSkipsTheSnapshot) {
  CheckRecoveryAfter(
      "missing_manifest",
      [](const fs::path& dir) {
        fs::remove(NewestSnapshot(dir) / "MANIFEST");
      },
      /*min_snapshots_skipped=*/1);
}

TEST_F(AtRestCorruption, FlippedSnapshotByteFailsTheChecksumAndSkips) {
  // Flip a payload byte in every section file of the newest snapshot, one
  // run each: the record CRC must catch each one.
  for (const std::string file :
       {"cover.bin", "stream.bin", "matches.bin", "sig_0.bin", "lsh_0.bin"}) {
    CheckRecoveryAfter(
        "flip_" + file,
        [&file](const fs::path& dir) {
          FlipByte(NewestSnapshot(dir) / file, 40);
        },
        /*min_snapshots_skipped=*/1);
  }
}

TEST_F(AtRestCorruption, FlippedWalByteDropsTheTailOnly) {
  // A flipped byte past the WAL's 12-byte prefix fails that record's
  // checksum; the valid prefix recovers and the harness re-feeds the rest.
  // (Snapshots newer than the readable WAL prefix may legitimately carry
  // the state further — recovery then replays nothing.)
  const std::string wal = (fs::path(pristine_) / "wal.log").string();
  std::string bytes;
  ASSERT_TRUE(io::ReadFile(wal, &bytes).ok());
  for (const size_t offset :
       {size_t{12}, size_t{90}, bytes.size() / 2, bytes.size() - 5}) {
    CheckRecoveryAfter(
        "flip_wal_" + std::to_string(offset),
        [offset](const fs::path& dir) { FlipByte(dir / "wal.log", offset); },
        /*min_snapshots_skipped=*/0);
  }
}

// --- WAL edge cases ---------------------------------------------------------

TEST(WalEdgeCases, EmptyWalRecoversToZeroAndStreamsOn) {
  const auto dataset = MakeSmallBib(903);
  const mln::MlnMatcher matcher(*dataset);
  const StreamingOptions options;
  const std::vector<data::EntityId> refs = ShuffledRefs(*dataset, 23);
  const RunState reference = ReferenceRun(matcher, refs, 16, options);
  const std::string dir = ScratchDir("empty_wal");
  {
    PersistentStreamingMatcher psm(matcher, options, {dir, 0, nullptr});
    ASSERT_TRUE(psm.Start().ok());  // Header only, no chunks.
  }
  PersistentStreamingMatcher recovered(matcher, options, {dir, 0, nullptr});
  RecoveryInfo info;
  ASSERT_TRUE(recovered.Recover(&info).ok());
  EXPECT_EQ(info.inserts_recovered, 0u);
  EXPECT_FALSE(info.used_snapshot);
  EXPECT_EQ(info.chunks_replayed, 0u);
  EXPECT_FALSE(info.wal_tail_truncated);
  ASSERT_TRUE(Resume(recovered, refs, 16).ok());
  ExpectSameState(Capture(recovered.matcher()), reference, "empty wal");
}

TEST(WalEdgeCases, WalOnlyRecoveryReplaysEveryChunk) {
  const auto dataset = MakeSmallBib(904);
  const mln::MlnMatcher matcher(*dataset);
  const StreamingOptions options;
  const std::vector<data::EntityId> refs = ShuffledRefs(*dataset, 29);
  const RunState reference = ReferenceRun(matcher, refs, 8, options);
  const std::string dir = ScratchDir("wal_only");
  const size_t fed_chunks = 5;
  {
    PersistentStreamingMatcher psm(matcher, options, {dir, 0, nullptr});
    ASSERT_TRUE(psm.Start().ok());
    for (size_t c = 0; c < fed_chunks; ++c) {
      ASSERT_TRUE(psm.AddBatch({refs.begin() + c * 8,
                                refs.begin() + (c + 1) * 8}).ok());
    }
  }
  ASSERT_TRUE(persist::ListSnapshots(dir).empty());
  PersistentStreamingMatcher recovered(matcher, options, {dir, 0, nullptr});
  RecoveryInfo info;
  ASSERT_TRUE(recovered.Recover(&info).ok());
  EXPECT_FALSE(info.used_snapshot);
  EXPECT_EQ(info.chunks_replayed, fed_chunks);
  EXPECT_EQ(info.inserts_recovered, fed_chunks * 8);
  ASSERT_TRUE(Resume(recovered, refs, 8).ok());
  ExpectSameState(Capture(recovered.matcher()), reference, "wal only");
}

TEST(WalEdgeCases, SnapshotOnlyRecoveryRebuildsTheMissingWal) {
  const auto dataset = MakeSmallBib(905);
  const mln::MlnMatcher matcher(*dataset);
  const StreamingOptions options;
  const std::vector<data::EntityId> refs = ShuffledRefs(*dataset, 31);
  const RunState reference = ReferenceRun(matcher, refs, 8, options);
  const std::string dir = ScratchDir("snapshot_only");
  const size_t fed = (refs.size() / 2 / 8) * 8;
  {
    PersistentStreamingMatcher psm(matcher, options, {dir, 0, nullptr});
    ASSERT_TRUE(psm.Start().ok());
    ASSERT_TRUE(psm.AddBatch({refs.begin(), refs.begin() + fed}).ok());
    ASSERT_TRUE(psm.Checkpoint().ok());
  }
  fs::remove(fs::path(dir) / "wal.log");
  PersistentStreamingMatcher recovered(matcher, options, {dir, 0, nullptr});
  RecoveryInfo info;
  ASSERT_TRUE(recovered.Recover(&info).ok());
  EXPECT_TRUE(info.used_snapshot);
  EXPECT_EQ(info.snapshot_inserts, fed);
  EXPECT_EQ(info.inserts_recovered, fed);
  EXPECT_EQ(info.chunks_replayed, 0u);
  EXPECT_TRUE(fs::exists(fs::path(dir) / "wal.log"));
  // The resume continues with its own chunk boundaries past `fed`.
  ASSERT_TRUE(Resume(recovered, refs, 8).ok());
  // Reference with matching boundaries: one chunk of `fed`, then 8s.
  StreamingMatcher mirror(matcher, options);
  mirror.AddBatch({refs.begin(), refs.begin() + fed});
  for (size_t start = fed; start < refs.size(); start += 8) {
    const size_t end = std::min(refs.size(), start + 8);
    mirror.AddBatch({refs.begin() + start, refs.begin() + end});
  }
  ExpectSameState(Capture(recovered.matcher()), Capture(mirror),
                  "snapshot only");
  // Full-stream matches agree with the plain reference too (fixpoint is
  // chunking-invariant even though drain counters are not).
  EXPECT_EQ(recovered.matcher().matches(), reference.matches);
}

TEST(WalEdgeCases, CrashAfterARebuiltWalRecoveryReplaysTheLaterChunks) {
  // The regression the base-insert header field exists for: recover from
  // a snapshot with a missing WAL (the rebuilt WAL's chunks then continue
  // from the snapshot's insert count, not 0), append more acknowledged
  // chunks, crash again. The second recovery must replay those chunks —
  // with base-0 accounting it would skip them as pre-snapshot history and
  // apply the rest onto a state with a hole.
  const auto dataset = MakeSmallBib(908);
  const mln::MlnMatcher matcher(*dataset);
  const StreamingOptions options;
  const std::vector<data::EntityId> refs = ShuffledRefs(*dataset, 43);
  const RunState reference = ReferenceRun(matcher, refs, 8, options);
  const std::string dir = ScratchDir("rebuilt_wal_crash");
  // Snapshot after the FIRST chunk, so the buggy skip accounting would
  // align exactly on a post-rebuild chunk boundary (the silent case).
  const size_t fed = 8;
  const size_t appended_chunks = 4;
  ASSERT_GE(refs.size(), fed + appended_chunks * 8);
  {
    PersistentStreamingMatcher psm(matcher, options, {dir, 0, nullptr});
    ASSERT_TRUE(psm.Start().ok());
    ASSERT_TRUE(psm.AddBatch({refs.begin(), refs.begin() + fed}).ok());
    ASSERT_TRUE(psm.Checkpoint().ok());
  }
  fs::remove(fs::path(dir) / "wal.log");
  {
    PersistentStreamingMatcher psm(matcher, options, {dir, 0, nullptr});
    RecoveryInfo info;
    ASSERT_TRUE(psm.Recover(&info).ok());
    ASSERT_EQ(info.inserts_recovered, fed);
    for (size_t c = 0; c < appended_chunks; ++c) {
      const size_t start = fed + c * 8;
      ASSERT_TRUE(psm.AddBatch({refs.begin() + start,
                                refs.begin() + start + 8}).ok());
    }
  }  // Crash: destroyed without a checkpoint.
  PersistentStreamingMatcher recovered(matcher, options, {dir, 0, nullptr});
  RecoveryInfo info;
  ASSERT_TRUE(recovered.Recover(&info).ok());
  EXPECT_TRUE(info.used_snapshot);
  EXPECT_EQ(info.snapshot_inserts, fed);
  EXPECT_EQ(info.chunks_replayed, appended_chunks);
  EXPECT_EQ(info.inserts_recovered, fed + appended_chunks * 8);
  ASSERT_TRUE(Resume(recovered, refs, 8).ok());
  ExpectSameState(Capture(recovered.matcher()), reference, "rebuilt wal");
}

TEST(WalEdgeCases, LosingTheSnapshotAWalWasRebasedOnIsAnErrorNotSilence) {
  // After a rebuilt-WAL recovery, durability of everything before the
  // base rests on the snapshot the rebase came from. If that snapshot is
  // later damaged too, the acknowledged inserts in the gap exist on no
  // surviving medium — recovery must say so, not quietly resume from an
  // older (here: empty) state.
  const auto dataset = MakeSmallBib(909);
  const mln::MlnMatcher matcher(*dataset);
  const StreamingOptions options;
  const std::vector<data::EntityId> refs = ShuffledRefs(*dataset, 47);
  const std::string dir = ScratchDir("lost_base_snapshot");
  {
    PersistentStreamingMatcher psm(matcher, options, {dir, 0, nullptr});
    ASSERT_TRUE(psm.Start().ok());
    ASSERT_TRUE(psm.AddBatch({refs.begin(), refs.begin() + 8}).ok());
    ASSERT_TRUE(psm.Checkpoint().ok());
  }
  fs::remove(fs::path(dir) / "wal.log");
  {
    PersistentStreamingMatcher psm(matcher, options, {dir, 0, nullptr});
    ASSERT_TRUE(psm.Recover().ok());  // Rebuilds the WAL based at 8.
  }
  const fs::path snap =
      persist::ListSnapshots(dir)[0].path;
  fs::remove(snap / "MANIFEST");  // The base snapshot dies at rest.
  PersistentStreamingMatcher doomed(matcher, options, {dir, 0, nullptr});
  const Status status = doomed.Recover();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("acknowledged inserts were lost"),
            std::string::npos);
}

TEST(WalEdgeCases, FsyncedRunRecoversBitIdentically) {
  // PersistOptions::fsync changes the flush path (fsync per append,
  // per-file + directory sync per snapshot), not the bytes — recovery
  // must behave identically with it on.
  const auto dataset = MakeSmallBib(910);
  const mln::MlnMatcher matcher(*dataset);
  const StreamingOptions options;
  const std::vector<data::EntityId> refs = ShuffledRefs(*dataset, 53);
  const RunState reference = ReferenceRun(matcher, refs, 16, options);
  const std::string dir = ScratchDir("fsync");
  const size_t fed = (refs.size() / 2 / 16) * 16;
  {
    PersistentStreamingMatcher psm(matcher, options,
                                   {dir, 32, nullptr, /*fsync=*/true});
    ASSERT_TRUE(psm.Start().ok());
    ASSERT_TRUE(psm.AddBatch({refs.begin(), refs.begin() + fed}).ok());
  }
  PersistentStreamingMatcher recovered(matcher, options,
                                       {dir, 32, nullptr, /*fsync=*/true});
  RecoveryInfo info;
  ASSERT_TRUE(recovered.Recover(&info).ok());
  EXPECT_EQ(info.inserts_recovered, fed);
  ASSERT_TRUE(Resume(recovered, refs, 16).ok());
  // Boundaries: one chunk of `fed`, then 16s — mirror them exactly.
  StreamingMatcher mirror(matcher, options);
  mirror.AddBatch({refs.begin(), refs.begin() + fed});
  for (size_t start = fed; start < refs.size(); start += 16) {
    const size_t end = std::min(refs.size(), start + 16);
    mirror.AddBatch({refs.begin() + start, refs.begin() + end});
  }
  ExpectSameState(Capture(recovered.matcher()), Capture(mirror), "fsync");
  EXPECT_EQ(recovered.matcher().matches(), reference.matches);
}

TEST(WalEdgeCases, DoubleRecoveryIsIdempotent) {
  const auto dataset = MakeSmallBib(906);
  const mln::MlnMatcher matcher(*dataset);
  const StreamingOptions options;
  const std::vector<data::EntityId> refs = ShuffledRefs(*dataset, 37);
  const RunState reference = ReferenceRun(matcher, refs, 8, options);
  const std::string dir = ScratchDir("double_recovery");
  io::FaultPlan faults;
  faults.fail_after_bytes = 2000;  // Mid-stream torn write.
  RunUntilCrash(matcher, options, {dir, 24, &faults}, refs, 8);

  RunState first_state;
  RecoveryInfo first_info;
  {
    PersistentStreamingMatcher first(matcher, options, {dir, 24, nullptr});
    ASSERT_TRUE(first.Recover(&first_info).ok());
    first_state = Capture(first.matcher());
  }  // Destroyed without further appends.
  PersistentStreamingMatcher second(matcher, options, {dir, 24, nullptr});
  RecoveryInfo second_info;
  ASSERT_TRUE(second.Recover(&second_info).ok());
  EXPECT_EQ(second_info.inserts_recovered, first_info.inserts_recovered);
  // The first recovery already truncated any torn tail.
  EXPECT_FALSE(second_info.wal_tail_truncated);
  ExpectSameState(Capture(second.matcher()), first_state, "second recovery");
  ASSERT_TRUE(Resume(second, refs, 8).ok());
  ExpectSameState(Capture(second.matcher()), reference, "after resume");
}

TEST(WalEdgeCases, StartRefusesExistingStateAndRecoverNeedsSome) {
  const auto dataset = MakeSmallBib(907);
  const mln::MlnMatcher matcher(*dataset);
  const StreamingOptions options;
  const std::string dir = ScratchDir("guards");

  PersistentStreamingMatcher empty(matcher, options, {dir, 0, nullptr});
  const Status nothing = empty.Recover();
  EXPECT_EQ(nothing.code(), StatusCode::kNotFound);
  ASSERT_TRUE(empty.Start().ok());

  PersistentStreamingMatcher second(matcher, options, {dir, 0, nullptr});
  const Status refused = second.Start();
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(second.Recover().ok());
}

}  // namespace
}  // namespace cem
