#include <vector>

#include <gtest/gtest.h>

#include "graph/connected_components.h"
#include "graph/max_flow.h"
#include "util/random.h"

namespace cem::graph {
namespace {

TEST(MaxFlowTest, SingleEdge) {
  MaxFlow f(2);
  f.AddEdge(0, 1, 5.0);
  EXPECT_DOUBLE_EQ(f.Solve(0, 1), 5.0);
}

TEST(MaxFlowTest, SeriesBottleneck) {
  MaxFlow f(3);
  f.AddEdge(0, 1, 5.0);
  f.AddEdge(1, 2, 3.0);
  EXPECT_DOUBLE_EQ(f.Solve(0, 2), 3.0);
}

TEST(MaxFlowTest, ParallelPathsAdd) {
  MaxFlow f(4);
  f.AddEdge(0, 1, 2.0);
  f.AddEdge(1, 3, 2.0);
  f.AddEdge(0, 2, 3.0);
  f.AddEdge(2, 3, 3.0);
  EXPECT_DOUBLE_EQ(f.Solve(0, 3), 5.0);
}

TEST(MaxFlowTest, ClassicDiamondWithCrossEdge) {
  // Textbook instance whose answer requires using the cross edge.
  MaxFlow f(4);
  f.AddEdge(0, 1, 10.0);
  f.AddEdge(0, 2, 10.0);
  f.AddEdge(1, 2, 1.0);
  f.AddEdge(1, 3, 8.0);
  f.AddEdge(2, 3, 10.0);
  EXPECT_DOUBLE_EQ(f.Solve(0, 3), 18.0);
}

TEST(MaxFlowTest, DisconnectedSinkGivesZero) {
  MaxFlow f(3);
  f.AddEdge(0, 1, 4.0);
  EXPECT_DOUBLE_EQ(f.Solve(0, 2), 0.0);
}

TEST(MaxFlowTest, MinCutSidesPartitionNodes) {
  MaxFlow f(4);
  f.AddEdge(0, 1, 1.0);
  f.AddEdge(1, 2, 2.0);
  f.AddEdge(2, 3, 3.0);
  f.Solve(0, 3);
  const std::vector<bool> source_side = f.SourceSideMinCut();
  const std::vector<bool> max_side = f.SinkUnreachableSet();
  EXPECT_TRUE(source_side[0]);
  EXPECT_FALSE(source_side[3]);
  EXPECT_TRUE(max_side[0]);
  EXPECT_FALSE(max_side[3]);
  // The minimal source side is contained in the maximal one.
  for (int v = 0; v < 4; ++v) {
    if (source_side[v]) {
      EXPECT_TRUE(max_side[v]);
    }
  }
}

TEST(MaxFlowTest, MaximalCutStrictlyLargerOnTies) {
  // Node 1 sits between two equal capacities: both cuts are minimal, so 1
  // is outside the minimal source side but inside the maximal one.
  MaxFlow f(3);
  f.AddEdge(0, 1, 2.0);
  f.AddEdge(1, 2, 2.0);
  f.Solve(0, 2);
  EXPECT_FALSE(f.SourceSideMinCut()[1]);
  EXPECT_TRUE(f.SinkUnreachableSet()[1]);
}

TEST(MaxFlowTest, UndirectedEdgeViaReverseCapacity) {
  MaxFlow f(4);
  f.AddEdge(0, 1, 3.0);
  f.AddEdge(1, 2, 2.0, 2.0);  // Undirected middle edge.
  f.AddEdge(2, 3, 3.0);
  EXPECT_DOUBLE_EQ(f.Solve(0, 3), 2.0);
}

// Randomised cross-check: max flow equals brute-force min cut.
TEST(MaxFlowTest, AgreesWithBruteForceMinCutOnRandomGraphs) {
  Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 2 + static_cast<int>(rng.NextBounded(5));  // 2..6 nodes
    std::vector<std::vector<double>> cap(n, std::vector<double>(n, 0.0));
    MaxFlow f(n);
    for (int u = 0; u < n; ++u) {
      for (int v = 0; v < n; ++v) {
        if (u == v) continue;
        if (rng.NextBernoulli(0.5)) {
          const double c = static_cast<double>(rng.NextBounded(8));
          cap[u][v] = c;
          if (c > 0) f.AddEdge(u, v, c);
        }
      }
    }
    const int source = 0, sink = n - 1;
    const double flow = f.Solve(source, sink);
    // Brute-force min cut over all subsets containing source, not sink.
    double best = 1e18;
    for (int mask = 0; mask < (1 << n); ++mask) {
      if (!(mask & (1 << source)) || (mask & (1 << sink))) continue;
      double cut = 0;
      for (int u = 0; u < n; ++u) {
        for (int v = 0; v < n; ++v) {
          if ((mask & (1 << u)) && !(mask & (1 << v))) cut += cap[u][v];
        }
      }
      best = std::min(best, cut);
    }
    EXPECT_NEAR(flow, best, 1e-9) << "trial " << trial;
  }
}

// -------------------------------------------------- ConnectedComponents --

TEST(ConnectedComponentsTest, NoEdgesAllSingletons) {
  auto components = ConnectedComponents(3, {});
  ASSERT_EQ(components.size(), 3u);
  EXPECT_EQ(components[0], (std::vector<uint32_t>{0}));
}

TEST(ConnectedComponentsTest, ChainIsOneComponent) {
  auto components = ConnectedComponents(4, {{0, 1}, {1, 2}, {2, 3}});
  ASSERT_EQ(components.size(), 1u);
  EXPECT_EQ(components[0], (std::vector<uint32_t>{0, 1, 2, 3}));
}

TEST(ConnectedComponentsTest, TwoComponentsOrdered) {
  auto components = ConnectedComponents(5, {{3, 4}, {0, 2}});
  ASSERT_EQ(components.size(), 3u);
  EXPECT_EQ(components[0], (std::vector<uint32_t>{0, 2}));
  EXPECT_EQ(components[1], (std::vector<uint32_t>{1}));
  EXPECT_EQ(components[2], (std::vector<uint32_t>{3, 4}));
}

}  // namespace
}  // namespace cem::graph
