#include <cstdio>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "data/bib_generator.h"
#include "data/dataset.h"
#include "data/entity.h"
#include "data/figure1.h"
#include "data/tsv_io.h"

namespace cem::data {
namespace {

// ----------------------------------------------------------- EntityPair --

TEST(EntityPairTest, NormalisesOrder) {
  EntityPair p(7, 3);
  EXPECT_EQ(p.a, 3u);
  EXPECT_EQ(p.b, 7u);
  EXPECT_EQ(p, EntityPair(3, 7));
}

TEST(EntityPairTest, KeyRoundTrip) {
  EntityPair p(123456, 789012);
  EXPECT_EQ(PairFromKey(PairKey(p)), p);
}

// -------------------------------------------------------------- Relation --

TEST(RelationTest, SymmetricStoresBothDirections) {
  Relation r("Coauthor", /*symmetric=*/true);
  r.Add(1, 2);
  r.Finalize();
  EXPECT_TRUE(r.Contains(1, 2));
  EXPECT_TRUE(r.Contains(2, 1));
}

TEST(RelationTest, AsymmetricStoresOneDirection) {
  Relation r("Cites", /*symmetric=*/false);
  r.Add(1, 2);
  r.Finalize();
  EXPECT_TRUE(r.Contains(1, 2));
  EXPECT_FALSE(r.Contains(2, 1));
}

TEST(RelationTest, DeduplicatesAndSorts) {
  Relation r("R", false);
  r.Add(0, 5);
  r.Add(0, 3);
  r.Add(0, 5);
  r.Finalize();
  EXPECT_EQ(r.Neighbors(0), (std::vector<EntityId>{3, 5}));
  EXPECT_EQ(r.num_tuples(), 2u);
}

TEST(RelationTest, SelfTuplesIgnored) {
  Relation r("R", true);
  r.Add(4, 4);
  r.Finalize();
  EXPECT_TRUE(r.Neighbors(4).empty());
}

TEST(RelationTest, OutOfRangeNeighborsEmpty) {
  Relation r("R", false);
  r.Finalize();
  EXPECT_TRUE(r.Neighbors(1000).empty());
}

// --------------------------------------------------------------- Dataset --

class SmallDatasetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Two papers: (r0, r1) and (r1, r2). Coauthor: r0-r1, r1-r2.
    r0_ = d_.AddAuthorRef("John", "Smith", 0);
    r1_ = d_.AddAuthorRef("Mary", "Jones", 1);
    r2_ = d_.AddAuthorRef("J.", "Smith", 0);
    p0_ = d_.AddPaper("paper zero", 2001, 100);
    p1_ = d_.AddPaper("paper one", 2002, 101);
    d_.AddAuthored(r0_, p0_);
    d_.AddAuthored(r1_, p0_);
    d_.AddAuthored(r1_, p1_);
    d_.AddAuthored(r2_, p1_);
    d_.AddCites(p1_, p0_);
    d_.Finalize();
  }

  Dataset d_;
  EntityId r0_, r1_, r2_, p0_, p1_;
};

TEST_F(SmallDatasetTest, CoauthorDerivedFromAuthored) {
  EXPECT_EQ(d_.Coauthors(r0_), (std::vector<EntityId>{r1_}));
  EXPECT_EQ(d_.Coauthors(r1_), (std::vector<EntityId>{r0_, r2_}));
  EXPECT_TRUE(d_.coauthor().Contains(r2_, r1_));
  EXPECT_FALSE(d_.coauthor().Contains(r0_, r2_));
}

TEST_F(SmallDatasetTest, CandidatePairsFindSimilarNames) {
  d_.BuildCandidatePairs();
  // r0 ("John Smith") and r2 ("J. Smith") must be candidates; r1 is not
  // similar to either.
  ASSERT_EQ(d_.num_candidate_pairs(), 1u);
  EXPECT_EQ(d_.candidate_pair(0).pair, EntityPair(r0_, r2_));
  EXPECT_NE(d_.candidate_pair(0).level, text::SimilarityLevel::kNone);
  EXPECT_TRUE(d_.FindCandidatePair(r0_, r2_).has_value());
  EXPECT_TRUE(d_.FindCandidatePair(r2_, r0_).has_value());
  EXPECT_FALSE(d_.FindCandidatePair(r0_, r1_).has_value());
}

TEST_F(SmallDatasetTest, PairsOfEntityIndex) {
  d_.BuildCandidatePairs();
  EXPECT_EQ(d_.PairsOfEntity(r0_).size(), 1u);
  EXPECT_EQ(d_.PairsOfEntity(r1_).size(), 0u);
  EXPECT_EQ(d_.PairsOfEntity(r2_).size(), 1u);
}

TEST_F(SmallDatasetTest, GroundTruth) {
  EXPECT_TRUE(d_.IsTrueMatch(EntityPair(r0_, r2_)));
  EXPECT_FALSE(d_.IsTrueMatch(EntityPair(r0_, r1_)));
  EXPECT_EQ(d_.CountTrueMatches(), 1u);
}

TEST_F(SmallDatasetTest, TruthIgnoresUnlabelled) {
  Dataset d;
  EntityId a = d.AddAuthorRef("A", "B");  // kNoTruth
  EntityId b = d.AddAuthorRef("A", "B");
  d.Finalize();
  EXPECT_FALSE(d.IsTrueMatch(EntityPair(a, b)));
  EXPECT_EQ(d.CountTrueMatches(), 0u);
}

TEST(DatasetTest, ManualCandidatePairsDeduplicate) {
  Dataset d;
  EntityId a = d.AddAuthorRef("x", "y", 0);
  EntityId b = d.AddAuthorRef("x", "y", 0);
  d.Finalize();
  d.AddCandidatePair(a, b, text::SimilarityLevel::kHigh);
  d.AddCandidatePair(b, a, text::SimilarityLevel::kHigh);
  d.FinalizeCandidatePairs();
  EXPECT_EQ(d.num_candidate_pairs(), 1u);
}

// ---------------------------------------------------------- BibGenerator --

TEST(BibGeneratorTest, DeterministicForSeed) {
  const BibConfig config = BibConfig::DblpLike(0.2);
  auto d1 = GenerateBibDataset(config);
  auto d2 = GenerateBibDataset(config);
  ASSERT_EQ(d1->num_entities(), d2->num_entities());
  ASSERT_EQ(d1->num_candidate_pairs(), d2->num_candidate_pairs());
  for (size_t i = 0; i < d1->num_entities(); ++i) {
    EXPECT_EQ(d1->entity(i).first_name, d2->entity(i).first_name);
    EXPECT_EQ(d1->entity(i).last_name, d2->entity(i).last_name);
  }
}

TEST(BibGeneratorTest, ProducesLabelledRefsAndRelations) {
  auto d = GenerateBibDataset(BibConfig::DblpLike(0.3));
  EXPECT_GT(d->author_refs().size(), 100u);
  EXPECT_GT(d->num_candidate_pairs(), 40u);
  EXPECT_GT(d->CountTrueMatches(), 20u);
  size_t with_coauthors = 0;
  for (EntityId ref : d->author_refs()) {
    EXPECT_NE(d->entity(ref).truth, kNoTruth);
    with_coauthors += d->Coauthors(ref).empty() ? 0 : 1;
  }
  // Most references share their paper with someone.
  EXPECT_GT(with_coauthors, d->author_refs().size() / 2);
}

TEST(BibGeneratorTest, HepthAbbreviatesDblpDoesNot) {
  auto hepth = GenerateBibDataset(BibConfig::HepthLike(0.2));
  auto dblp = GenerateBibDataset(BibConfig::DblpLike(0.2));
  auto abbreviation_rate = [](const Dataset& d) {
    size_t abbreviated = 0;
    for (EntityId ref : d.author_refs()) {
      const std::string& f = d.entity(ref).first_name;
      if (f.size() == 2 && f[1] == '.') ++abbreviated;
    }
    return static_cast<double>(abbreviated) / d.author_refs().size();
  };
  EXPECT_GT(abbreviation_rate(*hepth), 0.25);
  EXPECT_LT(abbreviation_rate(*dblp), 0.05);
}

TEST(BibGeneratorTest, NoiseModelAbbreviation) {
  BibConfig config;
  config.abbreviate_prob = 1.0;
  config.mutate_prob = 0.0;
  Rng rng(1);
  const RenderedName n = RenderNoisyName(config, "Johannes", "Kepler", rng);
  EXPECT_EQ(n.first, "J.");
  EXPECT_EQ(n.last, "Kepler");
}

TEST(BibGeneratorTest, NoiseModelMutationChangesOneField) {
  BibConfig config;
  config.abbreviate_prob = 0.0;
  config.mutate_prob = 1.0;
  Rng rng(2);
  int changed = 0;
  for (int i = 0; i < 50; ++i) {
    const RenderedName n = RenderNoisyName(config, "Johannes", "Kepler", rng);
    changed += (n.first != "Johannes" || n.last != "Kepler") ? 1 : 0;
  }
  // A mutation can be a no-op substitution of the same letter, but mostly
  // it changes the name.
  EXPECT_GT(changed, 40);
}

// --------------------------------------------------------------- Figure1 --

TEST(Figure1Test, StructureMatchesThePaper) {
  Figure1 fig = MakeFigure1();
  const Dataset& d = *fig.dataset;
  // Coauthor edges of Figure 1.
  EXPECT_TRUE(d.coauthor().Contains(fig.a1, fig.b2));
  EXPECT_TRUE(d.coauthor().Contains(fig.a2, fig.b3));
  EXPECT_TRUE(d.coauthor().Contains(fig.b1, fig.c1));
  EXPECT_TRUE(d.coauthor().Contains(fig.b2, fig.c2));
  EXPECT_TRUE(d.coauthor().Contains(fig.b3, fig.c3));
  EXPECT_TRUE(d.coauthor().Contains(fig.c1, fig.d1));
  EXPECT_TRUE(d.coauthor().Contains(fig.c2, fig.d1));
  EXPECT_FALSE(d.coauthor().Contains(fig.a1, fig.c1));
  // Similar within letter groups: 1 + 3 + 3 pairs.
  EXPECT_EQ(d.num_candidate_pairs(), 7u);
  // Three neighborhoods.
  EXPECT_EQ(fig.neighborhoods.size(), 3u);
}

// ----------------------------------------------------------------- TSV IO --

TEST(TsvIoTest, RoundTrip) {
  Figure1 fig = MakeFigure1();
  const std::string path = ::testing::TempDir() + "/figure1.tsv";
  ASSERT_TRUE(SaveDatasetTsv(*fig.dataset, path).ok());
  auto loaded = LoadDatasetTsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const Dataset& d = **loaded;
  ASSERT_EQ(d.num_entities(), fig.dataset->num_entities());
  for (size_t i = 0; i < d.num_entities(); ++i) {
    EXPECT_EQ(d.entity(i).type, fig.dataset->entity(i).type);
    EXPECT_EQ(d.entity(i).truth, fig.dataset->entity(i).truth);
    EXPECT_EQ(d.entity(i).first_name, fig.dataset->entity(i).first_name);
  }
  EXPECT_TRUE(d.coauthor().Contains(fig.c2, fig.d1));
  std::remove(path.c_str());
}

TEST(TsvIoTest, MissingFileIsError) {
  auto result = LoadDatasetTsv("/nonexistent/path/x.tsv");
  EXPECT_FALSE(result.ok());
}

TEST(TsvIoTest, MalformedLineIsError) {
  const std::string path = ::testing::TempDir() + "/bad.tsv";
  FILE* f = fopen(path.c_str(), "w");
  fputs("Z\t1\t2\n", f);
  fclose(f);
  auto result = LoadDatasetTsv(path);
  EXPECT_FALSE(result.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cem::data
