// Unit tests for the MinHash/LSH blocking subsystem: signature
// determinism, Jaccard-estimate accuracy, collision-probability
// monotonicity, and banding determinism.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "blocking/lsh_index.h"
#include "blocking/minhash.h"
#include "util/execution_context.h"

namespace cem {
namespace {

using blocking::LshIndex;
using blocking::LshParams;
using blocking::MinHasher;
using blocking::MinHashOptions;

std::vector<std::string> Tokens(int start, int count) {
  std::vector<std::string> out;
  for (int i = 0; i < count; ++i) {
    out.push_back("tok" + std::to_string(start + i));
  }
  return out;
}

TEST(MinHash, SignatureIsDeterministicAcrossInstances) {
  const MinHasher a, b;
  const std::vector<std::string> tokens = Tokens(0, 12);
  EXPECT_EQ(a.Signature(tokens), b.Signature(tokens));
}

TEST(MinHash, SignatureHasSetSemantics) {
  const MinHasher hasher;
  std::vector<std::string> tokens = Tokens(0, 8);
  std::vector<std::string> with_dupes = tokens;
  with_dupes.insert(with_dupes.end(), tokens.begin(), tokens.end());
  EXPECT_EQ(hasher.Signature(tokens), hasher.Signature(with_dupes));
}

TEST(MinHash, DifferentSeedsGiveDifferentSignatures) {
  MinHashOptions other;
  other.seed = 99;
  const MinHasher a, b(other);
  const std::vector<std::string> tokens = Tokens(0, 12);
  EXPECT_NE(a.Signature(tokens), b.Signature(tokens));
}

TEST(MinHash, EmptyTokenSetGetsEmptySlots) {
  const MinHasher hasher;
  const std::vector<uint64_t> signature = hasher.Signature({});
  for (uint64_t component : signature) {
    EXPECT_EQ(component, MinHasher::kEmptySlot);
  }
}

TEST(MinHash, EstimateTracksTrueJaccard) {
  MinHashOptions options;
  options.num_hashes = 512;  // stddev ~= sqrt(s(1-s)/512) < 0.023
  const MinHasher hasher(options);
  // |A| = |B| = 30, |A ∩ B| = 15 -> J = 15/45 = 1/3.
  const std::vector<std::string> a = Tokens(0, 30);
  const std::vector<std::string> b = Tokens(15, 30);
  const double estimate =
      MinHasher::EstimateJaccard(hasher.Signature(a), hasher.Signature(b));
  EXPECT_NEAR(estimate, 1.0 / 3.0, 0.1);
  EXPECT_DOUBLE_EQ(
      MinHasher::EstimateJaccard(hasher.Signature(a), hasher.Signature(a)),
      1.0);
}

TEST(MinHash, ComponentAgreementIsMonotoneInOverlap) {
  // The empirical side of the collision-probability law: more overlapping
  // token sets agree on more signature components.
  MinHashOptions options;
  options.num_hashes = 256;
  const MinHasher hasher(options);
  const std::vector<uint64_t> base = hasher.Signature(Tokens(0, 20));
  double previous = 1.1;
  for (int shift : {2, 6, 12}) {  // Jaccard 18/22 > 14/26 > 8/32.
    const double estimate = MinHasher::EstimateJaccard(
        base, hasher.Signature(Tokens(shift, 20)));
    EXPECT_LT(estimate, previous) << "shift " << shift;
    previous = estimate;
  }
}

TEST(LshIndex, CollisionProbabilityIsMonotoneInJaccard) {
  for (const LshParams params : {LshParams{32, 2}, LshParams{16, 4}}) {
    double previous = -1.0;
    for (double s = 0.0; s <= 1.0; s += 0.05) {
      const double p =
          LshIndex::CollisionProbability(s, params.bands, params.rows);
      EXPECT_GE(p, previous);
      previous = p;
    }
  }
}

TEST(LshIndex, CollisionProbabilityBoundaries) {
  EXPECT_DOUBLE_EQ(LshIndex::CollisionProbability(0.0, 32, 2), 0.0);
  EXPECT_DOUBLE_EQ(LshIndex::CollisionProbability(1.0, 32, 2), 1.0);
  // More bands catch more; more rows per band catch fewer.
  EXPECT_GT(LshIndex::CollisionProbability(0.4, 32, 2),
            LshIndex::CollisionProbability(0.4, 16, 2));
  EXPECT_LT(LshIndex::CollisionProbability(0.4, 32, 4),
            LshIndex::CollisionProbability(0.4, 32, 2));
}

TEST(LshIndex, BandingIsDeterministic) {
  const MinHasher hasher;
  const LshParams params{16, 4};
  LshIndex first(params, hasher.num_hashes());
  LshIndex second(params, hasher.num_hashes());
  for (uint32_t doc = 0; doc < 24; ++doc) {
    const auto signature = hasher.Signature(Tokens(doc % 7, 10));
    first.AddDocument(doc, signature);
    second.AddDocument(doc, signature);
  }
  EXPECT_EQ(first.num_buckets(), second.num_buckets());
  EXPECT_EQ(first.TotalBucketPairs(), second.TotalBucketPairs());
  for (uint32_t doc = 0; doc < 24; ++doc) {
    EXPECT_EQ(first.Candidates(doc), second.Candidates(doc)) << "doc " << doc;
  }
}

TEST(LshIndex, IdenticalSignaturesAlwaysCollide) {
  const MinHasher hasher;
  LshIndex index(LshParams{32, 2}, hasher.num_hashes());
  const auto signature = hasher.Signature(Tokens(0, 10));
  index.AddDocument(0, signature);
  index.AddDocument(1, signature);
  EXPECT_EQ(index.Candidates(0), std::vector<uint32_t>{1});
  EXPECT_EQ(index.Candidates(1), std::vector<uint32_t>{0});
}

TEST(LshIndex, SizeTracksIncrementalAdds) {
  // The streaming layer assigns arrival slots from size(); it must be an
  // O(1) running document count, not something inferred from buckets.
  const MinHasher hasher;
  LshIndex index(LshParams{32, 2}, hasher.num_hashes());
  EXPECT_TRUE(index.empty());
  EXPECT_EQ(index.size(), 0u);
  for (uint32_t doc = 0; doc < 17; ++doc) {
    index.AddDocument(doc, hasher.Signature(Tokens(doc % 5, 8)));
    EXPECT_EQ(index.size(), doc + 1u);
    EXPECT_EQ(index.size(), index.num_documents());
    EXPECT_FALSE(index.empty());
  }
}

TEST(LshIndex, CandidatesAreSymmetricSortedAndSelfFree) {
  const MinHasher hasher;
  LshIndex index(LshParams{32, 2}, hasher.num_hashes());
  constexpr uint32_t kDocs = 40;
  for (uint32_t doc = 0; doc < kDocs; ++doc) {
    index.AddDocument(doc, hasher.Signature(Tokens(doc % 9, 12)));
  }
  for (uint32_t doc = 0; doc < kDocs; ++doc) {
    const std::vector<uint32_t> candidates = index.Candidates(doc);
    EXPECT_TRUE(std::is_sorted(candidates.begin(), candidates.end()));
    for (uint32_t other : candidates) {
      EXPECT_NE(other, doc);
      const std::vector<uint32_t> back = index.Candidates(other);
      EXPECT_TRUE(std::binary_search(back.begin(), back.end(), doc))
          << doc << " -> " << other;
    }
  }
}

TEST(LshIndex, DisjointTokenSetsRarelyCollide) {
  const MinHasher hasher;
  LshIndex index(LshParams{32, 2}, hasher.num_hashes());
  index.AddDocument(0, hasher.Signature(Tokens(0, 10)));
  index.AddDocument(1, hasher.Signature(Tokens(100, 10)));
  EXPECT_TRUE(index.Candidates(0).empty());
}

TEST(LshIndex, ShardCountNeverChangesTheIndex) {
  // Sharding partitions the bucket space for parallel ownership; it must be
  // invisible in every observable: candidates, bucket counts, work metric.
  const MinHasher hasher;
  const LshParams params{32, 2};
  LshIndex reference(params, hasher.num_hashes());  // 1 shard.
  std::vector<LshIndex> sharded;
  for (uint32_t shards : {2u, 7u, 64u}) {
    sharded.emplace_back(params, hasher.num_hashes(), shards);
  }
  constexpr uint32_t kDocs = 60;
  for (uint32_t doc = 0; doc < kDocs; ++doc) {
    const auto signature = hasher.Signature(Tokens(doc % 11, 12));
    reference.AddDocument(doc, signature);
    for (LshIndex& index : sharded) index.AddDocument(doc, signature);
  }
  for (const LshIndex& index : sharded) {
    EXPECT_EQ(index.num_buckets(), reference.num_buckets());
    EXPECT_EQ(index.TotalBucketPairs(), reference.TotalBucketPairs());
    for (uint32_t doc = 0; doc < kDocs; ++doc) {
      EXPECT_EQ(index.Candidates(doc), reference.Candidates(doc))
          << index.num_shards() << " shards, doc " << doc;
    }
  }
}

TEST(LshIndex, ParallelBulkAddMatchesSerialAdds) {
  const MinHasher hasher;
  const LshParams params{16, 4};
  constexpr uint32_t kDocs = 80;
  std::vector<std::vector<uint64_t>> signatures;
  for (uint32_t doc = 0; doc < kDocs; ++doc) {
    signatures.push_back(hasher.Signature(Tokens(doc % 13, 10)));
  }
  LshIndex serial(params, hasher.num_hashes());
  for (uint32_t doc = 0; doc < kDocs; ++doc) {
    serial.AddDocument(doc, signatures[doc]);
  }
  for (uint32_t threads : {1u, 4u}) {
    for (uint32_t shards : {1u, 8u}) {
      ExecutionContext ctx(threads, shards);
      LshIndex bulk(params, hasher.num_hashes(), shards);
      bulk.AddDocuments(signatures, ctx);
      EXPECT_EQ(bulk.num_documents(), serial.num_documents());
      EXPECT_EQ(bulk.num_buckets(), serial.num_buckets());
      EXPECT_EQ(bulk.TotalBucketPairs(), serial.TotalBucketPairs());
      for (uint32_t doc = 0; doc < kDocs; ++doc) {
        EXPECT_EQ(bulk.Candidates(doc), serial.Candidates(doc))
            << threads << " threads, " << shards << " shards, doc " << doc;
      }
    }
  }
}

TEST(MinHash, SignatureBatchMatchesSequentialSignatures) {
  const MinHasher hasher;
  std::vector<std::vector<std::string>> token_sets;
  for (int doc = 0; doc < 50; ++doc) {
    token_sets.push_back(Tokens(doc % 17, 3 + doc % 9));
  }
  for (uint32_t threads : {1u, 4u}) {
    ExecutionContext ctx(threads);
    const auto batch = hasher.SignatureBatch(token_sets, ctx);
    ASSERT_EQ(batch.size(), token_sets.size());
    for (size_t i = 0; i < token_sets.size(); ++i) {
      EXPECT_EQ(batch[i], hasher.Signature(token_sets[i])) << "doc " << i;
    }
  }
}

}  // namespace
}  // namespace cem
