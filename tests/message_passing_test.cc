#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/cover.h"
#include "core/match_set.h"
#include "core/maximal_message.h"
#include "core/message_passing.h"
#include "data/figure1.h"
#include "mln/mln_matcher.h"

namespace cem::core {
namespace {

using data::EntityId;
using data::EntityPair;

class Figure1Mp : public ::testing::Test {
 protected:
  Figure1Mp()
      : fig_(data::MakeFigure1()),
        matcher_(*fig_.dataset, mln::MlnWeights::Figure1Demo()) {
    for (const auto& n : fig_.neighborhoods) cover_.Add(n);
  }

  EntityPair P(EntityId a, EntityId b) const { return EntityPair(a, b); }

  data::Figure1 fig_;
  mln::MlnMatcher matcher_;
  Cover cover_;
};

// ------------------------------------------------------------- MatchSet --

TEST(MatchSetTest, InsertContainsErase) {
  MatchSet s;
  EXPECT_TRUE(s.Insert(EntityPair(1, 2)));
  EXPECT_FALSE(s.Insert(EntityPair(2, 1)));  // Normalised duplicate.
  EXPECT_TRUE(s.Contains(EntityPair(2, 1)));
  EXPECT_TRUE(s.Erase(EntityPair(1, 2)));
  EXPECT_TRUE(s.empty());
}

TEST(MatchSetTest, SetAlgebra) {
  MatchSet a({EntityPair(1, 2), EntityPair(3, 4)});
  MatchSet b({EntityPair(3, 4), EntityPair(5, 6)});
  EXPECT_EQ(a.IntersectionSize(b), 1u);
  EXPECT_EQ(a.Difference(b), (std::vector<EntityPair>{EntityPair(1, 2)}));
  MatchSet c = a;
  EXPECT_EQ(c.InsertAll(b), 1u);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_TRUE(a.IsSubsetOf(c));
  EXPECT_FALSE(c.IsSubsetOf(a));
}

TEST(MatchSetTest, TransitiveClosureCompletesComponents) {
  MatchSet s({EntityPair(1, 2), EntityPair(2, 3), EntityPair(7, 8)});
  MatchSet closed = TransitiveClosure(s);
  EXPECT_TRUE(closed.Contains(EntityPair(1, 3)));
  EXPECT_TRUE(closed.Contains(EntityPair(7, 8)));
  EXPECT_EQ(closed.size(), 4u);
}

TEST(MatchSetTest, TransitiveClosureOfClosedSetIsIdentity) {
  MatchSet s({EntityPair(1, 2), EntityPair(2, 3), EntityPair(1, 3)});
  EXPECT_EQ(TransitiveClosure(s), s);
}

// ----------------------------------------------------------------- NO-MP --

TEST_F(Figure1Mp, NoMpFindsOnlyC1C2) {
  // Section 2.2: separate runs produce exactly {(c1,c2)}.
  const MpResult result = RunNoMp(matcher_, cover_);
  EXPECT_EQ(result.matches.SortedPairs(),
            (std::vector<EntityPair>{P(fig_.c1, fig_.c2)}));
  EXPECT_EQ(result.neighborhood_evaluations, 3u);
}

// ------------------------------------------------------------------- SMP --

TEST_F(Figure1Mp, SmpRecoversB1B2ButNotTheChain) {
  // Section 2.2: the simple message Match(c1,c2) from C3 lets C2 match
  // (b1,b2); the chain stays unmatched (the chicken-and-egg problem).
  const MpResult result = RunSmp(matcher_, cover_);
  EXPECT_EQ(result.matches.SortedPairs(),
            (std::vector<EntityPair>{P(fig_.b1, fig_.b2),
                                     P(fig_.c1, fig_.c2)}));
}

TEST_F(Figure1Mp, SmpIsSound) {
  // Theorem 2(2): SMP's output is contained in the full run E(E).
  const MatchSet full = matcher_.MatchAll();
  const MpResult result = RunSmp(matcher_, cover_);
  EXPECT_TRUE(result.matches.IsSubsetOf(full));
}

TEST_F(Figure1Mp, SmpIsOrderInvariant) {
  // Theorem 2(3): consistency. Try all 6 processing orders.
  std::vector<uint32_t> order = {0, 1, 2};
  const MatchSet reference = RunSmp(matcher_, cover_).matches;
  do {
    MpOptions options;
    options.initial_order = order;
    EXPECT_EQ(RunSmp(matcher_, cover_, options).matches, reference);
  } while (std::next_permutation(order.begin(), order.end()));
}

// -------------------------------------------------------- ComputeMaximal --

TEST_F(Figure1Mp, MaximalMessagesOfC1) {
  // C1 = {a1,a2,b2,b3}: pairs (a1,a2) and (b2,b3) entail each other.
  const auto messages = ComputeMaximal(matcher_, fig_.neighborhoods[0],
                                       MatchSet(), MatchSet());
  ASSERT_EQ(messages.size(), 1u);
  std::vector<EntityPair> sorted = messages[0];
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<EntityPair>{P(fig_.a1, fig_.a2),
                                             P(fig_.b2, fig_.b3)}));
}

TEST_F(Figure1Mp, MaximalMessagesOfC2) {
  // C2 produces {(b1,b2),(c1,c2)}, {(b2,b3),(c2,c3)}, {(b1,b3),(c1,c3)}.
  const auto messages = ComputeMaximal(matcher_, fig_.neighborhoods[1],
                                       MatchSet(), MatchSet());
  EXPECT_EQ(messages.size(), 3u);
  bool found_paper_message = false;
  for (const auto& m : messages) {
    std::vector<EntityPair> sorted = m;
    std::sort(sorted.begin(), sorted.end());
    if (sorted == std::vector<EntityPair>{P(fig_.b2, fig_.b3),
                                          P(fig_.c2, fig_.c3)}) {
      found_paper_message = true;
    }
  }
  EXPECT_TRUE(found_paper_message)
      << "C2 must generate the paper's maximal message {(b2,b3),(c2,c3)}";
}

TEST_F(Figure1Mp, MatchedPairsAreNotHypotheses) {
  // Once (c1,c2) is evidence, C3 has no unresolved pair -> no messages.
  MatchSet evidence;
  evidence.Insert(P(fig_.c1, fig_.c2));
  const auto messages = ComputeMaximal(matcher_, fig_.neighborhoods[2],
                                       evidence, MatchSet());
  EXPECT_TRUE(messages.empty());
}

TEST_F(Figure1Mp, MaximalMessagesSatisfyDefinition) {
  // Definition 8 against the full run: every message is entirely inside
  // E(E) or disjoint from it.
  const MatchSet full = matcher_.MatchAll();
  for (size_t n = 0; n < cover_.size(); ++n) {
    for (const auto& m : ComputeMaximal(matcher_, cover_.neighborhood(n).entities,
                                        MatchSet(), MatchSet())) {
      size_t inside = 0;
      for (const EntityPair& p : m) inside += full.Contains(p) ? 1 : 0;
      EXPECT_TRUE(inside == 0 || inside == m.size())
          << "message violates Definition 8";
    }
  }
}

// ---------------------------------------------------- MaximalMessageSet --

TEST(MaximalMessageSetTest, DisjointMessagesStaySeparate) {
  MaximalMessageSet set;
  set.Insert({EntityPair(1, 2), EntityPair(3, 4)});
  set.Insert({EntityPair(5, 6)});
  EXPECT_EQ(set.num_live(), 2u);
}

TEST(MaximalMessageSetTest, OverlappingMessagesMerge) {
  // Proposition 3(ii) / the (T ∪ TC)* step: overlap on (3,4) merges.
  MaximalMessageSet set;
  set.Insert({EntityPair(1, 2), EntityPair(3, 4)});
  const uint32_t id = set.Insert({EntityPair(3, 4), EntityPair(5, 6)});
  EXPECT_EQ(set.num_live(), 1u);
  EXPECT_EQ(set.Message(id).size(), 3u);
}

TEST(MaximalMessageSetTest, ChainMergeAcrossThreeMessages) {
  MaximalMessageSet set;
  set.Insert({EntityPair(1, 2), EntityPair(3, 4)});
  set.Insert({EntityPair(5, 6), EntityPair(7, 8)});
  // Bridges both existing messages.
  const uint32_t id = set.Insert({EntityPair(3, 4), EntityPair(5, 6)});
  EXPECT_EQ(set.num_live(), 1u);
  EXPECT_EQ(set.Message(id).size(), 4u);
}

TEST(MaximalMessageSetTest, FindIntersectingAndRemove) {
  MaximalMessageSet set;
  const uint32_t id = set.Insert({EntityPair(1, 2), EntityPair(3, 4)});
  MatchSet probe;
  probe.Insert(EntityPair(3, 4));
  EXPECT_EQ(set.FindIntersecting(probe), (std::vector<uint32_t>{id}));
  set.RemoveMessage(id);
  EXPECT_EQ(set.num_live(), 0u);
  EXPECT_TRUE(set.FindIntersecting(probe).empty());
}

// ------------------------------------------------------------------- MMP --

TEST_F(Figure1Mp, MmpRecoversEverythingIncludingTheChain) {
  // Section 2.2 finale: MMP combines C1's and C2's maximal messages and
  // completes the chain — output equals the full holistic run.
  const MpResult result = RunMmp(matcher_, cover_);
  EXPECT_EQ(result.matches, matcher_.MatchAll());
  EXPECT_EQ(result.matches.size(), 5u);
  EXPECT_GT(result.messages_created, 0u);
  EXPECT_GT(result.messages_promoted, 0u);
}

TEST_F(Figure1Mp, MmpIsSound) {
  const MatchSet full = matcher_.MatchAll();
  EXPECT_TRUE(RunMmp(matcher_, cover_).matches.IsSubsetOf(full));
}

TEST_F(Figure1Mp, MmpIsOrderInvariant) {
  std::vector<uint32_t> order = {0, 1, 2};
  const MatchSet reference = RunMmp(matcher_, cover_).matches;
  do {
    MpOptions options;
    options.initial_order = order;
    EXPECT_EQ(RunMmp(matcher_, cover_, options).matches, reference);
  } while (std::next_permutation(order.begin(), order.end()));
}

TEST_F(Figure1Mp, MmpDominatesSmpDominatesNoMp) {
  // Monotone improvement NO-MP ⊆ SMP ⊆ MMP on this instance.
  const MatchSet no_mp = RunNoMp(matcher_, cover_).matches;
  const MatchSet smp = RunSmp(matcher_, cover_).matches;
  const MatchSet mmp = RunMmp(matcher_, cover_).matches;
  EXPECT_TRUE(no_mp.IsSubsetOf(smp));
  EXPECT_TRUE(smp.IsSubsetOf(mmp));
  EXPECT_LT(smp.size(), mmp.size());
}

TEST_F(Figure1Mp, MmpWithoutMergeMissesTheChain) {
  // Ablation: without (T ∪ TC)* merging the chain never completes.
  const MpResult result = RunMmpWithoutMerge(matcher_, cover_);
  EXPECT_FALSE(result.matches.Contains(P(fig_.a1, fig_.a2)));
  // But the SMP-level matches still appear.
  EXPECT_TRUE(result.matches.Contains(P(fig_.c1, fig_.c2)));
  EXPECT_TRUE(result.matches.Contains(P(fig_.b1, fig_.b2)));
}

TEST_F(Figure1Mp, NonTotalCoverLosesMatches) {
  // Dropping C2 (so Coauthor(b1,c1) etc. are lost) must cost recall.
  Cover partial;
  partial.Add(fig_.neighborhoods[0]);
  partial.Add(fig_.neighborhoods[2]);
  const MatchSet with_total = RunMmp(matcher_, cover_).matches;
  const MatchSet without = RunMmp(matcher_, partial).matches;
  EXPECT_LT(without.size(), with_total.size());
  EXPECT_FALSE(without.Contains(P(fig_.b1, fig_.b2)));
}

TEST_F(Figure1Mp, EmptyCoverYieldsNothing) {
  Cover empty;
  EXPECT_TRUE(RunSmp(matcher_, empty).matches.empty());
  EXPECT_TRUE(RunMmp(matcher_, empty).matches.empty());
  EXPECT_TRUE(RunNoMp(matcher_, empty).matches.empty());
}

TEST_F(Figure1Mp, SingleNeighborhoodCoverEqualsDirectRun) {
  Cover single;
  std::vector<EntityId> all(fig_.dataset->num_entities());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  single.Add(all);
  EXPECT_EQ(RunSmp(matcher_, single).matches, matcher_.MatchAll());
  EXPECT_EQ(RunMmp(matcher_, single).matches, matcher_.MatchAll());
}

}  // namespace
}  // namespace cem::core
