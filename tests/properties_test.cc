// Property-based verification of the paper's formal framework:
// Definitions 2 (idempotence), 3 (monotonicity), 6 (supermodularity) for the
// shipped matchers, and Theorems 2/4 (soundness, consistency) for SMP/MMP —
// all over randomised instances, covers and evidence.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/match_set.h"
#include "core/message_passing.h"
#include "eval/upper_bound.h"
#include "mln/mln_matcher.h"
#include "rules/rules_matcher.h"
#include "test_util.h"

namespace cem {
namespace {

using core::MatchSet;
using data::EntityId;
using data::EntityPair;
using testing_util::RandomInstance;

/// Draws random evidence sets over the candidate pairs.
void RandomEvidence(RandomInstance& instance, MatchSet* positive,
                    MatchSet* negative) {
  for (const auto& cp : instance.dataset().candidate_pairs()) {
    const double roll = instance.rng().NextDouble();
    if (roll < 0.12) {
      positive->Insert(cp.pair);
    } else if (roll < 0.22) {
      negative->Insert(cp.pair);
    }
  }
}

class MatcherProperty : public ::testing::TestWithParam<uint64_t> {};

// ------------------------------------------------- Idempotence (Def. 2) --

TEST_P(MatcherProperty, MlnIdempotence) {
  RandomInstance instance(GetParam());
  mln::MlnMatcher matcher(instance.dataset(), instance.weights());
  MatchSet positive, negative;
  RandomEvidence(instance, &positive, &negative);
  const auto entities = instance.AllEntities();
  const MatchSet output = matcher.Match(entities, positive, negative);
  // E(E, O, V-) == O.
  EXPECT_EQ(matcher.Match(entities, output, negative), output);
}

TEST_P(MatcherProperty, RulesIdempotence) {
  RandomInstance instance(GetParam());
  rules::RulesConfig config;
  config.transitive_closure = false;  // Closure is a framework post-pass.
  rules::RulesMatcher matcher(instance.dataset(), config);
  MatchSet positive, negative;
  RandomEvidence(instance, &positive, &negative);
  const auto entities = instance.AllEntities();
  const MatchSet output = matcher.Match(entities, positive, negative);
  EXPECT_EQ(matcher.Match(entities, output, negative), output);
}

// ------------------------------------------------ Monotonicity (Def. 3) --

TEST_P(MatcherProperty, MlnMonotoneInEntities) {
  RandomInstance instance(GetParam());
  mln::MlnMatcher matcher(instance.dataset(), instance.weights());
  // Random subset E ⊆ E'.
  std::vector<EntityId> all = instance.AllEntities();
  std::vector<EntityId> subset;
  for (EntityId e : all) {
    if (instance.rng().NextBernoulli(0.6)) subset.push_back(e);
  }
  EXPECT_TRUE(matcher.Match(subset).IsSubsetOf(matcher.Match(all)));
}

TEST_P(MatcherProperty, MlnMonotoneInPositiveEvidence) {
  RandomInstance instance(GetParam());
  mln::MlnMatcher matcher(instance.dataset(), instance.weights());
  MatchSet small, ignored;
  RandomEvidence(instance, &small, &ignored);
  MatchSet large = small;
  for (const auto& cp : instance.dataset().candidate_pairs()) {
    if (instance.rng().NextBernoulli(0.15)) large.Insert(cp.pair);
  }
  const auto entities = instance.AllEntities();
  EXPECT_TRUE(matcher.Match(entities, small)
                  .IsSubsetOf(matcher.Match(entities, large)));
}

TEST_P(MatcherProperty, MlnAntitoneInNegativeEvidence) {
  RandomInstance instance(GetParam());
  mln::MlnMatcher matcher(instance.dataset(), instance.weights());
  MatchSet ignored, small;
  RandomEvidence(instance, &ignored, &small);
  MatchSet large = small;
  for (const auto& cp : instance.dataset().candidate_pairs()) {
    if (instance.rng().NextBernoulli(0.15)) large.Insert(cp.pair);
  }
  const auto entities = instance.AllEntities();
  EXPECT_TRUE(matcher.Match(entities, MatchSet(), large)
                  .IsSubsetOf(matcher.Match(entities, MatchSet(), small)));
}

TEST_P(MatcherProperty, RulesMonotoneInEntitiesAndEvidence) {
  RandomInstance instance(GetParam());
  rules::RulesConfig config;
  config.transitive_closure = false;
  rules::RulesMatcher matcher(instance.dataset(), config);
  std::vector<EntityId> all = instance.AllEntities();
  std::vector<EntityId> subset;
  for (EntityId e : all) {
    if (instance.rng().NextBernoulli(0.6)) subset.push_back(e);
  }
  EXPECT_TRUE(matcher.Match(subset).IsSubsetOf(matcher.Match(all)));

  MatchSet small, ignored;
  RandomEvidence(instance, &small, &ignored);
  MatchSet large = small;
  for (const auto& cp : instance.dataset().candidate_pairs()) {
    if (instance.rng().NextBernoulli(0.15)) large.Insert(cp.pair);
  }
  EXPECT_TRUE(
      matcher.Match(all, small).IsSubsetOf(matcher.Match(all, large)));
}

// --------------------------------------------- Supermodularity (Def. 6) --

TEST_P(MatcherProperty, MlnScoreIsSupermodular) {
  RandomInstance instance(GetParam());
  mln::MlnMatcher matcher(instance.dataset(), instance.weights());
  const auto& pairs = instance.dataset().candidate_pairs();
  if (pairs.size() < 3) return;
  // Random S ⊆ T and p ∉ T: ΔScore(p | T) >= ΔScore(p | S)  (log form of
  // PE(T ∪ p)/PE(T) >= PE(S ∪ p)/PE(S)).
  for (int trial = 0; trial < 20; ++trial) {
    MatchSet s, t;
    for (const auto& cp : pairs) {
      const double roll = instance.rng().NextDouble();
      if (roll < 0.25) {
        s.Insert(cp.pair);
        t.Insert(cp.pair);
      } else if (roll < 0.55) {
        t.Insert(cp.pair);
      }
    }
    const EntityPair p =
        pairs[instance.rng().NextBounded(pairs.size())].pair;
    if (t.Contains(p)) continue;
    const double delta_t = matcher.ScoreDelta(t, {p});
    const double delta_s = matcher.ScoreDelta(s, {p});
    EXPECT_GE(delta_t, delta_s - 1e-9);
  }
}

// --------------------------------------- Theorem 2: SMP on random covers --

TEST_P(MatcherProperty, SmpSoundAndConsistentForMln) {
  RandomInstance instance(GetParam());
  mln::MlnMatcher matcher(instance.dataset(), instance.weights());
  const core::Cover cover = instance.RandomCover();
  const MatchSet full = matcher.MatchAll();

  const MatchSet reference = core::RunSmp(matcher, cover).matches;
  EXPECT_TRUE(reference.IsSubsetOf(full)) << "soundness violated";

  // Consistency: random permutations give the same output.
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<uint32_t> order(cover.size());
    for (uint32_t i = 0; i < cover.size(); ++i) order[i] = i;
    instance.rng().Shuffle(order);
    core::MpOptions options;
    options.initial_order = order;
    EXPECT_EQ(core::RunSmp(matcher, cover, options).matches, reference);
  }
}

TEST_P(MatcherProperty, SmpSoundForRules) {
  RandomInstance instance(GetParam());
  rules::RulesConfig config;
  config.transitive_closure = false;
  rules::RulesMatcher matcher(instance.dataset(), config);
  const core::Cover cover = instance.RandomCover();
  EXPECT_TRUE(
      core::RunSmp(matcher, cover).matches.IsSubsetOf(matcher.MatchAll()));
}

// --------------------------------------- Theorem 4: MMP on random covers --

TEST_P(MatcherProperty, MmpSoundAndConsistent) {
  RandomInstance instance(GetParam());
  mln::MlnMatcher matcher(instance.dataset(), instance.weights());
  const core::Cover cover = instance.RandomCover();
  const MatchSet full = matcher.MatchAll();

  const MatchSet reference = core::RunMmp(matcher, cover).matches;
  EXPECT_TRUE(reference.IsSubsetOf(full)) << "soundness violated";

  for (int trial = 0; trial < 3; ++trial) {
    std::vector<uint32_t> order(cover.size());
    for (uint32_t i = 0; i < cover.size(); ++i) order[i] = i;
    instance.rng().Shuffle(order);
    core::MpOptions options;
    options.initial_order = order;
    EXPECT_EQ(core::RunMmp(matcher, cover, options).matches, reference);
  }
}

TEST_P(MatcherProperty, SchemeHierarchy) {
  // NO-MP ⊆ SMP ⊆ MMP for monotone matchers.
  RandomInstance instance(GetParam());
  mln::MlnMatcher matcher(instance.dataset(), instance.weights());
  const core::Cover cover = instance.RandomCover();
  const MatchSet no_mp = core::RunNoMp(matcher, cover).matches;
  const MatchSet smp = core::RunSmp(matcher, cover).matches;
  const MatchSet mmp = core::RunMmp(matcher, cover).matches;
  EXPECT_TRUE(no_mp.IsSubsetOf(smp));
  EXPECT_TRUE(smp.IsSubsetOf(mmp));
}

TEST_P(MatcherProperty, UpperBoundDominatesFullRun) {
  // The provable form of the paper's UB argument: clamping every *other*
  // pair to the full run's own assignment keeps each matched pair matched
  // (supermodularity). With the ground truth as the clamping assignment
  // (the paper's UB) containment holds only when the full run has perfect
  // precision, so the property is asserted against the run itself.
  RandomInstance instance(GetParam());
  mln::MlnMatcher matcher(instance.dataset(), instance.weights());
  const MatchSet full = matcher.MatchAll();
  EXPECT_TRUE(full.IsSubsetOf(eval::UpperBoundMatches(matcher, &full)));
}

TEST_P(MatcherProperty, MmpCompleteWhenCoverIsWhole) {
  // With a single neighborhood holding everything, MMP trivially equals
  // the full run — checks no over/under-reporting in the driver.
  RandomInstance instance(GetParam());
  mln::MlnMatcher matcher(instance.dataset(), instance.weights());
  core::Cover cover;
  cover.Add(instance.AllEntities());
  EXPECT_EQ(core::RunMmp(matcher, cover).matches, matcher.MatchAll());
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, MatcherProperty,
                         ::testing::Range<uint64_t>(100, 140));

// -------------------------------------- Failure injection: bad matchers --

/// A deliberately NON-monotone matcher: matches a pair only when given NO
/// positive evidence (perverse). The framework must still terminate, just
/// without guarantees.
class PerverseMatcher : public core::Matcher {
 public:
  explicit PerverseMatcher(const data::Dataset& dataset)
      : dataset_(&dataset) {}

  MatchSet Match(const std::vector<EntityId>& entities,
                 const MatchSet& positive,
                 const MatchSet& negative) const override {
    (void)negative;
    MatchSet out;
    if (!positive.empty()) return out;  // Violates monotonicity.
    if (entities.size() >= 2) {
      out.Insert(EntityPair(entities[0], entities[1]));
    }
    return out;
  }

  const data::Dataset& dataset() const override { return *dataset_; }

 private:
  const data::Dataset* dataset_;
};

TEST(FailureInjectionTest, SmpTerminatesOnNonMonotoneMatcher) {
  RandomInstance instance(999);
  PerverseMatcher matcher(instance.dataset());
  const core::Cover cover = instance.RandomCover();
  core::MpOptions options;
  options.max_evaluations = 200;
  const core::MpResult result = core::RunSmp(matcher, cover, options);
  EXPECT_LE(result.neighborhood_evaluations, 200u);
}

}  // namespace
}  // namespace cem
