// The redesigned tool surface: FlagSet parsing, the consolidated
// DedupToolOptions (one parse entry point, ToArgs() round trip) and the
// persist::ArrivalMeta sidecar that replaced dedup_tool's hand-rolled
// metadata file.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "persist/recovery.h"
#include "serve/tool_options.h"
#include "util/flags.h"
#include "util/status.h"

namespace cem {
namespace {

using serve::DedupToolOptions;
using serve::DefaultDedupToolOptions;
using serve::ParseDedupToolArgs;

TEST(FlagSet, ParsesEveryBindingKind) {
  bool flag = false;
  std::string name = "default";
  double scale = 1.0;
  uint32_t small = 7;
  bool small_set = false;
  uint64_t big = 0;
  size_t count = 0;
  FlagSet flags;
  flags.Bool("--flag", &flag, "a bool");
  flags.String("--name", &name, "a string");
  flags.Double("--scale", &scale, "a double");
  flags.Uint32("--small", &small, "a uint32", &small_set);
  flags.Uint64("--big", &big, "a uint64");
  flags.SizeT("--count", &count, "a size_t");

  ASSERT_TRUE(flags
                  .Parse({"--flag", "--name", "x y", "--scale=0.25",
                          "--small", "42", "--big=18446744073709551615",
                          "--count=9"})
                  .ok());
  EXPECT_TRUE(flag);
  EXPECT_EQ(name, "x y");
  EXPECT_EQ(scale, 0.25);
  EXPECT_EQ(small, 42u);
  EXPECT_TRUE(small_set);
  EXPECT_EQ(big, 0xffffffffffffffffull);
  EXPECT_EQ(count, 9u);
}

TEST(FlagSet, SetMarkerStaysFalseWhenFlagAbsent) {
  uint32_t small = 7;
  bool small_set = false;
  FlagSet flags;
  flags.Uint32("--small", &small, "a uint32", &small_set);
  ASSERT_TRUE(flags.Parse({}).ok());
  EXPECT_EQ(small, 7u);
  EXPECT_FALSE(small_set);
  // Explicitly passing the default value still marks it set.
  ASSERT_TRUE(flags.Parse({"--small", "7"}).ok());
  EXPECT_TRUE(small_set);
}

TEST(FlagSet, RejectsMalformedInput) {
  bool flag = false;
  uint32_t small = 0;
  double scale = 0.0;
  FlagSet flags;
  flags.Bool("--flag", &flag, "a bool");
  flags.Uint32("--small", &small, "a uint32");
  flags.Double("--scale", &scale, "a double");

  EXPECT_EQ(flags.Parse({"--bogus"}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(flags.Parse({"positional"}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(flags.Parse({"--small"}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(flags.Parse({"--small", "twelve"}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(flags.Parse({"--small", "-3"}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(flags.Parse({"--small", "4294967296"}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(flags.Parse({"--small", "12junk"}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(flags.Parse({"--scale", "1.5x"}).code(),
            StatusCode::kInvalidArgument);
  // Presence-only flags take no value.
  EXPECT_EQ(flags.Parse({"--flag=true"}).code(),
            StatusCode::kInvalidArgument);
}

TEST(DedupToolFlags, DefaultsRoundTripThroughEmptyArgs) {
  const DedupToolOptions defaults = DefaultDedupToolOptions();
  EXPECT_TRUE(defaults.ToArgs().empty());
  const Result<DedupToolOptions> parsed = ParseDedupToolArgs({});
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, defaults);
}

TEST(DedupToolFlags, ParseToArgsRoundTripsEveryGroup) {
  std::vector<DedupToolOptions> cases;
  {
    DedupToolOptions o = DefaultDedupToolOptions();
    o.corpus.input = "corpus.tsv";
    o.corpus.scale = 0.125;
    o.output = "pairs.tsv";
    o.pipeline.matcher = "rules";
    o.pipeline.scheme = "smp";
    o.pipeline.blocking = "canopy";
    o.pipeline.machines = 4;
    o.pipeline.threads = 2;
    cases.push_back(o);
  }
  {
    DedupToolOptions o = DefaultDedupToolOptions();
    o.stream.stream = true;
    o.stream.chunk = 32;
    o.stream.chunk_set = true;
    o.stream.arrival_seed = 99;
    o.stream.arrival_seed_set = true;
    o.persist.snapshot_dir = "/tmp/state";
    o.persist.snapshot_every = 128;
    o.persist.recover = true;
    o.persist.fsync = true;
    cases.push_back(o);
  }
  {
    DedupToolOptions o = DefaultDedupToolOptions();
    o.serve.serve = true;
    o.serve.query_file = "queries.txt";
    o.serve.qps = 25000;
    o.obs.metrics_json = "metrics.json";
    o.obs.trace_json = "trace.json";
    o.corpus.generate = "hepth";
    cases.push_back(o);
  }
  {
    // The request-level observability group: live stats endpoint, slow
    // query log, stall watchdog.
    DedupToolOptions o = DefaultDedupToolOptions();
    o.serve.serve = true;
    o.obs.stats_port = 9090;
    o.obs.stats_port_set = true;
    o.obs.stats_ready_file = "/tmp/stats.port";
    o.obs.slow_query_log = "slow.json";
    o.obs.slow_query_us = 250.5;
    o.obs.stall_deadline_ms = 500;
    cases.push_back(o);
  }
  {
    // --stats-port 0 given explicitly (ephemeral) must survive the round
    // trip: the set marker, not the value, carries the intent.
    DedupToolOptions o = DefaultDedupToolOptions();
    o.serve.serve = true;
    o.obs.stats_port_set = true;
    cases.push_back(o);
  }
  {
    // The subtle one: *_set-tracked flags at their DEFAULT values must
    // survive the round trip ("explicitly 64" reconciles differently from
    // "defaulted 64" on --recover).
    DedupToolOptions o = DefaultDedupToolOptions();
    o.stream.stream = true;
    o.stream.chunk_set = true;
    o.stream.arrival_seed_set = true;
    cases.push_back(o);
  }
  for (size_t i = 0; i < cases.size(); ++i) {
    const std::vector<std::string> args = cases[i].ToArgs();
    const Result<DedupToolOptions> parsed = ParseDedupToolArgs(args);
    ASSERT_TRUE(parsed.ok()) << "case " << i << ": "
                             << parsed.status().ToString();
    EXPECT_EQ(*parsed, cases[i]) << "case " << i;
  }
}

TEST(DedupToolFlags, RejectsUnknownFlagWithUsage) {
  const Result<DedupToolOptions> parsed =
      ParseDedupToolArgs({"--no-such-flag", "1"});
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  // Every registered flag shows up in the usage text.
  const std::string usage = serve::DedupToolUsage();
  for (const char* flag : {"--input", "--stream", "--serve", "--query-file",
                           "--qps", "--snapshot-dir", "--metrics-json"}) {
    EXPECT_NE(usage.find(flag), std::string::npos) << flag;
  }
}

TEST(ArrivalMeta, RoundTripsThroughSidecar) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(::testing::TempDir()) / "arrival_meta";
  fs::create_directories(dir);
  const persist::ArrivalMeta meta{.arrival_seed = 1234567890123ull,
                                  .stream_chunk = 64};
  ASSERT_TRUE(persist::WriteArrivalMeta(dir.string(), meta).ok());
  const Result<persist::ArrivalMeta> read =
      persist::ReadArrivalMeta(dir.string());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, meta);
}

TEST(ArrivalMeta, MissingSidecarIsNotFound) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(::testing::TempDir()) / "arrival_meta_none";
  fs::create_directories(dir);
  EXPECT_EQ(persist::ReadArrivalMeta(dir.string()).status().code(),
            StatusCode::kNotFound);
}

TEST(ArrivalMeta, MalformedSidecarIsInvalidArgument) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(::testing::TempDir()) / "arrival_meta_bad";
  fs::create_directories(dir);
  std::ofstream(dir / "arrival.meta") << "not a sidecar\n";
  EXPECT_EQ(persist::ReadArrivalMeta(dir.string()).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace cem
