#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "text/jaccard.h"
#include "text/jaro_winkler.h"
#include "text/levenshtein.h"
#include "text/similarity_level.h"
#include "text/token_arena.h"
#include "text/token_index.h"
#include "util/hash.h"

namespace cem::text {
namespace {

// ------------------------------------------------------------------ Jaro --

TEST(JaroTest, IdenticalStrings) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("martha", "martha"), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
}

TEST(JaroTest, CompletelyDifferent) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "xyz"), 0.0);
}

TEST(JaroTest, EmptyVersusNonEmpty) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("", "abc"), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", ""), 0.0);
}

TEST(JaroTest, KnownLiteratureValues) {
  // Classic examples from the record-linkage literature.
  EXPECT_NEAR(JaroSimilarity("martha", "marhta"), 0.9444, 1e-3);
  EXPECT_NEAR(JaroSimilarity("dixon", "dicksonx"), 0.7667, 1e-3);
  EXPECT_NEAR(JaroSimilarity("jellyfish", "smellyfish"), 0.8963, 1e-3);
}

TEST(JaroTest, Symmetric) {
  const char* samples[] = {"smith", "smyth", "johnson", "jonson", "a", "ab"};
  for (const char* a : samples) {
    for (const char* b : samples) {
      EXPECT_DOUBLE_EQ(JaroSimilarity(a, b), JaroSimilarity(b, a));
    }
  }
}

TEST(JaroWinklerTest, KnownValues) {
  EXPECT_NEAR(JaroWinklerSimilarity("martha", "marhta"), 0.9611, 1e-3);
  EXPECT_NEAR(JaroWinklerSimilarity("dixon", "dicksonx"), 0.8133, 1e-3);
}

TEST(JaroWinklerTest, PrefixBoostsScore) {
  const double jw = JaroWinklerSimilarity("prefixed", "prefixes");
  const double j = JaroSimilarity("prefixed", "prefixes");
  EXPECT_GT(jw, j);
}

TEST(JaroWinklerTest, BoundedByOne) {
  EXPECT_LE(JaroWinklerSimilarity("aaaa", "aaaa"), 1.0);
  EXPECT_LE(JaroWinklerSimilarity("aaaab", "aaaac", 0.25), 1.0);
}

// ----------------------------------------------------------- Levenshtein --

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("same", "same"), 0u);
}

TEST(LevenshteinTest, SymmetricAndTriangle) {
  const std::string a = "smith", b = "smyth", c = "smythe";
  EXPECT_EQ(LevenshteinDistance(a, b), LevenshteinDistance(b, a));
  EXPECT_LE(LevenshteinDistance(a, c),
            LevenshteinDistance(a, b) + LevenshteinDistance(b, c));
}

TEST(LevenshteinTest, SimilarityNormalised) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
  EXPECT_NEAR(LevenshteinSimilarity("abcd", "abcx"), 0.75, 1e-9);
}

// -------------------------------------------------------------- Jaccard --

TEST(JaccardTest, SetSemantics) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "a", "b"}, {"a", "b", "b"}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a"}, {"b"}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "b"}, {"b", "c"}), 1.0 / 3.0);
}

TEST(JaccardTest, TokenJaccard) {
  EXPECT_DOUBLE_EQ(TokenJaccard("john smith", "smith john"), 1.0);
  EXPECT_DOUBLE_EQ(TokenJaccard("john smith", "mary jones"), 0.0);
}

TEST(JaccardTest, NgramJaccardDetectsTypos) {
  EXPECT_GT(NgramJaccard("rastogi", "rastogy"), 0.4);
  EXPECT_LT(NgramJaccard("rastogi", "garofalakis"), 0.2);
}

// ------------------------------------------------------ SimilarityLevel --

TEST(SimilarityLevelTest, DiscretizeThresholds) {
  LevelThresholds t;  // 0.74 / 0.93 / 0.97
  EXPECT_EQ(Discretize(0.99, t), SimilarityLevel::kHigh);
  EXPECT_EQ(Discretize(0.97, t), SimilarityLevel::kHigh);
  EXPECT_EQ(Discretize(0.94, t), SimilarityLevel::kMedium);
  EXPECT_EQ(Discretize(0.80, t), SimilarityLevel::kLow);
  EXPECT_EQ(Discretize(0.74, t), SimilarityLevel::kLow);
  EXPECT_EQ(Discretize(0.30, t), SimilarityLevel::kNone);
}

TEST(SimilarityLevelTest, IdenticalFullNamesAreHigh) {
  LevelThresholds t;
  EXPECT_EQ(NameSimilarityLevel("John", "Smith", "John", "Smith", t),
            SimilarityLevel::kHigh);
}

TEST(SimilarityLevelTest, AbbreviatedFirstNameIsAmbiguous) {
  LevelThresholds t;
  // "J. Smith" vs "John Smith": similar but not top-level — the HEPTH
  // situation the paper describes.
  const SimilarityLevel level =
      NameSimilarityLevel("J.", "Smith", "John", "Smith", t);
  EXPECT_TRUE(level == SimilarityLevel::kMedium ||
              level == SimilarityLevel::kLow);
  EXPECT_NE(level, SimilarityLevel::kHigh);
  EXPECT_NE(level, SimilarityLevel::kNone);
}

TEST(SimilarityLevelTest, MismatchedInitialKillsSimilarity) {
  EXPECT_LT(NameSimilarity("J.", "Smith", "Mary", "Smith"),
            NameSimilarity("M.", "Smith", "Mary", "Smith"));
}

TEST(SimilarityLevelTest, DifferentLastNamesAreNone) {
  LevelThresholds t;
  EXPECT_EQ(NameSimilarityLevel("John", "Smith", "John", "Garofalakis", t),
            SimilarityLevel::kNone);
}

TEST(SimilarityLevelTest, SymmetricInArguments) {
  EXPECT_DOUBLE_EQ(NameSimilarity("J.", "Smith", "John", "Smith"),
                   NameSimilarity("John", "Smith", "J.", "Smith"));
}

TEST(SimilarityLevelTest, SmallTypoStaysSimilar) {
  LevelThresholds t;
  EXPECT_NE(NameSimilarityLevel("John", "Smith", "John", "Smyth", t),
            SimilarityLevel::kNone);
}

// ------------------------------------------------------------ TokenIndex --

TEST(TokenIndexTest, FindsOverlappingDocs) {
  TokenIndex index;
  index.AddDocument(0, {"smi", "mit", "ith"});
  index.AddDocument(1, {"smi", "mit", "itt"});
  index.AddDocument(2, {"xyz"});
  auto candidates = index.Candidates(0, 0.1);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].doc_id, 1u);
  EXPECT_NEAR(candidates[0].score, 2.0 / 3.0, 1e-9);
}

TEST(TokenIndexTest, MinScoreFilters) {
  TokenIndex index;
  index.AddDocument(0, {"a", "b", "c", "d"});
  index.AddDocument(1, {"a"});
  EXPECT_TRUE(index.Candidates(0, 0.5).empty());
  EXPECT_EQ(index.Candidates(0, 0.2).size(), 1u);
}

TEST(TokenIndexTest, CaseInsensitive) {
  TokenIndex index;
  index.AddDocument(0, {"ABC"});
  index.AddDocument(1, {"abc"});
  EXPECT_EQ(index.Candidates(0, 0.5).size(), 1u);
}

TEST(TokenIndexTest, DuplicateTokensCollapse) {
  TokenIndex index;
  index.AddDocument(0, {"a", "a", "a"});
  index.AddDocument(1, {"a", "b"});
  auto candidates = index.Candidates(0, 0.0);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_NEAR(candidates[0].score, 0.5, 1e-9);  // 1 shared / max(1, 2)
}

TEST(TokenIndexTest, SelfExcluded) {
  TokenIndex index;
  index.AddDocument(0, {"x"});
  EXPECT_TRUE(index.Candidates(0, 0.0).empty());
}

TEST(TokenIndexTest, SizeTracksIncrementalAdds) {
  // size()/empty() must be an O(1) running document count (the corpus size
  // as the index sees it), never inferred from postings contents.
  TokenIndex index;
  EXPECT_TRUE(index.empty());
  EXPECT_EQ(index.size(), 0u);
  index.AddDocument(0, {"a", "b"});
  EXPECT_EQ(index.size(), 1u);
  index.AddDocument(1, {});  // Token-free documents still count.
  EXPECT_EQ(index.size(), 2u);
  EXPECT_EQ(index.size(), index.num_documents());
  EXPECT_FALSE(index.empty());
}

TEST(TokenIndexTest, ShardedAddDocumentMatchesSingleShard) {
  const std::vector<std::vector<std::string>> docs = {
      {"smi", "mit", "ith"}, {"smi", "mit", "itt"}, {"xyz", "SMI"}, {}};
  TokenIndex single;
  TokenIndex sharded(7);
  for (uint32_t doc = 0; doc < docs.size(); ++doc) {
    single.AddDocument(doc, docs[doc]);
    sharded.AddDocument(doc, docs[doc]);
  }
  EXPECT_EQ(sharded.num_shards(), 7u);
  EXPECT_EQ(sharded.num_tokens(), single.num_tokens());
  EXPECT_EQ(sharded.num_postings(), single.num_postings());
  for (uint32_t doc = 0; doc < docs.size(); ++doc) {
    size_t single_scored = 0;
    size_t sharded_scored = 0;
    const auto expected = single.Candidates(doc, 0.0, &single_scored);
    const auto actual = sharded.Candidates(doc, 0.0, &sharded_scored);
    EXPECT_EQ(sharded_scored, single_scored);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < actual.size(); ++i) {
      EXPECT_EQ(actual[i].doc_id, expected[i].doc_id);
      EXPECT_EQ(actual[i].score, expected[i].score);
    }
  }
}

TEST(TokenIndexTest, AddDocumentsMatchesSerialInsertion) {
  const std::vector<std::vector<std::string>> docs = {
      {"a", "b", "c"}, {"b", "c", "d"}, {"A", "a", "e"}, {"f"}};
  TokenIndex serial;
  for (uint32_t doc = 0; doc < docs.size(); ++doc) {
    serial.AddDocument(doc, docs[doc]);
  }
  ExecutionContext ctx(3, /*num_shards=*/5);
  TokenIndex bulk(ctx.num_token_shards());
  bulk.AddDocuments(docs, ctx);
  EXPECT_EQ(bulk.num_documents(), serial.num_documents());
  EXPECT_EQ(bulk.num_tokens(), serial.num_tokens());
  EXPECT_EQ(bulk.num_postings(), serial.num_postings());
  for (uint32_t doc = 0; doc < docs.size(); ++doc) {
    const auto expected = serial.Candidates(doc, 0.0);
    const auto actual = bulk.Candidates(doc, 0.0);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < actual.size(); ++i) {
      EXPECT_EQ(actual[i].doc_id, expected[i].doc_id);
      EXPECT_EQ(actual[i].score, expected[i].score);
    }
  }
}

// ----------------------------------------------------------- TokenCorpus --

std::vector<std::string_view> Views(std::span<const TokenRef> tokens) {
  std::vector<std::string_view> out;
  for (const TokenRef& token : tokens) out.push_back(token.view());
  return out;
}

TEST(TokenCorpusTest, NormalisesLikeTokenIndex) {
  // Lower-cased, sorted, deduplicated — the historical per-document form.
  TokenCorpus corpus;
  corpus.AppendDoc([](TokenCorpus::DocBuilder& b) {
    b.EmitLower("Beta");
    b.EmitLower("alpha");
    b.EmitLower("BETA");
    b.EmitLower("gamma");
  });
  ASSERT_EQ(corpus.num_docs(), 1u);
  EXPECT_EQ(Views(corpus.doc(0)),
            (std::vector<std::string_view>{"alpha", "beta", "gamma"}));
  EXPECT_EQ(corpus.num_tokens(), 3u);
}

TEST(TokenCorpusTest, TokenRefHashMatchesFnv1a64OfView) {
  TokenCorpus corpus;
  corpus.AppendDoc([](TokenCorpus::DocBuilder& b) {
    b.EmitLower("Doe");
    b.Emit("j|do");
  });
  for (const TokenRef& token : corpus.doc(0)) {
    EXPECT_EQ(token.hash, Fnv1a64(token.view())) << token.view();
  }
}

TEST(TokenCorpusTest, AliasedTrigramsShareInternedStorage) {
  TokenCorpus corpus;
  corpus.AppendDoc([](TokenCorpus::DocBuilder& b) {
    const std::string_view interned = b.InternLower("Smith");
    EXPECT_EQ(interned, "smith");
    for (size_t i = 0; i + 3 <= interned.size(); ++i) {
      b.EmitAlias(interned.data() + i, 3);
    }
  });
  const auto tokens = corpus.doc(0);
  EXPECT_EQ(Views(tokens),
            (std::vector<std::string_view>{"ith", "mit", "smi"}));
  // Aliases slice the single interned copy: 5 bytes, not 9.
  EXPECT_EQ(corpus.arena_bytes(), 5u);
}

TEST(TokenCorpusTest, BuildIdenticalAcrossThreadCounts) {
  // Enough documents to span multiple fixed-size chunks.
  const size_t num_docs = TokenCorpus::kChunkDocs * 3 + 17;
  const auto tokenize = [](size_t doc, TokenCorpus::DocBuilder& b) {
    b.EmitLower("Doc" + std::to_string(doc % 100));
    b.EmitLower("shared");
    if (doc % 3 == 0) b.EmitLower("Third");
  };
  ExecutionContext serial(1);
  const TokenCorpus reference = TokenCorpus::Build(num_docs, tokenize, serial);
  ASSERT_EQ(reference.num_docs(), num_docs);
  for (uint32_t threads : {2u, 8u}) {
    ExecutionContext ctx(threads);
    const TokenCorpus corpus = TokenCorpus::Build(num_docs, tokenize, ctx);
    ASSERT_EQ(corpus.num_docs(), num_docs);
    EXPECT_EQ(corpus.num_tokens(), reference.num_tokens());
    EXPECT_EQ(corpus.arena_bytes(), reference.arena_bytes());
    for (size_t doc = 0; doc < num_docs; ++doc) {
      const auto actual = corpus.doc(doc);
      const auto expected = reference.doc(doc);
      ASSERT_EQ(actual.size(), expected.size()) << "doc " << doc;
      for (size_t i = 0; i < actual.size(); ++i) {
        EXPECT_EQ(actual[i].view(), expected[i].view());
        EXPECT_EQ(actual[i].hash, expected[i].hash);
      }
    }
  }
}

TEST(TokenCorpusTest, AppendDocMatchesBuild) {
  const auto tokenize = [](size_t doc, TokenCorpus::DocBuilder& b) {
    b.EmitLower("tok" + std::to_string(doc));
    b.EmitLower("common");
  };
  ExecutionContext serial(1);
  const TokenCorpus built = TokenCorpus::Build(5, tokenize, serial);
  TokenCorpus appended;
  for (size_t doc = 0; doc < 5; ++doc) {
    appended.AppendDoc(
        [&](TokenCorpus::DocBuilder& b) { tokenize(doc, b); });
  }
  ASSERT_EQ(appended.num_docs(), built.num_docs());
  for (size_t doc = 0; doc < 5; ++doc) {
    EXPECT_EQ(Views(appended.doc(doc)), Views(built.doc(doc)));
  }
}

TEST(TokenCorpusTest, MovePreservesDocuments) {
  TokenCorpus corpus;
  corpus.AppendDoc([](TokenCorpus::DocBuilder& b) { b.EmitLower("Alpha"); });
  TokenCorpus moved(std::move(corpus));
  ASSERT_EQ(moved.num_docs(), 1u);
  EXPECT_EQ(Views(moved.doc(0)), (std::vector<std::string_view>{"alpha"}));
}

TEST(HashedJaccardTest, MatchesStringJaccardOnCorpusDocs) {
  TokenCorpus corpus;
  const std::vector<std::vector<std::string>> docs = {
      {"a", "b", "c"},
      {"b", "c", "d", "e"},
      {},
      {"a", "b", "c"},
      {"x"},
  };
  for (const auto& tokens : docs) {
    corpus.AppendDoc([&](TokenCorpus::DocBuilder& b) {
      for (const std::string& token : tokens) b.EmitLower(token);
    });
  }
  for (size_t i = 0; i < docs.size(); ++i) {
    for (size_t j = 0; j < docs.size(); ++j) {
      EXPECT_DOUBLE_EQ(HashedJaccard(corpus.doc(i), corpus.doc(j)),
                       JaccardSimilarity(docs[i], docs[j]))
          << i << " vs " << j;
    }
  }
}

}  // namespace
}  // namespace cem::text
