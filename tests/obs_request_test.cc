// Request-level observability suite (tier1-concurrency; ci/check.sh
// re-runs it under ThreadSanitizer). Covers the live serving telemetry of
// obs/: the RollingWindow sliding SLO aggregation (exact totals under
// concurrent recorders, deterministic expiry via the injectable clock),
// the per-query trace context threaded through MatchService::Lookup
// (unique ids, monotone cumulative stage offsets), the bounded worst-N
// SlowQueryLog, and the IngestWatchdog stall decision driven
// deterministically through Observe().

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/bib_generator.h"
#include "mln/mln_matcher.h"
#include "obs/metrics.h"
#include "obs/query_trace.h"
#include "obs/watchdog.h"
#include "obs/window.h"
#include "serve/match_service.h"
#include "stream/streaming_matcher.h"
#include "util/execution_context.h"
#include "util/random.h"

namespace cem {
namespace {

using obs::IngestWatchdog;
using obs::QueryTrace;
using obs::RollingWindow;
using obs::SlowQueryLog;
using obs::WindowStats;
using serve::MatchService;
using serve::QueryResult;
using serve::ServeOptions;
using stream::StreamingMatcher;

uint32_t HardwareThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

// ---------------------------------------------------------- RollingWindow --

TEST(RollingWindowTest, MergesOnlySecondsInsideTheWindow) {
  RollingWindow window;
  const uint64_t base = 1000;
  // One sample per second across 20 seconds, latencies 1..20 us.
  for (uint64_t s = 0; s < 20; ++s) {
    window.RecordAt(base + s, static_cast<double>(s + 1), /*error=*/false);
  }
  const uint64_t now = base + 19;  // The second of the last sample.
  // A 10s window ending at `now` covers seconds base+10 .. base+19.
  const WindowStats ten = window.OverAt(10, now);
  EXPECT_EQ(ten.count, 10u);
  EXPECT_EQ(ten.window_s, 10u);
  EXPECT_DOUBLE_EQ(ten.qps, 1.0);
  // The full 60s window sees everything.
  const WindowStats sixty = window.OverAt(60, now);
  EXPECT_EQ(sixty.count, 20u);
  // A 1s window sees only the newest sample.
  EXPECT_EQ(window.OverAt(1, now).count, 1u);
}

TEST(RollingWindowTest, ErrorRateAndQpsAreRatiosOverTheWindow) {
  RollingWindow window;
  const uint64_t now = 500;
  for (int i = 0; i < 30; ++i) {
    window.RecordAt(now, 100.0, /*error=*/i % 3 == 0);
  }
  const WindowStats stats = window.OverAt(10, now);
  EXPECT_EQ(stats.count, 30u);
  EXPECT_EQ(stats.errors, 10u);
  EXPECT_DOUBLE_EQ(stats.error_rate, 10.0 / 30.0);
  EXPECT_DOUBLE_EQ(stats.qps, 3.0);
}

TEST(RollingWindowTest, EmptyWindowIsAllZeros) {
  RollingWindow window;
  const WindowStats stats = window.OverAt(10, 42);
  EXPECT_EQ(stats.count, 0u);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_DOUBLE_EQ(stats.qps, 0.0);
  EXPECT_DOUBLE_EQ(stats.error_rate, 0.0);
  EXPECT_DOUBLE_EQ(stats.p50, 0.0);
}

TEST(RollingWindowTest, WindowLengthClampsToMaxAndMinimumOne) {
  RollingWindow window;
  window.RecordAt(100, 5.0, false);
  EXPECT_EQ(window.OverAt(0, 100).window_s, 1u);
  EXPECT_EQ(window.OverAt(10'000, 100).window_s,
            RollingWindow::kMaxWindowSeconds);
}

TEST(RollingWindowTest, StaleSamplesAreDroppedNotMisfiled) {
  RollingWindow window;
  const uint64_t base = 2000;
  window.RecordAt(base, 1.0, false);
  // A full ring lap later the slot of `base` has been recycled; a
  // late-arriving sample for the recycled second must be dropped, not
  // counted against the new second occupying its slot.
  const uint64_t lapped = base + RollingWindow::kCapacitySeconds;
  window.RecordAt(lapped, 2.0, false);
  window.RecordAt(base, 3.0, false);  // Stale: its second is gone.
  EXPECT_EQ(window.OverAt(1, lapped).count, 1u);
  EXPECT_EQ(window.OverAt(60, lapped).count, 1u);
}

TEST(RollingWindowTest, PercentilesTrackTheLadderAndClampOnOverflow) {
  RollingWindow window;
  const uint64_t now = 300;
  // 100 samples at 100us: every percentile lands in the bucket containing
  // 100 on the 1-2-5 ladder.
  for (int i = 0; i < 100; ++i) window.RecordAt(now, 100.0, false);
  const WindowStats stats = window.OverAt(10, now);
  EXPECT_GT(stats.p50, 50.0);
  EXPECT_LE(stats.p50, 100.0);
  EXPECT_LE(stats.p50, stats.p95);
  EXPECT_LE(stats.p95, stats.p99);

  // All-overflow mass pins every percentile to the last finite bound
  // (same clamp Histogram::Stats carries).
  RollingWindow overflow;
  for (int i = 0; i < 100; ++i) overflow.RecordAt(now, 1e12, false);
  const WindowStats clamped = overflow.OverAt(10, now);
  EXPECT_DOUBLE_EQ(clamped.p50, clamped.p99);
  EXPECT_LT(clamped.p99, 1e12);
}

TEST(RollingWindowTest, ConcurrentRecordersCountExactly) {
  // The TSAN target: ExecutionContext threads hammer one window across a
  // spread of seconds; the merged read must account for every sample
  // exactly once.
  RollingWindow window;
  const ExecutionContext ctx(HardwareThreads());
  constexpr size_t kTasks = 50'000;
  const uint64_t base = 9000;
  std::atomic<uint64_t> errors_recorded{0};
  ParallelFor(ctx.pool(), kTasks, [&](size_t i) {
    const bool error = i % 7 == 0;
    if (error) errors_recorded.fetch_add(1, std::memory_order_relaxed);
    // Spread the writes over 10 distinct seconds to exercise rollover
    // races as well as same-bucket contention.
    window.RecordAt(base + i % 10, static_cast<double>(i % 100), error);
  });
  const WindowStats stats = window.OverAt(10, base + 9);
  EXPECT_EQ(stats.count, kTasks);
  EXPECT_EQ(stats.errors, errors_recorded.load());
}

// ----------------------------------------------------------- SlowQueryLog --

QueryTrace TraceWithTotal(uint64_t id, double total_us) {
  QueryTrace trace;
  trace.query_id = id;
  trace.ref = id * 10;
  trace.total_us = total_us;
  return trace;
}

TEST(SlowQueryLogTest, UnderThresholdTracesAreNeitherCountedNorKept) {
  SlowQueryLog log(/*capacity=*/4, /*threshold_us=*/100.0);
  log.Offer(TraceWithTotal(1, 99.9));
  EXPECT_EQ(log.slow_count(), 0u);
  EXPECT_TRUE(log.WorstFirst().empty());
  log.Offer(TraceWithTotal(2, 100.0));  // At-threshold counts.
  EXPECT_EQ(log.slow_count(), 1u);
  EXPECT_EQ(log.WorstFirst().size(), 1u);
}

TEST(SlowQueryLogTest, KeepsTheWorstNWorstFirst) {
  SlowQueryLog log(/*capacity=*/3, /*threshold_us=*/10.0);
  const double totals[] = {50, 20, 90, 30, 70, 15};
  uint64_t id = 0;
  for (double t : totals) log.Offer(TraceWithTotal(++id, t));
  EXPECT_EQ(log.slow_count(), 6u);  // Every offer counted...
  const std::vector<QueryTrace> worst = log.WorstFirst();
  ASSERT_EQ(worst.size(), 3u);  // ...but only the worst 3 retained.
  EXPECT_DOUBLE_EQ(worst[0].total_us, 90.0);
  EXPECT_DOUBLE_EQ(worst[1].total_us, 70.0);
  EXPECT_DOUBLE_EQ(worst[2].total_us, 50.0);
}

TEST(SlowQueryLogTest, TiesBreakTowardTheOlderQuery) {
  SlowQueryLog log(/*capacity=*/4, /*threshold_us=*/1.0);
  log.Offer(TraceWithTotal(7, 5.0));
  log.Offer(TraceWithTotal(3, 5.0));
  const std::vector<QueryTrace> worst = log.WorstFirst();
  ASSERT_EQ(worst.size(), 2u);
  EXPECT_EQ(worst[0].query_id, 3u);
  EXPECT_EQ(worst[1].query_id, 7u);
}

TEST(SlowQueryLogTest, ToJsonIsAnArrayOfTraceObjects) {
  SlowQueryLog log(/*capacity=*/2, /*threshold_us=*/1.0);
  log.Offer(TraceWithTotal(1, 10.0));
  const std::string json = log.ToJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.find_last_not_of(" \n")], ']');
  EXPECT_NE(json.find("\"query_id\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"total_us\""), std::string::npos) << json;
  log.Clear();
  EXPECT_EQ(log.slow_count(), 0u);
  EXPECT_TRUE(log.WorstFirst().empty());
}

TEST(SlowQueryLogTest, ConcurrentOffersCountEverySlowTrace) {
  SlowQueryLog log(/*capacity=*/8, /*threshold_us=*/50.0);
  const ExecutionContext ctx(HardwareThreads());
  constexpr size_t kTasks = 20'000;
  ParallelFor(ctx.pool(), kTasks, [&](size_t i) {
    // Half under threshold (fast path), half over.
    log.Offer(TraceWithTotal(i + 1, i % 2 == 0 ? 10.0 : 50.0 + i));
  });
  EXPECT_EQ(log.slow_count(), kTasks / 2);
  const std::vector<QueryTrace> worst = log.WorstFirst();
  ASSERT_EQ(worst.size(), 8u);
  // The retained set is exactly the 8 largest offered totals.
  EXPECT_DOUBLE_EQ(worst.front().total_us, 50.0 + (kTasks - 1));
  for (size_t i = 1; i < worst.size(); ++i) {
    EXPECT_DOUBLE_EQ(worst[i].total_us, worst[i - 1].total_us - 2.0);
  }
}

// --------------------------------------------------------- IngestWatchdog --

TEST(IngestWatchdogTest, IdleServerNeverStalls) {
  IngestWatchdog::Options options;
  options.deadline = std::chrono::milliseconds(100);
  IngestWatchdog dog(options);
  auto t0 = std::chrono::steady_clock::now();
  // Epoch frozen but the queue is empty: idle, not stalled — no matter
  // how long it sits.
  EXPECT_FALSE(dog.Observe(5, 0, t0));
  EXPECT_FALSE(dog.Observe(5, 0, t0 + std::chrono::seconds(10)));
  EXPECT_FALSE(dog.stalled());
  EXPECT_EQ(dog.stall_events(), 0u);
}

TEST(IngestWatchdogTest, FrozenEpochWithPendingWorkStallsAfterDeadline) {
  IngestWatchdog::Options options;
  options.deadline = std::chrono::milliseconds(100);
  IngestWatchdog dog(options);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(dog.Observe(5, 3, t0));  // Baseline.
  EXPECT_FALSE(dog.Observe(5, 3, t0 + std::chrono::milliseconds(99)));
  EXPECT_TRUE(dog.Observe(5, 3, t0 + std::chrono::milliseconds(100)));
  EXPECT_TRUE(dog.stalled());
  // One episode, one event — staying stalled does not re-count.
  EXPECT_TRUE(dog.Observe(5, 3, t0 + std::chrono::seconds(5)));
  EXPECT_EQ(dog.stall_events(), 1u);
}

TEST(IngestWatchdogTest, ProgressOrDrainClearsTheStall) {
  IngestWatchdog::Options options;
  options.deadline = std::chrono::milliseconds(100);
  IngestWatchdog dog(options);
  auto now = std::chrono::steady_clock::now();
  dog.Observe(1, 2, now);
  now += std::chrono::milliseconds(150);
  EXPECT_TRUE(dog.Observe(1, 2, now));
  // The epoch advances: recovered, gauge back to healthy.
  EXPECT_FALSE(dog.Observe(2, 2, now));
  EXPECT_FALSE(dog.stalled());
  // A second distinct stall episode counts a second event.
  now += std::chrono::milliseconds(150);
  EXPECT_TRUE(dog.Observe(2, 2, now));
  EXPECT_EQ(dog.stall_events(), 2u);
  // This time recovery comes from the queue draining at a frozen epoch.
  EXPECT_FALSE(dog.Observe(2, 0, now));
  EXPECT_FALSE(dog.stalled());
}

TEST(IngestWatchdogTest, MonitorThreadFlagsARealStallAndStops) {
  IngestWatchdog::Options options;
  options.deadline = std::chrono::milliseconds(20);
  options.poll = std::chrono::milliseconds(5);
  IngestWatchdog dog(options);
  std::atomic<uint64_t> epoch{7};
  std::atomic<uint64_t> depth{4};  // Pending work, epoch never moves.
  dog.Start([&] { return epoch.load(); }, [&] { return depth.load(); });
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (!dog.stalled() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(dog.stalled());
  depth.store(0);  // Drain: the monitor should clear the flag.
  const auto recover = std::chrono::steady_clock::now() +
                       std::chrono::seconds(5);
  while (dog.stalled() && std::chrono::steady_clock::now() < recover) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_FALSE(dog.stalled());
  dog.Stop();
  dog.Stop();  // Idempotent.
  EXPECT_EQ(dog.stall_events(), 1u);
}

// ----------------------------------------- QueryTrace through the service --

std::unique_ptr<data::Dataset> MakeSmallBib(uint64_t seed) {
  data::BibConfig config = data::BibConfig::DblpLike(0.05);
  config.seed = seed;
  return data::GenerateBibDataset(config);
}

void ExpectMonotoneStages(const QueryTrace& t, const std::string& label) {
  EXPECT_GT(t.query_id, 0u) << label;
  EXPECT_GE(t.signature_us, 0.0) << label;
  EXPECT_LE(t.signature_us, t.probe_us) << label;
  EXPECT_LE(t.probe_us, t.rank_us) << label;
  EXPECT_LE(t.rank_us, t.cover_us) << label;
  EXPECT_LE(t.cover_us, t.total_us) << label;
}

TEST(QueryTraceTest, LookupAttachesACoherentTrace) {
  const auto dataset = MakeSmallBib(19);
  const mln::MlnMatcher matcher(*dataset);
  const std::vector<data::EntityId>& refs = dataset->author_refs();
  StreamingMatcher streaming(matcher);
  MatchService service(streaming);
  ASSERT_TRUE(service.IngestBatch(refs).ok());

  const Result<QueryResult> answer = service.Lookup({refs[0]});
  ASSERT_TRUE(answer.ok());
  const QueryTrace& trace = answer->trace;
  ExpectMonotoneStages(trace, "live lookup");
  EXPECT_EQ(trace.ref, refs[0]);
  EXPECT_EQ(trace.epoch, refs.size());
  EXPECT_TRUE(trace.live);
  EXPECT_FALSE(trace.error);
  EXPECT_GE(trace.candidates_probed, trace.candidates_returned);
  EXPECT_EQ(trace.candidates_returned, answer->candidates.size());
  EXPECT_EQ(trace.cluster_size, answer->cluster.size());
  EXPECT_GT(trace.shards_probed, 0u);
  // The result's latency is the trace's total, truncated to integer us.
  EXPECT_EQ(answer->latency_us, static_cast<uint64_t>(trace.total_us));
  // The trace fed the service's rolling window.
  EXPECT_GE(service.rolling_window().Over(60).count, 1u);
}

TEST(QueryTraceTest, IdsUniqueAndStagesMonotoneAcrossConcurrentLookups) {
  const auto dataset = MakeSmallBib(37);
  const mln::MlnMatcher matcher(*dataset);
  std::vector<data::EntityId> refs = dataset->author_refs();
  Rng rng(3);
  rng.Shuffle(refs);
  StreamingMatcher streaming(matcher);
  MatchService service(streaming);
  ASSERT_TRUE(service.IngestBatch(refs).ok());

  constexpr size_t kThreads = 4;
  constexpr size_t kLookupsPerThread = 64;
  std::mutex mu;
  std::vector<QueryTrace> traces;
  std::vector<std::thread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::vector<QueryTrace> mine;
      for (size_t i = 0; i < kLookupsPerThread; ++i) {
        const data::EntityId q = refs[(t * 31 + i) % refs.size()];
        const Result<QueryResult> answer = service.Lookup({q});
        ASSERT_TRUE(answer.ok());
        mine.push_back(answer->trace);
      }
      std::lock_guard<std::mutex> lock(mu);
      traces.insert(traces.end(), mine.begin(), mine.end());
    });
  }
  for (std::thread& w : workers) w.join();

  ASSERT_EQ(traces.size(), kThreads * kLookupsPerThread);
  std::set<uint64_t> ids;
  for (const QueryTrace& trace : traces) {
    ExpectMonotoneStages(trace, "query " + std::to_string(trace.ref));
    ids.insert(trace.query_id);
  }
  EXPECT_EQ(ids.size(), traces.size());  // No id issued twice.
  // Every lookup landed in the window exactly once.
  EXPECT_GE(service.rolling_window().Over(60).count, traces.size());
}

TEST(QueryTraceTest, SlowThresholdZeroLogsEveryQueryWorstFirst) {
  const auto dataset = MakeSmallBib(41);
  const mln::MlnMatcher matcher(*dataset);
  const std::vector<data::EntityId>& refs = dataset->author_refs();
  StreamingMatcher streaming(matcher);
  ServeOptions options;
  options.slow_query_us = 0.0;  // Every query is "slow".
  options.slow_query_log_size = 4;
  MatchService service(streaming, options);
  ASSERT_TRUE(service.IngestBatch(refs).ok());
  for (size_t i = 0; i < 12; ++i) {
    ASSERT_TRUE(service.Lookup({refs[i % refs.size()]}).ok());
  }
  EXPECT_EQ(service.slow_query_log().slow_count(), 12u);
  const std::vector<QueryTrace> worst = service.slow_query_log().WorstFirst();
  ASSERT_EQ(worst.size(), 4u);
  for (size_t i = 1; i < worst.size(); ++i) {
    EXPECT_GE(worst[i - 1].total_us, worst[i].total_us);
  }
}

TEST(QueryTraceTest, PublishWindowGaugesExportsTheRollingStats) {
  const auto dataset = MakeSmallBib(43);
  const mln::MlnMatcher matcher(*dataset);
  const std::vector<data::EntityId>& refs = dataset->author_refs();
  StreamingMatcher streaming(matcher);
  MatchService service(streaming);
  ASSERT_TRUE(service.IngestBatch(refs).ok());
  for (size_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(service.Lookup({refs[i % refs.size()]}).ok());
  }
  service.PublishWindowGauges();
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Global().Snapshot();
  for (const char* name :
       {"serve_window1s_qps", "serve_window10s_p99_us",
        "serve_window60s_error_rate", "serve_slow_queries"}) {
    EXPECT_TRUE(snapshot.gauges.count(name)) << name;
  }
  EXPECT_GT(snapshot.gauges.at("serve_window60s_qps"), 0.0);
}

}  // namespace
}  // namespace cem
