#include <vector>

#include <gtest/gtest.h>

#include "core/canopy.h"
#include "core/cover.h"
#include "core/neighbor_index.h"
#include "data/bib_generator.h"
#include "data/dataset.h"
#include "data/figure1.h"

namespace cem::core {
namespace {

using data::EntityId;
using data::EntityPair;

TEST(CoverTest, AddNormalises) {
  Cover cover;
  cover.Add({3, 1, 2, 1});
  EXPECT_EQ(cover.neighborhood(0).entities,
            (std::vector<EntityId>{1, 2, 3}));
}

TEST(CoverTest, AddEntityToKeepsSorted) {
  Cover cover;
  cover.Add({1, 5});
  cover.AddEntityTo(0, 3);
  cover.AddEntityTo(0, 3);  // Duplicate ignored.
  EXPECT_EQ(cover.neighborhood(0).entities,
            (std::vector<EntityId>{1, 3, 5}));
}

TEST(CoverTest, SizeStatistics) {
  Cover cover;
  cover.Add({0, 1});
  cover.Add({2, 3, 4, 5});
  EXPECT_EQ(cover.MaxNeighborhoodSize(), 4u);
  EXPECT_DOUBLE_EQ(cover.MeanNeighborhoodSize(), 3.0);
}

TEST(CoverTest, Figure1CoverProperties) {
  data::Figure1 fig = data::MakeFigure1();
  Cover cover;
  for (const auto& n : fig.neighborhoods) cover.Add(n);
  EXPECT_TRUE(cover.CoversAllAuthorRefs(*fig.dataset));
  // Figure 2's C1..C3 cover all Coauthor edges used by the walkthrough.
  EXPECT_TRUE(cover.IsTotalForCoauthor(*fig.dataset));
  EXPECT_DOUBLE_EQ(cover.CandidatePairCoverage(*fig.dataset), 1.0);
}

TEST(CoverTest, DetectsNonTotalCover) {
  data::Figure1 fig = data::MakeFigure1();
  Cover cover;
  // Only C1 and C3 — the paper's example of a NON-total cover (the tuple
  // Coauthor(b1, c1) is lost).
  cover.Add(fig.neighborhoods[0]);
  cover.Add(fig.neighborhoods[2]);
  EXPECT_FALSE(cover.IsTotalForCoauthor(*fig.dataset));
}

TEST(CoverTest, ContainedPairsCountsMultiplicity) {
  data::Figure1 fig = data::MakeFigure1();
  Cover cover;
  cover.Add({fig.c1, fig.c2, fig.c3});
  cover.Add({fig.c1, fig.c2});
  // First neighborhood holds 3 candidate pairs, second 1.
  EXPECT_EQ(cover.TotalContainedPairs(*fig.dataset), 4u);
}

// --------------------------------------------------------------- Canopy --

class CanopyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = data::GenerateBibDataset(data::BibConfig::DblpLike(0.3));
  }
  std::unique_ptr<data::Dataset> dataset_;
};

TEST_F(CanopyTest, CoversAllRefsAndPairs) {
  const Cover cover = BuildCanopyCover(*dataset_);
  EXPECT_TRUE(cover.CoversAllAuthorRefs(*dataset_));
  EXPECT_DOUBLE_EQ(cover.CandidatePairCoverage(*dataset_), 1.0);
}

TEST_F(CanopyTest, BoundaryExpansionMakesTotalCover) {
  const Cover cover = BuildCanopyCover(*dataset_);
  EXPECT_TRUE(cover.IsTotalForCoauthor(*dataset_));
}

TEST_F(CanopyTest, WithoutExpansionNotTotal) {
  CanopyOptions options;
  options.expand_boundary = false;
  const Cover cover = BuildCanopyCover(*dataset_, options);
  // Coauthors are usually dissimilar, so canopies split them.
  EXPECT_FALSE(cover.IsTotalForCoauthor(*dataset_));
}

TEST_F(CanopyTest, BoundaryBringsDissimilarEntitiesTogether) {
  // The paper's point about covers vs blocking: neighborhoods contain
  // entities that are NOT similar (coauthors). Find some neighborhood
  // containing two refs with no candidate pair between them.
  const Cover cover = BuildCanopyCover(*dataset_);
  bool found_dissimilar_pair = false;
  for (const Neighborhood& n : cover.neighborhoods()) {
    for (size_t i = 0; i < n.entities.size() && !found_dissimilar_pair; ++i) {
      for (size_t j = i + 1; j < n.entities.size(); ++j) {
        if (!dataset_->FindCandidatePair(n.entities[i], n.entities[j])
                 .has_value()) {
          found_dissimilar_pair = true;
          break;
        }
      }
    }
  }
  EXPECT_TRUE(found_dissimilar_pair);
}

TEST_F(CanopyTest, DeterministicForSeed) {
  const Cover a = BuildCanopyCover(*dataset_);
  const Cover b = BuildCanopyCover(*dataset_);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.neighborhood(i).entities, b.neighborhood(i).entities);
  }
}

TEST_F(CanopyTest, TighterThresholdGivesMoreNeighborhoods) {
  CanopyOptions few;
  few.loose = 0.3;
  few.tight = 0.3;
  CanopyOptions many;
  many.loose = 0.3;
  many.tight = 0.9;
  EXPECT_LT(BuildCanopyCover(*dataset_, few).size(),
            BuildCanopyCover(*dataset_, many).size());
}

TEST(CanopyContrastTest, HepthHasLargerNeighborhoodsThanDblp) {
  // The paper: abbreviated HEPTH names collide -> fewer, larger
  // neighborhoods; DBLP full names -> more, smaller ones.
  auto hepth = data::GenerateBibDataset(data::BibConfig::HepthLike(0.3));
  auto dblp = data::GenerateBibDataset(data::BibConfig::DblpLike(0.3));
  const Cover hepth_cover = BuildCanopyCover(*hepth);
  const Cover dblp_cover = BuildCanopyCover(*dblp);
  EXPECT_GT(hepth_cover.MeanNeighborhoodSize(),
            dblp_cover.MeanNeighborhoodSize());
}

// -------------------------------------------------------- NeighborIndex --

TEST(NeighborIndexTest, FindsContainingNeighborhoods) {
  Cover cover;
  cover.Add({0, 1, 2});
  cover.Add({2, 3});
  cover.Add({4});
  NeighborIndex index(cover);
  EXPECT_EQ(index.NeighborhoodsOf(2), (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(index.NeighborhoodsOf(4), (std::vector<uint32_t>{2}));
  EXPECT_TRUE(index.NeighborhoodsOf(99).empty());
}

TEST(NeighborIndexTest, AffectedNeedsBothEndpoints) {
  Cover cover;
  cover.Add({0, 1});
  cover.Add({1, 2});
  NeighborIndex index(cover);
  // Pair (0,1) affects only the first neighborhood; (0,2) affects none.
  EXPECT_EQ(index.AffectedBy({EntityPair(0, 1)}),
            (std::vector<uint32_t>{0}));
  EXPECT_TRUE(index.AffectedBy({EntityPair(0, 2)}).empty());
}

TEST(NeighborIndexTest, AffectedDeduplicates) {
  Cover cover;
  cover.Add({0, 1, 2});
  NeighborIndex index(cover);
  const auto affected =
      index.AffectedBy({EntityPair(0, 1), EntityPair(1, 2)});
  EXPECT_EQ(affected, (std::vector<uint32_t>{0}));
}

}  // namespace
}  // namespace cem::core
