// Persistence unit suite: the framed-IO primitives, the serialization
// accessors (pinned against observable streaming behavior), snapshot
// round-trips (semantic equality AND save->load->save byte identity),
// token-index persistence, WAL framing, and the committed golden v1
// fixture that locks the on-disk format across PRs and hosts.

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/cover.h"
#include "data/bib_generator.h"
#include "data/figure1.h"
#include "mln/mln_matcher.h"
#include "persist/format.h"
#include "persist/snapshot.h"
#include "persist/wal.h"
#include "stream/streaming_matcher.h"
#include "text/token_index.h"
#include "util/execution_context.h"
#include "util/io.h"
#include "util/random.h"

namespace cem {
namespace {

namespace fs = std::filesystem;

using stream::StreamingMatcher;
using stream::StreamingOptions;

/// Fresh scratch directory under the gtest temp root.
std::string ScratchDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("persist_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::unique_ptr<data::Dataset> MakeSmallBib(uint64_t seed) {
  data::BibConfig config = data::BibConfig::DblpLike(0.05);
  config.seed = seed;
  return data::GenerateBibDataset(config);
}

std::vector<data::EntityId> ShuffledRefs(const data::Dataset& dataset,
                                         uint64_t seed) {
  std::vector<data::EntityId> refs = dataset.author_refs();
  Rng rng(seed);
  rng.Shuffle(refs);
  return refs;
}

void FeedChunks(StreamingMatcher& matcher,
                const std::vector<data::EntityId>& refs, size_t chunk_size) {
  for (size_t start = 0; start < refs.size(); start += chunk_size) {
    const size_t end = std::min(refs.size(), start + chunk_size);
    matcher.AddBatch({refs.begin() + start, refs.begin() + end});
  }
}

std::vector<std::vector<data::EntityId>> CoverNeighborhoods(
    const StreamingMatcher& matcher) {
  std::vector<std::vector<data::EntityId>> neighborhoods;
  neighborhoods.reserve(matcher.cover().size());
  for (size_t i = 0; i < matcher.cover().size(); ++i) {
    neighborhoods.push_back(matcher.cover().neighborhood(i).entities);
  }
  return neighborhoods;
}

/// Full state equality of two streaming matchers, field by field (matches,
/// cover, arrival order, seeds, counters) — the "bit-identical" assertion
/// the round-trip and crash tests share.
void ExpectSameState(const StreamingMatcher& a, const StreamingMatcher& b,
                     const std::string& label) {
  EXPECT_EQ(a.matches(), b.matches()) << label;
  EXPECT_EQ(CoverNeighborhoods(a), CoverNeighborhoods(b)) << label;
  EXPECT_EQ(a.incremental_cover().slots(), b.incremental_cover().slots())
      << label;
  EXPECT_EQ(a.incremental_cover().seed_neighborhoods(),
            b.incremental_cover().seed_neighborhoods())
      << label;
  EXPECT_EQ(a.incremental_cover().signatures(),
            b.incremental_cover().signatures())
      << label;
  EXPECT_TRUE(a.stats() == b.stats()) << label;
  EXPECT_EQ(a.incremental_cover().core_membership().SortedEntries(),
            b.incremental_cover().core_membership().SortedEntries())
      << label;
  EXPECT_EQ(a.incremental_cover().full_membership().SortedEntries(),
            b.incremental_cover().full_membership().SortedEntries())
      << label;
}

std::string ReadAll(const std::string& path) {
  std::string bytes;
  EXPECT_TRUE(io::ReadFile(path, &bytes).ok()) << path;
  return bytes;
}

// --- io primitives ----------------------------------------------------------

TEST(IoPrimitives, Crc32MatchesTheStandardCheckValue) {
  // The canonical CRC-32 check: crc("123456789") == 0xCBF43926.
  EXPECT_EQ(io::Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(io::Crc32(""), 0u);
}

TEST(IoPrimitives, BufferCursorRoundTripAndPoisoning) {
  io::Buffer buffer;
  buffer.PutU8(7);
  buffer.PutU32(0xdeadbeefu);
  buffer.PutU64(0x0123456789abcdefULL);
  buffer.PutDouble(0.1);
  buffer.PutString("tokens");
  io::Cursor cursor(buffer.bytes());
  EXPECT_EQ(cursor.GetU8(), 7u);
  EXPECT_EQ(cursor.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(cursor.GetU64(), 0x0123456789abcdefULL);
  EXPECT_EQ(cursor.GetDouble(), 0.1);
  EXPECT_EQ(cursor.GetString(), "tokens");
  EXPECT_TRUE(cursor.AtEnd());
  // Reading past the end poisons the cursor instead of crashing.
  EXPECT_EQ(cursor.GetU64(), 0u);
  EXPECT_FALSE(cursor.ok());
  EXPECT_FALSE(cursor.AtEnd());
}

TEST(IoPrimitives, LittleEndianBytesAreHostIndependent) {
  io::Buffer buffer;
  buffer.PutU32(0x04030201u);
  const std::string& bytes = buffer.bytes();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(bytes[0], 1);
  EXPECT_EQ(bytes[1], 2);
  EXPECT_EQ(bytes[2], 3);
  EXPECT_EQ(bytes[3], 4);
}

TEST(IoPrimitives, FramedRecordsDetectTornAndCorruptTails) {
  const std::string dir = ScratchDir("framing");
  const std::string path = dir + "/records.bin";
  {
    io::FileWriter writer(path);
    ASSERT_TRUE(io::WriteRecord(writer, "first").ok());
    ASSERT_TRUE(io::WriteRecord(writer, "second record").ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  std::string bytes = ReadAll(path);
  size_t pos = 0;
  std::string_view payload;
  EXPECT_EQ(io::ReadRecord(bytes, &pos, &payload), io::RecordVerdict::kRecord);
  EXPECT_EQ(payload, "first");
  EXPECT_EQ(io::ReadRecord(bytes, &pos, &payload), io::RecordVerdict::kRecord);
  EXPECT_EQ(payload, "second record");
  EXPECT_EQ(io::ReadRecord(bytes, &pos, &payload),
            io::RecordVerdict::kEndOfStream);

  // A truncated tail parses as torn, not as a short record.
  std::string torn = bytes.substr(0, bytes.size() - 3);
  pos = 0;
  EXPECT_EQ(io::ReadRecord(torn, &pos, &payload), io::RecordVerdict::kRecord);
  EXPECT_EQ(io::ReadRecord(torn, &pos, &payload), io::RecordVerdict::kTorn);

  // A flipped payload byte fails the checksum.
  std::string corrupt = bytes;
  corrupt[bytes.size() - 2] ^= 0x01;
  pos = 0;
  EXPECT_EQ(io::ReadRecord(corrupt, &pos, &payload),
            io::RecordVerdict::kRecord);
  EXPECT_EQ(io::ReadRecord(corrupt, &pos, &payload), io::RecordVerdict::kTorn);
}

TEST(IoPrimitives, FaultPlanCutsTheWriteStreamAtTheBudget) {
  const std::string dir = ScratchDir("faults");
  const std::string path = dir + "/torn.bin";
  io::FaultPlan faults;
  faults.fail_after_bytes = 10;
  io::FileWriter writer(path, &faults);
  ASSERT_TRUE(writer.Write("01234567").ok());  // 8 bytes, within budget.
  const Status crash = writer.Write("89abcdef");
  EXPECT_FALSE(crash.ok());
  EXPECT_NE(crash.message().find("simulated crash"), std::string::npos);
  // Further writes keep failing; the file holds exactly the budget.
  EXPECT_FALSE(writer.Write("x").ok());
  writer.Close();
  EXPECT_EQ(ReadAll(path), "0123456789");
}

TEST(IoPrimitives, FramedFileRejectsBadMagicAndNewVersions) {
  const std::string dir = ScratchDir("framed");
  const std::string good = dir + "/good.bin";
  ASSERT_TRUE(io::WriteFramedFile(good, "CEMTEST1", 1, "payload").ok());
  Result<std::string> ok = io::ReadFramedFile(good, "CEMTEST1", 1);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, "payload");

  Result<std::string> wrong_magic = io::ReadFramedFile(good, "CEMTEST2", 1);
  EXPECT_FALSE(wrong_magic.ok());
  EXPECT_NE(wrong_magic.status().message().find("bad magic"),
            std::string::npos);

  const std::string newer = dir + "/newer.bin";
  ASSERT_TRUE(io::WriteFramedFile(newer, "CEMTEST1", 2, "payload").ok());
  Result<std::string> unsupported = io::ReadFramedFile(newer, "CEMTEST1", 1);
  EXPECT_FALSE(unsupported.ok());
  EXPECT_NE(unsupported.status().message().find("unsupported version"),
            std::string::npos);
}

TEST(IoPrimitives, SyncPersistsBytesAndDirectoryEntries) {
  const std::string dir = ScratchDir("sync");
  const std::string path = dir + "/synced.bin";
  io::FileWriter writer(path);
  ASSERT_TRUE(writer.Write("payload").ok());
  ASSERT_TRUE(writer.Sync().ok());
  EXPECT_EQ(ReadAll(path), "payload");
  ASSERT_TRUE(writer.Close().ok());
  EXPECT_TRUE(io::SyncDir(dir).ok());
  EXPECT_FALSE(io::SyncDir(dir + "/nonexistent").ok());
}

TEST(IoPrimitivesDeathTest, AccessingABadLoadResultDies) {
  const std::string dir = ScratchDir("death");
  Result<std::string> missing = io::ReadFramedFile(dir + "/absent.bin",
                                                   "CEMTEST1", 1);
  ASSERT_FALSE(missing.ok());
  EXPECT_DEATH({ (void)missing.value(); }, "");
}

// --- serialization accessors (pinned against observable behavior) -----------

TEST(SerializationAccessors, EnumerateExactlyTheObservableStreamState) {
  const data::Figure1 fig = data::MakeFigure1();
  const mln::MlnMatcher matcher(*fig.dataset, mln::MlnWeights::Figure1Demo());
  StreamingMatcher streaming(matcher);
  const std::vector<data::EntityId> refs =
      ShuffledRefs(*fig.dataset, /*seed=*/3);
  for (data::EntityId ref : refs) streaming.Add(ref);
  const stream::IncrementalCover& cover = streaming.incremental_cover();

  // slots() is the arrival order and matches is_live/num_live.
  ASSERT_EQ(cover.slots().size(), streaming.num_live());
  EXPECT_EQ(cover.slots(), refs);
  for (data::EntityId ref : cover.slots()) {
    EXPECT_TRUE(streaming.is_live(ref));
  }

  // signatures() holds exactly ComputeSignature of each slot's reference.
  ASSERT_EQ(cover.signatures().size(), refs.size());
  for (size_t slot = 0; slot < refs.size(); ++slot) {
    EXPECT_EQ(cover.signatures()[slot], cover.ComputeSignature(refs[slot]))
        << "slot " << slot;
  }

  // Every seed id names a neighborhood containing its reference as a core
  // member; non-seed slots were absorbed by a tight match.
  ASSERT_EQ(cover.seed_neighborhoods().size(), refs.size());
  size_t seeds = 0;
  for (size_t slot = 0; slot < refs.size(); ++slot) {
    const uint32_t seed = cover.seed_neighborhoods()[slot];
    if (seed == stream::IncrementalCover::kNoSeed) continue;
    ++seeds;
    ASSERT_LT(seed, cover.cover().size());
    const std::vector<data::EntityId>& members =
        cover.cover().neighborhood(seed).entities;
    EXPECT_TRUE(std::binary_search(members.begin(), members.end(),
                                   refs[slot]));
  }
  EXPECT_EQ(seeds, cover.stats().seeds_created);

  // full_membership() mirrors the cover exactly, and HomesOf agrees with
  // its rows.
  const std::vector<core::MembershipEntry> full =
      cover.full_membership().SortedEntries();
  size_t cover_memberships = 0;
  for (size_t i = 0; i < cover.cover().size(); ++i) {
    cover_memberships += cover.cover().neighborhood(i).entities.size();
  }
  size_t entry_memberships = 0;
  for (const core::MembershipEntry& e : full) {
    entry_memberships += e.homes.size();
    EXPECT_EQ(e.homes, cover.HomesOf(e.entity));
    EXPECT_EQ(e.first_home, cover.full_membership().FirstHome(e.entity));
    for (uint32_t n : e.homes) {
      const std::vector<data::EntityId>& members =
          cover.cover().neighborhood(n).entities;
      EXPECT_TRUE(std::binary_search(members.begin(), members.end(),
                                     e.entity));
    }
  }
  EXPECT_EQ(entry_memberships, cover_memberships);

  // core_membership() is a sub-membership of the full one.
  for (const core::MembershipEntry& e :
       cover.core_membership().SortedEntries()) {
    const std::vector<uint32_t>& full_homes = cover.HomesOf(e.entity);
    for (uint32_t n : e.homes) {
      EXPECT_TRUE(std::binary_search(full_homes.begin(), full_homes.end(), n));
    }
  }
}

TEST(SerializationAccessors, CoverMembershipEntriesRoundTrip) {
  const auto dataset = MakeSmallBib(801);
  const mln::MlnMatcher matcher(*dataset);
  StreamingMatcher streaming(matcher);
  FeedChunks(streaming, ShuffledRefs(*dataset, 5), 16);
  const core::CoverMembership& original =
      streaming.incremental_cover().full_membership();
  const std::vector<core::MembershipEntry> entries = original.SortedEntries();
  ASSERT_FALSE(entries.empty());
  const core::CoverMembership rebuilt =
      core::CoverMembership::FromEntries(entries);
  EXPECT_EQ(rebuilt.num_entities(), original.num_entities());
  EXPECT_EQ(rebuilt.SortedEntries(), entries);
  for (const core::MembershipEntry& e : entries) {
    EXPECT_TRUE(rebuilt.Contains(e.entity));
    EXPECT_EQ(rebuilt.HomesOf(e.entity), original.HomesOf(e.entity));
    EXPECT_EQ(rebuilt.FirstHome(e.entity), original.FirstHome(e.entity));
  }
}

// --- snapshot round-trips ---------------------------------------------------

TEST(SnapshotRoundTrip, LoadRestoresTheExactStateAndFutureIngest) {
  const auto dataset = MakeSmallBib(802);
  const mln::MlnMatcher matcher(*dataset);
  const std::vector<data::EntityId> refs = ShuffledRefs(*dataset, 11);
  const size_t half = (refs.size() / 2 / 16) * 16;  // A chunk boundary.
  const std::string dir = ScratchDir("roundtrip");

  StreamingMatcher original(matcher);
  FeedChunks(original, {refs.begin(), refs.begin() + half}, 16);
  ASSERT_TRUE(persist::SaveSnapshot(dir, original).ok());

  const std::vector<persist::SnapshotRef> snapshots =
      persist::ListSnapshots(dir);
  ASSERT_EQ(snapshots.size(), 1u);
  EXPECT_EQ(snapshots[0].inserts, half);

  StreamingMatcher loaded(matcher);
  ASSERT_TRUE(persist::LoadSnapshot(snapshots[0].path, loaded).ok());
  ExpectSameState(loaded, original, "after load");

  // The restored matcher continues bit-identically.
  StreamingMatcher uninterrupted(matcher);
  FeedChunks(uninterrupted, refs, 16);
  FeedChunks(loaded, {refs.begin() + half, refs.end()}, 16);
  ExpectSameState(loaded, uninterrupted, "after resume");
}

TEST(SnapshotRoundTrip, SaveLoadSaveIsByteIdentical) {
  const auto dataset = MakeSmallBib(803);
  const mln::MlnMatcher matcher(*dataset);
  ExecutionContext ctx(2, /*num_shards=*/4);
  StreamingOptions options;
  options.context = &ctx;
  const std::vector<data::EntityId> refs = ShuffledRefs(*dataset, 12);

  StreamingMatcher original(matcher, options);
  FeedChunks(original, refs, 32);
  const std::string first_dir = ScratchDir("bytes_first");
  ASSERT_TRUE(persist::SaveSnapshot(first_dir, original).ok());
  const std::string snap = persist::ListSnapshots(first_dir)[0].path;

  StreamingMatcher loaded(matcher, options);
  ASSERT_TRUE(persist::LoadSnapshot(snap, loaded).ok());
  const std::string second_dir = ScratchDir("bytes_second");
  ASSERT_TRUE(persist::SaveSnapshot(second_dir, loaded).ok());
  const std::string resnap = persist::ListSnapshots(second_dir)[0].path;

  size_t files = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(snap)) {
    const std::string name = entry.path().filename().string();
    ++files;
    EXPECT_EQ(ReadAll((fs::path(resnap) / name).string()),
              ReadAll(entry.path().string()))
        << name;
  }
  // MANIFEST + stream + matches + cover + 4 sig + 4 lsh shards.
  EXPECT_EQ(files, 12u);
}

TEST(SnapshotRoundTrip, ShardCountChangeFallsBackToRebuild) {
  const auto dataset = MakeSmallBib(804);
  const mln::MlnMatcher matcher(*dataset);
  const std::vector<data::EntityId> refs = ShuffledRefs(*dataset, 13);
  const size_t half = (refs.size() / 2 / 8) * 8;

  ExecutionContext save_ctx(2, /*num_shards=*/4);
  StreamingOptions save_options;
  save_options.context = &save_ctx;
  StreamingMatcher original(matcher, save_options);
  FeedChunks(original, {refs.begin(), refs.begin() + half}, 8);
  const std::string dir = ScratchDir("shard_change");
  ASSERT_TRUE(persist::SaveSnapshot(dir, original).ok());
  const std::string snap = persist::ListSnapshots(dir)[0].path;

  for (const uint32_t shards : {1u, 32u}) {
    ExecutionContext load_ctx(4, shards);
    StreamingOptions load_options;
    load_options.context = &load_ctx;
    StreamingMatcher loaded(matcher, load_options);
    ASSERT_TRUE(persist::LoadSnapshot(snap, loaded).ok()) << shards;

    StreamingMatcher uninterrupted(matcher, load_options);
    FeedChunks(uninterrupted, refs, 8);
    FeedChunks(loaded, {refs.begin() + half, refs.end()}, 8);
    ExpectSameState(loaded, uninterrupted,
                    "resume with " + std::to_string(shards) + " shards");
  }
}

TEST(SnapshotRoundTrip, RejectsForeignFingerprints) {
  const auto dataset = MakeSmallBib(805);
  const mln::MlnMatcher matcher(*dataset);
  StreamingMatcher original(matcher);
  FeedChunks(original, ShuffledRefs(*dataset, 14), 16);
  const std::string dir = ScratchDir("fingerprint");
  ASSERT_TRUE(persist::SaveSnapshot(dir, original).ok());
  const std::string snap = persist::ListSnapshots(dir)[0].path;

  // Same dataset, different thresholds: the fingerprint must refuse.
  StreamingOptions other_options;
  other_options.cover.loose = 0.25;
  StreamingMatcher other(matcher, other_options);
  const Status status = persist::LoadSnapshot(snap, other);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("fingerprint mismatch"), std::string::npos);
}

TEST(SnapshotRobustness, ImplausibleInsertCountIsRejectedNotAllocated) {
  // A CRC-valid snapshot whose counts claim far more state than its bytes
  // could encode must fail the parse (and be skippable by recovery), not
  // die in a 2^60-element reserve.
  const auto dataset = MakeSmallBib(810);
  const mln::MlnMatcher matcher(*dataset);
  StreamingMatcher victim(matcher);
  const persist::StateFingerprint fingerprint =
      persist::StateFingerprint::Of(*dataset, {});
  const std::string dir = ScratchDir("huge_counts");
  const std::string snap = dir + "/" + persist::SnapshotDirName(8);
  fs::create_directories(snap);
  const uint64_t huge = uint64_t{1} << 60;
  {
    io::Buffer out;
    out.PutU8(static_cast<uint8_t>(persist::Section::kManifest));
    fingerprint.AppendTo(out);
    out.PutU64(huge);  // inserts
    out.PutU32(1);     // shards
    out.PutU64(0);     // neighborhoods
    out.PutU64(0);     // matches
    out.PutU64(0);     // core entries
    out.PutU64(0);     // full entries
    ASSERT_TRUE(io::WriteFramedFile(snap + "/MANIFEST",
                                    persist::kSnapshotMagic,
                                    persist::kSnapshotVersion,
                                    out.bytes()).ok());
  }
  {
    io::Buffer out;
    out.PutU8(static_cast<uint8_t>(persist::Section::kStream));
    out.PutU64(huge);  // Agrees with the MANIFEST, disagrees with reality.
    ASSERT_TRUE(io::WriteFramedFile(snap + "/stream.bin",
                                    persist::kSnapshotMagic,
                                    persist::kSnapshotVersion,
                                    out.bytes()).ok());
  }
  const Status status = persist::LoadSnapshot(snap, victim);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("implausible insert count"),
            std::string::npos);
}

// --- token index ------------------------------------------------------------

TEST(TokenIndexPersistence, RoundTripsAcrossShardCounts) {
  std::vector<std::vector<std::string>> docs = {
      {"Alice", "Smith", "graph"},
      {"alice", "smith", "graphs"},
      {"Bob", "Jones"},
      {"carol", "smith", "entity", "matching"},
      {},
      {"entity", "matching", "survey"},
  };
  ExecutionContext ctx(2, /*num_shards=*/3);
  text::TokenIndex original(3);
  original.AddDocuments(docs, ctx);
  const std::string dir = ScratchDir("token_index");
  ASSERT_TRUE(persist::SaveTokenIndex(dir, original, ctx).ok());

  for (const uint32_t shards : {1u, 3u, 8u}) {
    text::TokenIndex loaded(shards);
    ASSERT_TRUE(persist::LoadTokenIndex(dir, loaded, ctx).ok()) << shards;
    EXPECT_EQ(loaded.num_documents(), original.num_documents());
    EXPECT_EQ(loaded.num_tokens(), original.num_tokens());
    EXPECT_EQ(loaded.num_postings(), original.num_postings());
    for (uint32_t doc = 0; doc < original.num_documents(); ++doc) {
      const auto expected_tokens = original.doc_tokens(doc);
      const auto actual_tokens = loaded.doc_tokens(doc);
      ASSERT_EQ(actual_tokens.size(), expected_tokens.size()) << "doc " << doc;
      for (size_t t = 0; t < expected_tokens.size(); ++t) {
        EXPECT_EQ(actual_tokens[t].view(), expected_tokens[t].view());
        EXPECT_EQ(actual_tokens[t].hash, expected_tokens[t].hash);
      }
    }
    for (uint32_t doc = 0; doc < original.num_documents(); ++doc) {
      size_t scored_original = 0;
      size_t scored_loaded = 0;
      const auto expected = original.Candidates(doc, 0.2, &scored_original);
      const auto actual = loaded.Candidates(doc, 0.2, &scored_loaded);
      ASSERT_EQ(actual.size(), expected.size()) << "doc " << doc;
      EXPECT_EQ(scored_loaded, scored_original);
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(actual[i].doc_id, expected[i].doc_id);
        EXPECT_DOUBLE_EQ(actual[i].score, expected[i].score);
      }
    }
    // A non-empty index refuses to load over itself.
    EXPECT_FALSE(persist::LoadTokenIndex(dir, loaded, ctx).ok());
  }
}

// --- WAL --------------------------------------------------------------------

TEST(Wal, AppendsAndReadsChunksBehindAFingerprint) {
  const auto dataset = MakeSmallBib(806);
  stream::IncrementalCoverOptions cover_options;
  const persist::StateFingerprint fingerprint =
      persist::StateFingerprint::Of(*dataset, cover_options);
  const std::string dir = ScratchDir("wal");
  const std::string path = dir + "/wal.log";

  persist::WalWriter writer(path);
  ASSERT_TRUE(writer.Create(fingerprint).ok());
  ASSERT_TRUE(writer.AppendChunk({1, 2, 3}).ok());
  ASSERT_TRUE(writer.AppendChunk({9}).ok());
  EXPECT_FALSE(writer.AppendChunk({}).ok());  // Empty chunks are a bug.

  Result<persist::WalContents> contents =
      persist::ReadWal(path, fingerprint);
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->header_valid);
  EXPECT_FALSE(contents->torn_tail);
  EXPECT_EQ(contents->num_inserts, 4u);
  ASSERT_EQ(contents->chunks.size(), 2u);
  EXPECT_EQ(contents->chunks[0], (std::vector<data::EntityId>{1, 2, 3}));
  EXPECT_EQ(contents->chunks[1], (std::vector<data::EntityId>{9}));

  // Reopen for append: existing records survive, new ones follow.
  persist::WalWriter append(path);
  ASSERT_TRUE(append.OpenForAppend().ok());
  ASSERT_TRUE(append.AppendChunk({4, 5}).ok());
  contents = persist::ReadWal(path, fingerprint);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->num_inserts, 6u);

  // A fingerprint from different options refuses the file.
  stream::IncrementalCoverOptions other = cover_options;
  other.tight = 0.7;
  const Result<persist::WalContents> mismatch = persist::ReadWal(
      path, persist::StateFingerprint::Of(*dataset, other));
  EXPECT_FALSE(mismatch.ok());
  EXPECT_NE(mismatch.status().message().find("fingerprint mismatch"),
            std::string::npos);

  // Missing file reads as empty (nothing was ever applied).
  const Result<persist::WalContents> missing =
      persist::ReadWal(dir + "/absent.log", fingerprint);
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(missing->header_valid);
  EXPECT_EQ(missing->num_inserts, 0u);
}

TEST(Wal, HeaderRecordsTheBaseInsertCount) {
  const auto dataset = MakeSmallBib(808);
  const persist::StateFingerprint fingerprint =
      persist::StateFingerprint::Of(*dataset, {});
  const std::string dir = ScratchDir("wal_base");
  const std::string path = dir + "/wal.log";

  // A fresh WAL starts at insert 0.
  {
    persist::WalWriter writer(path);
    ASSERT_TRUE(writer.Create(fingerprint).ok());
  }
  Result<persist::WalContents> contents = persist::ReadWal(path, fingerprint);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->base_inserts, 0u);

  // A WAL rebuilt next to a surviving snapshot records where its chunks
  // continue from; chunk records count from there, not from 0.
  {
    persist::WalWriter writer(path);
    ASSERT_TRUE(writer.Create(fingerprint, /*base_inserts=*/57).ok());
    ASSERT_TRUE(writer.AppendChunk({1, 2}).ok());
  }
  contents = persist::ReadWal(path, fingerprint);
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->header_valid);
  EXPECT_EQ(contents->base_inserts, 57u);
  EXPECT_EQ(contents->num_inserts, 2u);
}

TEST(Wal, HugeChunkCountFailsTheParseInsteadOfAllocating) {
  const auto dataset = MakeSmallBib(809);
  const persist::StateFingerprint fingerprint =
      persist::StateFingerprint::Of(*dataset, {});
  const std::string dir = ScratchDir("wal_huge");
  const std::string path = dir + "/wal.log";
  {
    persist::WalWriter writer(path);
    ASSERT_TRUE(writer.Create(fingerprint).ok());
    ASSERT_TRUE(writer.AppendChunk({1, 2, 3}).ok());
  }
  // Append a CRC-valid chunk record whose count field claims 2^32-1
  // entries but carries only two: the clamped reserve plus the poisoned
  // cursor must turn this into a skippable parse error, not a bad_alloc.
  {
    io::FileWriter writer(path, nullptr, io::FileWriter::Mode::kAppend);
    io::Buffer payload;
    payload.PutU8(2);  // kChunkRecord
    payload.PutU32(0xFFFFFFFFu);
    payload.PutU32(4);
    payload.PutU32(5);
    ASSERT_TRUE(io::WriteRecord(writer, payload.bytes()).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  const Result<persist::WalContents> contents =
      persist::ReadWal(path, fingerprint);
  EXPECT_FALSE(contents.ok());
  EXPECT_NE(contents.status().message().find("malformed chunk record"),
            std::string::npos);
}

TEST(Wal, TornAndFlippedTailsDropOnlyTheDamagedSuffix) {
  const auto dataset = MakeSmallBib(807);
  stream::IncrementalCoverOptions cover_options;
  const persist::StateFingerprint fingerprint =
      persist::StateFingerprint::Of(*dataset, cover_options);
  const std::string dir = ScratchDir("wal_torn");
  const std::string path = dir + "/wal.log";
  {
    persist::WalWriter writer(path);
    ASSERT_TRUE(writer.Create(fingerprint).ok());
    ASSERT_TRUE(writer.AppendChunk({1, 2, 3}).ok());
    ASSERT_TRUE(writer.AppendChunk({4, 5}).ok());
  }
  const std::string intact = ReadAll(path);

  // Torn mid-final-record: the first chunk survives, the tail reports torn.
  fs::resize_file(path, intact.size() - 3);
  Result<persist::WalContents> contents =
      persist::ReadWal(path, fingerprint);
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->header_valid);
  EXPECT_TRUE(contents->torn_tail);
  ASSERT_EQ(contents->chunks.size(), 1u);
  EXPECT_EQ(contents->chunks[0], (std::vector<data::EntityId>{1, 2, 3}));
  EXPECT_LT(contents->valid_bytes, intact.size());

  // A flipped byte inside the final record's checksum drops that record.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    std::string flipped = intact;
    flipped[intact.size() - 10] ^= 0x01;
    out.write(flipped.data(), static_cast<std::streamsize>(flipped.size()));
  }
  contents = persist::ReadWal(path, fingerprint);
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->torn_tail);
  EXPECT_EQ(contents->chunks.size(), 1u);

  // A file cut inside the 12-byte prefix reads as never-created.
  fs::resize_file(path, 7);
  contents = persist::ReadWal(path, fingerprint);
  ASSERT_TRUE(contents.ok());
  EXPECT_FALSE(contents->header_valid);
  EXPECT_EQ(contents->num_inserts, 0u);

  // A full-size prefix with the wrong magic is a wrong file, not a crash.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    std::string wrong = intact;
    wrong[0] = 'X';
    out.write(wrong.data(), static_cast<std::streamsize>(wrong.size()));
  }
  const Result<persist::WalContents> bad_magic =
      persist::ReadWal(path, fingerprint);
  EXPECT_FALSE(bad_magic.ok());
  EXPECT_NE(bad_magic.status().message().find("bad magic"),
            std::string::npos);
}

// --- golden v1 fixture ------------------------------------------------------

/// The committed fixture: a v1 snapshot of the Figure 1 corpus streamed in
/// a fixed shuffled order with 4 LSH shards. Regenerate (only on a
/// deliberate format change, with a version bump) via:
///   CEM_WRITE_GOLDEN=1 ./persist_test --gtest_filter='GoldenV1.*'
std::string GoldenDir() {
  return std::string(CEM_TEST_DATA_DIR) + "/golden_v1";
}

struct GoldenSetup {
  data::Figure1 fig;
  std::unique_ptr<mln::MlnMatcher> matcher;
  ExecutionContext ctx{1, /*num_shards=*/4};
  StreamingOptions options;

  GoldenSetup() : fig(data::MakeFigure1()) {
    matcher = std::make_unique<mln::MlnMatcher>(*fig.dataset,
                                                mln::MlnWeights::Figure1Demo());
    options.context = &ctx;
  }

  std::unique_ptr<StreamingMatcher> Stream() const {
    auto streaming = std::make_unique<StreamingMatcher>(*matcher, options);
    FeedChunks(*streaming, ShuffledRefs(*fig.dataset, /*seed=*/1), 4);
    return streaming;
  }
};

TEST(GoldenV1, FixtureLoadsAndMatchesAFreshStream) {
  const GoldenSetup setup;
  if (std::getenv("CEM_WRITE_GOLDEN") != nullptr) {
    fs::remove_all(GoldenDir());
    ASSERT_TRUE(persist::SaveSnapshot(GoldenDir(), *setup.Stream()).ok());
    GTEST_SKIP() << "wrote golden fixture to " << GoldenDir();
  }
  const std::vector<persist::SnapshotRef> snapshots =
      persist::ListSnapshots(GoldenDir());
  ASSERT_EQ(snapshots.size(), 1u)
      << "missing committed fixture under " << GoldenDir();

  StreamingMatcher loaded(*setup.matcher, setup.options);
  ASSERT_TRUE(persist::LoadSnapshot(snapshots[0].path, loaded).ok());
  const std::unique_ptr<StreamingMatcher> fresh = setup.Stream();
  ExpectSameState(loaded, *fresh, "golden");
}

TEST(GoldenV1, ReSaveReproducesTheCommittedBytesExactly) {
  const GoldenSetup setup;
  if (std::getenv("CEM_WRITE_GOLDEN") != nullptr) {
    GTEST_SKIP() << "fixture being (re)written by the load test";
  }
  const std::vector<persist::SnapshotRef> snapshots =
      persist::ListSnapshots(GoldenDir());
  ASSERT_EQ(snapshots.size(), 1u);
  const std::string dir = ScratchDir("golden_resave");
  ASSERT_TRUE(persist::SaveSnapshot(dir, *setup.Stream()).ok());
  const std::string resnap = persist::ListSnapshots(dir)[0].path;

  size_t files = 0;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(snapshots[0].path)) {
    const std::string name = entry.path().filename().string();
    ++files;
    EXPECT_EQ(ReadAll((fs::path(resnap) / name).string()),
              ReadAll(entry.path().string()))
        << name << " drifted from the committed v1 bytes — a format change "
                   "needs a version bump, not a fixture rewrite";
  }
  EXPECT_GE(files, 5u);
}

TEST(GoldenV1, UnknownVersionAndBadMagicAreRejectedNotMisread) {
  const GoldenSetup setup;
  const std::vector<persist::SnapshotRef> snapshots =
      persist::ListSnapshots(GoldenDir());
  ASSERT_EQ(snapshots.size(), 1u);
  const std::string dir = ScratchDir("golden_tamper");
  fs::copy(snapshots[0].path, dir + "/" + persist::SnapshotDirName(6),
           fs::copy_options::recursive);
  const std::string snap = persist::ListSnapshots(dir)[0].path;

  // Bump the MANIFEST's version field (offset 8, little-endian u32).
  const std::string manifest = snap + "/MANIFEST";
  std::string bytes = ReadAll(manifest);
  {
    bytes[8] = 2;
    std::ofstream out(manifest, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  StreamingMatcher versioned(*setup.matcher, setup.options);
  Status status = persist::LoadSnapshot(snap, versioned);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("unsupported version"), std::string::npos);

  // Break the magic instead.
  {
    bytes[8] = 1;
    bytes[0] ^= 0x01;
    std::ofstream out(manifest, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  StreamingMatcher magicked(*setup.matcher, setup.options);
  status = persist::LoadSnapshot(snap, magicked);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("bad magic"), std::string::npos);
}

}  // namespace
}  // namespace cem
