#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "util/arena.h"
#include "util/execution_context.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/table_writer.h"
#include "util/thread_pool.h"
#include "util/union_find.h"

namespace cem {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad thing");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      NotFoundError("x").code(),          OutOfRangeError("x").code(),
      FailedPreconditionError("x").code(), InternalError("x").code(),
      UnimplementedError("x").code(),      InvalidArgumentError("x").code(),
  };
  EXPECT_EQ(codes.size(), 6u);
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << NotFoundError("gone");
  EXPECT_EQ(os.str(), "NOT_FOUND: gone");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(NotFoundError("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ReturnIfErrorMacro) {
  auto helper = [](bool fail) -> Status {
    CEM_RETURN_IF_ERROR(fail ? InternalError("inner") : OkStatus());
    return OkStatus();
  };
  EXPECT_TRUE(helper(false).ok());
  EXPECT_EQ(helper(true).code(), StatusCode::kInternal);
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.Next() == b.Next() ? 1 : 0;
  EXPECT_LT(equal, 4);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, ZipfSkewsLow) {
  Rng rng(19);
  int first_bucket = 0;
  for (int i = 0; i < 5000; ++i) {
    uint64_t v = rng.NextZipf(100, 1.0);
    EXPECT_LT(v, 100u);
    first_bucket += v == 0 ? 1 : 0;
  }
  // Item 0 should be far more frequent than uniform (1%).
  EXPECT_GT(first_bucket, 500);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(29);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

// ----------------------------------------------------------- string_util --

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x", ','), (std::vector<std::string>{"x"}));
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("MiXeD 123"), "mixed 123");
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y  "), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t\n "), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_TRUE(StartsWith("hello", ""));
  EXPECT_FALSE(StartsWith("he", "hello"));
}

TEST(StringUtilTest, CharNgrams) {
  EXPECT_EQ(CharNgrams("abcd", 3), (std::vector<std::string>{"abc", "bcd"}));
  EXPECT_EQ(CharNgrams("ab", 3), (std::vector<std::string>{"ab"}));
  EXPECT_TRUE(CharNgrams("", 3).empty());
  EXPECT_TRUE(CharNgrams("abc", 0).empty());
}

// ------------------------------------------------------------ UnionFind --

TEST(UnionFindTest, SingletonsInitially) {
  UnionFind uf(4);
  EXPECT_EQ(uf.num_sets(), 4u);
  EXPECT_FALSE(uf.Connected(0, 1));
}

TEST(UnionFindTest, UnionConnects) {
  UnionFind uf(5);
  uf.Union(0, 1);
  uf.Union(1, 2);
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_FALSE(uf.Connected(0, 3));
  EXPECT_EQ(uf.num_sets(), 3u);
}

TEST(UnionFindTest, GroupsAreSortedPartition) {
  UnionFind uf(6);
  uf.Union(4, 1);
  uf.Union(2, 5);
  auto groups = uf.Groups();
  ASSERT_EQ(groups.size(), 4u);
  EXPECT_EQ(groups[0], (std::vector<uint32_t>{0}));
  EXPECT_EQ(groups[1], (std::vector<uint32_t>{1, 4}));
  EXPECT_EQ(groups[2], (std::vector<uint32_t>{2, 5}));
  EXPECT_EQ(groups[3], (std::vector<uint32_t>{3}));
}

TEST(UnionFindTest, ResizeAddsSingletons) {
  UnionFind uf(2);
  uf.Union(0, 1);
  uf.Resize(4);
  EXPECT_EQ(uf.num_sets(), 3u);
  EXPECT_FALSE(uf.Connected(0, 3));
}

TEST(UnionFindTest, IdempotentUnion) {
  UnionFind uf(3);
  uf.Union(0, 1);
  uf.Union(0, 1);
  uf.Union(1, 0);
  EXPECT_EQ(uf.num_sets(), 2u);
}

// ----------------------------------------------------------- ThreadPool --

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  ParallelFor(pool, 50, [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.Wait();  // Must not deadlock.
  SUCCEED();
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Schedule([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, WaitRethrowsTaskException) {
  ThreadPool pool(2);
  pool.Schedule([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The exception is cleared and the pool stays usable.
  std::atomic<int> counter{0};
  pool.Schedule([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, WaitRethrowsFirstOfManyExceptions) {
  ThreadPool pool(2);
  for (int i = 0; i < 8; ++i) {
    pool.Schedule([] { throw std::runtime_error("boom"); });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  pool.Wait();  // Only the first capture is kept; later Waits are clean.
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(ParallelFor(pool, 100,
                           [](size_t i) {
                             if (i == 17) throw std::runtime_error("bad item");
                           }),
               std::runtime_error);
  // A failed ParallelFor leaves the pool reusable.
  std::atomic<int> counter{0};
  ParallelFor(pool, 10, [&counter](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, ParallelForStopsIssuingAfterFailure) {
  // An early failure abandons the (vast) remainder of the range; the two
  // threads in flight can finish at most a sliver of it first.
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  EXPECT_THROW(ParallelFor(pool, 1000000,
                           [&ran](size_t i) {
                             if (i == 3) throw std::runtime_error("stop");
                             ran.fetch_add(1);
                           }),
               std::runtime_error);
  EXPECT_LT(ran.load(), 1000000);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // The caller participates in the iteration loop, so a ParallelFor issued
  // from inside a pool task completes even when every worker is busy.
  ThreadPool pool(2);
  std::atomic<int> leaf{0};
  ParallelFor(pool, 4, [&pool, &leaf](size_t) {
    ParallelFor(pool, 8, [&leaf](size_t) { leaf.fetch_add(1); });
  });
  EXPECT_EQ(leaf.load(), 32);
}

TEST(ThreadPoolTest, SharedPoolIsSingletonAndRuns) {
  ThreadPool& a = SharedThreadPool();
  ThreadPool& b = SharedThreadPool();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_threads(), 1u);
  std::atomic<int> counter{0};
  ParallelFor(a, 25, [&counter](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 25);
}

// ----------------------------------------------------- ExecutionContext --

TEST(ExecutionContextTest, DefaultUsesSharedPool) {
  const ExecutionContext& ctx = ExecutionContext::Default();
  EXPECT_EQ(&ctx.pool(), &SharedThreadPool());
  EXPECT_GE(ctx.num_threads(), 1u);
  EXPECT_GE(ctx.num_shards(), 1u);
}

TEST(ExecutionContextTest, DedicatedPoolHonoursThreadCount) {
  // Pin the env so an exported CEM_LSH_SHARDS cannot skew the default
  // shard-count assertion (each gtest case runs in its own process).
  unsetenv("CEM_LSH_SHARDS");
  ExecutionContext ctx(3);
  EXPECT_EQ(ctx.num_threads(), 3u);
  EXPECT_NE(&ctx.pool(), &SharedThreadPool());
  // Default shard count scales with the worker count.
  EXPECT_GE(ctx.num_shards(), ctx.num_threads());
}

TEST(ExecutionContextTest, ExplicitShardsAndSeed) {
  ExecutionContext ctx(2, 16, 99);
  EXPECT_EQ(ctx.num_shards(), 16u);
  EXPECT_EQ(ctx.seed(), 99u);
}

// ---------------------------------------------------------- TableWriter --

TEST(TableWriterTest, AlignedOutput) {
  TableWriter t({"name", "v"});
  t.AddRow({"x", "1.5"});
  t.AddRow({"longer", "2"});
  std::ostringstream os;
  t.Print(os);
  const std::string expected =
      "| name   | v   |\n"
      "|--------|-----|\n"
      "| x      | 1.5 |\n"
      "| longer | 2   |\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(TableWriterTest, CsvOutput) {
  TableWriter t({"a", "b"});
  t.AddRow({"1", "2"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TableWriterTest, NumFormatsPrecision) {
  EXPECT_EQ(TableWriter::Num(1.23456, 2), "1.23");
  EXPECT_EQ(TableWriter::Num(2.0, 0), "2");
}

TEST(TableWriterTest, JsonOutputTypesCells) {
  TableWriter t({"name", "v"});
  t.AddRow({"x", "1.5"});
  t.AddRow({"say \"hi\"", "-2"});
  std::ostringstream os;
  t.PrintJson(os);
  EXPECT_EQ(os.str(),
            "{\"headers\": [\"name\", \"v\"], "
            "\"rows\": [[\"x\", 1.5], [\"say \\\"hi\\\"\", -2]]}");
}

TEST(TableWriterTest, JsonQuotesNonFiniteNumbers) {
  // JSON has no NaN/Inf literals; %.*f renders them as "nan"/"inf", which
  // must stay strings or the report is unparseable.
  TableWriter t({"v"});
  t.AddRow({TableWriter::Num(std::nan(""))});
  t.AddRow({TableWriter::Num(std::numeric_limits<double>::infinity())});
  std::ostringstream os;
  t.PrintJson(os);
  EXPECT_EQ(os.str(),
            "{\"headers\": [\"v\"], \"rows\": [[\"nan\"], [\"inf\"]]}");
}

// ---------------------------------------------------------------- Logging --

TEST(LoggingTest, ParseLogSeverityAcceptsNamesAnyCase) {
  EXPECT_EQ(ParseLogSeverity("info"), LogSeverity::kInfo);
  EXPECT_EQ(ParseLogSeverity("INFO"), LogSeverity::kInfo);
  EXPECT_EQ(ParseLogSeverity("Warning"), LogSeverity::kWarning);
  EXPECT_EQ(ParseLogSeverity("warn"), LogSeverity::kWarning);
  EXPECT_EQ(ParseLogSeverity("error"), LogSeverity::kError);
  EXPECT_EQ(ParseLogSeverity("FATAL"), LogSeverity::kFatal);
}

TEST(LoggingTest, ParseLogSeverityAcceptsNumericLevels) {
  EXPECT_EQ(ParseLogSeverity("0"), LogSeverity::kInfo);
  EXPECT_EQ(ParseLogSeverity("1"), LogSeverity::kWarning);
  EXPECT_EQ(ParseLogSeverity("2"), LogSeverity::kError);
  EXPECT_EQ(ParseLogSeverity("3"), LogSeverity::kFatal);
}

TEST(LoggingTest, ParseLogSeverityRejectsGarbage) {
  EXPECT_EQ(ParseLogSeverity(""), std::nullopt);
  EXPECT_EQ(ParseLogSeverity("verbose"), std::nullopt);
  EXPECT_EQ(ParseLogSeverity("4"), std::nullopt);
  EXPECT_EQ(ParseLogSeverity("-1"), std::nullopt);
  EXPECT_EQ(ParseLogSeverity("info "), std::nullopt);
}

TEST(LoggingTest, ResolveEnvValueUsesParsedSeverity) {
  bool fell_back = true;
  EXPECT_EQ(ResolveLogSeverityEnvValue("error", &fell_back),
            LogSeverity::kError);
  EXPECT_FALSE(fell_back);
}

TEST(LoggingTest, ResolveEnvValueUnsetMeansInfoWithoutFallbackWarning) {
  bool fell_back = true;
  EXPECT_EQ(ResolveLogSeverityEnvValue(nullptr, &fell_back),
            LogSeverity::kInfo);
  EXPECT_FALSE(fell_back);  // Unset is the default, not a bad value.
}

TEST(LoggingTest, ResolveEnvValueBadValueFallsBackToInfo) {
  bool fell_back = false;
  EXPECT_EQ(ResolveLogSeverityEnvValue("loud", &fell_back),
            LogSeverity::kInfo);
  EXPECT_TRUE(fell_back);
}

TEST(LoggingTest, LogThreadIdStableWithinThread) {
  const uint32_t id = LogThreadId();
  EXPECT_EQ(LogThreadId(), id);
}

// ---------------------------------------------------------------- Arena --

TEST(ArenaTest, CopyStringReturnsStableDistinctStorage) {
  Arena arena;
  const std::string source = "hello arena";
  const std::string_view copied = arena.CopyString(source);
  EXPECT_EQ(copied, source);
  EXPECT_NE(copied.data(), source.data());
  // Exhaust the current block; the earlier view must stay valid (blocks
  // are chained, never reallocated).
  for (int i = 0; i < 1000; ++i) {
    arena.CopyString(std::string(200, 'x'));
  }
  EXPECT_EQ(copied, source);
}

TEST(ArenaTest, AllocateRespectsAlignment) {
  Arena arena(/*block_bytes=*/128);
  arena.AllocateBytes(1);  // misalign the bump pointer
  void* p = arena.Allocate(sizeof(uint64_t), alignof(uint64_t));
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % alignof(uint64_t), 0u);
  *static_cast<uint64_t*>(p) = 0xdeadbeefULL;  // must not fault
}

TEST(ArenaTest, OversizedRequestGetsDedicatedBlock) {
  Arena arena(/*block_bytes=*/64);
  char* big = arena.AllocateBytes(10000);
  ASSERT_NE(big, nullptr);
  std::fill(big, big + 10000, 'z');
  EXPECT_GE(arena.bytes_reserved(), 10000u);
  EXPECT_GE(arena.bytes_allocated(), 10000u);
}

TEST(ArenaTest, BytesAllocatedCountsHandedOutBytes) {
  Arena arena;
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  arena.AllocateBytes(7);
  arena.CopyString("abc");
  EXPECT_EQ(arena.bytes_allocated(), 10u);
}

TEST(ArenaTest, ResetDropsAllocationCount) {
  Arena arena;
  arena.CopyString("some bytes");
  EXPECT_GT(arena.bytes_allocated(), 0u);
  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  // Arena is reusable after Reset.
  EXPECT_EQ(arena.CopyString("again"), "again");
}

TEST(ArenaTest, MoveTransfersStorageAndEmptiesSource) {
  Arena source;
  const std::string_view view = source.CopyString("moved bytes");
  Arena dest(std::move(source));
  EXPECT_EQ(view, "moved bytes");  // storage followed the move
  EXPECT_GT(dest.bytes_allocated(), 0u);
  EXPECT_EQ(source.bytes_allocated(), 0u);
  // The moved-from arena must allocate fresh blocks, not scribble on dest.
  const std::string_view fresh = source.CopyString("fresh");
  EXPECT_EQ(fresh, "fresh");
  EXPECT_EQ(view, "moved bytes");
}

// ----------------------------------------------------------------- Hash --

TEST(HashTest, IncrementalFnvMatchesOneShot) {
  const std::string_view text = "token bytes";
  uint64_t h = kFnv1a64Seed;
  for (char c : text) h = Fnv1a64Byte(h, static_cast<unsigned char>(c));
  EXPECT_EQ(h, Fnv1a64(text));
  EXPECT_EQ(Fnv1a64Append(kFnv1a64Seed, text), Fnv1a64(text));
  EXPECT_EQ(Fnv1a64(""), kFnv1a64Seed);
}

// ------------------------------------------------------------ ScopedTimer --

TEST(ScopedTimerTest, FiresCallbackWithElapsedOnScopeExit) {
  double recorded = -1.0;
  {
    ScopedTimer timer(
        [](void* ctx, double elapsed_ms) {
          *static_cast<double*>(ctx) = elapsed_ms;
        },
        &recorded);
    EXPECT_GE(timer.ElapsedMillis(), 0.0);
  }
  EXPECT_GE(recorded, 0.0);
}

TEST(ScopedTimerTest, CancelSuppressesCallback) {
  bool fired = false;
  {
    ScopedTimer timer(
        [](void* ctx, double) { *static_cast<bool*>(ctx) = true; }, &fired);
    timer.Cancel();
  }
  EXPECT_FALSE(fired);
}

}  // namespace
}  // namespace cem
