// Fast end-to-end canary over the paper's Figure 1 running example:
// dataset -> cover -> NO-MP / SMP / MMP -> the exact Section 2 match sets.
// Kept deliberately tiny so a broken build surfaces here first.

#include <vector>

#include <gtest/gtest.h>

#include "core/cover.h"
#include "core/grid_executor.h"
#include "core/message_passing.h"
#include "data/figure1.h"
#include "mln/mln_matcher.h"

namespace cem {
namespace {

using core::MpResult;
using data::EntityPair;

EntityPair P(data::EntityId a, data::EntityId b) { return EntityPair(a, b); }

class SmokeTest : public ::testing::Test {
 protected:
  SmokeTest()
      : fig_(data::MakeFigure1()),
        matcher_(*fig_.dataset, mln::MlnWeights::Figure1Demo()) {
    for (const auto& n : fig_.neighborhoods) cover_.Add(n);
  }

  data::Figure1 fig_;
  mln::MlnMatcher matcher_;
  core::Cover cover_;
};

TEST_F(SmokeTest, NoMpFindsOnlyTheIsolatedMatch) {
  // Section 2.2: independent per-neighborhood runs only see (c1,c2).
  const MpResult result = core::RunNoMp(matcher_, cover_);
  EXPECT_EQ(result.matches.SortedPairs(),
            (std::vector<EntityPair>{P(fig_.c1, fig_.c2)}));
}

TEST_F(SmokeTest, SmpRecoversTheSimpleMessage) {
  // The Match(c1,c2) message from C3 unlocks (b1,b2) in C2; the
  // chicken-and-egg chain stays unmatched.
  const MpResult result = core::RunSmp(matcher_, cover_);
  EXPECT_EQ(result.matches.SortedPairs(),
            (std::vector<EntityPair>{P(fig_.b1, fig_.b2),
                                     P(fig_.c1, fig_.c2)}));
}

TEST_F(SmokeTest, MmpRecoversTheWholeChain) {
  // Maximal messages complete the {(a1,a2),(b2,b3),(c2,c3)} chain on top
  // of SMP's output — every deduction of the paper's overview.
  const MpResult result = core::RunMmp(matcher_, cover_);
  EXPECT_EQ(result.matches.SortedPairs(),
            (std::vector<EntityPair>{
                P(fig_.a1, fig_.a2), P(fig_.b1, fig_.b2), P(fig_.b2, fig_.b3),
                P(fig_.c1, fig_.c2), P(fig_.c2, fig_.c3)}));
}

TEST_F(SmokeTest, GridMatchesSequentialOnFigure1) {
  core::GridOptions options;
  options.scheme = core::MpScheme::kMmp;
  options.num_machines = 3;
  const core::GridResult grid = core::RunGrid(matcher_, cover_, options);
  EXPECT_EQ(grid.matches, core::RunMmp(matcher_, cover_).matches);
}

}  // namespace
}  // namespace cem
