#ifndef CEM_TESTS_TEST_UTIL_H_
#define CEM_TESTS_TEST_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/cover.h"
#include "data/dataset.h"
#include "mln/mln_program.h"
#include "util/random.h"

namespace cem::testing_util {

/// A randomly generated small EM instance (entities, coauthor graph via
/// random papers, random candidate pairs and random attractive MLN
/// weights), for property tests. Deterministic per seed.
class RandomInstance {
 public:
  explicit RandomInstance(uint64_t seed, int min_refs = 6, int max_refs = 10)
      : rng_(seed) {
    dataset_ = std::make_unique<data::Dataset>();
    const int num_refs =
        min_refs + static_cast<int>(rng_.NextBounded(max_refs - min_refs + 1));
    for (int i = 0; i < num_refs; ++i) {
      dataset_->AddAuthorRef("f" + std::to_string(i), "l",
                             static_cast<uint32_t>(rng_.NextBounded(3)));
    }
    const int num_papers = 3 + static_cast<int>(rng_.NextBounded(4));
    for (int p = 0; p < num_papers; ++p) {
      const data::EntityId paper = dataset_->AddPaper("p" + std::to_string(p));
      const int k = 2 + static_cast<int>(rng_.NextBounded(2));
      for (int j = 0; j < k; ++j) {
        dataset_->AddAuthored(
            static_cast<data::EntityId>(rng_.NextBounded(num_refs)), paper);
      }
    }
    dataset_->Finalize();
    for (int a = 0; a < num_refs; ++a) {
      for (int b = a + 1; b < num_refs; ++b) {
        if (rng_.NextBernoulli(0.4)) {
          dataset_->AddCandidatePair(
              a, b,
              static_cast<text::SimilarityLevel>(1 + rng_.NextBounded(3)));
        }
      }
    }
    dataset_->FinalizeCandidatePairs();
    weights_.w_sim[1] = -6.0 + rng_.NextDouble() * 8.0;
    weights_.w_sim[2] = -6.0 + rng_.NextDouble() * 10.0;
    weights_.w_sim[3] = -2.0 + rng_.NextDouble() * 10.0;
    weights_.w_coauthor = rng_.NextDouble() * 6.0;
  }

  data::Dataset& dataset() { return *dataset_; }
  const mln::MlnWeights& weights() const { return weights_; }
  Rng& rng() { return rng_; }

  /// All entity ids (refs and papers).
  std::vector<data::EntityId> AllEntities() const {
    std::vector<data::EntityId> out(dataset_->num_entities());
    for (size_t i = 0; i < out.size(); ++i) {
      out[i] = static_cast<data::EntityId>(i);
    }
    return out;
  }

  /// A random cover of the author refs: random overlapping neighborhoods,
  /// patched so every ref (plus its coauthors) is covered.
  core::Cover RandomCover() {
    core::Cover cover;
    const auto& refs = dataset_->author_refs();
    const int num_neighborhoods = 2 + static_cast<int>(rng_.NextBounded(3));
    for (int i = 0; i < num_neighborhoods; ++i) {
      std::vector<data::EntityId> members;
      for (data::EntityId r : refs) {
        if (rng_.NextBernoulli(0.5)) members.push_back(r);
      }
      if (members.empty()) members.push_back(refs[0]);
      cover.Add(std::move(members));
    }
    // Ensure coverage of every ref: one catch-all neighborhood of leftovers.
    std::vector<data::EntityId> leftovers;
    for (data::EntityId r : refs) {
      bool covered = false;
      for (const auto& n : cover.neighborhoods()) {
        if (std::binary_search(n.entities.begin(), n.entities.end(), r)) {
          covered = true;
          break;
        }
      }
      if (!covered) leftovers.push_back(r);
    }
    if (!leftovers.empty()) cover.Add(std::move(leftovers));
    return cover;
  }

 private:
  Rng rng_;
  std::unique_ptr<data::Dataset> dataset_;
  mln::MlnWeights weights_;
};

}  // namespace cem::testing_util

#endif  // CEM_TESTS_TEST_UTIL_H_
