#include <gtest/gtest.h>

#include "core/match_set.h"
#include "data/bib_generator.h"
#include "data/dataset.h"
#include "data/figure1.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/upper_bound.h"
#include "mln/mln_matcher.h"

namespace cem::eval {
namespace {

using core::MatchSet;
using data::EntityPair;

// --------------------------------------------------------------- Metrics --

TEST(MetricsTest, PerfectOutput) {
  data::Dataset d;
  auto a = d.AddAuthorRef("x", "y", 0);
  auto b = d.AddAuthorRef("x", "y", 0);
  auto c = d.AddAuthorRef("z", "w", 1);
  (void)c;
  d.Finalize();
  MatchSet out({EntityPair(a, b)});
  const PrMetrics m = ComputePr(d, out);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

TEST(MetricsTest, FalsePositiveLowersPrecision) {
  data::Dataset d;
  auto a = d.AddAuthorRef("x", "y", 0);
  auto b = d.AddAuthorRef("x", "y", 0);
  auto c = d.AddAuthorRef("z", "w", 1);
  d.Finalize();
  MatchSet out({EntityPair(a, b), EntityPair(a, c)});
  const PrMetrics m = ComputePr(d, out);
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_NEAR(m.f1, 2.0 / 3.0, 1e-9);
}

TEST(MetricsTest, MissLowersRecall) {
  data::Dataset d;
  auto a = d.AddAuthorRef("x", "y", 0);
  auto b = d.AddAuthorRef("x", "y", 0);
  auto c = d.AddAuthorRef("x", "y", 0);
  d.Finalize();
  // Truth has 3 pairs; we find one.
  MatchSet out({EntityPair(a, b)});
  (void)c;
  const PrMetrics m = ComputePr(d, out);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_NEAR(m.recall, 1.0 / 3.0, 1e-9);
}

TEST(MetricsTest, EmptyOutputConventions) {
  data::Dataset d;
  d.AddAuthorRef("x", "y", 0);
  d.AddAuthorRef("x", "y", 0);
  d.Finalize();
  const PrMetrics m = ComputePr(d, MatchSet());
  EXPECT_DOUBLE_EQ(m.precision, 1.0);  // Vacuous precision.
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
}

TEST(MetricsTest, UnlabelledPairsIgnored) {
  data::Dataset d;
  auto a = d.AddAuthorRef("x", "y", 0);
  auto b = d.AddAuthorRef("x", "y");  // Unlabelled.
  d.Finalize();
  MatchSet out({EntityPair(a, b)});
  const PrMetrics m = ComputePr(d, out);
  EXPECT_EQ(m.true_positives + m.false_positives, 0u);
}

TEST(MetricsTest, SoundnessCompleteness) {
  MatchSet produced({EntityPair(1, 2), EntityPair(3, 4)});
  MatchSet reference({EntityPair(1, 2), EntityPair(5, 6), EntityPair(7, 8)});
  EXPECT_DOUBLE_EQ(Soundness(produced, reference), 0.5);
  EXPECT_NEAR(Completeness(produced, reference), 1.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(Soundness(MatchSet(), reference), 1.0);
  EXPECT_DOUBLE_EQ(Completeness(produced, MatchSet()), 1.0);
}

// ------------------------------------------------------------ UpperBound --

TEST(UpperBoundTest, Figure1UpperBoundContainsFullRun) {
  data::Figure1 fig = data::MakeFigure1();
  mln::MlnMatcher matcher(*fig.dataset, mln::MlnWeights::Figure1Demo());
  const MatchSet ub = UpperBoundMatches(matcher);
  // UB over-approximates the full run (supermodularity argument, §6.1).
  EXPECT_TRUE(matcher.MatchAll().IsSubsetOf(ub));
}

TEST(UpperBoundTest, UpperBoundRecallDominatesSchemesOnRealCorpus) {
  // The paper's use of UB: its recall upper-bounds what the matcher can
  // achieve through any message-passing scheme.
  auto dataset = data::GenerateBibDataset(data::BibConfig::DblpLike(0.25));
  mln::MlnMatcher matcher(*dataset);
  const core::Cover cover = core::BuildCanopyCover(*dataset);
  const MatchSet mmp = core::RunMmp(matcher, cover).matches;
  const MatchSet ub = UpperBoundMatches(matcher);
  EXPECT_GE(ComputePr(*dataset, ub).recall, ComputePr(*dataset, mmp).recall);
}

TEST(UpperBoundTest, SelfReferenceUpperBoundContainsFullRun) {
  auto dataset = data::GenerateBibDataset(data::BibConfig::DblpLike(0.25));
  mln::MlnMatcher matcher(*dataset);
  const MatchSet full = matcher.MatchAll();
  EXPECT_TRUE(full.IsSubsetOf(UpperBoundMatches(matcher, &full)));
}

// ----------------------------------------------------------- Experiment --

TEST(ExperimentTest, BenchScaleDefaultsToOne) {
  unsetenv("CEM_BENCH_SCALE");
  EXPECT_DOUBLE_EQ(BenchScale(), 1.0);
  setenv("CEM_BENCH_SCALE", "0.5", 1);
  EXPECT_DOUBLE_EQ(BenchScale(), 0.5);
  setenv("CEM_BENCH_SCALE", "junk", 1);
  EXPECT_DOUBLE_EQ(BenchScale(), 1.0);
  setenv("CEM_BENCH_SCALE", "1000", 1);
  EXPECT_DOUBLE_EQ(BenchScale(), 100.0);  // Clamped.
  unsetenv("CEM_BENCH_SCALE");
}

TEST(ExperimentTest, WorkloadsAreWellFormed) {
  Workload hepth = MakeHepthWorkload(0.2);
  EXPECT_EQ(hepth.name, "HEPTH-like");
  EXPECT_GT(hepth.dataset->num_candidate_pairs(), 0u);
  EXPECT_GT(hepth.cover.size(), 0u);
  EXPECT_TRUE(hepth.cover.IsTotalForCoauthor(*hepth.dataset));
}

TEST(ExperimentTest, CostModelPreservesOutputs) {
  data::Figure1 fig = data::MakeFigure1();
  mln::MlnMatcher inner(*fig.dataset, mln::MlnWeights::Figure1Demo());
  CostModelMatcher wrapped(inner, /*cost_scale_us=*/0.1, /*exponent=*/1.0);
  core::Cover cover;
  for (const auto& n : fig.neighborhoods) cover.Add(n);
  EXPECT_EQ(core::RunMmp(wrapped, cover).matches,
            core::RunMmp(inner, cover).matches);
  EXPECT_GT(wrapped.charged_seconds(), 0.0);
}

TEST(ExperimentTest, CostModelBurnsProportionally) {
  data::Figure1 fig = data::MakeFigure1();
  mln::MlnMatcher inner(*fig.dataset, mln::MlnWeights::Figure1Demo());
  CostModelMatcher cheap(inner, 1.0, 1.0);
  CostModelMatcher costly(inner, 50.0, 1.0);
  std::vector<data::EntityId> all(fig.dataset->num_entities());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  cheap.Match(all);
  costly.Match(all);
  EXPECT_GT(costly.charged_seconds(), cheap.charged_seconds() * 10);
}

TEST(ExperimentTest, RunAllSchemesProbabilisticIncludesMmp) {
  data::Figure1 fig = data::MakeFigure1();
  mln::MlnMatcher matcher(*fig.dataset, mln::MlnWeights::Figure1Demo());
  core::Cover cover;
  for (const auto& n : fig.neighborhoods) cover.Add(n);
  const SchemeResults results = RunAllSchemes(matcher, cover);
  EXPECT_TRUE(results.has_mmp);
  EXPECT_EQ(results.mmp.matches.size(), 5u);
  EXPECT_EQ(results.no_mp.matches.size(), 1u);
  EXPECT_EQ(results.smp.matches.size(), 2u);
}

}  // namespace
}  // namespace cem::eval
