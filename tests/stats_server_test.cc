// StatsServer suite (tier1-concurrency; TSAN in CI). Two layers:
//
//  * Handle() — the socket-free routing surface: content types, bodies,
//    the /metrics vs /metrics.json same-snapshot contract, /healthz
//    flipping on the watchdog verdict, 404s.
//
//  * The real listener — an ephemeral-port server scraped over loopback
//    TCP (a hand-rolled HTTP/1.0 client below) while a MatchService
//    ingests and answers concurrently; responses must stay well-formed.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/bib_generator.h"
#include "mln/mln_matcher.h"
#include "obs/metrics.h"
#include "serve/match_service.h"
#include "serve/stats_server.h"
#include "stream/streaming_matcher.h"
#include "util/random.h"

namespace cem {
namespace {

using serve::MatchService;
using serve::StatsServer;
using serve::StatsSources;
using stream::StreamingMatcher;

// ----------------------------------------------------------------- Handle --

TEST(StatsServerHandle, MetricsIsPrometheusTextOfTheGlobalRegistry) {
  obs::MetricsRegistry::Global().counter("stats_test_handle_marker").Add(1);
  const auto server = StatsServer::Start(0);
  ASSERT_TRUE(server.ok()) << server.status().message();
  const StatsServer::Response response = (*server)->Handle("/metrics");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.content_type,
            "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_NE(response.body.find("# TYPE cem_stats_test_handle_marker_total"),
            std::string::npos);
  EXPECT_NE(response.body.find("cem_stats_test_handle_marker_total"),
            std::string::npos);
}

TEST(StatsServerHandle, MetricsJsonMatchesTheRegistrySnapshotExport) {
  obs::MetricsRegistry::Global().counter("stats_test_json_marker").Add(1);
  const auto server = StatsServer::Start(0);
  ASSERT_TRUE(server.ok());
  const StatsServer::Response response = (*server)->Handle("/metrics.json");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.content_type, "application/json");
  // Byte-equal to the --metrics-json export of the same instant: the
  // registry is quiescent here, so a fresh snapshot renders identically.
  EXPECT_EQ(response.body, obs::MetricsRegistry::Global().Snapshot().ToJson());
}

TEST(StatsServerHandle, RefreshRunsBeforeEveryMetricsSnapshot) {
  std::atomic<int> refreshes{0};
  StatsSources sources;
  sources.refresh = [&] { refreshes.fetch_add(1); };
  const auto server = StatsServer::Start(0, sources);
  ASSERT_TRUE(server.ok());
  (void)(*server)->Handle("/metrics");
  EXPECT_EQ(refreshes.load(), 1);
  (void)(*server)->Handle("/metrics.json");
  EXPECT_EQ(refreshes.load(), 2);
  (void)(*server)->Handle("/healthz");  // Not a snapshot endpoint.
  EXPECT_EQ(refreshes.load(), 2);
}

TEST(StatsServerHandle, SlowlogAndHealthzReadTheirSources) {
  std::atomic<bool> healthy{true};
  StatsSources sources;
  sources.slowlog_json = [] { return std::string("[{\"query_id\": 9}]\n"); };
  sources.healthy = [&] { return healthy.load(); };
  const auto server = StatsServer::Start(0, sources);
  ASSERT_TRUE(server.ok());

  const StatsServer::Response slowlog = (*server)->Handle("/slowlog.json");
  EXPECT_EQ(slowlog.status, 200);
  EXPECT_EQ(slowlog.content_type, "application/json");
  EXPECT_EQ(slowlog.body, "[{\"query_id\": 9}]\n");

  EXPECT_EQ((*server)->Handle("/healthz").status, 200);
  EXPECT_EQ((*server)->Handle("/healthz").body, "ok\n");
  healthy.store(false);
  const StatsServer::Response sick = (*server)->Handle("/healthz");
  EXPECT_EQ(sick.status, 503);
  EXPECT_EQ(sick.body, "stalled\n");
}

TEST(StatsServerHandle, DefaultSourcesAreHealthyAndEmpty) {
  const auto server = StatsServer::Start(0);
  ASSERT_TRUE(server.ok());
  EXPECT_EQ((*server)->Handle("/healthz").status, 200);
  const StatsServer::Response slowlog = (*server)->Handle("/slowlog.json");
  EXPECT_EQ(slowlog.status, 200);
  EXPECT_EQ(slowlog.body.front(), '[');
}

TEST(StatsServerHandle, UnknownPathsAre404) {
  const auto server = StatsServer::Start(0);
  ASSERT_TRUE(server.ok());
  EXPECT_EQ((*server)->Handle("/").status, 404);
  EXPECT_EQ((*server)->Handle("/metrics2").status, 404);
  EXPECT_EQ((*server)->Handle("").status, 404);
}

// --------------------------------------------------------- Real listener --

/// Minimal HTTP/1.0 GET over loopback: sends the request, drains the
/// response until the server closes (close-per-response protocol).
std::string HttpGet(uint16_t port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0)
      << std::strerror(errno);
  const std::string request = "GET " + target + " HTTP/1.0\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string BodyOf(const std::string& response) {
  const size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? std::string()
                                    : response.substr(split + 4);
}

TEST(StatsServerSocket, ServesAllEndpointsOverLoopback) {
  obs::MetricsRegistry::Global().counter("stats_test_socket_marker").Add(1);
  const auto server = StatsServer::Start(0);
  ASSERT_TRUE(server.ok()) << server.status().message();
  ASSERT_NE((*server)->port(), 0);

  const std::string metrics = HttpGet((*server)->port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.0 200"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("Content-Length: "), std::string::npos);
  EXPECT_NE(metrics.find("cem_stats_test_socket_marker_total"),
            std::string::npos);

  const std::string json = HttpGet((*server)->port(), "/metrics.json");
  EXPECT_NE(json.find("HTTP/1.0 200"), std::string::npos);
  const std::string body = BodyOf(json);
  EXPECT_FALSE(body.empty());
  EXPECT_EQ(body.front(), '{');

  // A query string routes like the bare path.
  const std::string with_query =
      HttpGet((*server)->port(), "/healthz?probe=1");
  EXPECT_NE(with_query.find("HTTP/1.0 200"), std::string::npos) << with_query;
  EXPECT_EQ(BodyOf(with_query), "ok\n");

  EXPECT_NE(HttpGet((*server)->port(), "/nope").find("HTTP/1.0 404"),
            std::string::npos);
}

TEST(StatsServerSocket, ScrapesStayWellFormedDuringConcurrentIngest) {
  // The TSAN target: a scraper hammers the live endpoints while the
  // service ingests chunks and a reader issues lookups — the wiring
  // dedup_tool --serve --stats-port runs. Every response must be a
  // complete HTTP/1.0 answer with the declared body.
  data::BibConfig config = data::BibConfig::DblpLike(0.05);
  config.seed = 47;
  const auto dataset = data::GenerateBibDataset(config);
  const mln::MlnMatcher matcher(*dataset);
  std::vector<data::EntityId> refs = dataset->author_refs();
  Rng rng(9);
  rng.Shuffle(refs);
  StreamingMatcher streaming(matcher);
  MatchService service(streaming);

  StatsSources sources;
  sources.refresh = [&] { service.PublishWindowGauges(); };
  sources.slowlog_json = [&] { return service.slow_query_log().ToJson(); };
  const auto server = StatsServer::Start(0, sources);
  ASSERT_TRUE(server.ok()) << server.status().message();
  const uint16_t port = (*server)->port();

  std::atomic<bool> done{false};
  std::atomic<size_t> bad_responses{0};
  std::thread scraper([&] {
    const char* targets[] = {"/metrics", "/metrics.json", "/slowlog.json",
                             "/healthz"};
    size_t i = 0;
    while (!done.load(std::memory_order_acquire)) {
      const std::string response = HttpGet(port, targets[i++ % 4]);
      if (response.find("HTTP/1.0 200") == std::string::npos ||
          response.find("\r\n\r\n") == std::string::npos) {
        bad_responses.fetch_add(1);
      }
    }
  });
  std::thread reader([&] {
    size_t i = 0;
    while (!done.load(std::memory_order_acquire)) {
      if (i % 16 == 15) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      (void)service.Lookup({refs[i++ % refs.size()]});
    }
  });
  const size_t chunk = 8;
  for (size_t start = 0; start < refs.size(); start += chunk) {
    const size_t end = std::min(refs.size(), start + chunk);
    ASSERT_TRUE(
        service.IngestBatch({refs.begin() + start, refs.begin() + end}).ok());
  }
  done.store(true, std::memory_order_release);
  scraper.join();
  reader.join();
  EXPECT_EQ(bad_responses.load(), 0u);

  // After quiescing, the JSON endpoint still matches the direct export.
  const std::string body = BodyOf(HttpGet(port, "/metrics.json"));
  EXPECT_EQ(body, obs::MetricsRegistry::Global().Snapshot().ToJson());
}

}  // namespace
}  // namespace cem
