#include <memory>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "core/match_set.h"
#include "data/bib_generator.h"
#include "data/dataset.h"
#include "data/figure1.h"
#include "mln/grounding.h"
#include "mln/map_inference.h"
#include "mln/mln_matcher.h"
#include "mln/mln_program.h"
#include "mln/weight_learner.h"
#include "util/random.h"

namespace cem::mln {
namespace {

using core::MatchSet;
using data::EntityId;
using data::EntityPair;

std::vector<EntityId> AllEntityVector(const data::Dataset& d) {
  std::vector<EntityId> out(d.num_entities());
  for (size_t i = 0; i < d.num_entities(); ++i) out[i] = i;
  return out;
}

// ------------------------------------------------------------- PairGraph --

TEST(PairGraphTest, Figure1SharedCoauthors) {
  data::Figure1 fig = data::MakeFigure1();
  const PairGraph graph = PairGraph::Build(*fig.dataset);
  const auto c1c2 = fig.dataset->FindCandidatePair(fig.c1, fig.c2);
  ASSERT_TRUE(c1c2.has_value());
  // c1 and c2 share exactly coauthor d1.
  EXPECT_EQ(graph.node(*c1c2).shared_coauthors,
            (std::vector<EntityId>{fig.d1}));
  // (a1,a2) share no coauthor.
  const auto a1a2 = fig.dataset->FindCandidatePair(fig.a1, fig.a2);
  ASSERT_TRUE(a1a2.has_value());
  EXPECT_TRUE(graph.node(*a1a2).shared_coauthors.empty());
}

TEST(PairGraphTest, Figure1Links) {
  data::Figure1 fig = data::MakeFigure1();
  const data::Dataset& d = *fig.dataset;
  const PairGraph graph = PairGraph::Build(d);
  auto id = [&](EntityId x, EntityId y) {
    auto found = d.FindCandidatePair(x, y);
    EXPECT_TRUE(found.has_value());
    return *found;
  };
  auto linked = [&](data::PairId p, data::PairId q) {
    const auto& links = graph.node(p).links;
    return std::find(links.begin(), links.end(), q) != links.end();
  };
  // The chain links of Section 2.1: (a1,a2)~(b2,b3)~(c2,c3).
  EXPECT_TRUE(linked(id(fig.a1, fig.a2), id(fig.b2, fig.b3)));
  EXPECT_TRUE(linked(id(fig.b2, fig.b3), id(fig.a1, fig.a2)));
  EXPECT_TRUE(linked(id(fig.b2, fig.b3), id(fig.c2, fig.c3)));
  // The SMP-recovery link: (b1,b2)~(c1,c2).
  EXPECT_TRUE(linked(id(fig.b1, fig.b2), id(fig.c1, fig.c2)));
  // No direct a-c link.
  EXPECT_FALSE(linked(id(fig.a1, fig.a2), id(fig.c2, fig.c3)));
}

TEST(PairGraphTest, GlobalThetaFigure1Demo) {
  data::Figure1 fig = data::MakeFigure1();
  const PairGraph graph = PairGraph::Build(*fig.dataset);
  const MlnWeights w = MlnWeights::Figure1Demo();
  // (c1,c2): R1 (-5) + one reflexive coauthor grounding via d1 (+8) = +3,
  // exactly the paper's Section 2.1 arithmetic.
  const auto c1c2 = *fig.dataset->FindCandidatePair(fig.c1, fig.c2);
  EXPECT_DOUBLE_EQ(graph.GlobalTheta(c1c2, w), 3.0);
  // (a1,a2): just R1 = -5.
  const auto a1a2 = *fig.dataset->FindCandidatePair(fig.a1, fig.a2);
  EXPECT_DOUBLE_EQ(graph.GlobalTheta(a1a2, w), -5.0);
}

// -------------------------------------------------------- MAP inference --

class Figure1Inference : public ::testing::Test {
 protected:
  Figure1Inference()
      : fig_(data::MakeFigure1()),
        graph_(PairGraph::Build(*fig_.dataset)),
        weights_(MlnWeights::Figure1Demo()) {}

  MatchSet Solve(const std::vector<EntityId>& entities,
                 const MatchSet& positive = MatchSet()) {
    std::unordered_set<EntityId> members(entities.begin(), entities.end());
    return SolveNeighborhoodMap(*fig_.dataset, graph_, weights_, members,
                                positive, MatchSet());
  }

  data::Figure1 fig_;
  PairGraph graph_;
  MlnWeights weights_;
};

TEST_F(Figure1Inference, NeighborhoodC3MatchesC1C2) {
  // Section 2.1: (c1,c2) is matched from c1, c2, d1 alone.
  MatchSet out = Solve(fig_.neighborhoods[2]);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains(EntityPair(fig_.c1, fig_.c2)));
}

TEST_F(Figure1Inference, NeighborhoodC1FindsNothingAlone) {
  // Section 2.2: C1 alone has insufficient evidence (+8 vs -10).
  EXPECT_TRUE(Solve(fig_.neighborhoods[0]).empty());
}

TEST_F(Figure1Inference, NeighborhoodC2FindsNothingAlone) {
  EXPECT_TRUE(Solve(fig_.neighborhoods[1]).empty());
}

TEST_F(Figure1Inference, C2WithEvidenceMatchesB1B2) {
  // Section 2.2: given Match(c1,c2), C2 can match (b1,b2).
  MatchSet evidence;
  evidence.Insert(EntityPair(fig_.c1, fig_.c2));
  MatchSet out = Solve(fig_.neighborhoods[1], evidence);
  EXPECT_TRUE(out.Contains(EntityPair(fig_.b1, fig_.b2)));
  EXPECT_TRUE(out.Contains(EntityPair(fig_.c1, fig_.c2)));  // Evidence kept.
  // The chain pairs still need each other; evidence on (c1,c2) does not
  // unlock them.
  EXPECT_FALSE(out.Contains(EntityPair(fig_.b2, fig_.b3)));
}

TEST_F(Figure1Inference, FullRunFindsAllFivePairs) {
  // Section 2.1: the holistic optimum matches (c1,c2), (b1,b2) and the
  // whole chain {(a1,a2),(b2,b3),(c2,c3)} (net +1 for the chain).
  MatchSet out = Solve(AllEntityVector(*fig_.dataset));
  EXPECT_TRUE(out.Contains(EntityPair(fig_.c1, fig_.c2)));
  EXPECT_TRUE(out.Contains(EntityPair(fig_.b1, fig_.b2)));
  EXPECT_TRUE(out.Contains(EntityPair(fig_.a1, fig_.a2)));
  EXPECT_TRUE(out.Contains(EntityPair(fig_.b2, fig_.b3)));
  EXPECT_TRUE(out.Contains(EntityPair(fig_.c2, fig_.c3)));
  EXPECT_EQ(out.size(), 5u);
}

TEST_F(Figure1Inference, NegativeEvidenceBlocksMatch) {
  MatchSet negative;
  negative.Insert(EntityPair(fig_.c1, fig_.c2));
  std::unordered_set<EntityId> members(fig_.neighborhoods[2].begin(),
                                       fig_.neighborhoods[2].end());
  MatchSet out = SolveNeighborhoodMap(*fig_.dataset, graph_, weights_,
                                      members, MatchSet(), negative);
  EXPECT_TRUE(out.empty());
}

TEST_F(Figure1Inference, AgreesWithBruteForceOnFigure1) {
  for (const auto& neighborhood : fig_.neighborhoods) {
    std::unordered_set<EntityId> members(neighborhood.begin(),
                                         neighborhood.end());
    EXPECT_EQ(SolveNeighborhoodMap(*fig_.dataset, graph_, weights_, members,
                                   MatchSet(), MatchSet())
                  .SortedPairs(),
              BruteForceMap(*fig_.dataset, graph_, weights_, members,
                            MatchSet(), MatchSet())
                  .SortedPairs());
  }
}

// Randomised certification: the graph-cut solver equals brute force on
// random instances, with and without evidence.
class RandomInstance {
 public:
  explicit RandomInstance(uint64_t seed) : rng_(seed) {
    dataset_ = std::make_unique<data::Dataset>();
    const int num_refs = 6 + static_cast<int>(rng_.NextBounded(4));
    for (int i = 0; i < num_refs; ++i) {
      dataset_->AddAuthorRef("f" + std::to_string(i), "l",
                             static_cast<uint32_t>(rng_.NextBounded(3)));
    }
    // Random papers give a random coauthor graph.
    const int num_papers = 3 + static_cast<int>(rng_.NextBounded(4));
    for (int p = 0; p < num_papers; ++p) {
      const EntityId paper = dataset_->AddPaper("p" + std::to_string(p));
      const int k = 2 + static_cast<int>(rng_.NextBounded(2));
      for (int j = 0; j < k; ++j) {
        dataset_->AddAuthored(
            static_cast<EntityId>(rng_.NextBounded(num_refs)), paper);
      }
    }
    dataset_->Finalize();
    // Random candidate pairs.
    for (int a = 0; a < num_refs; ++a) {
      for (int b = a + 1; b < num_refs; ++b) {
        if (rng_.NextBernoulli(0.4)) {
          dataset_->AddCandidatePair(
              a, b,
              static_cast<text::SimilarityLevel>(1 + rng_.NextBounded(3)));
        }
      }
    }
    dataset_->FinalizeCandidatePairs();
    // Random weights; coauthor weight stays attractive.
    weights_.w_sim[1] = -6.0 + rng_.NextDouble() * 8.0;
    weights_.w_sim[2] = -6.0 + rng_.NextDouble() * 10.0;
    weights_.w_sim[3] = -2.0 + rng_.NextDouble() * 10.0;
    weights_.w_coauthor = rng_.NextDouble() * 6.0;
  }

  data::Dataset& dataset() { return *dataset_; }
  const MlnWeights& weights() const { return weights_; }
  Rng& rng() { return rng_; }

 private:
  Rng rng_;
  std::unique_ptr<data::Dataset> dataset_;
  MlnWeights weights_;
};

class MapSolverProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MapSolverProperty, GraphCutEqualsBruteForce) {
  RandomInstance instance(GetParam());
  data::Dataset& d = instance.dataset();
  const PairGraph graph = PairGraph::Build(d);

  // Random entity subset (sometimes everything) and random evidence.
  std::unordered_set<EntityId> members;
  for (size_t e = 0; e < d.num_entities(); ++e) {
    if (instance.rng().NextBernoulli(0.8)) {
      members.insert(static_cast<EntityId>(e));
    }
  }
  MatchSet positive, negative;
  for (const auto& cp : d.candidate_pairs()) {
    const double roll = instance.rng().NextDouble();
    if (roll < 0.1) {
      positive.Insert(cp.pair);
    } else if (roll < 0.2) {
      negative.Insert(cp.pair);
    }
  }

  const MatchSet cut = SolveNeighborhoodMap(d, graph, instance.weights(),
                                            members, positive, negative);
  const MatchSet brute = BruteForceMap(d, graph, instance.weights(), members,
                                       positive, negative);
  EXPECT_EQ(cut.SortedPairs(), brute.SortedPairs()) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, MapSolverProperty,
                         ::testing::Range<uint64_t>(0, 40));

// ------------------------------------------------------------ MlnMatcher --

TEST(MlnMatcherTest, ScoreMatchesPaperArithmetic) {
  data::Figure1 fig = data::MakeFigure1();
  MlnMatcher matcher(*fig.dataset, MlnWeights::Figure1Demo());
  MatchSet single;
  single.Insert(EntityPair(fig.c1, fig.c2));
  EXPECT_DOUBLE_EQ(matcher.Score(single), 3.0);  // -5 + 8.
  EXPECT_DOUBLE_EQ(matcher.Score(MatchSet()), 0.0);

  // The chain: 3 * (-5) + 2 links * 8 = +1 (the paper's "net +1").
  MatchSet chain;
  chain.Insert(EntityPair(fig.a1, fig.a2));
  chain.Insert(EntityPair(fig.b2, fig.b3));
  chain.Insert(EntityPair(fig.c2, fig.c3));
  EXPECT_DOUBLE_EQ(matcher.Score(chain), 1.0);

  // Any single chain pair or 2-subset is negative.
  MatchSet sub;
  sub.Insert(EntityPair(fig.a1, fig.a2));
  EXPECT_DOUBLE_EQ(matcher.Score(sub), -5.0);
  sub.Insert(EntityPair(fig.b2, fig.b3));
  EXPECT_DOUBLE_EQ(matcher.Score(sub), -2.0);
}

TEST(MlnMatcherTest, ScoreDeltaConsistentWithScore) {
  data::Figure1 fig = data::MakeFigure1();
  MlnMatcher matcher(*fig.dataset, MlnWeights::Figure1Demo());
  MatchSet base;
  base.Insert(EntityPair(fig.c1, fig.c2));
  std::vector<EntityPair> additions = {EntityPair(fig.b1, fig.b2),
                                       EntityPair(fig.b2, fig.b3)};
  MatchSet combined = base;
  for (const auto& p : additions) combined.Insert(p);
  EXPECT_NEAR(matcher.ScoreDelta(base, additions),
              matcher.Score(combined) - matcher.Score(base), 1e-9);
}

TEST(MlnMatcherTest, ScoreDeltaIgnoresDuplicates) {
  data::Figure1 fig = data::MakeFigure1();
  MlnMatcher matcher(*fig.dataset, MlnWeights::Figure1Demo());
  MatchSet base;
  base.Insert(EntityPair(fig.c1, fig.c2));
  // Adding an already-present pair changes nothing.
  EXPECT_DOUBLE_EQ(
      matcher.ScoreDelta(base, {EntityPair(fig.c1, fig.c2)}), 0.0);
  // Duplicate entries in the additions count once.
  EXPECT_DOUBLE_EQ(
      matcher.ScoreDelta(base, {EntityPair(fig.b1, fig.b2),
                                EntityPair(fig.b1, fig.b2)}),
      matcher.ScoreDelta(base, {EntityPair(fig.b1, fig.b2)}));
}

TEST(MlnMatcherTest, MatchAllEqualsNeighborhoodSolveOnEverything) {
  data::Figure1 fig = data::MakeFigure1();
  MlnMatcher matcher(*fig.dataset, MlnWeights::Figure1Demo());
  EXPECT_EQ(matcher.MatchAll().size(), 5u);
}

TEST(MlnMatcherTest, RunCountersAdvance) {
  data::Figure1 fig = data::MakeFigure1();
  MlnMatcher matcher(*fig.dataset, MlnWeights::Figure1Demo());
  matcher.ResetCounters();
  matcher.Match(fig.neighborhoods[0]);
  matcher.Match(fig.neighborhoods[1]);
  EXPECT_EQ(matcher.num_runs(), 2u);
  EXPECT_GT(matcher.total_free_variables(), 0u);
}

// --------------------------------------------------------- WeightLearner --

TEST(WeightLearnerTest, RecoversQualitativeShape) {
  auto dataset = data::GenerateBibDataset(data::BibConfig::DblpLike(0.3));
  const MlnWeights learned = LearnWeights(*dataset);
  // Level 3 (near-identical names) must be strong positive evidence;
  // level 1 weak-to-negative; the coauthor rule attractive.
  EXPECT_GT(learned.w_sim[3], 0.0);
  EXPECT_LT(learned.w_sim[1], learned.w_sim[3]);
  EXPECT_GT(learned.w_coauthor, 0.0);
}

TEST(WeightLearnerTest, LearnedWeightsYieldReasonableMatcher) {
  auto dataset = data::GenerateBibDataset(data::BibConfig::DblpLike(0.3));
  MlnMatcher matcher(*dataset, LearnWeights(*dataset));
  const MatchSet out = matcher.MatchAll();
  // A sane learned matcher finds a substantial share of true matches with
  // high precision.
  size_t tp = 0;
  for (uint64_t key : out.keys()) {
    tp += dataset->IsTrueMatch(data::PairFromKey(key)) ? 1 : 0;
  }
  ASSERT_GT(out.size(), 0u);
  EXPECT_GT(static_cast<double>(tp) / out.size(), 0.8);
}

}  // namespace
}  // namespace cem::mln
