// Property tests for the grid executor's consistency guarantee: the
// round-parallel RunGrid must produce exactly the sequential RunSmp/RunMmp
// match set for every machine count (the schemes' consistency property —
// Theorems 2(3)/4 — carried over to the Section 6.3 executor), over
// randomised instances and covers.

#include <cstdint>

#include <gtest/gtest.h>

#include "core/cover.h"
#include "core/grid_executor.h"
#include "core/message_passing.h"
#include "mln/mln_matcher.h"
#include "rules/rules_matcher.h"
#include "test_util.h"

namespace cem {
namespace {

using core::Cover;
using core::GridOptions;
using core::MpScheme;
using testing_util::RandomInstance;

constexpr uint32_t kMachineCounts[] = {1, 4, 30};

class GridConsistency : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GridConsistency, SmpMatchesSequential) {
  RandomInstance instance(GetParam());
  mln::MlnMatcher matcher(instance.dataset(), instance.weights());
  const Cover cover = instance.RandomCover();
  const auto reference = core::RunSmp(matcher, cover).matches;
  for (uint32_t machines : kMachineCounts) {
    GridOptions options;
    options.scheme = MpScheme::kSmp;
    options.num_machines = machines;
    options.seed = GetParam() ^ machines;
    EXPECT_EQ(core::RunGrid(matcher, cover, options).matches, reference)
        << "seed " << GetParam() << ", " << machines << " machines";
  }
}

TEST_P(GridConsistency, MmpMatchesSequential) {
  RandomInstance instance(GetParam());
  mln::MlnMatcher matcher(instance.dataset(), instance.weights());
  const Cover cover = instance.RandomCover();
  const auto reference = core::RunMmp(matcher, cover).matches;
  for (uint32_t machines : kMachineCounts) {
    GridOptions options;
    options.scheme = MpScheme::kMmp;
    options.num_machines = machines;
    options.seed = GetParam() ^ machines;
    EXPECT_EQ(core::RunGrid(matcher, cover, options).matches, reference)
        << "seed " << GetParam() << ", " << machines << " machines";
  }
}

TEST_P(GridConsistency, SmpWithRulesMatcherMatchesSequential) {
  RandomInstance instance(GetParam());
  rules::RulesConfig config;
  config.transitive_closure = false;  // Closure is a framework post-pass.
  rules::RulesMatcher matcher(instance.dataset(), config);
  const Cover cover = instance.RandomCover();
  const auto reference = core::RunSmp(matcher, cover).matches;
  for (uint32_t machines : kMachineCounts) {
    GridOptions options;
    options.scheme = MpScheme::kSmp;
    options.num_machines = machines;
    options.seed = GetParam() ^ machines;
    EXPECT_EQ(core::RunGrid(matcher, cover, options).matches, reference)
        << "seed " << GetParam() << ", " << machines << " machines";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, GridConsistency,
                         ::testing::Range<uint64_t>(500, 525));

}  // namespace
}  // namespace cem
