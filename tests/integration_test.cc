// End-to-end pipeline tests on generated corpora: generator -> candidate
// pairs -> canopy cover -> matchers -> message passing -> metrics. These
// assert the qualitative claims of the paper's evaluation at test-friendly
// scale (the bench binaries run the full-size versions).

#include <gtest/gtest.h>

#include "core/canopy.h"
#include "core/grid_executor.h"
#include "core/match_set.h"
#include "core/message_passing.h"
#include "data/bib_generator.h"
#include "eval/metrics.h"
#include "eval/upper_bound.h"
#include "mln/mln_matcher.h"
#include "mln/weight_learner.h"
#include "rules/rules_matcher.h"

namespace cem {
namespace {

using core::MatchSet;

class IntegrationHepth : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = data::GenerateBibDataset(data::BibConfig::HepthLike(0.3))
                   .release();
    cover_ = new core::Cover(core::BuildCanopyCover(*dataset_));
    matcher_ = new mln::MlnMatcher(*dataset_);
  }
  static void TearDownTestSuite() {
    delete matcher_;
    delete cover_;
    delete dataset_;
    matcher_ = nullptr;
    cover_ = nullptr;
    dataset_ = nullptr;
  }

  static data::Dataset* dataset_;
  static core::Cover* cover_;
  static mln::MlnMatcher* matcher_;
};

data::Dataset* IntegrationHepth::dataset_ = nullptr;
core::Cover* IntegrationHepth::cover_ = nullptr;
mln::MlnMatcher* IntegrationHepth::matcher_ = nullptr;

TEST_F(IntegrationHepth, CoverIsTotalAndComplete) {
  EXPECT_TRUE(cover_->CoversAllAuthorRefs(*dataset_));
  EXPECT_TRUE(cover_->IsTotalForCoauthor(*dataset_));
  EXPECT_DOUBLE_EQ(cover_->CandidatePairCoverage(*dataset_), 1.0);
}

TEST_F(IntegrationHepth, MlnSchemesAreSoundAgainstFullRun) {
  // Theorems 2 and 4: both schemes' outputs are contained in E(E). (Our
  // exact MAP engine makes the full holistic run feasible even at paper
  // scale, so the theorem is checked directly.)
  const MatchSet full = matcher_->MatchAll();
  const MatchSet smp = core::RunSmp(*matcher_, *cover_).matches;
  const MatchSet mmp = core::RunMmp(*matcher_, *cover_).matches;
  EXPECT_TRUE(smp.IsSubsetOf(full));
  EXPECT_TRUE(mmp.IsSubsetOf(full));
}

TEST_F(IntegrationHepth, SchemesImproveMonotonically) {
  const MatchSet no_mp = core::RunNoMp(*matcher_, *cover_).matches;
  const MatchSet smp = core::RunSmp(*matcher_, *cover_).matches;
  const MatchSet mmp = core::RunMmp(*matcher_, *cover_).matches;
  EXPECT_TRUE(no_mp.IsSubsetOf(smp));
  EXPECT_TRUE(smp.IsSubsetOf(mmp));
}

TEST_F(IntegrationHepth, PrecisionIsHighRecallOrdered) {
  const MatchSet no_mp = core::RunNoMp(*matcher_, *cover_).matches;
  const MatchSet mmp = core::RunMmp(*matcher_, *cover_).matches;
  // Raw pairwise decisions (the MLN(B) matcher applies no closure).
  const eval::PrMetrics m_no = eval::ComputePr(*dataset_, no_mp);
  const eval::PrMetrics m_mmp = eval::ComputePr(*dataset_, mmp);
  EXPECT_GT(m_mmp.precision, 0.85);
  EXPECT_GE(m_mmp.recall, m_no.recall);
  EXPECT_GT(m_mmp.recall, 0.25);
}

TEST_F(IntegrationHepth, MmpNearlyCompleteAgainstUpperBound) {
  // Figure 3(c): MMP completeness vs UB is ~1. Our corpora reproduce that
  // to within a small tolerance.
  const MatchSet mmp = core::RunMmp(*matcher_, *cover_).matches;
  const MatchSet ub = eval::UpperBoundMatches(*matcher_);
  EXPECT_GT(eval::Completeness(mmp, ub), 0.7);
}

TEST_F(IntegrationHepth, GridMatchesSequentialOnAllSchemes) {
  for (core::MpScheme scheme :
       {core::MpScheme::kSmp, core::MpScheme::kMmp}) {
    core::GridOptions options;
    options.scheme = scheme;
    options.num_machines = 8;
    const core::GridResult grid = core::RunGrid(*matcher_, *cover_, options);
    const MatchSet sequential =
        scheme == core::MpScheme::kSmp
            ? core::RunSmp(*matcher_, *cover_).matches
            : core::RunMmp(*matcher_, *cover_).matches;
    EXPECT_EQ(grid.matches, sequential);
  }
}

class IntegrationDblp : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ =
        data::GenerateBibDataset(data::BibConfig::DblpLike(0.3)).release();
    cover_ = new core::Cover(core::BuildCanopyCover(*dataset_));
  }
  static void TearDownTestSuite() {
    delete cover_;
    delete dataset_;
    cover_ = nullptr;
    dataset_ = nullptr;
  }
  static data::Dataset* dataset_;
  static core::Cover* cover_;
};

data::Dataset* IntegrationDblp::dataset_ = nullptr;
core::Cover* IntegrationDblp::cover_ = nullptr;

TEST_F(IntegrationDblp, RulesSmpEqualsFullRun) {
  // Figure 4's headline: SMP with RULES achieves the FULL run's output
  // (soundness and completeness) on both datasets.
  rules::RulesMatcher matcher(*dataset_);
  const MatchSet full = matcher.MatchAll();
  const MatchSet smp = core::RunSmp(matcher, *cover_).matches;
  EXPECT_GE(eval::Soundness(smp, full), 0.99);
  EXPECT_GE(eval::Completeness(smp, full), 0.99);
}

TEST_F(IntegrationDblp, BothMatchersReachUsefulAccuracy) {
  // The paper reports RULES "a bit lower than MLN"; on our synthetic
  // corpora the two land close together — both must reach useful F1 and
  // stay within a modest band of each other.
  rules::RulesMatcher rules_matcher(*dataset_);
  mln::MlnMatcher mln_matcher(*dataset_);
  const eval::PrMetrics rules_m = eval::ComputePr(
      *dataset_,
      core::TransitiveClosure(core::RunSmp(rules_matcher, *cover_).matches));
  const eval::PrMetrics mln_m = eval::ComputePr(
      *dataset_,
      core::TransitiveClosure(core::RunMmp(mln_matcher, *cover_).matches));
  EXPECT_GT(rules_m.f1, 0.5);
  EXPECT_GT(mln_m.f1, 0.5);
  EXPECT_NEAR(mln_m.f1, rules_m.f1, 0.25);
}

TEST_F(IntegrationDblp, DblpFasterThanHepthForMln) {
  // Figure 3(d) vs 3(e): DBLP's smaller neighborhoods make MLN runs much
  // cheaper. Compare total free variables touched by NO-MP.
  auto hepth = data::GenerateBibDataset(data::BibConfig::HepthLike(0.3));
  const core::Cover hepth_cover = core::BuildCanopyCover(*hepth);
  mln::MlnMatcher hepth_matcher(*hepth);
  hepth_matcher.ResetCounters();
  core::RunNoMp(hepth_matcher, hepth_cover);
  const uint64_t hepth_work = hepth_matcher.total_free_variables();

  mln::MlnMatcher dblp_matcher(*dataset_);
  dblp_matcher.ResetCounters();
  core::RunNoMp(dblp_matcher, *cover_);
  const uint64_t dblp_work = dblp_matcher.total_free_variables();
  // The strong order-of-magnitude contrast appears at bench scale
  // (Figure 3(e)); at test scale we only require comparability.
  EXPECT_GT(hepth_work, dblp_work / 2);
}

TEST_F(IntegrationDblp, LearnedWeightsCloseToPaperShape) {
  const mln::MlnWeights learned = mln::LearnWeights(*dataset_);
  EXPECT_LT(learned.w_sim[1], 2.0);  // Level 1 is weak evidence at best.
  EXPECT_GT(learned.w_sim[3], 0.0);  // Level-3: strong evidence.
  EXPECT_GT(learned.w_coauthor, 0.0);
}

TEST(IntegrationSmoke, TinyScaleEndToEnd) {
  // Smallest sensible corpus: everything still wires together.
  auto dataset = data::GenerateBibDataset(data::BibConfig::DblpLike(0.05));
  const core::Cover cover = core::BuildCanopyCover(*dataset);
  mln::MlnMatcher matcher(*dataset);
  const core::MpResult result = core::RunMmp(matcher, cover);
  const eval::PrMetrics m =
      eval::ComputePr(*dataset, core::TransitiveClosure(result.matches));
  EXPECT_GE(m.precision, 0.0);  // Executes without errors end-to-end.
  EXPECT_GT(result.neighborhood_evaluations, 0u);
}

}  // namespace
}  // namespace cem
