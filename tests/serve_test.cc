// Serving-layer suite (tier1-concurrency; ci/check.sh re-runs it under
// ThreadSanitizer). The two load-bearing claims:
//
//  * Quiescent-prefix pinning: a query answered at any quiescent prefix of
//    the arrival order is a deterministic function of that prefix — bit-
//    identical across thread counts {1, 4, hw} x shard counts {1, 4, 32} —
//    and its match evidence equals a batch RunSmp over the streamed cover
//    at the same prefix (the PR 5 warm-start fixpoint equality, read
//    through the serving API).
//
//  * Concurrent query/ingest safety: readers hammering Lookup() while an
//    ingest thread streams chunks never observe a half-patched cover —
//    every answer carries an epoch that IS a published chunk boundary.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "blocking/lsh_index.h"
#include "blocking/minhash.h"
#include "core/match_set.h"
#include "core/message_passing.h"
#include "data/bib_generator.h"
#include "mln/mln_matcher.h"
#include "serve/match_service.h"
#include "stream/streaming_matcher.h"
#include "util/execution_context.h"
#include "util/random.h"

namespace cem {
namespace {

using serve::MatchService;
using serve::Query;
using serve::QueryResult;
using serve::ServeOptions;
using stream::StreamingMatcher;
using stream::StreamingOptions;

std::vector<uint32_t> ThreadCounts() {
  return {1, 4, std::max(1u, std::thread::hardware_concurrency())};
}

/// A small noisy bibliography corpus, distinct per seed (mirrors
/// streaming_test.cc).
std::unique_ptr<data::Dataset> MakeSmallBib(uint64_t seed) {
  data::BibConfig config = data::BibConfig::DblpLike(0.05);
  config.seed = seed;
  return data::GenerateBibDataset(config);
}

/// Everything deterministic about an answer (latency_us excluded).
void ExpectSameAnswer(const QueryResult& a, const QueryResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.ref, b.ref) << label;
  EXPECT_EQ(a.epoch, b.epoch) << label;
  EXPECT_EQ(a.live, b.live) << label;
  EXPECT_EQ(a.candidates, b.candidates) << label;
  EXPECT_EQ(a.cluster, b.cluster) << label;
  EXPECT_EQ(a.confidence, b.confidence) << label;
}

/// Streams `refs` in `chunk`-sized batches through a fresh service built
/// on `ctx`, answering `queries` at every quiescent prefix; fills
/// `per_prefix` with the answers grouped by prefix.
void AnswersAtPrefixes(const core::Matcher& matcher,
                       const std::vector<data::EntityId>& refs,
                       const std::vector<data::EntityId>& queries,
                       size_t chunk, const ExecutionContext& ctx,
                       std::vector<std::vector<QueryResult>>* per_prefix) {
  StreamingOptions options;
  options.context = &ctx;
  StreamingMatcher streaming(matcher, options);
  MatchService service(streaming);
  for (size_t start = 0; start < refs.size(); start += chunk) {
    const size_t end = std::min(refs.size(), start + chunk);
    ASSERT_TRUE(
        service
            .IngestBatch({refs.begin() + start, refs.begin() + end})
            .ok())
        << "prefix " << end;
    per_prefix->emplace_back();
    for (data::EntityId q : queries) {
      const Result<QueryResult> answer = service.Lookup({q});
      ASSERT_TRUE(answer.ok());
      per_prefix->back().push_back(*answer);
    }
  }
}

TEST(MatchService, PrefixAnswersPinnedAcrossThreadAndShardCounts) {
  const auto dataset = MakeSmallBib(7);
  const mln::MlnMatcher matcher(*dataset);
  std::vector<data::EntityId> refs = dataset->author_refs();
  Rng rng(11);
  rng.Shuffle(refs);
  // Query a spread of references: some live early, some late (cold for
  // most prefixes), exercising both answer paths at every prefix.
  std::vector<data::EntityId> queries;
  for (size_t i = 0; i < refs.size(); i += 9) queries.push_back(refs[i]);
  const size_t chunk = 24;

  ExecutionContext serial(1, /*num_shards=*/1);
  std::vector<std::vector<QueryResult>> reference;
  AnswersAtPrefixes(matcher, refs, queries, chunk, serial, &reference);
  for (uint32_t threads : ThreadCounts()) {
    for (uint32_t shards : {1u, 4u, 32u}) {
      ExecutionContext ctx(threads, shards);
      std::vector<std::vector<QueryResult>> answers;
      AnswersAtPrefixes(matcher, refs, queries, chunk, ctx, &answers);
      ASSERT_EQ(answers.size(), reference.size());
      for (size_t p = 0; p < answers.size(); ++p) {
        for (size_t q = 0; q < queries.size(); ++q) {
          ExpectSameAnswer(answers[p][q], reference[p][q],
                           std::to_string(threads) + " threads, " +
                               std::to_string(shards) + " shards, prefix " +
                               std::to_string(p) + ", query " +
                               std::to_string(queries[q]));
        }
      }
    }
  }
}

TEST(MatchService, QuiescentPrefixAnswersMatchBatchRunSmp) {
  const auto dataset = MakeSmallBib(13);
  const mln::MlnMatcher matcher(*dataset);
  std::vector<data::EntityId> refs = dataset->author_refs();
  Rng rng(5);
  rng.Shuffle(refs);
  StreamingMatcher streaming(matcher);
  MatchService service(streaming);
  const size_t chunk = 16;
  for (size_t start = 0; start < refs.size(); start += chunk) {
    const size_t end = std::min(refs.size(), start + chunk);
    ASSERT_TRUE(
        service
            .IngestBatch({refs.begin() + start, refs.begin() + end})
            .ok());
    // The batch reference at this prefix: RunSmp over the streamed cover
    // (total over the live refs — the maintained invariant).
    const core::MatchSet batch =
        core::RunSmp(matcher, streaming.cover()).matches;
    ASSERT_EQ(streaming.matches(), batch) << "prefix " << end;
    // Every live query's matched flags and cluster read that fixpoint.
    for (size_t i = 0; i < end; i += 7) {
      const data::EntityId q = refs[i];
      const Result<QueryResult> answer = service.Lookup({q});
      ASSERT_TRUE(answer.ok());
      EXPECT_EQ(answer->epoch, end);
      EXPECT_TRUE(answer->live);
      for (const serve::CandidateScore& c : answer->candidates) {
        EXPECT_EQ(c.matched, batch.Contains(data::EntityPair(q, c.ref)))
            << "prefix " << end << " query " << q << " candidate " << c.ref;
      }
      EXPECT_EQ(answer->cluster,
                core::ClusterOf(*dataset, batch, q));
    }
  }
}

TEST(MatchService, CandidatesMatchBruteForceLshProbe) {
  const auto dataset = MakeSmallBib(3);
  const mln::MlnMatcher matcher(*dataset);
  std::vector<data::EntityId> refs = dataset->author_refs();
  StreamingMatcher streaming(matcher);
  MatchService service(streaming, ServeOptions{.max_candidates = 0});
  const std::vector<data::EntityId> live(refs.begin(),
                                         refs.begin() + refs.size() / 2);
  ASSERT_TRUE(service.IngestBatch(live).ok());

  const stream::IncrementalCover& icover = streaming.incremental_cover();
  const blocking::LshIndex& index = icover.lsh_index();
  for (size_t i = 0; i < refs.size(); i += 5) {
    const data::EntityId q = refs[i];
    const Result<QueryResult> answer = service.Lookup({q});
    ASSERT_TRUE(answer.ok());
    // Brute force: a live slot is a candidate iff it shares a band key
    // with the query's signature (self excluded).
    const std::vector<uint64_t> sig = icover.ComputeSignature(q);
    const std::vector<uint64_t> q_keys = index.BandKeys(sig);
    std::vector<serve::CandidateScore> expected;
    for (uint32_t slot = 0; slot < icover.num_live(); ++slot) {
      if (icover.slots()[slot] == q) continue;
      const std::vector<uint64_t> keys =
          index.BandKeys(icover.signatures()[slot]);
      bool shares = false;
      for (uint64_t key : keys) {
        for (uint64_t q_key : q_keys) shares = shares || key == q_key;
      }
      if (!shares) continue;
      expected.push_back(
          {icover.slots()[slot],
           blocking::MinHasher::EstimateJaccard(sig,
                                                icover.signatures()[slot]),
           false});
    }
    ASSERT_EQ(answer->candidates.size(), expected.size()) << "query " << q;
    for (const serve::CandidateScore& c : answer->candidates) {
      bool found = false;
      for (const serve::CandidateScore& e : expected) {
        if (e.ref != c.ref) continue;
        found = true;
        EXPECT_EQ(c.jaccard, e.jaccard);
      }
      EXPECT_TRUE(found) << "query " << q << " candidate " << c.ref;
    }
  }
}

TEST(MatchService, ColdQueryPreviewsIngestWithoutMutating) {
  const auto dataset = MakeSmallBib(17);
  const mln::MlnMatcher matcher(*dataset);
  std::vector<data::EntityId> refs = dataset->author_refs();
  Rng rng(2);
  rng.Shuffle(refs);
  const data::EntityId holdout = refs.back();
  refs.pop_back();
  StreamingMatcher streaming(matcher);
  MatchService service(streaming);
  ASSERT_TRUE(service.IngestBatch(refs).ok());

  const Result<QueryResult> cold = service.Lookup({holdout});
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->live);
  EXPECT_EQ(cold->epoch, refs.size());
  // A preview, not an ingest: nothing mutated.
  EXPECT_EQ(service.epoch(), refs.size());
  EXPECT_FALSE(streaming.is_live(holdout));

  ASSERT_TRUE(service.Ingest(holdout).ok());
  const Result<QueryResult> live = service.Lookup({holdout});
  ASSERT_TRUE(live.ok());
  EXPECT_TRUE(live->live);
  EXPECT_EQ(live->epoch, refs.size() + 1);
  // The LSH probe sees the same collisions (the only new document is the
  // query itself, filtered as self), so the candidate lists coincide.
  ASSERT_EQ(cold->candidates.size(), live->candidates.size());
  for (size_t i = 0; i < cold->candidates.size(); ++i) {
    EXPECT_EQ(cold->candidates[i].ref, live->candidates[i].ref);
    EXPECT_EQ(cold->candidates[i].jaccard, live->candidates[i].jaccard);
    // The cold one-shot re-score is sound: anything it declares matched,
    // the converged fixpoint declares matched too (monotonicity).
    if (cold->candidates[i].matched) {
      EXPECT_TRUE(live->candidates[i].matched)
          << "candidate " << cold->candidates[i].ref;
    }
  }
}

TEST(MatchService, RejectsInvalidQueriesAndIngests) {
  const auto dataset = MakeSmallBib(23);
  const mln::MlnMatcher matcher(*dataset);
  StreamingMatcher streaming(matcher);
  MatchService service(streaming);
  const std::vector<data::EntityId>& refs = dataset->author_refs();
  ASSERT_TRUE(service.Ingest(refs[0]).ok());

  // Out-of-range and non-author queries.
  const auto out_of_range = service.Lookup(
      {static_cast<data::EntityId>(dataset->num_entities())});
  EXPECT_EQ(out_of_range.status().code(), StatusCode::kInvalidArgument);
  data::EntityId paper = 0;
  for (data::EntityId e = 0; e < dataset->num_entities(); ++e) {
    if (dataset->entity(e).type == data::EntityType::kPaper) {
      paper = e;
      break;
    }
  }
  EXPECT_EQ(service.Lookup({paper}).status().code(),
            StatusCode::kInvalidArgument);

  // Double ingest, duplicates inside a batch, invalid ids — all rejected
  // atomically (the live count never moves).
  EXPECT_EQ(service.Ingest(refs[0]).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.IngestBatch({refs[1], refs[1]}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.IngestBatch({refs[1], paper}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.epoch(), 1u);
  EXPECT_EQ(streaming.num_live(), 1u);
  EXPECT_FALSE(streaming.is_live(refs[1]));
}

TEST(MatchService, ConcurrentQueriesObserveOnlyPublishedEpochs) {
  // The TSAN target: readers race the ingest thread through the public
  // API. Every answered epoch must be a published chunk boundary — a
  // reader can never observe a mid-drain or mid-patch state — and epochs
  // observed by one reader never go backwards.
  const auto dataset = MakeSmallBib(29);
  const mln::MlnMatcher matcher(*dataset);
  std::vector<data::EntityId> refs = dataset->author_refs();
  Rng rng(41);
  rng.Shuffle(refs);
  StreamingMatcher streaming(matcher);
  MatchService service(streaming);
  const size_t chunk = 8;

  std::atomic<bool> done{false};
  std::atomic<size_t> failures{0};
  auto reader_body = [&](uint32_t salt) {
    uint64_t last_epoch = 0;
    size_t i = 0;
    while (!done.load(std::memory_order_acquire)) {
      // Breathe between lookups: glibc's shared_mutex prefers readers, so
      // an unthrottled 4-reader spin can starve the ingest thread's
      // exclusive sections (pathological under TSAN's slowdown).
      if (i % 16 == 15) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      const data::EntityId q = refs[(salt + i++) % refs.size()];
      const Result<QueryResult> answer = service.Lookup({q});
      if (!answer.ok()) {
        failures.fetch_add(1);
        continue;
      }
      // Published boundaries only: multiples of the chunk size, or the
      // final partial chunk's total.
      const uint64_t epoch = answer->epoch;
      if (epoch % chunk != 0 && epoch != refs.size()) failures.fetch_add(1);
      if (epoch < last_epoch) failures.fetch_add(1);
      last_epoch = epoch;
      // An answer must be internally consistent with its epoch: a live
      // query always belongs to its own (nonempty) cluster.
      if (answer->cluster.empty() ||
          !std::binary_search(answer->cluster.begin(),
                              answer->cluster.end(), q)) {
        failures.fetch_add(1);
      }
    }
  };
  std::vector<std::thread> readers;
  for (uint32_t r = 0; r < 4; ++r) readers.emplace_back(reader_body, r * 13);
  for (size_t start = 0; start < refs.size(); start += chunk) {
    const size_t end = std::min(refs.size(), start + chunk);
    ASSERT_TRUE(
        service
            .IngestBatch({refs.begin() + start, refs.begin() + end})
            .ok());
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(service.epoch(), refs.size());
}

TEST(MatchService, MetricsHookRunsAtQuiescentPointsDuringServedIngest) {
  // The StreamingOptions::metrics_hook contract, exercised through the
  // serving front door: the hook always observes a quiescent matcher, on
  // the ingest thread, while concurrent readers go through Lookup().
  const auto dataset = MakeSmallBib(31);
  const mln::MlnMatcher matcher(*dataset);
  std::vector<data::EntityId> refs = dataset->author_refs();
  std::atomic<size_t> hook_calls{0};
  std::atomic<bool> hook_saw_nonquiescent{false};
  const std::thread::id ingest_thread = std::this_thread::get_id();
  std::atomic<bool> hook_on_other_thread{false};
  StreamingOptions options;
  options.metrics_every_inserts = 16;
  options.metrics_hook = [&](const StreamingMatcher& m) {
    hook_calls.fetch_add(1);
    if (!m.quiescent()) hook_saw_nonquiescent.store(true);
    if (std::this_thread::get_id() != ingest_thread) {
      hook_on_other_thread.store(true);
    }
  };
  StreamingMatcher streaming(matcher, options);
  MatchService service(streaming);

  std::atomic<bool> done{false};
  std::thread reader([&] {
    size_t i = 0;
    while (!done.load(std::memory_order_acquire)) {
      if (i % 16 == 15) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      (void)service.Lookup({refs[i++ % refs.size()]});
    }
  });
  const size_t chunk = 8;
  for (size_t start = 0; start < refs.size(); start += chunk) {
    const size_t end = std::min(refs.size(), start + chunk);
    ASSERT_TRUE(
        service
            .IngestBatch({refs.begin() + start, refs.begin() + end})
            .ok());
  }
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_GT(hook_calls.load(), 0u);
  EXPECT_FALSE(hook_saw_nonquiescent.load());
  EXPECT_FALSE(hook_on_other_thread.load());
}

}  // namespace
}  // namespace cem
