// Observability suite: the metrics registry (sharded counters, gauges,
// fixed-bucket histograms), the scoped-span trace recorder, and the
// determinism contract the CI bench gate rests on — registry counters
// bumped by the instrumented pipeline must be bit-identical for any
// thread and shard count. The concurrency tests hammer the lock-free hot
// paths from ExecutionContext threads and run under TSAN in CI (this
// suite carries the tier1-concurrency label).

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "blocking/lsh_cover.h"
#include "data/bib_generator.h"
#include "mln/mln_matcher.h"
#include "obs/expo.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stream/streaming_matcher.h"
#include "util/execution_context.h"
#include "util/random.h"

namespace cem {
namespace {

namespace fs = std::filesystem;

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::HistogramStats;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::TraceRecorder;

uint32_t HardwareThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// ---------------------------------------------------------------- Counter --

TEST(CounterTest, AddAndMergeAcrossSlots) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(CounterTest, ConcurrentAddsSumExactly) {
  Counter counter;
  const ExecutionContext ctx(HardwareThreads());
  constexpr size_t kTasks = 10000;
  ParallelFor(ctx.pool(), kTasks, [&](size_t i) { counter.Add(i % 7 + 1); });
  uint64_t expected = 0;
  for (size_t i = 0; i < kTasks; ++i) expected += i % 7 + 1;
  EXPECT_EQ(counter.Value(), expected);
}

// ------------------------------------------------------------------ Gauge --

TEST(GaugeTest, LastWriteWins) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0.0);
  gauge.Set(3.5);
  gauge.Set(-1.25);
  EXPECT_EQ(gauge.Value(), -1.25);
}

// -------------------------------------------------------------- Histogram --

TEST(HistogramTest, CountSumAndPercentilesOnKnownData) {
  Histogram hist({1, 2, 5, 10});
  for (int i = 0; i < 100; ++i) hist.Record(1.5);  // Bucket (1, 2].
  EXPECT_EQ(hist.Count(), 100u);
  EXPECT_DOUBLE_EQ(hist.Sum(), 150.0);
  // Every sample sits in one bucket: all percentiles interpolate inside
  // (1, 2].
  const HistogramStats stats = hist.Stats();
  EXPECT_GT(stats.p50, 1.0);
  EXPECT_LE(stats.p50, 2.0);
  EXPECT_GT(stats.p99, stats.p50 - 1e-12);
  EXPECT_LE(stats.p99, 2.0);
}

TEST(HistogramTest, EmptyStatsAreZero) {
  Histogram hist(Histogram::DefaultLatencyBoundsUs());
  const HistogramStats stats = hist.Stats();
  EXPECT_EQ(stats.count, 0u);
  EXPECT_EQ(stats.sum, 0.0);
  EXPECT_EQ(stats.p50, 0.0);
  EXPECT_EQ(stats.p99, 0.0);
}

TEST(HistogramTest, OverflowBucketClampsToLastBound) {
  Histogram hist({1, 2});
  hist.Record(1e9);
  EXPECT_EQ(hist.Count(), 1u);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.5), 2.0);
}

TEST(HistogramTest, StatsPercentilesClampWhenEverySampleOverflows) {
  // The boundary case the interpolation must not walk past: with the
  // entire mass in the overflow bucket, every percentile (not just a
  // mid-quantile probe) pins to the last finite bound instead of
  // extrapolating beyond it.
  Histogram hist({10, 20, 50});
  for (int i = 0; i < 1000; ++i) hist.Record(1e12);
  const HistogramStats stats = hist.Stats();
  EXPECT_EQ(stats.count, 1000u);
  EXPECT_DOUBLE_EQ(stats.p50, 50.0);
  EXPECT_DOUBLE_EQ(stats.p95, 50.0);
  EXPECT_DOUBLE_EQ(stats.p99, 50.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(1.0), 50.0);
}

TEST(HistogramTest, DefaultLatencyBoundsAreStrictlyAscending) {
  const std::vector<double> bounds = Histogram::DefaultLatencyBoundsUs();
  ASSERT_FALSE(bounds.empty());
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]) << "at index " << i;
  }
  // Microsecond ladder: sub-millisecond resolution at the low end, 30s cap.
  EXPECT_EQ(bounds.front(), 1.0);
  EXPECT_EQ(bounds.back(), 3e7);
}

TEST(HistogramTest, ConcurrentRecordsCountExactly) {
  Histogram hist({10, 100, 1000});
  const ExecutionContext ctx(HardwareThreads());
  constexpr size_t kTasks = 10000;
  ParallelFor(ctx.pool(), kTasks,
              [&](size_t i) { hist.Record(static_cast<double>(i % 2000)); });
  EXPECT_EQ(hist.Count(), kTasks);
  // Integral samples below 2^53: the sharded double sums add exactly.
  double expected = 0.0;
  for (size_t i = 0; i < kTasks; ++i) expected += static_cast<double>(i % 2000);
  EXPECT_DOUBLE_EQ(hist.Sum(), expected);
}

// --------------------------------------------------------------- Registry --

TEST(MetricsRegistryTest, FindOrCreateReturnsSameInstance) {
  MetricsRegistry registry;
  Counter& a = registry.counter("hits");
  Counter& b = registry.counter("hits");
  EXPECT_EQ(&a, &b);
  a.Add(3);
  EXPECT_EQ(b.Value(), 3u);
}

TEST(MetricsRegistryTest, CustomHistogramBoundsApplyOnFirstRegistration) {
  MetricsRegistry registry;
  Histogram& first = registry.histogram("touched", {1, 2, 3});
  EXPECT_EQ(first.bounds(), (std::vector<double>{1, 2, 3}));
  // Later lookups (with or without bounds) return the existing histogram.
  EXPECT_EQ(&registry.histogram("touched"), &first);
  EXPECT_EQ(&registry.histogram("touched", {9, 10}), &first);
  EXPECT_EQ(first.bounds(), (std::vector<double>{1, 2, 3}));
}

TEST(MetricsRegistryTest, SnapshotCarriesAllKindsAndResetZeroes) {
  MetricsRegistry registry;
  registry.counter("c").Add(7);
  registry.gauge("g").Set(2.5);
  registry.histogram("h", {1, 10}).Record(5);
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("c"), 7u);
  EXPECT_EQ(snapshot.gauges.at("g"), 2.5);
  EXPECT_EQ(snapshot.histograms.at("h").count, 1u);
  registry.ResetForTesting();
  snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("c"), 0u);
  EXPECT_EQ(snapshot.gauges.at("g"), 0.0);
  EXPECT_EQ(snapshot.histograms.at("h").count, 0u);
}

TEST(MetricsRegistryTest, ConcurrentLookupsAndAddsAreSafe) {
  MetricsRegistry registry;
  const ExecutionContext ctx(HardwareThreads());
  constexpr size_t kTasks = 4000;
  // Mixed lookup + increment from every pool thread: the find-or-create
  // path takes the registry mutex, the Add is the lock-free slot path.
  ParallelFor(ctx.pool(), kTasks, [&](size_t i) {
    registry.counter(i % 2 == 0 ? "even" : "odd").Add(1);
    registry.histogram("lat").Record(static_cast<double>(i % 50));
  });
  EXPECT_EQ(registry.counter("even").Value(), kTasks / 2);
  EXPECT_EQ(registry.counter("odd").Value(), kTasks / 2);
  EXPECT_EQ(registry.histogram("lat").Count(), kTasks);
}

TEST(MetricsRegistryTest, SnapshotToJsonShape) {
  MetricsRegistry registry;
  registry.counter("pairs").Add(12);
  registry.gauge("depth").Set(3);
  registry.histogram("lat_us", {1, 10, 100}).Record(7);
  const std::string json = registry.Snapshot().ToJson();
  EXPECT_NE(json.find("\"counter_pairs\": 12"), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauge_depth\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"hist_lat_us_count\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"hist_lat_us_p99\""), std::string::npos) << json;
  EXPECT_EQ(json.front(), '{');
}

TEST(MetricsRegistryTest, WriteMetricsJsonRoundTrips) {
  const fs::path path = fs::temp_directory_path() / "cem_obs_metrics.json";
  // The global registry always has the pipeline instrumentation sites
  // registered by the time any test ran a build; writing must succeed and
  // produce one JSON object.
  MetricsRegistry::Global().counter("obs_test_marker").Add(1);
  ASSERT_TRUE(obs::WriteMetricsJson(path.string()).ok());
  const std::string json = ReadFileOrDie(path.string());
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"counter_obs_test_marker\": 1"), std::string::npos);
  fs::remove(path);
}

TEST(MetricsRegistryTest, ToJsonEscapesMetricNames) {
  // Metric names are identifiers everywhere in the tree, but the export
  // must stay valid JSON even for a hostile name — same escaper as the
  // trace exporter (obs/json.h).
  MetricsSnapshot snapshot;
  snapshot.counters["we\"ird\nname"] = 3;
  snapshot.gauges["tab\there"] = 1.5;
  const std::string json = snapshot.ToJson();
  EXPECT_NE(json.find("\"counter_we\\\"ird\\nname\": 3"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"gauge_tab\\there\": 1.5"), std::string::npos) << json;
  // Nothing inside a quoted string may be a raw control character: every
  // raw newline in the document must be formatting between entries, i.e.
  // immediately after a comma or brace.
  for (size_t i = 0; i < json.size(); ++i) {
    if (json[i] == '\n' && i > 0) {
      EXPECT_TRUE(json[i - 1] == ',' || json[i - 1] == '{' ||
                  json[i - 1] == '}')
          << "raw newline mid-value at offset " << i << " in " << json;
    }
    EXPECT_NE(json[i], '\t') << json;
  }
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControlBytes) {
  EXPECT_EQ(obs::JsonEscaped("plain"), "plain");
  EXPECT_EQ(obs::JsonEscaped("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(obs::JsonEscaped("\n\t\r"), "\\n\\t\\r");
  EXPECT_EQ(obs::JsonEscaped(std::string_view("\x01", 1)), "\\u0001");
}

// ------------------------------------------------------------------ Trace --

TEST(TraceTest, ParseEnabledValueSemantics) {
  EXPECT_FALSE(TraceRecorder::ParseEnabledValue(nullptr));
  EXPECT_FALSE(TraceRecorder::ParseEnabledValue(""));
  EXPECT_FALSE(TraceRecorder::ParseEnabledValue("0"));
  EXPECT_TRUE(TraceRecorder::ParseEnabledValue("1"));
  EXPECT_TRUE(TraceRecorder::ParseEnabledValue("chrome"));
}

TEST(TraceTest, SpansRecordOnlyWhileEnabled) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Clear();
  recorder.SetEnabled(false);
  { CEM_TRACE("obs_test/disabled"); }
  EXPECT_TRUE(recorder.Events().empty());
  recorder.SetEnabled(true);
  { CEM_TRACE("obs_test/enabled"); }
  recorder.SetEnabled(false);
  const std::vector<obs::TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "obs_test/enabled");
  recorder.Clear();
}

TEST(TraceTest, TimedSpanFeedsHistogramEvenWhenDisabled) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.SetEnabled(false);
  MetricsRegistry registry;
  Histogram& hist = registry.histogram("span_us");
  { CEM_TRACE_TIMED("obs_test/timed", &hist); }
  EXPECT_EQ(hist.Count(), 1u);
}

TEST(TraceTest, ConcurrentSpansAllRecorded) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Clear();
  recorder.SetEnabled(true);
  const ExecutionContext ctx(HardwareThreads());
  constexpr size_t kTasks = 2000;
  ParallelFor(ctx.pool(), kTasks,
              [&](size_t) { CEM_TRACE("obs_test/parallel"); });
  recorder.SetEnabled(false);
  EXPECT_EQ(recorder.Events().size(), kTasks);
  recorder.Clear();
}

TEST(TraceTest, WriteJsonIsWellFormedTraceEventArray) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Clear();
  recorder.SetEnabled(true);
  { CEM_TRACE("obs_test/export"); }
  recorder.SetEnabled(false);
  const fs::path path = fs::temp_directory_path() / "cem_obs_trace.json";
  ASSERT_TRUE(recorder.WriteJson(path.string()).ok());
  const std::string json = ReadFileOrDie(path.string());
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.find_last_not_of(" \n")], ']');
  EXPECT_NE(json.find("\"name\": \"obs_test/export\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": "), std::string::npos);
  EXPECT_NE(json.find("\"dur\": "), std::string::npos);
  fs::remove(path);
  recorder.Clear();
}

TEST(TraceTest, EmptyTraceExportsEmptyArray) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Clear();
  const fs::path path = fs::temp_directory_path() / "cem_obs_trace_empty.json";
  ASSERT_TRUE(recorder.WriteJson(path.string()).ok());
  const std::string json = ReadFileOrDie(path.string());
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.find_last_not_of(" \n")], ']');
  fs::remove(path);
}

TEST(TraceTest, SpansFromExitedThreadsSurvive) {
  // A short-lived traced thread must not take its spans with it: the
  // recorder retires the thread-local log at thread exit, so Events()
  // after join still sees everything the thread recorded.
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Clear();
  recorder.SetEnabled(true);
  std::thread worker([] {
    CEM_TRACE("obs_test/worker_a");
    CEM_TRACE("obs_test/worker_b");
  });
  worker.join();
  { CEM_TRACE("obs_test/main_after_join"); }
  recorder.SetEnabled(false);
  const std::vector<obs::TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 3u);
  size_t from_worker = 0;
  for (const obs::TraceEvent& e : events) {
    if (std::string_view(e.name).find("worker") != std::string_view::npos) {
      ++from_worker;
    }
  }
  EXPECT_EQ(from_worker, 2u);
  recorder.Clear();
}

TEST(TraceTest, ManyExitedThreadsFlushEverySpan) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Clear();
  recorder.SetEnabled(true);
  constexpr size_t kThreads = 16;
  constexpr size_t kSpansPerThread = 25;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (size_t i = 0; i < kSpansPerThread; ++i) {
        CEM_TRACE("obs_test/churn");
      }
    });
  }
  for (std::thread& w : workers) w.join();
  recorder.SetEnabled(false);
  EXPECT_EQ(recorder.Events().size(), kThreads * kSpansPerThread);
  recorder.Clear();
}

// ------------------------------------------------------------- Prometheus --

TEST(PrometheusTest, NameSanitizesToLegalCharset) {
  EXPECT_EQ(obs::PrometheusName("serve_qps"), "cem_serve_qps");
  EXPECT_EQ(obs::PrometheusName("we ird-name"), "cem_we_ird_name");
  // A digit-first registry name is legal after the prefix.
  EXPECT_EQ(obs::PrometheusName("9lives"), "cem_9lives");
  EXPECT_EQ(obs::PrometheusName("colons:ok"), "cem_colons:ok");
}

TEST(PrometheusTest, RenderCoversEveryMetricKind) {
  MetricsRegistry registry;
  registry.counter("pairs").Add(12);
  registry.gauge("depth").Set(3.5);
  registry.histogram("lat_us", {1, 10, 100}).Record(7);
  const std::string text = obs::RenderMetricsPrometheus(registry.Snapshot());
  EXPECT_NE(text.find("# TYPE cem_pairs_total counter"), std::string::npos)
      << text;
  EXPECT_NE(text.find("\ncem_pairs_total 12\n"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE cem_depth gauge"), std::string::npos) << text;
  EXPECT_NE(text.find("\ncem_depth 3.5\n"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE cem_lat_us summary"), std::string::npos) << text;
  EXPECT_NE(text.find("cem_lat_us{quantile=\"0.5\"}"), std::string::npos)
      << text;
  EXPECT_NE(text.find("cem_lat_us{quantile=\"0.99\"}"), std::string::npos)
      << text;
  EXPECT_NE(text.find("\ncem_lat_us_sum "), std::string::npos) << text;
  EXPECT_NE(text.find("\ncem_lat_us_count 1\n"), std::string::npos) << text;
}

TEST(PrometheusTest, RenderedTextPassesItsOwnSchemaRules) {
  // The same charset/value rules bench_diff --check-prometheus enforces,
  // applied to a real render: every non-comment line must be
  // `<legal-name>[{labels}] <numeric-value>`.
  MetricsRegistry registry;
  registry.counter("a b").Add(1);  // Name needing sanitization.
  registry.histogram("lat_us", {1, 10}).Record(3);
  const std::string text = obs::RenderMetricsPrometheus(registry.Snapshot());
  std::istringstream lines(text);
  std::string line;
  size_t samples = 0;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name = line.substr(0, line.find_first_of("{ "));
    for (size_t i = 0; i < name.size(); ++i) {
      const char c = name[i];
      const bool legal = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                         c == '_' || c == ':' ||
                         (i > 0 && c >= '0' && c <= '9');
      EXPECT_TRUE(legal) << line;
    }
    char* end = nullptr;
    const std::string value = line.substr(space + 1);
    std::strtod(value.c_str(), &end);
    EXPECT_EQ(*end, '\0') << line;
    ++samples;
  }
  EXPECT_GE(samples, 2u);
}

TEST(PrometheusTest, WritePrometheusExportsGlobalRegistry) {
  const fs::path path = fs::temp_directory_path() / "cem_obs_metrics.prom";
  MetricsRegistry::Global().counter("obs_test_prom_marker").Add(1);
  ASSERT_TRUE(obs::WriteMetricsPrometheus(path.string()).ok());
  const std::string text = ReadFileOrDie(path.string());
  EXPECT_NE(text.find("cem_obs_test_prom_marker_total"), std::string::npos);
  fs::remove(path);
}

// ----------------------------------------------------- Determinism contract --

/// Registry counter deltas of one full pipeline run (LSH cover build +
/// one-at-a-time streamed replay) under the given execution context. The
/// CI gate exports these as counter_*; they must not depend on threads or
/// shards.
std::map<std::string, uint64_t> PipelineCounterDeltas(uint32_t threads,
                                                      uint32_t shards) {
  const std::map<std::string, uint64_t> before =
      MetricsRegistry::Global().Snapshot().counters;

  data::BibConfig config = data::BibConfig::DblpLike(0.05);
  config.seed = 77;
  const ExecutionContext ctx(threads, shards);
  const std::unique_ptr<data::Dataset> dataset =
      data::GenerateBibDataset(config, {}, ctx);
  const mln::MlnMatcher matcher(*dataset);
  const core::Cover cover =
      blocking::MakeCoverBuilder(core::BlockingStrategy::kLsh)
          ->Build(*dataset, ctx);
  EXPECT_GT(cover.size(), 0u);

  stream::StreamingOptions options;
  options.context = &ctx;
  stream::StreamingMatcher streaming(matcher, options);
  std::vector<data::EntityId> refs = dataset->author_refs();
  Rng(5).Shuffle(refs);
  streaming.AddBatch(refs);

  std::map<std::string, uint64_t> deltas;
  for (const auto& [name, value] :
       MetricsRegistry::Global().Snapshot().counters) {
    const auto it = before.find(name);
    deltas[name] = value - (it == before.end() ? 0 : it->second);
  }
  return deltas;
}

TEST(MetricsDeterminismTest, PipelineCountersIdenticalAcrossContexts) {
  // threads x shards sweep, mirroring the repo-wide determinism pins: the
  // counter deltas of the whole instrumented pipeline must be
  // bit-identical, or the CI counter gate would flake across hosts.
  const std::map<std::string, uint64_t> reference =
      PipelineCounterDeltas(1, 1);
  EXPECT_GT(reference.at("blocking_minhash_signatures"), 0u);
  EXPECT_GT(reference.at("blocking_lsh_pairs_considered"), 0u);
  EXPECT_GT(reference.at("stream_inserts"), 0u);
  EXPECT_GT(reference.at("stream_drain_evaluations"), 0u);
  const struct {
    uint32_t threads;
    uint32_t shards;
  } contexts[] = {{1, 4}, {4, 4}, {4, 32}, {HardwareThreads(), 32}};
  for (const auto& [threads, shards] : contexts) {
    const std::map<std::string, uint64_t> run =
        PipelineCounterDeltas(threads, shards);
    EXPECT_EQ(run, reference)
        << "counter deltas diverged at threads=" << threads
        << " shards=" << shards;
  }
}

}  // namespace
}  // namespace cem
