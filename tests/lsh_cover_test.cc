// Property tests for the LSH-driven cover builder: the output must be a
// Definition-7 total cover (total w.r.t. Similar and Coauthor) on
// randomised bibliography corpora, the CoverBuilder strategy interface
// must agree with the underlying free functions, and the grid executor
// must stay scheme-consistent under LSH covers (mirrors
// grid_consistency_test.cc).

#include <cstdint>
#include <memory>

#include <gtest/gtest.h>

#include "blocking/lsh_cover.h"
#include "core/canopy.h"
#include "core/cover_builder.h"
#include "core/grid_executor.h"
#include "core/message_passing.h"
#include "data/bib_generator.h"
#include "mln/mln_matcher.h"

namespace cem {
namespace {

using core::BlockingStrategy;
using core::Cover;
using core::GridOptions;
using core::MpScheme;

constexpr uint32_t kMachineCounts[] = {1, 4, 30};

/// A small noisy bibliography corpus, distinct per seed.
std::unique_ptr<data::Dataset> MakeSmallBib(uint64_t seed) {
  data::BibConfig config = data::BibConfig::DblpLike(0.05);
  config.seed = seed;
  return data::GenerateBibDataset(config);
}

void ExpectSameCover(const Cover& a, const Cover& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.neighborhood(i).entities, b.neighborhood(i).entities)
        << "neighborhood " << i;
  }
}

class LshCoverProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LshCoverProperty, OutputIsTotalCover) {
  const auto dataset = MakeSmallBib(GetParam());
  const Cover cover = blocking::BuildLshCover(*dataset);
  EXPECT_TRUE(cover.CoversAllAuthorRefs(*dataset));
  // Total w.r.t. Similar: every candidate pair inside some neighborhood.
  EXPECT_DOUBLE_EQ(cover.CandidatePairCoverage(*dataset), 1.0);
  // Total w.r.t. Coauthor (Definition 7).
  EXPECT_TRUE(cover.IsTotalForCoauthor(*dataset));
}

TEST_P(LshCoverProperty, BuildIsDeterministic) {
  const auto dataset = MakeSmallBib(GetParam());
  ExpectSameCover(blocking::BuildLshCover(*dataset),
                  blocking::BuildLshCover(*dataset));
}

TEST_P(LshCoverProperty, BuilderInterfaceMatchesFreeFunctions) {
  const auto dataset = MakeSmallBib(GetParam());
  ExpectSameCover(
      blocking::MakeCoverBuilder(BlockingStrategy::kCanopy)->Build(*dataset),
      core::BuildCanopyCover(*dataset));
  ExpectSameCover(
      blocking::MakeCoverBuilder(BlockingStrategy::kLsh)->Build(*dataset),
      blocking::BuildLshCover(*dataset));
}

TEST_P(LshCoverProperty, GridSmpConsistentUnderLshCover) {
  const auto dataset = MakeSmallBib(GetParam());
  const Cover cover = blocking::BuildLshCover(*dataset);
  mln::MlnMatcher matcher(*dataset);
  const auto reference = core::RunSmp(matcher, cover).matches;
  for (uint32_t machines : kMachineCounts) {
    GridOptions options;
    options.scheme = MpScheme::kSmp;
    options.num_machines = machines;
    options.seed = GetParam() ^ machines;
    EXPECT_EQ(core::RunGrid(matcher, cover, options).matches, reference)
        << "seed " << GetParam() << ", " << machines << " machines";
  }
}

TEST_P(LshCoverProperty, GridMmpConsistentUnderLshCover) {
  const auto dataset = MakeSmallBib(GetParam());
  const Cover cover = blocking::BuildLshCover(*dataset);
  mln::MlnMatcher matcher(*dataset);
  const auto reference = core::RunMmp(matcher, cover).matches;
  for (uint32_t machines : kMachineCounts) {
    GridOptions options;
    options.scheme = MpScheme::kMmp;
    options.num_machines = machines;
    options.seed = GetParam() ^ machines;
    EXPECT_EQ(core::RunGrid(matcher, cover, options).matches, reference)
        << "seed " << GetParam() << ", " << machines << " machines";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, LshCoverProperty,
                         ::testing::Range<uint64_t>(900, 912));

TEST(BlockingStrategyTest, ParseRoundTrips) {
  EXPECT_EQ(core::ParseBlockingStrategy("canopy"), BlockingStrategy::kCanopy);
  EXPECT_EQ(core::ParseBlockingStrategy("LSH"), BlockingStrategy::kLsh);
  EXPECT_EQ(core::ParseBlockingStrategy("nope"), std::nullopt);
  for (const BlockingStrategy s :
       {BlockingStrategy::kCanopy, BlockingStrategy::kLsh}) {
    EXPECT_EQ(core::ParseBlockingStrategy(core::BlockingStrategyName(s)), s);
  }
}

TEST(BlockingStrategyTest, BuilderNamesMatchStrategyNames) {
  for (const BlockingStrategy s :
       {BlockingStrategy::kCanopy, BlockingStrategy::kLsh}) {
    EXPECT_EQ(blocking::MakeCoverBuilder(s)->name(),
              core::BlockingStrategyName(s));
  }
}

TEST(BlockingStatsTest, LshConsidersFewerPairsThanCanopy) {
  // The point of the subsystem: banded candidate generation does less work
  // than full postings-list scans on a realistic corpus.
  const auto dataset = MakeSmallBib(4242);
  core::BlockingStats canopy_stats;
  core::CanopyOptions canopy_options;
  canopy_options.stats = &canopy_stats;
  core::BuildCanopyCover(*dataset, canopy_options);
  core::BlockingStats lsh_stats;
  blocking::LshCoverOptions lsh_options;
  lsh_options.stats = &lsh_stats;
  blocking::BuildLshCover(*dataset, lsh_options);
  EXPECT_GT(canopy_stats.pairs_considered, 0u);
  EXPECT_GT(lsh_stats.pairs_considered, 0u);
  EXPECT_LT(lsh_stats.pairs_considered, canopy_stats.pairs_considered);
}

}  // namespace
}  // namespace cem
